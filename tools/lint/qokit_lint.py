#!/usr/bin/env python3
"""qokit_lint: machine-checked project invariants.

Compilers prove what they can see; these are the repo-wide contracts they
cannot. Run by ctest (`lint_invariants`) and every CI leg; exits nonzero
with file:line findings. `--self-test` proves each rule still fires on a
seeded violation (and stays quiet on a seeded non-violation), so the
linter going dark is itself a test failure.

Rules
-----
raw-sync
    No raw std::mutex / std::condition_variable (or their lock adapters)
    outside src/common/sync.hpp. Everything goes through the annotated
    qokit::Mutex / CondVar / MutexLock wrappers so clang -Wthread-safety
    can prove lock discipline; a raw primitive is invisible to the
    analysis. std::once_flag / std::call_once stay allowed: call_once is
    its own complete discipline with nothing left to annotate.

hot-transcendental
    No libm transcendental (sin/cos/exp/...) inside an amplitude-sized
    loop in src/pipeline/ or src/fur/. Per-amplitude trig belongs in the
    dispatched src/simd/ kernels (vectorized sincos4 / table gather);
    a stray std::cos in a 2^n loop silently forfeits the paper's headline
    optimization. Per-layer angle setup (O(p) or O(n) loops) is fine and
    not flagged -- the heuristic keys on amplitude-loop bounds
    (.size(), n_amps, dim, 1ull << n, ...).

kernel-alloc
    No heap allocation in the SIMD kernel translation units
    (src/simd/kernels_*.cpp): no new/malloc, no std::vector (growth or
    otherwise). Kernels run inside the batch engine's zero-steady-state-
    allocation contract (pinned by test_batch_scratch); an allocation here
    bypasses the instrumented AlignedAllocator and the pinning test both.

simd-flags
    Extended-ISA compile flags (-mavx2/-mfma/-mavx512*/-march) may appear
    in CMake files only inside a set_source_files_properties command that
    names a src/simd/ file, and <immintrin.h>-style intrinsic headers or
    target attributes may appear only under src/simd/. Anything else can
    make the base binary emit illegal instructions on plain x86-64 --
    exactly the bug class the runtime CPUID dispatch exists to prevent.

float-accum
    No float-typed accumulators in reduction code under src/simd/ or
    src/pipeline/. The mixed-precision contract (DESIGN.md "Mixed
    precision") narrows amplitudes to float32 but keeps every reduction
    -- norms, expectations, overlaps, sampler CDFs -- in double: a float
    accumulator over 2^n terms loses ~n/2 bits and silently breaks the
    pinned f32 error budget. The rule flags accumulator-named float
    declarations (acc/sum/total/norm/dot/cdf/...); per-element float
    temporaries (re/im/amp loads) are fine -- widen at the `+=`.

pipeline-geometry
    No bare geometry literals (tile_log2/group_qubits/chunk_log2 assigned
    a numeric constant) in src/pipeline/ outside geometry.hpp. The tiling
    knobs live in pipeline::Geometry with exactly one defaults site so
    the machine-adaptive profile (src/tune/) has exactly one injection
    point; a scattered literal re-creates the pre-tune constant drift.
    Tests and benches may pin literals freely -- the rule scopes to
    src/pipeline/ only.

Suppression: append `// qokit-lint: allow(<rule>) -- <reason>` to the
flagged line. Reasons are mandatory by convention and reviewed.
"""

from __future__ import annotations

import argparse
import os
import re
import sys
from typing import Iterable, List, NamedTuple


class Finding(NamedTuple):
    path: str
    line: int  # 1-based
    rule: str
    message: str

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


ALLOW_RE = re.compile(r"//\s*qokit-lint:\s*allow\(([a-z0-9-]+)\)")

SOURCE_EXTS = (".hpp", ".cpp", ".h", ".cc", ".cxx")

# ------------------------------------------------------------- raw-sync
RAW_SYNC_RE = re.compile(
    r"std::(mutex|recursive_mutex|timed_mutex|recursive_timed_mutex|"
    r"shared_mutex|shared_timed_mutex|condition_variable(_any)?|"
    r"lock_guard|unique_lock|scoped_lock|shared_lock)\b"
)
RAW_SYNC_EXEMPT = ("common/sync.hpp",)

# --------------------------------------------------- hot-transcendental
HOT_DIRS = ("pipeline/", "fur/")
TRANSCENDENTAL_RE = re.compile(
    r"(?<![\w:])(?:std::)?(sin|cos|tan|asin|acos|atan|atan2|sincos|"
    r"exp|exp2|expm1|log|log2|log10|log1p|pow|tanh|sinh|cosh)\s*\("
)
# Loop bounds that smell like "once per amplitude" rather than "once per
# layer/qubit/weight": container sizes, amplitude counts, 2^n shifts.
# Schedule-shaped containers (p entries, not 2^n) are exempt receivers of
# .size() -- a per-layer loop computing cos(beta_l) is the sanctioned
# pattern, not a hot-path violation.
AMPLITUDE_BOUND_RE = re.compile(
    r"(\w+)\.size\(\)|\bn_amps\b|\bnum_amps\b|\bdim\b|\bn_states\b|"
    r"1ull?\s*<<|u?int64_t\{1\}\s*<<|\bsize\b\s*;|\bmask\b\s*;"
)
SCHEDULE_RECEIVERS = frozenset({
    "gammas", "betas", "angles", "schedule", "schedules", "params",
    "layers", "terms", "bounds",
})


def amplitude_sized(header: str) -> bool:
    for m in AMPLITUDE_BOUND_RE.finditer(header):
        receiver = m.group(1)
        if receiver is not None and receiver in SCHEDULE_RECEIVERS:
            continue
        return True
    return False

# --------------------------------------------------------- kernel-alloc
KERNEL_TU_RE = re.compile(r"simd/kernels_[^/]*\.cpp$")
KERNEL_ALLOC_RE = re.compile(
    r"(?<![\w.])new\b(?!\s*\()|\bmalloc\s*\(|\bcalloc\s*\(|\brealloc\s*\(|"
    r"std::vector\b|\bpush_back\s*\(|\bemplace_back\s*\(|"
    r"\.resize\s*\(|\.reserve\s*\(|std::string\b|std::deque\b|std::map\b|"
    r"std::unordered_map\b"
)

# ---------------------------------------------------------- float-accum
# A float (or complex<float>) declaration whose name smells like a
# running reduction variable. Matches `float acc = 0`, `cfloat dot{};`,
# `std::complex<float> sum(...)`; does not match pointers (`float* acc`
# has no space before the identifier), doubles, or per-element
# temporaries with non-accumulator names.
FLOAT_ACCUM_DIRS = ("simd/", "pipeline/")
FLOAT_ACCUM_RE = re.compile(
    r"(?<![\w:<])(?:float|cfloat|std::complex<float>)\s+"
    r"(\w*(?:acc|sum|total|norm|dot|cdf|red)\w*)\s*[=({]"
)

# ----------------------------------------------- pipeline-geometry
# A geometry knob assigned a numeric literal. Clamp calls
# (std::clamp(x, 2, 30)) and defaults-struct reads don't match -- only a
# literal landing directly in a tile_log2/group_qubits/chunk_log2 slot,
# via `=` assignment or designated initializer.
GEOMETRY_LITERAL_RE = re.compile(
    r"\b(tile_log2|group_qubits|chunk_log2)\s*=\s*[+-]?\d"
)
GEOMETRY_DIR = "src/pipeline/"
GEOMETRY_EXEMPT = "src/pipeline/geometry.hpp"  # THE defaults site

# ----------------------------------------------------------- simd-flags
ISA_FLAG_RE = re.compile(r"-m(avx2|avx512[a-z0-9]*|fma)\b|-march=")
INTRIN_HEADER_RE = re.compile(
    r'#\s*include\s*[<"](?:x86|imm|e?mm|xmm|avx)intrin\.h[>"]'
)
TARGET_ATTR_RE = re.compile(
    r'#\s*pragma\s+GCC\s+target|__attribute__\s*\(\s*\(\s*target'
)
SIMD_DIR = "simd/"
CMAKE_COMMAND_RE = re.compile(r"([A-Za-z_][A-Za-z0-9_]*)\s*\(")


def strip_comments(text: str) -> str:
    """Blank out comments and string/char literals, preserving line
    structure so findings keep their line numbers. Suppression markers are
    matched against the raw line, not this."""
    out: List[str] = []
    i, n = 0, len(text)
    state = "code"  # code | line_comment | block_comment | string | char
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                out.append("  ")
                i += 2
                continue
            if c == '"':
                state = "string"
                out.append(c)
                i += 1
                continue
            if c == "'":
                state = "char"
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line_comment":
            if c == "\n":
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        elif state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state in ("string", "char"):
            quote = '"' if state == "string" else "'"
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == quote:
                state = "code"
                out.append(c)
            elif c == "\n":  # unterminated (raw string etc.); bail to code
                state = "code"
                out.append(c)
            else:
                out.append(" ")
        i += 1
    return "".join(out)


def enclosing_loops_per_line(code: str) -> List[List[str]]:
    """For each line of comment-stripped code, the headers of the
    `for`/`while` loops enclosing it (innermost last). Handles multi-line
    headers and brace-less single-statement bodies."""
    lines = code.split("\n")
    n_lines = len(lines)
    per_line: List[List[str]] = [[] for _ in range(n_lines)]
    # Brace stack: each entry is a loop header or None (plain block).
    stack: List[str] = []
    # A loop header whose ')' has closed but whose body hasn't started.
    pending: str | None = None
    # Stack of (header,) for brace-less bodies, popped at ';'.
    braceless: List[str] = []
    collecting: str | None = None
    paren_depth = 0

    i = 0
    line_no = 0
    n = len(code)
    while i < n:
        c = code[i]
        if c == "\n":
            line_no += 1
            i += 1
            continue
        # Record enclosure lazily: per_line is filled from the active
        # stacks the first time we see a non-space char on the line.
        if not per_line[line_no] and not c.isspace():
            per_line[line_no] = stack_headers(stack) + braceless[:]
        if collecting is not None:
            collecting += c
            if c == "(":
                paren_depth += 1
            elif c == ")":
                paren_depth -= 1
                if paren_depth == 0:
                    pending = collecting
                    collecting = None
            i += 1
            continue
        m = re.match(r"(for|while)\s*\(", code[i:])
        if m:
            collecting = m.group(0)
            paren_depth = 1
            i += m.end()
            continue
        if c == "{":
            stack.append(pending if pending is not None else "")
            if pending is not None:
                pending = None
            braceless = []
        elif c == "}":
            if stack:
                stack.pop()
        elif c == ";":
            if braceless:
                braceless.pop()
            pending = None
        elif not c.isspace():
            if pending is not None:
                # Statement begins without '{': brace-less loop body.
                braceless.append(pending)
                pending = None
        i += 1
    return per_line


def stack_headers(stack: List[str]) -> List[str]:
    return [h for h in stack if h]


def allowed(raw_line: str, rule: str) -> bool:
    m = ALLOW_RE.search(raw_line)
    return bool(m) and m.group(1) == rule


def scan_source(rel: str, text: str) -> List[Finding]:
    findings: List[Finding] = []
    raw_lines = text.split("\n")
    code = strip_comments(text)
    code_lines = code.split("\n")

    def emit(line_idx: int, rule: str, message: str) -> None:
        if not allowed(raw_lines[line_idx], rule):
            findings.append(Finding(rel, line_idx + 1, rule, message))

    # raw-sync
    if not any(rel.endswith(e) for e in RAW_SYNC_EXEMPT):
        for idx, line in enumerate(code_lines):
            m = RAW_SYNC_RE.search(line)
            if m:
                emit(
                    idx,
                    "raw-sync",
                    f"raw std::{m.group(1)}; use the annotated wrappers in "
                    "common/sync.hpp (Mutex/CondVar/MutexLock) so clang "
                    "-Wthread-safety can check the lock discipline",
                )

    # hot-transcendental
    if any(f"/{d}" in f"/{rel}" for d in HOT_DIRS):
        loops = enclosing_loops_per_line(code)
        for idx, line in enumerate(code_lines):
            m = TRANSCENDENTAL_RE.search(line)
            if not m:
                continue
            hot = [h for h in loops[idx] if amplitude_sized(h)]
            if hot:
                emit(
                    idx,
                    "hot-transcendental",
                    f"{m.group(1)}() inside an amplitude-sized loop "
                    f"({hot[-1].strip()[:60]}...); per-amplitude "
                    "transcendentals belong in the dispatched src/simd/ "
                    "kernels",
                )

    # kernel-alloc
    if KERNEL_TU_RE.search(rel):
        for idx, line in enumerate(code_lines):
            m = KERNEL_ALLOC_RE.search(line)
            if m:
                emit(
                    idx,
                    "kernel-alloc",
                    f"heap allocation ('{m.group(0).strip()}') in a SIMD "
                    "kernel translation unit; kernels must honor the "
                    "zero-steady-state-allocation contract",
                )

    # float-accum
    if any(f"/{d}" in f"/{rel}" for d in FLOAT_ACCUM_DIRS):
        for idx, line in enumerate(code_lines):
            m = FLOAT_ACCUM_RE.search(line)
            if m:
                emit(
                    idx,
                    "float-accum",
                    f"float-typed accumulator '{m.group(1)}'; reductions "
                    "accumulate in double regardless of amplitude "
                    "precision -- widen per element and keep the running "
                    "variable double (see DESIGN.md, Mixed precision)",
                )

    # pipeline-geometry
    if rel.startswith(GEOMETRY_DIR) and rel != GEOMETRY_EXEMPT:
        for idx, line in enumerate(code_lines):
            m = GEOMETRY_LITERAL_RE.search(line)
            if m:
                emit(
                    idx,
                    "pipeline-geometry",
                    f"bare geometry literal ('{m.group(0).strip()}') in "
                    "src/pipeline/; the tiling knobs have exactly one "
                    "defaults site (pipeline::Geometry::defaults in "
                    "geometry.hpp) so the tune profile stays the single "
                    "injection point",
                )

    # simd-flags: intrinsic headers / target attributes outside src/simd/
    if SIMD_DIR not in rel:
        for idx, line in enumerate(code_lines):
            if INTRIN_HEADER_RE.search(line) or TARGET_ATTR_RE.search(line):
                emit(
                    idx,
                    "simd-flags",
                    "intrinsics header / target attribute outside "
                    "src/simd/; arch-specific code goes behind the "
                    "runtime-dispatched kernel layer",
                )
    return findings


def cmake_commands(text: str) -> Iterable[tuple[int, str, str]]:
    """Yield (1-based start line, command name, full argument text) for
    each top-level command invocation in a CMake listfile."""
    # Strip CMake comments, preserving newlines.
    stripped = "\n".join(l.split("#", 1)[0] for l in text.split("\n"))
    for m in CMAKE_COMMAND_RE.finditer(stripped):
        depth = 1
        j = m.end()
        while j < len(stripped) and depth:
            if stripped[j] == "(":
                depth += 1
            elif stripped[j] == ")":
                depth -= 1
            j += 1
        yield (
            stripped.count("\n", 0, m.start()) + 1,
            m.group(1).lower(),
            stripped[m.end() : j - 1],
        )


def scan_cmake(rel: str, text: str) -> List[Finding]:
    findings: List[Finding] = []
    raw_lines = text.split("\n")
    for start_line, name, args in cmake_commands(text):
        m = ISA_FLAG_RE.search(args)
        if not m:
            continue
        flag_line = start_line + args.count("\n", 0, m.start())
        if allowed(raw_lines[flag_line - 1], "simd-flags"):
            continue
        if name == "set_source_files_properties" and "src/simd/" in args:
            continue  # the sanctioned isolation: per-file ISA flags
        findings.append(
            Finding(
                rel,
                flag_line,
                "simd-flags",
                f"extended-ISA flag '{m.group(0)}' outside a "
                "set_source_files_properties command scoped to src/simd/; "
                "global ISA flags break the runtime-dispatch portability "
                "contract",
            )
        )
    return findings


def scan_tree(root: str) -> List[Finding]:
    findings: List[Finding] = []
    src_root = os.path.join(root, "src")
    for dirpath, _dirnames, filenames in sorted(os.walk(src_root)):
        for fn in sorted(filenames):
            if not fn.endswith(SOURCE_EXTS):
                continue
            full = os.path.join(dirpath, fn)
            rel = os.path.relpath(full, root)
            with open(full, encoding="utf-8", errors="replace") as f:
                findings.extend(scan_source(rel, f.read()))
    for cmake_rel in ["CMakeLists.txt"]:
        full = os.path.join(root, cmake_rel)
        if os.path.exists(full):
            with open(full, encoding="utf-8", errors="replace") as f:
                findings.extend(scan_cmake(cmake_rel, f.read()))
    cmake_dir = os.path.join(root, "cmake")
    if os.path.isdir(cmake_dir):
        for fn in sorted(os.listdir(cmake_dir)):
            if fn.endswith(".cmake") or fn == "CMakeLists.txt":
                with open(
                    os.path.join(cmake_dir, fn), encoding="utf-8",
                    errors="replace",
                ) as f:
                    findings.extend(scan_cmake(f"cmake/{fn}", f.read()))
    return findings


# -------------------------------------------------------------- self-test
SELF_TEST_CASES = [
    # (description, path, content, expected rule or None)
    (
        "seeded raw std::mutex must be flagged",
        "src/serve/bad_queue.hpp",
        "#include <mutex>\nclass Q { std::mutex mu_; };\n",
        "raw-sync",
    ),
    (
        "seeded raw condition_variable must be flagged",
        "src/obs/bad.cpp",
        "#include <condition_variable>\nstd::condition_variable cv;\n",
        "raw-sync",
    ),
    (
        "annotated wrappers must pass",
        "src/serve/good_queue.hpp",
        '#include "common/sync.hpp"\n'
        "class Q { qokit::Mutex mu_; qokit::CondVar cv_; };\n",
        None,
    ),
    (
        "std::once_flag stays allowed",
        "src/diagonal/good.cpp",
        "#include <mutex>\nstd::once_flag f;\n",
        None,
    ),
    (
        "sync.hpp itself is exempt",
        "src/common/sync.hpp",
        "class Mutex { std::mutex mu_; };\n",
        None,
    ),
    (
        "comment mentions are not findings",
        "src/serve/commented.hpp",
        "// replaces the old std::mutex member\nint x;\n",
        None,
    ),
    (
        "transcendental in an amplitude loop must be flagged",
        "src/pipeline/bad_loop.cpp",
        "void f(double* amp, unsigned long n_amps, double g) {\n"
        "  for (unsigned long i = 0; i < n_amps; ++i)\n"
        "    amp[i] *= std::cos(g * i);\n"
        "}\n",
        "hot-transcendental",
    ),
    (
        "transcendental over sv.size() must be flagged",
        "src/fur/bad_mixer.cpp",
        "void f(StateVector& sv, double b) {\n"
        "  for (std::size_t i = 0; i < sv.size(); ++i) {\n"
        "    sv[i] *= std::sin(b);\n"
        "  }\n"
        "}\n",
        "hot-transcendental",
    ),
    (
        "per-layer schedule loop (gammas.size()) stays allowed",
        "src/fur/good_layers.cpp",
        "void f(const std::vector<double>& gammas, StateVector& h) {\n"
        "  for (std::size_t l = 0; l < gammas.size(); ++l) {\n"
        "    const double c = std::cos(gammas[l]);\n"
        "    h[0] *= c;\n"
        "  }\n"
        "}\n",
        None,
    ),
    (
        "per-layer angle setup stays allowed",
        "src/fur/good_mixer.cpp",
        "void f(double beta, int num_qubits, cdouble* table) {\n"
        "  const double c = std::cos(beta);\n"
        "  for (int w = 0; w <= num_qubits; ++w)\n"
        "    table[w] = cdouble(std::cos(-beta * w), c);\n"
        "}\n",
        None,
    ),
    (
        "vector growth in a kernel TU must be flagged",
        "src/simd/kernels_scalar.cpp",
        "#include <vector>\n"
        "void k() { std::vector<double> v; v.push_back(1.0); }\n",
        "kernel-alloc",
    ),
    (
        "allocation-free kernel TU passes",
        "src/simd/kernels_avx2.cpp",
        "void k(double* a, unsigned long n) {\n"
        "  for (unsigned long i = 0; i < n; ++i) a[i] *= 2.0;\n"
        "}\n",
        None,
    ),
    (
        "intrinsics header outside src/simd/ must be flagged",
        "src/pipeline/bad_intrin.cpp",
        "#include <immintrin.h>\n",
        "simd-flags",
    ),
    (
        "suppression marker silences with the right rule",
        "src/serve/suppressed.hpp",
        "std::mutex legacy_mu;  "
        "// qokit-lint: allow(raw-sync) -- self-test fixture\n",
        None,
    ),
    (
        "suppression marker for the wrong rule does not silence",
        "src/serve/wrong_marker.hpp",
        "std::mutex legacy_mu;  "
        "// qokit-lint: allow(kernel-alloc) -- wrong rule\n",
        "raw-sync",
    ),
    (
        "float accumulator in a SIMD kernel must be flagged",
        "src/simd/kernels_scalar.cpp",
        "double n(const cfloat* a, unsigned long n) {\n"
        "  float acc = 0.0f;\n"
        "  for (unsigned long i = 0; i < n; ++i)\n"
        "    acc += a[i].real() * a[i].real();\n"
        "  return acc;\n"
        "}\n",
        "float-accum",
    ),
    (
        "complex<float> running sum in src/pipeline/ must be flagged",
        "src/pipeline/bad_sum.cpp",
        "cfloat f(const cfloat* a, unsigned long n) {\n"
        "  std::complex<float> sum{};\n"
        "  for (unsigned long i = 0; i < n; ++i) sum += a[i];\n"
        "  return sum;\n"
        "}\n",
        "float-accum",
    ),
    (
        "double accumulator over float amplitudes passes",
        "src/simd/kernels_avx2.cpp",
        "double n(const cfloat* a, unsigned long n) {\n"
        "  double acc = 0.0;\n"
        "  for (unsigned long i = 0; i < n; ++i) {\n"
        "    const float re = a[i].real();\n"
        "    acc += static_cast<double>(re) * re;\n"
        "  }\n"
        "  return acc;\n"
        "}\n",
        None,
    ),
    (
        "float accumulators outside simd/pipeline are not this rule's "
        "business",
        "src/fur/float_misc.cpp",
        "float f() { float total = 0.0f; return total; }\n",
        None,
    ),
    (
        "float-accum suppression marker silences",
        "src/pipeline/legacy_sum.cpp",
        "float partial_sum = 0.0f;  "
        "// qokit-lint: allow(float-accum) -- self-test fixture\n",
        None,
    ),
    (
        "bare geometry literal in src/pipeline/ must be flagged",
        "src/pipeline/bad_geom.cpp",
        "void f(PipelineOptions& opts) { opts.geometry.tile_log2 = 16; }\n",
        "pipeline-geometry",
    ),
    (
        "designated-initializer geometry literal must be flagged",
        "src/pipeline/bad_geom_init.cpp",
        "PipelineOptions o{.mode = PipelineMode::On,\n"
        "                  .geometry = {.group_qubits = 6}};\n",
        "pipeline-geometry",
    ),
    (
        "geometry.hpp itself (the one defaults site) is exempt",
        "src/pipeline/geometry.hpp",
        "struct Geometry { int tile_log2 = 16; };\n",
        None,
    ),
    (
        "geometry literals outside src/pipeline/ are fine",
        "tests/test_pipeline_geom.cpp",
        "opts.geometry.tile_log2 = 4;\n",
        None,
    ),
]

SELF_TEST_CMAKE_CASES = [
    (
        "global -mavx2 must be flagged",
        "CMakeLists.txt",
        'add_compile_options(-Wall -mavx2)\n',
        "simd-flags",
    ),
    (
        "per-file ISA isolation on src/simd/ passes",
        "CMakeLists.txt",
        "set_source_files_properties(\n"
        "  ${DIR}/src/simd/kernels_avx2.cpp\n"
        '  PROPERTIES COMPILE_OPTIONS "-mavx2;-mfma")\n',
        None,
    ),
    (
        "-march on a non-simd file must be flagged",
        "cmake/extra.cmake",
        "set_source_files_properties(src/fur/mixers.cpp\n"
        '  PROPERTIES COMPILE_OPTIONS "-march=native")\n',
        "simd-flags",
    ),
]


def self_test() -> int:
    failures = 0
    for desc, path, content, expected in SELF_TEST_CASES:
        got = scan_source(path, content)
        failures += check_case(desc, got, expected)
    for desc, path, content, expected in SELF_TEST_CMAKE_CASES:
        got = scan_cmake(path, content)
        failures += check_case(desc, got, expected)
    total = len(SELF_TEST_CASES) + len(SELF_TEST_CMAKE_CASES)
    if failures:
        print(f"qokit_lint --self-test: {failures}/{total} cases FAILED")
        return 1
    print(f"qokit_lint --self-test: {total} cases passed "
          "(every rule fires on its seeded violation)")
    return 0


def check_case(desc: str, got: List[Finding], expected: str | None) -> int:
    rules = {f.rule for f in got}
    if expected is None:
        if got:
            print(f"SELF-TEST FAIL: {desc}: unexpected findings: "
                  + "; ".join(map(str, got)))
            return 1
        return 0
    if expected not in rules:
        print(f"SELF-TEST FAIL: {desc}: expected a [{expected}] finding, "
              f"got {sorted(rules) or 'none'}")
        return 1
    return 0


def main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.split("\n")[0])
    parser.add_argument("--root", default=".",
                        help="repository root (contains src/)")
    parser.add_argument("--self-test", action="store_true",
                        help="verify every rule fires on seeded violations")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    findings = scan_tree(args.root)
    for f in findings:
        print(f)
    if findings:
        print(f"qokit_lint: {len(findings)} finding(s)")
        return 1
    print("qokit_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
