#include "gatesim/fusion.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "gatesim/compile.hpp"
#include "gatesim/execute.hpp"
#include "problems/labs.hpp"
#include "problems/maxcut.hpp"

namespace qokit {
namespace {

StateVector random_state(int n, std::uint64_t seed) {
  Rng rng(seed);
  StateVector sv(n);
  for (std::uint64_t x = 0; x < sv.size(); ++x)
    sv[x] = cdouble(rng.normal(), rng.normal());
  sv.normalize();
  return sv;
}

/// Random circuit mixing every fusable gate kind.
Circuit random_circuit(int n, int num_gates, std::uint64_t seed) {
  Rng rng(seed);
  Circuit c(n);
  for (int i = 0; i < num_gates; ++i) {
    const int q = static_cast<int>(rng.uniform_int(n));
    int q2 = static_cast<int>(rng.uniform_int(n));
    if (q2 == q) q2 = (q + 1) % n;
    switch (rng.uniform_int(5)) {
      case 0:
        c.append(Gate::h(q));
        break;
      case 1:
        c.append(Gate::rx(q, rng.uniform(-1.5, 1.5)));
        break;
      case 2:
        c.append(Gate::rz(q, rng.uniform(-1.5, 1.5)));
        break;
      case 3:
        c.append(Gate::cx(q, q2));
        break;
      default:
        c.append(Gate::xy(q, q2, rng.uniform(-1.5, 1.5)));
        break;
    }
  }
  return c;
}

class FusionEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(FusionEquivalenceTest, FusedCircuitRealizesSameUnitary) {
  const int seed = GetParam();
  const int n = 5;
  const Circuit c = random_circuit(n, 40, seed);
  const Circuit fused = fuse_gates(c);
  StateVector a = random_state(n, seed + 1000);
  StateVector b = a;
  run_circuit(a, c, Exec::Serial);
  run_circuit(b, fused, Exec::Serial);
  EXPECT_LT(a.max_abs_diff(b), 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FusionEquivalenceTest,
                         ::testing::Range(1, 11));

TEST(Fusion, ReducesGateCount) {
  const Circuit c = random_circuit(6, 60, 3);
  const Circuit fused = fuse_gates(c);
  EXPECT_LT(fused.size(), c.size());
}

TEST(Fusion, SingleQubitRunCollapsesToOneGate) {
  Circuit c(3);
  c.append(Gate::h(1));
  c.append(Gate::rx(1, 0.3));
  c.append(Gate::rz(1, 0.7));
  c.append(Gate::h(1));
  const Circuit fused = fuse_gates(c);
  ASSERT_EQ(fused.size(), 1u);
  EXPECT_EQ(fused.gates()[0].kind, GateKind::U1);
  EXPECT_EQ(fused.gates()[0].q0, 1);

  StateVector a = random_state(3, 5);
  StateVector b = a;
  run_circuit(a, c, Exec::Serial);
  run_circuit(b, fused, Exec::Serial);
  EXPECT_LT(a.max_abs_diff(b), 1e-12);
}

TEST(Fusion, TwoQubitBlockCollapses) {
  Circuit c(4);
  c.append(Gate::h(0));
  c.append(Gate::cx(0, 1));
  c.append(Gate::rz(1, 0.4));
  c.append(Gate::cx(0, 1));
  const Circuit fused = fuse_gates(c);
  ASSERT_EQ(fused.size(), 1u);
  EXPECT_EQ(fused.gates()[0].kind, GateKind::U2);
}

TEST(Fusion, MultiQubitDiagonalPassesThrough) {
  Circuit c(5);
  c.append(Gate::rx(0, 0.3));
  c.append(Gate::zphase(0b10111, 0.9));  // 4-qubit diagonal: unfusable
  c.append(Gate::rx(0, 0.3));
  const Circuit fused = fuse_gates(c);
  ASSERT_EQ(fused.size(), 3u);
  EXPECT_EQ(fused.gates()[1].kind, GateKind::ZPhase);
}

TEST(Fusion, QaoaMaxCutCircuitEquivalence) {
  const TermList terms = maxcut_terms(Graph::random_regular(6, 3, 2));
  const std::vector<double> gs{0.3, 0.5}, bs{0.8, 0.2};
  const Circuit c = compile_qaoa_circuit(terms, gs, bs);
  const Circuit fused = fuse_gates(c);
  EXPECT_LT(fused.size(), c.size());
  StateVector a = StateVector::basis_state(6, 0);
  StateVector b = StateVector::basis_state(6, 0);
  run_circuit(a, c, Exec::Serial);
  run_circuit(b, fused, Exec::Serial);
  EXPECT_LT(a.max_abs_diff(b), 1e-10);
}

TEST(Fusion, LabsQuarticLaddersLimitFusionRatio) {
  // The paper's Sec. VI point: 4-order terms block F=2 fusion from reaching
  // the ~4n fused-gate floor possible for 2-local circuits.
  const TermList terms = labs_terms(10);
  const std::vector<double> gs{0.3}, bs{0.8};
  const Circuit c = compile_qaoa_circuit(terms, gs, bs);
  const Circuit fused = fuse_gates(c);
  EXPECT_LT(fused.size(), c.size());
  // Far more than 4n gates must survive.
  EXPECT_GT(fused.size(), 4u * 10u);
}

TEST(Fusion, EmptyCircuit) {
  const Circuit fused = fuse_gates(Circuit(3));
  EXPECT_EQ(fused.size(), 0u);
}

}  // namespace
}  // namespace qokit
