#include "fur/mixers.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "support/reference.hpp"

namespace qokit {
namespace {

using testing::max_diff;
using testing::to_vec;

StateVector random_state(int n, std::uint64_t seed) {
  Rng rng(seed);
  StateVector sv(n);
  for (std::uint64_t x = 0; x < sv.size(); ++x)
    sv[x] = cdouble(rng.normal(), rng.normal());
  sv.normalize();
  return sv;
}

class MixerXTest : public ::testing::TestWithParam<int> {};

TEST_P(MixerXTest, MatchesDenseReference) {
  const int n = GetParam();
  const double beta = 0.37;
  StateVector sv = random_state(n, n);
  const auto before = to_vec(sv);
  apply_mixer_x(sv, beta, Exec::Serial);
  EXPECT_LT(max_diff(to_vec(sv),
                     testing::ref_apply_mixer_x(before, n, beta)),
            1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sizes, MixerXTest, ::testing::Values(1, 2, 4, 6, 8));

TEST(MixerX, ZeroAngleIsIdentity) {
  StateVector sv = random_state(6, 5);
  const StateVector before = sv;
  apply_mixer_x(sv, 0.0);
  EXPECT_LT(sv.max_abs_diff(before), 1e-15);
}

TEST(MixerX, PreservesNorm) {
  StateVector sv = random_state(12, 9);
  apply_mixer_x(sv, 1.7, Exec::Parallel);
  EXPECT_NEAR(sv.norm_squared(), 1.0, 1e-12);
}

TEST(MixerX, PlusStateIsFixedPointUpToPhase) {
  // |+>^n is the maximal eigenvector of sum X_i: mixer only adds a phase.
  const int n = 6;
  StateVector sv = StateVector::plus_state(n);
  apply_mixer_x(sv, 0.9);
  const auto p = sv.probabilities();
  for (double v : p) EXPECT_NEAR(v, 1.0 / 64.0, 1e-12);
}

class MixerXyRingTest : public ::testing::TestWithParam<int> {};

TEST_P(MixerXyRingTest, MatchesDenseReference) {
  const int n = GetParam();
  const double beta = 0.61;
  StateVector sv = random_state(n, 100 + n);
  const auto before = to_vec(sv);
  apply_mixer_xy_ring(sv, beta, Exec::Serial);
  EXPECT_LT(max_diff(to_vec(sv),
                     testing::ref_apply_mixer_xy_ring(before, n, beta)),
            1e-12);
}

TEST_P(MixerXyRingTest, PreservesEveryHammingSector) {
  const int n = GetParam();
  StateVector sv = random_state(n, 200 + n);
  std::vector<double> before(n + 1);
  for (int k = 0; k <= n; ++k) before[k] = sv.weight_sector_mass(k);
  apply_mixer_xy_ring(sv, 0.83, Exec::Parallel);
  for (int k = 0; k <= n; ++k)
    EXPECT_NEAR(sv.weight_sector_mass(k), before[k], 1e-12) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Sizes, MixerXyRingTest, ::testing::Values(3, 4, 5, 7));

class MixerXyCompleteTest : public ::testing::TestWithParam<int> {};

TEST_P(MixerXyCompleteTest, MatchesDenseReference) {
  const int n = GetParam();
  const double beta = 0.29;
  StateVector sv = random_state(n, 300 + n);
  const auto before = to_vec(sv);
  apply_mixer_xy_complete(sv, beta, Exec::Serial);
  EXPECT_LT(max_diff(to_vec(sv),
                     testing::ref_apply_mixer_xy_complete(before, n, beta)),
            1e-12);
}

TEST_P(MixerXyCompleteTest, PreservesEveryHammingSector) {
  const int n = GetParam();
  StateVector sv = random_state(n, 400 + n);
  std::vector<double> before(n + 1);
  for (int k = 0; k <= n; ++k) before[k] = sv.weight_sector_mass(k);
  apply_mixer_xy_complete(sv, 1.21, Exec::Parallel);
  for (int k = 0; k <= n; ++k)
    EXPECT_NEAR(sv.weight_sector_mass(k), before[k], 1e-12) << "k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Sizes, MixerXyCompleteTest,
                         ::testing::Values(2, 3, 5, 6));

TEST(MixerXy, DickeStateIsFixedPointOfCompleteMixerMass) {
  // The Dicke state is symmetric; the complete-graph XY mixer keeps the
  // distribution uniform over the sector.
  StateVector sv = StateVector::dicke_state(6, 3);
  apply_mixer_xy_complete(sv, 0.44);
  for (std::uint64_t x = 0; x < sv.size(); ++x) {
    if (popcount(x) != 3) {
      EXPECT_NEAR(std::norm(sv[x]), 0.0, 1e-14);
    }
  }
  EXPECT_NEAR(sv.weight_sector_mass(3), 1.0, 1e-12);
}

TEST(MixerDispatch, RoutesAllTypes) {
  StateVector a = random_state(5, 1);
  StateVector b = a;
  apply_mixer(a, MixerType::X, 0.3);
  apply_mixer_x(b, 0.3);
  EXPECT_LT(a.max_abs_diff(b), 1e-14);

  StateVector c = random_state(5, 2);
  StateVector d = c;
  apply_mixer(c, MixerType::XYRing, 0.3);
  apply_mixer_xy_ring(d, 0.3);
  EXPECT_LT(c.max_abs_diff(d), 1e-14);

  StateVector e = random_state(5, 3);
  StateVector f = e;
  apply_mixer(e, MixerType::XYComplete, 0.3);
  apply_mixer_xy_complete(f, 0.3);
  EXPECT_LT(e.max_abs_diff(f), 1e-14);
}

TEST(MixerXyRing, RejectsTinySystems) {
  StateVector sv = StateVector::plus_state(2);
  EXPECT_THROW(apply_mixer_xy_ring(sv, 0.1), std::invalid_argument);
}

}  // namespace
}  // namespace qokit
