#include "statevector/state.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/bitops.hpp"

namespace qokit {
namespace {

TEST(StateVector, PlusStateIsUniform) {
  const StateVector sv = StateVector::plus_state(5);
  const double expect = 1.0 / std::sqrt(32.0);
  for (std::uint64_t x = 0; x < 32; ++x) {
    EXPECT_NEAR(sv[x].real(), expect, 1e-15);
    EXPECT_NEAR(sv[x].imag(), 0.0, 1e-15);
  }
  EXPECT_NEAR(sv.norm_squared(), 1.0, 1e-12);
}

TEST(StateVector, BasisStateIsOneHot) {
  const StateVector sv = StateVector::basis_state(4, 9);
  for (std::uint64_t x = 0; x < 16; ++x)
    EXPECT_DOUBLE_EQ(std::norm(sv[x]), x == 9 ? 1.0 : 0.0);
}

TEST(StateVector, BasisStateRejectsOutOfRange) {
  EXPECT_THROW(StateVector::basis_state(3, 8), std::out_of_range);
}

class DickeStateTest : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(DickeStateTest, UniformOverWeightSector) {
  const auto [n, k] = GetParam();
  const StateVector sv = StateVector::dicke_state(n, k);
  std::uint64_t count = 0;
  for (std::uint64_t x = 0; x < dim_of(n); ++x)
    if (popcount(x) == k) ++count;
  const double amp = 1.0 / std::sqrt(static_cast<double>(count));
  for (std::uint64_t x = 0; x < dim_of(n); ++x) {
    if (popcount(x) == k)
      EXPECT_NEAR(std::abs(sv[x]), amp, 1e-15);
    else
      EXPECT_DOUBLE_EQ(std::abs(sv[x]), 0.0);
  }
  EXPECT_NEAR(sv.norm_squared(), 1.0, 1e-12);
  EXPECT_NEAR(sv.weight_sector_mass(k), 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sectors, DickeStateTest,
                         ::testing::Values(std::pair{4, 2}, std::pair{6, 3},
                                           std::pair{6, 0}, std::pair{6, 6},
                                           std::pair{9, 4}, std::pair{10, 1}));

TEST(StateVector, DickeRejectsBadWeight) {
  EXPECT_THROW(StateVector::dicke_state(4, 5), std::invalid_argument);
  EXPECT_THROW(StateVector::dicke_state(4, -1), std::invalid_argument);
}

TEST(StateVector, NormalizeScalesToUnit) {
  StateVector sv(3);
  for (std::uint64_t x = 0; x < 8; ++x) sv[x] = cdouble(1.0, 1.0);
  sv.normalize();
  EXPECT_NEAR(sv.norm_squared(), 1.0, 1e-12);
}

TEST(StateVector, NormalizeThrowsOnZero) {
  StateVector sv(3);
  EXPECT_THROW(sv.normalize(), std::runtime_error);
}

TEST(StateVector, InnerProductOrthonormalBasis) {
  const StateVector a = StateVector::basis_state(3, 1);
  const StateVector b = StateVector::basis_state(3, 2);
  EXPECT_NEAR(std::abs(a.inner(b)), 0.0, 1e-15);
  EXPECT_NEAR(a.inner(a).real(), 1.0, 1e-15);
}

TEST(StateVector, InnerConjugatesLeft) {
  StateVector a(1), b(1);
  a[0] = cdouble(0.0, 1.0);  // i|0>
  b[0] = cdouble(1.0, 0.0);
  // <a|b> = conj(i) * 1 = -i.
  EXPECT_NEAR(a.inner(b).imag(), -1.0, 1e-15);
}

TEST(StateVector, ProbabilitiesSumToNorm) {
  const StateVector sv = StateVector::plus_state(6);
  const auto p = sv.probabilities();
  double total = 0.0;
  for (double v : p) total += v;
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_EQ(p.size(), 64u);
}

TEST(StateVector, WeightSectorMassesPartitionUnity) {
  const StateVector sv = StateVector::plus_state(5);
  double total = 0.0;
  for (int k = 0; k <= 5; ++k) total += sv.weight_sector_mass(k);
  EXPECT_NEAR(total, 1.0, 1e-12);
  // |+>^5 puts C(5,k)/32 in sector k.
  EXPECT_NEAR(sv.weight_sector_mass(2), 10.0 / 32.0, 1e-12);
}

TEST(StateVector, MaxAbsDiff) {
  StateVector a = StateVector::plus_state(3);
  StateVector b = StateVector::plus_state(3);
  EXPECT_DOUBLE_EQ(a.max_abs_diff(b), 0.0);
  b[5] += cdouble(0.25, 0.0);
  EXPECT_NEAR(a.max_abs_diff(b), 0.25, 1e-15);
}

TEST(StateVector, ParallelNormMatchesSerial) {
  StateVector sv = StateVector::plus_state(14);
  sv[12345] = cdouble(0.7, -0.3);
  EXPECT_NEAR(sv.norm_squared(Exec::Serial), sv.norm_squared(Exec::Parallel),
              1e-12);
}

TEST(StateVector, ExecDefaultsAreUniform) {
  // norm_squared and probabilities_in_place both default to
  // Exec::Parallel, like every other Exec-taking entry point (historical
  // inconsistency: norm_squared once defaulted Serial). The simd layer
  // guarantees Serial == Parallel bitwise, so the default is observable
  // only through this pin: calling with no argument must equal both
  // explicit policies bit for bit.
  StateVector sv = StateVector::plus_state(14);
  sv[999] = cdouble(0.6, -0.8);
  const double d = sv.norm_squared();
  EXPECT_EQ(d, sv.norm_squared(Exec::Parallel));
  EXPECT_EQ(d, sv.norm_squared(Exec::Serial));

  StateVector by_default = sv;
  StateVector serial = sv;
  StateVector parallel = sv;
  by_default.probabilities_in_place();
  serial.probabilities_in_place(Exec::Serial);
  parallel.probabilities_in_place(Exec::Parallel);
  EXPECT_EQ(by_default.max_abs_diff(serial), 0.0);
  EXPECT_EQ(by_default.max_abs_diff(parallel), 0.0);
}

TEST(StateVector, RejectsNegativeQubitCount) {
  EXPECT_THROW(StateVector(-1), std::invalid_argument);
}

}  // namespace
}  // namespace qokit
