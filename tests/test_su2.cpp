#include "fur/su2.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.hpp"
#include "support/reference.hpp"

namespace qokit {
namespace {

using testing::max_diff;
using testing::to_vec;

StateVector random_state(int n, std::uint64_t seed) {
  Rng rng(seed);
  StateVector sv(n);
  for (std::uint64_t x = 0; x < sv.size(); ++x)
    sv[x] = cdouble(rng.normal(), rng.normal());
  sv.normalize();
  return sv;
}

Su2 random_su2(std::uint64_t seed) {
  Rng rng(seed);
  // Random point on S^3 -> |a|^2 + |b|^2 = 1 -> SU(2).
  cdouble a(rng.normal(), rng.normal());
  cdouble b(rng.normal(), rng.normal());
  const double norm = std::sqrt(std::norm(a) + std::norm(b));
  return {a / norm, b / norm};
}

class Su2KernelTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(Su2KernelTest, MatchesDenseReference) {
  const auto [n, q, seed] = GetParam();
  if (q >= n) GTEST_SKIP();
  StateVector sv = random_state(n, seed);
  const auto before = to_vec(sv);
  const Su2 u = random_su2(seed + 100);
  apply_su2(sv, q, u, Exec::Serial);
  // Row-major 2x2 of U = [[a, -b*], [b, a*]].
  const std::array<cdouble, 4> m{u.a, -std::conj(u.b), u.b, std::conj(u.a)};
  EXPECT_LT(max_diff(to_vec(sv), testing::ref_apply_1q(before, q, m)), 1e-12);
}

TEST_P(Su2KernelTest, PreservesNorm) {
  const auto [n, q, seed] = GetParam();
  if (q >= n) GTEST_SKIP();
  StateVector sv = random_state(n, seed);
  apply_su2(sv, q, random_su2(seed + 7), Exec::Parallel);
  EXPECT_NEAR(sv.norm_squared(), 1.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Sweep, Su2KernelTest,
                         ::testing::Combine(::testing::Values(1, 2, 4, 7),
                                            ::testing::Values(0, 1, 3, 6),
                                            ::testing::Values(1, 2)));

TEST(Su2Kernel, SerialAndParallelAgree) {
  StateVector a = random_state(13, 5);
  StateVector b = a.num_qubits() == 13 ? a : a;  // copy
  StateVector c = a;
  const Su2 u = random_su2(9);
  apply_su2(a, 6, u, Exec::Serial);
  apply_su2(c, 6, u, Exec::Parallel);
  EXPECT_LT(a.max_abs_diff(c), 1e-14);
}

TEST(RxKernel, MatchesGenericSu2) {
  const double beta = 0.7123;
  StateVector a = random_state(8, 3);
  StateVector b = a;
  apply_rx(a, 4, beta, Exec::Serial);
  // e^{-i beta X}: a = cos(beta), b = -i sin(beta).
  apply_su2(b, 4, {cdouble(std::cos(beta), 0), cdouble(0, -std::sin(beta))},
            Exec::Serial);
  EXPECT_LT(a.max_abs_diff(b), 1e-13);
}

TEST(RxKernel, InverseUndoesRotation) {
  StateVector sv = random_state(9, 11);
  const StateVector before = sv;
  apply_rx(sv, 2, 0.9);
  apply_rx(sv, 2, -0.9);
  EXPECT_LT(sv.max_abs_diff(before), 1e-13);
}

TEST(RxKernel, HalfPiMapsBasisToFlippedBasis) {
  // e^{-i pi/2 X} = -i X: |0> -> -i |1>.
  StateVector sv = StateVector::basis_state(3, 0b000);
  apply_rx(sv, 1, 3.14159265358979323846 / 2);
  EXPECT_NEAR(std::abs(sv[0b010] - cdouble(0, -1)), 0.0, 1e-12);
}

TEST(RxKernel, FullMixerEquivalenceAcrossQubits) {
  // Applying rx on each qubit in any order gives the same result
  // (the factors commute).
  StateVector a = random_state(7, 21);
  StateVector b = a;
  for (int q = 0; q < 7; ++q) apply_rx(a, q, 0.31);
  for (int q = 6; q >= 0; --q) apply_rx(b, q, 0.31);
  EXPECT_LT(a.max_abs_diff(b), 1e-12);
}

TEST(HadamardKernel, MatchesDenseReference) {
  StateVector sv = random_state(6, 2);
  const auto before = to_vec(sv);
  kern::hadamard(sv.data(), sv.size(), 3, Exec::Serial);
  EXPECT_LT(max_diff(to_vec(sv),
                     testing::ref_apply_1q(before, 3, testing::ref_matrix_h())),
            1e-13);
}

TEST(HadamardKernel, SelfInverse) {
  StateVector sv = random_state(8, 13);
  const StateVector before = sv;
  kern::hadamard(sv.data(), sv.size(), 5, Exec::Parallel);
  kern::hadamard(sv.data(), sv.size(), 5, Exec::Parallel);
  EXPECT_LT(sv.max_abs_diff(before), 1e-13);
}

TEST(Su2Product, AppliesPerQubitMatrices) {
  const int n = 5;
  StateVector a = random_state(n, 31);
  StateVector b = a;
  std::vector<Su2> us;
  for (int q = 0; q < n; ++q) us.push_back(random_su2(40 + q));
  apply_su2_product(a, us.data(), n);
  for (int q = 0; q < n; ++q) apply_su2(b, q, us[q]);
  EXPECT_LT(a.max_abs_diff(b), 1e-12);
}

TEST(Su2Product, RejectsWrongCount) {
  StateVector sv = StateVector::plus_state(4);
  std::vector<Su2> us(3);
  EXPECT_THROW(apply_su2_product(sv, us.data(), 3), std::invalid_argument);
}

TEST(Su2Kernel, RejectsBadQubit) {
  StateVector sv = StateVector::plus_state(4);
  EXPECT_THROW(apply_su2(sv, 4, Su2{}), std::out_of_range);
  EXPECT_THROW(apply_rx(sv, -1, 0.1), std::out_of_range);
}

}  // namespace
}  // namespace qokit
