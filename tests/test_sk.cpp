#include "problems/sk.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/bitops.hpp"
#include "diagonal/cost_diagonal.hpp"

namespace qokit {
namespace {

TEST(Sk, TermCountIsAllPairs) {
  const TermList t = sk_terms(10, 1);
  EXPECT_EQ(t.size(), 45u);
  for (const Term& term : t) EXPECT_EQ(term.order(), 2);
}

TEST(Sk, CouplingsAreRademacherOverSqrtN) {
  const int n = 12;
  const TermList t = sk_terms(n, 5);
  const double expected = 1.0 / std::sqrt(static_cast<double>(n));
  for (const Term& term : t)
    EXPECT_NEAR(std::abs(term.weight), expected, 1e-12);
}

TEST(Sk, DeterministicPerSeed) {
  const TermList a = sk_terms(9, 42);
  const TermList b = sk_terms(9, 42);
  for (std::uint64_t x = 0; x < 512; ++x)
    EXPECT_DOUBLE_EQ(a.evaluate(x), b.evaluate(x));
}

TEST(Sk, SpectrumIsFlipSymmetric) {
  const int n = 8;
  const TermList t = sk_terms(n, 7);
  const std::uint64_t mask = dim_of(n) - 1;
  for (std::uint64_t x = 0; x < dim_of(n); ++x)
    EXPECT_NEAR(t.evaluate(x), t.evaluate(~x & mask), 1e-12);
}

TEST(Sk, SpectrumMeanIsZero) {
  // Every order-2 monomial averages to zero over the cube.
  const CostDiagonal d = CostDiagonal::precompute(sk_terms(10, 9));
  double mean = 0.0;
  for (std::uint64_t x = 0; x < d.size(); ++x) mean += d[x];
  EXPECT_NEAR(mean / d.size(), 0.0, 1e-12);
}

TEST(Sk, BruteForceFindsSpectrumMinimum) {
  const TermList t = sk_terms(10, 11);
  const CostDiagonal d = CostDiagonal::precompute(t);
  EXPECT_NEAR(sk_brute_force(t), d.min_value(), 1e-12);
}

TEST(Sk, GroundEnergyScalesRoughlyLinearly) {
  // The SK ground state sits near -0.76 * n for large n; at small n we
  // only check it is clearly extensive and negative.
  for (int n : {8, 12, 16}) {
    const double e = sk_brute_force(sk_terms(n, 13));
    EXPECT_LT(e, -0.4 * n) << "n=" << n;
    EXPECT_GT(e, -1.2 * n) << "n=" << n;
  }
}

TEST(Sk, RejectsTinyN) {
  EXPECT_THROW(sk_terms(1, 0), std::invalid_argument);
}

}  // namespace
}  // namespace qokit
