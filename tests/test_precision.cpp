// Mixed-precision (prec=f32) contract suite.
//
// Pins the three promises the f32 amplitude path makes (DESIGN.md "Mixed
// precision"): (1) determinism — at a fixed dispatch level and precision,
// the evolved bits never depend on Exec policy, thread count, or
// pipeline fusion; (2) containment — every reduction and the sampler CDF
// accumulate in double, so f32 drift stays at amplitude-rounding scale
// and never compounds through objectives; (3) an explicit error budget —
// the layer-by-layer drift of an f32 evolution against the f64 oracle on
// a deep (p = 100) schedule stays under pinned tolerances. Plus the
// satellite surfaces: spec grammar round-trip, QOKIT_PREC resolution,
// f32 sampler clamp, session footprint halving, the precision gauge, and
// the unsupported-combination throws.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <optional>
#include <string>

#include "api/qokit.hpp"
#include "common/bitops.hpp"
#include "common/cpu_features.hpp"
#include "obs/obs.hpp"
#include "serve/session_cache.hpp"
#include "statevector/sampling.hpp"

namespace qokit {
namespace {

/// Restores the dispatch level that was active at test entry (which may be
/// a QOKIT_SIMD=scalar override, not the detected level).
struct SimdLevelGuard {
  SimdLevel entry = active_simd_level();
  ~SimdLevelGuard() { force_simd_level(entry); }
};

/// Saves and restores one environment variable across a test that has to
/// own it (the CI prec=f32 leg exports QOKIT_PREC for the whole binary).
struct EnvGuard {
  explicit EnvGuard(const char* name) : name_(name) {
    if (const char* v = std::getenv(name)) saved_ = v;
  }
  ~EnvGuard() {
    if (saved_) ::setenv(name_.c_str(), saved_->c_str(), 1);
    else ::unsetenv(name_.c_str());
  }
  std::string name_;
  std::optional<std::string> saved_;
};

StateVector random_state(int n, std::uint64_t seed) {
  Rng rng(seed);
  StateVector sv(n);
  for (std::uint64_t i = 0; i < sv.size(); ++i)
    sv[i] = cdouble(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
  sv.normalize();
  return sv;
}

std::pair<std::vector<double>, std::vector<double>> ramp_schedule(int p) {
  std::vector<double> g(p), b(p);
  for (int l = 0; l < p; ++l) {
    const double t = (l + 0.5) / p;
    g[l] = 0.55 * t;        // gamma ramps up,
    b[l] = 0.65 * (1 - t);  // beta ramps down (the standard annealing shape)
  }
  return {g, b};
}

// ------------------------------------------------------------ spec grammar

TEST(PrecisionSpec, TokenRoundTripsAndAutoIsElided) {
  EXPECT_EQ(SimulatorSpec::parse("auto:prec=f32").to_string(),
            "auto:prec=f32");
  EXPECT_EQ(SimulatorSpec::parse("serial:prec=f64").to_string(),
            "serial:prec=f64");
  // Auto is the default and renders as nothing: pre-existing spellings
  // (and therefore serve cache keys) are byte-identical to before.
  EXPECT_EQ(SimulatorSpec::parse("auto").to_string(), "auto");
  EXPECT_EQ(SimulatorSpec::parse("auto:prec=auto").to_string(), "auto");
  EXPECT_EQ(SimulatorSpec{}.prec, Prec::Auto);

  const SimulatorSpec spec = SimulatorSpec::parse("u16:prec=f32:seed=9");
  EXPECT_EQ(spec.prec, Prec::F32);
  EXPECT_EQ(SimulatorSpec::parse(spec.to_string()), spec);

  EXPECT_THROW(SimulatorSpec::parse("auto:prec=half"),
               std::invalid_argument);
  EXPECT_THROW(SimulatorSpec::parse("auto:prec="), std::invalid_argument);
}

// ------------------------------------------------------- statevector basics

TEST(PrecisionState, F32FactoriesAndAccessors) {
  const int n = 8;
  const StateVector sv = StateVector::plus_state(n, Precision::F32);
  EXPECT_EQ(sv.precision(), Precision::F32);
  EXPECT_EQ(sv.size(), dim_of(n));
  EXPECT_EQ(sv.bytes(), dim_of(n) * sizeof(cfloat));
  EXPECT_NEAR(sv.norm_squared(), 1.0, 1e-6);
  const double amp = 1.0 / std::sqrt(static_cast<double>(dim_of(n)));
  EXPECT_NEAR(sv.at(0).real(), amp, 1e-7);
  EXPECT_EQ(sv.at(0).imag(), 0.0);

  const StateVector basis =
      StateVector::basis_state(n, 5, Precision::F32);
  EXPECT_EQ(basis.at(5), cdouble(1.0, 0.0));
  EXPECT_EQ(basis.at(4), cdouble(0.0, 0.0));

  const StateVector dicke =
      StateVector::dicke_state(n, 3, Precision::F32);
  EXPECT_NEAR(dicke.weight_sector_mass(3), 1.0, 1e-6);
}

TEST(PrecisionState, ConversionRoundTripAndWidening) {
  const StateVector f64 = random_state(8, 101);
  const StateVector f32 = f64.to_precision(Precision::F32);
  EXPECT_EQ(f32.precision(), Precision::F32);
  // One rounding per component: within float eps of the original (unit
  // norm at n = 8 means amplitudes ~ 1/16, so well under 1e-7 absolute).
  EXPECT_LE(f64.max_abs_diff(f32), 1e-7);
  // Widening is exact, so narrow -> widen -> narrow is a fixed point.
  const StateVector widened = f32.to_precision(Precision::F64);
  EXPECT_EQ(widened.precision(), Precision::F64);
  EXPECT_EQ(widened.max_abs_diff(f32), 0.0);
  EXPECT_EQ(widened.to_precision(Precision::F32).max_abs_diff(f32), 0.0);
  // Same-precision conversion is a plain copy.
  EXPECT_EQ(f64.to_precision(Precision::F64).max_abs_diff(f64), 0.0);
  // Mixed-precision inner products are refused, not silently widened.
  EXPECT_THROW((void)f64.inner(f32), std::invalid_argument);
}

// -------------------------------------------------- error budget vs oracle

TEST(PrecisionErrorBudget, DeepScheduleDriftStaysPinned) {
  // The tentpole study at test scale: evolve the same LABS problem through
  // a p = 100 schedule at both precisions, layer by layer, and pin the
  // per-layer amplitude drift and the final (double-accumulated)
  // expectation error. QOKIT_PRECISION_STUDY_N widens the state for the
  // full-size (n = 24) run; bench_precision performs that by default.
  int n = 14;
  if (const char* env = std::getenv("QOKIT_PRECISION_STUDY_N"))
    n = std::atoi(env);
  const int p = 100;
  const TermList terms = labs_terms(n);
  const auto [g, b] = ramp_schedule(p);
  const std::span<const double> gammas(g), betas(b);

  FurConfig cfg64;
  cfg64.exec = Exec::Serial;
  FurConfig cfg32 = cfg64;
  cfg32.prec = Precision::F32;
  const FurQaoaSimulator sim64(terms, cfg64);
  const FurQaoaSimulator sim32(terms, cfg32);

  StateVector s64 = sim64.initial_state();
  StateVector s32 = sim32.initial_state();
  ASSERT_EQ(s32.precision(), Precision::F32);
  double max_drift = 0.0;
  for (int l = 0; l < p; ++l) {
    s64 = sim64.simulate_qaoa_from(std::move(s64), gammas.subspan(l, 1),
                                   betas.subspan(l, 1));
    s32 = sim32.simulate_qaoa_from(std::move(s32), gammas.subspan(l, 1),
                                   betas.subspan(l, 1));
    const double drift = s64.max_abs_diff(s32);  // widens f32 internally
    max_drift = std::max(max_drift, drift);
    // Per-layer pin: rounding-noise scale, far below any accumulation bug
    // (a single float-typed accumulator shows up as ~1e-3 here).
    ASSERT_LE(drift, 1e-5) << "layer " << l;
  }
  // The drift is real (f32 actually rounds) but tiny.
  EXPECT_GT(max_drift, 0.0);
  // Double-accumulated reductions: expectation error stays at drift scale
  // even though the LABS spectrum spans O(n^2) units.
  const double e64 = sim64.get_expectation(s64);
  const double e32 = sim32.get_expectation(s32);
  EXPECT_NEAR(e32, e64, 1e-2);
  // Unitarity survives 100 layers of f32 rounding.
  EXPECT_NEAR(s32.norm_squared(), 1.0, 1e-4);
  // Overlap reduction on the f32 state (double-accumulated) tracks f64.
  EXPECT_NEAR(sim32.get_overlap(s32), sim64.get_overlap(s64), 1e-4);
}

// ----------------------------------------------------------- determinism

TEST(PrecisionDeterminism, ExecPolicyNeverChangesF32Bits) {
  const TermList terms = labs_terms(12);
  const auto [g, b] = ramp_schedule(4);
  FurConfig serial_cfg;
  serial_cfg.exec = Exec::Serial;
  serial_cfg.prec = Precision::F32;
  FurConfig parallel_cfg = serial_cfg;
  parallel_cfg.exec = Exec::Parallel;
  const FurQaoaSimulator s(terms, serial_cfg);
  const FurQaoaSimulator par(terms, parallel_cfg);
  const StateVector a = s.simulate_qaoa(g, b);
  const StateVector c = par.simulate_qaoa(g, b);
  EXPECT_EQ(a.max_abs_diff(c), 0.0);
  EXPECT_EQ(s.get_expectation(a), par.get_expectation(c));
  EXPECT_EQ(a.norm_squared(Exec::Serial), c.norm_squared(Exec::Parallel));
}

TEST(PrecisionDeterminism, FusedPipelineIsBitIdenticalAtF32) {
  // The pipeline's bit-identity contract (same kernels over the same
  // absolute index ranges, only the traversal order differs) is
  // precision-agnostic; pin that it actually holds for float amplitudes.
  const TermList terms = labs_terms(12);
  const auto [g, b] = ramp_schedule(3);
  FurConfig on_cfg;
  on_cfg.prec = Precision::F32;
  on_cfg.pipeline.mode = pipeline::PipelineMode::On;
  FurConfig off_cfg = on_cfg;
  off_cfg.pipeline.mode = pipeline::PipelineMode::Off;
  const FurQaoaSimulator fused(terms, on_cfg);
  const FurQaoaSimulator unfused(terms, off_cfg);
  EXPECT_EQ(
      fused.simulate_qaoa(g, b).max_abs_diff(unfused.simulate_qaoa(g, b)),
      0.0);
  // The fused simulate+reduce path returns the same double as the
  // two-pass split on the f32 state.
  StateVector scratch = fused.initial_state();
  const double fused_e = fused.simulate_qaoa_expectation(scratch, g, b);
  const StateVector two_pass = unfused.simulate_qaoa(g, b);
  EXPECT_EQ(fused_e, unfused.get_expectation(two_pass));
}

TEST(PrecisionDeterminism, SimdLevelsAgreeAndAreInternallyBitStable) {
  if (detect_simd_level() == SimdLevel::Scalar)
    GTEST_SKIP() << "scalar-only build/host";
  SimdLevelGuard guard;
  const TermList terms = labs_terms(11);
  const auto [g, b] = ramp_schedule(3);
  FurConfig cfg;
  cfg.prec = Precision::F32;

  force_simd_level(SimdLevel::Scalar);
  const FurQaoaSimulator scalar_sim(terms, cfg);
  const StateVector scalar_r = scalar_sim.simulate_qaoa(g, b);
  const StateVector scalar_r2 = scalar_sim.simulate_qaoa(g, b);
  EXPECT_EQ(scalar_r.max_abs_diff(scalar_r2), 0.0);
  const double scalar_e = scalar_sim.get_expectation(scalar_r);

  force_simd_level(detect_simd_level());
  const FurQaoaSimulator vec_sim(terms, cfg);
  const StateVector vec_r = vec_sim.simulate_qaoa(g, b);
  const StateVector vec_r2 = vec_sim.simulate_qaoa(g, b);
  EXPECT_EQ(vec_r.max_abs_diff(vec_r2), 0.0);
  // Families may round differently (8-wide f32 lanes vs scalar), but only
  // at float-rounding scale.
  EXPECT_LE(scalar_r.max_abs_diff(vec_r), 5e-6);
  EXPECT_NEAR(vec_sim.get_expectation(vec_r), scalar_e, 1e-4);
}

// ------------------------------------------------------- sampler (sat. 1)

TEST(PrecisionSampler, F32CdfAccumulatesInDoubleAndClamps) {
  // The PR 3 clamp regression, re-pinned on the f32 path: trailing zero
  // amplitudes must never be sampled, even at u = 1.0.
  StateVector sv(3, Precision::F32);
  sv.data_f32()[1] = cfloat(std::sqrt(0.5f), 0.0f);
  sv.data_f32()[3] = cfloat(0.0f, std::sqrt(0.5f));
  const StateSampler sampler(sv);
  EXPECT_EQ(sampler.sample_from_uniform(1.0), 3u);
  EXPECT_EQ(sampler.sample_from_uniform(std::nextafter(1.0, 0.0)), 3u);
  EXPECT_EQ(sampler.sample_from_uniform(0.0), 1u);
  Rng rng(73);
  for (int s = 0; s < 2000; ++s) {
    const std::uint64_t x = sampler.sample(rng);
    EXPECT_TRUE(x == 1u || x == 3u) << x;
  }
  // A uniform f32 state samples every bin; the double-accumulated CDF
  // reaches each one despite 2^10 float squares summing up.
  const StateVector plus = StateVector::plus_state(10, Precision::F32);
  const StateSampler psampler(plus);
  EXPECT_EQ(psampler.sample_from_uniform(0.0), 0u);
  EXPECT_EQ(psampler.sample_from_uniform(1.0), plus.size() - 1);
}

// ------------------------------------------------- serve footprint (sat. 2)

TEST(PrecisionFootprint, F32SessionsChargeHalfTheAmplitudeBytes) {
  const int n = 12;
  const std::uint64_t dim = dim_of(n);
  const std::uint64_t f64 =
      serve::session_footprint_bytes(n, 20, Precision::F64);
  const std::uint64_t f32 =
      serve::session_footprint_bytes(n, 20, Precision::F32);
  // Floors: f64 diagonal (8 B/amp) + three statevectors at the actual
  // amplitude width (48 B/amp f64, 24 B/amp f32).
  EXPECT_GE(f64, dim * 56);
  EXPECT_GE(f32, dim * 32);
  EXPECT_LT(f32, f64);
  // The default-precision overload is the f64 one (legacy callers).
  EXPECT_EQ(serve::session_footprint_bytes(n, 20), f64);

  const TermList terms = labs_terms(10);
  const api::ProblemSession wide(terms,
                                 SimulatorSpec::parse("serial:prec=f64"));
  const api::ProblemSession narrow(terms,
                                   SimulatorSpec::parse("serial:prec=f32"));
  EXPECT_LT(serve::session_footprint_bytes(narrow),
            serve::session_footprint_bytes(wide));
}

// ------------------------------------------------------ obs gauge (sat. 3)

TEST(PrecisionObs, GaugeTracksTheLastBuiltSimulator) {
  obs::set_enabled(true);
  const obs::Gauge bits = obs::gauge("qokit_precision_bits");
  const TermList terms = labs_terms(8);
  auto f32 = make_simulator(terms, SimulatorSpec::parse("serial:prec=f32"));
  EXPECT_EQ(f32->precision(), Precision::F32);
  EXPECT_EQ(bits.value(), 32.0);
  auto f64 = make_simulator(terms, SimulatorSpec::parse("serial:prec=f64"));
  EXPECT_EQ(f64->precision(), Precision::F64);
  EXPECT_EQ(bits.value(), 64.0);
}

// ---------------------------------------------- resolution & refusal rules

TEST(PrecisionResolution, AutoFollowsEnvOnlyWhereSupported) {
  const EnvGuard guard("QOKIT_PREC");
  const TermList terms = labs_terms(8);
  ::unsetenv("QOKIT_PREC");
  EXPECT_EQ(make_simulator(terms, SimulatorSpec::parse("auto"))->precision(),
            Precision::F64);
  ::setenv("QOKIT_PREC", "f32", 1);
  EXPECT_EQ(make_simulator(terms, SimulatorSpec::parse("auto"))->precision(),
            Precision::F32);
  EXPECT_EQ(
      make_simulator(terms, SimulatorSpec::parse("dist:2"))->precision(),
      Precision::F32);
  // Unsupported combinations downgrade silently under Auto (so a
  // QOKIT_PREC=f32 full-suite run still passes everywhere)...
  EXPECT_EQ(
      make_simulator(terms, SimulatorSpec::parse("gatesim"))->precision(),
      Precision::F64);
  EXPECT_EQ(make_simulator(terms, SimulatorSpec::parse("auto:mixer=xyring"))
                ->precision(),
            Precision::F64);
  // ...and an explicit prec=f64 wins over the environment.
  EXPECT_EQ(
      make_simulator(terms, SimulatorSpec::parse("auto:prec=f64"))
          ->precision(),
      Precision::F64);
}

TEST(PrecisionResolution, ExplicitF32OnUnsupportedCombosThrows) {
  const TermList terms = labs_terms(8);
  EXPECT_THROW(make_simulator(terms, SimulatorSpec::parse("gatesim:prec=f32")),
               std::invalid_argument);
  EXPECT_THROW(
      make_simulator(terms, SimulatorSpec::parse("auto:prec=f32:mixer=xyring")),
      std::invalid_argument);
  EXPECT_THROW(make_simulator(
                   terms, SimulatorSpec::parse("auto:prec=f32:mixer=xycomplete")),
               std::invalid_argument);
  FurConfig cfg;
  cfg.prec = Precision::F32;
  cfg.mixer = MixerType::XYRing;
  EXPECT_THROW(FurQaoaSimulator(terms, cfg), std::invalid_argument);
  // The f64-only subsystems refuse float states instead of reading the
  // wrong buffer.
  StateVector f32 = StateVector::plus_state(4, Precision::F32);
  const std::vector<double> betas(4, 0.3);
  EXPECT_THROW(apply_mixer_x_multiangle(f32, betas, Exec::Serial),
               std::invalid_argument);
}

// -------------------------------------------------------- session surface

TEST(PrecisionSession, F32EvaluateMatchesTheRawSimulator) {
  // The precision-erased session path (cached initial state, batch
  // scratch, fused expectation) returns the same bits as a fresh f32
  // simulator -- nothing in the session layer re-rounds or widens.
  const TermList terms = labs_terms(9);
  const auto [g, b] = ramp_schedule(3);
  QaoaParams params;
  params.gammas = g;
  params.betas = b;
  const api::ProblemSession session(terms,
                                    SimulatorSpec::parse("auto:prec=f32"));
  const auto raw = make_simulator(terms, SimulatorSpec::parse("auto:prec=f32"));
  const StateVector ref = raw->simulate_qaoa(g, b);
  EXPECT_EQ(ref.precision(), Precision::F32);

  api::EvalRequest request;
  request.overlap = true;
  request.shots = 64;
  const api::EvalResult r = session.evaluate(params, request);
  EXPECT_EQ(*r.expectation, raw->get_expectation(ref));
  EXPECT_EQ(*r.overlap, raw->get_overlap(ref));
  ASSERT_TRUE(r.samples.has_value());
  EXPECT_EQ(r.samples->size(), 64u);
  EXPECT_EQ(session.simulate(params).max_abs_diff(ref), 0.0);
  // Batch evaluation reuses precision-matched scratch slots and agrees.
  const std::vector<QaoaParams> batch{params, params, params};
  const std::vector<double> es = session.expectations(batch);
  for (const double e : es) EXPECT_EQ(e, raw->get_expectation(ref));
}

}  // namespace
}  // namespace qokit
