// Alltoall and virtual-rank-world edge cases: the K=1 degenerate world,
// the K = 2^(n/2) extreme where each exchange block is a single amplitude,
// bit-identity across the three transports, and scheduling-independence
// (determinism) of world results.
#include <gtest/gtest.h>

#include <vector>

#include "api/qokit.hpp"
#include "common/rng.hpp"
#include "dist/dist_fur.hpp"
#include "problems/labs.hpp"

namespace qokit {
namespace {

TEST(AlltoallEdge, SingleRankExchangeIsANoOp) {
  VirtualRankWorld world(1, AlltoallStrategy::Staged);
  std::vector<cdouble> buf(64);
  Rng rng(11);
  for (auto& v : buf) v = cdouble(rng.normal(), rng.normal());
  const auto original = buf;
  world.run([&](Communicator& comm) {
    EXPECT_EQ(comm.size(), 1);
    comm.alltoall(buf.data(), 64);  // one rank, one block: identity
    comm.alltoall(buf.data(), 8);   // block size must not matter
  });
  EXPECT_EQ(buf, original);
}

TEST(AlltoallEdge, SingleAmplitudeBlocksAtMaximumRankCount) {
  // K = 2^n ranks over a 2^(2n)-element buffer per rank is the simulator's
  // K = 2^(n/2) extreme: every exchanged block is exactly one amplitude.
  const int k = 16;
  for (const auto strategy : {AlltoallStrategy::Staged,
                              AlltoallStrategy::Pairwise,
                              AlltoallStrategy::Direct}) {
    VirtualRankWorld world(k, strategy);
    std::vector<std::vector<cdouble>> bufs(k);
    world.run([&](Communicator& comm) {
      auto& mine = bufs[comm.rank()];
      mine.resize(k);
      for (int b = 0; b < k; ++b)
        mine[b] = cdouble(comm.rank(), b);
      comm.alltoall(mine.data(), 1);
    });
    for (int r = 0; r < k; ++r)
      for (int b = 0; b < k; ++b)
        EXPECT_EQ(bufs[r][b], cdouble(b, r))
            << "strategy " << to_string(strategy);
  }
}

TEST(AlltoallEdge, AllStrategiesProduceBitIdenticalSlices) {
  const int k = 8;
  const std::uint64_t block = 37;  // deliberately not a power of two
  std::vector<std::vector<std::vector<cdouble>>> results;
  for (const auto strategy : {AlltoallStrategy::Staged,
                              AlltoallStrategy::Pairwise,
                              AlltoallStrategy::Direct}) {
    VirtualRankWorld world(k, strategy);
    std::vector<std::vector<cdouble>> bufs(k);
    world.run([&](Communicator& comm) {
      Rng rng(500 + comm.rank());  // same data for every strategy
      auto& mine = bufs[comm.rank()];
      mine.resize(k * block);
      for (auto& v : mine) v = cdouble(rng.normal(), rng.normal());
      comm.alltoall(mine.data(), block);
    });
    results.push_back(std::move(bufs));
  }
  for (std::size_t s = 1; s < results.size(); ++s)
    for (int r = 0; r < k; ++r)
      EXPECT_EQ(results[s][r], results[0][r]) << "strategy " << s;
}

TEST(AlltoallEdge, RepeatedRunsAreSchedulingIndependent) {
  // The world spawns real threads; results must not depend on how the OS
  // schedules them. Exact equality across repeats is the check.
  const TermList terms = labs_terms(8);
  const std::vector<double> g{0.37, -0.21}, b{0.82, 0.44};
  const DistributedFurSimulator sim(
      terms, {.ranks = 8, .strategy = AlltoallStrategy::Direct});
  const StateVector first = sim.simulate_qaoa(g, b);
  const double e_first = sim.simulate_and_expectation(g, b);
  for (int repeat = 0; repeat < 5; ++repeat) {
    EXPECT_EQ(sim.simulate_qaoa(g, b).max_abs_diff(first), 0.0) << repeat;
    EXPECT_EQ(sim.simulate_and_expectation(g, b), e_first) << repeat;
  }
}

TEST(AlltoallEdge, AllreduceIsDeterministicAcrossRepeats) {
  // allreduce_sum sums the slots in rank order, so the total is exactly
  // reproducible even though doubles do not commute associatively.
  VirtualRankWorld world(8, AlltoallStrategy::Pairwise);
  std::vector<double> totals;
  for (int repeat = 0; repeat < 20; ++repeat) {
    double total = 0.0;
    world.run([&](Communicator& comm) {
      Rng rng(900 + comm.rank());
      const double t = comm.allreduce_sum(rng.normal() * 1e6 + rng.normal());
      if (comm.rank() == 0) total = t;
    });
    totals.push_back(total);
  }
  for (double t : totals) EXPECT_EQ(t, totals[0]);
}

TEST(DistEdge, MaximumRankCountSimulatorMatchesSingleNode) {
  // n = 8, K = 16: 2*log2(K) == n, the tightest shard the constructor
  // accepts; each rank owns 16 amplitudes and exchanges 1-amplitude blocks.
  const TermList terms = labs_terms(8);
  const std::vector<double> g{0.3, -0.4}, b{0.7, 0.2};
  const FurQaoaSimulator single(terms, {.exec = Exec::Serial});
  const StateVector ref = single.simulate_qaoa(g, b);
  for (const auto strategy : {AlltoallStrategy::Staged,
                              AlltoallStrategy::Pairwise,
                              AlltoallStrategy::Direct}) {
    const DistributedFurSimulator sim(terms,
                                      {.ranks = 16, .strategy = strategy});
    EXPECT_LT(sim.simulate_qaoa(g, b).max_abs_diff(ref), 1e-12)
        << to_string(strategy);
  }
}

TEST(DistEdge, ThrowingRankDoesNotWedgeOrCrashSurvivors) {
  // One rank dies before ever publishing an exchange window; the others
  // proceed into a collective. Survivors must abandon the exchange (not
  // dereference the dead rank's window, not deadlock) and the world must
  // re-throw the original exception after the join.
  for (const auto strategy :
       {AlltoallStrategy::Staged, AlltoallStrategy::Pairwise,
        AlltoallStrategy::Direct}) {
    VirtualRankWorld world(4, strategy);
    std::vector<std::vector<cdouble>> bufs(4);
    EXPECT_THROW(world.run([&](Communicator& comm) {
      if (comm.rank() == 0) throw std::runtime_error("rank 0 down");
      auto& mine = bufs[comm.rank()];
      mine.resize(4 * 8);
      comm.alltoall(mine.data(), 8);
    }),
                 std::runtime_error)
        << to_string(strategy);
  }
}

TEST(DistEdge, ApiSimulatorSpellingsRouteToDistributedBackend) {
  const std::vector<double> g{0.3, -0.2}, b{0.8, 0.4};
  const auto ref = api::qaoa_labs_evaluate(10, g, b, "serial");
  for (const char* name : {"dist", "dist:1", "dist:4", "dist:4:staged",
                           "dist:4:pairwise", "dist:4:direct"}) {
    const auto r = api::qaoa_labs_evaluate(10, g, b, name);
    EXPECT_NEAR(r.expectation, ref.expectation, 1e-10) << name;
    EXPECT_NEAR(r.ground_overlap, ref.ground_overlap, 1e-10) << name;
  }
  for (const char* name :
       {"dist:", "dist:x", "dist:4:", "dist:4:bogus", "dist:3", "dist:0",
        "dist:-2", "dist: 4", "distant"}) {
    EXPECT_THROW((void)api::qaoa_labs_evaluate(10, g, b, name),
                 std::invalid_argument)
        << name;
  }
}

TEST(DistEdge, StrategyNamesRoundTrip) {
  for (const auto strategy : {AlltoallStrategy::Staged,
                              AlltoallStrategy::Pairwise,
                              AlltoallStrategy::Direct})
    EXPECT_EQ(alltoall_strategy_from_string(to_string(strategy)), strategy);
  EXPECT_THROW(alltoall_strategy_from_string("carrier-pigeon"),
               std::invalid_argument);
}

}  // namespace
}  // namespace qokit
