#include "fur/su4.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/bitops.hpp"
#include "common/rng.hpp"
#include "support/reference.hpp"

namespace qokit {
namespace {

using testing::max_diff;
using testing::to_vec;

StateVector random_state(int n, std::uint64_t seed) {
  Rng rng(seed);
  StateVector sv(n);
  for (std::uint64_t x = 0; x < sv.size(); ++x)
    sv[x] = cdouble(rng.normal(), rng.normal());
  sv.normalize();
  return sv;
}

class XyKernelTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(XyKernelTest, MatchesDenseReference) {
  const auto [n, q1, q2] = GetParam();
  if (q1 >= n || q2 >= n || q1 == q2) GTEST_SKIP();
  const double beta = 0.543;
  StateVector sv = random_state(n, 17);
  const auto before = to_vec(sv);
  apply_xy(sv, q1, q2, beta, Exec::Serial);
  EXPECT_LT(max_diff(to_vec(sv), testing::ref_apply_2q(
                                     before, q1, q2, testing::ref_matrix_xy(
                                                         beta))),
            1e-12);
}

INSTANTIATE_TEST_SUITE_P(Pairs, XyKernelTest,
                         ::testing::Combine(::testing::Values(2, 4, 6),
                                            ::testing::Values(0, 1, 3),
                                            ::testing::Values(1, 2, 5)));

TEST(XyKernel, SymmetricInQubitOrder) {
  StateVector a = random_state(6, 3);
  StateVector b = a;
  apply_xy(a, 1, 4, 0.8);
  apply_xy(b, 4, 1, 0.8);
  EXPECT_LT(a.max_abs_diff(b), 1e-14);
}

TEST(XyKernel, PreservesNormAndHammingSectors) {
  StateVector sv = StateVector::dicke_state(8, 3);
  apply_xy(sv, 2, 6, 1.1, Exec::Parallel);
  EXPECT_NEAR(sv.norm_squared(), 1.0, 1e-12);
  EXPECT_NEAR(sv.weight_sector_mass(3), 1.0, 1e-12);
}

TEST(XyKernel, SwapAngleExchangesAmplitudes) {
  // At beta = pi/2 the XY rotation maps |01> -> -i|10>.
  StateVector sv = StateVector::basis_state(2, 0b01);
  apply_xy(sv, 0, 1, 3.14159265358979323846 / 2);
  EXPECT_NEAR(std::abs(sv[0b10] - cdouble(0, -1)), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(sv[0b01]), 0.0, 1e-12);
}

TEST(XyKernel, IdentityOnAlignedStates) {
  // |00> and |11> are untouched for any angle.
  StateVector sv(2);
  sv[0b00] = cdouble(0.6, 0.0);
  sv[0b11] = cdouble(0.0, 0.8);
  apply_xy(sv, 0, 1, 0.9);
  EXPECT_NEAR(std::abs(sv[0b00] - cdouble(0.6, 0.0)), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(sv[0b11] - cdouble(0.0, 0.8)), 0.0, 1e-14);
}

TEST(XyKernel, InverseUndoes) {
  StateVector sv = random_state(7, 23);
  const StateVector before = sv;
  apply_xy(sv, 0, 5, 0.77);
  apply_xy(sv, 0, 5, -0.77);
  EXPECT_LT(sv.max_abs_diff(before), 1e-13);
}

TEST(Su4Kernel, MatchesDenseReferenceForRandomMatrix) {
  Rng rng(5);
  std::array<cdouble, 16> m;
  for (auto& v : m) v = cdouble(rng.normal(), rng.normal());
  StateVector sv = random_state(5, 29);
  const auto before = to_vec(sv);
  kern::su4(sv.data(), sv.size(), 1, 3, m.data(), Exec::Serial);
  EXPECT_LT(max_diff(to_vec(sv), testing::ref_apply_2q(before, 1, 3, m)),
            1e-12);
}

TEST(Su4Kernel, SerialAndParallelAgree) {
  Rng rng(8);
  std::array<cdouble, 16> m;
  for (auto& v : m) v = cdouble(rng.normal(), rng.normal());
  StateVector a = random_state(11, 31);
  StateVector b = a;
  kern::su4(a.data(), a.size(), 2, 9, m.data(), Exec::Serial);
  kern::su4(b.data(), b.size(), 2, 9, m.data(), Exec::Parallel);
  EXPECT_LT(a.max_abs_diff(b), 1e-14);
}

TEST(Su4Kernel, RejectsEqualQubits) {
  StateVector sv = StateVector::plus_state(4);
  std::array<cdouble, 16> m{};
  EXPECT_THROW(kern::su4(sv.data(), sv.size(), 2, 2, m.data(), Exec::Serial),
               std::invalid_argument);
  EXPECT_THROW(apply_xy(sv, 1, 1, 0.1), std::invalid_argument);
}

}  // namespace
}  // namespace qokit
