#include "common/bitops.hpp"

#include <gtest/gtest.h>

#include <set>

namespace qokit {
namespace {

TEST(Bitops, PopcountBasics) {
  EXPECT_EQ(popcount(0), 0);
  EXPECT_EQ(popcount(1), 1);
  EXPECT_EQ(popcount(0b1011), 3);
  EXPECT_EQ(popcount(~0ull), 64);
}

TEST(Bitops, ParityBasics) {
  EXPECT_EQ(parity(0), 0);
  EXPECT_EQ(parity(1), 1);
  EXPECT_EQ(parity(0b11), 0);
  EXPECT_EQ(parity(0b111), 1);
}

TEST(Bitops, ParitySignMatchesSpinProduct) {
  // parity_sign(x, mask) must equal prod_{i in mask} s_i with s = 1 - 2b.
  for (std::uint64_t x = 0; x < 64; ++x)
    for (std::uint64_t mask : {0b1ull, 0b110ull, 0b101101ull}) {
      double prod = 1.0;
      for (int q = 0; q < 6; ++q)
        if (test_bit(mask, q)) prod *= spin_of_bit(x, q);
      EXPECT_DOUBLE_EQ(parity_sign(x, mask), prod) << "x=" << x;
    }
}

TEST(Bitops, SpinOfBitConvention) {
  EXPECT_EQ(spin_of_bit(0b0, 0), 1);   // bit 0 -> spin +1
  EXPECT_EQ(spin_of_bit(0b1, 0), -1);  // bit 1 -> spin -1
  EXPECT_EQ(spin_of_bit(0b10, 1), -1);
  EXPECT_EQ(spin_of_bit(0b10, 0), 1);
}

TEST(Bitops, SetAndTestBit) {
  std::uint64_t x = 0;
  x = set_bit(x, 5);
  EXPECT_TRUE(test_bit(x, 5));
  EXPECT_FALSE(test_bit(x, 4));
  EXPECT_EQ(x, 32u);
}

TEST(Bitops, DimOf) {
  EXPECT_EQ(dim_of(0), 1u);
  EXPECT_EQ(dim_of(1), 2u);
  EXPECT_EQ(dim_of(10), 1024u);
  EXPECT_EQ(dim_of(30), 1ull << 30);
}

class InsertZeroBitTest : public ::testing::TestWithParam<int> {};

TEST_P(InsertZeroBitTest, ProducesAllIndicesWithBitClear) {
  const int q = GetParam();
  const int n = 6;
  std::set<std::uint64_t> seen;
  for (std::uint64_t k = 0; k < dim_of(n - 1); ++k) {
    const std::uint64_t i = insert_zero_bit(k, q);
    EXPECT_FALSE(test_bit(i, q)) << "bit q must be zero";
    EXPECT_LT(i, dim_of(n));
    seen.insert(i);
  }
  // Exactly the 2^{n-1} indices with bit q clear, each exactly once.
  EXPECT_EQ(seen.size(), dim_of(n - 1));
}

TEST_P(InsertZeroBitTest, IsMonotone) {
  const int q = GetParam();
  std::uint64_t prev = 0;
  for (std::uint64_t k = 1; k < 64; ++k) {
    const std::uint64_t i = insert_zero_bit(k, q);
    EXPECT_GT(i, prev);
    prev = i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllPositions, InsertZeroBitTest,
                         ::testing::Values(0, 1, 2, 3, 4, 5));

TEST(Bitops, InsertTwoZeroBitsCoversFourElementOrbits) {
  const int n = 6;
  const int q_lo = 1, q_hi = 4;
  std::set<std::uint64_t> seen;
  for (std::uint64_t k = 0; k < dim_of(n - 2); ++k) {
    const std::uint64_t base = insert_two_zero_bits(k, q_lo, q_hi);
    EXPECT_FALSE(test_bit(base, q_lo));
    EXPECT_FALSE(test_bit(base, q_hi));
    seen.insert(base);
  }
  EXPECT_EQ(seen.size(), dim_of(n - 2));
}

TEST(Bitops, InsertZeroBitAtZeroDoublesIndex) {
  for (std::uint64_t k = 0; k < 32; ++k)
    EXPECT_EQ(insert_zero_bit(k, 0), 2 * k);
}

}  // namespace
}  // namespace qokit
