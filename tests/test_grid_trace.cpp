// Grid search, per-layer traces and the k-SAT one-liner.
#include <gtest/gtest.h>

#include "api/qokit.hpp"

namespace qokit {
namespace {

TEST(GridSearch, FindsKnownMinimumOfCoarseGrid) {
  const TermList terms = maxcut_terms(Graph::random_regular(8, 3, 17));
  const FurQaoaSimulator sim(terms, {});
  const GridResult r =
      grid_search_p1(sim, 9, 9, 0.0, 1.2, -1.2, 0.0);
  // The reported value must match a direct evaluation at the minimizer.
  const double g[1] = {r.gamma}, b[1] = {r.beta};
  EXPECT_NEAR(sim.get_expectation(sim.simulate_qaoa(g, b)), r.value, 1e-10);
  // And be at least as good as the corners.
  for (double cg : {0.0, 1.2})
    for (double cb : {-1.2, 0.0}) {
      const double gg[1] = {cg}, bb[1] = {cb};
      EXPECT_LE(r.value,
                sim.get_expectation(sim.simulate_qaoa(gg, bb)) + 1e-10);
    }
}

TEST(GridSearch, BeatsTheP1Ramp) {
  const TermList terms = maxcut_terms(Graph::random_regular(10, 3, 23));
  const FurQaoaSimulator sim(terms, {});
  const QaoaParams ramp = linear_ramp(1, 0.8);
  const double ramp_value =
      sim.get_expectation(sim.simulate_qaoa(ramp.gammas, ramp.betas));
  const GridResult r = grid_search_p1(sim, 17, 17, 0.0, 1.5, -1.5, 0.0);
  EXPECT_LE(r.value, ramp_value + 1e-10);
}

TEST(GridSearch, SinglePointGridDegeneratesToEvaluation) {
  const TermList terms = maxcut_terms(Graph::random_regular(6, 3, 5));
  const FurQaoaSimulator sim(terms, {});
  const GridResult r = grid_search_p1(sim, 1, 1, 0.3, 9.9, -0.7, 9.9);
  EXPECT_DOUBLE_EQ(r.gamma, 0.3);
  EXPECT_DOUBLE_EQ(r.beta, -0.7);
}

TEST(GridSearch, RejectsEmptyGrid) {
  const TermList terms = maxcut_terms(Graph::random_regular(6, 3, 5));
  const FurQaoaSimulator sim(terms, {});
  EXPECT_THROW(grid_search_p1(sim, 0, 3, 0, 1, 0, 1), std::invalid_argument);
}

TEST(Trace, LastEntryMatchesFullSimulation) {
  const TermList terms = labs_terms(9);
  const FurQaoaSimulator sim(terms, {});
  const QaoaParams params = linear_ramp(4, 0.5);
  const auto trace =
      per_layer_expectations(sim, params.gammas, params.betas);
  ASSERT_EQ(trace.size(), 4u);
  const StateVector full = sim.simulate_qaoa(params.gammas, params.betas);
  EXPECT_NEAR(trace.back(), sim.get_expectation(full), 1e-9);
}

TEST(Trace, PrefixEntriesMatchTruncatedSchedules) {
  const TermList terms = maxcut_terms(Graph::random_regular(8, 3, 29));
  const FurQaoaSimulator sim(terms, {});
  const QaoaParams params = linear_ramp(3, 0.7);
  const auto trace = per_layer_expectations(sim, params.gammas, params.betas);
  for (std::size_t l = 0; l < 3; ++l) {
    const std::span<const double> g(params.gammas.data(), l + 1);
    const std::span<const double> b(params.betas.data(), l + 1);
    EXPECT_NEAR(trace[l], sim.get_expectation(sim.simulate_qaoa(g, b)), 1e-9)
        << "l=" << l;
  }
}

TEST(Trace, EmptyScheduleGivesEmptyTrace) {
  const FurQaoaSimulator sim(labs_terms(6), {});
  EXPECT_TRUE(per_layer_expectations(sim, {}, {}).empty());
}

TEST(SatApi, EvaluationFieldsConsistent) {
  const SatInstance inst = random_ksat(10, 3, 20, 3);
  const QaoaParams params = linear_ramp(2, 0.6);
  const api::SatEvaluation eval =
      api::qaoa_sat_evaluate(inst, params.gammas, params.betas);
  EXPECT_GE(eval.expected_violations, -1e-9);
  EXPECT_GE(eval.p_satisfied, 0.0);
  EXPECT_LE(eval.p_satisfied, 1.0 + 1e-12);
  EXPECT_EQ(eval.satisfiable, inst.satisfiable_brute_force());
}

TEST(SatApi, UnsatisfiableInstanceHasZeroSuccess) {
  SatInstance inst;
  inst.num_vars = 2;
  inst.clauses.push_back({{0}, {false}});
  inst.clauses.push_back({{0}, {true}});
  const QaoaParams params = linear_ramp(1, 0.5);
  const api::SatEvaluation eval =
      api::qaoa_sat_evaluate(inst, params.gammas, params.betas);
  EXPECT_FALSE(eval.satisfiable);
  EXPECT_NEAR(eval.p_satisfied, 0.0, 1e-12);
  EXPECT_GE(eval.expected_violations, 1.0 - 1e-9);
}

TEST(SatApi, DeeperQaoaRaisesSuccessOnEasyInstance) {
  // Under-constrained 3-SAT: many satisfying strings; even short ramps
  // should push success probability above the uniform baseline.
  const SatInstance inst = random_ksat(10, 3, 11, 7);
  const CostDiagonal d = CostDiagonal::precompute(sat_terms(inst));
  std::uint64_t sat_count = 0;
  for (std::uint64_t x = 0; x < d.size(); ++x)
    if (d[x] < 0.5) ++sat_count;
  const double uniform = static_cast<double>(sat_count) / d.size();

  const QaoaParams params = linear_ramp(4, 0.7);
  const api::SatEvaluation eval =
      api::qaoa_sat_evaluate(inst, params.gammas, params.betas);
  EXPECT_GT(eval.p_satisfied, uniform);
}

}  // namespace
}  // namespace qokit
