// Parity suite for the runtime-dispatched SIMD kernel layer: every
// dispatched kernel must agree with the scalar family within 1e-12 per
// amplitude, across all qubit positions, both Exec policies, and the
// table-driven u16/popcount paths. Also holds the determinism contract
// (Serial == Parallel bitwise at a fixed dispatch level) and the sampler
// edge-case regressions from the hot-path bugfix sweep.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "common/bitops.hpp"
#include "common/cpu_features.hpp"
#include "common/rng.hpp"
#include "diagonal/cost_diagonal.hpp"
#include "diagonal/diagonal_u16.hpp"
#include "diagonal/ops.hpp"
#include "fur/fwht.hpp"
#include "fur/simulator.hpp"
#include "fur/su2.hpp"
#include "problems/labs.hpp"
#include "simd/kernels.hpp"
#include "statevector/sampling.hpp"

namespace qokit {
namespace {

/// Restores the dispatch level that was active at test entry (which may be
/// a QOKIT_SIMD=scalar override, not the detected level).
struct SimdLevelGuard {
  SimdLevel entry = active_simd_level();
  ~SimdLevelGuard() { force_simd_level(entry); }
};

bool has_vector_level() {
  return detect_simd_level() != SimdLevel::Scalar;
}

StateVector random_state(int n, std::uint64_t seed) {
  Rng rng(seed);
  StateVector sv(n);
  for (std::uint64_t i = 0; i < sv.size(); ++i)
    sv[i] = cdouble(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
  sv.normalize();
  return sv;
}

aligned_vector<double> random_costs(int n, std::uint64_t seed, double lo,
                                    double hi) {
  Rng rng(seed);
  aligned_vector<double> costs(dim_of(n));
  for (double& c : costs) c = rng.uniform(lo, hi);
  return costs;
}

void expect_states_close(const StateVector& a, const StateVector& b,
                         double tol, const char* what) {
  ASSERT_EQ(a.size(), b.size());
  EXPECT_LE(a.max_abs_diff(b), tol) << what;
}

constexpr Exec kExecs[] = {Exec::Serial, Exec::Parallel};

TEST(SimdDispatch, LevelIsConsistent) {
  SimdLevelGuard guard;
  EXPECT_TRUE(simd_level_compiled(SimdLevel::Scalar));
  const SimdLevel detected = detect_simd_level();
  if (detected == SimdLevel::Avx2) {
    EXPECT_TRUE(simd_level_compiled(SimdLevel::Avx2));
  }
  // Forcing scalar always succeeds; forcing the detected level restores it.
  EXPECT_EQ(force_simd_level(SimdLevel::Scalar), SimdLevel::Scalar);
  EXPECT_EQ(force_simd_level(detected), detected);
  EXPECT_EQ(active_simd_level(), detected);
}

TEST(SimdPhase, DispatchedMatchesScalar) {
  if (!has_vector_level()) GTEST_SKIP() << "scalar-only build/host";
  SimdLevelGuard guard;
  // n = 15 (2^15 elements) spans four kSimdBlock = 2^13 blocks; n = 9
  // exercises the sub-block and vector-tail paths.
  for (int n : {9, 15}) {
    const auto costs = random_costs(n, 11, -40.0, 40.0);
    for (double gamma : {0.37, -2.9, 123.456}) {
      for (Exec exec : kExecs) {
        StateVector a = random_state(n, 21);
        StateVector b = a;
        force_simd_level(SimdLevel::Scalar);
        apply_phase_slice(a.data(), costs.data(), a.size(), gamma, exec);
        force_simd_level(detect_simd_level());
        apply_phase_slice(b.data(), costs.data(), b.size(), gamma, exec);
        expect_states_close(a, b, 1e-12, "phase");
      }
    }
  }
}

TEST(SimdPhase, HugeAnglesFallBackToLibm) {
  if (!has_vector_level()) GTEST_SKIP() << "scalar-only build/host";
  SimdLevelGuard guard;
  // |gamma * cost| beyond the vector sincos range must take the libm
  // fallback: groups where every angle is huge match the scalar family
  // exactly, mixed groups stay within the 1e-12 parity bound.
  const auto huge = random_costs(10, 13, 1.1e9, 3.0e9);
  StateVector a = random_state(10, 23);
  StateVector b = a;
  force_simd_level(SimdLevel::Scalar);
  apply_phase_slice(a.data(), huge.data(), a.size(), 1.0, Exec::Serial);
  force_simd_level(detect_simd_level());
  apply_phase_slice(b.data(), huge.data(), b.size(), 1.0, Exec::Serial);
  EXPECT_EQ(a.max_abs_diff(b), 0.0);

  const auto mixed = random_costs(10, 15, -3.0e9, 3.0e9);
  StateVector c = random_state(10, 25);
  StateVector d = c;
  force_simd_level(SimdLevel::Scalar);
  apply_phase_slice(c.data(), mixed.data(), c.size(), 1.0, Exec::Serial);
  force_simd_level(detect_simd_level());
  apply_phase_slice(d.data(), mixed.data(), d.size(), 1.0, Exec::Serial);
  expect_states_close(c, d, 1e-12, "phase-mixed-huge");
}

TEST(SimdPhase, U16TablePathMatchesScalar) {
  if (!has_vector_level()) GTEST_SKIP() << "scalar-only build/host";
  SimdLevelGuard guard;
  const int n = 12;
  // Integral spectrum so the u16 codec is exact.
  auto costs = random_costs(n, 17, -100.0, 100.0);
  for (double& c : costs) c = std::round(c);
  const auto diag = CostDiagonal::from_values(n, std::move(costs));
  const auto d16 = DiagonalU16::encode(diag);
  ASSERT_TRUE(d16.is_exact());
  for (Exec exec : kExecs) {
    StateVector a = random_state(n, 29);
    StateVector b = a;
    force_simd_level(SimdLevel::Scalar);
    apply_phase(a, d16, 0.81, exec);
    force_simd_level(detect_simd_level());
    apply_phase(b, d16, 0.81, exec);
    expect_states_close(a, b, 1e-12, "phase-u16");
  }
}

TEST(SimdPhase, PopcountTableMatchesScalar) {
  if (!has_vector_level()) GTEST_SKIP() << "scalar-only build/host";
  SimdLevelGuard guard;
  const int n = 11;
  aligned_vector<cdouble> table(static_cast<std::size_t>(n) + 1);
  for (int w = 0; w <= n; ++w) {
    const double ang = 0.3 * w - 0.7;
    table[w] = cdouble(std::cos(ang), std::sin(ang));
  }
  // Nonzero index_base mimics a distributed rank slice.
  for (std::uint64_t base : {0ull, 12345ull}) {
    StateVector a = random_state(n, 31);
    StateVector b = a;
    force_simd_level(SimdLevel::Scalar);
    simd::apply_phase_popcount(a.data(), base, a.size(), table.data(),
                               Exec::Serial);
    force_simd_level(detect_simd_level());
    simd::apply_phase_popcount(b.data(), base, b.size(), table.data(),
                               Exec::Serial);
    expect_states_close(a, b, 1e-12, "phase-popcount");
  }
}

TEST(SimdButterflies, RxMatchesScalarAtEveryQubit) {
  if (!has_vector_level()) GTEST_SKIP() << "scalar-only build/host";
  SimdLevelGuard guard;
  const int n = 12;
  const double c = std::cos(0.42), s = std::sin(0.42);
  for (int q = 0; q < n; ++q) {
    for (Exec exec : kExecs) {
      StateVector a = random_state(n, 37 + q);
      StateVector b = a;
      force_simd_level(SimdLevel::Scalar);
      kern::rx(a.data(), a.size(), q, c, s, exec);
      force_simd_level(detect_simd_level());
      kern::rx(b.data(), b.size(), q, c, s, exec);
      expect_states_close(a, b, 1e-12, "rx");
    }
  }
}

TEST(SimdButterflies, HadamardMatchesScalarAtEveryQubit) {
  if (!has_vector_level()) GTEST_SKIP() << "scalar-only build/host";
  SimdLevelGuard guard;
  const int n = 12;
  for (int q = 0; q < n; ++q) {
    for (Exec exec : kExecs) {
      StateVector a = random_state(n, 41 + q);
      StateVector b = a;
      force_simd_level(SimdLevel::Scalar);
      kern::hadamard(a.data(), a.size(), q, exec);
      force_simd_level(detect_simd_level());
      kern::hadamard(b.data(), b.size(), q, exec);
      expect_states_close(a, b, 1e-12, "hadamard");
    }
  }
}

TEST(SimdButterflies, FwhtMixerMatchesScalar) {
  if (!has_vector_level()) GTEST_SKIP() << "scalar-only build/host";
  SimdLevelGuard guard;
  for (Exec exec : kExecs) {
    StateVector a = random_state(13, 43);
    StateVector b = a;
    force_simd_level(SimdLevel::Scalar);
    apply_mixer_x_fwht(a, 0.77, exec);
    force_simd_level(detect_simd_level());
    apply_mixer_x_fwht(b, 0.77, exec);
    expect_states_close(a, b, 1e-11, "fwht-mixer");
  }
}

TEST(SimdReductions, MatchScalar) {
  if (!has_vector_level()) GTEST_SKIP() << "scalar-only build/host";
  SimdLevelGuard guard;
  const int n = 14;
  const StateVector sv = random_state(n, 47);
  auto costs = random_costs(n, 53, -60.0, 60.0);
  for (double& c : costs) c = std::round(c);
  const auto diag = CostDiagonal::from_values(n, std::move(costs));
  const auto d16 = DiagonalU16::encode(diag);
  for (Exec exec : kExecs) {
    force_simd_level(SimdLevel::Scalar);
    const double e_s = expectation(sv, diag, exec);
    const double e16_s = expectation(sv, d16, exec);
    const double n_s = sv.norm_squared(exec);
    const double o_s = overlap_ground(sv, diag, 2.5, exec);
    force_simd_level(detect_simd_level());
    EXPECT_NEAR(expectation(sv, diag, exec), e_s, 1e-12 * 60.0);
    EXPECT_NEAR(expectation(sv, d16, exec), e16_s, 1e-12 * 60.0);
    EXPECT_NEAR(sv.norm_squared(exec), n_s, 1e-12);
    EXPECT_NEAR(overlap_ground(sv, diag, 2.5, exec), o_s, 1e-12);
  }
}

TEST(SimdReductions, SerialAndParallelAreBitIdentical) {
  // The blocked reduction combines per-block partials in block order
  // regardless of Exec policy or thread count, so Serial and Parallel must
  // agree bitwise at any fixed dispatch level.
  SimdLevelGuard guard;
  const int n = 17;  // above the parallel grain: OpenMP actually engages
  const StateVector sv = random_state(n, 59);
  const auto diag = CostDiagonal::from_values(n, random_costs(n, 61, -5, 5));
  EXPECT_EQ(expectation(sv, diag, Exec::Serial),
            expectation(sv, diag, Exec::Parallel));
  EXPECT_EQ(sv.norm_squared(Exec::Serial), sv.norm_squared(Exec::Parallel));
  StateVector a = sv;
  StateVector b = sv;
  apply_phase(a, diag, 0.9, Exec::Serial);
  apply_phase(b, diag, 0.9, Exec::Parallel);
  EXPECT_EQ(a.max_abs_diff(b), 0.0);
}

TEST(SimdEndToEnd, SimulatorBackendsMatchScalarDispatch) {
  if (!has_vector_level()) GTEST_SKIP() << "scalar-only build/host";
  SimdLevelGuard guard;
  const TermList terms = labs_terms(10);
  const std::vector<double> gammas = {0.3, -0.8, 0.45};
  const std::vector<double> betas = {0.7, 0.2, -0.55};
  for (const char* name : {"serial", "threaded", "u16", "fwht"}) {
    force_simd_level(SimdLevel::Scalar);
    const auto sim_s = choose_simulator(terms, name);
    const StateVector r_s = sim_s->simulate_qaoa(gammas, betas);
    const double e_s = sim_s->get_expectation(r_s);
    const double o_s = sim_s->get_overlap(r_s);
    force_simd_level(detect_simd_level());
    const auto sim_v = choose_simulator(terms, name);
    const StateVector r_v = sim_v->simulate_qaoa(gammas, betas);
    // Under QOKIT_PREC=f32 the names resolve to float amplitudes, where
    // the scalar and vector families agree to float-rounding scale.
    const bool f32 = sim_s->precision() == Precision::F32;
    EXPECT_LE(r_s.max_abs_diff(r_v), f32 ? 5e-6 : 1e-11) << name;
    EXPECT_NEAR(sim_v->get_expectation(r_v), e_s, f32 ? 1e-4 : 1e-10)
        << name;
    EXPECT_NEAR(sim_v->get_overlap(r_v), o_s, f32 ? 1e-4 : 1e-10) << name;
  }
}

// ------------------------------------------------ sector-overlap bugfix

TEST(OverlapSector, MatchesBruteForceAndExecModes) {
  const int n = 10;
  const auto diag = CostDiagonal::from_values(n, random_costs(n, 67, -9, 9));
  const StateVector sv = random_state(n, 71);
  for (int weight : {0, 3, n}) {
    // Brute-force reference: the pre-fix two-scan semantics.
    double lo = 0.0;
    bool found = false;
    for (std::uint64_t x = 0; x < diag.size(); ++x) {
      if (popcount(x) != weight) continue;
      if (!found || diag[x] < lo) {
        lo = diag[x];
        found = true;
      }
    }
    ASSERT_TRUE(found);
    double mass = 0.0;
    for (std::uint64_t x = 0; x < diag.size(); ++x)
      if (popcount(x) == weight && diag[x] <= lo + 1e-9)
        mass += std::norm(sv[x]);
    EXPECT_EQ(diag.sector_min(weight), lo);
    EXPECT_NEAR(overlap_ground_sector(sv, diag, weight, 1e-9, Exec::Serial),
                mass, 1e-13);
    EXPECT_NEAR(overlap_ground_sector(sv, diag, weight, 1e-9, Exec::Parallel),
                mass, 1e-13);
  }
  // Cached second call returns the identical value.
  EXPECT_EQ(diag.sector_min(3), diag.sector_min(3));
  EXPECT_THROW(overlap_ground_sector(sv, diag, -1), std::invalid_argument);
  EXPECT_THROW(overlap_ground_sector(sv, diag, n + 1), std::invalid_argument);
}

// --------------------------------------------------- sampler regressions

TEST(SamplerRegression, FullMassVariateClampsToLastNonzeroState) {
  // Trailing amplitudes are zero: u = 1.0 lands past the final cumulative
  // entry and must not select a zero-probability bitstring (the pre-fix
  // clamp picked the last index overall).
  StateVector sv(3);
  sv[1] = cdouble(std::sqrt(0.5), 0.0);
  sv[3] = cdouble(0.0, std::sqrt(0.5));
  const StateSampler sampler(sv);
  EXPECT_EQ(sampler.sample_from_uniform(1.0), 3u);
  EXPECT_EQ(sampler.sample_from_uniform(std::nextafter(1.0, 0.0)), 3u);
  EXPECT_EQ(sampler.sample_from_uniform(0.0), 1u);
  Rng rng(73);
  for (int s = 0; s < 2000; ++s) {
    const std::uint64_t x = sampler.sample(rng);
    EXPECT_TRUE(x == 1u || x == 3u) << x;
  }
}

TEST(SamplerRegression, ShotCountValidation) {
  const StateVector sv = StateVector::plus_state(4);
  const StateSampler sampler(sv);
  Rng rng(79);
  EXPECT_THROW(sampler.sample(-1, rng), std::invalid_argument);
  EXPECT_THROW(sampler.sample_counts(-5, rng), std::invalid_argument);
  EXPECT_TRUE(sampler.sample(0, rng).empty());
  EXPECT_TRUE(sampler.sample_counts(0, rng).empty());
  const auto f = [](std::uint64_t x) { return static_cast<double>(x); };
  EXPECT_THROW(estimate_expectation_sampled(sv, f, -2, rng),
               std::invalid_argument);
  const SampledExpectation zero = estimate_expectation_sampled(sv, f, 0, rng);
  EXPECT_EQ(zero.shots, 0);
  EXPECT_EQ(zero.mean, 0.0);
  EXPECT_EQ(zero.std_error, 0.0);
}

}  // namespace
}  // namespace qokit
