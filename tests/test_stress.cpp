// Numerical-stability stress tests: the in-place kernels must survive the
// high-depth regime the paper targets (p in the hundreds-to-thousands,
// Fig. 4 goes to p = 10^4) without norm drift or backend divergence.
#include <gtest/gtest.h>

#include "api/qokit.hpp"

namespace qokit {
namespace {

TEST(Stress, NormDriftStaysTinyAtDepth500) {
  const TermList terms = labs_terms(10);
  const FurQaoaSimulator sim(terms, {});
  std::vector<double> g(500), b(500);
  Rng rng(1);
  for (int l = 0; l < 500; ++l) {
    g[l] = rng.uniform(-0.5, 0.5);
    b[l] = rng.uniform(-1.0, 1.0);
  }
  const StateVector r = sim.simulate_qaoa(g, b);
  EXPECT_NEAR(r.norm_squared(), 1.0, 1e-9);
}

TEST(Stress, FwhtRoundTripsAccumulateNoBias) {
  StateVector sv = StateVector::plus_state(10);
  for (int i = 0; i < 200; ++i) fwht(sv);
  // 200 is even: identity.
  EXPECT_LT(sv.max_abs_diff(StateVector::plus_state(10)), 1e-9);
  EXPECT_NEAR(sv.norm_squared(), 1.0, 1e-10);
}

TEST(Stress, BackendsAgreeAfterDeepEvolution) {
  const TermList terms = labs_terms(9);
  std::vector<double> g(100), b(100);
  Rng rng(2);
  for (int l = 0; l < 100; ++l) {
    g[l] = rng.uniform(-0.3, 0.3);
    b[l] = rng.uniform(-0.8, 0.8);
  }
  const FurQaoaSimulator fused(terms, {.exec = Exec::Serial});
  const FurQaoaSimulator fwht_sim(terms, {.backend = MixerBackend::Fwht});
  const FurQaoaSimulator u16(terms, {.use_u16 = true});
  const StateVector a = fused.simulate_qaoa(g, b);
  EXPECT_LT(fwht_sim.simulate_qaoa(g, b).max_abs_diff(a), 1e-8);
  EXPECT_LT(u16.simulate_qaoa(g, b).max_abs_diff(a), 1e-8);
}

TEST(Stress, DistributedStaysLockstepAtDepth50) {
  const TermList terms = labs_terms(8);
  std::vector<double> g(50), b(50);
  Rng rng(3);
  for (int l = 0; l < 50; ++l) {
    g[l] = rng.uniform(-0.4, 0.4);
    b[l] = rng.uniform(-0.9, 0.9);
  }
  const FurQaoaSimulator single(terms, {.exec = Exec::Serial});
  const DistributedFurSimulator multi(terms, {.ranks = 4});
  EXPECT_LT(multi.simulate_qaoa(g, b).max_abs_diff(single.simulate_qaoa(g, b)),
            1e-9);
}

TEST(Stress, XySectorStaysExactAtDepth200) {
  const PortfolioInstance inst = random_portfolio(8, 3, 0.5, 5);
  const FurQaoaSimulator sim(portfolio_terms(inst),
                             {.mixer = MixerType::XYRing, .initial_weight = 3});
  std::vector<double> g(200), b(200);
  Rng rng(4);
  for (int l = 0; l < 200; ++l) {
    g[l] = rng.uniform(-0.3, 0.3);
    b[l] = rng.uniform(-0.7, 0.7);
  }
  const StateVector r = sim.simulate_qaoa(g, b);
  EXPECT_NEAR(r.weight_sector_mass(3), 1.0, 1e-9);
  EXPECT_NEAR(r.norm_squared(), 1.0, 1e-9);
}

TEST(Stress, SymmetricSimulatorDeepAgreement) {
  const TermList terms = labs_terms(8);
  std::vector<double> g(100), b(100);
  Rng rng(5);
  for (int l = 0; l < 100; ++l) {
    g[l] = rng.uniform(-0.3, 0.3);
    b[l] = rng.uniform(-0.8, 0.8);
  }
  const FurQaoaSimulator full(terms, {});
  const SymmetricFurSimulator half(terms);
  EXPECT_NEAR(full.get_expectation(full.simulate_qaoa(g, b)),
              half.get_expectation(half.simulate_qaoa(g, b)), 1e-7);
}

TEST(Stress, PhaseUnwindingIsExactInverse) {
  // Applying the phase with gamma then -gamma must restore the state
  // to fp accuracy, even repeated many times.
  const CostDiagonal d = CostDiagonal::precompute(labs_terms(10));
  StateVector sv = StateVector::plus_state(10);
  const StateVector before = sv;
  for (int i = 0; i < 100; ++i) {
    apply_phase(sv, d, 0.37);
    apply_phase(sv, d, -0.37);
  }
  EXPECT_LT(sv.max_abs_diff(before), 1e-10);
}

}  // namespace
}  // namespace qokit
