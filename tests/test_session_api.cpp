// Session-API acceptance tests: SimulatorSpec round-tripping and
// rejection of unknown spellings at every entry point, and the
// amortization contract of ProblemSession -- a 64-schedule parameter
// sweep performs exactly one diagonal precompute and zero steady-state
// statevector allocations (pinned via the instrumented AlignedAllocator
// counter) while staying bit-identical to 64 legacy one-line calls on
// every backend, including dist:K.
#include <gtest/gtest.h>

#include <string>

#include "api/qokit.hpp"

namespace qokit {
namespace {

std::vector<QaoaParams> random_schedules(int count, int p,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<QaoaParams> schedules(count);
  for (QaoaParams& s : schedules) {
    s.gammas.resize(p);
    s.betas.resize(p);
    for (int l = 0; l < p; ++l) {
      s.gammas[l] = rng.uniform(-0.6, 0.6);
      s.betas[l] = rng.uniform(-0.9, 0.9);
    }
  }
  return schedules;
}

// ------------------------------------------------------------ spec

TEST(SimulatorSpec, RoundTripsOverTheFullGrid) {
  // parse(to_string(spec)) must reproduce every field, for every
  // combination -- including ones make_simulator would reject (parse and
  // to_string are string-level; semantic validation happens at build).
  for (const Backend backend :
       {Backend::Auto, Backend::Serial, Backend::Threaded, Backend::U16,
        Backend::Fwht, Backend::Gatesim, Backend::Dist})
    for (const MixerType mixer :
         {MixerType::X, MixerType::XYRing, MixerType::XYComplete})
      for (const AlltoallStrategy strategy :
           {AlltoallStrategy::Staged, AlltoallStrategy::Pairwise,
            AlltoallStrategy::Direct})
        for (const Exec exec : {Exec::Serial, Exec::Parallel})
          for (const int ranks : {2, 8})
            for (const int weight : {-1, 3})
              for (const SimdChoice simd :
                   {SimdChoice::Auto, SimdChoice::Scalar})
                for (const pipeline::PipelineMode pipe :
                     {pipeline::PipelineMode::Auto,
                      pipeline::PipelineMode::On,
                      pipeline::PipelineMode::Off})
                  for (const std::uint64_t seed : {1ull, 42ull})
                    for (const bool obs : {false, true}) {
                      SimulatorSpec spec;
                      spec.backend = backend;
                      spec.mixer = mixer;
                      spec.exec = exec;
                      spec.ranks = ranks;
                      spec.alltoall = strategy;
                      spec.initial_weight = weight;
                      spec.simd = simd;
                      spec.pipeline = pipe;
                      spec.sample_seed = seed;
                      spec.obs = obs;
                      const std::string name = spec.to_string();
                      EXPECT_EQ(SimulatorSpec::parse(name), spec) << name;
                    }
}

TEST(SimulatorSpec, ParsesLegacyAndExtendedSpellings) {
  EXPECT_EQ(SimulatorSpec::parse("auto"), SimulatorSpec{});

  const SimulatorSpec serial = SimulatorSpec::parse("serial");
  EXPECT_EQ(serial.backend, Backend::Serial);
  EXPECT_EQ(serial.exec, Exec::Serial);

  const SimulatorSpec dist = SimulatorSpec::parse("dist:4:pairwise");
  EXPECT_EQ(dist.backend, Backend::Dist);
  EXPECT_EQ(dist.ranks, 4);
  EXPECT_EQ(dist.alltoall, AlltoallStrategy::Pairwise);
  EXPECT_EQ(dist.exec, Exec::Parallel);
  EXPECT_EQ(dist.to_string(), "dist:4:pairwise");

  const SimulatorSpec seeded = SimulatorSpec::parse("u16:seed=9");
  EXPECT_EQ(seeded.backend, Backend::U16);
  EXPECT_EQ(seeded.sample_seed, 9u);

  const SimulatorSpec mixed =
      SimulatorSpec::parse("serial:mixer=xyring:weight=3:simd=scalar");
  EXPECT_EQ(mixed.mixer, MixerType::XYRing);
  EXPECT_EQ(mixed.initial_weight, 3);
  EXPECT_EQ(mixed.simd, SimdChoice::Scalar);

  const SimulatorSpec dist_opts =
      SimulatorSpec::parse("dist:4:pairwise:seed=7");
  EXPECT_EQ(dist_opts.ranks, 4);
  EXPECT_EQ(dist_opts.alltoall, AlltoallStrategy::Pairwise);
  EXPECT_EQ(dist_opts.sample_seed, 7u);
}

TEST(SimulatorSpec, RejectsUnknownTokensNamingThem) {
  EXPECT_THROW((void)SimulatorSpec::parse(""), std::invalid_argument);
  struct Case {
    const char* name;
    const char* offending;  ///< token the error message must contain
  };
  for (const Case c :
       {Case{"gpu", "gpu"}, Case{"Serial", "Serial"},
        Case{"auto:fast", "fast"}, Case{"u16:bogus", "bogus"},
        Case{"auto:mixer=ring", "mixer=ring"},
        Case{"auto:exec=turbo", "exec=turbo"},
        Case{"auto:seed=x", "seed=x"},
        Case{"dist:4:pairwise:junk=1", "junk=1"},
        Case{"auto:simd=sse", "simd=sse"}, Case{"dist:two", "two"}}) {
    try {
      (void)SimulatorSpec::parse(c.name);
      FAIL() << "parse accepted '" << c.name << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find(c.offending), std::string::npos)
          << c.name << " -> " << e.what();
    }
  }
}

TEST(SimulatorSpec, RejectsOutOfRangeIntegerTokens) {
  // Integer tokens that overflow their type must throw -- never wrap or
  // truncate into a silently different configuration. The message calls
  // out the range problem and the offending token.
  struct Case {
    const char* name;
    const char* offending;
  };
  for (const Case c :
       {Case{"dist:99999999999999999999", "99999999999999999999"},
        Case{"dist:ranks=99999999999999999999", "99999999999999999999"},
        Case{"dist:ranks=2147483648", "2147483648"},  // INT_MAX + 1
        Case{"auto:seed=18446744073709551616", "18446744073709551616"},
        Case{"auto:mixer=xyring:weight=9999999999", "9999999999"}}) {
    try {
      (void)SimulatorSpec::parse(c.name);
      FAIL() << "parse accepted '" << c.name << "'";
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("out of range"), std::string::npos)
          << c.name << " -> " << what;
      EXPECT_NE(what.find(c.offending), std::string::npos)
          << c.name << " -> " << what;
    }
  }
  // The extremes that DO fit still parse exactly.
  EXPECT_EQ(SimulatorSpec::parse("auto:seed=18446744073709551615").sample_seed,
            18446744073709551615ull);
  EXPECT_EQ(SimulatorSpec::parse("dist:ranks=2147483647").ranks, 2147483647);
  // And the canonical spelling of a max-seed spec round-trips.
  const SimulatorSpec max_seed =
      SimulatorSpec::parse("auto:seed=18446744073709551615");
  EXPECT_EQ(SimulatorSpec::parse(max_seed.to_string()), max_seed);
}

TEST(SimulatorSpec, EveryEntryPointRejectsUnknownNames) {
  const Graph g = Graph::random_regular(6, 3, 1);
  const TermList terms = maxcut_terms(g);
  const PortfolioInstance inst = random_portfolio(6, 2, 0.5, 1);
  const SatInstance sat = random_ksat(6, 3, 10, 1);
  const std::vector<double> gs{0.3}, bs{0.5};
  const std::vector<QaoaParams> batch = random_schedules(2, 1, 3);

  EXPECT_THROW((void)api::qaoa_maxcut_expectation(g, gs, bs, "gpu"),
               std::invalid_argument);
  EXPECT_THROW((void)api::qaoa_labs_evaluate(6, gs, bs, "gpu"),
               std::invalid_argument);
  EXPECT_THROW((void)api::qaoa_portfolio_expectation(inst, gs, bs, "gpu"),
               std::invalid_argument);
  EXPECT_THROW((void)api::qaoa_sat_evaluate(sat, gs, bs, "gpu"),
               std::invalid_argument);
  EXPECT_THROW((void)api::qaoa_batch_expectation(terms, batch, "gpu"),
               std::invalid_argument);
  EXPECT_THROW((void)api::qaoa_batch_evaluate(terms, batch, {}, "gpu"),
               std::invalid_argument);
  EXPECT_THROW((void)api::optimize_qaoa(terms, 1, {}, "gpu"),
               std::invalid_argument);
  EXPECT_THROW(api::ProblemSession(terms, SimulatorSpec::parse("gpu")),
               std::invalid_argument);
  EXPECT_THROW((void)choose_simulator(terms, "gpu"), std::invalid_argument);
  EXPECT_THROW((void)choose_simulator_xyring(terms, "gpu"),
               std::invalid_argument);
  EXPECT_THROW((void)choose_simulator_xycomplete(terms, "gpu"),
               std::invalid_argument);
}

TEST(MakeSimulator, EnforcesSemanticConstraints) {
  const TermList terms = labs_terms(6);
  SimulatorSpec fwht_xy;
  fwht_xy.backend = Backend::Fwht;
  fwht_xy.mixer = MixerType::XYRing;
  EXPECT_THROW((void)make_simulator(terms, fwht_xy), std::invalid_argument);
  SimulatorSpec dist_xy;
  dist_xy.backend = Backend::Dist;
  dist_xy.mixer = MixerType::XYComplete;
  EXPECT_THROW((void)make_simulator(terms, dist_xy), std::invalid_argument);
}

TEST(MakeSimulator, ValidatesDistRankCounts) {
  const TermList terms = labs_terms(6);
  // Rank counts must be a power of two; the error names the value.
  for (const int bad : {0, -4, 3, 6, 100}) {
    SimulatorSpec spec;
    spec.backend = Backend::Dist;
    spec.ranks = bad;
    try {
      (void)make_simulator(terms, spec);
      FAIL() << "make_simulator accepted ranks=" << bad;
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find("power of two"), std::string::npos) << what;
      EXPECT_NE(what.find(std::to_string(bad)), std::string::npos) << what;
    }
  }
  // ...and cannot exceed the 2^n amplitudes they would partition.
  const TermList tiny = maxcut_terms(Graph::random_regular(4, 3, 1));
  SimulatorSpec too_many;
  too_many.backend = Backend::Dist;
  too_many.ranks = 32;  // 2^5 ranks over a 2^4-amplitude problem
  try {
    (void)make_simulator(tiny, too_many);
    FAIL() << "make_simulator accepted 32 ranks on 4 qubits";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("32"), std::string::npos) << what;
    EXPECT_NE(what.find("exceed"), std::string::npos) << what;
  }
  // The largest count the backend supports here (it additionally needs
  // n >= 2*log2 K for its transpose) still constructs fine.
  EXPECT_EQ(make_simulator(tiny, [] {
              SimulatorSpec s;
              s.backend = Backend::Dist;
              s.ranks = 4;
              return s;
            }())->num_qubits(),
            4);
}

// ------------------------------------------------------------ session

TEST(ProblemSession, SweepDoesOnePrecomputeAndZeroSteadyStateAllocations) {
  // The acceptance sweep: 64 schedules through one session, on every
  // backend family including dist:K. After a warm-up sweep the aligned
  // counter must not move at all -- no statevector allocation, no
  // diagonal re-precompute -- and every value must equal the legacy
  // one-line call (which rebuilds the simulator per query) bit for bit.
  const int n = 10;
  const Graph g = Graph::random_regular(n, 3, 5);
  const std::vector<QaoaParams> schedules = random_schedules(64, 2, 7);

  for (const char* name : {"serial", "threaded", "u16", "fwht", "dist:2",
                           "dist:4:pairwise"}) {
    SCOPED_TRACE(name);
    std::vector<double> legacy(schedules.size());
    for (std::size_t i = 0; i < schedules.size(); ++i)
      legacy[i] = api::qaoa_maxcut_expectation(
          g, schedules[i].gammas, schedules[i].betas, name);

    const api::ProblemSession session =
        api::ProblemSession::maxcut(g, SimulatorSpec::parse(name));
    const double* diag_before = session.cost_diagonal().data();
    const std::vector<double> warm = session.expectations(schedules);
    EXPECT_EQ(warm, legacy);
    (void)session.evaluate(schedules[0]);  // warm the scalar scratch too

    const std::uint64_t baseline = aligned_allocation_count();
    for (int sweep = 0; sweep < 3; ++sweep)
      EXPECT_EQ(session.expectations(schedules), legacy);
    // Scalar evaluates share the same scratch economy.
    for (int i = 0; i < 4; ++i)
      EXPECT_EQ(*session.evaluate(schedules[i % 64]).expectation,
                legacy[i % 64]);
    EXPECT_EQ(aligned_allocation_count(), baseline);
    EXPECT_EQ(session.cost_diagonal().data(), diag_before);
  }
}

TEST(ProblemSession, EvaluateBatchMatchesScalarEvaluateAndLegacyBatch) {
  const TermList terms = labs_terms(9);
  const std::vector<QaoaParams> schedules = random_schedules(6, 2, 11);
  const api::ProblemSession session(terms, {});
  api::EvalRequest request;
  request.overlap = true;
  request.shots = 16;

  const std::vector<api::EvalResult> batch =
      session.evaluate_batch(schedules, request);
  ASSERT_EQ(batch.size(), schedules.size());

  const BatchOptions legacy_opts{.compute_overlap = true,
                                 .sample_shots = 16};
  const BatchResult legacy =
      api::qaoa_batch_evaluate(terms, schedules, legacy_opts);

  for (std::size_t i = 0; i < schedules.size(); ++i) {
    EXPECT_EQ(*batch[i].expectation, legacy.expectations[i]) << i;
    EXPECT_EQ(*batch[i].overlap, legacy.overlaps[i]) << i;
    EXPECT_EQ(*batch[i].samples, legacy.samples[i]) << i;
    // Scalar path agrees bit for bit (same seed: batch index 0 and the
    // scalar call both draw from Rng(sample_seed + 0)).
    const api::EvalResult scalar = session.evaluate(schedules[i], request);
    EXPECT_EQ(*scalar.expectation, *batch[i].expectation) << i;
    EXPECT_EQ(*scalar.overlap, *batch[i].overlap) << i;
  }
  const api::EvalResult first = session.evaluate(schedules[0], request);
  EXPECT_EQ(*first.samples, *batch[0].samples);
}

TEST(ProblemSession, RequestFlagsControlResultFields) {
  const api::ProblemSession session = api::ProblemSession::labs(8);
  const QaoaParams params = random_schedules(1, 2, 13).front();

  const api::EvalResult plain = session.evaluate(params);
  EXPECT_TRUE(plain.expectation.has_value());
  EXPECT_FALSE(plain.overlap.has_value());
  EXPECT_FALSE(plain.samples.has_value());
  EXPECT_FALSE(plain.timings.has_value());
  EXPECT_FALSE(plain.params.has_value());

  api::EvalRequest request;
  request.expectation = false;
  request.overlap = true;
  request.shots = 8;
  request.timings = true;
  const api::EvalResult full = session.evaluate(params, request);
  EXPECT_FALSE(full.expectation.has_value());
  EXPECT_TRUE(full.overlap.has_value());
  ASSERT_TRUE(full.samples.has_value());
  EXPECT_EQ(full.samples->size(), 8u);
  ASSERT_TRUE(full.timings.has_value());
  EXPECT_EQ(full.timings->precompute_ns, session.precompute_ns());
  EXPECT_GT(full.timings->simulate_ns, 0u);

  // Negative shot counts throw on every path, as they always have.
  api::EvalRequest negative;
  negative.shots = -1;
  const std::vector<QaoaParams> batch{params};
  EXPECT_THROW((void)session.evaluate(params, negative),
               std::invalid_argument);
  EXPECT_THROW((void)session.evaluate_batch(batch, negative),
               std::invalid_argument);
  EXPECT_THROW((void)session.sample(params, -1), std::invalid_argument);
  BatchOptions bad;
  bad.sample_shots = -1;
  EXPECT_THROW((void)api::qaoa_batch_evaluate(session.terms(), batch, bad),
               std::invalid_argument);
}

TEST(ProblemSession, OptimizeMatchesLegacyOneLineOptimizer) {
  const TermList terms = maxcut_terms(Graph::random_regular(8, 3, 9));
  const NelderMeadOptions nm{.max_evals = 120};
  const api::OptimizeOutcome legacy =
      api::optimize_qaoa(terms, 2, nm, "serial");

  const api::ProblemSession session(terms, SimulatorSpec::parse("serial"));
  api::OptimizerSpec optimizer;
  optimizer.p = 2;
  optimizer.nelder_mead = nm;
  const api::EvalResult r = session.optimize(optimizer);

  EXPECT_EQ(*r.expectation, legacy.fval);
  EXPECT_EQ(r.params->gammas, legacy.params.gammas);
  EXPECT_EQ(r.params->betas, legacy.params.betas);
  EXPECT_EQ(*r.evaluations, legacy.evaluations);
  EXPECT_EQ(*r.batches, legacy.batches);
  EXPECT_TRUE(r.iterations.has_value());
  EXPECT_TRUE(r.converged.has_value());

  api::OptimizerSpec invalid_depth;
  invalid_depth.p = 0;
  EXPECT_THROW((void)session.optimize(invalid_depth), std::invalid_argument);
  api::OptimizerSpec mismatched;
  mismatched.p = 3;
  mismatched.initial = linear_ramp(2);
  EXPECT_THROW((void)session.optimize(mismatched), std::invalid_argument);
}

TEST(ProblemSession, GatesimBackendAgreesWithFastSimulators) {
  const TermList terms = maxcut_terms(Graph::random_regular(8, 3, 2));
  const QaoaParams params = random_schedules(1, 2, 17).front();
  const api::ProblemSession fast(terms, SimulatorSpec::parse("serial"));
  const api::ProblemSession gates(terms, SimulatorSpec::parse("gatesim"));
  // Gate-at-a-time evolution agrees to fp tolerance, and the adapter's
  // state is exactly what the legacy GateQaoaSimulator produces. Gatesim
  // is f64-only; the fast session follows prec=auto, so under the
  // QOKIT_PREC=f32 leg the cross-check runs at f32 drift scale.
  const double tol =
      fast.simulator().precision() == Precision::F32 ? 1e-4 : 1e-9;
  EXPECT_NEAR(*gates.evaluate(params).expectation,
              *fast.evaluate(params).expectation, tol);
  const GateQaoaSimulator legacy(terms, {});
  EXPECT_EQ(gates.simulate(params).max_abs_diff(
                legacy.simulate_qaoa(params.gammas, params.betas)),
            0.0);
}

TEST(ProblemSession, EqualSpecsProduceIdenticalSampleStreamsAcrossExec) {
  // The sampling seed travels in the spec, and the evolved amplitudes are
  // Exec-independent (the SIMD layer's determinism guarantee), so serial
  // and threaded sessions with the same seed draw identical streams.
  const QaoaParams params = random_schedules(1, 2, 19).front();
  api::ProblemSession serial =
      api::ProblemSession::labs(9, SimulatorSpec::parse("serial:seed=123"));
  api::ProblemSession threaded = api::ProblemSession::labs(
      9, SimulatorSpec::parse("threaded:seed=123"));
  const auto a = serial.sample(params, 64);
  const auto b = threaded.sample(params, 64);
  EXPECT_EQ(a, b);
  // And a fresh session with the same spec reproduces the stream.
  api::ProblemSession again =
      api::ProblemSession::labs(9, SimulatorSpec::parse("serial:seed=123"));
  EXPECT_EQ(again.sample(params, 64), a);
  // A different seed must (with overwhelming probability) differ.
  api::ProblemSession other =
      api::ProblemSession::labs(9, SimulatorSpec::parse("serial:seed=124"));
  EXPECT_NE(other.sample(params, 64), a);
}

TEST(ProblemSession, PortfolioBuilderDefaultsToInSectorXyMixer) {
  const PortfolioInstance inst = random_portfolio(8, 3, 0.5, 4);
  const api::ProblemSession session = api::ProblemSession::portfolio(inst);
  EXPECT_EQ(session.spec().mixer, MixerType::XYRing);
  EXPECT_EQ(session.spec().initial_weight, 3);

  const QaoaParams params = random_schedules(1, 2, 23).front();
  api::EvalRequest request;
  request.overlap = true;
  request.overlap_weight = inst.budget;
  const api::EvalResult r = session.evaluate(params, request);
  // Legacy path: the xyring factory with the same weight.
  const auto legacy = choose_simulator_xyring(portfolio_terms(inst), "auto",
                                              inst.budget);
  const StateVector ref = legacy->simulate_qaoa(params.gammas, params.betas);
  EXPECT_EQ(*r.expectation, legacy->get_expectation(ref));
  EXPECT_EQ(*r.overlap, legacy->get_overlap(ref, inst.budget));
  // The evolved state never leaves the budget sector.
  EXPECT_NEAR(session.simulate(params).weight_sector_mass(inst.budget), 1.0,
              1e-10);
}

}  // namespace
}  // namespace qokit
