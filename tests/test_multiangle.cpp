// Multi-angle (ma-QAOA) mixer and evolution.
#include <gtest/gtest.h>

#include "api/qokit.hpp"
#include "support/reference.hpp"

namespace qokit {
namespace {

StateVector random_state(int n, std::uint64_t seed) {
  Rng rng(seed);
  StateVector sv(n);
  for (std::uint64_t x = 0; x < sv.size(); ++x)
    sv[x] = cdouble(rng.normal(), rng.normal());
  sv.normalize();
  return sv;
}

TEST(MultiAngleMixer, UniformAnglesMatchStandardMixer) {
  StateVector a = random_state(7, 1);
  StateVector b = a;
  const std::vector<double> betas(7, 0.41);
  apply_mixer_x_multiangle(a, betas);
  apply_mixer_x(b, 0.41);
  EXPECT_LT(a.max_abs_diff(b), 1e-13);
}

TEST(MultiAngleMixer, MatchesDenseReferencePerQubit) {
  const int n = 5;
  StateVector sv = random_state(n, 2);
  auto ref = testing::to_vec(sv);
  std::vector<double> betas{0.1, -0.7, 0.0, 1.2, -0.3};
  apply_mixer_x_multiangle(sv, betas, Exec::Serial);
  for (int q = 0; q < n; ++q)
    ref = testing::ref_apply_1q(ref, q, testing::ref_matrix_rx(2 * betas[q]));
  EXPECT_LT(testing::max_diff(testing::to_vec(sv), ref), 1e-12);
}

TEST(MultiAngleMixer, PreservesNorm) {
  StateVector sv = random_state(9, 3);
  std::vector<double> betas(9);
  Rng rng(4);
  for (double& b : betas) b = rng.uniform(-2.0, 2.0);
  apply_mixer_x_multiangle(sv, betas, Exec::Parallel);
  EXPECT_NEAR(sv.norm_squared(), 1.0, 1e-12);
}

TEST(MultiAngleMixer, RejectsWrongAngleCount) {
  StateVector sv = StateVector::plus_state(4);
  const std::vector<double> betas(3, 0.1);
  EXPECT_THROW(apply_mixer_x_multiangle(sv, betas), std::invalid_argument);
}

TEST(MaQaoa, UniformAnglesReduceToStandardQaoa) {
  const TermList terms = labs_terms(8);
  const FurQaoaSimulator sim(terms, {});
  const std::vector<double> gammas{0.3, -0.1};
  const std::vector<double> betas{0.5, 0.2};
  std::vector<double> ma_betas;
  for (double b : betas) ma_betas.insert(ma_betas.end(), 8, b);

  const StateVector standard = sim.simulate_qaoa(gammas, betas);
  const StateVector ma = simulate_ma_qaoa(sim, gammas, ma_betas);
  EXPECT_LT(standard.max_abs_diff(ma), 1e-12);
}

TEST(MaQaoa, ExtraFreedomCanOnlyHelpAtFixedGamma) {
  // With per-qubit angles, zeroing a subset of them is a valid choice, so
  // the best ma-QAOA value over a small random search is <= the standard
  // value with the same gamma.
  const TermList terms = maxcut_terms(Graph::random_regular(8, 3, 7));
  const FurQaoaSimulator sim(terms, {});
  const std::vector<double> gammas{0.45};
  const std::vector<double> beta_std{-0.35};
  const double standard =
      sim.get_expectation(sim.simulate_qaoa(gammas, beta_std));

  double best_ma = 1e300;
  Rng rng(9);
  std::vector<double> ma(8, -0.35);  // start at the standard point
  best_ma = sim.get_expectation(simulate_ma_qaoa(sim, gammas, ma));
  for (int trial = 0; trial < 40; ++trial) {
    for (double& b : ma) b = rng.uniform(-0.8, 0.2);
    best_ma = std::min(
        best_ma, sim.get_expectation(simulate_ma_qaoa(sim, gammas, ma)));
  }
  EXPECT_LE(best_ma, standard + 1e-12);
}

TEST(MaQaoa, RejectsXyMixerConfigs) {
  const TermList terms = labs_terms(6);
  const FurQaoaSimulator sim(terms, {.mixer = MixerType::XYRing});
  const std::vector<double> gammas{0.1};
  const std::vector<double> betas(6, 0.1);
  EXPECT_THROW(simulate_ma_qaoa(sim, gammas, betas), std::invalid_argument);
}

TEST(MaQaoa, RejectsWrongBetaLayout) {
  const TermList terms = labs_terms(6);
  const FurQaoaSimulator sim(terms, {});
  const std::vector<double> gammas{0.1, 0.2};
  const std::vector<double> betas(7, 0.1);  // not 2 * 6
  EXPECT_THROW(simulate_ma_qaoa(sim, gammas, betas), std::invalid_argument);
}

}  // namespace
}  // namespace qokit
