#include "problems/sat.hpp"

#include <gtest/gtest.h>

#include "common/bitops.hpp"

namespace qokit {
namespace {

TEST(Sat, ViolatedManual) {
  // (x0 OR ~x1): violated iff x0 = 0 and x1 = 1.
  SatInstance inst;
  inst.num_vars = 2;
  inst.clauses.push_back({{0, 1}, {false, true}});
  EXPECT_EQ(inst.violated(0b00), 0);
  EXPECT_EQ(inst.violated(0b01), 0);
  EXPECT_EQ(inst.violated(0b10), 1);
  EXPECT_EQ(inst.violated(0b11), 0);
}

TEST(Sat, RandomInstanceShape) {
  const SatInstance inst = random_ksat(10, 3, 42, 7);
  EXPECT_EQ(inst.num_vars, 10);
  EXPECT_EQ(inst.clauses.size(), 42u);
  for (const Clause& c : inst.clauses) {
    EXPECT_EQ(c.vars.size(), 3u);
    EXPECT_EQ(c.negated.size(), 3u);
    // Variables within a clause are distinct.
    EXPECT_NE(c.vars[0], c.vars[1]);
    EXPECT_NE(c.vars[0], c.vars[2]);
    EXPECT_NE(c.vars[1], c.vars[2]);
    for (int v : c.vars) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 10);
    }
  }
}

TEST(Sat, DeterministicPerSeed) {
  const SatInstance a = random_ksat(8, 3, 20, 5);
  const SatInstance b = random_ksat(8, 3, 20, 5);
  for (std::uint64_t x = 0; x < 256; ++x)
    EXPECT_EQ(a.violated(x), b.violated(x));
}

class SatTermsTest : public ::testing::TestWithParam<int> {};

TEST_P(SatTermsTest, PolynomialCountsViolatedClauses) {
  const int k = GetParam();
  const SatInstance inst = random_ksat(9, k, 25, 11 + k);
  const TermList t = sat_terms(inst);
  for (std::uint64_t x = 0; x < dim_of(9); ++x)
    EXPECT_NEAR(t.evaluate(x), inst.violated(x), 1e-9) << "x=" << x;
}

INSTANTIATE_TEST_SUITE_P(ClauseWidths, SatTermsTest,
                         ::testing::Values(2, 3, 4, 5, 8));

TEST(Sat, TermsMaxOrderIsAtMostK) {
  const SatInstance inst = random_ksat(12, 4, 30, 3);
  EXPECT_LE(sat_terms(inst).max_order(), 4);
}

TEST(Sat, SatisfiableIffZeroMinimum) {
  // Under-constrained instance: satisfiable with overwhelming probability.
  const SatInstance easy = random_ksat(10, 3, 10, 1);
  double lo = 1e300;
  const TermList t = sat_terms(easy);
  for (std::uint64_t x = 0; x < dim_of(10); ++x)
    lo = std::min(lo, t.evaluate(x));
  EXPECT_EQ(easy.satisfiable_brute_force(), lo < 0.5);
}

TEST(Sat, ContradictionIsAlwaysViolated) {
  // (x0) and (~x0): one clause violated for every assignment.
  SatInstance inst;
  inst.num_vars = 1;
  inst.clauses.push_back({{0}, {false}});
  inst.clauses.push_back({{0}, {true}});
  const TermList t = sat_terms(inst);
  EXPECT_NEAR(t.evaluate(0), 1.0, 1e-12);
  EXPECT_NEAR(t.evaluate(1), 1.0, 1e-12);
  EXPECT_FALSE(inst.satisfiable_brute_force());
}

TEST(Sat, RejectsBadK) {
  EXPECT_THROW(random_ksat(3, 4, 5, 0), std::invalid_argument);
  EXPECT_THROW(random_ksat(3, 0, 5, 0), std::invalid_argument);
}

TEST(Sat, HighDensityEightSatHasExpectedClauseExpansion) {
  // Each 8-literal clause expands into 2^8 = 256 signed terms; clauses over
  // only 16 variables share many monomials, so the canonical count sits
  // between one clause's worth and the raw m * 256.
  const SatInstance inst = random_ksat(16, 8, 4, 9);
  const TermList t = sat_terms(inst);
  EXPECT_GT(t.size(), 512u);
  EXPECT_LE(t.size(), 1024u);
}

}  // namespace
}  // namespace qokit
