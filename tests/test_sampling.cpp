#include "statevector/sampling.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "api/session.hpp"
#include "common/bitops.hpp"
#include "fur/simulator.hpp"
#include "problems/labs.hpp"
#include "problems/maxcut.hpp"

namespace qokit {
namespace {

TEST(Sampler, BasisStateAlwaysSamplesItself) {
  const StateVector sv = StateVector::basis_state(5, 19);
  Rng rng(1);
  for (std::uint64_t x : sample_states(sv, 100, rng)) EXPECT_EQ(x, 19u);
}

TEST(Sampler, RespectsZeroAmplitudes) {
  StateVector sv(4);
  sv[3] = cdouble(0.6, 0.0);
  sv[12] = cdouble(0.0, 0.8);
  Rng rng(2);
  for (std::uint64_t x : sample_states(sv, 500, rng))
    EXPECT_TRUE(x == 3 || x == 12);
}

TEST(Sampler, FrequenciesTrackProbabilities) {
  StateVector sv(2);
  sv[0] = cdouble(std::sqrt(0.7), 0.0);
  sv[3] = cdouble(0.0, std::sqrt(0.3));
  Rng rng(3);
  const auto counts = StateSampler(sv).sample_counts(20000, rng);
  EXPECT_NEAR(counts.at(0) / 20000.0, 0.7, 0.02);
  EXPECT_NEAR(counts.at(3) / 20000.0, 0.3, 0.02);
  EXPECT_EQ(counts.size(), 2u);
}

TEST(Sampler, UniformStateCoversSpace) {
  const StateVector sv = StateVector::plus_state(4);
  Rng rng(4);
  const auto counts = StateSampler(sv).sample_counts(16000, rng);
  EXPECT_EQ(counts.size(), 16u);  // every outcome seen
  for (const auto& [x, c] : counts) EXPECT_NEAR(c, 1000, 200) << x;
}

TEST(Sampler, DeterministicPerSeed) {
  const StateVector sv = StateVector::plus_state(6);
  Rng a(7), b(7);
  EXPECT_EQ(sample_states(sv, 50, a), sample_states(sv, 50, b));
}

TEST(Sampler, UnnormalizedStatesHandled) {
  StateVector sv(3);
  sv[1] = cdouble(2.0, 0.0);  // norm 4
  sv[6] = cdouble(2.0, 0.0);
  Rng rng(8);
  const auto counts = StateSampler(sv).sample_counts(4000, rng);
  EXPECT_NEAR(counts.at(1), 2000, 200);
  EXPECT_NEAR(counts.at(6), 2000, 200);
}

TEST(Sampler, ThrowsOnZeroState) {
  StateVector sv(3);
  EXPECT_THROW(StateSampler{sv}, std::invalid_argument);
}

TEST(Sampler, TrailingZeroAmplitudesNeverSampled) {
  // Regression: a uniform variate at (or rounding up to) the full mass
  // used to clamp to the last index overall, which could be a
  // zero-probability state when the trailing amplitudes are zero.
  StateVector sv(4);
  sv[2] = cdouble(0.8, 0.0);
  sv[5] = cdouble(0.0, 0.6);  // indices 6..15 stay zero
  const StateSampler sampler(sv);
  EXPECT_EQ(sampler.sample_from_uniform(1.0), 5u);
  EXPECT_EQ(sampler.sample_from_uniform(std::nextafter(1.0, 0.0)), 5u);
  Rng rng(11);
  for (int s = 0; s < 1000; ++s) {
    const std::uint64_t x = sampler.sample(rng);
    EXPECT_TRUE(x == 2u || x == 5u) << x;
  }
}

TEST(Sampler, ShotCountsValidated) {
  const StateVector sv = StateVector::plus_state(3);
  const StateSampler sampler(sv);
  Rng rng(12);
  EXPECT_THROW(sampler.sample(-1, rng), std::invalid_argument);
  EXPECT_THROW(sampler.sample_counts(-1, rng), std::invalid_argument);
  EXPECT_THROW(sample_states(sv, -3, rng), std::invalid_argument);
  EXPECT_TRUE(sampler.sample(0, rng).empty());
  EXPECT_TRUE(sampler.sample_counts(0, rng).empty());
  const auto f = [](std::uint64_t) { return 1.0; };
  EXPECT_THROW(estimate_expectation_sampled(sv, f, -1, rng),
               std::invalid_argument);
  const SampledExpectation z = estimate_expectation_sampled(sv, f, 0, rng);
  EXPECT_EQ(z.shots, 0);
  EXPECT_EQ(z.mean, 0.0);
  EXPECT_EQ(z.std_error, 0.0);
}

TEST(Sampler, SeededOverloadsMatchExplicitRngStreams) {
  const StateVector sv = StateVector::plus_state(6);
  const StateSampler sampler(sv);
  Rng rng(99);
  const auto explicit_stream = sampler.sample(40, rng);
  EXPECT_EQ(sampler.sample(40, std::uint64_t{99}), explicit_stream);
  EXPECT_EQ(sample_states(sv, 40, std::uint64_t{99}), explicit_stream);
  Rng rng2(99);
  EXPECT_EQ(sampler.sample_counts(40, std::uint64_t{99}),
            sampler.sample_counts(40, rng2));
}

TEST(Sampler, SessionSeedYieldsIdenticalStreamsAcrossExecModes) {
  // The SimulatorSpec sampling seed threads through StateSampler, and the
  // evolved amplitudes are Exec-independent (the SIMD layer's determinism
  // guarantee), so sessions differing only in execution policy draw the
  // same bitstrings -- the spec alone determines the stream.
  const QaoaParams params{{0.4, -0.3}, {0.7, 0.2}};
  const api::ProblemSession serial =
      api::ProblemSession::labs(8, SimulatorSpec::parse("serial:seed=7"));
  const api::ProblemSession threaded =
      api::ProblemSession::labs(8, SimulatorSpec::parse("threaded:seed=7"));
  const auto a = serial.sample(params, 50);
  EXPECT_EQ(threaded.sample(params, 50), a);

  api::EvalRequest request;
  request.shots = 50;
  EXPECT_EQ(*serial.evaluate(params, request).samples,
            *threaded.evaluate(params, request).samples);
}

TEST(Sampler, QaoaSamplesConcentrateOnGoodCuts) {
  // After a few optimized-ish layers, sampled cuts must on average beat
  // the random-assignment baseline |E|/2 -- the sampling-based estimator
  // agreeing with the exact expectation.
  const Graph g = Graph::random_regular(10, 3, 3);
  const TermList terms = maxcut_terms(g);
  const FurQaoaSimulator sim(terms, {});
  const std::vector<double> gs{0.35, 0.6}, bs{-0.55, -0.3};
  const StateVector result = sim.simulate_qaoa(gs, bs);

  Rng rng(5);
  const auto samples = sample_states(result, 3000, rng);
  double mean_cut = 0.0;
  for (std::uint64_t x : samples) mean_cut += g.cut_value(x);
  mean_cut /= static_cast<double>(samples.size());

  EXPECT_GT(mean_cut, g.num_edges() / 2.0);
  // Sampling estimator within a few standard errors of the exact value.
  EXPECT_NEAR(mean_cut, -sim.get_expectation(result), 0.35);
}

}  // namespace
}  // namespace qokit
