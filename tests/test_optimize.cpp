#include "optimize/nelder_mead.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "optimize/objective.hpp"
#include "optimize/params.hpp"
#include "optimize/spsa.hpp"
#include "problems/maxcut.hpp"

namespace qokit {
namespace {

double sphere(const std::vector<double>& x) {
  double acc = 0.0;
  for (double v : x) acc += (v - 1.0) * (v - 1.0);
  return acc;
}

double rosenbrock(const std::vector<double>& x) {
  return 100.0 * std::pow(x[1] - x[0] * x[0], 2) + std::pow(1.0 - x[0], 2);
}

TEST(NelderMead, MinimizesSphere) {
  const OptResult r = nelder_mead(sphere, {0.0, 0.0, 0.0}, {.max_evals = 2000});
  EXPECT_LT(r.fval, 1e-8);
  for (double v : r.x) EXPECT_NEAR(v, 1.0, 1e-3);
}

TEST(NelderMead, MinimizesRosenbrock) {
  const OptResult r =
      nelder_mead(rosenbrock, {-1.2, 1.0}, {.max_evals = 4000, .xtol = 1e-10});
  EXPECT_LT(r.fval, 1e-6);
  EXPECT_NEAR(r.x[0], 1.0, 1e-2);
  EXPECT_NEAR(r.x[1], 1.0, 1e-2);
}

TEST(NelderMead, RespectsEvaluationBudget) {
  int count = 0;
  const auto f = [&count](const std::vector<double>& x) {
    ++count;
    return sphere(x);
  };
  const OptResult r = nelder_mead(f, {5.0, 5.0}, {.max_evals = 40});
  EXPECT_LE(count, 40 + 2);  // shrink step may finish its sweep
  EXPECT_EQ(r.evaluations, count);
}

TEST(NelderMead, ConvergedFlagOnEasyProblem) {
  const OptResult r = nelder_mead(sphere, {0.5}, {.max_evals = 500});
  EXPECT_TRUE(r.converged);
}

TEST(NelderMead, RejectsEmptyStart) {
  EXPECT_THROW(nelder_mead(sphere, {}), std::invalid_argument);
}

TEST(NelderMead, NonAdaptiveAlsoConverges) {
  const OptResult r =
      nelder_mead(sphere, {3.0, -2.0}, {.max_evals = 2000, .adaptive = false});
  EXPECT_LT(r.fval, 1e-6);
}

TEST(Spsa, ImprovesQuadratic) {
  const double f0 = sphere({4.0, -3.0});
  const OptResult r = spsa(sphere, {4.0, -3.0}, {.max_iterations = 400});
  EXPECT_LT(r.fval, f0 * 0.1);
}

TEST(Spsa, DeterministicPerSeed) {
  const OptResult a = spsa(sphere, {2.0, 2.0}, {.max_iterations = 50, .seed = 3});
  const OptResult b = spsa(sphere, {2.0, 2.0}, {.max_iterations = 50, .seed = 3});
  EXPECT_EQ(a.fval, b.fval);
}

TEST(Params, FlattenUnflattenRoundTrip) {
  QaoaParams p;
  p.gammas = {0.1, 0.2, 0.3};
  p.betas = {0.9, 0.8, 0.7};
  const auto x = p.flatten();
  ASSERT_EQ(x.size(), 6u);
  const QaoaParams q = QaoaParams::unflatten(x);
  EXPECT_EQ(q.gammas, p.gammas);
  EXPECT_EQ(q.betas, p.betas);
}

TEST(Params, UnflattenRejectsOddLength) {
  EXPECT_THROW(QaoaParams::unflatten({1.0, 2.0, 3.0}), std::invalid_argument);
}

TEST(Params, LinearRampShape) {
  const QaoaParams p = linear_ramp(4, 1.0);
  ASSERT_EQ(p.p(), 4);
  // gamma ramps up from 0; |beta| ramps down to 0 with beta < 0 (the
  // annealing-consistent sign for this library's conventions).
  for (int l = 0; l + 1 < 4; ++l) {
    EXPECT_LT(p.gammas[l], p.gammas[l + 1]);
    EXPECT_LT(std::abs(p.betas[l + 1]), std::abs(p.betas[l]));
    EXPECT_LT(p.betas[l], 0.0);
  }
  EXPECT_NEAR(p.gammas[0] - p.betas[0], 1.0, 1e-12);  // complementary ramps
}

TEST(Params, InterpPreservesEndpointsAndLength) {
  QaoaParams p;
  p.gammas = {0.1, 0.3, 0.5};
  p.betas = {0.6, 0.4, 0.2};
  const QaoaParams q = interp_to_next_depth(p);
  ASSERT_EQ(q.p(), 4);
  EXPECT_NEAR(q.gammas.front(), 0.1, 1e-12);
  EXPECT_NEAR(q.gammas.back(), 0.5, 1e-12);
  EXPECT_NEAR(q.betas.front(), 0.6, 1e-12);
  EXPECT_NEAR(q.betas.back(), 0.2, 1e-12);
  // Monotone input stays monotone under linear resampling.
  for (int l = 0; l + 1 < 4; ++l) EXPECT_LE(q.gammas[l], q.gammas[l + 1]);
}

TEST(Objective, CountsEvaluations) {
  const TermList terms = maxcut_terms(Graph::random_regular(6, 3, 5));
  const FurQaoaSimulator sim(terms, {});
  QaoaObjective obj(sim, 2);
  EXPECT_EQ(obj.evaluations(), 0);
  obj({0.1, 0.2, 0.3, 0.4});
  obj({0.1, 0.2, 0.3, 0.4});
  EXPECT_EQ(obj.evaluations(), 2);
  obj.reset_count();
  EXPECT_EQ(obj.evaluations(), 0);
}

TEST(Objective, MatchesDirectSimulation) {
  const TermList terms = maxcut_terms(Graph::random_regular(8, 3, 9));
  const FurQaoaSimulator sim(terms, {});
  QaoaObjective obj(sim, 1);
  const double via_obj = obj({0.4, 0.8});
  const std::vector<double> gs{0.4}, bs{0.8};
  const double direct = sim.get_expectation(sim.simulate_qaoa(gs, bs));
  EXPECT_DOUBLE_EQ(via_obj, direct);
}

TEST(Objective, RejectsWrongParameterCount) {
  const TermList terms = maxcut_terms(Graph::random_regular(6, 3, 5));
  const FurQaoaSimulator sim(terms, {});
  QaoaObjective obj(sim, 2);
  EXPECT_THROW(obj({0.1, 0.2, 0.3}), std::invalid_argument);
}

TEST(Objective, OptimizationImprovesOverRampStart) {
  const TermList terms = maxcut_terms(Graph::random_regular(8, 3, 13));
  const FurQaoaSimulator sim(terms, {});
  const int p = 2;
  QaoaObjective obj(sim, p);
  const auto x0 = linear_ramp(p).flatten();
  const double f0 = obj(x0);
  const OptResult r = nelder_mead(
      [&obj](const std::vector<double>& x) { return obj(x); }, x0,
      {.max_evals = 250});
  EXPECT_LE(r.fval, f0 + 1e-12);
  EXPECT_LT(r.fval, f0 - 1e-3);  // strictly better than the ramp for MaxCut
}

}  // namespace
}  // namespace qokit
