// Optimizer plumbing tests: routing grid search, Nelder-Mead, and SPSA
// through BatchEvaluator must not change a single bit of their
// trajectories. The scalar entry points delegate to the batched cores, so
// these tests compare (a) scalar-objective runs against batch-objective
// runs end to end, and (b) the rewired grid search against a hand-rolled
// sequential double loop replicating the pre-batch implementation.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>

#include "api/qokit.hpp"

namespace qokit {
namespace {

void expect_same_result(const OptResult& a, const OptResult& b) {
  EXPECT_EQ(a.x, b.x);
  EXPECT_EQ(a.fval, b.fval);
  EXPECT_EQ(a.evaluations, b.evaluations);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.converged, b.converged);
}

TEST(BatchOptimizers, NelderMeadTrajectoryUnchangedByBatching) {
  const TermList terms = maxcut_terms(Graph::random_regular(8, 3, 17));
  const FurQaoaSimulator sim(terms, {});
  const std::vector<double> x0 = linear_ramp(2).flatten();
  for (const int max_evals : {9, 40, 200}) {
    NelderMeadOptions opts;
    opts.max_evals = max_evals;
    const QaoaObjective scalar(sim, 2);
    const OptResult a = nelder_mead(
        [&scalar](const std::vector<double>& x) { return scalar(x); }, x0,
        opts);
    const QaoaBatchObjective batched(sim, 2);
    const OptResult b = nelder_mead_batched(
        [&batched](const std::vector<std::vector<double>>& points) {
          return batched(points);
        },
        x0, opts);
    expect_same_result(a, b);
    EXPECT_EQ(scalar.evaluations(), batched.evaluations());
    // Batching actually batches: strictly fewer submissions than points.
    EXPECT_LT(batched.batches(), batched.evaluations());
  }
}

TEST(BatchOptimizers, SpsaTrajectoryUnchangedByBatching) {
  const TermList terms = labs_terms(8);
  const FurQaoaSimulator sim(terms, {});
  const std::vector<double> x0 = linear_ramp(2).flatten();
  SpsaOptions opts;
  opts.max_iterations = 40;
  opts.seed = 2024;
  const QaoaObjective scalar(sim, 2);
  const OptResult a = spsa(
      [&scalar](const std::vector<double>& x) { return scalar(x); }, x0,
      opts);
  const QaoaBatchObjective batched(sim, 2);
  const OptResult b = spsa_batched(
      [&batched](const std::vector<std::vector<double>>& points) {
        return batched(points);
      },
      x0, opts);
  expect_same_result(a, b);
  EXPECT_EQ(scalar.evaluations(), batched.evaluations());
}

TEST(BatchOptimizers, NelderMeadBatchSizesAreThePopulations) {
  // On a synthetic objective, check the population structure the batched
  // core submits: one batch of dim+1 (initial simplex), singletons for
  // reflect/expand/contract, and -- once the simplex must shrink -- a
  // batch of dim. A staircase of flat plateaus defeats contraction, so
  // shrinks are guaranteed.
  auto f = [](const std::vector<double>& x) {
    double s = 0.0;
    for (const double v : x) s += std::floor(std::abs(v) * 8) / 8;
    return s;
  };
  std::vector<std::size_t> sizes;
  const BatchObjectiveFn recording =
      [&](const std::vector<std::vector<double>>& points) {
        sizes.push_back(points.size());
        std::vector<double> values;
        for (const auto& x : points) values.push_back(f(x));
        return values;
      };
  NelderMeadOptions opts;
  opts.max_evals = 120;
  const OptResult r =
      nelder_mead_batched(recording, {0.9, -1.1, 1.3}, opts);
  EXPECT_LT(r.fval, f({0.9, -1.1, 1.3}));
  ASSERT_FALSE(sizes.empty());
  EXPECT_EQ(sizes.front(), 4u);  // dim+1 initial simplex
  int shrink_batches = 0;
  for (std::size_t i = 1; i < sizes.size(); ++i) {
    EXPECT_TRUE(sizes[i] == 1 || sizes[i] == 3) << "batch " << i;
    if (sizes[i] == 3) ++shrink_batches;
  }
  EXPECT_GT(shrink_batches, 0);
}

TEST(BatchOptimizers, NelderMeadHonorsBudgetMidShrink) {
  // A budget that runs out inside a shrink step: the batched core must
  // evaluate exactly as many shrunk vertices as the scalar
  // eval-then-break loop would, and total evaluations must agree.
  auto f = [](const std::vector<double>& x) {
    double s = 0.0;
    for (const double v : x) s += std::floor(std::abs(v) * 8) / 8;
    return s;
  };
  for (int max_evals = 5; max_evals <= 30; ++max_evals) {
    NelderMeadOptions opts;
    opts.max_evals = max_evals;
    int scalar_evals = 0;
    const OptResult a = nelder_mead(
        [&](const std::vector<double>& x) {
          ++scalar_evals;
          return f(x);
        },
        {0.9, -1.1, 1.3}, opts);
    const OptResult b = nelder_mead_batched(
        [&](const std::vector<std::vector<double>>& points) {
          std::vector<double> values;
          for (const auto& x : points) values.push_back(f(x));
          return values;
        },
        {0.9, -1.1, 1.3}, opts);
    expect_same_result(a, b);
    EXPECT_EQ(scalar_evals, a.evaluations) << max_evals;
  }
}

TEST(BatchOptimizers, WrongSizedCallbackReturnsThrow) {
  // The population callback is arbitrary user code; returning the wrong
  // number of values must throw rather than index out of bounds.
  const BatchObjectiveFn broken =
      [](const std::vector<std::vector<double>>&) {
        return std::vector<double>{};
      };
  EXPECT_THROW(nelder_mead_batched(broken, {0.5, 0.5}, {}),
               std::invalid_argument);
  EXPECT_THROW(spsa_batched(broken, {0.5, 0.5}, {}), std::invalid_argument);
}

TEST(BatchOptimizers, GridSearchMatchesSequentialDoubleLoop) {
  const TermList terms = maxcut_terms(Graph::random_regular(8, 3, 23));
  for (const char* name : {"serial", "auto", "u16"}) {
    const auto sim = choose_simulator(terms, name);
    const GridResult r =
        grid_search_p1(*sim, 7, 5, -0.8, 0.8, -1.0, 1.0);
    // The pre-batch implementation: evaluate in gamma-major order, keep
    // the first strictly-smallest point.
    GridResult naive;
    naive.value = std::numeric_limits<double>::infinity();
    for (int gi = 0; gi < 7; ++gi) {
      const double g = -0.8 + 1.6 * gi / 6;
      for (int bi = 0; bi < 5; ++bi) {
        const double b = -1.0 + 2.0 * bi / 4;
        const double gamma_arr[1] = {g};
        const double beta_arr[1] = {b};
        const StateVector state = sim->simulate_qaoa(gamma_arr, beta_arr);
        const double v = sim->get_expectation(state);
        if (v < naive.value) naive = {g, b, v};
      }
    }
    EXPECT_EQ(r.gamma, naive.gamma) << name;
    EXPECT_EQ(r.beta, naive.beta) << name;
    EXPECT_EQ(r.value, naive.value) << name;
  }
}

TEST(BatchOptimizers, OptimizeQaoaApiMatchesManualBatchedRun) {
  const TermList terms = labs_terms(7);
  NelderMeadOptions opts;
  opts.max_evals = 60;
  const auto outcome = api::optimize_qaoa(terms, 2, opts, "serial");

  // Same factory spelling as the api:: call above, so both sides resolve
  // identical configuration (including prec=auto) and stay bit-equal.
  const auto sim = choose_simulator(terms, "serial");
  const QaoaBatchObjective objective(*sim, 2);
  const OptResult manual = nelder_mead_batched(
      [&objective](const std::vector<std::vector<double>>& points) {
        return objective(points);
      },
      linear_ramp(2).flatten(), opts);
  EXPECT_EQ(outcome.params.flatten(), manual.x);
  EXPECT_EQ(outcome.fval, manual.fval);
  EXPECT_EQ(outcome.evaluations, manual.evaluations);
  EXPECT_GT(outcome.batches, 0);
  EXPECT_LT(outcome.batches, outcome.evaluations);
}

}  // namespace
}  // namespace qokit
