// RY / CZ / SWAP gate coverage across executor, fusion and TN lowering.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "gatesim/execute.hpp"
#include "gatesim/fusion.hpp"
#include "support/reference.hpp"
#include "tn/contract.hpp"

namespace qokit {
namespace {

using testing::max_diff;
using testing::to_vec;

StateVector random_state(int n, std::uint64_t seed) {
  Rng rng(seed);
  StateVector sv(n);
  for (std::uint64_t x = 0; x < sv.size(); ++x)
    sv[x] = cdouble(rng.normal(), rng.normal());
  sv.normalize();
  return sv;
}

TEST(NewGates, RyMatchesDenseReference) {
  StateVector sv = random_state(5, 1);
  const auto before = to_vec(sv);
  const double theta = 0.83;
  apply_gate(sv, Gate::ry(2, theta), Exec::Serial);
  const double c = std::cos(theta / 2), s = std::sin(theta / 2);
  const std::array<cdouble, 4> m{cdouble(c), cdouble(-s), cdouble(s),
                                 cdouble(c)};
  EXPECT_LT(max_diff(to_vec(sv), testing::ref_apply_1q(before, 2, m)), 1e-13);
}

TEST(NewGates, RyOnPlusRotatesTowardBasis) {
  // RY(pi/2)|+> = |1> up to sign conventions: check norm shifts entirely.
  StateVector sv = StateVector::basis_state(1, 0);
  apply_gate(sv, Gate::ry(0, 3.14159265358979323846), Exec::Serial);
  EXPECT_NEAR(std::norm(sv[1]), 1.0, 1e-12);
}

TEST(NewGates, CzAppliesMinusOnDoublyExcited) {
  StateVector sv = random_state(4, 2);
  const auto before = to_vec(sv);
  apply_gate(sv, Gate::cz(1, 3), Exec::Serial);
  for (std::uint64_t x = 0; x < sv.size(); ++x) {
    const bool both = test_bit(x, 1) && test_bit(x, 3);
    EXPECT_LT(std::abs(sv[x] - (both ? -before[x] : before[x])), 1e-14);
  }
}

TEST(NewGates, CzIsSymmetricAndSelfInverse) {
  StateVector a = random_state(5, 3);
  StateVector b = a;
  apply_gate(a, Gate::cz(0, 4), Exec::Serial);
  apply_gate(b, Gate::cz(4, 0), Exec::Serial);
  EXPECT_LT(a.max_abs_diff(b), 1e-15);
  apply_gate(a, Gate::cz(0, 4), Exec::Serial);
  StateVector orig = random_state(5, 3);
  EXPECT_LT(a.max_abs_diff(orig), 1e-15);
}

TEST(NewGates, SwapPermutesBasisStates) {
  for (std::uint64_t x = 0; x < 16; ++x) {
    StateVector sv = StateVector::basis_state(4, x);
    apply_gate(sv, Gate::swap(0, 2), Exec::Serial);
    std::uint64_t expect = x & ~0b101ull;
    if (test_bit(x, 0)) expect |= 0b100;
    if (test_bit(x, 2)) expect |= 0b001;
    EXPECT_NEAR(std::norm(sv[expect]), 1.0, 1e-14) << x;
  }
}

TEST(NewGates, SwapEqualsThreeCx) {
  StateVector a = random_state(5, 4);
  StateVector b = a;
  apply_gate(a, Gate::swap(1, 3), Exec::Serial);
  apply_gate(b, Gate::cx(1, 3), Exec::Serial);
  apply_gate(b, Gate::cx(3, 1), Exec::Serial);
  apply_gate(b, Gate::cx(1, 3), Exec::Serial);
  EXPECT_LT(a.max_abs_diff(b), 1e-13);
}

TEST(NewGates, FusionHandlesNewKinds) {
  Circuit c(4);
  c.append(Gate::ry(0, 0.3));
  c.append(Gate::cz(0, 1));
  c.append(Gate::swap(0, 1));
  c.append(Gate::ry(1, -0.7));
  const Circuit fused = fuse_gates(c);
  EXPECT_LT(fused.size(), c.size());
  StateVector a = random_state(4, 5);
  StateVector b = a;
  run_circuit(a, c, Exec::Serial);
  run_circuit(b, fused, Exec::Serial);
  EXPECT_LT(a.max_abs_diff(b), 1e-12);
}

TEST(NewGates, TnLoweringMatchesStatevector) {
  Circuit c(4);
  c.append(Gate::h(0));
  c.append(Gate::ry(1, 0.4));
  c.append(Gate::cz(0, 1));
  c.append(Gate::swap(1, 2));
  c.append(Gate::ry(3, -0.9));
  c.append(Gate::cz(2, 3));
  StateVector sv = StateVector::basis_state(4, 0);
  run_circuit(sv, c, Exec::Serial);
  for (std::uint64_t x = 0; x < 16; ++x)
    EXPECT_LT(std::abs(tn::amplitude(c, x) - sv[x]), 1e-12) << x;
}

TEST(NewGates, RejectEqualQubits) {
  EXPECT_THROW(Gate::cz(2, 2), std::invalid_argument);
  EXPECT_THROW(Gate::swap(1, 1), std::invalid_argument);
}

}  // namespace
}  // namespace qokit
