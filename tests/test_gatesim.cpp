#include "gatesim/simulator.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "diagonal/ops.hpp"
#include "fur/simulator.hpp"
#include "gatesim/execute.hpp"
#include "problems/labs.hpp"
#include "problems/maxcut.hpp"
#include "support/reference.hpp"

namespace qokit {
namespace {

using testing::max_diff;
using testing::to_vec;

StateVector random_state(int n, std::uint64_t seed) {
  Rng rng(seed);
  StateVector sv(n);
  for (std::uint64_t x = 0; x < sv.size(); ++x)
    sv[x] = cdouble(rng.normal(), rng.normal());
  sv.normalize();
  return sv;
}

TEST(GateApply, HadamardMatchesReference) {
  StateVector sv = random_state(5, 1);
  const auto before = to_vec(sv);
  apply_gate(sv, Gate::h(2), Exec::Serial);
  EXPECT_LT(max_diff(to_vec(sv),
                     testing::ref_apply_1q(before, 2, testing::ref_matrix_h())),
            1e-13);
}

TEST(GateApply, RxMatchesReference) {
  StateVector sv = random_state(5, 2);
  const auto before = to_vec(sv);
  apply_gate(sv, Gate::rx(1, 0.8), Exec::Serial);
  EXPECT_LT(max_diff(to_vec(sv), testing::ref_apply_1q(
                                     before, 1, testing::ref_matrix_rx(0.8))),
            1e-13);
}

TEST(GateApply, RzAddsConditionalPhase) {
  StateVector sv = random_state(4, 3);
  const auto before = to_vec(sv);
  const double theta = 0.62;
  apply_gate(sv, Gate::rz(2, theta), Exec::Serial);
  for (std::uint64_t x = 0; x < sv.size(); ++x) {
    const double ang = test_bit(x, 2) ? theta / 2 : -theta / 2;
    const cdouble expect = before[x] * cdouble(std::cos(ang), std::sin(ang));
    EXPECT_LT(std::abs(sv[x] - expect), 1e-13);
  }
}

TEST(GateApply, CxPermutesBasis) {
  for (std::uint64_t x = 0; x < 8; ++x) {
    StateVector sv = StateVector::basis_state(3, x);
    apply_gate(sv, Gate::cx(0, 2), Exec::Serial);
    const std::uint64_t expect = test_bit(x, 0) ? (x ^ 0b100) : x;
    EXPECT_NEAR(std::norm(sv[expect]), 1.0, 1e-14) << "x=" << x;
  }
}

TEST(GateApply, ZPhaseMatchesParityRule) {
  StateVector sv = random_state(5, 4);
  const auto before = to_vec(sv);
  const double theta = 1.3;
  const std::uint64_t mask = 0b10110;
  apply_gate(sv, Gate::zphase(mask, theta), Exec::Serial);
  for (std::uint64_t x = 0; x < sv.size(); ++x) {
    const double sgn = parity(x & mask) ? 1.0 : -1.0;
    const cdouble expect =
        before[x] * cdouble(std::cos(theta / 2), sgn * std::sin(theta / 2));
    EXPECT_LT(std::abs(sv[x] - expect), 1e-13);
  }
}

TEST(GateApply, XyMatchesFurKernel) {
  StateVector a = random_state(6, 5);
  StateVector b = a;
  apply_gate(a, Gate::xy(1, 4, 2.0 * 0.7), Exec::Serial);
  const auto ref =
      testing::ref_apply_2q(to_vec(b), 1, 4, testing::ref_matrix_xy(0.7));
  EXPECT_LT(max_diff(to_vec(a), ref), 1e-13);
}

TEST(GateApply, U1AndU2MatchReference) {
  Rng rng(6);
  std::array<cdouble, 4> m1;
  for (auto& v : m1) v = cdouble(rng.normal(), rng.normal());
  std::array<cdouble, 16> m2;
  for (auto& v : m2) v = cdouble(rng.normal(), rng.normal());

  StateVector sv = random_state(5, 7);
  const auto before = to_vec(sv);
  apply_gate(sv, Gate::u1(3, m1), Exec::Serial);
  EXPECT_LT(max_diff(to_vec(sv), testing::ref_apply_1q(before, 3, m1)), 1e-12);

  StateVector sv2 = random_state(5, 8);
  const auto before2 = to_vec(sv2);
  apply_gate(sv2, Gate::u2(0, 4, m2), Exec::Serial);
  EXPECT_LT(max_diff(to_vec(sv2), testing::ref_apply_2q(before2, 0, 4, m2)),
            1e-12);
}

TEST(GateApply, OutOfPlaceMatchesInPlace) {
  StateVector a = random_state(6, 9);
  StateVector b = a;
  apply_gate(a, Gate::rx(2, 0.5), Exec::Serial);
  apply_gate_out_of_place(b, Gate::rx(2, 0.5));
  EXPECT_LT(a.max_abs_diff(b), 1e-14);
}

TEST(Circuit, HLayerPreparesPlusState) {
  Circuit c(6);
  for (int q = 0; q < 6; ++q) c.append(Gate::h(q));
  StateVector sv = StateVector::basis_state(6, 0);
  run_circuit(sv, c);
  EXPECT_LT(sv.max_abs_diff(StateVector::plus_state(6)), 1e-13);
}

TEST(Circuit, AppendValidatesSupport) {
  Circuit c(3);
  EXPECT_THROW(c.append(Gate::h(3)), std::out_of_range);
  EXPECT_THROW(c.append(Gate::zphase(0b1000, 0.1)), std::out_of_range);
}

TEST(Compile, CxLadderGateCountsMaxCut) {
  // Per edge: 2 CX + 1 RZ; plus n H and n RX per layer.
  const Graph g = Graph::random_regular(8, 3, 11);
  const TermList terms = maxcut_terms(g);
  const std::vector<double> gs{0.1}, bs{0.2};
  const Circuit c = compile_qaoa_circuit(terms, gs, bs);
  const std::size_t expected = 8 + g.num_edges() * 3 + 8;
  EXPECT_EQ(c.size(), expected);
}

TEST(Compile, MultiZEmitsOneGatePerTerm) {
  const TermList terms = labs_terms(8);
  std::size_t nonconst = 0;
  for (const Term& t : terms)
    if (t.mask != 0) ++nonconst;
  const std::vector<double> gs{0.1}, bs{0.2};
  const Circuit c =
      compile_qaoa_circuit(terms, gs, bs, MixerType::X, PhaseStyle::MultiZ);
  EXPECT_EQ(c.size(), 8 + nonconst + 8);
}

TEST(Compile, LabsLadderUsesSixCxPerQuarticTerm) {
  const TermList terms = labs_terms(8);
  const std::vector<double> gs{0.1}, bs{0.2};
  const Circuit c = compile_qaoa_circuit(terms, gs, bs);
  std::size_t expected = 8 + 8;  // H + RX layers
  for (const Term& t : terms) {
    if (t.mask == 0) continue;
    expected += 2 * (t.order() - 1) + 1;
  }
  EXPECT_EQ(c.size(), expected);
}

class GateVsFurTest : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(GateVsFurTest, MaxCutStateMatchesFastSimulator) {
  const auto [style_idx, n] = GetParam();
  const TermList terms = maxcut_terms(Graph::random_regular(n, 3, 19));
  const std::vector<double> gs{0.4, -0.2}, bs{0.7, 0.3};

  const GateQaoaSimulator gate_sim(
      terms, {.phase_style = style_idx == 0 ? PhaseStyle::CxLadder
                                            : PhaseStyle::MultiZ});
  const FurQaoaSimulator fur_sim(terms, {});
  const StateVector a = gate_sim.simulate_qaoa(gs, bs);
  const StateVector b = fur_sim.simulate_qaoa(gs, bs);
  EXPECT_LT(a.max_abs_diff(b), 1e-10);
  EXPECT_NEAR(gate_sim.get_expectation(a), fur_sim.get_expectation(b), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(StylesAndSizes, GateVsFurTest,
                         ::testing::Combine(::testing::Values(0, 1),
                                            ::testing::Values(4, 6, 8)));

TEST(GateVsFur, LabsAgreesIncludingQuarticTerms) {
  const TermList terms = labs_terms(8);
  const std::vector<double> gs{0.13, 0.27}, bs{0.55, 0.21};
  const GateQaoaSimulator gate_sim(terms, {});
  const FurQaoaSimulator fur_sim(terms, {});
  const StateVector a = gate_sim.simulate_qaoa(gs, bs);
  const StateVector b = fur_sim.simulate_qaoa(gs, bs);
  EXPECT_LT(a.max_abs_diff(b), 1e-10);
}

TEST(GateVsFur, OutOfPlaceModeAgrees) {
  const TermList terms = maxcut_terms(Graph::random_regular(6, 3, 23));
  const std::vector<double> gs{0.4}, bs{0.7};
  const GateQaoaSimulator slow(terms, {.out_of_place = true});
  const FurQaoaSimulator fast(terms, {});
  EXPECT_LT(slow.simulate_qaoa(gs, bs).max_abs_diff(fast.simulate_qaoa(gs, bs)),
            1e-10);
}

TEST(GateSim, ExpectationViaTermsMatchesDiagonal) {
  const TermList terms = labs_terms(9);
  const GateQaoaSimulator sim(terms, {});
  const std::vector<double> gs{0.3}, bs{0.5};
  const StateVector sv = sim.simulate_qaoa(gs, bs);
  const CostDiagonal d = CostDiagonal::precompute(terms);
  EXPECT_NEAR(sim.get_expectation(sv), expectation(sv, d), 1e-9);
}

}  // namespace
}  // namespace qokit
