// Shipped LABS schedules: shape and cross-size transfer.
#include <gtest/gtest.h>

#include "fur/simulator.hpp"
#include "optimize/labs_params.hpp"
#include "problems/labs.hpp"

namespace qokit {
namespace {

TEST(LabsParams, TableShapesAreConsistent) {
  for (int p = 1; p <= labs_transferred_max_p(); ++p) {
    const QaoaParams params = labs_transferred_params(p);
    EXPECT_EQ(params.p(), p);
    EXPECT_EQ(params.gammas.size(), static_cast<std::size_t>(p));
    EXPECT_EQ(params.betas.size(), static_cast<std::size_t>(p));
  }
}

TEST(LabsParams, RejectsOutOfTableDepths) {
  EXPECT_THROW(labs_transferred_params(0), std::invalid_argument);
  EXPECT_THROW(labs_transferred_params(labs_transferred_max_p() + 1),
               std::invalid_argument);
}

class LabsTransferTest : public ::testing::TestWithParam<int> {};

TEST_P(LabsTransferTest, BeatsUniformEnergyAtTunedSize) {
  // At the tuning size every shipped schedule must beat <+|C|+> = offset.
  const int p = GetParam();
  const TermList terms = labs_terms(12);
  const FurQaoaSimulator sim(terms, {});
  const QaoaParams params = labs_transferred_params(p);
  const double e =
      sim.get_expectation(sim.simulate_qaoa(params.gammas, params.betas));
  EXPECT_LT(e, terms.offset() - 1.0) << "p=" << p;
}

TEST_P(LabsTransferTest, TransfersToNearbySizes) {
  // The same angles must still beat uniform at n = 10 and n = 14 -- the
  // transfer property the paper's Ref. [6] exploits at scale.
  const int p = GetParam();
  const QaoaParams params = labs_transferred_params(p);
  for (int n : {10, 14}) {
    const TermList terms = labs_terms(n);
    const FurQaoaSimulator sim(terms, {});
    const double e =
        sim.get_expectation(sim.simulate_qaoa(params.gammas, params.betas));
    EXPECT_LT(e, terms.offset()) << "p=" << p << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(Depths, LabsTransferTest,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(LabsParams, EnergyImprovesMonotonicallyWithDepth) {
  const TermList terms = labs_terms(12);
  const FurQaoaSimulator sim(terms, {});
  double prev = terms.offset();
  for (int p = 1; p <= labs_transferred_max_p(); ++p) {
    const QaoaParams params = labs_transferred_params(p);
    const double e =
        sim.get_expectation(sim.simulate_qaoa(params.gammas, params.betas));
    EXPECT_LT(e, prev) << "p=" << p;
    prev = e;
  }
}

TEST(LabsParams, DeepScheduleAmplifiesGroundState) {
  // The p = 5 shipped schedule must concentrate well above uniform on the
  // optimal sequences at the tuned size.
  const TermList terms = labs_terms(12);
  const FurQaoaSimulator sim(terms, {});
  const QaoaParams params = labs_transferred_params(5);
  const StateVector r = sim.simulate_qaoa(params.gammas, params.betas);
  const CostDiagonal& d = sim.get_cost_diagonal();
  const double uniform =
      static_cast<double>(d.ground_state_count()) / d.size();
  EXPECT_GT(sim.get_overlap(r), 2.0 * uniform);
}

}  // namespace
}  // namespace qokit
