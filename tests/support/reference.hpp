// Dense, gather-based reference implementations used to validate every
// simulator backend. Deliberately written in a different style from the
// production kernels (out-of-place, index-gather, no bit-pair tricks) so a
// shared bug is unlikely.
#pragma once

#include <array>
#include <cmath>
#include <complex>
#include <cstdint>
#include <vector>

#include "common/bitops.hpp"
#include "statevector/state.hpp"
#include "terms/term.hpp"

namespace qokit::testing {

using Vec = std::vector<cdouble>;

inline Vec to_vec(const StateVector& sv) {
  return Vec(sv.data(), sv.data() + sv.size());
}

inline StateVector to_state(int n, const Vec& v) {
  StateVector sv(n);
  for (std::uint64_t i = 0; i < sv.size(); ++i) sv[i] = v[i];
  return sv;
}

inline double max_diff(const Vec& a, const Vec& b) {
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::abs(a[i] - b[i]));
  return m;
}

/// Out-of-place 1-qubit gate: row-major 2x2 m, y = (I x..x m x..x I) x.
inline Vec ref_apply_1q(const Vec& v, int q, const std::array<cdouble, 4>& m) {
  Vec out(v.size());
  for (std::uint64_t x = 0; x < v.size(); ++x) {
    const int b = test_bit(x, q) ? 1 : 0;
    const std::uint64_t x0 = x & ~(1ull << q);
    const std::uint64_t x1 = x0 | (1ull << q);
    out[x] = m[b * 2 + 0] * v[x0] + m[b * 2 + 1] * v[x1];
  }
  return out;
}

/// Out-of-place 2-qubit gate; matrix basis index = b_q0 + 2*b_q1.
inline Vec ref_apply_2q(const Vec& v, int q0, int q1,
                        const std::array<cdouble, 16>& m) {
  Vec out(v.size());
  for (std::uint64_t x = 0; x < v.size(); ++x) {
    const int row = (test_bit(x, q0) ? 1 : 0) + (test_bit(x, q1) ? 2 : 0);
    const std::uint64_t base = x & ~((1ull << q0) | (1ull << q1));
    out[x] = cdouble(0.0);
    for (int col = 0; col < 4; ++col) {
      std::uint64_t src = base;
      if (col & 1) src |= 1ull << q0;
      if (col & 2) src |= 1ull << q1;
      out[x] += m[row * 4 + col] * v[src];
    }
  }
  return out;
}

inline std::array<cdouble, 4> ref_matrix_rx(double theta) {
  const double c = std::cos(theta / 2), s = std::sin(theta / 2);
  return {cdouble(c), cdouble(0, -s), cdouble(0, -s), cdouble(c)};
}

inline std::array<cdouble, 4> ref_matrix_h() {
  const double r = 1.0 / std::sqrt(2.0);
  return {cdouble(r), cdouble(r), cdouble(r), cdouble(-r)};
}

/// Dense 4x4 of e^{-i beta (XX+YY)/2} (basis 00,01,10,11).
inline std::array<cdouble, 16> ref_matrix_xy(double beta) {
  const double c = std::cos(beta), s = std::sin(beta);
  std::array<cdouble, 16> m{};
  m[0] = cdouble(1.0);
  m[15] = cdouble(1.0);
  m[5] = cdouble(c);
  m[6] = cdouble(0, -s);
  m[9] = cdouble(0, -s);
  m[10] = cdouble(c);
  return m;
}

/// Phase operator from raw terms: amp_x *= e^{-i gamma f(x)}.
inline Vec ref_apply_phase(const Vec& v, const TermList& terms, double gamma) {
  Vec out(v.size());
  for (std::uint64_t x = 0; x < v.size(); ++x) {
    const double ang = -gamma * terms.evaluate(x);
    out[x] = v[x] * cdouble(std::cos(ang), std::sin(ang));
  }
  return out;
}

/// Transverse-field mixer: RX(2 beta) on every qubit (factors commute).
inline Vec ref_apply_mixer_x(Vec v, int n, double beta) {
  const auto m = ref_matrix_rx(2.0 * beta);
  for (int q = 0; q < n; ++q) v = ref_apply_1q(v, q, m);
  return v;
}

/// Ring-XY mixer in the library's edge order.
inline Vec ref_apply_mixer_xy_ring(Vec v, int n, double beta) {
  const auto m = ref_matrix_xy(beta);
  for (int i = 0; i < n; ++i) v = ref_apply_2q(v, i, (i + 1) % n, m);
  return v;
}

/// Complete-graph XY mixer in the library's edge order.
inline Vec ref_apply_mixer_xy_complete(Vec v, int n, double beta) {
  const auto m = ref_matrix_xy(beta);
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j) v = ref_apply_2q(v, i, j, m);
  return v;
}

/// Full reference QAOA evolution from |+>^n with the X mixer.
inline Vec ref_qaoa_x(const TermList& terms, const std::vector<double>& gammas,
                      const std::vector<double>& betas) {
  const int n = terms.num_qubits();
  Vec v(dim_of(n), cdouble(1.0 / std::sqrt(double(dim_of(n))), 0.0));
  for (std::size_t l = 0; l < gammas.size(); ++l) {
    v = ref_apply_phase(v, terms, gammas[l]);
    v = ref_apply_mixer_x(std::move(v), n, betas[l]);
  }
  return v;
}

/// Reference expectation sum_x |v_x|^2 f(x).
inline double ref_expectation(const Vec& v, const TermList& terms) {
  double acc = 0.0;
  for (std::uint64_t x = 0; x < v.size(); ++x)
    acc += std::norm(v[x]) * terms.evaluate(x);
  return acc;
}

}  // namespace qokit::testing
