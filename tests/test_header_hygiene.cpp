// Header hygiene: the umbrella header must be the first include of a
// translation unit and still compile cleanly -- this file is built with
// -Werror on top of the project's -Wall -Wextra regardless of the
// QOKIT_WERROR option (see CMakeLists.txt), so a missing transitive
// include or a warning introduced in any public header fails the build
// here even when the rest of the tree tolerates warnings.
//
// This file covers the umbrella plus a runtime touch of each layer; the
// same self-containedness contract for EVERY header in src/*/ is
// enforced by the generated `header_hygiene` object library (one
// one-line -Werror TU per header, see CMakeLists.txt), which fails the
// default build rather than this test binary.
#include "api/qokit.hpp"  // must stay the first include

#include <gtest/gtest.h>

namespace qokit {
namespace {

TEST(HeaderHygiene, UmbrellaHeaderIsSelfContainedUnderWerror) {
  // The assertion is the compile itself; touch a few declarations from
  // each layer the umbrella re-exports so they cannot be dropped from it.
  const SimulatorSpec spec = SimulatorSpec::parse("auto");
  EXPECT_EQ(spec.backend, Backend::Auto);
  const TermList terms = labs_terms(4);
  const api::ProblemSession session(terms, spec);
  EXPECT_EQ(session.num_qubits(), 4);
  EXPECT_TRUE(session.evaluate(linear_ramp(1)).expectation.has_value());
}

}  // namespace
}  // namespace qokit
