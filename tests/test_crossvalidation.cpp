// Randomized cross-validation: every backend must agree with every other
// on random problems and random schedules. These are the repository's
// belt-and-braces property tests; each seed exercises a different problem
// family, schedule, and size.
#include <gtest/gtest.h>

#include "api/qokit.hpp"

namespace qokit {
namespace {

/// Deterministic random problem for a seed: cycles through families.
TermList random_problem(std::uint64_t seed, int* n_out) {
  Rng rng(seed * 7919);
  const int n = 6 + static_cast<int>(rng.uniform_int(5));  // 6..10
  *n_out = n;
  switch (seed % 4) {
    case 0:
      return maxcut_terms(Graph::random_regular(n - (n % 2), 3, seed));
    case 1:
      return labs_terms(n);
    case 2:
      return sat_terms(random_ksat(n, 3, 3 * n, seed));
    default:
      return sk_terms(n, seed);
  }
}

std::pair<std::vector<double>, std::vector<double>> random_schedule(
    std::uint64_t seed, int p) {
  Rng rng(seed * 104729);
  std::vector<double> g(p), b(p);
  for (int l = 0; l < p; ++l) {
    g[l] = rng.uniform(-0.6, 0.6);
    b[l] = rng.uniform(-0.9, 0.9);
  }
  return {g, b};
}

class BackendAgreementTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(BackendAgreementTest, AllBackendsProduceTheSameState) {
  const std::uint64_t seed = GetParam();
  int n = 0;
  const TermList terms = random_problem(seed, &n);
  if (terms.num_qubits() < 2) GTEST_SKIP();
  const auto [g, b] = random_schedule(seed, 1 + static_cast<int>(seed % 3));

  const FurQaoaSimulator reference(terms, {.exec = Exec::Serial});
  const StateVector ref = reference.simulate_qaoa(g, b);

  // Threaded fused-kernel backend.
  const FurQaoaSimulator threaded(terms, {});
  EXPECT_LT(threaded.simulate_qaoa(g, b).max_abs_diff(ref), 1e-10) << seed;

  // FWHT mixer backend.
  const FurQaoaSimulator fwht_sim(terms, {.backend = MixerBackend::Fwht});
  EXPECT_LT(fwht_sim.simulate_qaoa(g, b).max_abs_diff(ref), 1e-10) << seed;

  // Gate-based baseline, both phase decompositions.
  for (const auto style : {PhaseStyle::CxLadder, PhaseStyle::MultiZ}) {
    const GateQaoaSimulator gates(terms, {.phase_style = style});
    EXPECT_LT(gates.simulate_qaoa(g, b).max_abs_diff(ref), 1e-9)
        << seed << " style " << static_cast<int>(style);
  }

  // Distributed over 2 and 4 virtual ranks.
  for (const int k : {2, 4}) {
    if (2 * k > (1 << 30)) continue;
    const DistributedFurSimulator dist_sim(terms, {.ranks = k});
    EXPECT_LT(dist_sim.simulate_qaoa(g, b).max_abs_diff(ref), 1e-10)
        << seed << " K=" << k;
  }

  // Expectations agree between the diagonal and the raw-terms path.
  EXPECT_NEAR(reference.get_expectation(ref), expectation_terms(ref, terms),
              1e-9)
      << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, BackendAgreementTest,
                         ::testing::Range<std::uint64_t>(1, 13));

class SymmetricAgreementTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SymmetricAgreementTest, HalfSpaceAgreesOnSymmetricProblems) {
  const std::uint64_t seed = GetParam();
  Rng rng(seed);
  const int n = 6 + static_cast<int>(rng.uniform_int(4));
  const TermList terms = seed % 2 == 0
                             ? labs_terms(n)
                             : sk_terms(n, seed);
  const auto [g, b] = random_schedule(seed, 2);
  const FurQaoaSimulator full(terms, {.exec = Exec::Serial});
  const SymmetricFurSimulator half(terms, Exec::Serial);
  const StateVector f = full.simulate_qaoa(g, b);
  const StateVector h = half.simulate_qaoa(g, b);
  EXPECT_NEAR(full.get_expectation(f), half.get_expectation(h), 1e-9) << seed;
  EXPECT_NEAR(full.get_overlap(f), half.get_overlap(h), 1e-10) << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SymmetricAgreementTest,
                         ::testing::Range<std::uint64_t>(1, 9));

class AlltoallInvolutionTest
    : public ::testing::TestWithParam<AlltoallStrategy> {};

TEST_P(AlltoallInvolutionTest, TwoApplicationsRestoreTheData) {
  const AlltoallStrategy strategy = GetParam();
  const int k = 8;
  const std::uint64_t block = 32;
  VirtualRankWorld world(k, strategy);
  std::vector<std::vector<cdouble>> bufs(k);
  world.run([&](Communicator& comm) {
    Rng rng(1000 + comm.rank());
    auto& mine = bufs[comm.rank()];
    mine.resize(k * block);
    for (auto& v : mine) v = cdouble(rng.normal(), rng.normal());
    const auto original = mine;
    comm.alltoall(mine.data(), block);
    comm.alltoall(mine.data(), block);
    for (std::size_t i = 0; i < mine.size(); ++i)
      if (mine[i] != original[i]) ADD_FAILURE() << "rank " << comm.rank();
  });
}

INSTANTIATE_TEST_SUITE_P(Strategies, AlltoallInvolutionTest,
                         ::testing::Values(AlltoallStrategy::Staged,
                                           AlltoallStrategy::Pairwise,
                                           AlltoallStrategy::Direct));

class SessionLegacyAgreementTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SessionLegacyAgreementTest, SessionApiIsBitIdenticalToFreeFunctions) {
  // The session API must not merely approximate the legacy surface: for
  // every backend spelling, evaluating through a ProblemSession (cached
  // diagonal, reused scratch) and through the legacy factories (fresh
  // simulator per call) must produce the same bits.
  const std::uint64_t seed = GetParam();
  int n = 0;
  const TermList terms = random_problem(seed, &n);
  if (terms.num_qubits() < 4) GTEST_SKIP();
  const auto [g, b] = random_schedule(seed, 1 + static_cast<int>(seed % 3));
  QaoaParams params;
  params.gammas = g;
  params.betas = b;
  const std::vector<QaoaParams> batch{params, params};

  for (const char* name :
       {"serial", "threaded", "u16", "fwht", "dist:2", "gatesim"}) {
    SCOPED_TRACE(name);
    const api::ProblemSession session(terms, SimulatorSpec::parse(name));
    const auto legacy = choose_simulator(terms, name);
    const StateVector ref = legacy->simulate_qaoa(g, b);

    api::EvalRequest request;
    request.overlap = true;
    const api::EvalResult r = session.evaluate(params, request);
    EXPECT_EQ(*r.expectation, legacy->get_expectation(ref));
    EXPECT_EQ(*r.overlap, legacy->get_overlap(ref));
    EXPECT_EQ(session.simulate(params).max_abs_diff(ref), 0.0);
    EXPECT_EQ(session.expectations(batch),
              api::qaoa_batch_expectation(terms, batch, name));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SessionLegacyAgreementTest,
                         ::testing::Range<std::uint64_t>(1, 9));

class PrecisionAgreementTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PrecisionAgreementTest, F32BackendsTrackTheirF64Twins) {
  // The mixed-precision matrix: every f32-capable backend spelling, run
  // at both precisions on the same random problem and schedule. The f32
  // run must stay within a pinned drift tolerance of its own f64 twin
  // (same backend, so the comparison isolates the amplitude width), the
  // double-accumulated objectives must agree to reduction scale, and the
  // f32 bits themselves must be Exec-independent. Explicit prec= tokens
  // keep the test meaningful under a QOKIT_PREC=f32 environment leg.
  const std::uint64_t seed = GetParam();
  int n = 0;
  const TermList terms = random_problem(seed, &n);
  if (terms.num_qubits() < 2) GTEST_SKIP();
  const auto [g, b] = random_schedule(seed, 1 + static_cast<int>(seed % 3));

  StateVector serial_f32;  // kept for the cross-backend bit-identity check
  for (const char* name : {"serial", "threaded", "u16", "fwht", "dist:2"}) {
    SCOPED_TRACE(name);
    const std::string base(name);
    const auto sim64 =
        make_simulator(terms, SimulatorSpec::parse(base + ":prec=f64"));
    const auto sim32 =
        make_simulator(terms, SimulatorSpec::parse(base + ":prec=f32"));
    ASSERT_EQ(sim64->precision(), Precision::F64);
    ASSERT_EQ(sim32->precision(), Precision::F32);
    const StateVector r64 = sim64->simulate_qaoa(g, b);
    const StateVector r32 = sim32->simulate_qaoa(g, b);
    EXPECT_EQ(r32.precision(), Precision::F32);
    EXPECT_LT(r32.max_abs_diff(r64), 1e-5) << seed;
    EXPECT_NEAR(sim32->get_expectation(r32), sim64->get_expectation(r64),
                1e-4)
        << seed;
    EXPECT_NEAR(sim32->get_overlap(r32), sim64->get_overlap(r64), 1e-5)
        << seed;
    if (base == "serial") {
      serial_f32 = r32;
    } else if (base == "threaded") {
      // Determinism contract at f32: Exec policy (serial vs threaded is
      // exactly that switch) never changes the bits.
      EXPECT_EQ(r32.max_abs_diff(serial_f32), 0.0) << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PrecisionAgreementTest,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(ProbabilitiesInPlace, MatchesAllocatingVariant) {
  const TermList terms = labs_terms(9);
  const FurQaoaSimulator sim(terms, {});
  const auto [g, b] = random_schedule(3, 2);
  StateVector sv = sim.simulate_qaoa(g, b);
  const auto probs = sv.probabilities();
  sv.probabilities_in_place();
  for (std::uint64_t x = 0; x < sv.size(); ++x) {
    EXPECT_NEAR(sv[x].real(), probs[x], 1e-14);
    EXPECT_DOUBLE_EQ(sv[x].imag(), 0.0);
  }
}

TEST(SamplerVsProbabilities, TotalVariationShrinksWithShots) {
  const TermList terms = maxcut_terms(Graph::random_regular(6, 3, 3));
  const FurQaoaSimulator sim(terms, {});
  const auto [g, b] = random_schedule(5, 2);
  const StateVector sv = sim.simulate_qaoa(g, b);
  const auto probs = sv.probabilities();

  Rng rng(17);
  const int shots = 60000;
  const auto counts = StateSampler(sv).sample_counts(shots, rng);
  double tv = 0.0;
  for (std::uint64_t x = 0; x < sv.size(); ++x) {
    const auto it = counts.find(x);
    const double freq =
        it == counts.end() ? 0.0 : static_cast<double>(it->second) / shots;
    tv += std::abs(freq - probs[x]);
  }
  tv /= 2.0;
  EXPECT_LT(tv, 0.02);  // 64 outcomes, 60k shots: TV ~ sqrt(64/shots)/2
}

TEST(XySectorInvariance, RandomSchedulesNeverLeakProbability) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    const PortfolioInstance inst = random_portfolio(7, 3, 0.5, seed);
    const FurQaoaSimulator sim(portfolio_terms(inst),
                               {.mixer = seed % 2 ? MixerType::XYRing
                                                  : MixerType::XYComplete,
                                .initial_weight = 3});
    const auto [g, b] = random_schedule(seed, 3);
    const StateVector r = sim.simulate_qaoa(g, b);
    EXPECT_NEAR(r.weight_sector_mass(3), 1.0, 1e-10) << seed;
    EXPECT_NEAR(r.norm_squared(), 1.0, 1e-10) << seed;
  }
}

}  // namespace
}  // namespace qokit
