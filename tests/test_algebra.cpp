// Algebraic property sweeps: linearity and composition laws that every
// layer of the stack must respect.
#include <gtest/gtest.h>

#include "api/qokit.hpp"
#include "fur/su2.hpp"
#include "support/reference.hpp"

namespace qokit {
namespace {

TEST(Algebra, TermListEvaluationIsLinearInWeights) {
  Rng rng(1);
  TermList a(6, {}), b(6, {}), sum(6, {});
  for (int k = 0; k < 10; ++k) {
    const double wa = rng.uniform(-1, 1), wb = rng.uniform(-1, 1);
    const std::uint64_t mask = rng.next_u64() & 63;
    if (mask == 0) continue;
    a.add_mask(wa, mask);
    b.add_mask(wb, mask);
    sum.add_mask(wa + wb, mask);
  }
  for (std::uint64_t x = 0; x < 64; ++x)
    EXPECT_NEAR(a.evaluate(x) + b.evaluate(x), sum.evaluate(x), 1e-12);
}

TEST(Algebra, CanonicalizeIsIdempotent) {
  TermList t(5, {});
  Rng rng(2);
  for (int k = 0; k < 30; ++k)
    t.add_mask(rng.uniform(-1, 1), rng.next_u64() & 31);
  t.canonicalize();
  const auto once = t.terms();
  t.canonicalize();
  EXPECT_EQ(t.terms(), once);
}

TEST(Algebra, CanonicalizePreservesEvaluation) {
  TermList t(5, {});
  Rng rng(3);
  for (int k = 0; k < 40; ++k)
    t.add_mask(rng.uniform(-1, 1), rng.next_u64() & 31);
  TermList canonical = t;
  canonical.canonicalize();
  for (std::uint64_t x = 0; x < 32; ++x)
    EXPECT_NEAR(t.evaluate(x), canonical.evaluate(x), 1e-12);
}

TEST(Algebra, DiagonalOfConcatenationIsSumOfDiagonals) {
  const TermList a = maxcut_terms(Graph::random_regular(8, 3, 1));
  const TermList b = sk_terms(8, 2);
  TermList both(8, {});
  for (const Term& t : a) both.add_mask(t.weight, t.mask);
  for (const Term& t : b) both.add_mask(t.weight, t.mask);
  const CostDiagonal da = CostDiagonal::precompute(a);
  const CostDiagonal db = CostDiagonal::precompute(b);
  const CostDiagonal dsum = CostDiagonal::precompute(both);
  for (std::uint64_t x = 0; x < dsum.size(); ++x)
    EXPECT_NEAR(dsum[x], da[x] + db[x], 1e-10);
}

TEST(Algebra, PhaseOperatorsComposeAdditively) {
  // e^{-i g1 C} e^{-i g2 C} = e^{-i (g1+g2) C}.
  const CostDiagonal d = CostDiagonal::precompute(labs_terms(8));
  StateVector a = StateVector::plus_state(8);
  StateVector b = StateVector::plus_state(8);
  apply_phase(a, d, 0.3);
  apply_phase(a, d, 0.45);
  apply_phase(b, d, 0.75);
  EXPECT_LT(a.max_abs_diff(b), 1e-12);
}

TEST(Algebra, MixersComposeAdditivelyInBeta) {
  // X-mixer factors commute across layers: U(b1) U(b2) = U(b1 + b2).
  StateVector a = StateVector::plus_state(7);
  apply_phase(a, CostDiagonal::precompute(labs_terms(7)), 0.2);  // non-trivial
  StateVector b = a;
  apply_mixer_x(a, 0.3);
  apply_mixer_x(a, 0.5);
  apply_mixer_x(b, 0.8);
  EXPECT_LT(a.max_abs_diff(b), 1e-12);
}

TEST(Algebra, Su2CompositionMatchesMatrixProduct) {
  // Applying U then V on one qubit equals applying VU.
  const Su2 u{cdouble(0.8, 0.1), cdouble(0.3, std::sqrt(1 - 0.64 - 0.01 - 0.09))};
  const Su2 v{cdouble(0.6, -0.2), cdouble(-0.5, std::sqrt(1 - 0.36 - 0.04 - 0.25))};
  // VU in SU(2) parameters: a = va*ua - conj(vb)*ub, b = vb*ua + conj(va)*ub.
  const Su2 vu{v.a * u.a - std::conj(v.b) * u.b,
               v.b * u.a + std::conj(v.a) * u.b};
  Rng rng(5);
  StateVector x(6);
  for (std::uint64_t i = 0; i < x.size(); ++i)
    x[i] = cdouble(rng.normal(), rng.normal());
  x.normalize();
  StateVector y = x;
  apply_su2(x, 3, u);
  apply_su2(x, 3, v);
  apply_su2(y, 3, vu);
  EXPECT_LT(x.max_abs_diff(y), 1e-12);
}

TEST(Algebra, FwhtPreservesInnerProducts) {
  // Parseval: <Fa|Fb> = <a|b>.
  Rng rng(6);
  StateVector a(8), b(8);
  for (std::uint64_t i = 0; i < a.size(); ++i) {
    a[i] = cdouble(rng.normal(), rng.normal());
    b[i] = cdouble(rng.normal(), rng.normal());
  }
  const cdouble before = a.inner(b);
  fwht(a);
  fwht(b);
  const cdouble after = a.inner(b);
  EXPECT_LT(std::abs(before - after), 1e-10);
}

TEST(Algebra, DickeStatesAreOrthogonalAcrossSectors) {
  for (int k1 = 0; k1 <= 5; ++k1)
    for (int k2 = k1 + 1; k2 <= 5; ++k2) {
      const StateVector a = StateVector::dicke_state(5, k1);
      const StateVector b = StateVector::dicke_state(5, k2);
      EXPECT_LT(std::abs(a.inner(b)), 1e-14) << k1 << "," << k2;
    }
}

TEST(Algebra, CircuitCountersMatchContent) {
  Circuit c(5);
  c.append(Gate::h(0));
  c.append(Gate::cx(0, 1));
  c.append(Gate::rz(2, 0.3));
  c.append(Gate::zphase(0b11100, 0.4));
  c.append(Gate::cz(3, 4));
  EXPECT_EQ(c.size(), 5u);
  EXPECT_EQ(c.two_plus_qubit_count(), 3u);  // cx, 3-qubit zphase, cz
  EXPECT_EQ(c.diagonal_count(), 3u);        // rz, zphase, cz
}

TEST(Algebra, GateExpectationInvariantUnderDiagonalPhase) {
  // <C> is unchanged by any extra diagonal phase layer (C commutes).
  const TermList terms = maxcut_terms(Graph::random_regular(8, 3, 9));
  const FurQaoaSimulator sim(terms, {});
  const std::vector<double> gs{0.4}, bs{-0.5};
  StateVector r = sim.simulate_qaoa(gs, bs);
  const double before = sim.get_expectation(r);
  apply_phase(r, sim.get_cost_diagonal(), 1.234);
  EXPECT_NEAR(sim.get_expectation(r), before, 1e-10);
}

}  // namespace
}  // namespace qokit
