#include "problems/labs.hpp"

#include <gtest/gtest.h>

#include "common/bitops.hpp"
#include "common/rng.hpp"

namespace qokit {
namespace {

TEST(Labs, AutocorrelationManual) {
  // n = 4, x = 0b0000 -> all spins +1: C_k = n - k.
  EXPECT_EQ(labs_autocorrelation(0, 4, 1), 3);
  EXPECT_EQ(labs_autocorrelation(0, 4, 2), 2);
  EXPECT_EQ(labs_autocorrelation(0, 4, 3), 1);
  // Alternating spins + - + -  (bits 0b1010): C_1 = -3, C_2 = 2, C_3 = -1.
  EXPECT_EQ(labs_autocorrelation(0b1010, 4, 1), -3);
  EXPECT_EQ(labs_autocorrelation(0b1010, 4, 2), 2);
  EXPECT_EQ(labs_autocorrelation(0b1010, 4, 3), -1);
}

TEST(Labs, EnergyIsSumOfSquaredAutocorrelations) {
  Rng rng(5);
  for (int n : {3, 5, 8, 12}) {
    for (int trial = 0; trial < 20; ++trial) {
      const std::uint64_t x = rng.next_u64() & (dim_of(n) - 1);
      double e = 0.0;
      for (int k = 1; k < n; ++k) {
        const double c = labs_autocorrelation(x, n, k);
        e += c * c;
      }
      EXPECT_DOUBLE_EQ(labs_energy(x, n), e);
    }
  }
}

class LabsTermsTest : public ::testing::TestWithParam<int> {};

TEST_P(LabsTermsTest, TermsReproduceEnergyExactly) {
  const int n = GetParam();
  const TermList t = labs_terms(n);
  Rng rng(n);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint64_t x = rng.next_u64() & (dim_of(n) - 1);
    EXPECT_NEAR(t.evaluate(x), labs_energy(x, n), 1e-9) << "x=" << x;
  }
}

TEST_P(LabsTermsTest, OffsetIsHalfNSquaredMinusN) {
  const int n = GetParam();
  EXPECT_DOUBLE_EQ(labs_terms(n).offset(), n * (n - 1) / 2.0);
}

TEST_P(LabsTermsTest, MaxOrderIsFourForLargeEnoughN) {
  const int n = GetParam();
  const int order = labs_terms(n).max_order();
  if (n >= 4)
    EXPECT_EQ(order, 4);
  else
    EXPECT_LE(order, 2);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LabsTermsTest,
                         ::testing::Values(2, 3, 4, 5, 6, 8, 10, 13, 16));

TEST(Labs, NoOffsetVariantDiffersByConstant) {
  const int n = 9;
  const TermList a = labs_terms(n);
  const TermList b = labs_terms_no_offset(n);
  for (std::uint64_t x = 0; x < 64; ++x)
    EXPECT_NEAR(a.evaluate(x) - b.evaluate(x), n * (n - 1) / 2.0, 1e-9);
}

TEST(Labs, KnownOptimaMatchBruteForceUpTo14) {
  for (int n = 3; n <= 14; ++n)
    EXPECT_EQ(labs_brute_force(n), labs_known_optimum(n)) << "n=" << n;
}

TEST(Labs, KnownOptimumOutsideTable) {
  EXPECT_EQ(labs_known_optimum(0), -1);
  EXPECT_EQ(labs_known_optimum(41), -1);
  EXPECT_GT(labs_known_optimum(40), 0);
}

TEST(Labs, BarkerSequencesAchieveKnownOptimum) {
  // Barker-13: + + + + + - - + + - + - +  has E = 6 (merit factor ~14.08).
  // Bit = 1 encodes spin -1.
  std::uint64_t x = 0;
  const int spins[13] = {1, 1, 1, 1, 1, -1, -1, 1, 1, -1, 1, -1, 1};
  for (int i = 0; i < 13; ++i)
    if (spins[i] < 0) x |= 1ull << i;
  EXPECT_EQ(static_cast<int>(labs_energy(x, 13)), 6);
  EXPECT_EQ(labs_known_optimum(13), 6);
  EXPECT_NEAR(labs_merit_factor(x, 13), 14.08, 0.01);
}

TEST(Labs, EnergyInvariantUnderGlobalSpinFlip) {
  const int n = 10;
  Rng rng(3);
  for (int trial = 0; trial < 20; ++trial) {
    const std::uint64_t x = rng.next_u64() & (dim_of(n) - 1);
    EXPECT_DOUBLE_EQ(labs_energy(x, n), labs_energy(~x & (dim_of(n) - 1), n));
  }
}

TEST(Labs, EnergyInvariantUnderReversal) {
  const int n = 9;
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    const std::uint64_t x = rng.next_u64() & (dim_of(n) - 1);
    std::uint64_t rev = 0;
    for (int i = 0; i < n; ++i)
      if (test_bit(x, i)) rev |= 1ull << (n - 1 - i);
    EXPECT_DOUBLE_EQ(labs_energy(x, n), labs_energy(rev, n));
  }
}

TEST(Labs, TermCountGrowthIsCubicBeforeDegeneracy) {
  // Sum_k C(n-k, 2) = C(n, 3) raw products; mask merging trims the count
  // but the asymptotic stays ~n^3/6 (the paper's "~75n at n = 31" counts
  // its particular grouped form; our canonical monomial count is larger).
  const auto c16 = labs_terms_no_offset(16).size();
  const auto c32 = labs_terms_no_offset(32).size();
  EXPECT_GT(c32, 6 * c16);
  EXPECT_LT(c32, 10 * c16);
}

}  // namespace
}  // namespace qokit
