#include "dist/dist_fur.hpp"

#include <gtest/gtest.h>

#include <atomic>

#include "common/bitops.hpp"
#include "common/rng.hpp"
#include "fur/mixers.hpp"
#include "problems/labs.hpp"
#include "problems/maxcut.hpp"

namespace qokit {
namespace {

TEST(VirtualRankWorld, RunsEveryRankExactlyOnce) {
  VirtualRankWorld world(8, AlltoallStrategy::Pairwise);
  std::vector<std::atomic<int>> hits(8);
  world.run([&](Communicator& comm) {
    EXPECT_EQ(comm.size(), 8);
    hits[comm.rank()]++;
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(VirtualRankWorld, RejectsNonPowerOfTwo) {
  EXPECT_THROW(VirtualRankWorld(3, AlltoallStrategy::Staged),
               std::invalid_argument);
  EXPECT_THROW(VirtualRankWorld(0, AlltoallStrategy::Staged),
               std::invalid_argument);
}

TEST(VirtualRankWorld, PropagatesExceptions) {
  VirtualRankWorld world(1, AlltoallStrategy::Staged);
  EXPECT_THROW(
      world.run([](Communicator&) { throw std::runtime_error("boom"); }),
      std::runtime_error);
}

TEST(VirtualRankWorld, AllreduceSumsAcrossRanks) {
  VirtualRankWorld world(4, AlltoallStrategy::Pairwise);
  world.run([&](Communicator& comm) {
    const double total = comm.allreduce_sum(comm.rank() + 1.0);
    EXPECT_DOUBLE_EQ(total, 1.0 + 2.0 + 3.0 + 4.0);
    // Reusable immediately afterwards.
    const double again = comm.allreduce_sum(1.0);
    EXPECT_DOUBLE_EQ(again, 4.0);
  });
}

class AlltoallTest : public ::testing::TestWithParam<
                         std::tuple<int, int, AlltoallStrategy>> {};

TEST_P(AlltoallTest, RealizesBlockTranspose) {
  const auto [k, block, strategy] = GetParam();
  VirtualRankWorld world(k, strategy);
  // Rank r block b element e tagged r*10000 + b*100 + e; after alltoall
  // rank r's block b must hold what rank b sent in block r.
  std::vector<std::vector<cdouble>> bufs(k);
  world.run([&](Communicator& comm) {
    auto& mine = bufs[comm.rank()];
    mine.resize(static_cast<std::size_t>(k) * block);
    for (int b = 0; b < k; ++b)
      for (int e = 0; e < block; ++e)
        mine[b * block + e] =
            cdouble(comm.rank() * 10000.0 + b * 100.0 + e, 0.0);
    comm.alltoall(mine.data(), block);
  });
  for (int r = 0; r < k; ++r)
    for (int b = 0; b < k; ++b)
      for (int e = 0; e < block; ++e)
        EXPECT_EQ(bufs[r][b * block + e].real(), b * 10000.0 + r * 100.0 + e)
            << "rank " << r << " block " << b;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AlltoallTest,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(1, 3, 16),
                       ::testing::Values(AlltoallStrategy::Staged,
                                         AlltoallStrategy::Pairwise,
                                         AlltoallStrategy::Direct)));

class DistMixerTest : public ::testing::TestWithParam<
                          std::tuple<int, AlltoallStrategy>> {};

TEST_P(DistMixerTest, DistributedMixerEqualsSingleNode) {
  const auto [k, strategy] = GetParam();
  const int n = 8;
  const double beta = 0.67;
  Rng rng(7);
  StateVector expected(n);
  for (std::uint64_t x = 0; x < expected.size(); ++x)
    expected[x] = cdouble(rng.normal(), rng.normal());
  expected.normalize();
  StateVector distributed = expected;

  apply_mixer_x(expected, beta, Exec::Serial);

  VirtualRankWorld world(k, strategy);
  const std::uint64_t chunk = distributed.size() / k;
  cdouble* data = distributed.data();
  world.run([&](Communicator& comm) {
    dist::apply_mixer_x(comm, data + comm.rank() * chunk, chunk, n, beta);
  });
  EXPECT_LT(distributed.max_abs_diff(expected), 1e-12)
      << "K=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    RanksAndStrategies, DistMixerTest,
    ::testing::Combine(::testing::Values(1, 2, 4, 8, 16),
                       ::testing::Values(AlltoallStrategy::Staged,
                                         AlltoallStrategy::Pairwise,
                                         AlltoallStrategy::Direct)));

class DistSimulatorTest : public ::testing::TestWithParam<
                              std::tuple<int, AlltoallStrategy>> {};

TEST_P(DistSimulatorTest, MatchesSingleNodeSimulator) {
  const auto [k, strategy] = GetParam();
  const TermList terms = labs_terms(9);
  const std::vector<double> gs{0.3, -0.2}, bs{0.8, 0.4};

  const FurQaoaSimulator single(terms, {.exec = Exec::Serial});
  const DistributedFurSimulator multi(terms, {.ranks = k, .strategy = strategy});
  const StateVector a = single.simulate_qaoa(gs, bs);
  const StateVector b = multi.simulate_qaoa(gs, bs);
  EXPECT_LT(a.max_abs_diff(b), 1e-11);
  EXPECT_NEAR(single.get_expectation(a), multi.get_expectation(b), 1e-9);
}

TEST_P(DistSimulatorTest, NoGatherExpectationAgrees) {
  const auto [k, strategy] = GetParam();
  const TermList terms = maxcut_terms(Graph::random_regular(8, 3, 3));
  const std::vector<double> gs{0.5}, bs{0.9};
  const DistributedFurSimulator sim(terms, {.ranks = k, .strategy = strategy});
  const double direct = sim.simulate_and_expectation(gs, bs);
  const double via_gather = sim.get_expectation(sim.simulate_qaoa(gs, bs));
  EXPECT_NEAR(direct, via_gather, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    RanksAndStrategies, DistSimulatorTest,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(AlltoallStrategy::Staged,
                                         AlltoallStrategy::Pairwise,
                                         AlltoallStrategy::Direct)));

TEST(DistSimulator, PrecomputedDiagonalMatchesSingleNode) {
  const TermList terms = labs_terms(8);
  const DistributedFurSimulator sim(terms, {.ranks = 4});
  const CostDiagonal ref = CostDiagonal::precompute(terms);
  for (std::uint64_t x = 0; x < ref.size(); ++x)
    EXPECT_NEAR(sim.get_cost_diagonal()[x], ref[x], 1e-12);
}

TEST(DistSimulator, RejectsTooManyRanks) {
  // 2 * log2(K) <= n: K = 16 needs n >= 8.
  EXPECT_THROW(
      DistributedFurSimulator(labs_terms(7), {.ranks = 16}),
      std::invalid_argument);
  EXPECT_NO_THROW(DistributedFurSimulator(labs_terms(8), {.ranks = 16}));
}

TEST(DistSimulator, RejectsNonPowerOfTwoRanks) {
  EXPECT_THROW(DistributedFurSimulator(labs_terms(8), {.ranks = 5}),
               std::invalid_argument);
}

TEST(DistSimulator, OverlapMatchesSingleNode) {
  const TermList terms = labs_terms(8);
  const std::vector<double> gs{0.4}, bs{0.6};
  const FurQaoaSimulator single(terms, {});
  const DistributedFurSimulator multi(terms, {.ranks = 4});
  EXPECT_NEAR(single.get_overlap(single.simulate_qaoa(gs, bs)),
              multi.get_overlap(multi.simulate_qaoa(gs, bs)), 1e-10);
}

}  // namespace
}  // namespace qokit
