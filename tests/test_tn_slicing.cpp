// Index-sliced tensor-network contraction.
#include <gtest/gtest.h>

#include "fur/simulator.hpp"
#include "gatesim/compile.hpp"
#include "gatesim/execute.hpp"
#include "problems/labs.hpp"
#include "problems/maxcut.hpp"
#include "statevector/sampling.hpp"
#include "tn/contract.hpp"

namespace qokit {
namespace {

class SlicedAmplitudeTest : public ::testing::TestWithParam<int> {};

TEST_P(SlicedAmplitudeTest, SlicedEqualsUnslicedOnQaoaCircuit) {
  const int num_sliced = GetParam();
  const TermList terms = maxcut_terms(Graph::random_regular(6, 3, 5));
  const std::vector<double> gs{0.3, 0.15}, bs{-0.7, -0.4};
  const Circuit c = compile_qaoa_circuit(terms, gs, bs, MixerType::X,
                                         PhaseStyle::MultiZ, false);
  const cdouble exact = tn::amplitude(c, 42, /*plus_input=*/true);
  tn::ContractionStats stats;
  const cdouble sliced =
      tn::amplitude_sliced(c, 42, num_sliced, /*plus_input=*/true, &stats);
  EXPECT_LT(std::abs(exact - sliced), 1e-10) << num_sliced;
  EXPECT_EQ(stats.contractions > 0, true);
}

INSTANTIATE_TEST_SUITE_P(SliceCounts, SlicedAmplitudeTest,
                         ::testing::Values(0, 1, 2, 3, 4));

TEST(SlicedAmplitude, ReducesPeakIntermediateRank) {
  const TermList terms = labs_terms(6);
  const std::vector<double> gs{0.2, 0.2}, bs{-0.5, -0.3};
  const Circuit c = compile_qaoa_circuit(terms, gs, bs, MixerType::X,
                                         PhaseStyle::MultiZ, false);
  tn::ContractionStats full, sliced;
  tn::amplitude(c, 0, true, &full);
  tn::amplitude_sliced(c, 0, 3, true, &sliced);
  EXPECT_LE(sliced.max_rank, full.max_rank);
  // The price: more total contractions across the 8 slices.
  EXPECT_GT(sliced.contractions, full.contractions);
}

TEST(SlicedAmplitude, MatchesStatevectorGroundTruth) {
  const TermList terms = labs_terms(5);
  const std::vector<double> gs{0.25}, bs{-0.6};
  const Circuit c = compile_qaoa_circuit(terms, gs, bs, MixerType::X,
                                         PhaseStyle::MultiZ, false);
  StateVector sv = StateVector::plus_state(5);
  run_circuit(sv, c, Exec::Serial);
  for (std::uint64_t x : {0ull, 7ull, 21ull, 31ull})
    EXPECT_LT(std::abs(tn::amplitude_sliced(c, x, 2, true) - sv[x]), 1e-11)
        << x;
}

TEST(SlicedAmplitude, RejectsSillySliceCounts) {
  const Circuit c(3);
  EXPECT_THROW(tn::amplitude_sliced(c, 0, -1), std::invalid_argument);
  EXPECT_THROW(tn::amplitude_sliced(c, 0, 31), std::invalid_argument);
}

TEST(SampledEstimator, ConvergesToExactExpectation) {
  const TermList terms = maxcut_terms(Graph::random_regular(8, 3, 11));
  const FurQaoaSimulator sim(terms, {});
  const std::vector<double> gs{0.4}, bs{-0.5};
  const StateVector r = sim.simulate_qaoa(gs, bs);
  const double exact = sim.get_expectation(r);

  Rng rng(9);
  const auto est = estimate_expectation_sampled(
      r, [&terms](std::uint64_t x) { return terms.evaluate(x); }, 40000, rng);
  EXPECT_NEAR(est.mean, exact, 5.0 * est.std_error + 1e-9);
  EXPECT_GT(est.std_error, 0.0);
}

TEST(SampledEstimator, ErrorShrinksWithShots) {
  const TermList terms = labs_terms(8);
  const FurQaoaSimulator sim(terms, {});
  const std::vector<double> gs{0.1}, bs{-0.6};
  const StateVector r = sim.simulate_qaoa(gs, bs);
  Rng rng(11);
  const auto coarse = estimate_expectation_sampled(
      r, [&terms](std::uint64_t x) { return terms.evaluate(x); }, 500, rng);
  const auto fine = estimate_expectation_sampled(
      r, [&terms](std::uint64_t x) { return terms.evaluate(x); }, 50000, rng);
  EXPECT_LT(fine.std_error, coarse.std_error);
}

TEST(SampledEstimator, ZeroVarianceOnBasisState) {
  const TermList terms = labs_terms(6);
  const StateVector sv = StateVector::basis_state(6, 13);
  Rng rng(3);
  const auto est = estimate_expectation_sampled(
      sv, [&terms](std::uint64_t x) { return terms.evaluate(x); }, 100, rng);
  EXPECT_DOUBLE_EQ(est.mean, terms.evaluate(13));
  EXPECT_DOUBLE_EQ(est.std_error, 0.0);
}

}  // namespace
}  // namespace qokit
