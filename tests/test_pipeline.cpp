// The cache-blocked fused layer pipeline (src/pipeline/) must be
// *bit-identical* -- not merely close -- to the unfused per-qubit layer
// loop it replaces, across every backend (serial / threaded / u16 / fwht /
// dist:2 / dist:4:pairwise), both Exec policies, and both SIMD kernel
// families; fusion reorders the memory traversal, never the per-amplitude
// arithmetic. Also pins the plan's pass-count math, the tile-boundary edge
// cases (n < t, n == t, odd high-qubit remainders), and the unfused
// fallback (with diagnostic) for the xy mixers.
#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

#include "api/qokit.hpp"
#include "common/cpu_features.hpp"
#include "pipeline/layer_exec.hpp"

namespace qokit {
namespace {

/// Restore the detected dispatch level when a test that forces levels
/// exits (same guard idiom as test_simd_kernels.cpp).
struct SimdLevelGuard {
  SimdLevel entry = active_simd_level();
  ~SimdLevelGuard() { force_simd_level(entry); }
};

/// Deterministic random problem per seed, cycling families (the
/// cross-validation idiom).
TermList random_problem(std::uint64_t seed, int* n_out) {
  Rng rng(seed * 7919);
  const int n = 8 + static_cast<int>(rng.uniform_int(4));  // 8..11
  *n_out = n;
  switch (seed % 3) {
    case 0:
      return maxcut_terms(Graph::random_regular(n - (n % 2), 3, seed));
    case 1:
      return labs_terms(n);
    default:
      return sk_terms(n, seed);
  }
}

/// A fixed 3-layer schedule exercising positive/negative angles.
QaoaParams test_schedule() {
  QaoaParams s;
  s.gammas = {0.31, -0.47, 0.83};
  s.betas = {0.78, 0.15, -0.52};
  return s;
}

/// Fused (spec as given) vs unfused (same spec, pipeline=off) evolution,
/// expectation, and overlap must agree bitwise.
void expect_fused_matches_oracle(const TermList& terms,
                                 const std::string& name) {
  const SimulatorSpec spec = SimulatorSpec::parse(name);
  SimulatorSpec oracle_spec = spec;
  oracle_spec.pipeline = pipeline::PipelineMode::Off;
  const auto fused = make_simulator(terms, spec);
  const auto oracle = make_simulator(terms, oracle_spec);
  const QaoaParams sched = test_schedule();
  const StateVector a = fused->simulate_qaoa(sched.gammas, sched.betas);
  const StateVector b = oracle->simulate_qaoa(sched.gammas, sched.betas);
  EXPECT_EQ(a.max_abs_diff(b), 0.0) << name;
  EXPECT_EQ(fused->get_expectation(a), oracle->get_expectation(b)) << name;
  EXPECT_EQ(fused->get_overlap(a), oracle->get_overlap(b)) << name;
}

class PipelineCrossValidationTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PipelineCrossValidationTest, FusedEqualsUnfusedOnEveryBackend) {
  const std::uint64_t seed = GetParam();
  int n = 0;
  const TermList terms = random_problem(seed, &n);
  SimdLevelGuard guard;
  for (const SimdLevel level : {SimdLevel::Scalar, detect_simd_level()}) {
    force_simd_level(level);
    for (const char* name :
         {"serial", "threaded", "auto:exec=serial", "u16", "fwht",
          "fwht:exec=serial", "u16:exec=serial", "dist:2",
          "dist:4:pairwise"})
      expect_fused_matches_oracle(terms, name);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PipelineCrossValidationTest,
                         ::testing::Range<std::uint64_t>(1, 7));

// ------------------------------------------------------------ edge cases

/// Build fused/unfused FurQaoaSimulator pairs with custom tiling and
/// assert bitwise identity of the evolved state.
void expect_tiling_identical(int n, int tile_log2, int group_qubits,
                             int chunk_log2, bool use_u16,
                             MixerBackend backend, Exec exec) {
  const TermList terms = sk_terms(n, 11);
  FurConfig fused;
  fused.exec = exec;
  fused.use_u16 = use_u16;
  fused.backend = backend;
  fused.pipeline = {.mode = pipeline::PipelineMode::On,
                    .geometry = {tile_log2, group_qubits, chunk_log2}};
  FurConfig oracle = fused;
  oracle.pipeline.mode = pipeline::PipelineMode::Off;
  const FurQaoaSimulator a(terms, fused);
  const FurQaoaSimulator b(terms, oracle);
  ASSERT_TRUE(a.layer_plan().active());
  ASSERT_FALSE(b.layer_plan().active());
  const QaoaParams sched = test_schedule();
  EXPECT_EQ(a.simulate_qaoa(sched.gammas, sched.betas)
                .max_abs_diff(b.simulate_qaoa(sched.gammas, sched.betas)),
            0.0)
      << "n=" << n << " t=" << tile_log2 << " g=" << group_qubits
      << " c=" << chunk_log2 << " u16=" << use_u16
      << " fwht=" << (backend == MixerBackend::Fwht);
}

TEST(PipelineTiling, TileBoundaryEdgeCases) {
  SimdLevelGuard guard;
  for (const SimdLevel level : {SimdLevel::Scalar, detect_simd_level()}) {
    force_simd_level(level);
    for (const Exec exec : {Exec::Serial, Exec::Parallel}) {
      expect_tiling_identical(3, 4, 2, 2, false, MixerBackend::Fused,
                              exec);  // n < t: single tile
      expect_tiling_identical(4, 4, 2, 2, false, MixerBackend::Fused,
                              exec);  // n == t
      expect_tiling_identical(9, 4, 2, 2, false, MixerBackend::Fused,
                              exec);  // odd remainder: groups {2,2,1}
      expect_tiling_identical(9, 4, 3, 2, false, MixerBackend::Fused,
                              exec);  // remainder group of 2
      expect_tiling_identical(2, 4, 2, 2, false, MixerBackend::Fused,
                              exec);  // smaller than any tile
      expect_tiling_identical(9, 4, 2, 2, true, MixerBackend::Fused,
                              exec);  // u16 table phase, tiled
      expect_tiling_identical(9, 4, 2, 2, false, MixerBackend::Fwht,
                              exec);  // two-transform route, tiled
      expect_tiling_identical(10, 5, 2, 4, true, MixerBackend::Fwht,
                              exec);  // chunk == row stride
    }
  }
}

TEST(PipelineTiling, OutOfRangeOptionsAreClampedToARunnablePlan) {
  // Degenerate knobs must not break identity (clamps: tile >= 2^2,
  // chunk in [2^2, 2^q_begin], group >= 1).
  expect_tiling_identical(8, 0, 0, 0, false, MixerBackend::Fused,
                          Exec::Serial);
  expect_tiling_identical(8, 30, 64, 25, false, MixerBackend::Fused,
                          Exec::Serial);
}

// ---------------------------------------------------------- plan shapes

TEST(LayerPlan, PassCountMathMatchesTheTilingFormula) {
  // mode = On so the math holds even under a QOKIT_PIPELINE=off run (the
  // CI oracle leg); t = 16, g = 6 defaults otherwise.
  pipeline::PipelineOptions opts;
  opts.mode = pipeline::PipelineMode::On;
  for (const int n : {16, 20, 22, 24, 30}) {
    const auto plan = pipeline::LayerPlan::build(
        n, MixerType::X, MixerBackend::Fused, opts);
    ASSERT_TRUE(plan.active());
    const int t = opts.geometry.tile_log2;
    const int g = opts.geometry.group_qubits;
    const int expected =
        1 + (n > t ? (n - t + g - 1) / g : 0);  // 1 + ceil((n - t)/g)
    EXPECT_EQ(plan.full_sweeps(), expected) << "n=" << n;
    // The acceptance bound: no worse than ceil(n/t) + 1 full sweeps at
    // the benchmarked sizes (the unfused loop costs n + 1).
    if (n <= 24) {
      EXPECT_LE(plan.full_sweeps(), (n + t - 1) / t + 1) << "n=" << n;
    }
    EXPECT_LT(plan.full_sweeps(), n + 1) << "n=" << n;
  }
  // The fwht route plans two transforms: exactly twice the sweeps.
  const auto fwht_plan = pipeline::LayerPlan::build(
      24, MixerType::X, MixerBackend::Fwht, opts);
  const auto fused_plan = pipeline::LayerPlan::build(
      24, MixerType::X, MixerBackend::Fused, opts);
  EXPECT_EQ(fwht_plan.full_sweeps(), 2 * fused_plan.full_sweeps());
}

TEST(LayerPlan, FirstPassFusesThePhaseIntoTheMixerSweep) {
  const auto plan = pipeline::LayerPlan::build(
      24, MixerType::X, MixerBackend::Fused,
      {.mode = pipeline::PipelineMode::On});
  ASSERT_TRUE(plan.active());
  ASSERT_FALSE(plan.passes().empty());
  const pipeline::LayerPass& first = plan.passes().front();
  EXPECT_FALSE(first.strided);
  EXPECT_EQ(first.pre, pipeline::PassPhase::Diagonal);
  EXPECT_EQ(first.q_begin, 0);
  // No other pass re-applies the diagonal phase.
  for (std::size_t i = 1; i < plan.passes().size(); ++i)
    EXPECT_NE(plan.passes()[i].pre, pipeline::PassPhase::Diagonal) << i;
}

// ------------------------------------------------- fallbacks/diagnostics

TEST(PipelineFallback, XyMixersFallBackWithAPinnedDiagnostic) {
  const PortfolioInstance inst = random_portfolio(7, 3, 0.5, 11);
  const auto sim = choose_simulator_xyring(portfolio_terms(inst), "auto",
                                           inst.budget);
  const auto* fur = dynamic_cast<const FurQaoaSimulator*>(sim.get());
  ASSERT_NE(fur, nullptr);
  EXPECT_FALSE(fur->layer_plan().active());
  EXPECT_NE(fur->layer_plan().fallback_reason().find("xyring"),
            std::string::npos)
      << fur->layer_plan().fallback_reason();
  // Direct plan builds name each xy mixer.
  const auto ring = pipeline::LayerPlan::build(
      8, MixerType::XYRing, MixerBackend::Fused, {});
  EXPECT_NE(ring.fallback_reason().find("xyring"), std::string::npos);
  const auto complete = pipeline::LayerPlan::build(
      8, MixerType::XYComplete, MixerBackend::Fused, {});
  EXPECT_NE(complete.fallback_reason().find("xycomplete"),
            std::string::npos);
}

TEST(PipelineFallback, SpecAndEnvironmentDisableThePlan) {
  const TermList terms = labs_terms(8);
  {
    const FurQaoaSimulator sim(
        terms, FurConfig{.pipeline = {.mode = pipeline::PipelineMode::Off}});
    EXPECT_FALSE(sim.layer_plan().active());
    EXPECT_NE(sim.layer_plan().fallback_reason().find("pipeline=off"),
              std::string::npos);
  }
  const char* prior = std::getenv("QOKIT_PIPELINE");
  const std::string saved = prior ? prior : "";
  ASSERT_EQ(setenv("QOKIT_PIPELINE", "off", 1), 0);
  EXPECT_TRUE(pipeline::pipeline_disabled_by_env());
  {
    // Auto follows the environment; On overrides it.
    const FurQaoaSimulator auto_sim(terms, FurConfig{});
    EXPECT_FALSE(auto_sim.layer_plan().active());
    EXPECT_NE(auto_sim.layer_plan().fallback_reason().find("QOKIT_PIPELINE"),
              std::string::npos);
    const FurQaoaSimulator on_sim(
        terms, FurConfig{.pipeline = {.mode = pipeline::PipelineMode::On}});
    EXPECT_TRUE(on_sim.layer_plan().active());
  }
  if (prior)
    ASSERT_EQ(setenv("QOKIT_PIPELINE", saved.c_str(), 1), 0);
  else
    ASSERT_EQ(unsetenv("QOKIT_PIPELINE"), 0);
}

TEST(PipelineFallback, RunLayerRejectsMisuse) {
  StateVector sv = StateVector::plus_state(4);
  const pipeline::LayerPlan inactive;
  pipeline::PhaseCtx ctx;
  EXPECT_THROW(pipeline::run_layer(inactive, sv.data(), sv.size(), ctx, 0.1,
                                   0.2, Exec::Serial),
               std::logic_error);
  const auto plan = pipeline::LayerPlan::build(
      4, MixerType::X, MixerBackend::Fused,
      {.mode = pipeline::PipelineMode::On});
  ASSERT_TRUE(plan.active());
  // No phase source.
  EXPECT_THROW(pipeline::run_layer(plan, sv.data(), sv.size(), ctx, 0.1,
                                   0.2, Exec::Serial),
               std::invalid_argument);
  // Array/plan size mismatch.
  const CostDiagonal diag = CostDiagonal::precompute(labs_terms(4));
  ctx.costs = diag.data();
  EXPECT_THROW(pipeline::run_layer(plan, sv.data(), sv.size() / 2, ctx, 0.1,
                                   0.2, Exec::Serial),
               std::invalid_argument);
}

// ------------------------------------------------- spec/session plumbing

TEST(PipelineSpec, GrammarRoundTripsAndRejectsBadValues) {
  EXPECT_EQ(SimulatorSpec::parse("auto:pipeline=off").pipeline,
            pipeline::PipelineMode::Off);
  EXPECT_EQ(SimulatorSpec::parse("auto:pipeline=on").pipeline,
            pipeline::PipelineMode::On);
  EXPECT_EQ(SimulatorSpec::parse("auto").pipeline,
            pipeline::PipelineMode::Auto);
  SimulatorSpec spec;
  spec.pipeline = pipeline::PipelineMode::Off;
  EXPECT_EQ(spec.to_string(), "auto:pipeline=off");
  EXPECT_EQ(SimulatorSpec::parse(spec.to_string()), spec);
  EXPECT_THROW(SimulatorSpec::parse("auto:pipeline=fast"),
               std::invalid_argument);
}

TEST(PipelineSession, SessionsReuseOnePlanAndReportLayerTimings) {
  const Graph g = Graph::random_regular(8, 3, 5);
  SimulatorSpec spec;
  spec.pipeline = pipeline::PipelineMode::On;
  const api::ProblemSession session = api::ProblemSession::maxcut(g, spec);
  const auto* fur =
      dynamic_cast<const FurQaoaSimulator*>(&session.simulator());
  ASSERT_NE(fur, nullptr);
  EXPECT_TRUE(fur->layer_plan().active());
  api::EvalRequest request;
  request.timings = true;
  const QaoaParams sched = test_schedule();
  const api::EvalResult timed = session.evaluate(sched, request);
  ASSERT_TRUE(timed.timings.has_value());
  ASSERT_EQ(timed.timings->layer_ns.size(), sched.gammas.size());
  std::uint64_t total = 0;
  for (const std::uint64_t ns : timed.timings->layer_ns) total += ns;
  EXPECT_LE(total, timed.timings->simulate_ns);
  // The layer-by-layer timed evolution is bit-identical to the untimed
  // single-call one.
  const api::EvalResult untimed = session.evaluate(sched);
  EXPECT_EQ(timed.expectation, untimed.expectation);
  // The timed path must reject mismatched schedules exactly like the
  // untimed one (regression: it once sliced per layer without checking).
  QaoaParams ragged;
  ragged.gammas = {0.1, 0.2};
  ragged.betas = {0.3};
  EXPECT_THROW(session.evaluate(ragged, request), std::invalid_argument);
  EXPECT_THROW(session.evaluate(ragged), std::invalid_argument);
}

// ------------------------------------------------- fused expectation

TEST(PipelineFusedExpectation, UntimedSessionMatchesTheTwoPassOracle) {
  // n = 11: 2^11 amplitudes is wide enough for the fused final-pass
  // reduction (can_fuse_expectation needs the last pass to cover at
  // least one kReduceBlock). The untimed evaluate() takes the fused
  // simulate+reduce route; the timed one keeps the explicit two-pass
  // split so layer timings stay pure simulation. Expectation AND the
  // post-evolution reductions (overlap here) must agree bitwise.
  const QaoaParams sched = test_schedule();
  SimdLevelGuard guard;
  for (const SimdLevel level : {SimdLevel::Scalar, detect_simd_level()}) {
    force_simd_level(level);
    for (const char* name :
         {"auto", "serial", "threaded", "u16", "fwht", "u16:exec=serial"}) {
      const TermList terms = sk_terms(11, 9);
      const api::ProblemSession session(terms, SimulatorSpec::parse(name));
      const auto* fur =
          dynamic_cast<const FurQaoaSimulator*>(&session.simulator());
      ASSERT_NE(fur, nullptr) << name;
      ASSERT_TRUE(fur->layer_plan().active()) << name;
      // The setup must actually engage the fused reduction, or this test
      // would compare two-pass against itself.
      ASSERT_TRUE(pipeline::can_fuse_expectation(fur->layer_plan(),
                                                 std::uint64_t{1} << 11))
          << name;
      api::EvalRequest fused_req;
      fused_req.overlap = true;  // expectation defaults to true
      const api::EvalResult fused = session.evaluate(sched, fused_req);
      api::EvalRequest two_pass_req = fused_req;
      two_pass_req.timings = true;
      const api::EvalResult two_pass = session.evaluate(sched, two_pass_req);
      ASSERT_TRUE(fused.expectation.has_value()) << name;
      ASSERT_TRUE(two_pass.expectation.has_value()) << name;
      EXPECT_EQ(*fused.expectation, *two_pass.expectation) << name;
      ASSERT_TRUE(fused.overlap.has_value()) << name;
      EXPECT_EQ(*fused.overlap, *two_pass.overlap) << name;
    }
  }
}

TEST(PipelineFusedExpectation, SmallStatesFallBackToTwoPass) {
  // Below one reduce block the fused route must decline (and the
  // simulator silently run the two-pass default).
  const TermList terms = sk_terms(8, 9);
  const api::ProblemSession session(terms, SimulatorSpec::parse("auto"));
  const auto* fur =
      dynamic_cast<const FurQaoaSimulator*>(&session.simulator());
  ASSERT_NE(fur, nullptr);
  EXPECT_FALSE(pipeline::can_fuse_expectation(fur->layer_plan(),
                                              std::uint64_t{1} << 8));
  const QaoaParams sched = test_schedule();
  api::EvalRequest timed;
  timed.timings = true;
  EXPECT_EQ(session.evaluate(sched).expectation,
            session.evaluate(sched, timed).expectation);
}

TEST(PipelineDist, DistPlansTheLocalSliceAndMatchesOracleAtTheBoundary) {
  // n == 2 log2 K: after the alltoall the swapped-in globals start at
  // local qubit 0, exercising run_rx_sweep's tile branch.
  const TermList terms = sk_terms(4, 3);
  const DistributedFurSimulator fused(
      terms, DistConfig{.ranks = 4,
                        .pipeline = {.mode = pipeline::PipelineMode::On}});
  EXPECT_TRUE(fused.layer_plan().active());
  EXPECT_EQ(fused.layer_plan().num_qubits(), 2);  // local qubits
  const DistributedFurSimulator oracle(
      terms, DistConfig{.ranks = 4,
                        .pipeline = {.mode = pipeline::PipelineMode::Off}});
  const QaoaParams sched = test_schedule();
  EXPECT_EQ(
      fused.simulate_qaoa(sched.gammas, sched.betas)
          .max_abs_diff(oracle.simulate_qaoa(sched.gammas, sched.betas)),
      0.0);
}

}  // namespace
}  // namespace qokit
