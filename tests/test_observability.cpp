// Observability subsystem (src/obs/): the disabled-is-free contract, span
// nesting and attributes, histogram bucket math, Exec-invariant counter
// totals, exporter round-trips (JSON / Prometheus / chrome-tracing), and
// the per-item batch timing attribution it rode in with.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "api/qokit.hpp"
#include "obs/obs.hpp"

namespace {

using namespace qokit;

/// Minimal recursive-descent JSON validator: enough grammar to certify
/// that every exporter emits a machine-parseable document (objects,
/// arrays, strings with escapes, numbers, literals).
class JsonValidator {
 public:
  explicit JsonValidator(std::string_view s) : s_(s) {}

  bool valid() {
    skip();
    if (!value()) return false;
    skip();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip();
    if (peek() == '}') return ++pos_, true;
    while (true) {
      skip();
      if (!string()) return false;
      skip();
      if (peek() != ':') return false;
      ++pos_;
      skip();
      if (!value()) return false;
      skip();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') return ++pos_, true;
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip();
    if (peek() == ']') return ++pos_, true;
    while (true) {
      skip();
      if (!value()) return false;
      skip();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') return ++pos_, true;
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        if (pos_ + 1 >= s_.size()) return false;
        ++pos_;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    return pos_ > start;
  }

  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])))
      ++pos_;
  }

  std::string_view s_;
  std::size_t pos_ = 0;
};

/// Prometheus text exposition checker: every line must be a `# TYPE`
/// comment or a `name[{labels}] value` sample with a numeric value.
bool valid_prometheus(const std::string& text) {
  if (text.empty()) return false;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) return false;  // must end with newline
    const std::string_view line(text.data() + pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) return false;
    if (line.substr(0, 7) == "# TYPE ") continue;
    if (line[0] == '#') return false;
    // name[{labels}] value
    std::size_t i = 0;
    auto name_char = [&](char c) {
      return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
             c == ':';
    };
    while (i < line.size() && name_char(line[i])) ++i;
    if (i == 0) return false;
    if (i < line.size() && line[i] == '{') {
      const std::size_t close = line.find('}', i);
      if (close == std::string_view::npos) return false;
      i = close + 1;
    }
    if (i >= line.size() || line[i] != ' ') return false;
    ++i;
    if (i >= line.size()) return false;
    for (; i < line.size(); ++i) {
      const char c = line[i];
      if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
            c == '+' || c == '.' || c == 'e' || c == 'E' || c == 'i' ||
            c == 'n' || c == 'f' || c == 'a'))  // inf / nan spellings
        return false;
    }
  }
  return true;
}

std::uint64_t counter_value(const obs::Snapshot& snap,
                            std::string_view name) {
  for (const auto& [n, v] : snap.counters)
    if (n == name) return v;
  ADD_FAILURE() << "counter not in snapshot: " << name;
  return 0;
}

const obs::HistogramSnapshot* find_histogram(const obs::Snapshot& snap,
                                             std::string_view name) {
  for (const auto& [n, h] : snap.histograms)
    if (n == name) return &h;
  return nullptr;
}

/// Trace documents emit one event per line; grab the line of the first
/// event with this exact name ("" when absent).
std::string event_line(const std::string& trace, const std::string& name) {
  const std::string needle = "\"name\":\"" + name + "\"";
  const std::size_t at = trace.find(needle);
  if (at == std::string::npos) return "";
  const std::size_t start = trace.rfind('\n', at) + 1;
  const std::size_t end = trace.find('\n', at);
  return trace.substr(start, end - start);
}

api::ProblemSession labs_session(const char* spec) {
  return api::ProblemSession::labs(10, SimulatorSpec::parse(spec));
}

/// One round of everything instrumented: a timed scalar evaluate with
/// overlap + sampling, then a mixed-depth batch.
void run_queries(const api::ProblemSession& s) {
  api::EvalRequest req;
  req.overlap = true;
  req.timings = true;
  req.shots = 8;
  s.evaluate(linear_ramp(3), req);
  const std::vector<QaoaParams> batch{linear_ramp(2), linear_ramp(3)};
  s.evaluate_batch(batch, req);
}

/// Restores the observability flag each test flips.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override { was_enabled_ = obs::enabled(); }
  void TearDown() override { obs::set_enabled(was_enabled_); }

 private:
  bool was_enabled_ = false;
};

TEST_F(ObsTest, SpecObsTokenParsesAndEnables) {
  EXPECT_TRUE(SimulatorSpec::parse("auto:obs=on").obs);
  EXPECT_FALSE(SimulatorSpec::parse("auto:obs=off").obs);
  EXPECT_FALSE(SimulatorSpec::parse("auto").obs);
  EXPECT_EQ(SimulatorSpec::parse("auto:obs=on").to_string(), "auto:obs=on");
  EXPECT_THROW(SimulatorSpec::parse("auto:obs=maybe"),
               std::invalid_argument);

  obs::set_enabled(false);
  const api::ProblemSession s = labs_session("auto:obs=on");
  EXPECT_TRUE(obs::enabled());
  // The default spec never turns an enabled process back off.
  const api::ProblemSession plain = labs_session("auto");
  EXPECT_TRUE(obs::enabled());
}

TEST_F(ObsTest, DisabledIsFreeAfterWarmup) {
  // Warm pass with observability on: registers every metric on these code
  // paths and creates the thread shards, the only obs-internal heap
  // activity there is.
  obs::set_enabled(true);
  const api::ProblemSession warm = labs_session("auto");
  run_queries(warm);

  obs::set_enabled(false);
  const std::uint64_t allocs = obs::detail::allocation_count();
  const std::uint64_t events = obs::trace_event_count();
  const obs::Snapshot before = obs::snapshot();

  // Same workload, plus a fresh session (construction paths included):
  // with observability off nothing may allocate, count, or trace.
  run_queries(warm);
  const api::ProblemSession cold = labs_session("auto");
  run_queries(cold);

  const obs::Snapshot after = obs::snapshot();
  EXPECT_EQ(obs::detail::allocation_count(), allocs);
  EXPECT_EQ(obs::trace_event_count(), events);
  EXPECT_EQ(before.counters, after.counters);
}

TEST_F(ObsTest, SpanNestingAndAttributes) {
  obs::set_enabled(true);
  obs::reset();
  const api::ProblemSession s = labs_session("serial");
  api::EvalRequest req;
  req.timings = true;
  s.evaluate(linear_ramp(3), req);

  const std::string trace = obs::trace_json();
  EXPECT_TRUE(JsonValidator(trace).valid()) << trace.substr(0, 400);

  // Nesting depths recorded at open: evaluate (0) > layer (1) >
  // simulate (2) > pipeline_layer (3); reduce reopens at depth 1.
  const std::string evaluate = event_line(trace, "evaluate");
  ASSERT_FALSE(evaluate.empty());
  EXPECT_NE(evaluate.find("\"depth\":0"), std::string::npos) << evaluate;
  EXPECT_NE(evaluate.find("\"n\":10"), std::string::npos) << evaluate;
  EXPECT_NE(evaluate.find("\"p\":3"), std::string::npos) << evaluate;
  EXPECT_NE(evaluate.find("\"backend\":\"serial\""), std::string::npos)
      << evaluate;

  const std::string layer = event_line(trace, "layer");
  ASSERT_FALSE(layer.empty());
  EXPECT_NE(layer.find("\"depth\":1"), std::string::npos) << layer;

  const std::string simulate = event_line(trace, "simulate");
  ASSERT_FALSE(simulate.empty());
  EXPECT_NE(simulate.find("\"depth\":2"), std::string::npos) << simulate;

  const std::string reduce = event_line(trace, "reduce");
  ASSERT_FALSE(reduce.empty());
  EXPECT_NE(reduce.find("\"depth\":1"), std::string::npos) << reduce;

  // The precompute span from construction is there too, at top level.
  const std::string precompute = event_line(trace, "precompute");
  ASSERT_FALSE(precompute.empty());
  EXPECT_NE(precompute.find("\"depth\":0"), std::string::npos)
      << precompute;
}

TEST_F(ObsTest, HistogramBucketMath) {
  obs::set_enabled(true);
  obs::reset();
  const obs::Histogram h =
      obs::histogram("qokit_test_bucket_math", {10, 100, 1000});
  h.record(5);
  h.record(10);  // boundary lands in its own bucket (v <= bound)
  h.record(11);
  h.record(1000);
  h.record(5000);  // overflow

  const obs::Snapshot snap = obs::snapshot();
  const obs::HistogramSnapshot* hs =
      find_histogram(snap, "qokit_test_bucket_math");
  ASSERT_NE(hs, nullptr);
  ASSERT_EQ(hs->bounds, (std::vector<std::uint64_t>{10, 100, 1000}));
  EXPECT_EQ(hs->buckets, (std::vector<std::uint64_t>{2, 1, 1, 1}));
  EXPECT_EQ(hs->count, 5u);
  EXPECT_EQ(hs->sum, 6026u);

  // Prometheus renders the same data cumulatively.
  const std::string prom = snap.to_prometheus();
  EXPECT_NE(prom.find("qokit_test_bucket_math_bucket{le=\"10\"} 2\n"),
            std::string::npos);
  EXPECT_NE(prom.find("qokit_test_bucket_math_bucket{le=\"100\"} 3\n"),
            std::string::npos);
  EXPECT_NE(prom.find("qokit_test_bucket_math_bucket{le=\"1000\"} 4\n"),
            std::string::npos);
  EXPECT_NE(prom.find("qokit_test_bucket_math_bucket{le=\"+Inf\"} 5\n"),
            std::string::npos);
  EXPECT_NE(prom.find("qokit_test_bucket_math_sum 6026\n"),
            std::string::npos);
  EXPECT_NE(prom.find("qokit_test_bucket_math_count 5\n"),
            std::string::npos);

  EXPECT_THROW(obs::histogram("qokit_bad_bounds", {}),
               std::invalid_argument);
  EXPECT_THROW(obs::histogram("qokit_bad_bounds", {100, 10}),
               std::invalid_argument);
}

TEST_F(ObsTest, CounterTotalsExecInvariant) {
  // Counters are incremented at dispatch entry, never per block or
  // per thread, so the same workload must produce identical totals
  // whatever the execution policy.
  obs::set_enabled(true);
  const auto workload = [](const char* spec) {
    obs::reset();
    const api::ProblemSession s = labs_session(spec);
    run_queries(s);
    return obs::snapshot();
  };
  const obs::Snapshot serial = workload("serial");
  const obs::Snapshot threaded = workload("threaded");
  EXPECT_EQ(serial.counters, threaded.counters);
  EXPECT_GT(counter_value(serial, "qokit_evaluates_total"), 0u);
  EXPECT_GT(counter_value(serial, "qokit_sampler_draws_total"), 0u);
  EXPECT_GT(counter_value(serial, "qokit_batch_schedules_total"), 0u);
}

TEST_F(ObsTest, ExportsParseBackUnderDist) {
  obs::set_enabled(true);
  obs::reset();
  const api::ProblemSession s = labs_session("dist:2:staged");
  api::EvalRequest req;
  req.timings = true;
  req.shots = 4;
  s.evaluate(linear_ramp(2), req);

  const obs::Snapshot snap = s.metrics();
  EXPECT_GT(counter_value(snap, "qokit_alltoall_staged_calls_total"), 0u);
  EXPECT_GT(counter_value(snap, "qokit_alltoall_staged_bytes_total"), 0u);
  EXPECT_GT(counter_value(snap, "qokit_alltoall_staged_rounds_total"), 0u);

  const std::string json = snap.to_json();
  EXPECT_TRUE(JsonValidator(json).valid()) << json.substr(0, 400);
  EXPECT_NE(json.find("\"qokit_alltoall_staged_calls_total\""),
            std::string::npos);

  EXPECT_TRUE(valid_prometheus(snap.to_prometheus()));

  // The trace covers construction (precompute), the evaluate, and the
  // rank threads' alltoall spans (merged in at rank-thread exit).
  const std::string trace = obs::trace_json();
  EXPECT_TRUE(JsonValidator(trace).valid()) << trace.substr(0, 400);
  EXPECT_FALSE(event_line(trace, "precompute").empty());
  EXPECT_FALSE(event_line(trace, "simulate").empty());
  const std::string alltoall = event_line(trace, "alltoall");
  ASSERT_FALSE(alltoall.empty());
  EXPECT_NE(alltoall.find("\"transport\":\"staged\""), std::string::npos)
      << alltoall;
  EXPECT_NE(alltoall.find("\"ranks\":2"), std::string::npos) << alltoall;
}

TEST_F(ObsTest, BatchTimingsArePerItem) {
  const api::ProblemSession s = labs_session("auto");
  const std::vector<QaoaParams> batch{linear_ramp(1), linear_ramp(4),
                                      linear_ramp(2)};
  api::EvalRequest req;
  req.timings = true;
  const std::vector<api::EvalResult> rs = s.evaluate_batch(batch, req);
  ASSERT_EQ(rs.size(), batch.size());
  for (const api::EvalResult& r : rs) {
    ASSERT_TRUE(r.timings.has_value());
    EXPECT_EQ(r.timings->precompute_ns, s.precompute_ns());
    // This item's own evolution time, nested inside the whole call.
    EXPECT_GT(r.timings->simulate_ns, 0u);
    EXPECT_GT(r.timings->batch_ns, 0u);
    EXPECT_LE(r.timings->simulate_ns, r.timings->batch_ns);
    EXPECT_LE(r.timings->reduce_ns, r.timings->batch_ns);
  }
  // One shared submission: every item reports the same whole-call time,
  // but per-item attribution must not just repeat the aggregate.
  EXPECT_EQ(rs[0].timings->batch_ns, rs[1].timings->batch_ns);
  EXPECT_NE(rs[1].timings->simulate_ns, rs[1].timings->batch_ns);

  // Scalar evaluate has no enclosing batch.
  api::EvalRequest scalar_req;
  scalar_req.timings = true;
  const api::EvalResult scalar = s.evaluate(linear_ramp(2), scalar_req);
  ASSERT_TRUE(scalar.timings.has_value());
  EXPECT_EQ(scalar.timings->batch_ns, 0u);
  EXPECT_EQ(scalar.timings->layer_ns.size(), 2u);

  // The engine-level switch: timing vectors only materialize on request.
  BatchOptions opts;
  const BatchResult plain = s.batch().evaluate(batch, opts);
  EXPECT_TRUE(plain.simulate_ns.empty());
  EXPECT_TRUE(plain.reduce_ns.empty());
  opts.record_timings = true;
  const BatchResult timed = s.batch().evaluate(batch, opts);
  EXPECT_EQ(timed.simulate_ns.size(), batch.size());
  EXPECT_EQ(timed.reduce_ns.size(), batch.size());
}

TEST_F(ObsTest, GaugeAndResetSemantics) {
  obs::set_enabled(true);
  const obs::Gauge g = obs::gauge("qokit_test_gauge");
  g.set(2.5);
  EXPECT_EQ(g.value(), 2.5);
  g.set(-1.0);
  EXPECT_EQ(g.value(), -1.0);

  const obs::Counter c = obs::counter("qokit_test_reset_counter");
  c.add(7);
  EXPECT_GE(c.value(), 7u);
  obs::reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_EQ(g.value(), 0.0);
  EXPECT_EQ(obs::trace_event_count(), 0u);

  // Re-registration by name returns the same metric; a kind clash throws.
  c.add(1);
  EXPECT_EQ(obs::counter("qokit_test_reset_counter").value(), 1u);
  EXPECT_THROW(obs::gauge("qokit_test_reset_counter"), std::logic_error);
}

}  // namespace
