#include "diagonal/diagonal_u16.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "diagonal/ops.hpp"
#include "problems/labs.hpp"
#include "problems/maxcut.hpp"
#include "problems/portfolio.hpp"

namespace qokit {
namespace {

TEST(DiagonalU16, ExactForLabs) {
  // LABS energies are non-negative integers < 2^16 (paper Sec. V-B).
  const CostDiagonal d = CostDiagonal::precompute(labs_terms(10));
  const DiagonalU16 u = DiagonalU16::encode(d);
  EXPECT_TRUE(u.is_exact());
  EXPECT_DOUBLE_EQ(u.scale(), 1.0);
  for (std::uint64_t x = 0; x < d.size(); ++x)
    EXPECT_DOUBLE_EQ(u.decode(x), d[x]) << "x=" << x;
}

TEST(DiagonalU16, ExactForUnitWeightMaxCut) {
  // -cut is integral; the shifted spectrum is a small set of integers.
  const CostDiagonal d =
      CostDiagonal::precompute(maxcut_terms(Graph::random_regular(10, 3, 6)));
  const DiagonalU16 u = DiagonalU16::encode(d);
  EXPECT_TRUE(u.is_exact());
}

TEST(DiagonalU16, QuantizesNonIntegralSpectra) {
  const CostDiagonal d =
      CostDiagonal::precompute(portfolio_terms(random_portfolio(8, 3, 0.5, 1)));
  const DiagonalU16 u = DiagonalU16::encode(d);
  EXPECT_FALSE(u.is_exact());
  const double range = d.max_value() - d.min_value();
  EXPECT_LE(u.max_abs_error(), range / 65535.0);  // half-step rounding bound x2
  for (std::uint64_t x = 0; x < d.size(); ++x)
    EXPECT_NEAR(u.decode(x), d[x], range / 65535.0);
}

TEST(DiagonalU16, MemoryIsQuarterOfDouble) {
  const CostDiagonal d = CostDiagonal::precompute(labs_terms(10));
  const DiagonalU16 u = DiagonalU16::encode(d);
  EXPECT_EQ(u.memory_bytes() * 4, d.memory_bytes());
}

TEST(DiagonalU16, PhaseTableMatchesDirectExponentials) {
  const CostDiagonal d = CostDiagonal::precompute(labs_terms(8));
  const DiagonalU16 u = DiagonalU16::encode(d);
  const double gamma = 0.413;
  const auto lut = u.phase_table(gamma);
  ASSERT_EQ(lut.size(), 65536u);
  for (std::uint32_t c = 0; c < 300; ++c) {
    const double ang = -gamma * (u.offset() + u.scale() * c);
    EXPECT_NEAR(lut[c].real(), std::cos(ang), 1e-14);
    EXPECT_NEAR(lut[c].imag(), std::sin(ang), 1e-14);
  }
}

TEST(DiagonalU16, ApplyPhaseMatchesDoublePath) {
  const CostDiagonal d = CostDiagonal::precompute(labs_terms(9));
  const DiagonalU16 u = DiagonalU16::encode(d);
  StateVector a = StateVector::plus_state(9);
  StateVector b = StateVector::plus_state(9);
  apply_phase(a, d, 0.77);
  apply_phase(b, u, 0.77);
  EXPECT_LT(a.max_abs_diff(b), 1e-12);
}

TEST(DiagonalU16, ExpectationMatchesDoublePath) {
  const CostDiagonal d = CostDiagonal::precompute(labs_terms(9));
  const DiagonalU16 u = DiagonalU16::encode(d);
  StateVector sv = StateVector::plus_state(9);
  apply_phase(sv, d, 0.3);
  EXPECT_NEAR(expectation(sv, d), expectation(sv, u), 1e-10);
}

TEST(DiagonalU16, ConstantSpectrumHandled) {
  aligned_vector<double> v(16, 5.0);
  const CostDiagonal d = CostDiagonal::from_values(4, std::move(v));
  const DiagonalU16 u = DiagonalU16::encode(d);
  EXPECT_TRUE(u.is_exact());
  for (std::uint64_t x = 0; x < 16; ++x) EXPECT_DOUBLE_EQ(u.decode(x), 5.0);
}

TEST(DiagonalU16, WideIntegerRangeFallsBackToScaling) {
  // Range 2^17 exceeds the exact-integer window; codec must scale.
  CostDiagonal d = CostDiagonal::from_function(
      4, [](std::uint64_t x) { return static_cast<double>(x) * 10000.0; });
  const DiagonalU16 u = DiagonalU16::encode(d);
  EXPECT_GT(u.scale(), 1.0);
  for (std::uint64_t x = 0; x < 16; ++x)
    EXPECT_NEAR(u.decode(x), d[x], u.scale());
}

}  // namespace
}  // namespace qokit
