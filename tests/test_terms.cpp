#include "terms/term.hpp"

#include <gtest/gtest.h>

#include "common/bitops.hpp"

namespace qokit {
namespace {

TEST(Term, OrderAndEvaluate) {
  const Term t{2.5, 0b101};
  EXPECT_EQ(t.order(), 2);
  // s0 * s2 on x = 0b001: s0 = -1, s2 = +1 -> -2.5.
  EXPECT_DOUBLE_EQ(t.evaluate(0b001), -2.5);
  EXPECT_DOUBLE_EQ(t.evaluate(0b101), 2.5);
  EXPECT_DOUBLE_EQ(t.evaluate(0b000), 2.5);
}

TEST(TermList, FromPairsMatchesAdd) {
  const auto a = TermList::from_pairs(4, {{1.0, {0, 1}}, {-0.5, {2}}});
  TermList b(4, {});
  b.add(1.0, {0, 1});
  b.add(-0.5, {2});
  for (std::uint64_t x = 0; x < 16; ++x)
    EXPECT_DOUBLE_EQ(a.evaluate(x), b.evaluate(x));
}

TEST(TermList, RepeatedIndicesCancelPairwise) {
  TermList t(4, {});
  t.add(3.0, {1, 1});  // s1^2 = 1 -> constant
  EXPECT_EQ(t[0].mask, 0u);
  for (std::uint64_t x = 0; x < 16; ++x) EXPECT_DOUBLE_EQ(t.evaluate(x), 3.0);
}

TEST(TermList, TripleRepeatReducesToSingle) {
  TermList t(4, {});
  t.add(1.0, {2, 2, 2});  // s2^3 = s2
  EXPECT_EQ(t[0].mask, 0b100u);
}

TEST(TermList, CanonicalizeMergesDuplicates) {
  TermList t(3, {});
  t.add(1.0, {0, 1});
  t.add(2.0, {1, 0});  // same monomial
  t.add(-3.0, {0, 1});
  t.canonicalize();
  EXPECT_EQ(t.size(), 0u);  // 1 + 2 - 3 = 0 -> dropped
}

TEST(TermList, CanonicalizeKeepsDistinctMasks) {
  TermList t(3, {});
  t.add(1.0, {0});
  t.add(1.0, {1});
  t.add(1.0, {0, 1});
  t.canonicalize();
  EXPECT_EQ(t.size(), 3u);
}

TEST(TermList, CanonicalizeSortsByMask) {
  TermList t(3, {});
  t.add(1.0, {2});
  t.add(1.0, {0});
  t.canonicalize();
  EXPECT_LT(t[0].mask, t[1].mask);
}

TEST(TermList, OffsetIsEmptyMaskWeight) {
  TermList t(3, {});
  t.add_mask(4.5, 0);
  t.add(1.0, {1});
  EXPECT_DOUBLE_EQ(t.offset(), 4.5);
}

TEST(TermList, MaxOrder) {
  TermList t(6, {});
  EXPECT_EQ(t.max_order(), 0);
  t.add(1.0, {0, 2, 4, 5});
  t.add(1.0, {1});
  EXPECT_EQ(t.max_order(), 4);
}

TEST(TermList, WeightL1ExcludesOffset) {
  TermList t(3, {});
  t.add_mask(100.0, 0);
  t.add(2.0, {0});
  t.add(-3.0, {1, 2});
  EXPECT_DOUBLE_EQ(t.weight_l1(), 5.0);
}

TEST(TermList, EvaluateBoundsByL1PlusOffset) {
  TermList t(5, {});
  t.add_mask(1.0, 0);
  t.add(2.0, {0, 3});
  t.add(-1.5, {1, 2, 4});
  const double bound = std::abs(t.offset()) + t.weight_l1();
  for (std::uint64_t x = 0; x < 32; ++x)
    EXPECT_LE(std::abs(t.evaluate(x)), bound + 1e-12);
}

TEST(TermList, AddRejectsOutOfRangeIndex) {
  TermList t(3, {});
  EXPECT_THROW(t.add(1.0, {3}), std::out_of_range);
  EXPECT_THROW(t.add(1.0, {-1}), std::out_of_range);
}

TEST(TermList, AddMaskRejectsForeignBits) {
  TermList t(3, {});
  EXPECT_THROW(t.add_mask(1.0, 0b1000), std::out_of_range);
}

TEST(TermList, ConstructorValidatesMasks) {
  EXPECT_THROW(TermList(2, {Term{1.0, 0b100}}), std::invalid_argument);
  EXPECT_NO_THROW(TermList(3, {Term{1.0, 0b100}}));
}

TEST(TermList, CanonicalizeToleranceDropsTinyWeights) {
  TermList t(2, {});
  t.add(1e-16, {0});
  t.add(1.0, {1});
  t.canonicalize(1e-12);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t[0].mask, 0b10u);
}

TEST(TermList, ToStringMentionsEverySpin) {
  TermList t(3, {});
  t.add(2.0, {0, 2});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("s0"), std::string::npos);
  EXPECT_NE(s.find("s2"), std::string::npos);
  EXPECT_EQ(s.find("s1"), std::string::npos);
}

}  // namespace
}  // namespace qokit
