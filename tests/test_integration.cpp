// End-to-end flows through the high-level API (paper Listings 1-3).
#include "api/qokit.hpp"

#include <gtest/gtest.h>

namespace qokit {
namespace {

TEST(Api, MaxCutExpectationIsMinusExpectedCut) {
  // Listing 1: all-to-all MaxCut with weight 0.3.
  const Graph g = Graph::complete(8, 0.3);
  const std::vector<double> gs{0.2}, bs{0.4};
  const double e = api::qaoa_maxcut_expectation(g, gs, bs);
  // Cross-check against the raw pipeline, built through the same factory
  // so both sides resolve the same amplitude precision (prec=auto).
  const TermList terms = maxcut_terms(g);
  const auto sim = choose_simulator(terms);
  EXPECT_NEAR(e, sim->get_expectation(sim->simulate_qaoa(gs, bs)), 1e-10);
  // Expectation of -cut lies within the spectrum.
  EXPECT_GE(e, sim->get_cost_diagonal().min_value() - 1e-9);
  EXPECT_LE(e, sim->get_cost_diagonal().max_value() + 1e-9);
}

TEST(Api, LabsEvaluationFieldsAreConsistent) {
  const std::vector<double> gs{0.15, 0.1}, bs{0.5, 0.3};
  const api::LabsEvaluation eval = api::qaoa_labs_evaluate(10, gs, bs);
  EXPECT_NEAR(eval.min_energy, labs_known_optimum(10), 1e-9);
  EXPECT_GE(eval.expectation, eval.min_energy - 1e-9);
  EXPECT_GT(eval.ground_overlap, 0.0);
  EXPECT_LE(eval.ground_overlap, 1.0 + 1e-12);
}

TEST(Api, OptimizedLabsQaoaLowersEnergyWellBelowUniform) {
  // LABS is hard: naive ramps barely beat the uniform superposition (the
  // paper needs p >~ 12 with transferred parameters for real amplification),
  // but a short optimized schedule must still lower <E> well below the
  // uniform-state value n(n-1)/2.
  const int n = 10;
  const TermList terms = labs_terms(n);
  const auto sim = choose_simulator(terms);
  QaoaObjective obj(*sim, 2);
  double best = 1e300;
  // Multi-start: LABS is rugged, a single Nelder-Mead run can stall.
  for (const double gscale : {0.05, 0.1, 0.2}) {
    QaoaParams init = linear_ramp(2, 0.9);
    for (double& g : init.gammas) g *= gscale;  // gamma ~ 1/range(C)
    const OptResult r = nelder_mead(
        [&obj](const std::vector<double>& x) { return obj(x); },
        init.flatten(), {.max_evals = 250});
    best = std::min(best, r.fval);
  }
  const double uniform_energy = terms.offset();  // <+|C|+> = 45 at n = 10
  EXPECT_LT(best, uniform_energy - 3.0);
}

TEST(Api, MaxCutRampAmplifiesAboveRandomAssignment) {
  // For MaxCut even an un-optimized linear ramp must beat the random-cut
  // baseline of |E|/2 expected cut.
  const Graph g = Graph::random_regular(10, 3, 33);
  const QaoaParams params = linear_ramp(3, 0.8);
  const double e = api::qaoa_maxcut_expectation(g, params.gammas,
                                                params.betas);
  EXPECT_LT(e, -static_cast<double>(g.num_edges()) / 2.0);
}

TEST(Api, PortfolioExpectationStaysInFeasibleRange) {
  const PortfolioInstance inst = random_portfolio(8, 3, 0.5, 17);
  const std::vector<double> gs{0.2, 0.1}, bs{0.4, 0.3};
  const double e = api::qaoa_portfolio_expectation(inst, gs, bs);
  // The xy-ring mixer keeps the state in the budget sector, so the
  // expectation lies within that sector's spectrum.
  double lo = 1e300, hi = -1e300;
  for (std::uint64_t x = 0; x < dim_of(8); ++x) {
    if (popcount(x) != 3) continue;
    lo = std::min(lo, inst.value(x));
    hi = std::max(hi, inst.value(x));
  }
  EXPECT_GE(e, lo - 1e-9);
  EXPECT_LE(e, hi + 1e-9);
}

TEST(Api, OptimizeQaoaImprovesObjective) {
  const TermList terms = maxcut_terms(Graph::random_regular(8, 3, 21));
  const int p = 2;
  const auto sim = choose_simulator(terms);
  QaoaObjective probe(*sim, p);
  const double ramp_value = probe(linear_ramp(p).flatten());
  const api::OptimizeOutcome out =
      api::optimize_qaoa(terms, p, {.max_evals = 300});
  EXPECT_LT(out.fval, ramp_value);
  EXPECT_GT(out.evaluations, 0);
  EXPECT_EQ(out.params.p(), p);
}

TEST(Api, DeeperQaoaDoesNotHurtLabsWithInterp) {
  // INTERP ladder p=1 -> 3: optimized value must be non-increasing in p.
  const TermList terms = labs_terms(8);
  const auto sim = choose_simulator(terms);
  double prev = 1e300;
  QaoaParams params = linear_ramp(1, 0.8);
  for (int p = 1; p <= 3; ++p) {
    QaoaObjective obj(*sim, p);
    const OptResult r = nelder_mead(
        [&obj](const std::vector<double>& x) { return obj(x); },
        params.flatten(), {.max_evals = 400});
    EXPECT_LE(r.fval, prev + 1e-6) << "p=" << p;
    prev = r.fval;
    params = interp_to_next_depth(QaoaParams::unflatten(r.x));
  }
}

TEST(Api, DistributedSimulatorPluggedIntoSameWorkflow) {
  const TermList terms = labs_terms(8);
  const std::vector<double> gs{0.3}, bs{0.6};
  const DistributedFurSimulator dist_sim(terms, {.ranks = 4});
  const auto single = choose_simulator(terms);
  // The directly-constructed dist simulator stays f64; under the
  // QOKIT_PREC=f32 leg the factory-built one runs float amplitudes, so
  // the agreement bound widens to f32 drift scale.
  const double tol =
      single->precision() == Precision::F32 ? 1e-4 : 1e-9;
  EXPECT_NEAR(dist_sim.get_expectation(dist_sim.simulate_qaoa(gs, bs)),
              single->get_expectation(single->simulate_qaoa(gs, bs)), tol);
}

TEST(Api, GateBaselineAgreesWithFastPathEndToEnd) {
  const Graph g = Graph::random_regular(8, 3, 29);
  const TermList terms = maxcut_terms(g);
  const std::vector<double> gs{0.35, 0.15}, bs{0.65, 0.25};
  const GateQaoaSimulator gate_sim(terms, {});
  const double gate_e = gate_sim.get_expectation(gate_sim.simulate_qaoa(gs, bs));
  // The gate baseline is f64-only; the fast path follows prec=auto, so
  // under QOKIT_PREC=f32 the cross-check runs at f32 drift scale.
  const double tol = choose_simulator(terms)->precision() == Precision::F32
                         ? 1e-4
                         : 1e-9;
  EXPECT_NEAR(gate_e, api::qaoa_maxcut_expectation(g, gs, bs), tol);
}

}  // namespace
}  // namespace qokit
