// Randomized cross-validation of the batch evaluation engine: for random
// problems and random schedule batches (fixed seeds), BatchEvaluator must
// be *bit-identical* -- not merely close -- to a sequential simulate_qaoa
// loop on the same simulator, for every backend (serial / threaded / u16 /
// fwht / dist:K / xy-ring) and in every parallelism mode.
#include <gtest/gtest.h>

#include <bit>

#include "api/qokit.hpp"

namespace qokit {
namespace {

/// Deterministic random problem for a seed: cycles through families.
TermList random_problem(std::uint64_t seed, int* n_out) {
  Rng rng(seed * 7919);
  const int n = 6 + static_cast<int>(rng.uniform_int(5));  // 6..10
  *n_out = n;
  switch (seed % 4) {
    case 0:
      return maxcut_terms(Graph::random_regular(n - (n % 2), 3, seed));
    case 1:
      return labs_terms(n);
    case 2:
      return sat_terms(random_ksat(n, 3, 3 * n, seed));
    default:
      return sk_terms(n, seed);
  }
}

/// A batch of random schedules with heterogeneous depths p in 1..3.
std::vector<QaoaParams> random_batch(std::uint64_t seed, int count) {
  Rng rng(seed * 104729);
  std::vector<QaoaParams> batch(count);
  for (QaoaParams& s : batch) {
    const int p = 1 + static_cast<int>(rng.uniform_int(3));
    s.gammas.resize(p);
    s.betas.resize(p);
    for (int l = 0; l < p; ++l) {
      s.gammas[l] = rng.uniform(-0.6, 0.6);
      s.betas[l] = rng.uniform(-0.9, 0.9);
    }
  }
  return batch;
}

/// Assert the batch engine reproduces the sequential per-schedule loop
/// exactly: same expectation bits, same overlap bits, same state bits.
void expect_bit_identical(const QaoaFastSimulatorBase& sim,
                          std::span<const QaoaParams> batch,
                          BatchParallelism mode, const char* label) {
  BatchOptions opts;
  opts.parallelism = mode;
  opts.compute_overlap = true;
  opts.keep_states = true;
  const BatchResult r = BatchEvaluator(sim, opts).evaluate(batch);
  ASSERT_EQ(r.expectations.size(), batch.size()) << label;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const StateVector ref =
        sim.simulate_qaoa(batch[i].gammas, batch[i].betas);
    EXPECT_EQ(r.expectations[i], sim.get_expectation(ref))
        << label << " schedule " << i;
    EXPECT_EQ(r.overlaps[i], sim.get_overlap(ref))
        << label << " schedule " << i;
    EXPECT_EQ(r.states[i].max_abs_diff(ref), 0.0)
        << label << " schedule " << i;
  }
}

class BatchCrossValidationTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BatchCrossValidationTest, MatchesSequentialLoopOnEveryBackend) {
  const std::uint64_t seed = GetParam();
  int n = 0;
  const TermList terms = random_problem(seed, &n);
  const std::vector<QaoaParams> batch =
      random_batch(seed, 5 + static_cast<int>(seed % 4));

  for (const char* name : {"serial", "auto", "u16", "fwht"}) {
    const auto sim = choose_simulator(terms, name);
    for (const auto mode :
         {BatchParallelism::Auto, BatchParallelism::Outer,
          BatchParallelism::Inner})
      expect_bit_identical(*sim, batch, mode, name);
  }

  for (const int ranks : {2, 4}) {
    if (2 * std::countr_zero(static_cast<unsigned>(ranks)) >
        terms.num_qubits())
      continue;
    const DistributedFurSimulator dist_sim(terms, {.ranks = ranks});
    // Auto must resolve to Inner for the distributed simulator (its rank
    // threads are the parallelism), but even the forced modes must agree.
    EXPECT_EQ(BatchEvaluator(dist_sim).resolve_parallelism(batch.size()),
              BatchParallelism::Inner)
        << "K=" << ranks;
    for (const auto mode : {BatchParallelism::Auto, BatchParallelism::Inner})
      expect_bit_identical(dist_sim, batch, mode, "dist");
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchCrossValidationTest,
                         ::testing::Range<std::uint64_t>(1, 11));

TEST(BatchCrossValidation, XyRingDickeInitialStateIsCachedCorrectly) {
  const PortfolioInstance inst = random_portfolio(7, 3, 0.5, 11);
  const auto sim = choose_simulator_xyring(portfolio_terms(inst), "serial",
                                           inst.budget);
  const std::vector<QaoaParams> batch = random_batch(21, 4);
  expect_bit_identical(*sim, batch, BatchParallelism::Auto, "xyring");
}

TEST(BatchCrossValidation, ApiBatchExpectationMatchesOneLineApi) {
  const Graph g = Graph::random_regular(8, 3, 5);
  const TermList terms = maxcut_terms(g);
  const std::vector<QaoaParams> batch = random_batch(33, 6);
  for (const char* name : {"serial", "auto", "u16", "dist:2"}) {
    const std::vector<double> values =
        api::qaoa_batch_expectation(terms, batch, name);
    ASSERT_EQ(values.size(), batch.size());
    for (std::size_t i = 0; i < batch.size(); ++i)
      EXPECT_EQ(values[i], api::qaoa_maxcut_expectation(
                               g, batch[i].gammas, batch[i].betas, name))
          << name << " schedule " << i;
  }
}

TEST(BatchCrossValidation, SamplesMatchPerScheduleSamplingContract) {
  const TermList terms = labs_terms(8);
  const FurQaoaSimulator sim(terms, {});
  const std::vector<QaoaParams> batch = random_batch(7, 5);
  BatchOptions opts;
  opts.sample_shots = 64;
  opts.sample_seed = 99;
  const BatchResult r = BatchEvaluator(sim, opts).evaluate(batch);
  ASSERT_EQ(r.samples.size(), batch.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    // The documented contract: schedule i samples with seed sample_seed+i,
    // independent of evaluation order and parallelism mode.
    const StateVector ref =
        sim.simulate_qaoa(batch[i].gammas, batch[i].betas);
    Rng rng(opts.sample_seed + i);
    EXPECT_EQ(r.samples[i],
              sample_states(ref, opts.sample_shots, rng))
        << "schedule " << i;
  }
}

TEST(BatchCrossValidation, HeterogeneousDepthsIncludingZero) {
  const TermList terms = sk_terms(7, 3);
  const FurQaoaSimulator sim(terms, {.exec = Exec::Serial});
  std::vector<QaoaParams> batch = random_batch(13, 3);
  batch.insert(batch.begin() + 1, QaoaParams{});  // p = 0: initial state
  const BatchResult r = BatchEvaluator(sim).evaluate(batch);
  const StateVector init = sim.initial_state();
  EXPECT_EQ(r.expectations[1], sim.get_expectation(init));
}

TEST(BatchCrossValidation, MismatchedScheduleLengthsThrow) {
  const TermList terms = labs_terms(6);
  const FurQaoaSimulator sim(terms, {});
  std::vector<QaoaParams> batch(1);
  batch[0].gammas = {0.1, 0.2};
  batch[0].betas = {0.3};
  EXPECT_THROW(BatchEvaluator(sim).evaluate(batch), std::invalid_argument);
}

}  // namespace
}  // namespace qokit
