#include "fur/fwht.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/bitops.hpp"
#include "common/rng.hpp"
#include "fur/mixers.hpp"

namespace qokit {
namespace {

StateVector random_state(int n, std::uint64_t seed) {
  Rng rng(seed);
  StateVector sv(n);
  for (std::uint64_t x = 0; x < sv.size(); ++x)
    sv[x] = cdouble(rng.normal(), rng.normal());
  sv.normalize();
  return sv;
}

TEST(Fwht, TransformOfBasisStateIsWalshFunction) {
  // FWHT|x>[y] = (-1)^{x . y} / sqrt(N).
  const int n = 6;
  for (std::uint64_t x : {0ull, 5ull, 63ull, 33ull}) {
    StateVector sv = StateVector::basis_state(n, x);
    fwht(sv);
    const double amp = 1.0 / std::sqrt(64.0);
    for (std::uint64_t y = 0; y < 64; ++y) {
      const double expect = parity(x & y) ? -amp : amp;
      EXPECT_NEAR(sv[y].real(), expect, 1e-12);
      EXPECT_NEAR(sv[y].imag(), 0.0, 1e-12);
    }
  }
}

TEST(Fwht, SelfInverse) {
  StateVector sv = random_state(9, 7);
  const StateVector before = sv;
  fwht(sv);
  fwht(sv);
  EXPECT_LT(sv.max_abs_diff(before), 1e-12);
}

TEST(Fwht, PlusStateIsTransformOfZero) {
  StateVector sv = StateVector::basis_state(7, 0);
  fwht(sv);
  EXPECT_LT(sv.max_abs_diff(StateVector::plus_state(7)), 1e-13);
}

TEST(Fwht, PreservesNorm) {
  StateVector sv = random_state(10, 3);
  fwht(sv, Exec::Parallel);
  EXPECT_NEAR(sv.norm_squared(), 1.0, 1e-12);
}

class FwhtMixerTest : public ::testing::TestWithParam<std::tuple<int, double>> {
};

TEST_P(FwhtMixerTest, TwoTransformMixerEqualsSinglePassMixer) {
  // The paper's closing comparison with Ref. [43]: FWHT -> diag -> FWHT
  // must agree with Algorithms 1-2 to machine precision.
  const auto [n, beta] = GetParam();
  StateVector a = random_state(n, 11 + n);
  StateVector b = a;
  apply_mixer_x(a, beta, Exec::Serial, MixerBackend::Fused);
  apply_mixer_x_fwht(b, beta, Exec::Serial);
  EXPECT_LT(a.max_abs_diff(b), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FwhtMixerTest,
    ::testing::Combine(::testing::Values(2, 5, 8, 11),
                       ::testing::Values(0.0, 0.3, 1.0, -2.2, 3.14159)));

TEST(FwhtMixer, ParallelMatchesSerial) {
  StateVector a = random_state(12, 4);
  StateVector b = a;
  apply_mixer_x_fwht(a, 0.42, Exec::Serial);
  apply_mixer_x_fwht(b, 0.42, Exec::Parallel);
  EXPECT_LT(a.max_abs_diff(b), 1e-12);
}

}  // namespace
}  // namespace qokit
