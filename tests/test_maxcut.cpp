#include "problems/maxcut.hpp"

#include <gtest/gtest.h>

#include "common/bitops.hpp"

namespace qokit {
namespace {

TEST(MaxCut, SpectrumEqualsMinusCut) {
  const Graph g = Graph::random_regular(10, 3, 42);
  const TermList t = maxcut_terms(g);
  for (std::uint64_t x = 0; x < dim_of(10); x += 7)
    EXPECT_NEAR(t.evaluate(x), -g.cut_value(x), 1e-12) << "x=" << x;
}

TEST(MaxCut, SpectrumEqualsMinusCutWeighted) {
  const Graph g(4, {{0, 1, 0.5}, {1, 2, -1.5}, {2, 3, 2.0}, {0, 3, 0.25}});
  const TermList t = maxcut_terms(g);
  for (std::uint64_t x = 0; x < 16; ++x)
    EXPECT_NEAR(t.evaluate(x), -g.cut_value(x), 1e-12);
}

TEST(MaxCut, NoOffsetVariantShiftsByHalfTotalWeight) {
  const Graph g = Graph::complete(5);
  const TermList with = maxcut_terms(g);
  const TermList without = maxcut_terms_no_offset(g);
  const double shift = 5.0 * 4 / 2 / 2.0;  // |E|/2 = 5
  for (std::uint64_t x = 0; x < 32; ++x)
    EXPECT_NEAR(without.evaluate(x) - with.evaluate(x), shift, 1e-12);
}

TEST(MaxCut, TermCount) {
  const Graph g = Graph::complete(6);
  EXPECT_EQ(maxcut_terms(g).size(), g.num_edges() + 1);   // + offset
  EXPECT_EQ(maxcut_terms_no_offset(g).size(), g.num_edges());
}

TEST(MaxCut, BruteForceTriangle) {
  // Odd cycle: best cut = 2 of 3 edges.
  EXPECT_DOUBLE_EQ(maxcut_brute_force(Graph::ring(3)), 2.0);
}

TEST(MaxCut, BruteForceEvenRingCutsAllEdges) {
  EXPECT_DOUBLE_EQ(maxcut_brute_force(Graph::ring(8)), 8.0);
}

TEST(MaxCut, BruteForceCompleteGraph) {
  // K_n best cut = floor(n/2) * ceil(n/2).
  EXPECT_DOUBLE_EQ(maxcut_brute_force(Graph::complete(6)), 9.0);
  EXPECT_DOUBLE_EQ(maxcut_brute_force(Graph::complete(7)), 12.0);
}

TEST(MaxCut, MinOfTermsEqualsMinusBruteForce) {
  const Graph g = Graph::random_regular(12, 3, 7);
  const TermList t = maxcut_terms(g);
  double lo = 1e300;
  for (std::uint64_t x = 0; x < dim_of(12); ++x)
    lo = std::min(lo, t.evaluate(x));
  EXPECT_NEAR(lo, -maxcut_brute_force(g), 1e-12);
}

TEST(MaxCut, AllTermsAreQuadraticPlusOffset) {
  const Graph g = Graph::random_regular(8, 3, 3);
  for (const Term& t : maxcut_terms(g))
    EXPECT_TRUE(t.order() == 2 || t.mask == 0);
}

}  // namespace
}  // namespace qokit
