#include "diagonal/cost_diagonal.hpp"

#include <gtest/gtest.h>

#include "common/bitops.hpp"
#include "diagonal/ops.hpp"
#include "problems/labs.hpp"
#include "problems/maxcut.hpp"
#include "problems/portfolio.hpp"
#include "problems/sat.hpp"
#include "support/reference.hpp"

namespace qokit {
namespace {

/// Every (problem, strategy, exec) combination must reproduce f(x) exactly.
struct PrecomputeCase {
  const char* name;
  TermList terms;
};

std::vector<PrecomputeCase> precompute_cases() {
  std::vector<PrecomputeCase> cases;
  cases.push_back({"maxcut", maxcut_terms(Graph::random_regular(10, 3, 1))});
  cases.push_back({"labs", labs_terms(9)});
  cases.push_back({"sat", sat_terms(random_ksat(8, 3, 20, 2))});
  cases.push_back({"portfolio", portfolio_terms(random_portfolio(7, 3, 0.5, 3))});
  return cases;
}

class PrecomputeTest
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(PrecomputeTest, MatchesBruteForceEvaluation) {
  const auto [case_idx, strat_idx, exec_idx] = GetParam();
  const auto cases = precompute_cases();
  const TermList& terms = cases[case_idx].terms;
  const auto strategy = strat_idx == 0 ? PrecomputeStrategy::ElementMajor
                                       : PrecomputeStrategy::TermMajor;
  const auto exec = exec_idx == 0 ? Exec::Serial : Exec::Parallel;
  const CostDiagonal d = CostDiagonal::precompute(terms, exec, strategy);
  ASSERT_EQ(d.size(), dim_of(terms.num_qubits()));
  for (std::uint64_t x = 0; x < d.size(); ++x)
    ASSERT_NEAR(d[x], terms.evaluate(x), 1e-9)
        << cases[case_idx].name << " x=" << x;
}

INSTANTIATE_TEST_SUITE_P(AllCombos, PrecomputeTest,
                         ::testing::Combine(::testing::Range(0, 4),
                                            ::testing::Range(0, 2),
                                            ::testing::Range(0, 2)));

TEST(CostDiagonal, FromFunctionMatchesCallable) {
  const auto f = [](std::uint64_t x) { return static_cast<double>(x % 7); };
  const CostDiagonal d = CostDiagonal::from_function(8, f);
  for (std::uint64_t x = 0; x < 256; ++x) EXPECT_DOUBLE_EQ(d[x], f(x));
}

TEST(CostDiagonal, FromValuesValidatesSize) {
  aligned_vector<double> v(7, 0.0);
  EXPECT_THROW(CostDiagonal::from_values(3, std::move(v)),
               std::invalid_argument);
}

TEST(CostDiagonal, MinMaxGroundCount) {
  aligned_vector<double> v{3.0, -1.0, 4.0, -1.0};
  const CostDiagonal d = CostDiagonal::from_values(2, std::move(v));
  EXPECT_DOUBLE_EQ(d.min_value(), -1.0);
  EXPECT_DOUBLE_EQ(d.max_value(), 4.0);
  EXPECT_EQ(d.ground_state_count(), 2u);
}

TEST(CostDiagonal, LabsMinimumEqualsKnownOptimum) {
  for (int n : {6, 8, 10, 12}) {
    const CostDiagonal d = CostDiagonal::precompute(labs_terms(n));
    EXPECT_NEAR(d.min_value(), labs_known_optimum(n), 1e-9) << "n=" << n;
  }
}

TEST(CostDiagonal, MemoryBytesIsEightPerEntry) {
  const CostDiagonal d = CostDiagonal::precompute(labs_terms(8));
  EXPECT_EQ(d.memory_bytes(), 256u * 8u);
}

TEST(DiagonalOps, ApplyPhaseMatchesReference) {
  const TermList terms = maxcut_terms(Graph::random_regular(8, 3, 4));
  const CostDiagonal d = CostDiagonal::precompute(terms);
  StateVector sv = StateVector::plus_state(8);
  apply_phase(sv, d, 0.37);
  const auto ref = testing::ref_apply_phase(
      testing::to_vec(StateVector::plus_state(8)), terms, 0.37);
  EXPECT_LT(testing::max_diff(testing::to_vec(sv), ref), 1e-12);
}

TEST(DiagonalOps, ApplyPhasePreservesNorm) {
  const CostDiagonal d = CostDiagonal::precompute(labs_terms(10));
  StateVector sv = StateVector::plus_state(10);
  apply_phase(sv, d, 1.234);
  EXPECT_NEAR(sv.norm_squared(), 1.0, 1e-12);
}

TEST(DiagonalOps, PhaseZeroIsIdentity) {
  const CostDiagonal d = CostDiagonal::precompute(labs_terms(8));
  StateVector sv = StateVector::plus_state(8);
  const StateVector before = StateVector::plus_state(8);
  apply_phase(sv, d, 0.0);
  EXPECT_LT(sv.max_abs_diff(before), 1e-15);
}

TEST(DiagonalOps, ExpectationOnPlusStateIsSpectralMean) {
  // <+|C|+> = average of the diagonal = the offset of the polynomial.
  const TermList terms = labs_terms(8);
  const CostDiagonal d = CostDiagonal::precompute(terms);
  const StateVector sv = StateVector::plus_state(8);
  EXPECT_NEAR(expectation(sv, d), terms.offset(), 1e-9);
}

TEST(DiagonalOps, ExpectationOnBasisStateIsCostValue) {
  const TermList terms = labs_terms(7);
  const CostDiagonal d = CostDiagonal::precompute(terms);
  const StateVector sv = StateVector::basis_state(7, 42);
  EXPECT_NEAR(expectation(sv, d), labs_energy(42, 7), 1e-9);
}

TEST(DiagonalOps, ExpectationTermsAgreesWithDiagonal) {
  const TermList terms = maxcut_terms(Graph::random_regular(10, 3, 9));
  const CostDiagonal d = CostDiagonal::precompute(terms);
  StateVector sv = StateVector::plus_state(10);
  apply_phase(sv, d, 0.2);  // some non-trivial state
  EXPECT_NEAR(expectation_terms(sv, terms), expectation(sv, d), 1e-9);
}

TEST(DiagonalOps, SerialAndParallelExpectationAgree) {
  const CostDiagonal d = CostDiagonal::precompute(labs_terms(12));
  StateVector sv = StateVector::plus_state(12);
  apply_phase(sv, d, 0.11);
  EXPECT_NEAR(expectation(sv, d, Exec::Serial),
              expectation(sv, d, Exec::Parallel), 1e-10);
}

TEST(DiagonalOps, OverlapGroundOnBasisState) {
  const CostDiagonal d = CostDiagonal::precompute(labs_terms(8));
  // Find one ground state and check overlap is 1 there, 0 elsewhere.
  std::uint64_t gs = 0;
  for (std::uint64_t x = 0; x < d.size(); ++x)
    if (d[x] <= d.min_value() + 1e-9) {
      gs = x;
      break;
    }
  EXPECT_NEAR(overlap_ground(StateVector::basis_state(8, gs), d), 1.0, 1e-12);
  // A state one energy level up contributes nothing.
  std::uint64_t excited = 0;
  for (std::uint64_t x = 0; x < d.size(); ++x)
    if (d[x] > d.min_value() + 1e-9) {
      excited = x;
      break;
    }
  EXPECT_NEAR(overlap_ground(StateVector::basis_state(8, excited), d), 0.0,
              1e-12);
}

TEST(DiagonalOps, OverlapOnPlusStateIsDegeneracyOverDim) {
  const CostDiagonal d = CostDiagonal::precompute(labs_terms(9));
  const double overlap = overlap_ground(StateVector::plus_state(9), d);
  EXPECT_NEAR(overlap,
              static_cast<double>(d.ground_state_count()) / d.size(), 1e-12);
}

TEST(DiagonalOps, DimensionMismatchThrows) {
  const CostDiagonal d = CostDiagonal::precompute(labs_terms(6));
  StateVector sv = StateVector::plus_state(7);
  EXPECT_THROW(apply_phase(sv, d, 0.1), std::invalid_argument);
  EXPECT_THROW(expectation(sv, d), std::invalid_argument);
}

}  // namespace
}  // namespace qokit
