#include "fur/symmetry.hpp"

#include <gtest/gtest.h>

#include "common/bitops.hpp"
#include "fur/simulator.hpp"
#include "problems/labs.hpp"
#include "problems/maxcut.hpp"
#include "problems/portfolio.hpp"
#include "problems/sk.hpp"

namespace qokit {
namespace {

const std::vector<double> kGammas{0.21, -0.09, 0.4};
const std::vector<double> kBetas{-0.8, -0.45, -0.2};

TEST(FlipSymmetry, DetectsEvenOrderPolynomials) {
  EXPECT_TRUE(is_flip_symmetric(labs_terms(8)));
  EXPECT_TRUE(is_flip_symmetric(maxcut_terms(Graph::random_regular(8, 3, 1))));
  EXPECT_TRUE(is_flip_symmetric(sk_terms(8, 2)));
  // Portfolio has linear terms: not flip-symmetric.
  EXPECT_FALSE(is_flip_symmetric(portfolio_terms(random_portfolio(6, 2, 0.5,
                                                                  3))));
}

TEST(SymmetricSimulator, RejectsAsymmetricCost) {
  const PortfolioInstance inst = random_portfolio(6, 2, 0.5, 3);
  EXPECT_THROW(SymmetricFurSimulator(portfolio_terms(inst)),
               std::invalid_argument);
}

class SymmetricVsFullTest : public ::testing::TestWithParam<int> {};

TEST_P(SymmetricVsFullTest, LabsExpectationAndOverlapMatchFullSimulator) {
  const int n = GetParam();
  const TermList terms = labs_terms(n);
  const FurQaoaSimulator full(terms, {});
  const SymmetricFurSimulator half(terms);

  const StateVector full_state = full.simulate_qaoa(kGammas, kBetas);
  const StateVector half_state = half.simulate_qaoa(kGammas, kBetas);

  EXPECT_NEAR(half.get_expectation(half_state),
              full.get_expectation(full_state), 1e-9);
  EXPECT_NEAR(half.get_overlap(half_state), full.get_overlap(full_state),
              1e-10);
}

TEST_P(SymmetricVsFullTest, ExpandedStateMatchesFullEvolution) {
  const int n = GetParam();
  const TermList terms = labs_terms(n);
  const FurQaoaSimulator full(terms, {.exec = Exec::Serial});
  const SymmetricFurSimulator half(terms, Exec::Serial);
  const StateVector expanded =
      half.expand(half.simulate_qaoa(kGammas, kBetas));
  const StateVector reference = full.simulate_qaoa(kGammas, kBetas);
  EXPECT_LT(expanded.max_abs_diff(reference), 1e-11);
}

INSTANTIATE_TEST_SUITE_P(Sizes, SymmetricVsFullTest,
                         ::testing::Values(4, 6, 8, 10, 11));

TEST(SymmetricSimulator, MaxCutAgreesWithFull) {
  const TermList terms = maxcut_terms(Graph::random_regular(10, 3, 13));
  const FurQaoaSimulator full(terms, {});
  const SymmetricFurSimulator half(terms);
  EXPECT_NEAR(half.get_expectation(half.simulate_qaoa(kGammas, kBetas)),
              full.get_expectation(full.simulate_qaoa(kGammas, kBetas)),
              1e-9);
}

TEST(SymmetricSimulator, SkModelAgreesWithFull) {
  const TermList terms = sk_terms(9, 5);
  const FurQaoaSimulator full(terms, {});
  const SymmetricFurSimulator half(terms);
  EXPECT_NEAR(half.get_expectation(half.simulate_qaoa(kGammas, kBetas)),
              full.get_expectation(full.simulate_qaoa(kGammas, kBetas)),
              1e-9);
}

TEST(SymmetricSimulator, HalfVectorNormIsHalf) {
  const SymmetricFurSimulator half(labs_terms(9));
  const StateVector h = half.simulate_qaoa(kGammas, kBetas);
  EXPECT_EQ(h.size(), dim_of(8));
  EXPECT_NEAR(h.norm_squared(), 0.5, 1e-10);
}

TEST(SymmetricSimulator, HalfDiagonalMatchesRepresentatives) {
  const TermList terms = labs_terms(8);
  const SymmetricFurSimulator half(terms);
  const CostDiagonal& hd = half.half_diagonal();
  ASSERT_EQ(hd.size(), dim_of(7));
  for (std::uint64_t x = 0; x < hd.size(); ++x)
    EXPECT_NEAR(hd[x], terms.evaluate(x), 1e-9);
}

TEST(SymmetricSimulator, HalvesDiagonalMemory) {
  const TermList terms = labs_terms(10);
  const FurQaoaSimulator full(terms, {});
  const SymmetricFurSimulator half(terms);
  EXPECT_EQ(2 * half.half_diagonal().memory_bytes(),
            full.get_cost_diagonal().memory_bytes());
}

TEST(SymmetricSimulator, ZeroLayersGivesUniformEnergy) {
  const TermList terms = labs_terms(8);
  const SymmetricFurSimulator half(terms);
  const StateVector h = half.simulate_qaoa({}, {});
  EXPECT_NEAR(half.get_expectation(h), terms.offset(), 1e-9);
}

}  // namespace
}  // namespace qokit
