#include "problems/graph.hpp"

#include <gtest/gtest.h>

namespace qokit {
namespace {

TEST(Graph, CompleteGraphEdgeCount) {
  const Graph g = Graph::complete(6);
  EXPECT_EQ(g.num_vertices(), 6);
  EXPECT_EQ(g.num_edges(), 15u);
  EXPECT_TRUE(g.is_regular(5));
}

TEST(Graph, CompleteGraphWeight) {
  const Graph g = Graph::complete(4, 0.3);
  for (const Edge& e : g.edges()) EXPECT_DOUBLE_EQ(e.w, 0.3);
}

TEST(Graph, RingDegreesAndCount) {
  const Graph g = Graph::ring(7);
  EXPECT_EQ(g.num_edges(), 7u);
  EXPECT_TRUE(g.is_regular(2));
}

TEST(Graph, RingRejectsTiny) {
  EXPECT_THROW(Graph::ring(2), std::invalid_argument);
}

TEST(Graph, RejectsSelfLoop) {
  EXPECT_THROW(Graph(3, {{1, 1, 1.0}}), std::invalid_argument);
}

TEST(Graph, RejectsDuplicateEdge) {
  EXPECT_THROW(Graph(3, {{0, 1, 1.0}, {1, 0, 1.0}}), std::invalid_argument);
}

TEST(Graph, RejectsBadEndpoint) {
  EXPECT_THROW(Graph(3, {{0, 3, 1.0}}), std::invalid_argument);
}

TEST(Graph, NormalizesEdgeOrientation) {
  const Graph g(3, {{2, 0, 1.0}});
  EXPECT_EQ(g.edges()[0].u, 0);
  EXPECT_EQ(g.edges()[0].v, 2);
}

class RandomRegularTest : public ::testing::TestWithParam<std::pair<int, int>> {
};

TEST_P(RandomRegularTest, IsSimpleAndRegular) {
  const auto [n, d] = GetParam();
  const Graph g = Graph::random_regular(n, d, 1234);
  EXPECT_EQ(g.num_vertices(), n);
  EXPECT_EQ(g.num_edges(), static_cast<std::size_t>(n) * d / 2);
  EXPECT_TRUE(g.is_regular(d));
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, RandomRegularTest,
    ::testing::Values(std::pair{6, 3}, std::pair{10, 3}, std::pair{12, 4},
                      std::pair{16, 3}, std::pair{20, 5}, std::pair{9, 2}));

TEST(RandomRegular, DeterministicPerSeed) {
  const Graph a = Graph::random_regular(12, 3, 77);
  const Graph b = Graph::random_regular(12, 3, 77);
  EXPECT_EQ(a.edges(), b.edges());
}

TEST(RandomRegular, DifferentSeedsUsuallyDiffer) {
  const Graph a = Graph::random_regular(12, 3, 1);
  const Graph b = Graph::random_regular(12, 3, 2);
  EXPECT_NE(a.edges(), b.edges());
}

TEST(RandomRegular, RejectsOddProduct) {
  EXPECT_THROW(Graph::random_regular(5, 3, 0), std::invalid_argument);
  EXPECT_THROW(Graph::random_regular(4, 4, 0), std::invalid_argument);
}

TEST(ErdosRenyi, ExtremeProbabilities) {
  EXPECT_EQ(Graph::erdos_renyi(8, 0.0, 5).num_edges(), 0u);
  EXPECT_EQ(Graph::erdos_renyi(8, 1.0, 5).num_edges(), 28u);
}

TEST(ErdosRenyi, EdgeCountNearExpectation) {
  const Graph g = Graph::erdos_renyi(40, 0.5, 31);
  const double expected = 0.5 * 40 * 39 / 2;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, 90.0);
}

TEST(Graph, CutValueManual) {
  // Path 0-1-2 with weights 1 and 2.
  const Graph g(3, {{0, 1, 1.0}, {1, 2, 2.0}});
  EXPECT_DOUBLE_EQ(g.cut_value(0b000), 0.0);
  EXPECT_DOUBLE_EQ(g.cut_value(0b010), 3.0);  // vertex 1 alone: both edges cut
  EXPECT_DOUBLE_EQ(g.cut_value(0b001), 1.0);
  EXPECT_DOUBLE_EQ(g.cut_value(0b100), 2.0);
  EXPECT_DOUBLE_EQ(g.cut_value(0b111), 0.0);
}

TEST(Graph, DegreeCounts) {
  const Graph g(4, {{0, 1, 1.0}, {0, 2, 1.0}, {0, 3, 1.0}});
  EXPECT_EQ(g.degree(0), 3);
  EXPECT_EQ(g.degree(1), 1);
  EXPECT_FALSE(g.is_regular(1));
}

}  // namespace
}  // namespace qokit
