// Scratch-pool and consume-in-place regression tests: the batch engine
// and the objective functor reuse statevector buffers across evaluations;
// these tests pin that (a) reuse never aliases results across schedules,
// (b) repeated batches are bitwise deterministic, and (c) the steady-state
// evaluation loops perform zero statevector allocations (via the
// instrumented AlignedAllocator counter).
#include <gtest/gtest.h>

#include "api/qokit.hpp"

namespace qokit {
namespace {

std::vector<QaoaParams> two_distinct_schedules() {
  QaoaParams a;
  a.gammas = {0.3, -0.2};
  a.betas = {0.7, 0.4};
  QaoaParams b;
  b.gammas = {-0.5, 0.1};
  b.betas = {0.2, -0.8};
  return {a, b};
}

TEST(BatchScratch, DifferentSchedulesNeverShareOutputState) {
  const TermList terms = labs_terms(8);
  const FurQaoaSimulator sim(terms, {});
  const std::vector<QaoaParams> batch = two_distinct_schedules();
  BatchOptions opts;
  opts.keep_states = true;
  for (const auto mode : {BatchParallelism::Outer, BatchParallelism::Inner}) {
    opts.parallelism = mode;
    const BatchResult r = BatchEvaluator(sim, opts).evaluate(batch);
    ASSERT_EQ(r.states.size(), 2u);
    // The two outputs must be the two distinct per-schedule states, not
    // one scratch buffer reported twice.
    EXPECT_GT(r.states[0].max_abs_diff(r.states[1]), 1e-3);
    EXPECT_NE(r.states[0].data(), r.states[1].data());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      const StateVector ref =
          sim.simulate_qaoa(batch[i].gammas, batch[i].betas);
      EXPECT_EQ(r.states[i].max_abs_diff(ref), 0.0) << "schedule " << i;
    }
  }
}

TEST(BatchScratch, RepeatedBatchCallsAreBitwiseDeterministic) {
  const TermList terms = maxcut_terms(Graph::random_regular(8, 3, 7));
  const FurQaoaSimulator sim(terms, {});
  const std::vector<QaoaParams> batch = two_distinct_schedules();
  BatchOptions opts;
  opts.compute_overlap = true;
  opts.keep_states = true;
  opts.sample_shots = 32;
  const BatchEvaluator evaluator(sim, opts);
  const BatchResult first = evaluator.evaluate(batch);
  for (int repeat = 0; repeat < 3; ++repeat) {
    const BatchResult again = evaluator.evaluate(batch);
    EXPECT_EQ(again.expectations, first.expectations);
    EXPECT_EQ(again.overlaps, first.overlaps);
    EXPECT_EQ(again.samples, first.samples);
    for (std::size_t i = 0; i < batch.size(); ++i)
      EXPECT_EQ(again.states[i].max_abs_diff(first.states[i]), 0.0);
  }
}

TEST(BatchScratch, SimulateQaoaFromConsumesInPlace) {
  // The contract the scratch pool relies on: simulate_qaoa_from evolves
  // the passed state's buffer, never reallocating it.
  const TermList terms = labs_terms(8);
  const std::vector<double> g{0.3, -0.2}, b{0.7, 0.4};
  const FurQaoaSimulator serial(terms, {.exec = Exec::Serial});
  const FurQaoaSimulator fwht_sim(terms, {.backend = MixerBackend::Fwht});
  const DistributedFurSimulator dist_sim(terms, {.ranks = 2});
  for (const QaoaFastSimulatorBase* sim :
       {static_cast<const QaoaFastSimulatorBase*>(&serial),
        static_cast<const QaoaFastSimulatorBase*>(&fwht_sim),
        static_cast<const QaoaFastSimulatorBase*>(&dist_sim)}) {
    StateVector state = sim->initial_state();
    const cdouble* buffer = state.data();
    const StateVector evolved =
        sim->simulate_qaoa_from(std::move(state), g, b);
    EXPECT_EQ(evolved.data(), buffer);
  }
}

TEST(BatchScratch, ObjectiveSteadyStateAllocatesNoStatevectors) {
  const TermList terms = maxcut_terms(Graph::random_regular(10, 3, 11));
  const FurQaoaSimulator sim(terms, {});
  const QaoaObjective objective(sim, 2);
  const std::vector<double> x{0.3, -0.2, 0.7, 0.4};
  (void)objective(x);  // warm-up: first call may allocate the scratch
  const std::uint64_t baseline = aligned_allocation_count();
  double value = 0.0;
  for (int i = 0; i < 5; ++i) value = objective(x);
  EXPECT_EQ(aligned_allocation_count(), baseline);
  // And the reused scratch still computes the right number.
  const StateVector ref = sim.simulate_qaoa(
      std::vector<double>{0.3, -0.2}, std::vector<double>{0.7, 0.4});
  EXPECT_EQ(value, sim.get_expectation(ref));
}

TEST(BatchScratch, BatchSteadyStateAllocatesNoStatevectors) {
  const TermList terms = labs_terms(10);
  const FurQaoaSimulator sim(terms, {});
  const BatchEvaluator evaluator(sim);  // expectations only
  const std::vector<QaoaParams> batch = two_distinct_schedules();
  const std::vector<double> first = evaluator.expectations(batch);
  const std::uint64_t baseline = aligned_allocation_count();
  for (int repeat = 0; repeat < 4; ++repeat)
    EXPECT_EQ(evaluator.expectations(batch), first);
  EXPECT_EQ(aligned_allocation_count(), baseline);
}

TEST(BatchScratch, EvaluateIntoReusesResultBuffersAcrossCalls) {
  // evaluate_into must reuse the caller's BatchResult: after the first
  // call, repeated same-shape calls perform zero aligned allocations even
  // with keep_states on (the per-schedule state slots are refilled by
  // copy-assign, which reuses their buffers).
  const TermList terms = labs_terms(9);
  const FurQaoaSimulator sim(terms, {});
  const BatchEvaluator evaluator(sim);
  const std::vector<QaoaParams> batch = two_distinct_schedules();
  BatchOptions opts;
  opts.compute_overlap = true;
  opts.keep_states = true;
  opts.sample_shots = 8;

  const BatchResult fresh = evaluator.evaluate(batch, opts);
  BatchResult reused;
  evaluator.evaluate_into(batch, opts, reused);
  const std::uint64_t baseline = aligned_allocation_count();
  for (int repeat = 0; repeat < 3; ++repeat) {
    evaluator.evaluate_into(batch, opts, reused);
    EXPECT_EQ(reused.expectations, fresh.expectations);
    EXPECT_EQ(reused.overlaps, fresh.overlaps);
    EXPECT_EQ(reused.samples, fresh.samples);
    for (std::size_t i = 0; i < batch.size(); ++i)
      EXPECT_EQ(reused.states[i].max_abs_diff(fresh.states[i]), 0.0);
  }
  EXPECT_EQ(aligned_allocation_count(), baseline);

  // Dropping a request clears the stale field instead of leaving it.
  opts.keep_states = false;
  opts.sample_shots = 0;
  evaluator.evaluate_into(batch, opts, reused);
  EXPECT_TRUE(reused.states.empty());
  EXPECT_TRUE(reused.samples.empty());
  EXPECT_EQ(reused.expectations, fresh.expectations);
}

TEST(BatchScratch, SessionBatchSteadyStateAllocatesNoStatevectors) {
  // The session wrapper behind qaoa_batch_evaluate reserves once via its
  // scratch pool and reused BatchResult: repeated evaluate_batch calls
  // (expectations + overlaps + samples) allocate no aligned memory.
  const api::ProblemSession session = api::ProblemSession::labs(9);
  const std::vector<QaoaParams> batch = two_distinct_schedules();
  api::EvalRequest request;
  request.overlap = true;
  request.shots = 8;
  const std::vector<api::EvalResult> first =
      session.evaluate_batch(batch, request);
  const std::uint64_t baseline = aligned_allocation_count();
  for (int repeat = 0; repeat < 3; ++repeat) {
    const std::vector<api::EvalResult> again =
        session.evaluate_batch(batch, request);
    for (std::size_t i = 0; i < batch.size(); ++i) {
      EXPECT_EQ(*again[i].expectation, *first[i].expectation);
      EXPECT_EQ(*again[i].overlap, *first[i].overlap);
      EXPECT_EQ(*again[i].samples, *first[i].samples);
    }
  }
  EXPECT_EQ(aligned_allocation_count(), baseline);
}

TEST(BatchScratch, U16PhaseTableIsReusedAcrossEvaluations) {
  // The u16 phase path builds a 65536-entry factor table per layer; it
  // must come from the per-thread reusable scratch, not a fresh aligned
  // allocation, so the u16 backend meets the same zero-steady-state-
  // allocation contract as every other backend.
  const api::ProblemSession session =
      api::ProblemSession::labs(9, SimulatorSpec::parse("u16"));
  const std::vector<QaoaParams> batch = two_distinct_schedules();
  const std::vector<double> first = session.expectations(batch);
  (void)session.evaluate(batch.front());  // warm the scalar scratch too
  const std::uint64_t baseline = aligned_allocation_count();
  for (int repeat = 0; repeat < 3; ++repeat)
    EXPECT_EQ(session.expectations(batch), first);
  (void)session.evaluate(batch.front());
  EXPECT_EQ(aligned_allocation_count(), baseline);
}

TEST(BatchScratch, HeuristicRespectsThreadCountAndSimulatorPreference) {
  const TermList terms = labs_terms(8);
  const FurQaoaSimulator sim(terms, {});
  const BatchEvaluator evaluator(sim);
  // Singleton batches never go outer.
  EXPECT_EQ(evaluator.resolve_parallelism(1), BatchParallelism::Inner);
  // Sub-grain states (2^8 amplitudes) have no inner parallelism, so any
  // real batch threads across schedules -- when threads exist at all.
  const BatchParallelism multi = evaluator.resolve_parallelism(16);
  if (max_threads() > 1)
    EXPECT_EQ(multi, BatchParallelism::Outer);
  else
    EXPECT_EQ(multi, BatchParallelism::Inner);
  // The distributed simulator's rank threads are the parallelism; Auto
  // must never stack an outer team on top.
  const DistributedFurSimulator dist_sim(terms, {.ranks = 4});
  EXPECT_EQ(BatchEvaluator(dist_sim).resolve_parallelism(16),
            BatchParallelism::Inner);
  // Forced modes are honored as stated.
  BatchOptions forced;
  forced.parallelism = BatchParallelism::Outer;
  EXPECT_EQ(BatchEvaluator(sim, forced).resolve_parallelism(1),
            BatchParallelism::Outer);
}

}  // namespace
}  // namespace qokit
