#include "tn/contract.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "common/bitops.hpp"
#include "common/rng.hpp"
#include "gatesim/compile.hpp"
#include "gatesim/execute.hpp"
#include "problems/labs.hpp"
#include "problems/maxcut.hpp"
#include "tn/tensor.hpp"

namespace qokit {
namespace {

TEST(Tensor, PermuteRoundTrip) {
  tn::Tensor t;
  t.labels = {10, 20, 30};
  t.data.resize(8);
  for (int i = 0; i < 8; ++i) t.data[i] = cdouble(i, -i);
  const tn::Tensor p = tn::permute(t, {30, 10, 20});
  const tn::Tensor back = tn::permute(p, {10, 20, 30});
  for (int i = 0; i < 8; ++i) EXPECT_EQ(back.data[i], t.data[i]);
}

TEST(Tensor, PermuteMovesBitsCorrectly) {
  // Rank-2: labels {a=0th bit, b=1st bit}; swapping labels transposes.
  tn::Tensor t;
  t.labels = {1, 2};
  t.data = {cdouble(0), cdouble(1), cdouble(2), cdouble(3)};  // [b1 b0]
  const tn::Tensor p = tn::permute(t, {2, 1});
  EXPECT_EQ(p.data[0], cdouble(0));
  EXPECT_EQ(p.data[1], cdouble(2));  // old (b2=1, b1=0) -> index 2
  EXPECT_EQ(p.data[2], cdouble(1));
  EXPECT_EQ(p.data[3], cdouble(3));
}

TEST(Tensor, ContractPairIsMatrixVector) {
  // Matrix M (labels in=1, out=2) times vector v (label 1).
  tn::Tensor m;
  m.labels = {1, 2};
  m.data = {cdouble(1), cdouble(2), cdouble(3), cdouble(4)};  // M[out][in]
  tn::Tensor v;
  v.labels = {1};
  v.data = {cdouble(5), cdouble(7)};
  const tn::Tensor r = tn::contract_pair(m, v);
  ASSERT_EQ(r.rank(), 1);
  // data[b_in + 2 b_out]: out=0 row (1,2), out=1 row (3,4).
  EXPECT_EQ(r.data[0], cdouble(1) * cdouble(5) + cdouble(2) * cdouble(7));
  EXPECT_EQ(r.data[1], cdouble(3) * cdouble(5) + cdouble(4) * cdouble(7));
}

TEST(Tensor, ContractDisconnectedIsOuterProduct) {
  tn::Tensor a;
  a.labels = {1};
  a.data = {cdouble(2), cdouble(3)};
  tn::Tensor b;
  b.labels = {2};
  b.data = {cdouble(5), cdouble(7)};
  const tn::Tensor r = tn::contract_pair(a, b);
  ASSERT_EQ(r.rank(), 2);
  EXPECT_EQ(r.data[0], cdouble(10));
  EXPECT_EQ(r.data[3], cdouble(21));
}

TEST(Tensor, FullContractionToScalar) {
  tn::Tensor a;
  a.labels = {1};
  a.data = {cdouble(1), cdouble(2)};
  tn::Tensor b;
  b.labels = {1};
  b.data = {cdouble(3), cdouble(4)};
  const tn::Tensor r = tn::contract_pair(a, b);
  EXPECT_EQ(tn::scalar_value(r), cdouble(11));
}

TEST(TnAmplitude, EmptyCircuitZeroInput) {
  const Circuit c(3);
  EXPECT_NEAR(std::abs(tn::amplitude(c, 0) - cdouble(1.0)), 0.0, 1e-14);
  EXPECT_NEAR(std::abs(tn::amplitude(c, 5)), 0.0, 1e-14);
}

TEST(TnAmplitude, PlusInputIsUniform) {
  const Circuit c(4);
  for (std::uint64_t x : {0ull, 7ull, 15ull})
    EXPECT_NEAR(std::abs(tn::amplitude(c, x, /*plus_input=*/true)), 0.25,
                1e-13);
}

TEST(TnAmplitude, SingleHadamard) {
  Circuit c(1);
  c.append(Gate::h(0));
  EXPECT_NEAR(std::abs(tn::amplitude(c, 0) - cdouble(1 / std::sqrt(2.0))), 0.0,
              1e-13);
  EXPECT_NEAR(std::abs(tn::amplitude(c, 1) - cdouble(1 / std::sqrt(2.0))), 0.0,
              1e-13);
}

TEST(TnAmplitude, GhzCircuit) {
  Circuit c(4);
  c.append(Gate::h(0));
  c.append(Gate::cx(0, 1));
  c.append(Gate::cx(1, 2));
  c.append(Gate::cx(2, 3));
  const double r = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::abs(tn::amplitude(c, 0b0000) - cdouble(r)), 0.0, 1e-13);
  EXPECT_NEAR(std::abs(tn::amplitude(c, 0b1111) - cdouble(r)), 0.0, 1e-13);
  EXPECT_NEAR(std::abs(tn::amplitude(c, 0b0110)), 0.0, 1e-13);
}

class TnVsStatevectorTest : public ::testing::TestWithParam<int> {};

TEST_P(TnVsStatevectorTest, RandomCircuitAmplitudesMatch) {
  const int seed = GetParam();
  Rng rng(seed);
  const int n = 4;
  Circuit c(n);
  for (int i = 0; i < 25; ++i) {
    const int q = static_cast<int>(rng.uniform_int(n));
    int q2 = static_cast<int>(rng.uniform_int(n));
    if (q2 == q) q2 = (q + 1) % n;
    switch (rng.uniform_int(5)) {
      case 0:
        c.append(Gate::h(q));
        break;
      case 1:
        c.append(Gate::rx(q, rng.uniform(-1.0, 1.0)));
        break;
      case 2:
        c.append(Gate::rz(q, rng.uniform(-1.0, 1.0)));
        break;
      case 3:
        c.append(Gate::cx(q, q2));
        break;
      default:
        c.append(Gate::xy(q, q2, rng.uniform(-1.0, 1.0)));
        break;
    }
  }
  StateVector sv = StateVector::basis_state(n, 0);
  run_circuit(sv, c, Exec::Serial);
  for (std::uint64_t x = 0; x < dim_of(n); ++x) {
    const cdouble amp = tn::amplitude(c, x);
    EXPECT_LT(std::abs(amp - sv[x]), 1e-11) << "x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TnVsStatevectorTest, ::testing::Range(1, 7));

TEST(TnQaoa, MaxCutAmplitudesMatchStatevector) {
  const TermList terms = maxcut_terms(Graph::random_regular(6, 3, 31));
  const std::vector<double> gs{0.4, 0.2}, bs{0.7, 0.5};
  const Circuit c = compile_qaoa_circuit(terms, gs, bs, MixerType::X,
                                         PhaseStyle::MultiZ,
                                         /*initial_h=*/false);
  StateVector sv = StateVector::plus_state(6);
  run_circuit(sv, c, Exec::Serial);
  for (std::uint64_t x : {0ull, 13ull, 42ull, 63ull}) {
    const cdouble amp = tn::amplitude(c, x, /*plus_input=*/true);
    EXPECT_LT(std::abs(amp - sv[x]), 1e-11) << "x=" << x;
  }
}

TEST(TnQaoa, LabsAmplitudeWithQuarticDiagonals) {
  const TermList terms = labs_terms(6);
  const std::vector<double> gs{0.15}, bs{0.45};
  const Circuit c = compile_qaoa_circuit(terms, gs, bs, MixerType::X,
                                         PhaseStyle::MultiZ,
                                         /*initial_h=*/false);
  StateVector sv = StateVector::plus_state(6);
  run_circuit(sv, c, Exec::Serial);
  tn::ContractionStats stats;
  const cdouble amp = tn::amplitude(c, 21, /*plus_input=*/true, &stats);
  EXPECT_LT(std::abs(amp - sv[21]), 1e-11);
  EXPECT_GT(stats.contractions, 0);
  EXPECT_GE(stats.max_rank, 4);  // quartic diagonals force wide tensors
}

TEST(TnQaoa, ContractionWidthGrowsWithDepth) {
  // Deep QAOA drives contraction width up -- the effect that makes TN
  // simulators lose on high-depth circuits (paper Sec. V-A).
  const TermList terms = labs_terms(6);
  tn::ContractionStats shallow, deep;
  {
    const std::vector<double> gs{0.1}, bs{0.2};
    const Circuit c = compile_qaoa_circuit(terms, gs, bs, MixerType::X,
                                           PhaseStyle::MultiZ, false);
    tn::amplitude(c, 0, true, &shallow);
  }
  {
    const std::vector<double> gs(4, 0.1), bs(4, 0.2);
    const Circuit c = compile_qaoa_circuit(terms, gs, bs, MixerType::X,
                                           PhaseStyle::MultiZ, false);
    tn::amplitude(c, 0, true, &deep);
  }
  EXPECT_GE(deep.flops, shallow.flops);
  EXPECT_GE(deep.max_rank, shallow.max_rank);
}

}  // namespace
}  // namespace qokit
