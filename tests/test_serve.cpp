// Schedule-server acceptance tests (src/serve/): protocol framing and
// malformed-frame rejection, bounded work-queue semantics, session-cache
// hit/miss/LRU-eviction/exclusive-checkout behavior, queue-full
// backpressure, the ProblemSession reentrancy guard, and multi-threaded
// soak runs -- in-process and over the AF_UNIX socket -- whose results
// must be bit-identical to direct session evaluation. The tsan CI leg
// runs this whole file under -fsanitize=thread.
#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <future>
#include <optional>
#include <thread>
#include <vector>

#include "api/session.hpp"
#include "common/rng.hpp"
#include "problems/graph.hpp"
#include "problems/maxcut.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/session_cache.hpp"
#include "serve/work_queue.hpp"

namespace qokit::serve {
namespace {

std::vector<QaoaParams> random_schedules(int count, int p,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<QaoaParams> schedules(count);
  for (QaoaParams& s : schedules) {
    s.gammas.resize(p);
    s.betas.resize(p);
    for (int l = 0; l < p; ++l) {
      s.gammas[l] = rng.uniform(-0.6, 0.6);
      s.betas[l] = rng.uniform(-0.9, 0.9);
    }
  }
  return schedules;
}

TermList test_problem(int n, std::uint64_t seed) {
  return maxcut_terms(Graph::random_regular(n, 3, seed));
}

Request make_request(int n, std::uint64_t problem_seed,
                     const std::vector<QaoaParams>& schedules) {
  Request request;
  request.terms = test_problem(n, problem_seed);
  request.schedules = schedules;
  return request;
}

// ------------------------------------------------------------ protocol

TEST(ServeProtocol, RequestRoundTrips) {
  Request request;
  request.terms = test_problem(8, 1);
  request.spec = SimulatorSpec::parse("u16:seed=7");
  request.schedules = random_schedules(3, 2, 11);
  request.schedules.push_back(QaoaParams{});  // empty schedule survives too
  request.expectation = true;
  request.overlap = true;
  request.overlap_weight = 4;

  const std::vector<std::uint8_t> frame = encode_request(request);
  const FrameHeader header = decode_frame_header(frame);
  EXPECT_EQ(header.type, FrameType::Request);
  EXPECT_EQ(header.payload_len, frame.size() - kFrameHeaderBytes);
  const Request back = decode_request(
      std::span<const std::uint8_t>(frame).subspan(kFrameHeaderBytes));

  EXPECT_EQ(back.terms.num_qubits(), request.terms.num_qubits());
  EXPECT_EQ(back.terms.terms(), request.terms.terms());
  EXPECT_EQ(back.spec, request.spec);
  ASSERT_EQ(back.schedules.size(), request.schedules.size());
  for (std::size_t i = 0; i < back.schedules.size(); ++i) {
    EXPECT_EQ(back.schedules[i].gammas, request.schedules[i].gammas);
    EXPECT_EQ(back.schedules[i].betas, request.schedules[i].betas);
  }
  EXPECT_EQ(back.expectation, request.expectation);
  EXPECT_EQ(back.overlap, request.overlap);
  EXPECT_EQ(back.overlap_weight, request.overlap_weight);
}

TEST(ServeProtocol, ResponseRoundTrips) {
  Response response;
  response.status = Status::BadRequest;
  response.cache_hit = true;
  response.expectations = {1.5, -2.25, 0.0};
  response.overlaps = {0.125};
  response.error = "why it failed";
  response.queue_ns = 123;
  response.eval_ns = 456789;

  const std::vector<std::uint8_t> frame = encode_response(response);
  const FrameHeader header = decode_frame_header(frame);
  EXPECT_EQ(header.type, FrameType::Response);
  const Response back = decode_response(
      std::span<const std::uint8_t>(frame).subspan(kFrameHeaderBytes));

  EXPECT_EQ(back.status, response.status);
  EXPECT_EQ(back.cache_hit, response.cache_hit);
  EXPECT_EQ(back.expectations, response.expectations);
  EXPECT_EQ(back.overlaps, response.overlaps);
  EXPECT_EQ(back.error, response.error);
  EXPECT_EQ(back.queue_ns, response.queue_ns);
  EXPECT_EQ(back.eval_ns, response.eval_ns);
}

TEST(ServeProtocol, RejectsMalformedFrames) {
  Request request = make_request(6, 1, random_schedules(1, 1, 2));
  std::vector<std::uint8_t> frame = encode_request(request);

  // Header-level violations.
  EXPECT_THROW(
      (void)decode_frame_header(std::span<const std::uint8_t>(frame).first(8)),
      ProtocolError);
  {
    std::vector<std::uint8_t> bad = frame;
    bad[0] ^= 0xFF;  // magic
    EXPECT_THROW((void)decode_frame_header(bad), ProtocolError);
  }
  {
    std::vector<std::uint8_t> bad = frame;
    bad[4] = 0xFF;  // version
    EXPECT_THROW((void)decode_frame_header(bad), ProtocolError);
  }
  {
    std::vector<std::uint8_t> bad = frame;
    bad[6] = 9;  // type
    EXPECT_THROW((void)decode_frame_header(bad), ProtocolError);
  }
  {
    std::vector<std::uint8_t> bad = frame;
    const std::uint64_t huge = kMaxFramePayload + 1;
    std::memcpy(bad.data() + 8, &huge, sizeof huge);
    EXPECT_THROW((void)decode_frame_header(bad), ProtocolError);
  }

  // Payload-level violations: every truncation of the payload must throw,
  // never crash or read out of bounds.
  const std::span<const std::uint8_t> payload =
      std::span<const std::uint8_t>(frame).subspan(kFrameHeaderBytes);
  for (std::size_t keep = 0; keep < payload.size(); ++keep)
    EXPECT_THROW((void)decode_request(payload.first(keep)), ProtocolError)
        << "truncated to " << keep << " bytes";
  {
    std::vector<std::uint8_t> padded(payload.begin(), payload.end());
    padded.push_back(0);  // trailing garbage
    EXPECT_THROW((void)decode_request(padded), ProtocolError);
  }
  {
    // A count prefix promising more elements than the payload holds.
    std::vector<std::uint8_t> lying(payload.begin(), payload.end());
    const std::uint32_t huge = 0xFFFFFFFFu;
    std::memcpy(lying.data() + 4, &huge, sizeof huge);  // num_terms
    EXPECT_THROW((void)decode_request(lying), ProtocolError);
  }
  // An unparseable spec token is NOT a framing error: the frame is intact,
  // the content is wrong -- std::invalid_argument, mapped to BadRequest.
  {
    Request bad_spec = request;
    std::vector<std::uint8_t> encoded = encode_request(bad_spec);
    // Corrupt the spec string in place ("auto" -> "zuto").
    const std::string spelled = bad_spec.spec.to_string();
    std::vector<std::uint8_t>::iterator at = std::search(
        encoded.begin(), encoded.end(), spelled.begin(), spelled.end());
    ASSERT_NE(at, encoded.end());
    *at = 'z';
    EXPECT_THROW(
        (void)decode_request(
            std::span<const std::uint8_t>(encoded).subspan(kFrameHeaderBytes)),
        std::invalid_argument);
  }
}

// ------------------------------------------------------------ work queue

TEST(ServeWorkQueue, BoundedFifoWithBackpressure) {
  WorkQueue<int> queue(2);
  int a = 1, b = 2, c = 3;
  EXPECT_TRUE(queue.try_push(std::move(a)));
  EXPECT_TRUE(queue.try_push(std::move(b)));
  EXPECT_EQ(queue.depth(), 2u);
  EXPECT_FALSE(queue.try_push(std::move(c)));  // full: rejected, not queued
  EXPECT_EQ(queue.depth(), 2u);

  EXPECT_EQ(queue.pop(), std::optional<int>(1));  // FIFO
  EXPECT_TRUE(queue.try_push(std::move(c)));      // freed a slot
  EXPECT_EQ(queue.pop(), std::optional<int>(2));
  EXPECT_EQ(queue.pop(), std::optional<int>(3));

  int d = 4;
  queue.try_push(std::move(d));
  queue.close();
  int e = 5;
  EXPECT_FALSE(queue.try_push(std::move(e)));     // closed: rejected
  EXPECT_EQ(queue.pop(), std::optional<int>(4));  // drains after close
  EXPECT_EQ(queue.pop(), std::nullopt);           // then signals exit
}

TEST(ServeWorkQueue, ManyProducersManyConsumers) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 250;
  WorkQueue<int> queue(16);
  std::atomic<int> accepted{0};
  std::atomic<long long> consumed_sum{0};
  std::atomic<int> consumed_count{0};

  std::vector<std::thread> consumers;
  for (int i = 0; i < kConsumers; ++i)
    consumers.emplace_back([&] {
      while (std::optional<int> v = queue.pop()) {
        consumed_sum.fetch_add(*v);
        consumed_count.fetch_add(1);
      }
    });
  std::vector<std::thread> producers;
  std::atomic<long long> accepted_sum{0};
  for (int t = 0; t < kProducers; ++t)
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerProducer; ++i) {
        int value = t * kPerProducer + i;
        if (queue.try_push(std::move(value))) {
          accepted.fetch_add(1);
          accepted_sum.fetch_add(t * kPerProducer + i);
        }
      }
    });
  for (std::thread& t : producers) t.join();
  queue.close();
  for (std::thread& t : consumers) t.join();

  // Everything accepted was consumed exactly once, nothing was invented.
  EXPECT_EQ(consumed_count.load(), accepted.load());
  EXPECT_EQ(consumed_sum.load(), accepted_sum.load());
  EXPECT_EQ(queue.depth(), 0u);
}

// ------------------------------------------------------------ cache

TEST(ServeSessionCache, HitsMissesAndCollisionSafety) {
  SessionCache cache(std::uint64_t{1} << 30);
  const TermList problem_a = test_problem(6, 1);
  const TermList problem_b = test_problem(6, 2);
  const SimulatorSpec spec = SimulatorSpec::parse("serial");

  {
    SessionLease first = cache.checkout(problem_a, spec);
    EXPECT_FALSE(first.hit());
    EXPECT_EQ(first->num_qubits(), 6);
  }
  {
    SessionLease again = cache.checkout(problem_a, spec);
    EXPECT_TRUE(again.hit());
  }
  {
    // Different problem and different spec each get their own session.
    SessionLease other = cache.checkout(problem_b, spec);
    EXPECT_FALSE(other.hit());
    SessionLease respec =
        cache.checkout(problem_a, SimulatorSpec::parse("u16"));
    EXPECT_FALSE(respec.hit());
  }
  const SessionCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.sessions, 3u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_GE(stats.bytes, 3 * session_footprint_bytes(6, 1));
}

TEST(ServeSessionCache, ExclusiveCheckoutBlocksSecondCaller) {
  SessionCache cache(std::uint64_t{1} << 30);
  const TermList problem = test_problem(6, 1);
  const SimulatorSpec spec = SimulatorSpec::parse("serial");

  std::atomic<bool> holder_ready{false};
  std::atomic<bool> released{false};
  std::thread holder([&] {
    SessionLease lease = cache.checkout(problem, spec);
    holder_ready.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    released.store(true);
    lease.release();
  });
  while (!holder_ready.load()) std::this_thread::yield();
  // This checkout must block until the holder releases; `released` being
  // set before checkout() returns is the ordering witness.
  SessionLease lease = cache.checkout(problem, spec);
  EXPECT_TRUE(released.load());
  EXPECT_TRUE(lease.hit());
  holder.join();
}

TEST(ServeSessionCache, EvictsLeastRecentlyUsedUnderByteBudget) {
  const TermList problem_a = test_problem(6, 1);
  const TermList problem_b = test_problem(6, 2);
  const TermList problem_c = test_problem(6, 3);
  const SimulatorSpec spec = SimulatorSpec::parse("serial");
  // Size the budget from a built session's actual footprint (the same
  // overload the cache charges), so the two-of-three arithmetic holds at
  // whatever amplitude precision the spec resolves to (QOKIT_PREC leg).
  const std::uint64_t one = [&] {
    const api::ProblemSession probe(problem_a, spec);
    return session_footprint_bytes(probe);
  }();
  // Room for two sessions, not three.
  SessionCache cache(2 * one + one / 2);

  cache.checkout(problem_a, spec).release();
  cache.checkout(problem_b, spec).release();
  cache.checkout(problem_c, spec).release();  // evicts A (the LRU entry)

  SessionCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 3u);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_EQ(stats.sessions, 2u);
  EXPECT_LE(stats.bytes, cache.byte_budget());

  // A is gone (miss); B was the next-least-recent and gets evicted by A's
  // re-entry; C stays hot.
  EXPECT_FALSE(cache.checkout(problem_a, spec).hit());
  EXPECT_TRUE(cache.checkout(problem_c, spec).hit());
  EXPECT_FALSE(cache.checkout(problem_b, spec).hit());
}

TEST(ServeSessionCache, CheckedOutSessionsAreNeverEvicted) {
  const TermList problem_a = test_problem(6, 1);
  const TermList problem_b = test_problem(6, 2);
  const SimulatorSpec spec = SimulatorSpec::parse("serial");
  // Budget below even one session: everything idle is evicted eagerly,
  // but a live lease must pin its session.
  SessionCache cache(1);

  SessionLease lease = cache.checkout(problem_a, spec);
  cache.checkout(problem_b, spec).release();  // builds, then evicts itself
  EXPECT_EQ(cache.stats().sessions, 1u);      // A survives: checked out
  const double direct =
      api::ProblemSession(problem_a, spec)
          .evaluate(random_schedules(1, 1, 5)[0])
          .expectation.value();
  EXPECT_EQ(lease->evaluate(random_schedules(1, 1, 5)[0]).expectation.value(),
            direct);
  lease.release();
  EXPECT_EQ(cache.stats().sessions, 0u);  // now the budget applies
}

TEST(ServeSessionCache, BuildFailureLeavesNoResidue) {
  SessionCache cache(std::uint64_t{1} << 30);
  const TermList problem = test_problem(6, 1);
  SimulatorSpec bad = SimulatorSpec::parse("dist");
  bad.ranks = 3;  // rejected by make_simulator (not a power of two)
  EXPECT_THROW((void)cache.checkout(problem, bad), std::invalid_argument);
  const SessionCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.sessions, 0u);
  EXPECT_EQ(stats.bytes, 0u);
  // The slot is reusable afterwards.
  EXPECT_FALSE(cache.checkout(problem, SimulatorSpec::parse("serial")).hit());
}

TEST(ServeSessionCache, BuiltSessionFootprintChargesPlanAndU16Buffers) {
  // Regression: the (n, terms) estimate missed the buffers only a live
  // session reveals -- the LayerPlan's passes and, for u16 specs, the
  // uint16 code array plus the 65536-entry phase table -- so u16 sessions
  // were undercounted by over a MiB and evictions lagged the budget.
  const TermList problem = test_problem(10, 1);
  const api::ProblemSession u16_session(problem,
                                        SimulatorSpec::parse("u16"));
  // Charge at the precision the session actually resolved (prec=auto may
  // mean f32 under the QOKIT_PREC leg; the phase table and statevectors
  // then cost half).
  const Precision prec = u16_session.simulator().precision();
  const std::uint64_t base =
      session_footprint_bytes(10, problem.size(), prec);
  const std::uint64_t dim = std::uint64_t{1} << 10;
  EXPECT_GE(session_footprint_bytes(u16_session),
            base + dim * 2 + std::uint64_t{65536} * amplitude_bytes(prec));
  // Plain f64-diagonal sessions charge at least the estimate (plus plan).
  const api::ProblemSession plain(problem, SimulatorSpec::parse("serial"));
  EXPECT_GE(session_footprint_bytes(plain),
            session_footprint_bytes(10, problem.size(),
                                    plain.simulator().precision()));
}

// ------------------------------------------------------------ server

TEST(ScheduleServer, SoakIsBitIdenticalToDirectSessions) {
  constexpr int kN = 10;
  constexpr int kProblems = 3;
  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 24;
  const std::vector<QaoaParams> schedules = random_schedules(3, 2, 7);

  // Ground truth: direct single-threaded session evaluation per problem.
  std::vector<std::vector<double>> expected(kProblems);
  for (int i = 0; i < kProblems; ++i) {
    const api::ProblemSession session(test_problem(kN, 100 + i));
    api::EvalRequest eval;
    eval.expectation = true;
    eval.overlap = true;
    std::vector<double>& out = expected[i];
    for (const api::EvalResult& r : session.evaluate_batch(schedules, eval)) {
      out.push_back(r.expectation.value());
      out.push_back(r.overlap.value());
    }
  }

  ServerConfig config;
  config.workers = 3;
  config.queue_capacity = 1024;
  ScheduleServer server(config);
  std::atomic<int> mismatches{0};
  std::atomic<int> non_ok{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c)
    clients.emplace_back([&, c] {
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const int problem = (c + i) % kProblems;
        Request request = make_request(kN, 100 + problem, schedules);
        request.overlap = true;
        const Response response = server.submit_blocking(std::move(request));
        if (response.status != Status::Ok) {
          non_ok.fetch_add(1);
          continue;
        }
        // Bit-identical to the direct session: same code path, same
        // arithmetic -- EXPECT exact equality, not tolerance.
        for (std::size_t s = 0; s < schedules.size(); ++s) {
          if (response.expectations[s] != expected[problem][2 * s] ||
              response.overlaps[s] != expected[problem][2 * s + 1])
            mismatches.fetch_add(1);
        }
      }
    });
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(non_ok.load(), 0);
  EXPECT_EQ(mismatches.load(), 0);
  const SessionCache::Stats stats = server.cache_stats();
  // One precompute per problem, everything else cache hits.
  EXPECT_EQ(stats.misses, static_cast<std::uint64_t>(kProblems));
  EXPECT_EQ(stats.hits, static_cast<std::uint64_t>(
                            kClients * kRequestsPerClient - kProblems));
  server.shutdown();
}

TEST(ScheduleServer, SocketSoakIsBitIdenticalToDirectSessions) {
  constexpr int kN = 8;
  constexpr int kClients = 2;
  constexpr int kRequestsPerClient = 10;
  const std::vector<QaoaParams> schedules = random_schedules(2, 2, 9);
  const api::ProblemSession direct(test_problem(kN, 42));
  const std::vector<double> expected = [&] {
    std::vector<double> out;
    for (const api::EvalResult& r : direct.evaluate_batch(schedules))
      out.push_back(r.expectation.value());
    return out;
  }();

  ServerConfig config;
  config.workers = 2;
  config.listen_path = "qokit_serve_test.sock";
  ScheduleServer server(config);
  std::atomic<int> failures{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c)
    clients.emplace_back([&] {
      Client client(server.config().listen_path);
      for (int i = 0; i < kRequestsPerClient; ++i) {
        const Response response =
            client.call(make_request(kN, 42, schedules));
        if (response.status != Status::Ok ||
            response.expectations != expected)
          failures.fetch_add(1);
      }
    });
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(failures.load(), 0);
  const SessionCache::Stats stats = server.cache_stats();
  EXPECT_EQ(stats.misses, 1u);  // one precompute across both connections
  server.shutdown();
}

TEST(ScheduleServer, QueueFullBackpressureRejectsImmediately) {
  ServerConfig config;
  config.workers = 0;  // nothing drains: deterministic backpressure
  config.queue_capacity = 2;
  ScheduleServer server(config);
  const std::vector<QaoaParams> schedules = random_schedules(1, 1, 3);

  std::future<Response> first =
      server.submit(make_request(6, 1, schedules));
  std::future<Response> second =
      server.submit(make_request(6, 1, schedules));
  EXPECT_EQ(server.queue_depth(), 2u);
  // Queue is full: the third request resolves immediately as Overloaded.
  std::future<Response> third =
      server.submit(make_request(6, 1, schedules));
  ASSERT_EQ(third.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  const Response rejected = third.get();
  EXPECT_EQ(rejected.status, Status::Overloaded);
  EXPECT_NE(rejected.error.find("queue full"), std::string::npos);
  // The queued two are still pending...
  EXPECT_NE(first.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  // ...until shutdown fails them (never drops them silently).
  server.shutdown();
  EXPECT_EQ(first.get().status, Status::ShuttingDown);
  EXPECT_EQ(second.get().status, Status::ShuttingDown);
}

TEST(ScheduleServer, BadRequestsAreReportedNotFatal) {
  ServerConfig config;
  config.workers = 1;
  ScheduleServer server(config);
  // Invalid dist rank count: surfaced as BadRequest naming the value
  // (the satellite validation in make_simulator), server stays up.
  Request bad_ranks = make_request(8, 1, random_schedules(1, 1, 4));
  bad_ranks.spec = SimulatorSpec::parse("dist");
  bad_ranks.spec.ranks = 3;
  const Response r1 = server.submit_blocking(std::move(bad_ranks));
  EXPECT_EQ(r1.status, Status::BadRequest);
  EXPECT_NE(r1.error.find("power of two"), std::string::npos);
  EXPECT_NE(r1.error.find('3'), std::string::npos);

  // No problem at all.
  Request empty;
  empty.schedules = random_schedules(1, 1, 4);
  const Response r2 = server.submit_blocking(std::move(empty));
  EXPECT_EQ(r2.status, Status::BadRequest);

  // The server still serves good requests afterwards.
  const Response ok =
      server.submit_blocking(make_request(8, 1, random_schedules(1, 1, 4)));
  EXPECT_EQ(ok.status, Status::Ok);
  ASSERT_EQ(ok.expectations.size(), 1u);
}

TEST(ScheduleServer, MalformedSocketBytesGetErrorReplyAndClose) {
  ServerConfig config;
  config.workers = 1;
  config.listen_path = "qokit_serve_malformed.sock";
  ScheduleServer server(config);

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, config.listen_path.c_str(),
               sizeof(addr.sun_path) - 1);
  ASSERT_EQ(
      ::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr),
      0);
  // 16 bytes of garbage: a hopeless frame header.
  std::uint8_t garbage[kFrameHeaderBytes];
  std::memset(garbage, 0xFF, sizeof garbage);
  ASSERT_EQ(::write(fd, garbage, sizeof garbage),
            static_cast<ssize_t>(sizeof garbage));

  // The server answers one well-formed error response...
  std::uint8_t header[kFrameHeaderBytes];
  std::size_t got = 0;
  while (got < sizeof header) {
    const ssize_t r = ::read(fd, header + got, sizeof header - got);
    ASSERT_GT(r, 0);
    got += static_cast<std::size_t>(r);
  }
  const FrameHeader h = decode_frame_header(header);
  EXPECT_EQ(h.type, FrameType::Response);
  std::vector<std::uint8_t> payload(h.payload_len);
  got = 0;
  while (got < payload.size()) {
    const ssize_t r =
        ::read(fd, payload.data() + got, payload.size() - got);
    ASSERT_GT(r, 0);
    got += static_cast<std::size_t>(r);
  }
  const Response response = decode_response(payload);
  EXPECT_EQ(response.status, Status::BadRequest);
  EXPECT_FALSE(response.error.empty());
  // ...then closes the desynchronized connection.
  std::uint8_t byte;
  EXPECT_EQ(::read(fd, &byte, 1), 0);
  ::close(fd);
  server.shutdown();
}

// ------------------------------------------------- session reentrancy

TEST(SessionReentrancyGuard, ConcurrentEntryThrowsLogicError) {
  // The guard turns concurrent entry into std::logic_error. Timing-based:
  // one thread runs a long evaluation while the main thread calls in; if
  // the long call finishes too quickly the depth doubles and we retry.
  std::atomic<bool> tripped{false};
  for (int p = 48; p <= 384 && !tripped.load(); p *= 2) {
    const api::ProblemSession session(test_problem(16, 1));
    const std::vector<QaoaParams> longwork = random_schedules(1, p, 21);
    std::atomic<bool> started{false};
    std::thread long_call([&] {
      started.store(true);
      try {
        (void)session.evaluate(longwork[0]);
      } catch (const std::logic_error&) {
        tripped.store(true);  // the other side won the race: same outcome
      }
    });
    while (!started.load()) std::this_thread::yield();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    try {
      (void)session.evaluate(random_schedules(1, 1, 22)[0]);
    } catch (const std::logic_error&) {
      tripped.store(true);
    }
    long_call.join();
  }
  EXPECT_TRUE(tripped.load()) << "concurrent evaluate never overlapped; the "
                          "reentrancy guard was not exercised";
}

TEST(SessionReentrancyGuard, ReleasesAfterThrowAndBetweenCalls) {
  const api::ProblemSession session(test_problem(8, 1));
  const QaoaParams schedule = random_schedules(1, 2, 23)[0];
  // A call that throws INSIDE the guarded scope must release the guard.
  api::OptimizerSpec bad;
  bad.p = 2;
  bad.initial = random_schedules(1, 3, 5)[0];  // depth mismatch -> throws
  EXPECT_THROW((void)session.optimize(bad), std::invalid_argument);
  // Sequential use keeps working (sample routes through evaluate's guard).
  EXPECT_TRUE(session.evaluate(schedule).expectation.has_value());
  EXPECT_EQ(session.sample(schedule, 4).size(), 4u);
}

}  // namespace
}  // namespace qokit::serve
