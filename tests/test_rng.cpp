#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

namespace qokit {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformMeanNearHalf) {
  Rng rng(11);
  double acc = 0.0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) acc += rng.uniform();
  EXPECT_NEAR(acc / trials, 0.5, 0.01);
}

TEST(Rng, UniformIntRespectsBound) {
  Rng rng(3);
  std::vector<int> counts(7, 0);
  for (int i = 0; i < 70000; ++i) {
    const auto v = rng.uniform_int(7);
    ASSERT_LT(v, 7u);
    ++counts[v];
  }
  // Rough uniformity: each bucket within 10% of expectation.
  for (int c : counts) EXPECT_NEAR(c, 10000, 1000);
}

TEST(Rng, NormalMoments) {
  Rng rng(5);
  const int trials = 200000;
  double mean = 0.0, var = 0.0;
  std::vector<double> xs(trials);
  for (auto& x : xs) x = rng.normal();
  for (double x : xs) mean += x;
  mean /= trials;
  for (double x : xs) var += (x - mean) * (x - mean);
  var /= trials;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(9);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[i] = i;
  auto w = v;
  rng.shuffle(w);
  EXPECT_FALSE(std::equal(v.begin(), v.end(), w.begin()));  // astronomically
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, BernoulliExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

}  // namespace
}  // namespace qokit
