// Machine-adaptive execution (src/tune/) acceptance tests: the sysfs
// topology probe against injected fake trees, the closed-form heuristic's
// determinism, profile JSON persistence (round-trip, atomicity fallback,
// and every pinned degradation diagnostic), resolve_profile's environment
// handling, the spec grammar, and — the load-bearing contract — that every
// tuned configuration (fixture profile, micro-search, first-touch) is
// *bit-identical* to the static oracle (`tune=static` / `QOKIT_TUNE=off`)
// across backends: tuning reorders traversal, never arithmetic.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>

#include "api/qokit.hpp"
#include "common/aligned.hpp"
#include "tune/machine_probe.hpp"
#include "tune/profile.hpp"

namespace qokit {
namespace {

namespace fs = std::filesystem;
using tune::MachineTopology;
using tune::NumaPolicy;
using tune::ProfileSource;
using tune::TuneMode;
using tune::TuneProfile;

/// Scratch directory for this binary's fake trees and profile files.
/// ctest parallelism is across binaries, so a fixed name is race-free.
fs::path scratch_dir() {
  const fs::path dir = fs::temp_directory_path() / "qokit_test_tune";
  fs::create_directories(dir);
  return dir;
}

void write_file(const fs::path& path, const std::string& content) {
  fs::create_directories(path.parent_path());
  std::ofstream out(path);
  out << content;
}

/// Save/restore one environment variable across a test (the
/// test_pipeline.cpp idiom, RAII'd because several tests need two vars).
struct EnvVarGuard {
  explicit EnvVarGuard(std::string name) : name_(std::move(name)) {
    const char* v = std::getenv(name_.c_str());
    had_ = v != nullptr;
    if (v) saved_ = v;
  }
  ~EnvVarGuard() {
    if (had_)
      setenv(name_.c_str(), saved_.c_str(), 1);
    else
      unsetenv(name_.c_str());
  }

 private:
  std::string name_;
  bool had_ = false;
  std::string saved_;
};

/// Deterministic random problem per seed (the cross-validation idiom).
TermList random_problem(std::uint64_t seed, int* n_out) {
  Rng rng(seed * 7919);
  const int n = 8 + static_cast<int>(rng.uniform_int(4));  // 8..11
  *n_out = n;
  switch (seed % 3) {
    case 0:
      return maxcut_terms(Graph::random_regular(n - (n % 2), 3, seed));
    case 1:
      return labs_terms(n);
    default:
      return sk_terms(n, seed);
  }
}

QaoaParams test_schedule() {
  QaoaParams s;
  s.gammas = {0.31, -0.47, 0.83};
  s.betas = {0.78, 0.15, -0.52};
  return s;
}

/// `backend:tune=<suffix>` vs `backend:tune=static`: evolved state and
/// expectation must agree bitwise.
void expect_tuned_matches_static(const TermList& terms,
                                 const std::string& backend,
                                 const std::string& tune_suffix) {
  const auto tuned =
      make_simulator(terms, SimulatorSpec::parse(backend + ":tune=" +
                                                 tune_suffix));
  const auto oracle =
      make_simulator(terms, SimulatorSpec::parse(backend + ":tune=static"));
  const QaoaParams sched = test_schedule();
  const StateVector a = tuned->simulate_qaoa(sched.gammas, sched.betas);
  const StateVector b = oracle->simulate_qaoa(sched.gammas, sched.betas);
  EXPECT_EQ(a.max_abs_diff(b), 0.0) << backend << " tune=" << tune_suffix;
  EXPECT_EQ(tuned->get_expectation(a), oracle->get_expectation(b))
      << backend << " tune=" << tune_suffix;
}

MachineTopology topo_with(std::uint64_t l1d, std::uint64_t l2,
                          int cores = 4, int nodes = 1) {
  MachineTopology t;
  t.l1d_bytes = l1d;
  t.l2_bytes = l2;
  t.physical_cores = cores;
  t.logical_cpus = cores;
  t.numa_nodes = nodes;
  return t;
}

// ------------------------------------------------------- topology probe

TEST(MachineProbe, ReadsAnInjectedSysfsTree) {
  const fs::path root = scratch_dir() / "fake_sysfs";
  fs::remove_all(root);
  const fs::path cpu = root / "sys/devices/system/cpu";
  write_file(cpu / "cpu0/cache/index0/type", "Data\n");
  write_file(cpu / "cpu0/cache/index0/level", "1\n");
  write_file(cpu / "cpu0/cache/index0/size", "48K\n");
  write_file(cpu / "cpu0/cache/index0/coherency_line_size", "64\n");
  write_file(cpu / "cpu0/cache/index1/type", "Instruction\n");
  write_file(cpu / "cpu0/cache/index1/level", "1\n");
  write_file(cpu / "cpu0/cache/index1/size", "32K\n");
  write_file(cpu / "cpu0/cache/index2/type", "Unified\n");
  write_file(cpu / "cpu0/cache/index2/level", "2\n");
  write_file(cpu / "cpu0/cache/index2/size", "1024K\n");
  write_file(cpu / "cpu0/cache/index3/type", "Unified\n");
  write_file(cpu / "cpu0/cache/index3/level", "3\n");
  write_file(cpu / "cpu0/cache/index3/size", "32M\n");
  for (int c = 0; c < 8; ++c) {  // 8 logical CPUs, SMT-2: 4 physical cores
    const fs::path topo = cpu / ("cpu" + std::to_string(c)) / "topology";
    write_file(topo / "physical_package_id", "0\n");
    write_file(topo / "core_id", std::to_string(c / 2) + "\n");
  }
  fs::create_directories(root / "sys/devices/system/node/node0");
  fs::create_directories(root / "sys/devices/system/node/node1");
  write_file(root / "proc/cpuinfo",
             "processor\t: 0\nmodel name\t: Fake CPU 9000 @ 3.0GHz\n");

  const MachineTopology topo = tune::probe_machine(root.string());
  EXPECT_EQ(topo.l1d_bytes, 48u * 1024);
  EXPECT_EQ(topo.l2_bytes, 1024u * 1024);
  EXPECT_EQ(topo.l3_bytes, 32u * 1024 * 1024);
  EXPECT_EQ(topo.cache_line_bytes, 64u);
  EXPECT_EQ(topo.logical_cpus, 8);
  EXPECT_EQ(topo.physical_cores, 4);
  EXPECT_EQ(topo.numa_nodes, 2);
  EXPECT_EQ(topo.cpu_model, "Fake CPU 9000 @ 3.0GHz");
  // Injected roots never consult the host (sysconf / SIMD detection are
  // real-machine-only): the fake tree sees exactly what it describes.
  EXPECT_EQ(topo.simd_level, "scalar");
}

TEST(MachineProbe, MissingTreeKeepsConservativeDefaults) {
  const fs::path root = scratch_dir() / "empty_root";
  fs::remove_all(root);
  fs::create_directories(root);
  const MachineTopology defaults;
  EXPECT_EQ(tune::probe_machine(root.string()), defaults);
}

TEST(MachineProbe, RealMachineProbeIsSane) {
  const MachineTopology topo = tune::probe_machine();
  EXPECT_GE(topo.l1d_bytes, 1024u);
  EXPECT_GE(topo.l2_bytes, topo.l1d_bytes);
  EXPECT_GE(topo.physical_cores, 1);
  EXPECT_GE(topo.logical_cpus, topo.physical_cores);
  EXPECT_GE(topo.numa_nodes, 1);
  EXPECT_FALSE(topo.cpu_model.empty());
  EXPECT_FALSE(topo.simd_level.empty());
}

// --------------------------------------------------- heuristic profile

TEST(HeuristicProfile, ReproducesTheHandTunedDefaultsOnTheReferenceClass) {
  // The 32 KiB-L1d / 2 MiB-L2 machine class the static constants were
  // tuned for must map back onto exactly those constants.
  const TuneProfile p = tune::heuristic_profile(topo_with(32 << 10, 2 << 20));
  EXPECT_EQ(p.geometry, pipeline::Geometry::defaults());
  EXPECT_EQ(p.source, ProfileSource::Heuristic);
  EXPECT_EQ(p.threads, 4);
  EXPECT_EQ(p.numa, NumaPolicy::None);
}

TEST(HeuristicProfile, ScalesWithTheCacheHierarchyAndIsDeterministic) {
  {
    // Big server part: 48 KiB L1d, 8 MiB L2 → wider tiles, full groups.
    const TuneProfile p =
        tune::heuristic_profile(topo_with(48 << 10, 8 << 20, 32, 2));
    EXPECT_EQ(p.geometry, (pipeline::Geometry{18, 8, 10}));
    EXPECT_EQ(p.threads, 32);
    EXPECT_EQ(p.numa, NumaPolicy::FirstTouch);
  }
  {
    // Small embedded part: 16 KiB L1d, 256 KiB L2 → clamped low end.
    const TuneProfile p =
        tune::heuristic_profile(topo_with(16 << 10, 256 << 10, 2));
    EXPECT_EQ(p.geometry, (pipeline::Geometry{13, 4, 9}));
    EXPECT_EQ(p.numa, NumaPolicy::None);
  }
  // Pure function: same topology in, same profile out.
  const MachineTopology topo = topo_with(48 << 10, 8 << 20, 32, 2);
  EXPECT_EQ(tune::heuristic_profile(topo), tune::heuristic_profile(topo));
}

TEST(HeuristicProfile, CarriesTheProbedStalenessKeys) {
  MachineTopology topo = topo_with(32 << 10, 2 << 20);
  topo.cpu_model = "Fake CPU 9000";
  topo.simd_level = "avx2";
  const TuneProfile p = tune::heuristic_profile(topo);
  EXPECT_EQ(p.cpu_model, "Fake CPU 9000");
  EXPECT_EQ(p.simd_level, "avx2");
}

// --------------------------------------------------- profile persistence

TEST(ProfileIo, RoundTripsThroughDiskAndBecomesAFileProfile) {
  const std::string path = (scratch_dir() / "roundtrip.json").string();
  TuneProfile p;
  p.geometry = {14, 4, 9};
  p.threads = 3;
  p.numa = NumaPolicy::FirstTouch;
  p.source = ProfileSource::Search;
  p.cpu_model = "any";
  p.simd_level = "any";
  std::string error;
  ASSERT_TRUE(tune::save_profile(path, p, &error)) << error;

  TuneProfile loaded;
  std::string diagnostic;
  const MachineTopology topo;  // "any" keys match every machine
  ASSERT_TRUE(tune::load_profile(path, topo, &loaded, &diagnostic))
      << diagnostic;
  EXPECT_EQ(loaded.geometry, p.geometry);
  EXPECT_EQ(loaded.threads, p.threads);
  EXPECT_EQ(loaded.numa, p.numa);
  EXPECT_EQ(loaded.source, ProfileSource::File);  // provenance: from disk
}

TEST(ProfileIo, SaveReportsAnUnwritableDirectory) {
  std::string error;
  EXPECT_FALSE(tune::save_profile(
      (scratch_dir() / "no_such_subdir" / "p.json").string(), TuneProfile{},
      &error));
  EXPECT_FALSE(error.empty());
}

TEST(ProfileIo, EveryDegradationDiagnosticIsPinned) {
  const MachineTopology topo;
  TuneProfile out;
  std::string diag;

  // Missing file.
  EXPECT_FALSE(tune::load_profile(
      (scratch_dir() / "never_written.json").string(), topo, &out, &diag));
  EXPECT_EQ(diag.rfind("missing profile", 0), 0u) << diag;

  // Empty file.
  const fs::path empty = scratch_dir() / "empty.json";
  write_file(empty, "");
  EXPECT_FALSE(tune::load_profile(empty.string(), topo, &out, &diag));
  EXPECT_EQ(diag.rfind("corrupt profile", 0), 0u) << diag;

  // Wrong schema version.
  const fs::path wrong = scratch_dir() / "wrong_schema.json";
  write_file(wrong, "{\n  \"schema\": \"qokit-tune-v0\"\n}\n");
  EXPECT_FALSE(tune::load_profile(wrong.string(), topo, &out, &diag));
  EXPECT_EQ(diag.rfind("wrong schema", 0), 0u) << diag;

  // Out-of-range numeric field (tile_log2 = 99).
  const fs::path corrupt = scratch_dir() / "corrupt.json";
  write_file(corrupt,
             "{\n"
             "  \"schema\": \"qokit-tune-v1\",\n"
             "  \"cpu_model\": \"any\",\n"
             "  \"simd_level\": \"any\",\n"
             "  \"tile_log2\": 99,\n"
             "  \"group_qubits\": 6,\n"
             "  \"chunk_log2\": 10,\n"
             "  \"threads\": 0\n"
             "}\n");
  EXPECT_FALSE(tune::load_profile(corrupt.string(), topo, &out, &diag));
  EXPECT_EQ(diag.rfind("corrupt profile", 0), 0u) << diag;

  // Written on a different machine (staleness keys mismatch).
  const std::string stale = (scratch_dir() / "stale.json").string();
  TuneProfile other;
  other.cpu_model = "Some Other CPU";
  other.simd_level = "avx512";
  ASSERT_TRUE(tune::save_profile(stale, other));
  EXPECT_FALSE(tune::load_profile(stale, topo, &out, &diag));
  EXPECT_EQ(diag.rfind("stale profile", 0), 0u) << diag;
}

// ------------------------------------------------------ resolve_profile

TEST(ResolveProfile, EnvOffPinsTheStaticOracle) {
  const EnvVarGuard tune_guard("QOKIT_TUNE");
  const EnvVarGuard path_guard("QOKIT_TUNE_PATH");
  ASSERT_EQ(unsetenv("QOKIT_TUNE_PATH"), 0);
  for (const char* off : {"off", "OFF", "static", "0", "false"}) {
    ASSERT_EQ(setenv("QOKIT_TUNE", off, 1), 0);
    EXPECT_EQ(tune::resolve_profile(TuneMode::Auto), tune::static_profile())
        << off;
  }
}

TEST(ResolveProfile, AutoWithoutEnvResolvesTheHeuristic) {
  const EnvVarGuard tune_guard("QOKIT_TUNE");
  const EnvVarGuard path_guard("QOKIT_TUNE_PATH");
  ASSERT_EQ(unsetenv("QOKIT_TUNE"), 0);
  ASSERT_EQ(unsetenv("QOKIT_TUNE_PATH"), 0);
  const TuneProfile p = tune::resolve_profile(TuneMode::Auto);
  EXPECT_EQ(p.source, ProfileSource::Heuristic);
  EXPECT_EQ(p.geometry,
            tune::heuristic_profile(tune::probe_machine()).geometry);
  EXPECT_TRUE(tune::last_resolve_diagnostic().empty())
      << tune::last_resolve_diagnostic();
}

TEST(ResolveProfile, EnvPathLoadsTheFileProfile) {
  const EnvVarGuard tune_guard("QOKIT_TUNE");
  const EnvVarGuard path_guard("QOKIT_TUNE_PATH");
  ASSERT_EQ(unsetenv("QOKIT_TUNE"), 0);
  const std::string path = (scratch_dir() / "env_fixture.json").string();
  TuneProfile fixture;
  fixture.geometry = {13, 4, 9};
  ASSERT_TRUE(tune::save_profile(path, fixture));
  ASSERT_EQ(setenv("QOKIT_TUNE_PATH", path.c_str(), 1), 0);
  const TuneProfile p = tune::resolve_profile(TuneMode::Auto);
  EXPECT_EQ(p.source, ProfileSource::File);
  EXPECT_EQ(p.geometry, fixture.geometry);
}

TEST(ResolveProfile, UnusablePathDegradesToTheHeuristicWithADiagnostic) {
  const std::string missing =
      (scratch_dir() / "resolve_missing.json").string();
  const TuneProfile p = tune::resolve_profile(TuneMode::Path, missing);
  EXPECT_EQ(p.source, ProfileSource::Heuristic);  // kept serving
  EXPECT_EQ(tune::last_resolve_diagnostic().rfind("missing profile", 0), 0u)
      << tune::last_resolve_diagnostic();
}

// ----------------------------------------------------- spec plumbing

TEST(TuneSpec, GrammarRoundTripsAndRejectsBadValues) {
  EXPECT_EQ(SimulatorSpec::parse("auto").tune, TuneChoice::Auto);
  EXPECT_EQ(SimulatorSpec::parse("auto:tune=auto").tune, TuneChoice::Auto);
  EXPECT_EQ(SimulatorSpec::parse("auto:tune=static").tune,
            TuneChoice::Static);
  EXPECT_EQ(SimulatorSpec::parse("auto:tune=search").tune,
            TuneChoice::Search);
  // "off" is an alias for static and canonicalizes to it.
  const SimulatorSpec off = SimulatorSpec::parse("auto:tune=off");
  EXPECT_EQ(off.tune, TuneChoice::Static);
  EXPECT_EQ(off.to_string(), "auto:tune=static");
  // Any other value is a profile path, and round-trips.
  const SimulatorSpec with_path =
      SimulatorSpec::parse("u16:tune=/tmp/prof.json");
  EXPECT_EQ(with_path.tune, TuneChoice::Path);
  EXPECT_EQ(with_path.tune_path, "/tmp/prof.json");
  EXPECT_EQ(SimulatorSpec::parse(with_path.to_string()), with_path);
  EXPECT_THROW(SimulatorSpec::parse("auto:tune="), std::invalid_argument);
}

TEST(TuneSpec, FixtureProfileGeometryReachesTheSimulatorConfig) {
  const std::string path = (scratch_dir() / "spec_fixture.json").string();
  TuneProfile fixture;
  fixture.geometry = {12, 3, 8};
  ASSERT_TRUE(tune::save_profile(path, fixture));
  const TermList terms = sk_terms(8, 7);
  const auto sim =
      make_simulator(terms, SimulatorSpec::parse("auto:tune=" + path));
  const auto* fur = dynamic_cast<const FurQaoaSimulator*>(sim.get());
  ASSERT_NE(fur, nullptr);
  EXPECT_EQ(fur->config().pipeline.geometry, (pipeline::Geometry{12, 3, 8}));
  // tune=static pins the pre-tune constants.
  const auto pinned =
      make_simulator(terms, SimulatorSpec::parse("auto:tune=static"));
  const auto* pinned_fur =
      dynamic_cast<const FurQaoaSimulator*>(pinned.get());
  ASSERT_NE(pinned_fur, nullptr);
  EXPECT_EQ(pinned_fur->config().pipeline.geometry,
            pipeline::Geometry::defaults());
}

// --------------------------------------------------- the identity oracle

TEST(TuneIdentity, FixtureProfileIsBitIdenticalToStaticOnEveryBackend) {
  const std::string path = (scratch_dir() / "identity_fixture.json").string();
  TuneProfile fixture;
  fixture.geometry = {12, 3, 8};  // deliberately unlike the defaults
  ASSERT_TRUE(tune::save_profile(path, fixture));
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    int n = 0;
    const TermList terms = random_problem(seed, &n);
    for (const char* backend :
         {"serial", "threaded", "auto:exec=serial", "u16", "fwht",
          "u16:exec=serial", "dist:2"})
      expect_tuned_matches_static(terms, backend, path);
  }
}

TEST(TuneIdentity, MicroSearchIsBitIdenticalToStatic) {
  int n = 0;
  const TermList terms = random_problem(4, &n);
  for (const char* backend : {"auto", "u16", "fwht"})
    expect_tuned_matches_static(terms, backend, "search");
}

TEST(TuneIdentity, FirstTouchPlacementIsBitIdentical) {
  // n = 16 → a 1 MiB statevector, exactly the first-touch threshold: the
  // parallel page-touch runs, and must only move pages, never bits.
  const TermList terms = sk_terms(16, 3);
  const QaoaParams sched = test_schedule();
  const bool saved = first_touch_enabled();
  set_first_touch_enabled(false);
  const auto plain =
      make_simulator(terms, SimulatorSpec::parse("auto:tune=static"));
  const StateVector base = plain->simulate_qaoa(sched.gammas, sched.betas);
  set_first_touch_enabled(true);
  const auto touched =
      make_simulator(terms, SimulatorSpec::parse("auto:tune=static"));
  const StateVector after =
      touched->simulate_qaoa(sched.gammas, sched.betas);
  set_first_touch_enabled(saved);
  EXPECT_EQ(base.max_abs_diff(after), 0.0);
  EXPECT_EQ(plain->get_expectation(base), touched->get_expectation(after));
}

}  // namespace
}  // namespace qokit
