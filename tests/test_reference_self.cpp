// Self-validation of the dense test reference (tests/support/reference.hpp)
// against closed-form quantum identities. The reference validates every
// production kernel, so it gets its own analytic check.
#include <gtest/gtest.h>

#include <cmath>

#include "support/reference.hpp"

namespace qokit {
namespace {

using testing::Vec;

constexpr double kPi = 3.14159265358979323846;

TEST(ReferenceSelf, HadamardOnZeroGivesPlus) {
  Vec v{cdouble(1.0), cdouble(0.0)};
  v = testing::ref_apply_1q(v, 0, testing::ref_matrix_h());
  const double r = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(std::abs(v[0] - cdouble(r)), 0.0, 1e-15);
  EXPECT_NEAR(std::abs(v[1] - cdouble(r)), 0.0, 1e-15);
}

TEST(ReferenceSelf, RxHasPeriodFourPi) {
  Vec v{cdouble(0.6), cdouble(0.0, 0.8)};
  Vec w = testing::ref_apply_1q(v, 0, testing::ref_matrix_rx(4.0 * kPi));
  EXPECT_LT(testing::max_diff(v, w), 1e-12);
  // At 2*pi the state picks up a global minus sign (spin-1/2).
  Vec u = testing::ref_apply_1q(v, 0, testing::ref_matrix_rx(2.0 * kPi));
  for (std::size_t i = 0; i < v.size(); ++i)
    EXPECT_LT(std::abs(u[i] + v[i]), 1e-12);
}

TEST(ReferenceSelf, MixerAtPiIsGlobalFlipUpToPhase) {
  // e^{-i pi X} = -X ... product over qubits maps |x> -> (-1)^n |~x>.
  const int n = 3;
  Vec v(8, cdouble(0.0));
  v[0b011] = cdouble(1.0);
  const Vec w = testing::ref_apply_mixer_x(v, n, kPi / 2 * 2.0);  // beta=pi
  // beta = pi: e^{-i pi X} = -I ... wait, check |100> component instead:
  // each factor maps a -> -a; total (-1)^3 on the same basis state? No:
  // e^{-i pi X} = -I? e^{-i pi X} = cos(pi) I - i sin(pi) X = -I. So the
  // state is unchanged up to (-1)^n.
  for (std::uint64_t x = 0; x < 8; ++x) {
    const cdouble expect = (x == 0b011) ? cdouble(-1.0, 0.0) * (-1.0) * (-1.0)
                                        : cdouble(0.0);
    EXPECT_LT(std::abs(w[x] - expect), 1e-12) << x;
  }
}

TEST(ReferenceSelf, MixerAtHalfPiFlipsAllBits) {
  // e^{-i pi/2 X} = -i X: |x> -> (-i)^n |~x>.
  const int n = 4;
  Vec v(16, cdouble(0.0));
  v[0b0101] = cdouble(1.0);
  const Vec w = testing::ref_apply_mixer_x(v, n, kPi / 2);
  const cdouble phase = std::pow(cdouble(0.0, -1.0), n);
  for (std::uint64_t x = 0; x < 16; ++x) {
    const cdouble expect = (x == 0b1010) ? phase : cdouble(0.0);
    EXPECT_LT(std::abs(w[x] - expect), 1e-12) << x;
  }
}

TEST(ReferenceSelf, XyMatrixIsUnitary) {
  const auto m = testing::ref_matrix_xy(0.7);
  // Columns orthonormal.
  for (int c1 = 0; c1 < 4; ++c1)
    for (int c2 = 0; c2 < 4; ++c2) {
      cdouble dot(0.0);
      for (int r = 0; r < 4; ++r)
        dot += std::conj(m[r * 4 + c1]) * m[r * 4 + c2];
      EXPECT_NEAR(std::abs(dot), c1 == c2 ? 1.0 : 0.0, 1e-12);
    }
}

TEST(ReferenceSelf, PhaseOperatorIsDiagonalAndUnitModulus) {
  const TermList terms = TermList::from_pairs(3, {{0.7, {0, 1}}, {-0.2, {2}}});
  Vec v(8);
  for (int i = 0; i < 8; ++i) v[i] = cdouble(0.1 * (i + 1), -0.05 * i);
  const Vec w = testing::ref_apply_phase(v, terms, 0.9);
  for (std::uint64_t x = 0; x < 8; ++x)
    EXPECT_NEAR(std::abs(w[x]), std::abs(v[x]), 1e-12);
}

TEST(ReferenceSelf, ExpectationOfConstantIsConstant) {
  TermList terms(3, {});
  terms.add_mask(2.5, 0);
  Vec v(8, cdouble(1.0 / std::sqrt(8.0)));
  EXPECT_NEAR(testing::ref_expectation(v, terms), 2.5, 1e-12);
}

TEST(ReferenceSelf, QaoaAtZeroAnglesIsPlusState) {
  const TermList terms = TermList::from_pairs(3, {{1.0, {0, 1}}});
  const Vec v = testing::ref_qaoa_x(terms, {0.0, 0.0}, {0.0, 0.0});
  const double amp = 1.0 / std::sqrt(8.0);
  for (const cdouble& a : v) EXPECT_LT(std::abs(a - cdouble(amp)), 1e-13);
}

TEST(ReferenceSelf, TwoQubitEmbeddingRespectsQubitOrder) {
  // A gate acting as |b_q0 b_q1> -> permutation must embed differently for
  // (0,1) vs (1,0): use CX-like matrix and check on basis states.
  std::array<cdouble, 16> cx{};
  for (int in = 0; in < 4; ++in) {
    const int b0 = in & 1, b1 = (in >> 1) & 1;
    cx[(b0 | ((b1 ^ b0) << 1)) * 4 + in] = cdouble(1.0);
  }
  Vec v(4, cdouble(0.0));
  v[0b01] = cdouble(1.0);  // q0 = 1, q1 = 0
  // Control q0: flips q1 -> |11>.
  Vec w = testing::ref_apply_2q(v, 0, 1, cx);
  EXPECT_NEAR(std::norm(w[0b11]), 1.0, 1e-14);
  // Control q1 (= 0 here): nothing happens.
  Vec u = testing::ref_apply_2q(v, 1, 0, cx);
  EXPECT_NEAR(std::norm(u[0b01]), 1.0, 1e-14);
}

}  // namespace
}  // namespace qokit
