#include "problems/portfolio.hpp"

#include <gtest/gtest.h>

#include "common/bitops.hpp"

namespace qokit {
namespace {

TEST(Portfolio, ValueManual) {
  PortfolioInstance inst;
  inst.n = 2;
  inst.budget = 1;
  inst.q = 1.0;
  inst.mu = {0.5, 0.25};
  inst.cov = {1.0, 0.2, 0.2, 2.0};
  EXPECT_DOUBLE_EQ(inst.value(0b00), 0.0);
  EXPECT_DOUBLE_EQ(inst.value(0b01), 1.0 - 0.5);
  EXPECT_DOUBLE_EQ(inst.value(0b10), 2.0 - 0.25);
  EXPECT_DOUBLE_EQ(inst.value(0b11), (1.0 + 0.2 + 0.2 + 2.0) - 0.75);
}

TEST(Portfolio, CovarianceIsSymmetric) {
  const PortfolioInstance inst = random_portfolio(8, 3, 0.5, 21);
  for (int i = 0; i < 8; ++i)
    for (int j = 0; j < 8; ++j)
      EXPECT_DOUBLE_EQ(inst.cov[i * 8 + j], inst.cov[j * 8 + i]);
}

TEST(Portfolio, CovarianceIsPositiveSemidefiniteOnAxes) {
  const PortfolioInstance inst = random_portfolio(6, 2, 0.5, 4);
  // x^T Cov x >= 0 for every binary selection (Cov = A A^T / n).
  for (std::uint64_t x = 0; x < 64; ++x) {
    double risk = 0.0;
    for (int i = 0; i < 6; ++i)
      for (int j = 0; j < 6; ++j)
        if (test_bit(x, i) && test_bit(x, j)) risk += inst.cov[i * 6 + j];
    EXPECT_GE(risk, -1e-9);
  }
}

class PortfolioTermsTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PortfolioTermsTest, SpectrumMatchesObjective) {
  const PortfolioInstance inst = random_portfolio(7, 3, 0.7, GetParam());
  const TermList t = portfolio_terms(inst);
  for (std::uint64_t x = 0; x < dim_of(7); ++x)
    EXPECT_NEAR(t.evaluate(x), inst.value(x), 1e-9) << "x=" << x;
}

INSTANTIATE_TEST_SUITE_P(Seeds, PortfolioTermsTest,
                         ::testing::Values(1u, 2u, 3u, 99u));

TEST(Portfolio, TermsAreAtMostQuadratic) {
  const PortfolioInstance inst = random_portfolio(9, 4, 0.5, 8);
  EXPECT_LE(portfolio_terms(inst).max_order(), 2);
}

TEST(Portfolio, BruteForceRespectsBudget) {
  const PortfolioInstance inst = random_portfolio(10, 4, 0.5, 13);
  std::uint64_t argmin = 0;
  const double best = inst.brute_force_best(&argmin);
  EXPECT_EQ(popcount(argmin), 4);
  EXPECT_DOUBLE_EQ(inst.value(argmin), best);
  // No weight-4 selection does better.
  for (std::uint64_t x = 0; x < dim_of(10); ++x) {
    if (popcount(x) == 4) {
      EXPECT_GE(inst.value(x), best - 1e-12);
    }
  }
}

TEST(Portfolio, RejectsBadBudget) {
  EXPECT_THROW(random_portfolio(5, 6, 0.5, 0), std::invalid_argument);
  EXPECT_THROW(random_portfolio(5, -1, 0.5, 0), std::invalid_argument);
}

TEST(Portfolio, RiskAversionShiftsOptimum) {
  // With q = 0 the best budget-k portfolio maximizes return only.
  PortfolioInstance inst = random_portfolio(8, 3, 0.0, 5);
  std::uint64_t argmin = 0;
  inst.brute_force_best(&argmin);
  // Greedy top-3 returns must coincide with the optimum at q = 0.
  std::vector<int> idx(8);
  for (int i = 0; i < 8; ++i) idx[i] = i;
  std::sort(idx.begin(), idx.end(),
            [&](int a, int b) { return inst.mu[a] > inst.mu[b]; });
  std::uint64_t greedy = 0;
  for (int i = 0; i < 3; ++i) greedy |= 1ull << idx[i];
  EXPECT_EQ(argmin, greedy);
}

}  // namespace
}  // namespace qokit
