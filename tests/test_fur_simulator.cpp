#include "fur/simulator.hpp"

#include <gtest/gtest.h>

#include "common/bitops.hpp"
#include "diagonal/ops.hpp"
#include "problems/labs.hpp"
#include "problems/maxcut.hpp"
#include "problems/portfolio.hpp"
#include "support/reference.hpp"

namespace qokit {
namespace {

using testing::max_diff;
using testing::to_vec;

const std::vector<double> kGammas{0.4, -0.17, 0.83};
const std::vector<double> kBetas{0.9, 0.35, -0.6};

class FurVsDenseTest : public ::testing::TestWithParam<std::tuple<int, int>> {
};

TEST_P(FurVsDenseTest, QaoaStateMatchesDenseReference) {
  const auto [n, p] = GetParam();
  const TermList terms = maxcut_terms(Graph::random_regular(n, 3, 17));
  const FurQaoaSimulator sim(terms, {.exec = Exec::Serial});
  const std::vector<double> gs(kGammas.begin(), kGammas.begin() + p);
  const std::vector<double> bs(kBetas.begin(), kBetas.begin() + p);
  const StateVector result = sim.simulate_qaoa(gs, bs);
  const auto ref = testing::ref_qaoa_x(terms, gs, bs);
  EXPECT_LT(max_diff(to_vec(result), ref), 1e-11);
  EXPECT_NEAR(sim.get_expectation(result), testing::ref_expectation(ref, terms),
              1e-9);
}

INSTANTIATE_TEST_SUITE_P(Sweep, FurVsDenseTest,
                         ::testing::Combine(::testing::Values(4, 6, 8),
                                            ::testing::Values(1, 2, 3)));

TEST(FurSimulator, LabsMatchesDenseReference) {
  const TermList terms = labs_terms(7);
  const FurQaoaSimulator sim(terms, {.exec = Exec::Serial});
  const StateVector result = sim.simulate_qaoa(kGammas, kBetas);
  const auto ref = testing::ref_qaoa_x(terms, kGammas, kBetas);
  EXPECT_LT(max_diff(to_vec(result), ref), 1e-11);
}

TEST(FurSimulator, SerialAndParallelAgree) {
  const TermList terms = labs_terms(11);
  const FurQaoaSimulator serial(terms, {.exec = Exec::Serial});
  const FurQaoaSimulator parallel(terms, {.exec = Exec::Parallel});
  const StateVector a = serial.simulate_qaoa(kGammas, kBetas);
  const StateVector b = parallel.simulate_qaoa(kGammas, kBetas);
  EXPECT_LT(a.max_abs_diff(b), 1e-12);
}

TEST(FurSimulator, FwhtBackendAgreesWithFused) {
  const TermList terms = labs_terms(9);
  const FurQaoaSimulator fused(terms, {});
  const FurQaoaSimulator fwht_sim(terms, {.backend = MixerBackend::Fwht});
  const StateVector a = fused.simulate_qaoa(kGammas, kBetas);
  const StateVector b = fwht_sim.simulate_qaoa(kGammas, kBetas);
  EXPECT_LT(a.max_abs_diff(b), 1e-10);
}

TEST(FurSimulator, U16ModeAgreesOnIntegralSpectrum) {
  const TermList terms = labs_terms(10);
  const FurQaoaSimulator dbl(terms, {});
  const FurQaoaSimulator u16(terms, {.use_u16 = true});
  EXPECT_TRUE(u16.diagonal_u16().is_exact());
  const StateVector a = dbl.simulate_qaoa(kGammas, kBetas);
  const StateVector b = u16.simulate_qaoa(kGammas, kBetas);
  EXPECT_LT(a.max_abs_diff(b), 1e-11);
  EXPECT_NEAR(dbl.get_expectation(a), u16.get_expectation(b), 1e-9);
}

TEST(FurSimulator, ExpectationEqualsProbabilityWeightedCost) {
  const TermList terms = labs_terms(8);
  const FurQaoaSimulator sim(terms, {});
  const StateVector result = sim.simulate_qaoa(kGammas, kBetas);
  const auto probs = sim.get_probabilities(result);
  const auto& diag = sim.get_cost_diagonal();
  double manual = 0.0;
  for (std::uint64_t x = 0; x < diag.size(); ++x) manual += probs[x] * diag[x];
  EXPECT_NEAR(sim.get_expectation(result), manual, 1e-9);
}

TEST(FurSimulator, OverlapEqualsGroundMass) {
  const TermList terms = labs_terms(8);
  const FurQaoaSimulator sim(terms, {});
  const StateVector result = sim.simulate_qaoa(kGammas, kBetas);
  const auto probs = sim.get_probabilities(result);
  const auto& diag = sim.get_cost_diagonal();
  const double lo = diag.min_value();
  double manual = 0.0;
  for (std::uint64_t x = 0; x < diag.size(); ++x)
    if (diag[x] <= lo + 1e-9) manual += probs[x];
  EXPECT_NEAR(sim.get_overlap(result), manual, 1e-12);
}

TEST(FurSimulator, CustomCostsExpectation) {
  const TermList terms = labs_terms(7);
  const FurQaoaSimulator sim(terms, {});
  const StateVector result = sim.simulate_qaoa(kGammas, kBetas);
  // A custom all-ones cost vector: expectation must be the norm = 1.
  const CostDiagonal ones =
      CostDiagonal::from_function(7, [](std::uint64_t) { return 1.0; });
  EXPECT_NEAR(sim.get_expectation(result, ones), 1.0, 1e-12);
}

TEST(FurSimulator, ZeroLayersReturnsInitialState) {
  const TermList terms = labs_terms(6);
  const FurQaoaSimulator sim(terms, {});
  const StateVector result = sim.simulate_qaoa({}, {});
  EXPECT_LT(result.max_abs_diff(StateVector::plus_state(6)), 1e-15);
  EXPECT_NEAR(sim.get_expectation(result), terms.offset(), 1e-9);
}

TEST(FurSimulator, MismatchedScheduleThrows) {
  const FurQaoaSimulator sim(labs_terms(5), {});
  const std::vector<double> g{0.1, 0.2};
  const std::vector<double> b{0.1};
  EXPECT_THROW(sim.simulate_qaoa(g, b), std::invalid_argument);
}

TEST(FurSimulator, XyRingKeepsDickeSector) {
  const PortfolioInstance inst = random_portfolio(6, 2, 0.5, 7);
  const FurQaoaSimulator sim(portfolio_terms(inst),
                             {.mixer = MixerType::XYRing, .initial_weight = 2});
  const StateVector result = sim.simulate_qaoa(kGammas, kBetas);
  EXPECT_NEAR(result.weight_sector_mass(2), 1.0, 1e-10);
}

TEST(FurSimulator, XyCompleteMatchesDenseReference) {
  const PortfolioInstance inst = random_portfolio(5, 2, 0.5, 9);
  const TermList terms = portfolio_terms(inst);
  const FurQaoaSimulator sim(
      terms, {.exec = Exec::Serial, .mixer = MixerType::XYComplete,
              .initial_weight = 2});
  const StateVector result = sim.simulate_qaoa(kGammas, kBetas);

  // Dense reference with identical layer structure.
  auto v = to_vec(StateVector::dicke_state(5, 2));
  for (std::size_t l = 0; l < kGammas.size(); ++l) {
    v = testing::ref_apply_phase(v, terms, kGammas[l]);
    v = testing::ref_apply_mixer_xy_complete(std::move(v), 5, kBetas[l]);
  }
  EXPECT_LT(max_diff(to_vec(result), v), 1e-11);
}

TEST(FurSimulator, SectorRestrictedOverlap) {
  const PortfolioInstance inst = random_portfolio(6, 3, 0.5, 11);
  const TermList terms = portfolio_terms(inst);
  const FurQaoaSimulator sim(terms,
                             {.mixer = MixerType::XYRing, .initial_weight = 3});
  const StateVector result = sim.simulate_qaoa(kGammas, kBetas);
  const double overlap = sim.get_overlap(result, /*restrict_weight=*/3);
  EXPECT_GT(overlap, 0.0);
  EXPECT_LE(overlap, 1.0 + 1e-12);
}

TEST(ChooseSimulator, NamesProduceWorkingSimulators) {
  const TermList terms = labs_terms(6);
  for (const char* name : {"auto", "serial", "threaded", "u16", "fwht"}) {
    const auto sim = choose_simulator(terms, name);
    const StateVector r = sim->simulate_qaoa(kGammas, kBetas);
    // Under QOKIT_PREC=f32 the names resolve to float amplitudes, where
    // unitarity holds to rounding scale rather than 1e-10.
    const double tol =
        sim->precision() == Precision::F32 ? 1e-5 : 1e-10;
    EXPECT_NEAR(r.norm_squared(), 1.0, tol) << name;
  }
}

TEST(ChooseSimulator, AllNamesAgreeNumerically) {
  const TermList terms = labs_terms(8);
  const auto reference = choose_simulator(terms, "serial");
  const StateVector ref = reference->simulate_qaoa(kGammas, kBetas);
  // Every name resolves to the same amplitude precision (they share the
  // prec=auto rules), so the agreement bound only widens when the whole
  // matrix runs at f32 (QOKIT_PREC=f32 leg).
  const double tol =
      reference->precision() == Precision::F32 ? 1e-5 : 1e-10;
  for (const char* name : {"auto", "threaded", "u16", "fwht"}) {
    const auto sim = choose_simulator(terms, name);
    const StateVector r = sim->simulate_qaoa(kGammas, kBetas);
    EXPECT_LT(r.max_abs_diff(ref), tol) << name;
  }
}

TEST(ChooseSimulator, UnknownNameThrows) {
  EXPECT_THROW(choose_simulator(labs_terms(4), "gpu"), std::invalid_argument);
}

TEST(ChooseSimulator, FwhtRejectsXyMixers) {
  EXPECT_THROW(choose_simulator_xyring(labs_terms(4), "fwht"),
               std::invalid_argument);
}

TEST(ChooseSimulator, XyFactoriesSetMixerAndWeight) {
  const TermList terms = labs_terms(6);
  const auto ring = choose_simulator_xyring(terms, "auto", 2);
  const StateVector r = ring->simulate_qaoa(kGammas, kBetas);
  EXPECT_NEAR(r.weight_sector_mass(2), 1.0, 1e-10);
  const auto complete = choose_simulator_xycomplete(terms, "auto", 4);
  const StateVector c = complete->simulate_qaoa(kGammas, kBetas);
  EXPECT_NEAR(c.weight_sector_mass(4), 1.0, 1e-10);
}

}  // namespace
}  // namespace qokit
