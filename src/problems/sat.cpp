#include "problems/sat.hpp"

#include <stdexcept>

#include "common/bitops.hpp"
#include "common/rng.hpp"

namespace qokit {

int SatInstance::violated(std::uint64_t x) const {
  int count = 0;
  for (const Clause& c : clauses) {
    bool sat = false;
    for (std::size_t j = 0; j < c.vars.size(); ++j) {
      const bool val = test_bit(x, c.vars[j]);
      if (val != c.negated[j]) {
        sat = true;
        break;
      }
    }
    if (!sat) ++count;
  }
  return count;
}

bool SatInstance::satisfiable_brute_force() const {
  if (num_vars > 26)
    throw std::invalid_argument("satisfiable_brute_force: n too large");
  for (std::uint64_t x = 0; x < dim_of(num_vars); ++x)
    if (violated(x) == 0) return true;
  return false;
}

SatInstance random_ksat(int n, int k, int m, std::uint64_t seed) {
  if (k > n || k < 1) throw std::invalid_argument("random_ksat: bad k");
  Rng rng(seed);
  SatInstance inst;
  inst.num_vars = n;
  inst.clauses.reserve(m);
  for (int c = 0; c < m; ++c) {
    Clause cl;
    // Sample k distinct variables by partial Fisher-Yates over [0, n).
    std::vector<int> pool(n);
    for (int i = 0; i < n; ++i) pool[i] = i;
    for (int j = 0; j < k; ++j) {
      const std::size_t pick = j + rng.uniform_int(n - j);
      std::swap(pool[j], pool[pick]);
      cl.vars.push_back(pool[j]);
      cl.negated.push_back(rng.bernoulli(0.5));
    }
    inst.clauses.push_back(std::move(cl));
  }
  return inst;
}

TermList sat_terms(const SatInstance& inst) {
  TermList t(inst.num_vars, {});
  for (const Clause& c : inst.clauses) {
    const int k = static_cast<int>(c.vars.size());
    const double scale = 1.0 / static_cast<double>(1ull << k);
    // Clause violated iff every literal is false. With bit=1 -> spin -1,
    // literal j is false iff sigma_j * s_{v_j} = +1 where sigma_j = +1 for a
    // positive literal and -1 for a negated one. Hence
    //   violated = prod_j (1 + sigma_j s_{v_j}) / 2
    //            = 2^{-k} sum_{S subset [k]} prod_{j in S} sigma_j s_{v_j}.
    for (std::uint64_t sub = 0; sub < dim_of(k); ++sub) {
      double w = scale;
      std::uint64_t mask = 0;
      for (int j = 0; j < k; ++j) {
        if (!test_bit(sub, j)) continue;
        w *= c.negated[j] ? -1.0 : 1.0;
        mask ^= 1ull << c.vars[j];
      }
      t.add_mask(w, mask);
    }
  }
  return t.canonicalize(1e-15);
}

}  // namespace qokit
