#include "problems/maxcut.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/bitops.hpp"

namespace qokit {

TermList maxcut_terms(const Graph& g) {
  TermList t = maxcut_terms_no_offset(g);
  double total = 0.0;
  for (const Edge& e : g.edges()) total += e.w;
  t.add_mask(-total / 2.0, 0);
  return t.canonicalize();
}

TermList maxcut_terms_no_offset(const Graph& g) {
  TermList t(g.num_vertices(), {});
  for (const Edge& e : g.edges()) t.add(e.w / 2.0, {e.u, e.v});
  return t.canonicalize();
}

double maxcut_brute_force(const Graph& g) {
  const int n = g.num_vertices();
  if (n > 28) throw std::invalid_argument("maxcut_brute_force: n too large");
  double best = 0.0;
  for (std::uint64_t x = 0; x < dim_of(n); ++x)
    best = std::max(best, g.cut_value(x));
  return best;
}

}  // namespace qokit
