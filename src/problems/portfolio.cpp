#include "problems/portfolio.hpp"

#include <limits>
#include <stdexcept>

#include "common/bitops.hpp"
#include "common/rng.hpp"

namespace qokit {

double PortfolioInstance::value(std::uint64_t x) const {
  double risk = 0.0;
  for (int i = 0; i < n; ++i) {
    if (!test_bit(x, i)) continue;
    for (int j = 0; j < n; ++j)
      if (test_bit(x, j)) risk += cov[static_cast<std::size_t>(i) * n + j];
  }
  double ret = 0.0;
  for (int i = 0; i < n; ++i)
    if (test_bit(x, i)) ret += mu[i];
  return q * risk - ret;
}

double PortfolioInstance::brute_force_best(std::uint64_t* argmin) const {
  if (n > 26) throw std::invalid_argument("brute_force_best: n too large");
  double best = std::numeric_limits<double>::infinity();
  for (std::uint64_t x = 0; x < dim_of(n); ++x) {
    if (popcount(x) != budget) continue;
    const double v = value(x);
    if (v < best) {
      best = v;
      if (argmin) *argmin = x;
    }
  }
  return best;
}

PortfolioInstance random_portfolio(int n, int budget, double q,
                                   std::uint64_t seed) {
  if (budget < 0 || budget > n)
    throw std::invalid_argument("random_portfolio: bad budget");
  Rng rng(seed);
  PortfolioInstance inst;
  inst.n = n;
  inst.budget = budget;
  inst.q = q;
  std::vector<double> a(static_cast<std::size_t>(n) * n);
  for (auto& v : a) v = rng.normal();
  inst.cov.assign(static_cast<std::size_t>(n) * n, 0.0);
  for (int i = 0; i < n; ++i)
    for (int j = 0; j < n; ++j) {
      double dot = 0.0;
      for (int k = 0; k < n; ++k)
        dot += a[static_cast<std::size_t>(i) * n + k] *
               a[static_cast<std::size_t>(j) * n + k];
      inst.cov[static_cast<std::size_t>(i) * n + j] = dot / n;
    }
  inst.mu.resize(n);
  for (auto& v : inst.mu) v = rng.uniform();
  return inst;
}

TermList portfolio_terms(const PortfolioInstance& inst) {
  const int n = inst.n;
  TermList t(n, {});
  // x_i = (1 - s_i) / 2. Diagonal covariance and return are linear in x_i;
  // off-diagonal covariance is quadratic.
  for (int i = 0; i < n; ++i) {
    const double ci =
        inst.q * inst.cov[static_cast<std::size_t>(i) * n + i] - inst.mu[i];
    t.add_mask(ci / 2.0, 0);
    t.add_mask(-ci / 2.0, 1ull << i);
  }
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j) {
      const double a =
          2.0 * inst.q * inst.cov[static_cast<std::size_t>(i) * n + j];
      // x_i x_j = (1 - s_i - s_j + s_i s_j) / 4.
      t.add_mask(a / 4.0, 0);
      t.add_mask(-a / 4.0, 1ull << i);
      t.add_mask(-a / 4.0, 1ull << j);
      t.add_mask(a / 4.0, (1ull << i) | (1ull << j));
    }
  return t.canonicalize(1e-15);
}

}  // namespace qokit
