// MaxCut cost polynomial (paper Sec. II):
//
//   f(s) = sum_{(i,j) in E} w_ij/2 * s_i s_j  -  (sum w_ij)/2  =  -cut(x),
//
// so minimizing f maximizes the cut and the QAOA expectation <C> relates to
// the expected cut by <cut> = -<C>.
#pragma once

#include <cstdint>

#include "problems/graph.hpp"
#include "terms/term.hpp"

namespace qokit {

/// Cost terms for MaxCut on `g`, including the constant offset term so the
/// spectrum equals -cut exactly.
TermList maxcut_terms(const Graph& g);

/// Cost terms without the constant offset (spectrum shifted by +W/2); some
/// frameworks optimize this shifted form, the argmin is unchanged.
TermList maxcut_terms_no_offset(const Graph& g);

/// Exhaustive maximum cut weight; O(2^n * |E|). For tests and small n.
double maxcut_brute_force(const Graph& g);

}  // namespace qokit
