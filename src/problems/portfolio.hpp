// Mean-variance portfolio optimization, the third problem family QOKit
// ships one-line methods for (paper Sec. IV). Select exactly K of n assets
// minimizing  f(x) = q * x^T Cov x - mu^T x  over x in {0,1}^n with
// |x| = K. The budget constraint is enforced natively by the
// Hamming-weight-preserving xy mixers started from a Dicke state, which is
// exactly the use case the paper's SU(4) mixer extension targets.
#pragma once

#include <cstdint>
#include <vector>

#include "terms/term.hpp"

namespace qokit {

/// A sampled mean-variance instance.
struct PortfolioInstance {
  int n = 0;           ///< number of assets
  int budget = 0;      ///< required portfolio size K
  double q = 0.5;      ///< risk aversion
  std::vector<double> mu;   ///< expected returns, size n
  std::vector<double> cov;  ///< row-major n x n covariance (SPD)

  /// Objective value for selection `x` (bit i = 1 means asset i held).
  double value(std::uint64_t x) const;

  /// Best objective over all |x| = budget selections (exhaustive; small n).
  double brute_force_best(std::uint64_t* argmin = nullptr) const;
};

/// Random instance: Cov = A A^T / n with standard-normal A (SPD by
/// construction), mu uniform in [0, 1].
PortfolioInstance random_portfolio(int n, int budget, double q,
                                   std::uint64_t seed);

/// Spin polynomial whose spectrum equals instance.value on every basis
/// state (including infeasible Hamming weights; the xy mixer never reaches
/// those when started in-sector).
TermList portfolio_terms(const PortfolioInstance& inst);

}  // namespace qokit
