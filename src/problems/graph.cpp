#include "problems/graph.hpp"

#include <algorithm>
#include <set>
#include <stdexcept>
#include <utility>

#include "common/bitops.hpp"
#include "common/rng.hpp"

namespace qokit {

Graph::Graph(int n, std::vector<Edge> edges) : n_(n), edges_(std::move(edges)) {
  if (n < 0) throw std::invalid_argument("Graph: negative vertex count");
  std::set<std::pair<int, int>> seen;
  for (Edge& e : edges_) {
    if (e.u > e.v) std::swap(e.u, e.v);
    if (e.u < 0 || e.v >= n) throw std::invalid_argument("Graph: bad endpoint");
    if (e.u == e.v) throw std::invalid_argument("Graph: self-loop");
    if (!seen.insert({e.u, e.v}).second)
      throw std::invalid_argument("Graph: duplicate edge");
  }
}

Graph Graph::random_regular(int n, int d, std::uint64_t seed) {
  if (d >= n || (static_cast<long long>(n) * d) % 2 != 0)
    throw std::invalid_argument("random_regular: need d < n and n*d even");
  Rng rng(seed);
  // Configuration model: pair up n*d stubs, reject non-simple outcomes.
  for (int attempt = 0; attempt < 10000; ++attempt) {
    std::vector<int> stubs;
    stubs.reserve(static_cast<std::size_t>(n) * d);
    for (int v = 0; v < n; ++v)
      for (int k = 0; k < d; ++k) stubs.push_back(v);
    rng.shuffle(stubs);
    std::set<std::pair<int, int>> seen;
    std::vector<Edge> edges;
    bool ok = true;
    for (std::size_t i = 0; i + 1 < stubs.size(); i += 2) {
      int u = stubs[i], v = stubs[i + 1];
      if (u == v) {
        ok = false;
        break;
      }
      if (u > v) std::swap(u, v);
      if (!seen.insert({u, v}).second) {
        ok = false;
        break;
      }
      edges.push_back({u, v, 1.0});
    }
    if (ok) return Graph(n, std::move(edges));
  }
  throw std::runtime_error("random_regular: failed to sample a simple graph");
}

Graph Graph::erdos_renyi(int n, double p_edge, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Edge> edges;
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v)
      if (rng.bernoulli(p_edge)) edges.push_back({u, v, 1.0});
  return Graph(n, std::move(edges));
}

Graph Graph::complete(int n, double w) {
  std::vector<Edge> edges;
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v) edges.push_back({u, v, w});
  return Graph(n, std::move(edges));
}

Graph Graph::ring(int n) {
  if (n < 3) throw std::invalid_argument("ring: need n >= 3");
  std::vector<Edge> edges;
  for (int v = 0; v < n; ++v) edges.push_back({std::min(v, (v + 1) % n),
                                               std::max(v, (v + 1) % n), 1.0});
  // Normalize: constructor sorts endpoints; duplicates impossible for n >= 3.
  return Graph(n, std::move(edges));
}

int Graph::degree(int v) const {
  int d = 0;
  for (const Edge& e : edges_)
    if (e.u == v || e.v == v) ++d;
  return d;
}

bool Graph::is_regular(int d) const {
  for (int v = 0; v < n_; ++v)
    if (degree(v) != d) return false;
  return true;
}

double Graph::cut_value(std::uint64_t x) const noexcept {
  double cut = 0.0;
  for (const Edge& e : edges_)
    if (test_bit(x, e.u) != test_bit(x, e.v)) cut += e.w;
  return cut;
}

}  // namespace qokit
