// Sherrington-Kirkpatrick spin glass: the standard dense-quadratic QAOA
// benchmark complementing sparse MaxCut and high-order LABS.
//
//     f(s) = (1/sqrt(n)) * sum_{i<j} J_ij s_i s_j,   J_ij in {-1, +1}.
//
// All C(n, 2) pairs carry a coupling, so the phase-operator circuit is
// dense even at order 2 -- a different stressor for gate-based baselines
// than LABS' high-order terms.
#pragma once

#include <cstdint>

#include "terms/term.hpp"

namespace qokit {

/// Random SK instance with Rademacher couplings J_ij = +-1 scaled by
/// 1/sqrt(n).
TermList sk_terms(int n, std::uint64_t seed);

/// Exhaustive minimum of f; O(2^{n-1}) using the flip symmetry.
double sk_brute_force(const TermList& terms);

}  // namespace qokit
