// Random k-SAT, the workload motivating high-depth QAOA in the paper's
// introduction (Boulebnane & Montanaro observe speedup only for p >~ 14 on
// random 8-SAT). The cost function counts violated clauses; each clause
// expands into 2^k multilinear spin terms, so k-SAT exercises the
// higher-order-term path of the precomputation kernel.
#pragma once

#include <cstdint>
#include <vector>

#include "terms/term.hpp"

namespace qokit {

/// One clause: k literals, each a variable index plus a negation flag.
struct Clause {
  std::vector<int> vars;
  std::vector<bool> negated;  ///< negated[j] applies to vars[j]
};

/// A k-SAT instance on n boolean variables.
struct SatInstance {
  int num_vars = 0;
  std::vector<Clause> clauses;

  /// Number of clauses violated by assignment `x` (bit i = 1 means variable
  /// i is true).
  int violated(std::uint64_t x) const;

  /// True if some assignment satisfies all clauses (exhaustive; small n).
  bool satisfiable_brute_force() const;
};

/// Uniform random k-SAT: m clauses over n variables, each with k distinct
/// variables and independent random polarities.
SatInstance random_ksat(int n, int k, int m, std::uint64_t seed);

/// Cost polynomial whose value on every basis state equals the number of
/// violated clauses. Each clause contributes 2^k terms of weight +-2^{-k}.
TermList sat_terms(const SatInstance& inst);

}  // namespace qokit
