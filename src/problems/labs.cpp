#include "problems/labs.hpp"

#include <algorithm>
#include <array>
#include <stdexcept>

#include "common/bitops.hpp"

namespace qokit {

int labs_autocorrelation(std::uint64_t x, int n, int k) {
  int c = 0;
  for (int i = 0; i + k < n; ++i)
    c += spin_of_bit(x, i) * spin_of_bit(x, i + k);
  return c;
}

double labs_energy(std::uint64_t x, int n) {
  double e = 0.0;
  for (int k = 1; k < n; ++k) {
    const double c = labs_autocorrelation(x, n, k);
    e += c * c;
  }
  return e;
}

double labs_merit_factor(std::uint64_t x, int n) {
  const double e = labs_energy(x, n);
  return static_cast<double>(n) * n / (2.0 * e);
}

TermList labs_terms(int n) {
  TermList t = labs_terms_no_offset(n);
  // sum_{k=1}^{n-1} (n - k) diagonal contributions of C_k^2.
  t.add_mask(static_cast<double>(n) * (n - 1) / 2.0, 0);
  return t.canonicalize();
}

TermList labs_terms_no_offset(int n) {
  if (n < 1 || n > 63) throw std::invalid_argument("labs_terms: bad n");
  TermList t(n, {});
  // E(s) = sum_k [ (n-k) + sum_{i != j} s_i s_{i+k} s_j s_{j+k} ]
  //      = const + 2 sum_k sum_{i<j} s_i s_{i+k} s_j s_{j+k}.
  // Masks compose by XOR, so the j = i + k collision (which collapses the
  // product to s_i s_{i+2k}) is handled without special-casing.
  for (int k = 1; k < n; ++k) {
    for (int i = 0; i + k < n; ++i) {
      for (int j = i + 1; j + k < n; ++j) {
        const std::uint64_t mask = (1ull << i) ^ (1ull << (i + k)) ^
                                   (1ull << j) ^ (1ull << (j + k));
        t.add_mask(2.0, mask);
      }
    }
  }
  return t.canonicalize();
}

int labs_known_optimum(int n) {
  // Minimum sidelobe energies from exhaustive search (Mertens;
  // Packebusch & Mertens 2016). Entries for n <= 16 are re-checked against
  // labs_brute_force in tests; larger entries are literature values.
  static constexpr std::array<int, 41> kOpt = {
      -1,                                          // n = 0 (undefined)
      0,  1,  1,  2,  2,  7,  3,  8,  12, 13,      // 1..10
      5,  10, 6,  19, 15, 24, 32, 25, 29, 26,      // 11..20
      26, 39, 47, 36, 36, 45, 37, 50, 62, 59,      // 21..30
      67, 64, 64, 65, 73, 82, 86, 87, 99, 108};    // 31..40
  if (n < 1 || n > 40) return -1;
  return kOpt[static_cast<std::size_t>(n)];
}

int labs_brute_force(int n) {
  if (n < 1 || n > 30) throw std::invalid_argument("labs_brute_force: bad n");
  double best = 1e300;
  // E(s) = E(-s): fixing the last spin halves the search space.
  for (std::uint64_t x = 0; x < dim_of(n - 1 > 0 ? n - 1 : 0); ++x)
    best = std::min(best, labs_energy(x, n));
  return static_cast<int>(best);
}

}  // namespace qokit
