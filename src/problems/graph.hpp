// Undirected weighted graphs and the random generators used by the paper's
// benchmarks (random d-regular for Fig. 2, complete graphs for Listing 1,
// rings / complete graphs for the xy mixers).
#pragma once

#include <cstdint>
#include <vector>

namespace qokit {

/// Undirected weighted edge with u < v.
struct Edge {
  int u = 0;
  int v = 0;
  double w = 1.0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Simple undirected graph (no self-loops, no multi-edges).
class Graph {
 public:
  Graph() = default;

  /// Graph on `n` vertices with the given edges. Edges are normalized to
  /// u < v; duplicate or self-loop edges throw.
  Graph(int n, std::vector<Edge> edges);

  /// Uniform-ish random d-regular graph via the configuration model with
  /// rejection (retry until simple). Requires n*d even, d < n.
  static Graph random_regular(int n, int d, std::uint64_t seed);

  /// Erdos-Renyi G(n, p_edge).
  static Graph erdos_renyi(int n, double p_edge, std::uint64_t seed);

  /// Complete graph with uniform edge weight `w` (Listing 1's all-to-all).
  static Graph complete(int n, double w = 1.0);

  /// Cycle 0-1-...-(n-1)-0 (the xy-ring mixer topology).
  static Graph ring(int n);

  int num_vertices() const noexcept { return n_; }
  std::size_t num_edges() const noexcept { return edges_.size(); }
  const std::vector<Edge>& edges() const noexcept { return edges_; }

  /// Degree of vertex v.
  int degree(int v) const;

  /// True if every vertex has degree d.
  bool is_regular(int d) const;

  /// Total weight of edges cut by the bit assignment `x` (vertex v on the
  /// side given by bit v).
  double cut_value(std::uint64_t x) const noexcept;

 private:
  int n_ = 0;
  std::vector<Edge> edges_;
};

}  // namespace qokit
