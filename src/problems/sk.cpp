#include "problems/sk.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/bitops.hpp"
#include "common/rng.hpp"

namespace qokit {

TermList sk_terms(int n, std::uint64_t seed) {
  if (n < 2) throw std::invalid_argument("sk_terms: need n >= 2");
  Rng rng(seed);
  TermList t(n, {});
  const double scale = 1.0 / std::sqrt(static_cast<double>(n));
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j)
      t.add(rng.bernoulli(0.5) ? scale : -scale, {i, j});
  return t.canonicalize();
}

double sk_brute_force(const TermList& terms) {
  const int n = terms.num_qubits();
  if (n > 28) throw std::invalid_argument("sk_brute_force: n too large");
  double best = 1e300;
  // f(x) = f(~x): fixing the top spin halves the search.
  for (std::uint64_t x = 0; x < dim_of(n - 1); ++x)
    best = std::min(best, terms.evaluate(x));
  return best;
}

}  // namespace qokit
