// Low Autocorrelation Binary Sequences (LABS), the paper's flagship
// workload (Figs. 3-5). For a spin sequence s in {-1,+1}^n the aperiodic
// autocorrelations are C_k(s) = sum_{i=0}^{n-k-1} s_i s_{i+k} and the
// sidelobe energy is
//
//     E(s) = sum_{k=1}^{n-1} C_k(s)^2 .
//
// Expanding the square yields the 4- and 2-order spin terms given in Sec. II
// of the paper plus the constant n(n-1)/2; index collisions (j = i + k)
// reduce 4-order products to 2-order ones, which the XOR-mask composition in
// TermList handles exactly. LABS is hard for classical solvers and its dense,
// high-order term set is what makes gate-based QAOA simulation expensive.
#pragma once

#include <cstdint>

#include "terms/term.hpp"

namespace qokit {

/// Sidelobe energy E(s) computed directly from the definition, O(n^2).
double labs_energy(std::uint64_t x, int n);

/// Autocorrelation C_k(s) for the bit assignment `x`.
int labs_autocorrelation(std::uint64_t x, int n, int k);

/// Merit factor F(s) = n^2 / (2 E(s)).
double labs_merit_factor(std::uint64_t x, int n);

/// Cost terms whose spectrum equals E(s) exactly (constant included).
/// This is the C++ analogue of qokit.labs.get_terms(n) in Listing 2.
TermList labs_terms(int n);

/// Cost terms without the constant n(n-1)/2 (the form printed in the paper).
TermList labs_terms_no_offset(int n);

/// Optimal (minimum) sidelobe energy from the published exhaustive-search
/// literature, available for n in [1, 40]; returns -1 outside the table.
/// Values for n <= 16 are re-verified by brute force in the test suite.
int labs_known_optimum(int n);

/// Exhaustive minimum of E(s); O(2^{n-1} n^2) using the s -> -s symmetry.
int labs_brute_force(int n);

}  // namespace qokit
