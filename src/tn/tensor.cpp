#include "tn/tensor.hpp"

#include <algorithm>
#include <stdexcept>

namespace qokit {
namespace tn {

int Tensor::find_label(int label) const noexcept {
  for (int j = 0; j < rank(); ++j)
    if (labels[j] == label) return j;
  return -1;
}

Tensor permute(const Tensor& t, const std::vector<int>& new_order) {
  if (new_order.size() != t.labels.size())
    throw std::invalid_argument("permute: order size mismatch");
  std::vector<int> src_pos(new_order.size());
  for (std::size_t j = 0; j < new_order.size(); ++j) {
    const int p = t.find_label(new_order[j]);
    if (p < 0) throw std::invalid_argument("permute: unknown label");
    src_pos[j] = p;
  }
  Tensor out;
  out.labels = new_order;
  out.data.resize(t.data.size());
  const int r = t.rank();
  for (std::uint64_t idx = 0; idx < out.data.size(); ++idx) {
    std::uint64_t src = 0;
    for (int j = 0; j < r; ++j)
      src |= ((idx >> j) & 1ull) << src_pos[j];
    out.data[idx] = t.data[src];
  }
  return out;
}

Tensor contract_pair(const Tensor& a, const Tensor& b) {
  // Split labels into shared and free.
  std::vector<int> shared, free_a, free_b;
  for (int la : a.labels)
    (b.find_label(la) >= 0 ? shared : free_a).push_back(la);
  for (int lb : b.labels)
    if (a.find_label(lb) < 0) free_b.push_back(lb);

  // Layouts: A' = [free_a..., shared...], B' = [shared..., free_b...].
  std::vector<int> order_a = free_a;
  order_a.insert(order_a.end(), shared.begin(), shared.end());
  std::vector<int> order_b = shared;
  order_b.insert(order_b.end(), free_b.begin(), free_b.end());
  const Tensor pa = permute(a, order_a);
  const Tensor pb = permute(b, order_b);

  const std::uint64_t na = 1ull << free_a.size();
  const std::uint64_t ns = 1ull << shared.size();
  const std::uint64_t nb = 1ull << free_b.size();

  Tensor out;
  out.labels = free_a;
  out.labels.insert(out.labels.end(), free_b.begin(), free_b.end());
  out.data.assign(na * nb, cdouble(0.0, 0.0));
  // C[fa, fb] = sum_s A'[fa + (s << |Fa|)] * B'[s + (fb << |S|)].
  for (std::uint64_t fb = 0; fb < nb; ++fb)
    for (std::uint64_t s = 0; s < ns; ++s) {
      const cdouble bv = pb.data[s + (fb << shared.size())];
      if (bv == cdouble(0.0, 0.0)) continue;
      const cdouble* arow = pa.data.data() + (s << free_a.size());
      cdouble* crow = out.data.data() + (fb << free_a.size());
      for (std::uint64_t fa = 0; fa < na; ++fa) crow[fa] += arow[fa] * bv;
    }
  return out;
}

cdouble scalar_value(const Tensor& t) {
  if (t.rank() != 0) throw std::invalid_argument("scalar_value: rank != 0");
  return t.data[0];
}

}  // namespace tn
}  // namespace qokit
