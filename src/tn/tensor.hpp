// Dense labeled tensors over 2-dimensional indices -- the minimal core of
// a tensor-network simulator (the cuTensorNet / QTensor comparator class
// of paper Fig. 3). Every index (label) in a circuit-derived network is
// shared by exactly two tensors, so pairwise contraction over shared
// labels is the only primitive needed.
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "statevector/state.hpp"

namespace qokit {
namespace tn {

/// Dense tensor; index j of the flat offset corresponds to labels[j]
/// (labels[0] is the least-significant bit).
struct Tensor {
  std::vector<int> labels;
  std::vector<cdouble> data;

  int rank() const noexcept { return static_cast<int>(labels.size()); }
  std::uint64_t size() const noexcept { return 1ull << labels.size(); }

  /// Position of `label` in labels, or -1.
  int find_label(int label) const noexcept;
};

/// Reorder tensor indices to `new_order` (a permutation of t.labels).
Tensor permute(const Tensor& t, const std::vector<int>& new_order);

/// Contract over all shared labels (each assumed to appear once per
/// tensor). Result labels: a's free labels then b's free labels.
Tensor contract_pair(const Tensor& a, const Tensor& b);

/// Value of a rank-0 tensor.
cdouble scalar_value(const Tensor& t);

}  // namespace tn
}  // namespace qokit
