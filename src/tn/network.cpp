#include "tn/network.hpp"

#include <cmath>
#include <stdexcept>

#include "common/bitops.hpp"

namespace qokit {
namespace tn {
namespace {

constexpr double kInvSqrt2 = 0.70710678118654752440;

/// Rank-2 tensor of a 1-qubit gate: labels [in, out],
/// data[b_in + 2 b_out] = M[b_out][b_in].
Tensor tensor_1q(const std::array<cdouble, 4>& m, int in, int out) {
  Tensor t;
  t.labels = {in, out};
  t.data.resize(4);
  for (int r = 0; r < 2; ++r)
    for (int c = 0; c < 2; ++c) t.data[c + 2 * r] = m[r * 2 + c];
  return t;
}

/// Rank-4 tensor of a 2-qubit gate with matrix convention
/// row/col = b_q0 + 2 b_q1: labels [in0, in1, out0, out1].
Tensor tensor_2q(const std::array<cdouble, 16>& m, int in0, int in1, int out0,
                 int out1) {
  Tensor t;
  t.labels = {in0, in1, out0, out1};
  t.data.resize(16);
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c) t.data[c + 4 * r] = m[r * 4 + c];
  return t;
}

std::array<cdouble, 4> matrix_h() {
  return {cdouble(kInvSqrt2), cdouble(kInvSqrt2), cdouble(kInvSqrt2),
          cdouble(-kInvSqrt2)};
}

std::array<cdouble, 4> matrix_rx(double theta) {
  const double c = std::cos(theta / 2), s = std::sin(theta / 2);
  return {cdouble(c), cdouble(0, -s), cdouble(0, -s), cdouble(c)};
}

std::array<cdouble, 4> matrix_ry(double theta) {
  const double c = std::cos(theta / 2), s = std::sin(theta / 2);
  return {cdouble(c), cdouble(-s), cdouble(s), cdouble(c)};
}

std::array<cdouble, 16> matrix_cz() {
  std::array<cdouble, 16> m{};
  for (int in = 0; in < 4; ++in)
    m[in * 4 + in] = in == 3 ? cdouble(-1.0) : cdouble(1.0);
  return m;
}

std::array<cdouble, 16> matrix_swap() {
  std::array<cdouble, 16> m{};
  for (int in = 0; in < 4; ++in) {
    const int out = ((in & 1) << 1) | ((in >> 1) & 1);
    m[out * 4 + in] = cdouble(1.0);
  }
  return m;
}

std::array<cdouble, 16> matrix_cx() {
  std::array<cdouble, 16> m{};
  for (int in = 0; in < 4; ++in) {
    const int b0 = in & 1, b1 = (in >> 1) & 1;
    m[(b0 | ((b1 ^ b0) << 1)) * 4 + in] = cdouble(1.0);
  }
  return m;
}

std::array<cdouble, 16> matrix_xy(double theta) {
  const double c = std::cos(theta / 2), s = std::sin(theta / 2);
  std::array<cdouble, 16> m{};
  m[0] = cdouble(1.0);
  m[15] = cdouble(1.0);
  m[1 * 4 + 1] = cdouble(c);
  m[1 * 4 + 2] = cdouble(0, -s);
  m[2 * 4 + 1] = cdouble(0, -s);
  m[2 * 4 + 2] = cdouble(c);
  return m;
}

}  // namespace

Network build_amplitude_network(const Circuit& c, std::uint64_t out_bits,
                                bool plus_input) {
  const int n = c.num_qubits();
  Network net;
  int next_label = 0;
  std::vector<int> wire(n);

  // Input caps.
  for (int q = 0; q < n; ++q) {
    wire[q] = next_label++;
    Tensor t;
    t.labels = {wire[q]};
    t.data = plus_input
                 ? std::vector<cdouble>{cdouble(kInvSqrt2), cdouble(kInvSqrt2)}
                 : std::vector<cdouble>{cdouble(1.0), cdouble(0.0)};
    net.tensors.push_back(std::move(t));
  }

  for (const Gate& g : c.gates()) {
    switch (g.kind) {
      case GateKind::H: {
        const int out = next_label++;
        net.tensors.push_back(tensor_1q(matrix_h(), wire[g.q0], out));
        wire[g.q0] = out;
        break;
      }
      case GateKind::RX: {
        const int out = next_label++;
        net.tensors.push_back(tensor_1q(matrix_rx(g.param), wire[g.q0], out));
        wire[g.q0] = out;
        break;
      }
      case GateKind::RY: {
        const int out = next_label++;
        net.tensors.push_back(tensor_1q(matrix_ry(g.param), wire[g.q0], out));
        wire[g.q0] = out;
        break;
      }
      case GateKind::CZ: {
        const int o0 = next_label++, o1 = next_label++;
        net.tensors.push_back(
            tensor_2q(matrix_cz(), wire[g.q0], wire[g.q1], o0, o1));
        wire[g.q0] = o0;
        wire[g.q1] = o1;
        break;
      }
      case GateKind::SWAP: {
        const int o0 = next_label++, o1 = next_label++;
        net.tensors.push_back(
            tensor_2q(matrix_swap(), wire[g.q0], wire[g.q1], o0, o1));
        wire[g.q0] = o0;
        wire[g.q1] = o1;
        break;
      }
      case GateKind::U1: {
        const int out = next_label++;
        net.tensors.push_back(tensor_1q(g.m1, wire[g.q0], out));
        wire[g.q0] = out;
        break;
      }
      case GateKind::CX: {
        const int o0 = next_label++, o1 = next_label++;
        net.tensors.push_back(
            tensor_2q(matrix_cx(), wire[g.q0], wire[g.q1], o0, o1));
        wire[g.q0] = o0;
        wire[g.q1] = o1;
        break;
      }
      case GateKind::XY: {
        const int o0 = next_label++, o1 = next_label++;
        net.tensors.push_back(
            tensor_2q(matrix_xy(g.param), wire[g.q0], wire[g.q1], o0, o1));
        wire[g.q0] = o0;
        wire[g.q1] = o1;
        break;
      }
      case GateKind::U2: {
        const int o0 = next_label++, o1 = next_label++;
        net.tensors.push_back(
            tensor_2q(g.m2, wire[g.q0], wire[g.q1], o0, o1));
        wire[g.q0] = o0;
        wire[g.q1] = o1;
        break;
      }
      case GateKind::RZ:
      case GateKind::ZPhase: {
        // Rank-2k diagonal tensor over the masked qubits.
        std::vector<int> qs;
        for (int q = 0; q < n; ++q)
          if (test_bit(g.zmask, q)) qs.push_back(q);
        const int k = static_cast<int>(qs.size());
        Tensor t;
        t.labels.reserve(2 * k);
        for (int j = 0; j < k; ++j) t.labels.push_back(wire[qs[j]]);
        for (int j = 0; j < k; ++j) {
          const int out = next_label++;
          t.labels.push_back(out);
          wire[qs[j]] = out;
        }
        t.data.assign(1ull << (2 * k), cdouble(0.0, 0.0));
        const cdouble even(std::cos(g.param / 2), -std::sin(g.param / 2));
        const cdouble odd = std::conj(even);
        for (std::uint64_t in = 0; in < dim_of(k); ++in) {
          const std::uint64_t idx = in | (in << k);  // diagonal entry
          t.data[idx] = parity(in) ? odd : even;
        }
        net.tensors.push_back(std::move(t));
        break;
      }
    }
  }

  // Output caps <b|.
  for (int q = 0; q < n; ++q) {
    Tensor t;
    t.labels = {wire[q]};
    t.data = test_bit(out_bits, q)
                 ? std::vector<cdouble>{cdouble(0.0), cdouble(1.0)}
                 : std::vector<cdouble>{cdouble(1.0), cdouble(0.0)};
    net.tensors.push_back(std::move(t));
  }
  return net;
}

}  // namespace tn
}  // namespace qokit
