// Greedy contraction-order search and execution.
//
// Order search mirrors the standard greedy heuristic (pick the pair whose
// contraction yields the smallest intermediate); the reported max
// intermediate rank is the "contraction width" of paper Sec. V-A, which
// for deep QAOA circuits grows to n and is why TN baselines lose to
// state-vector simulation there.
#pragma once

#include <cstdint>

#include "gatesim/circuit.hpp"
#include "tn/network.hpp"

namespace qokit {
namespace tn {

/// Telemetry from a full contraction.
struct ContractionStats {
  int max_rank = 0;           ///< largest intermediate tensor rank (width)
  std::uint64_t flops = 0;    ///< summed 2^{rank(a)+rank(b)-|shared|} costs
  int contractions = 0;
};

/// Contract a closed network down to its scalar value.
cdouble contract_network(Network net, ContractionStats* stats = nullptr);

/// Amplitude <out_bits| C |in> via network contraction.
cdouble amplitude(const Circuit& c, std::uint64_t out_bits,
                  bool plus_input = false, ContractionStats* stats = nullptr);

/// Memory-bounded contraction via index slicing, the standard big-TN
/// technique (used by the cuTensorNet/QTensor class of simulators): fix
/// the values of `num_sliced` high-degree labels, contract each of the
/// 2^num_sliced restricted networks independently, and sum. Peak memory
/// drops by ~2^num_sliced at the cost of redundant work; the slices are
/// embarrassingly parallel (each OpenMP task contracts one).
cdouble amplitude_sliced(const Circuit& c, std::uint64_t out_bits,
                         int num_sliced, bool plus_input = false,
                         ContractionStats* stats = nullptr);

}  // namespace tn
}  // namespace qokit
