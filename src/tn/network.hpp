// Circuit -> tensor network builder for single-amplitude evaluation
// <x | U_circuit | in>, the quantity the paper times for its tensor-network
// baselines ("running calculation of a single probability amplitude ...
// and dividing the total contraction time by p", Sec. V-A).
//
// Every gate becomes a tensor with fresh output labels, so each label
// appears in exactly two tensors (an ordinary edge) and pairwise
// contraction is complete. A k-local ZPhase becomes a rank-2k diagonal
// tensor; deep QAOA phase layers therefore stack many high-order diagonal
// tensors per wire, which is exactly what drives the contraction width
// toward n and makes TN methods lose on deep circuits (paper Sec. V-A).
#pragma once

#include <cstdint>
#include <vector>

#include "gatesim/circuit.hpp"
#include "tn/tensor.hpp"

namespace qokit {
namespace tn {

/// A closed (scalar-valued) tensor network.
struct Network {
  std::vector<Tensor> tensors;
};

/// Build the network for amplitude <out_bits | C | in>, where |in> is
/// |+>^n when plus_input is true and |0...0> otherwise. Supports every
/// gate kind of the gatesim module.
Network build_amplitude_network(const Circuit& c, std::uint64_t out_bits,
                                bool plus_input = false);

}  // namespace tn
}  // namespace qokit
