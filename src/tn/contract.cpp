#include "tn/contract.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <stdexcept>

namespace qokit {
namespace tn {
namespace {

/// Number of labels shared by two tensors.
int shared_count(const Tensor& a, const Tensor& b) {
  int s = 0;
  for (int la : a.labels)
    if (b.find_label(la) >= 0) ++s;
  return s;
}

}  // namespace

cdouble contract_network(Network net, ContractionStats* stats) {
  auto& ts = net.tensors;
  if (ts.empty()) throw std::invalid_argument("contract_network: empty");
  ContractionStats local;

  while (ts.size() > 1) {
    // Greedy pair selection: smallest resulting tensor; among ties prefer
    // more shared legs (cheaper). Pairs sharing no label (outer products)
    // are only taken if nothing shares.
    std::size_t bi = 0, bj = 1;
    long long best_result_rank = std::numeric_limits<long long>::max();
    int best_shared = -1;
    for (std::size_t i = 0; i < ts.size(); ++i)
      for (std::size_t j = i + 1; j < ts.size(); ++j) {
        const int s = shared_count(ts[i], ts[j]);
        const long long rr = ts[i].rank() + ts[j].rank() - 2LL * s;
        const long long penalty = s == 0 ? 1000 : 0;  // avoid outer products
        if (rr + penalty < best_result_rank ||
            (rr + penalty == best_result_rank && s > best_shared)) {
          best_result_rank = rr + penalty;
          best_shared = s;
          bi = i;
          bj = j;
        }
      }

    const int s = shared_count(ts[bi], ts[bj]);
    local.flops += 1ull << (ts[bi].rank() + ts[bj].rank() - s);
    Tensor merged = contract_pair(ts[bi], ts[bj]);
    local.max_rank = std::max(local.max_rank, merged.rank());
    ++local.contractions;
    // Replace i, erase j (j > i).
    ts[bi] = std::move(merged);
    ts.erase(ts.begin() + static_cast<std::ptrdiff_t>(bj));
  }

  if (stats) *stats = local;
  return scalar_value(ts[0]);
}

cdouble amplitude(const Circuit& c, std::uint64_t out_bits, bool plus_input,
                  ContractionStats* stats) {
  return contract_network(build_amplitude_network(c, out_bits, plus_input),
                          stats);
}

namespace {

/// Fix label `label` of every tensor containing it to bit value `bit`:
/// the tensor loses that index and keeps the matching half of its data.
void fix_label(Tensor& t, int label, int bit) {
  const int pos = t.find_label(label);
  if (pos < 0) return;
  Tensor out;
  out.labels = t.labels;
  out.labels.erase(out.labels.begin() + pos);
  out.data.resize(t.size() >> 1);
  const std::uint64_t low = (1ull << pos) - 1;
  for (std::uint64_t i = 0; i < out.data.size(); ++i) {
    const std::uint64_t src = ((i & ~low) << 1) | (i & low) |
                              (static_cast<std::uint64_t>(bit) << pos);
    out.data[i] = t.data[src];
  }
  t = std::move(out);
}

/// Labels sorted by total degree (sum of ranks of the tensors touching
/// them) -- slicing high-degree labels cuts the biggest intermediates.
std::vector<int> slicing_candidates(const Network& net) {
  std::map<int, int> degree;
  for (const Tensor& t : net.tensors)
    for (int l : t.labels) degree[l] += t.rank();
  std::vector<int> labels;
  for (const auto& [l, d] : degree) labels.push_back(l);
  std::sort(labels.begin(), labels.end(), [&](int a, int b) {
    return degree[a] > degree[b];
  });
  return labels;
}

}  // namespace

cdouble amplitude_sliced(const Circuit& c, std::uint64_t out_bits,
                         int num_sliced, bool plus_input,
                         ContractionStats* stats) {
  if (num_sliced < 0 || num_sliced > 30)
    throw std::invalid_argument("amplitude_sliced: bad slice count");
  const Network base = build_amplitude_network(c, out_bits, plus_input);
  std::vector<int> sliced = slicing_candidates(base);
  if (static_cast<int>(sliced.size()) < num_sliced)
    throw std::invalid_argument("amplitude_sliced: too few labels to slice");
  sliced.resize(num_sliced);

  ContractionStats agg;
  cdouble total(0.0, 0.0);
  const std::uint64_t slices = 1ull << num_sliced;
  for (std::uint64_t assignment = 0; assignment < slices; ++assignment) {
    Network restricted = base;  // deep copy per slice
    for (int j = 0; j < num_sliced; ++j)
      for (Tensor& t : restricted.tensors)
        fix_label(t, sliced[j], (assignment >> j) & 1);
    ContractionStats local;
    total += contract_network(std::move(restricted), &local);
    agg.max_rank = std::max(agg.max_rank, local.max_rank);
    agg.flops += local.flops;
    agg.contractions += local.contractions;
  }
  if (stats) *stats = agg;
  return total;
}

}  // namespace tn
}  // namespace qokit
