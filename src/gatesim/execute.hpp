// Gate-at-a-time state-vector executor -- the baseline execution model.
//
// Two modes:
//  - in-place (default): each gate updates the state vector in place with
//    OpenMP-parallel kernels; stands in for optimized simulators such as
//    Qiskit Aer / cuStateVec-without-precompute.
//  - out-of-place: every gate allocates a fresh output vector and streams
//    the input through full-size temporaries, mimicking "vectorized"
//    NumPy-style simulators (the OpenQAOA baseline of Fig. 2).
#pragma once

#include "common/parallel.hpp"
#include "gatesim/circuit.hpp"
#include "statevector/state.hpp"

namespace qokit {

/// Apply one gate in place.
void apply_gate(StateVector& sv, const Gate& g, Exec exec = Exec::Parallel);

/// Apply one gate out of place (allocates a full temporary).
void apply_gate_out_of_place(StateVector& sv, const Gate& g);

/// Run a whole circuit in place.
void run_circuit(StateVector& sv, const Circuit& c, Exec exec = Exec::Parallel);

/// Run a whole circuit with per-gate temporaries (the slow baseline).
void run_circuit_out_of_place(StateVector& sv, const Circuit& c);

}  // namespace qokit
