// QAOA circuit compiler: polynomial terms -> gate sequence.
//
// This reproduces what standard frameworks (Qiskit et al.) must do before
// simulating QAOA: every phase layer expands each order-m term into a CX
// ladder plus an RZ (2(m-1) + 1 gates), so the per-layer gate count scales
// with |T| -- the overhead the paper's precomputation eliminates. A MultiZ
// style emits one diagonal multi-qubit phase gate per term instead (the
// "diagonal gates" optimization referenced for tensor networks), used by
// the TN builder and as an ablation.
#pragma once

#include <span>

#include "fur/mixers.hpp"
#include "gatesim/circuit.hpp"
#include "terms/term.hpp"

namespace qokit {

/// How the phase operator e^{-i gamma C} is decomposed into gates.
enum class PhaseStyle {
  CxLadder,  ///< CX chain + RZ + reversed chain per term (Qiskit-style)
  MultiZ,    ///< one ZPhase(mask, 2 gamma w) diagonal gate per term
};

/// Gates of one phase layer appended to `c`.
void append_phase_layer(Circuit& c, const TermList& terms, double gamma,
                        PhaseStyle style);

/// Gates of one mixer layer appended to `c`. The X mixer emits RX(2 beta)
/// per qubit; xy mixers emit one XY(2 beta) rotation per edge in the same
/// order as the fur mixers, so both simulators realize identical unitaries.
void append_mixer_layer(Circuit& c, MixerType mixer, double beta);

/// Full QAOA circuit: optional initial H layer (|0..0> -> |+>^n), then p
/// alternating phase and mixer layers.
Circuit compile_qaoa_circuit(const TermList& terms,
                             std::span<const double> gammas,
                             std::span<const double> betas,
                             MixerType mixer = MixerType::X,
                             PhaseStyle style = PhaseStyle::CxLadder,
                             bool initial_h = true);

}  // namespace qokit
