#include "gatesim/simulator.hpp"

#include <cmath>

#include "diagonal/ops.hpp"
#include "gatesim/execute.hpp"
#include "gatesim/fusion.hpp"

namespace qokit {

GateQaoaSimulator::GateQaoaSimulator(TermList terms, GateSimConfig cfg)
    : terms_(std::move(terms)), cfg_(cfg) {}

Circuit GateQaoaSimulator::build_circuit(std::span<const double> gammas,
                                         std::span<const double> betas) const {
  // The initial H layer is emitted only for the X mixer; xy-mixer runs
  // start from a Dicke state prepared directly (gate-based Dicke prep is
  // out of scope for the baseline).
  Circuit c = compile_qaoa_circuit(terms_, gammas, betas, cfg_.mixer,
                                   cfg_.phase_style,
                                   /*initial_h=*/cfg_.mixer == MixerType::X);
  if (cfg_.fuse) c = fuse_gates(c);
  return c;
}

StateVector GateQaoaSimulator::simulate_qaoa(
    std::span<const double> gammas, std::span<const double> betas) const {
  const int n = num_qubits();
  StateVector sv = cfg_.mixer == MixerType::X
                       ? StateVector::basis_state(n, 0)
                       : StateVector::dicke_state(n, n / 2);
  const Circuit c = build_circuit(gammas, betas);
  if (cfg_.out_of_place)
    run_circuit_out_of_place(sv, c);
  else
    run_circuit(sv, c, cfg_.exec);
  // Constant terms compile to no gate but contribute the global phase
  // e^{-i gamma_l * offset} per layer; apply it so the state matches the
  // diagonal-simulator output exactly (not just up to phase).
  const double offset = terms_.offset();
  if (offset != 0.0) {
    double total = 0.0;
    for (double g : gammas) total += g;
    const cdouble phase(std::cos(-total * offset), std::sin(-total * offset));
    for (std::uint64_t i = 0; i < sv.size(); ++i) sv[i] *= phase;
  }
  return sv;
}

double GateQaoaSimulator::get_expectation(const StateVector& result) const {
  return expectation_terms(result, terms_, cfg_.exec);
}

}  // namespace qokit
