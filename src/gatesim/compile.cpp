#include "gatesim/compile.hpp"

#include <stdexcept>
#include <vector>

#include "common/bitops.hpp"

namespace qokit {

void append_phase_layer(Circuit& c, const TermList& terms, double gamma,
                        PhaseStyle style) {
  for (const Term& t : terms) {
    if (t.mask == 0) continue;  // constant: global phase, no gate
    const double theta = 2.0 * gamma * t.weight;
    if (style == PhaseStyle::MultiZ) {
      c.append(Gate::zphase(t.mask, theta));
      continue;
    }
    std::vector<int> qs;
    for (int q = 0; q < terms.num_qubits(); ++q)
      if (test_bit(t.mask, q)) qs.push_back(q);
    if (qs.size() == 1) {
      c.append(Gate::rz(qs[0], theta));
      continue;
    }
    // Parity ladder: accumulate parity onto the last qubit, rotate, unwind.
    for (std::size_t i = 0; i + 1 < qs.size(); ++i)
      c.append(Gate::cx(qs[i], qs[i + 1]));
    c.append(Gate::rz(qs.back(), theta));
    for (std::size_t i = qs.size() - 1; i-- > 0;)
      c.append(Gate::cx(qs[i], qs[i + 1]));
  }
}

void append_mixer_layer(Circuit& c, MixerType mixer, double beta) {
  const int n = c.num_qubits();
  switch (mixer) {
    case MixerType::X:
      for (int q = 0; q < n; ++q) c.append(Gate::rx(q, 2.0 * beta));
      return;
    case MixerType::XYRing:
      if (n < 3) throw std::invalid_argument("xy ring: need n >= 3");
      for (int i = 0; i < n; ++i)
        c.append(Gate::xy(i, (i + 1) % n, 2.0 * beta));
      return;
    case MixerType::XYComplete:
      for (int i = 0; i < n; ++i)
        for (int j = i + 1; j < n; ++j) c.append(Gate::xy(i, j, 2.0 * beta));
      return;
  }
  throw std::logic_error("append_mixer_layer: unknown mixer");
}

Circuit compile_qaoa_circuit(const TermList& terms,
                             std::span<const double> gammas,
                             std::span<const double> betas, MixerType mixer,
                             PhaseStyle style, bool initial_h) {
  if (gammas.size() != betas.size())
    throw std::invalid_argument("compile_qaoa_circuit: length mismatch");
  Circuit c(terms.num_qubits());
  if (initial_h)
    for (int q = 0; q < c.num_qubits(); ++q) c.append(Gate::h(q));
  for (std::size_t l = 0; l < gammas.size(); ++l) {
    append_phase_layer(c, terms, gammas[l], style);
    append_mixer_layer(c, mixer, betas[l]);
  }
  return c;
}

}  // namespace qokit
