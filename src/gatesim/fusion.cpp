#include "gatesim/fusion.hpp"

#include "common/bitops.hpp"

namespace qokit {
namespace {

/// 4x4 complex multiply: out = a * b.
std::array<cdouble, 16> matmul4(const std::array<cdouble, 16>& a,
                                const std::array<cdouble, 16>& b) {
  std::array<cdouble, 16> out{};
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c) {
      cdouble acc(0.0, 0.0);
      for (int k = 0; k < 4; ++k) acc += a[r * 4 + k] * b[k * 4 + c];
      out[r * 4 + c] = acc;
    }
  return out;
}

/// In-flight fusion group. The accumulated matrix lives on the ordered
/// pair (qa, spectator-or-qb); while qb < 0 the second basis bit is a pure
/// spectator (identity action), so the same 4x4 stays valid whichever
/// concrete qubit later takes that slot.
struct Group {
  int qa = -1;
  int qb = -1;
  std::array<cdouble, 16> m{};

  bool empty() const { return qa < 0; }

  std::uint64_t mask() const {
    std::uint64_t s = 0;
    if (qa >= 0) s |= 1ull << qa;
    if (qb >= 0) s |= 1ull << qb;
    return s;
  }
};

int lowest_bit(std::uint64_t mask, int exclude = -1) {
  for (int q = 0; q < 64; ++q)
    if (test_bit(mask, q) && q != exclude) return q;
  return -1;
}

}  // namespace

Circuit fuse_gates(const Circuit& c) {
  Circuit out(c.num_qubits());
  Group grp;

  const auto placeholder = [&](int qa) { return (qa + 1) % c.num_qubits(); };

  auto flush = [&] {
    if (grp.empty()) return;
    if (grp.qb < 0) {
      // Spectator bit carries identity: shrink to the 2x2 block.
      std::array<cdouble, 4> m1{grp.m[0], grp.m[1], grp.m[4], grp.m[5]};
      out.append(Gate::u1(grp.qa, m1));
    } else {
      out.append(Gate::u2(grp.qa, grp.qb, grp.m));
    }
    grp = Group{};
  };

  auto start = [&](const Gate& g) {
    const std::uint64_t sup = g.support_mask();
    grp.qa = lowest_bit(sup);
    grp.qb = g.support_size() == 2 ? lowest_bit(sup, grp.qa) : -1;
    const int pb = grp.qb >= 0 ? grp.qb : placeholder(grp.qa);
    grp.m = gate_matrix_on_pair(g, grp.qa, pb);
  };

  for (const Gate& g : c.gates()) {
    if (g.support_size() > 2) {
      // A >2-qubit diagonal cannot join a 4x4 group: emit as-is in program
      // order (always correct; reordering disjoint gates is a further
      // optimization fusion frameworks sometimes do, not modeled here).
      flush();
      out.append(g);
      continue;
    }
    if (grp.empty()) {
      start(g);
      continue;
    }
    const std::uint64_t union_mask = grp.mask() | g.support_mask();
    if (popcount(union_mask) > 2) {
      flush();
      start(g);
      continue;
    }
    // Join: pin the group's second qubit if the union now names it.
    if (grp.qb < 0 && popcount(union_mask) == 2)
      grp.qb = lowest_bit(union_mask, grp.qa);
    const int pb = grp.qb >= 0 ? grp.qb : placeholder(grp.qa);
    grp.m = matmul4(gate_matrix_on_pair(g, grp.qa, pb), grp.m);
  }
  flush();
  return out;
}

}  // namespace qokit
