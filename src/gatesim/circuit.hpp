// Gate-list circuit container with the gate-count accounting used in the
// paper's Sec. VI discussion (un-fused vs fused gate counts).
#pragma once

#include <cstdint>
#include <vector>

#include "gatesim/gate.hpp"

namespace qokit {

/// A flat sequence of gates on n qubits.
class Circuit {
 public:
  Circuit() = default;
  explicit Circuit(int num_qubits);

  int num_qubits() const noexcept { return n_; }
  const std::vector<Gate>& gates() const noexcept { return gates_; }
  std::size_t size() const noexcept { return gates_.size(); }

  /// Append a gate; validates qubit indices against n.
  void append(Gate g);

  /// Number of gates touching >= 2 qubits.
  std::size_t two_plus_qubit_count() const;

  /// Number of diagonal gates.
  std::size_t diagonal_count() const;

 private:
  int n_ = 0;
  std::vector<Gate> gates_;
};

}  // namespace qokit
