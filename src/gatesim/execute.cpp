#include "gatesim/execute.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/bitops.hpp"
#include "fur/su2.hpp"
#include "fur/su4.hpp"

namespace qokit {
namespace {

void apply_u1(StateVector& sv, int q, const std::array<cdouble, 4>& m,
              Exec exec) {
  cdouble* x = sv.data();
  const std::uint64_t stride = 1ull << q;
  parallel_for(exec, 0, static_cast<std::int64_t>(sv.size() >> 1),
               [=](std::int64_t k) {
                 const std::uint64_t i0 =
                     insert_zero_bit(static_cast<std::uint64_t>(k), q);
                 const std::uint64_t i1 = i0 | stride;
                 const cdouble x0 = x[i0];
                 const cdouble x1 = x[i1];
                 x[i0] = m[0] * x0 + m[1] * x1;
                 x[i1] = m[2] * x0 + m[3] * x1;
               });
}

void apply_cx(StateVector& sv, int control, int target, Exec exec) {
  cdouble* x = sv.data();
  const std::uint64_t cbit = 1ull << control;
  const std::uint64_t tbit = 1ull << target;
  // Enumerate pairs over the target qubit; swap only where control is set.
  parallel_for(exec, 0, static_cast<std::int64_t>(sv.size() >> 1),
               [=](std::int64_t k) {
                 const std::uint64_t i0 =
                     insert_zero_bit(static_cast<std::uint64_t>(k), target);
                 if (!(i0 & cbit)) return;
                 const std::uint64_t i1 = i0 | tbit;
                 const cdouble tmp = x[i0];
                 x[i0] = x[i1];
                 x[i1] = tmp;
               });
}

void apply_cz(StateVector& sv, int qa, int qb, Exec exec) {
  cdouble* x = sv.data();
  const std::uint64_t both = (1ull << qa) | (1ull << qb);
  parallel_for(exec, 0, static_cast<std::int64_t>(sv.size()),
               [=](std::int64_t i) {
                 if ((static_cast<std::uint64_t>(i) & both) == both)
                   x[i] = -x[i];
               });
}

void apply_swap(StateVector& sv, int qa, int qb, Exec exec) {
  cdouble* x = sv.data();
  const int lo = std::min(qa, qb);
  const int hi = std::max(qa, qb);
  const std::uint64_t ba = 1ull << qa;
  const std::uint64_t bb = 1ull << qb;
  parallel_for(exec, 0, static_cast<std::int64_t>(sv.size() >> 2),
               [=](std::int64_t k) {
                 const std::uint64_t base = insert_two_zero_bits(
                     static_cast<std::uint64_t>(k), lo, hi);
                 const cdouble tmp = x[base | ba];
                 x[base | ba] = x[base | bb];
                 x[base | bb] = tmp;
               });
}

void apply_zphase(StateVector& sv, std::uint64_t mask, double theta,
                  Exec exec) {
  cdouble* x = sv.data();
  const cdouble even(std::cos(theta / 2), -std::sin(theta / 2));
  const cdouble odd = std::conj(even);
  parallel_for(exec, 0, static_cast<std::int64_t>(sv.size()),
               [=](std::int64_t i) {
                 x[i] *= parity(static_cast<std::uint64_t>(i) & mask) ? odd
                                                                      : even;
               });
}

}  // namespace

void apply_gate(StateVector& sv, const Gate& g, Exec exec) {
  switch (g.kind) {
    case GateKind::H:
      kern::hadamard(sv.data(), sv.size(), g.q0, exec);
      return;
    case GateKind::RX:
      kern::rx(sv.data(), sv.size(), g.q0, std::cos(g.param / 2),
               std::sin(g.param / 2), exec);
      return;
    case GateKind::RY: {
      const double c = std::cos(g.param / 2), s = std::sin(g.param / 2);
      apply_u1(sv, g.q0, {cdouble(c), cdouble(-s), cdouble(s), cdouble(c)},
               exec);
      return;
    }
    case GateKind::RZ:
      apply_zphase(sv, 1ull << g.q0, g.param, exec);
      return;
    case GateKind::CX:
      apply_cx(sv, g.q0, g.q1, exec);
      return;
    case GateKind::CZ:
      apply_cz(sv, g.q0, g.q1, exec);
      return;
    case GateKind::SWAP:
      apply_swap(sv, g.q0, g.q1, exec);
      return;
    case GateKind::ZPhase:
      apply_zphase(sv, g.zmask, g.param, exec);
      return;
    case GateKind::XY:
      kern::xy(sv.data(), sv.size(), g.q0, g.q1, std::cos(g.param / 2),
               std::sin(g.param / 2), exec);
      return;
    case GateKind::U1:
      apply_u1(sv, g.q0, g.m1, exec);
      return;
    case GateKind::U2:
      kern::su4(sv.data(), sv.size(), g.q0, g.q1, g.m2.data(), exec);
      return;
  }
  throw std::logic_error("apply_gate: unknown gate kind");
}

void apply_gate_out_of_place(StateVector& sv, const Gate& g) {
  // Deliberately allocation-heavy: copy, transform serially, copy back.
  StateVector tmp(sv.num_qubits());
  for (std::uint64_t i = 0; i < sv.size(); ++i) tmp[i] = sv[i];
  apply_gate(tmp, g, Exec::Serial);
  sv = std::move(tmp);
}

void run_circuit(StateVector& sv, const Circuit& c, Exec exec) {
  if (sv.num_qubits() != c.num_qubits())
    throw std::invalid_argument("run_circuit: qubit-count mismatch");
  for (const Gate& g : c.gates()) apply_gate(sv, g, exec);
}

void run_circuit_out_of_place(StateVector& sv, const Circuit& c) {
  if (sv.num_qubits() != c.num_qubits())
    throw std::invalid_argument("run_circuit_out_of_place: mismatch");
  for (const Gate& g : c.gates()) apply_gate_out_of_place(sv, g);
}

}  // namespace qokit
