// Greedy F=2 gate fusion (paper Sec. VI related-work discussion).
//
// Adjacent gates whose combined support fits in two qubits are multiplied
// into a single U2. The paper's argument for why fusion cannot catch the
// precomputed diagonal: LABS phase layers are dominated by 4-order terms
// whose ladders span > 2 qubits across terms, capping what F=2 fusion can
// absorb. fuse_gates makes that measurable (see bench_ablation_fusion).
#pragma once

#include "gatesim/circuit.hpp"

namespace qokit {

/// Greedily fuse runs of gates with combined support <= 2 qubits into U2
/// gates. Gates with larger support (multi-qubit ZPhase) are emitted
/// unchanged and act as fusion barriers only for overlapping qubits runs.
/// The fused circuit realizes exactly the same unitary.
Circuit fuse_gates(const Circuit& c);

}  // namespace qokit
