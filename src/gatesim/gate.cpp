#include "gatesim/gate.hpp"

#include <cmath>
#include <stdexcept>

#include "common/bitops.hpp"

namespace qokit {

Gate Gate::h(int q) {
  Gate g;
  g.kind = GateKind::H;
  g.q0 = q;
  return g;
}

Gate Gate::rx(int q, double theta) {
  Gate g;
  g.kind = GateKind::RX;
  g.q0 = q;
  g.param = theta;
  return g;
}

Gate Gate::ry(int q, double theta) {
  Gate g;
  g.kind = GateKind::RY;
  g.q0 = q;
  g.param = theta;
  return g;
}

Gate Gate::rz(int q, double theta) {
  Gate g;
  g.kind = GateKind::RZ;
  g.q0 = q;
  g.param = theta;
  g.zmask = 1ull << q;
  return g;
}

Gate Gate::cx(int control, int target) {
  if (control == target) throw std::invalid_argument("cx: equal qubits");
  Gate g;
  g.kind = GateKind::CX;
  g.q0 = control;
  g.q1 = target;
  return g;
}

Gate Gate::cz(int qa, int qb) {
  if (qa == qb) throw std::invalid_argument("cz: equal qubits");
  Gate g;
  g.kind = GateKind::CZ;
  g.q0 = qa;
  g.q1 = qb;
  return g;
}

Gate Gate::swap(int qa, int qb) {
  if (qa == qb) throw std::invalid_argument("swap: equal qubits");
  Gate g;
  g.kind = GateKind::SWAP;
  g.q0 = qa;
  g.q1 = qb;
  return g;
}

Gate Gate::zphase(std::uint64_t mask, double theta) {
  if (mask == 0) throw std::invalid_argument("zphase: empty mask");
  Gate g;
  g.kind = GateKind::ZPhase;
  g.zmask = mask;
  g.param = theta;
  return g;
}

Gate Gate::xy(int qa, int qb, double theta) {
  if (qa == qb) throw std::invalid_argument("xy: equal qubits");
  Gate g;
  g.kind = GateKind::XY;
  g.q0 = qa;
  g.q1 = qb;
  g.param = theta;
  return g;
}

Gate Gate::u1(int q, const std::array<cdouble, 4>& m) {
  Gate g;
  g.kind = GateKind::U1;
  g.q0 = q;
  g.m1 = m;
  return g;
}

Gate Gate::u2(int qa, int qb, const std::array<cdouble, 16>& m) {
  if (qa == qb) throw std::invalid_argument("u2: equal qubits");
  Gate g;
  g.kind = GateKind::U2;
  g.q0 = qa;
  g.q1 = qb;
  g.m2 = m;
  return g;
}

int Gate::support_size() const noexcept {
  if (kind == GateKind::ZPhase) return popcount(zmask);
  return q1 >= 0 ? 2 : 1;
}

std::uint64_t Gate::support_mask() const noexcept {
  if (kind == GateKind::ZPhase) return zmask;
  std::uint64_t m = 1ull << q0;
  if (q1 >= 0) m |= 1ull << q1;
  return m;
}

bool Gate::is_diagonal() const noexcept {
  return kind == GateKind::RZ || kind == GateKind::ZPhase ||
         kind == GateKind::CZ;
}

namespace {

constexpr double kInvSqrt2 = 0.70710678118654752440;

/// Dense matrix of a 1-qubit gate.
std::array<cdouble, 4> matrix_1q(const Gate& g) {
  const double c = std::cos(g.param / 2);
  const double s = std::sin(g.param / 2);
  switch (g.kind) {
    case GateKind::H:
      return {cdouble(kInvSqrt2), cdouble(kInvSqrt2), cdouble(kInvSqrt2),
              cdouble(-kInvSqrt2)};
    case GateKind::RX:
      return {cdouble(c), cdouble(0, -s), cdouble(0, -s), cdouble(c)};
    case GateKind::RY:
      return {cdouble(c), cdouble(-s), cdouble(s), cdouble(c)};
    case GateKind::RZ:
      return {cdouble(c, -s), cdouble(0), cdouble(0), cdouble(c, s)};
    case GateKind::ZPhase:
      // 1-qubit ZPhase is RZ.
      return {cdouble(c, -s), cdouble(0), cdouble(0), cdouble(c, s)};
    case GateKind::U1:
      return g.m1;
    default:
      throw std::logic_error("matrix_1q: not a one-qubit gate");
  }
}

/// Dense matrix of a 2-qubit gate in its own (q0, q1) order, index
/// convention b_q0 + 2*b_q1.
std::array<cdouble, 16> matrix_2q(const Gate& g) {
  std::array<cdouble, 16> m{};
  const double c = std::cos(g.param / 2);
  const double s = std::sin(g.param / 2);
  switch (g.kind) {
    case GateKind::CX:
      // q0 = control = bit0, q1 = target = bit1.
      for (int in = 0; in < 4; ++in) {
        const int b0 = in & 1;
        const int b1 = (in >> 1) & 1;
        const int out = b0 | ((b1 ^ b0) << 1);
        m[out * 4 + in] = cdouble(1.0);
      }
      return m;
    case GateKind::CZ:
      for (int in = 0; in < 4; ++in)
        m[in * 4 + in] = in == 3 ? cdouble(-1.0) : cdouble(1.0);
      return m;
    case GateKind::SWAP:
      for (int in = 0; in < 4; ++in) {
        const int out = ((in & 1) << 1) | ((in >> 1) & 1);
        m[out * 4 + in] = cdouble(1.0);
      }
      return m;
    case GateKind::XY:
      // Identity on |00>, |11>; RX-like butterfly on |01>, |10>.
      m[0 * 4 + 0] = cdouble(1.0);
      m[3 * 4 + 3] = cdouble(1.0);
      m[1 * 4 + 1] = cdouble(c);
      m[1 * 4 + 2] = cdouble(0, -s);
      m[2 * 4 + 1] = cdouble(0, -s);
      m[2 * 4 + 2] = cdouble(c);
      return m;
    case GateKind::ZPhase: {
      // Exactly two bits set in zmask; q-order irrelevant (symmetric).
      for (int in = 0; in < 4; ++in) {
        const int par = ((in & 1) ^ ((in >> 1) & 1));
        m[in * 4 + in] = par ? cdouble(c, s) : cdouble(c, -s);
      }
      return m;
    }
    case GateKind::U2:
      return g.m2;
    default:
      throw std::logic_error("matrix_2q: not a two-qubit gate");
  }
}

}  // namespace

std::array<cdouble, 16> gate_matrix_on_pair(const Gate& g, int pa, int pb) {
  if (pa == pb) throw std::invalid_argument("gate_matrix_on_pair: pa == pb");
  if ((g.support_mask() & ~((1ull << pa) | (1ull << pb))) != 0)
    throw std::invalid_argument("gate_matrix_on_pair: support not in pair");

  std::array<cdouble, 16> out{};
  if (g.support_size() == 1) {
    const auto m = matrix_1q(g);
    // Embed on bit 0 (pa) or bit 1 (pb) of the pair index.
    const int gq = g.kind == GateKind::ZPhase
                       ? (test_bit(g.zmask, pa) ? pa : pb)
                       : g.q0;
    const bool on_low = (gq == pa);
    for (int jo = 0; jo < 2; ++jo)       // spectator bit
      for (int r = 0; r < 2; ++r)
        for (int cidx = 0; cidx < 2; ++cidx) {
          const int row = on_low ? (jo << 1 | r) : (r << 1 | jo);
          const int col = on_low ? (jo << 1 | cidx) : (cidx << 1 | jo);
          out[row * 4 + col] = m[r * 2 + cidx];
        }
    return out;
  }

  // Two-qubit gate: matrix_2q uses (q0 -> bit0, q1 -> bit1); remap onto
  // (pa -> bit0, pb -> bit1).
  int gq0 = g.q0, gq1 = g.q1;
  if (g.kind == GateKind::ZPhase) {
    gq0 = pa;  // symmetric diagonal: any consistent order works
    gq1 = pb;
  }
  const auto m = matrix_2q(g);
  const bool aligned = (gq0 == pa && gq1 == pb);
  if (!aligned && !(gq0 == pb && gq1 == pa))
    throw std::invalid_argument("gate_matrix_on_pair: pair mismatch");
  for (int row = 0; row < 4; ++row)
    for (int col = 0; col < 4; ++col) {
      const int r = aligned ? row : ((row >> 1) | ((row & 1) << 1));
      const int c = aligned ? col : ((col >> 1) | ((col & 1) << 1));
      out[row * 4 + col] = m[r * 4 + c];
    }
  return out;
}

}  // namespace qokit
