#include "gatesim/circuit.hpp"

#include <stdexcept>

#include "common/bitops.hpp"

namespace qokit {

Circuit::Circuit(int num_qubits) : n_(num_qubits) {
  if (num_qubits < 1 || num_qubits > 34)
    throw std::invalid_argument("Circuit: bad qubit count");
}

void Circuit::append(Gate g) {
  const std::uint64_t allowed = dim_of(n_) - 1ull;
  if (g.support_mask() & ~allowed)
    throw std::out_of_range("Circuit::append: gate exceeds qubit count");
  gates_.push_back(g);
}

std::size_t Circuit::two_plus_qubit_count() const {
  std::size_t c = 0;
  for (const Gate& g : gates_)
    if (g.support_size() >= 2) ++c;
  return c;
}

std::size_t Circuit::diagonal_count() const {
  std::size_t c = 0;
  for (const Gate& g : gates_)
    if (g.is_diagonal()) ++c;
  return c;
}

}  // namespace qokit
