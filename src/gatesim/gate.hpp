// Gate set for the gate-at-a-time baseline simulator.
//
// This module deliberately models the execution strategy the paper compares
// against (Sec. III): a quantum program is a sequence of gates, and the
// simulator iterates over them, modifying the state vector once per gate.
// The phase operator must be compiled into ~|T| gates per layer, which is
// exactly the cost the precomputed-diagonal approach removes.
#pragma once

#include <array>
#include <cstdint>

#include "statevector/state.hpp"

namespace qokit {

/// Gate kinds supported by the baseline executor.
enum class GateKind {
  H,       ///< Hadamard
  RX,      ///< e^{-i theta/2 X}
  RY,      ///< e^{-i theta/2 Y}
  RZ,      ///< e^{-i theta/2 Z}
  CX,      ///< controlled-NOT (q0 control, q1 target)
  CZ,      ///< controlled-Z (symmetric diagonal)
  SWAP,    ///< exchange two qubits
  ZPhase,  ///< e^{-i theta/2 Z x Z x ... x Z} over `zmask` (diagonal)
  XY,      ///< e^{-i theta/2 (XX + YY)} -- two-qubit XY rotation
  U1,      ///< generic one-qubit matrix
  U2,      ///< generic two-qubit matrix (fusion output)
};

/// One gate instance. Matrix storage is used only by U1/U2.
struct Gate {
  GateKind kind = GateKind::H;
  int q0 = -1;              ///< first qubit (control for CX)
  int q1 = -1;              ///< second qubit (target for CX), -1 if unused
  double param = 0.0;       ///< rotation angle theta
  std::uint64_t zmask = 0;  ///< ZPhase support mask
  std::array<cdouble, 4> m1{};   ///< U1 row-major 2x2
  std::array<cdouble, 16> m2{};  ///< U2 row-major 4x4; index = b_q1*2 + b_q0

  static Gate h(int q);
  static Gate rx(int q, double theta);
  static Gate ry(int q, double theta);
  static Gate rz(int q, double theta);
  static Gate cx(int control, int target);
  static Gate cz(int qa, int qb);
  static Gate swap(int qa, int qb);
  static Gate zphase(std::uint64_t mask, double theta);
  static Gate xy(int qa, int qb, double theta);
  static Gate u1(int q, const std::array<cdouble, 4>& m);
  static Gate u2(int qa, int qb, const std::array<cdouble, 16>& m);

  /// Number of qubits the gate touches.
  int support_size() const noexcept;

  /// Mask of touched qubits.
  std::uint64_t support_mask() const noexcept;

  /// True for gates diagonal in the computational basis.
  bool is_diagonal() const noexcept;
};

/// Dense 4x4 matrix of `g` in the basis of the ordered qubit pair
/// (pa, pb), index convention b_pa + 2*b_pb. `g`'s support must be a
/// subset of {pa, pb}. Used by gate fusion and by tests as a reference.
std::array<cdouble, 16> gate_matrix_on_pair(const Gate& g, int pa, int pb);

}  // namespace qokit
