// Baseline QAOA "simulator class" with the same call shape as the fast
// simulator, but the gate-based cost model: each call re-compiles the
// phase operator into gates, executes them one at a time, and evaluates
// the objective term-by-term with no cached diagonal. This is the
// Qiskit-/cuStateVec-(gates)-like comparator used in Figs. 2-4.
#pragma once

#include <span>

#include "common/parallel.hpp"
#include "fur/mixers.hpp"
#include "gatesim/compile.hpp"
#include "statevector/state.hpp"
#include "terms/term.hpp"

namespace qokit {

/// Options for the baseline simulator.
struct GateSimConfig {
  Exec exec = Exec::Parallel;
  MixerType mixer = MixerType::X;
  PhaseStyle phase_style = PhaseStyle::CxLadder;
  bool fuse = false;            ///< apply F=2 gate fusion before execution
  bool out_of_place = false;    ///< per-gate temporaries ("vectorized" style)
};

/// Gate-based QAOA simulator.
class GateQaoaSimulator {
 public:
  explicit GateQaoaSimulator(TermList terms, GateSimConfig cfg = {});

  int num_qubits() const { return terms_.num_qubits(); }
  const TermList& terms() const { return terms_; }
  const GateSimConfig& config() const { return cfg_; }

  /// Compile the full QAOA circuit for the given parameters (with fusion if
  /// configured). Exposed so benchmarks can report gate counts.
  Circuit build_circuit(std::span<const double> gammas,
                        std::span<const double> betas) const;

  /// Compile + execute from |+>^n (X mixer) or a Dicke state (xy mixers).
  StateVector simulate_qaoa(std::span<const double> gammas,
                            std::span<const double> betas) const;

  /// Objective via term-by-term Pauli-Z expectations: the O(|T| 2^n) cost a
  /// framework without a precomputed diagonal pays per evaluation.
  double get_expectation(const StateVector& result) const;

 private:
  TermList terms_;
  GateSimConfig cfg_;
};

}  // namespace qokit
