#include "tune/machine_probe.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <utility>

#if defined(__linux__) || defined(__unix__)
#include <unistd.h>
#define QOKIT_HAVE_SYSCONF 1
#endif

#include "common/cpu_features.hpp"

namespace qokit::tune {

namespace {

// Read a whole small file; empty string on any failure (probe fields then
// keep their defaults — the probe never throws).
std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

std::string trimmed(std::string s) {
  const auto is_space = [](unsigned char c) { return std::isspace(c) != 0; };
  while (!s.empty() && is_space(static_cast<unsigned char>(s.back())))
    s.pop_back();
  std::size_t b = 0;
  while (b < s.size() && is_space(static_cast<unsigned char>(s[b]))) ++b;
  return s.substr(b);
}

// Parse sysfs cache sizes: "32K", "2048K", "20480K", occasionally "1M".
// Returns 0 on anything unparseable.
std::uint64_t parse_size(const std::string& raw) {
  const std::string s = trimmed(raw);
  if (s.empty() || std::isdigit(static_cast<unsigned char>(s[0])) == 0)
    return 0;
  std::size_t pos = 0;
  std::uint64_t value = 0;
  while (pos < s.size() && std::isdigit(static_cast<unsigned char>(s[pos]))) {
    value = value * 10 + static_cast<std::uint64_t>(s[pos] - '0');
    ++pos;
  }
  if (pos < s.size()) {
    const char suffix =
        static_cast<char>(std::toupper(static_cast<unsigned char>(s[pos])));
    if (suffix == 'K') value <<= 10;
    else if (suffix == 'M') value <<= 20;
    else if (suffix == 'G') value <<= 30;
  }
  return value;
}

int parse_int_or(const std::string& raw, int fallback) {
  const std::string s = trimmed(raw);
  if (s.empty()) return fallback;
  try {
    return std::stoi(s);
  } catch (...) {
    return fallback;
  }
}

bool dir_exists(const std::string& path) {
  std::error_code ec;  // noexcept overload: a probe must never throw
  return std::filesystem::is_directory(path, ec);
}

void probe_caches(const std::string& cpu0, MachineTopology& topo) {
  for (int index = 0; index < 8; ++index) {
    const std::string base =
        cpu0 + "/cache/index" + std::to_string(index) + "/";
    const std::string type = trimmed(slurp(base + "type"));
    if (type.empty()) break;  // indices are dense; first gap ends the scan
    const int level = parse_int_or(slurp(base + "level"), 0);
    const std::uint64_t size = parse_size(slurp(base + "size"));
    if (size == 0) continue;
    if (level == 1 && (type == "Data" || type == "Unified"))
      topo.l1d_bytes = size;
    else if (level == 2)
      topo.l2_bytes = size;
    else if (level == 3)
      topo.l3_bytes = size;
    const std::uint64_t line =
        parse_size(slurp(base + "coherency_line_size"));
    if (line >= 16 && line <= 1024) topo.cache_line_bytes = line;
  }
}

void probe_cores(const std::string& cpu_root, MachineTopology& topo) {
  std::set<std::pair<int, int>> cores;
  int logical = 0;
  for (int cpu = 0; cpu < 4096; ++cpu) {
    const std::string base =
        cpu_root + "/cpu" + std::to_string(cpu) + "/topology/";
    const std::string core_raw = slurp(base + "core_id");
    if (core_raw.empty()) break;  // cpuN dirs are dense
    ++logical;
    cores.emplace(parse_int_or(slurp(base + "physical_package_id"), 0),
                  parse_int_or(core_raw, cpu));
  }
  if (logical > 0) {
    topo.logical_cpus = logical;
    topo.physical_cores = static_cast<int>(cores.size());
  }
}

void probe_numa(const std::string& node_root, MachineTopology& topo) {
  int nodes = 0;
  for (int node = 0; node < 1024; ++node) {
    if (!dir_exists(node_root + "/node" + std::to_string(node))) break;
    ++nodes;
  }
  if (nodes > 0) topo.numa_nodes = nodes;
}

void probe_cpu_model(const std::string& cpuinfo_path,
                     MachineTopology& topo) {
  std::ifstream in(cpuinfo_path);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("model name", 0) != 0) continue;
    const auto colon = line.find(':');
    if (colon == std::string::npos) continue;
    const std::string model = trimmed(line.substr(colon + 1));
    if (!model.empty()) topo.cpu_model = model;
    return;
  }
}

}  // namespace

MachineTopology probe_machine(const std::string& fs_root) {
  MachineTopology topo;
  std::string root = fs_root;
  while (root.size() > 1 && root.back() == '/') root.pop_back();
  if (root == "/") root.clear();

  const std::string cpu_root = root + "/sys/devices/system/cpu";
  probe_caches(cpu_root + "/cpu0", topo);
  probe_cores(cpu_root, topo);
  probe_numa(root + "/sys/devices/system/node", topo);
  probe_cpu_model(root + "/proc/cpuinfo", topo);

#ifdef QOKIT_HAVE_SYSCONF
  // sysconf fallback for containers that hide sysfs cache dirs. Only
  // fills fields the sysfs scan left at defaults on the real root (the
  // injected-root test trees must see exactly what they describe).
  if (root.empty()) {
#ifdef _SC_LEVEL1_DCACHE_SIZE
    if (topo.l1d_bytes == MachineTopology{}.l1d_bytes) {
      const long l1 = ::sysconf(_SC_LEVEL1_DCACHE_SIZE);
      if (l1 > 0) topo.l1d_bytes = static_cast<std::uint64_t>(l1);
    }
#endif
#ifdef _SC_LEVEL2_CACHE_SIZE
    if (topo.l2_bytes == MachineTopology{}.l2_bytes) {
      const long l2 = ::sysconf(_SC_LEVEL2_CACHE_SIZE);
      if (l2 > 0) topo.l2_bytes = static_cast<std::uint64_t>(l2);
    }
#endif
#ifdef _SC_LEVEL3_CACHE_SIZE
    if (topo.l3_bytes == 0) {
      const long l3 = ::sysconf(_SC_LEVEL3_CACHE_SIZE);
      if (l3 > 0) topo.l3_bytes = static_cast<std::uint64_t>(l3);
    }
#endif
  }
#endif  // QOKIT_HAVE_SYSCONF

  if (root.empty()) {
    const unsigned hw = std::thread::hardware_concurrency();
    if (topo.logical_cpus <= 1 && hw > 0) {
      topo.logical_cpus = static_cast<int>(hw);
      // Without per-cpu topology files assume no SMT rather than halve:
      // overcommitting threads costs more than undercounting cores saves.
      topo.physical_cores = static_cast<int>(hw);
    }
    topo.simd_level = simd_level_name(active_simd_level());
  }
  return topo;
}

}  // namespace qokit::tune
