// Machine topology discovery for the adaptive-execution subsystem.
//
// The pipeline's speedup argument (LayerPlan doc) is entirely about the
// cache hierarchy: tiles must sit in L2, strided working sets in L1/L2,
// and the thread count must match physical cores, not SMT siblings. This
// probe reads that hierarchy from Linux sysfs (with sysconf and
// hardware_concurrency fallbacks) into one plain struct that the tuning
// heuristic (profile.hpp) consumes.
//
// Everything is injectable for tests: probe_machine takes a filesystem
// root, so a fake sysfs tree under /tmp exercises every parse path
// deterministically, and MachineTopology's defaults are chosen so a
// machine where every probe fails still reproduces the static pipeline
// geometry (Geometry::defaults()).
#pragma once

#include <cstdint>
#include <string>

namespace qokit::tune {

/// What the probe learned about this machine. Defaults describe a
/// conservative single-socket box whose heuristic geometry equals
/// pipeline::Geometry::defaults() — total probe failure is never worse
/// than the pre-tune static configuration.
struct MachineTopology {
  std::uint64_t l1d_bytes = 32768;         ///< per-core L1 data cache
  std::uint64_t l2_bytes = 2097152;        ///< per-core (or per-CCX) L2
  std::uint64_t l3_bytes = 0;              ///< shared LLC, 0 = unknown
  std::uint64_t cache_line_bytes = 64;
  int physical_cores = 1;  ///< unique (package, core) pairs
  int logical_cpus = 1;    ///< including SMT siblings
  int numa_nodes = 1;
  std::string cpu_model = "unknown";  ///< /proc/cpuinfo "model name"
  std::string simd_level = "scalar";  ///< simd_level_name(active_simd_level())

  friend bool operator==(const MachineTopology&,
                         const MachineTopology&) = default;
};

/// Probe the machine rooted at `fs_root` (normally "/"; tests point it at
/// a fake tree containing sys/devices/system/... and proc/cpuinfo).
/// Reads, in order of preference:
///   - sysfs cpu0 cache indices (level/type/size/coherency_line_size)
///   - sysfs node*/ directories for the NUMA node count
///   - sysfs per-cpu topology (physical_package_id, core_id) for the
///     physical-core count
///   - /proc/cpuinfo "model name"
/// falling back to sysconf(_SC_LEVEL*_DCACHE_SIZE) and
/// std::thread::hardware_concurrency, and finally to the struct defaults.
/// Never throws; a missing or malformed file leaves that field at its
/// default.
MachineTopology probe_machine(const std::string& fs_root = "/");

}  // namespace qokit::tune
