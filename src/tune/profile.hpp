// TuneProfile: the machine-adaptive execution configuration.
//
// A profile is everything the runtime adapts per machine: the pipeline
// Geometry (tile/group/chunk), the thread count, and the NUMA placement
// policy. It is computed from a MachineProbe by a closed-form heuristic
// (heuristic_profile — pure, unit-testable against fake topologies), or
// refined by a one-shot empirical micro-search (search_profile — a few
// timed layer sweeps at first use), and persisted to a versioned JSON
// file so later processes skip the search.
//
// The contract that makes all of this safe: a profile changes only *how*
// the state is traversed (Geometry, threads, page placement), never the
// per-amplitude arithmetic — so every profile is bit-identical to the
// static oracle (`QOKIT_TUNE=off` / tune=static), pinned by
// tests/test_tune.cpp across every backend and Exec policy.
//
// Profile lifecycle (resolve_profile, the make_simulator entry point):
//   spec tune=...  ─┐
//   QOKIT_TUNE      ├─► effective mode ──► static │ load file │ heuristic
//   QOKIT_TUNE_PATH ┘                             │ micro-search
// Loads are schema-checked ("qokit-tune-v1") and staleness-checked
// against the probe's cpu_model/simd_level (the literal value "any"
// matches every machine — for committed CI fixtures); corrupt, stale, or
// wrong-schema files degrade to the heuristic with a pinned diagnostic.
// Saves are atomic (tmp + rename) so a crash never leaves a torn file.
#pragma once

#include <string>

#include "pipeline/geometry.hpp"
#include "tune/machine_probe.hpp"

namespace qokit::tune {

/// Memory-placement policy for large state allocations.
enum class NumaPolicy {
  None,        ///< single node (or unknown): leave placement to the OS
  FirstTouch,  ///< parallel first-touch so pages land on the threads'
               ///< nodes in the same static partition the sweeps use
};

/// Where a resolved profile's values came from (exported as the
/// qokit_tune_source gauge in the enum's numeric order).
enum class ProfileSource {
  Static = 0,     ///< pinned pre-tune defaults (the CI oracle)
  Heuristic = 1,  ///< closed-form formulas over the probe
  Search = 2,     ///< heuristic refined by timed micro-search
  File = 3,       ///< loaded from a persisted JSON profile
};

const char* numa_policy_name(NumaPolicy p) noexcept;
const char* profile_source_name(ProfileSource s) noexcept;

struct TuneProfile {
  pipeline::Geometry geometry = pipeline::Geometry::defaults();
  /// Threads a Parallel region should use; 0 = leave the runtime alone
  /// (the static profile never overrides the user's OMP settings).
  int threads = 0;
  NumaPolicy numa = NumaPolicy::None;
  ProfileSource source = ProfileSource::Static;
  /// Staleness keys: the machine the values were derived on. "any"
  /// matches every machine (committed CI fixture profiles use it).
  std::string cpu_model = "any";
  std::string simd_level = "any";

  friend bool operator==(const TuneProfile&, const TuneProfile&) = default;
};

/// The pre-tune static configuration: Geometry::defaults(), no thread or
/// NUMA overrides. What `QOKIT_TUNE=off` pins as the CI oracle.
TuneProfile static_profile();

/// Closed-form geometry from the cache hierarchy. Pure — same topology,
/// same profile — and reproduces Geometry::defaults() on the 32 KiB-L1d /
/// 2 MiB-L2 class of machine the defaults were hand-tuned for:
///   tile:  3/4 of L2 over the 24 B/amp fused sweep (amp + streamed cost)
///   chunk: half of L1d over 16 B/amp
///   group: rows such that 2^g chunks fill half of L2
///   threads: one per physical core; first-touch iff > 1 NUMA node
TuneProfile heuristic_profile(const MachineTopology& topo);

/// heuristic_profile refined by a one-shot micro-search: times real fused
/// layer sweeps (run_layer on a scratch state) for a small neighborhood
/// of tile/group candidates and keeps the fastest. Costs a few tens of
/// milliseconds, once; the result is persisted when a path is configured.
/// The chosen geometry may vary run-to-run (it is timing-based) — results
/// never do.
TuneProfile search_profile(const MachineTopology& topo);

/// Serialize to versioned JSON at `path` atomically (write tmp in the
/// same directory, then rename). Returns false (with *error set when
/// non-null) if the directory is unwritable.
bool save_profile(const std::string& path, const TuneProfile& profile,
                  std::string* error = nullptr);

/// Load and validate a profile: schema key must be "qokit-tune-v1", all
/// numeric fields present and in range, and cpu_model/simd_level must
/// match `topo` (or be "any"). On failure returns false and sets
/// *diagnostic (pinned prefixes: "missing profile", "corrupt profile",
/// "wrong schema", "stale profile") — the caller falls back to the
/// heuristic and keeps serving.
bool load_profile(const std::string& path, const MachineTopology& topo,
                  TuneProfile* out, std::string* diagnostic);

/// How a simulator asked for tuning (SimulatorSpec `tune=` maps here).
enum class TuneMode {
  Auto,    ///< env-directed: QOKIT_TUNE / QOKIT_TUNE_PATH, else heuristic
  Static,  ///< pinned static_profile(); probes nothing
  Search,  ///< force the micro-search (persisted when a path is set)
  Path,    ///< load exactly `path`, heuristic fallback if unusable
};

/// Resolve the effective profile for a new simulator and apply its
/// process-wide side effects (thread count — only when OMP_NUM_THREADS is
/// unset — first-touch enablement, obs gauges). Results are cached per
/// (effective mode, effective path), where "effective" is computed after
/// reading the environment, so tests that flip QOKIT_TUNE between calls
/// observe the change. The machine is probed at most once per process.
TuneProfile resolve_profile(TuneMode mode, const std::string& path = {});

/// The diagnostic from the most recent resolve_profile fallback (empty
/// when the last resolution was clean). For tests and logs.
std::string last_resolve_diagnostic();

}  // namespace qokit::tune
