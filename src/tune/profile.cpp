#include "tune/profile.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <utility>

#include "common/aligned.hpp"
#include "common/parallel.hpp"
#include "common/sync.hpp"
#include "common/timer.hpp"
#include "fur/mixers.hpp"
#include "obs/obs.hpp"
#include "pipeline/layer_exec.hpp"
#include "pipeline/layer_plan.hpp"
#include "statevector/state.hpp"

namespace qokit::tune {

namespace {

constexpr const char* kSchema = "qokit-tune-v1";
/// Staleness-key wildcard: matches any machine. Committed CI fixture
/// profiles carry it so they load on every runner.
constexpr const char* kAnyMachine = "any";

int floor_log2_u64(std::uint64_t v) {
  int r = 0;
  while (v > 1) {
    v >>= 1;
    ++r;
  }
  return r;
}

}  // namespace

const char* numa_policy_name(NumaPolicy p) noexcept {
  return p == NumaPolicy::FirstTouch ? "first_touch" : "none";
}

const char* profile_source_name(ProfileSource s) noexcept {
  switch (s) {
    case ProfileSource::Static: return "static";
    case ProfileSource::Heuristic: return "heuristic";
    case ProfileSource::Search: return "search";
    case ProfileSource::File: return "file";
  }
  return "static";
}

TuneProfile static_profile() {
  TuneProfile p;
  p.geometry = pipeline::Geometry::defaults();
  p.threads = 0;
  p.numa = NumaPolicy::None;
  p.source = ProfileSource::Static;
  p.cpu_model = kAnyMachine;
  p.simd_level = kAnyMachine;
  return p;
}

TuneProfile heuristic_profile(const MachineTopology& topo) {
  TuneProfile p;
  // Tile: the fused phase+mixer sweep streams 16 B of amplitude plus 8 B
  // of cost diagonal per amplitude; budget 3/4 of L2 so the tile survives
  // the butterfly re-walks.
  const std::uint64_t tile_amps =
      std::max<std::uint64_t>(1, topo.l2_bytes * 3 / 4 / 24);
  p.geometry.tile_log2 = std::clamp(floor_log2_u64(tile_amps), 12, 20);
  // Chunk: one row's contiguous gather; half of L1d at 16 B/amp keeps the
  // chunk resident across the group's g butterfly passes.
  const std::uint64_t chunk_amps =
      std::max<std::uint64_t>(1, topo.l1d_bytes / 2 / 16);
  p.geometry.chunk_log2 = std::clamp(floor_log2_u64(chunk_amps), 8, 13);
  // Group: 2^g rows x one chunk each should fill half of L2.
  const std::uint64_t chunk_bytes =
      std::uint64_t{16} << p.geometry.chunk_log2;
  const std::uint64_t rows =
      std::max<std::uint64_t>(1, topo.l2_bytes / 2 / chunk_bytes);
  p.geometry.group_qubits = std::clamp(floor_log2_u64(rows), 2, 8);
  p.threads = std::max(1, topo.physical_cores);
  p.numa = topo.numa_nodes > 1 ? NumaPolicy::FirstTouch : NumaPolicy::None;
  p.source = ProfileSource::Heuristic;
  p.cpu_model = topo.cpu_model;
  p.simd_level = topo.simd_level;
  return p;
}

TuneProfile search_profile(const MachineTopology& topo) {
  TuneProfile best = heuristic_profile(topo);
  best.source = ProfileSource::Search;

  // Time real fused layers on a scratch state around the heuristic point.
  // n = 18 (4 MiB of state) is big enough that tile/group choices move
  // the timing and small enough that 9 candidates x 2 reps stay tens of
  // milliseconds total.
  constexpr int n = 18;
  constexpr std::uint64_t n_amps = std::uint64_t{1} << n;
  aligned_vector<cdouble> amp(n_amps, cdouble{1.0, 0.0});
  aligned_vector<double> costs(n_amps);
  for (std::uint64_t i = 0; i < n_amps; ++i)
    costs[i] = static_cast<double>(i % 97) * 0.01;

  double best_seconds = -1.0;
  const pipeline::Geometry h = best.geometry;
  for (int tile = h.tile_log2 - 1; tile <= h.tile_log2 + 1; ++tile) {
    for (int group = h.group_qubits - 1; group <= h.group_qubits + 1;
         ++group) {
      const pipeline::Geometry cand{std::clamp(tile, 12, std::min(20, n)),
                                    std::clamp(group, 2, 8),
                                    h.chunk_log2};
      pipeline::PipelineOptions opts;
      opts.mode = pipeline::PipelineMode::On;
      opts.geometry = cand;
      const auto plan = pipeline::LayerPlan::build(
          n, MixerType::X, MixerBackend::Fused, opts);
      if (!plan.active()) continue;
      const pipeline::PhaseCtx phase{.costs = costs.data()};
      double seconds = 1e300;
      for (int rep = 0; rep < 2; ++rep) {
        WallTimer timer;
        pipeline::run_layer(plan, amp.data(), n_amps, phase, 0.31, 0.78,
                            Exec::Parallel);
        seconds = std::min(seconds, timer.seconds());
      }
      if (best_seconds < 0.0 || seconds < best_seconds) {
        best_seconds = seconds;
        best.geometry = cand;
      }
    }
  }
  return best;
}

// ------------------------------------------------------------- JSON I/O
//
// The profile is a flat object of known keys, so persistence is a
// hand-rolled writer and a key-scanning reader — no JSON dependency, and
// a torn or hostile file can only produce a diagnostic, never UB.

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out.push_back(c);
    }
  }
  return out;
}

/// Extract the raw value token following `"key":` — a quoted string
/// (returned unquoted) or a bare number. Returns false if absent.
bool extract_value(const std::string& text, const std::string& key,
                   std::string* out) {
  const std::string needle = "\"" + key + "\"";
  std::size_t pos = text.find(needle);
  if (pos == std::string::npos) return false;
  pos = text.find(':', pos + needle.size());
  if (pos == std::string::npos) return false;
  ++pos;
  while (pos < text.size() &&
         (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n'))
    ++pos;
  if (pos >= text.size()) return false;
  if (text[pos] == '"') {
    const std::size_t end = text.find('"', pos + 1);
    if (end == std::string::npos) return false;
    *out = text.substr(pos + 1, end - pos - 1);
    return true;
  }
  std::size_t end = pos;
  while (end < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[end])) ||
          text[end] == '-'))
    ++end;
  if (end == pos) return false;
  *out = text.substr(pos, end - pos);
  return true;
}

bool extract_int(const std::string& text, const std::string& key, int lo,
                 int hi, int* out) {
  std::string raw;
  if (!extract_value(text, key, &raw)) return false;
  try {
    const int v = std::stoi(raw);
    if (v < lo || v > hi) return false;
    *out = v;
    return true;
  } catch (...) {
    return false;
  }
}

bool machine_key_matches(const std::string& stored,
                         const std::string& probed) {
  return stored == kAnyMachine || stored == probed;
}

}  // namespace

bool save_profile(const std::string& path, const TuneProfile& profile,
                  std::string* error) {
  std::ostringstream json;
  json << "{\n"
       << "  \"schema\": \"" << kSchema << "\",\n"
       << "  \"cpu_model\": \"" << json_escape(profile.cpu_model) << "\",\n"
       << "  \"simd_level\": \"" << json_escape(profile.simd_level)
       << "\",\n"
       << "  \"tile_log2\": " << profile.geometry.tile_log2 << ",\n"
       << "  \"group_qubits\": " << profile.geometry.group_qubits << ",\n"
       << "  \"chunk_log2\": " << profile.geometry.chunk_log2 << ",\n"
       << "  \"threads\": " << profile.threads << ",\n"
       << "  \"numa\": \"" << numa_policy_name(profile.numa) << "\",\n"
       << "  \"source\": \"" << profile_source_name(profile.source)
       << "\"\n"
       << "}\n";

  // Atomic publish: write a sibling tmp file, then rename over the
  // target. Readers see either the old profile or the new one, never a
  // torn write.
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) {
      if (error) *error = "cannot open for write: " + tmp;
      return false;
    }
    out << json.str();
    out.flush();
    if (!out) {
      if (error) *error = "write failed: " + tmp;
      std::remove(tmp.c_str());
      return false;
    }
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    if (error) *error = "rename failed: " + path;
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

bool load_profile(const std::string& path, const MachineTopology& topo,
                  TuneProfile* out, std::string* diagnostic) {
  std::ifstream in(path);
  if (!in) {
    if (diagnostic) *diagnostic = "missing profile: " + path;
    return false;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string text = buf.str();
  if (text.empty()) {
    if (diagnostic) *diagnostic = "corrupt profile: empty file: " + path;
    return false;
  }

  std::string schema;
  if (!extract_value(text, "schema", &schema) || schema != kSchema) {
    if (diagnostic)
      *diagnostic = "wrong schema: expected " + std::string(kSchema) +
                    ", got \"" + schema + "\": " + path;
    return false;
  }

  TuneProfile p;
  if (!extract_int(text, "tile_log2", 2, 30, &p.geometry.tile_log2) ||
      !extract_int(text, "group_qubits", 1, 16, &p.geometry.group_qubits) ||
      !extract_int(text, "chunk_log2", 2, 30, &p.geometry.chunk_log2) ||
      !extract_int(text, "threads", 0, 4096, &p.threads)) {
    if (diagnostic)
      *diagnostic =
          "corrupt profile: missing or out-of-range numeric field: " + path;
    return false;
  }
  if (!extract_value(text, "cpu_model", &p.cpu_model) ||
      !extract_value(text, "simd_level", &p.simd_level)) {
    if (diagnostic)
      *diagnostic = "corrupt profile: missing machine key: " + path;
    return false;
  }
  std::string numa;
  if (extract_value(text, "numa", &numa) && numa == "first_touch")
    p.numa = NumaPolicy::FirstTouch;

  if (!machine_key_matches(p.cpu_model, topo.cpu_model) ||
      !machine_key_matches(p.simd_level, topo.simd_level)) {
    if (diagnostic)
      *diagnostic = "stale profile: written for cpu_model=\"" +
                    p.cpu_model + "\" simd_level=\"" + p.simd_level +
                    "\", this machine is cpu_model=\"" + topo.cpu_model +
                    "\" simd_level=\"" + topo.simd_level + "\": " + path;
    return false;
  }

  p.source = ProfileSource::File;
  *out = p;
  return true;
}

// ----------------------------------------------------------- resolution

namespace {

struct ResolveState {
  Mutex mu;
  bool probed QOKIT_GUARDED_BY(mu) = false;
  MachineTopology topo QOKIT_GUARDED_BY(mu);
  std::map<std::pair<int, std::string>, TuneProfile> cache
      QOKIT_GUARDED_BY(mu);
  std::string diagnostic QOKIT_GUARDED_BY(mu);
};

ResolveState& resolve_state() {
  static ResolveState s;
  return s;
}

/// Fold the environment into the spec-level request. Spec values other
/// than Auto win outright; Auto defers to QOKIT_TUNE ("off"/"static",
/// "search") and QOKIT_TUNE_PATH.
void effective_request(TuneMode* mode, std::string* path) {
  if (*mode != TuneMode::Auto) return;
  if (const char* v = std::getenv("QOKIT_TUNE")) {
    const std::string s(v);
    // "0"/"false" included for the same YAML boolean-coercion reason as
    // QOKIT_PIPELINE (see pipeline_disabled_by_env).
    if (s == "off" || s == "OFF" || s == "static" || s == "0" ||
        s == "false")
      *mode = TuneMode::Static;
    else if (s == "search")
      *mode = TuneMode::Search;
  }
  if (*mode != TuneMode::Static && path->empty()) {
    if (const char* p = std::getenv("QOKIT_TUNE_PATH"); p && *p) *path = p;
  }
}

void export_gauges(const TuneProfile& profile, const MachineTopology& topo) {
  static obs::Gauge g_tile = obs::gauge("qokit_tune_tile_log2");
  static obs::Gauge g_group = obs::gauge("qokit_tune_group_qubits");
  static obs::Gauge g_chunk = obs::gauge("qokit_tune_chunk_log2");
  static obs::Gauge g_threads = obs::gauge("qokit_tune_threads");
  static obs::Gauge g_source = obs::gauge("qokit_tune_source");
  static obs::Gauge g_l2 = obs::gauge("qokit_probe_l2_bytes");
  static obs::Gauge g_l3 = obs::gauge("qokit_probe_l3_bytes");
  static obs::Gauge g_numa = obs::gauge("qokit_probe_numa_nodes");
  static obs::Gauge g_cores = obs::gauge("qokit_probe_physical_cores");
  g_tile.set(profile.geometry.tile_log2);
  g_group.set(profile.geometry.group_qubits);
  g_chunk.set(profile.geometry.chunk_log2);
  g_threads.set(profile.threads);
  g_source.set(static_cast<double>(profile.source));
  g_l2.set(static_cast<double>(topo.l2_bytes));
  g_l3.set(static_cast<double>(topo.l3_bytes));
  g_numa.set(topo.numa_nodes);
  g_cores.set(topo.physical_cores);
}

/// Process-wide side effects of adopting a profile. Thread count is
/// applied only when the user did not set OMP_NUM_THREADS themselves
/// (explicit user configuration always wins); first-touch is sticky once
/// any profile turns it on.
void apply_profile(const TuneProfile& profile) {
#if defined(_OPENMP)
  if (profile.threads > 0 && std::getenv("OMP_NUM_THREADS") == nullptr)
    omp_set_num_threads(profile.threads);
#endif
  if (profile.numa == NumaPolicy::FirstTouch) set_first_touch_enabled(true);
}

}  // namespace

TuneProfile resolve_profile(TuneMode mode, const std::string& path_in) {
  std::string path = path_in;
  effective_request(&mode, &path);

  if (mode == TuneMode::Static) {
    // The oracle path: no probe, no file I/O, no runtime mutation —
    // exactly the pre-tune behavior.
    return static_profile();
  }

  ResolveState& st = resolve_state();
  MutexLock lock(st.mu);
  const std::pair<int, std::string> key{static_cast<int>(mode), path};
  if (const auto it = st.cache.find(key); it != st.cache.end())
    return it->second;

  if (!st.probed) {
    st.topo = probe_machine();
    st.probed = true;
  }
  st.diagnostic.clear();

  TuneProfile profile;
  bool loaded = false;
  if (!path.empty() && mode != TuneMode::Search) {
    std::string diag;
    if (load_profile(path, st.topo, &profile, &diag)) {
      loaded = true;
    } else {
      st.diagnostic = diag;
      if (mode == TuneMode::Path) {
        // An explicitly named profile that cannot be used degrades to
        // the heuristic: serving beats failing, and the diagnostic is
        // pinned for tests/operators.
        profile = heuristic_profile(st.topo);
      }
    }
  }
  if (!loaded && mode != TuneMode::Path) {
    profile = mode == TuneMode::Search ? search_profile(st.topo)
                                       : heuristic_profile(st.topo);
    if (!path.empty()) {
      // Auto/Search with a configured path: persist so the next process
      // (or the next CI leg) loads instead of recomputing. Best effort —
      // an unwritable path only records a diagnostic.
      std::string err;
      if (!save_profile(path, profile, &err) && st.diagnostic.empty())
        st.diagnostic = err;
    }
  }

  apply_profile(profile);
  export_gauges(profile, st.topo);
  st.cache.emplace(key, profile);
  return profile;
}

std::string last_resolve_diagnostic() {
  ResolveState& st = resolve_state();
  MutexLock lock(st.mu);
  return st.diagnostic;
}

}  // namespace qokit::tune
