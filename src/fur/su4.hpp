// Two-qubit in-place kernels: the SU(4) extension of Algorithm 1 mentioned
// in paper Sec. III-B, used to implement the Hamming-weight-preserving xy
// mixers M = sum_{<i,j>} (X_i X_j + Y_i Y_j) / 2.
//
// e^{-i beta (XX+YY)/2} acts as identity on |00> and |11> and as the
// rotation [[cos b, -i sin b], [-i sin b, cos b]] on the {|01>, |10>}
// subspace, so one pass touches only two of every four amplitudes.
#pragma once

#include <complex>
#include <cstdint>

#include "common/parallel.hpp"
#include "statevector/state.hpp"

namespace qokit {
namespace kern {

/// e^{-i beta (X_q1 X_q2 + Y_q1 Y_q2)/2} in place; c = cos(beta),
/// s = sin(beta). q1 != q2, order irrelevant (the operator is symmetric).
void xy(cdouble* x, std::uint64_t n_amps, int q1, int q2, double c, double s,
        Exec exec);

/// Generic two-qubit unitary (row-major 4x4 `m`, basis order |q2 q1> =
/// 00,01,10,11 with q1 the low qubit). In-place orbit update; used by the
/// gate-fusion executor and as the dense reference for the xy kernel.
void su4(cdouble* x, std::uint64_t n_amps, int q1, int q2,
         const cdouble m[16], Exec exec);

}  // namespace kern

/// XY rotation on a full state vector.
void apply_xy(StateVector& sv, int q1, int q2, double beta,
              Exec exec = Exec::Parallel);

}  // namespace qokit
