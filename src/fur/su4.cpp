#include "fur/su4.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/bitops.hpp"

namespace qokit {
namespace kern {

void xy(cdouble* x, std::uint64_t n_amps, int q1, int q2, double c, double s,
        Exec exec) {
  const int lo = std::min(q1, q2);
  const int hi = std::max(q1, q2);
  const std::uint64_t b1 = 1ull << q1;
  const std::uint64_t b2 = 1ull << q2;
  double* d = reinterpret_cast<double*>(x);
  const std::int64_t groups = static_cast<std::int64_t>(n_amps >> 2);
  parallel_for(exec, 0, groups, [=](std::int64_t k) {
    const std::uint64_t base =
        insert_two_zero_bits(static_cast<std::uint64_t>(k), lo, hi);
    const std::uint64_t iA = (base | b1) << 1;  // |..q2=0..q1=1..>
    const std::uint64_t iB = (base | b2) << 1;  // |..q2=1..q1=0..>
    const double are = d[iA], aim = d[iA + 1];
    const double bre = d[iB], bim = d[iB + 1];
    // yA = c a - i s b ; yB = -i s a + c b (same butterfly as kern::rx).
    d[iA] = c * are + s * bim;
    d[iA + 1] = c * aim - s * bre;
    d[iB] = c * bre + s * aim;
    d[iB + 1] = c * bim - s * are;
  });
}

void su4(cdouble* x, std::uint64_t n_amps, int q1, int q2, const cdouble m[16],
         Exec exec) {
  if (q1 == q2) throw std::invalid_argument("su4: qubits must differ");
  const int lo = std::min(q1, q2);
  const int hi = std::max(q1, q2);
  const std::uint64_t b1 = 1ull << q1;
  const std::uint64_t b2 = 1ull << q2;
  const std::int64_t groups = static_cast<std::int64_t>(n_amps >> 2);
  parallel_for(exec, 0, groups, [=](std::int64_t k) {
    const std::uint64_t base =
        insert_two_zero_bits(static_cast<std::uint64_t>(k), lo, hi);
    const std::uint64_t idx[4] = {base, base | b1, base | b2, base | b1 | b2};
    cdouble in[4];
    for (int r = 0; r < 4; ++r) in[r] = x[idx[r]];
    for (int r = 0; r < 4; ++r) {
      cdouble acc(0.0, 0.0);
      for (int col = 0; col < 4; ++col) acc += m[r * 4 + col] * in[col];
      x[idx[r]] = acc;
    }
  });
}

}  // namespace kern

void apply_xy(StateVector& sv, int q1, int q2, double beta, Exec exec) {
  if (q1 < 0 || q2 < 0 || q1 >= sv.num_qubits() || q2 >= sv.num_qubits() ||
      q1 == q2)
    throw std::invalid_argument("apply_xy: bad qubit pair");
  kern::xy(sv.data(), sv.size(), q1, q2, std::cos(beta), std::sin(beta), exec);
}

}  // namespace qokit
