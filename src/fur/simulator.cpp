#include "fur/simulator.hpp"

#include <stdexcept>

#include "common/aligned.hpp"
#include "common/bitops.hpp"
#include "common/parallel.hpp"
#include "diagonal/ops.hpp"
#include "obs/obs.hpp"
#include "pipeline/layer_exec.hpp"

namespace qokit {
namespace {

/// One fused schedule over a raw amplitude array at either precision.
/// When `red` is set, the FINAL layer's last pass carries the expectation
/// reduction into `partials` (double at both precisions). The u16 factor
/// table is rebuilt per gamma into a per-thread, per-precision scratch
/// vector, so steady-state layers allocate nothing.
template <class T>
void fused_schedule(const pipeline::LayerPlan& plan, std::complex<T>* amp,
                    std::uint64_t n_amps, bool use_u16,
                    const CostDiagonal& diag, const DiagonalU16& diag16,
                    std::span<const double> gammas,
                    std::span<const double> betas, Exec exec,
                    const pipeline::ExpectationCtx* red = nullptr,
                    double* partials = nullptr) {
  thread_local aligned_vector<std::complex<T>> lut;  // u16 per-gamma factors
  for (std::size_t l = 0; l < gammas.size(); ++l) {
    pipeline::PhaseCtxT<T> ctx;
    if (use_u16) {
      diag16.phase_table_into(gammas[l], lut);
      ctx.codes = diag16.codes();
      ctx.table = lut.data();
    } else {
      ctx.costs = diag.data();
    }
    if (red && l + 1 == gammas.size()) {
      // Final layer: the reduction rides the last pass's write-back, so
      // the separate full-state expectation sweep never happens.
      pipeline::run_layer_expectation(plan, amp, n_amps, ctx, gammas[l],
                                      betas[l], exec, *red, partials);
    } else {
      pipeline::run_layer(plan, amp, n_amps, ctx, gammas[l], betas[l],
                          exec);
    }
  }
}

}  // namespace

StateVector QaoaFastSimulatorBase::simulate_qaoa(
    std::span<const double> gammas, std::span<const double> betas) const {
  return simulate_qaoa_from(initial_state(), gammas, betas);
}

double QaoaFastSimulatorBase::simulate_qaoa_expectation(
    StateVector& state, std::span<const double> gammas,
    std::span<const double> betas) const {
  state = simulate_qaoa_from(std::move(state), gammas, betas);
  return get_expectation(state);
}

double QaoaFastSimulatorBase::get_expectation(const StateVector& result,
                                              const CostDiagonal& costs)
    const {
  return expectation(result, costs);
}

double QaoaFastSimulatorBase::get_overlap(const StateVector& result,
                                          const CostDiagonal& costs) const {
  return overlap_ground(result, costs);
}

std::vector<double> per_layer_expectations(const QaoaFastSimulatorBase& sim,
                                           std::span<const double> gammas,
                                           std::span<const double> betas) {
  if (gammas.size() != betas.size())
    throw std::invalid_argument("per_layer_expectations: length mismatch");
  std::vector<double> trace;
  trace.reserve(gammas.size());
  StateVector state = sim.initial_state();
  for (std::size_t l = 0; l < gammas.size(); ++l) {
    state = sim.simulate_qaoa_from(std::move(state), gammas.subspan(l, 1),
                                   betas.subspan(l, 1));
    trace.push_back(sim.get_expectation(state));
  }
  return trace;
}

namespace {

void check_prec_mixer(const FurConfig& cfg) {
  if (cfg.prec != Precision::F64 && cfg.mixer != MixerType::X)
    throw std::invalid_argument(
        "FurQaoaSimulator: prec=f32 supports the X mixer only");
}

}  // namespace

FurQaoaSimulator::FurQaoaSimulator(const TermList& terms, FurConfig cfg)
    : cfg_(cfg),
      diag_(CostDiagonal::precompute(terms, cfg.exec, cfg.precompute)),
      plan_(pipeline::LayerPlan::build(diag_.num_qubits(), cfg.mixer,
                                       cfg.backend, cfg.pipeline)) {
  check_prec_mixer(cfg_);
  if (cfg_.use_u16) diag16_ = DiagonalU16::encode(diag_);
}

FurQaoaSimulator::FurQaoaSimulator(CostDiagonal costs, FurConfig cfg)
    : cfg_(cfg),
      diag_(std::move(costs)),
      plan_(pipeline::LayerPlan::build(diag_.num_qubits(), cfg.mixer,
                                       cfg.backend, cfg.pipeline)) {
  check_prec_mixer(cfg_);
  if (cfg_.use_u16) diag16_ = DiagonalU16::encode(diag_);
}

StateVector FurQaoaSimulator::initial_state() const {
  const int n = num_qubits();
  if (cfg_.mixer == MixerType::X)
    return StateVector::plus_state(n, cfg_.prec);
  const int k = cfg_.initial_weight >= 0 ? cfg_.initial_weight : n / 2;
  return StateVector::dicke_state(n, k, cfg_.prec);
}

StateVector FurQaoaSimulator::simulate_qaoa_from(
    StateVector state, std::span<const double> gammas,
    std::span<const double> betas) const {
  if (gammas.size() != betas.size())
    throw std::invalid_argument("simulate_qaoa: gammas/betas length mismatch");
  if (state.num_qubits() != num_qubits())
    throw std::invalid_argument("simulate_qaoa: state size mismatch");
  obs::Span span("simulate");
  span.attr("n", num_qubits());
  span.attr("p", static_cast<std::int64_t>(gammas.size()));
  span.attr("fused", plan_.active() ? 1 : 0);
  if (plan_.active()) {
    // Fused layer pipeline: the phase multiply rides the first mixer
    // sweep and butterflies run in cache-blocked tiles, cutting full
    // sweeps per layer from n + 1 to plan_.full_sweeps() — bit-identical
    // to the unfused loop below (the traversal changes, the per-amplitude
    // arithmetic does not). Dispatch on the state's own precision so a
    // caller-provided f64 state through an f32 simulator still evolves
    // correctly (and vice versa).
    if (state.precision() == Precision::F32)
      fused_schedule(plan_, state.data_f32(), state.size(), cfg_.use_u16,
                     diag_, diag16_, gammas, betas, cfg_.exec);
    else
      fused_schedule(plan_, state.data(), state.size(), cfg_.use_u16, diag_,
                     diag16_, gammas, betas, cfg_.exec);
    return state;
  }
  // Algorithm 3, unfused (the pipeline's correctness oracle): per layer,
  // one elementwise phase multiply from the cached diagonal and one
  // in-place mixer transform. Nothing scales with |T|.
  for (std::size_t l = 0; l < gammas.size(); ++l) {
    if (cfg_.use_u16)
      apply_phase(state, diag16_, gammas[l], cfg_.exec);
    else
      apply_phase(state, diag_, gammas[l], cfg_.exec);
    apply_mixer(state, cfg_.mixer, betas[l], cfg_.exec, cfg_.backend);
  }
  return state;
}

double FurQaoaSimulator::simulate_qaoa_expectation(
    StateVector& state, std::span<const double> gammas,
    std::span<const double> betas) const {
  if (gammas.size() != betas.size())
    throw std::invalid_argument("simulate_qaoa: gammas/betas length mismatch");
  if (state.num_qubits() != num_qubits())
    throw std::invalid_argument("simulate_qaoa: state size mismatch");
  if (gammas.empty() || !plan_.active() ||
      !pipeline::can_fuse_expectation(plan_, state.size())) {
    // Two-pass oracle: unfused backends, tiny states, empty schedules.
    state = simulate_qaoa_from(std::move(state), gammas, betas);
    return get_expectation(state);
  }
  obs::Span span("simulate_expectation");
  span.attr("n", num_qubits());
  span.attr("p", static_cast<std::int64_t>(gammas.size()));
  pipeline::ExpectationCtx red;
  if (cfg_.use_u16) {
    red.codes = diag16_.codes();
    red.offset = diag16_.offset();
    red.scale = diag16_.scale();
  } else {
    red.costs = diag_.data();
  }
  thread_local aligned_vector<double> partials;
  partials.assign(state.size() / static_cast<std::uint64_t>(kReduceBlock),
                  0.0);
  if (state.precision() == Precision::F32)
    fused_schedule(plan_, state.data_f32(), state.size(), cfg_.use_u16,
                   diag_, diag16_, gammas, betas, cfg_.exec, &red,
                   partials.data());
  else
    fused_schedule(plan_, state.data(), state.size(), cfg_.use_u16, diag_,
                   diag16_, gammas, betas, cfg_.exec, &red,
                   partials.data());
  // Sequential sum in block-index order: parallel_reduce_blocks'
  // combination order, hence bit-identical to get_expectation(state).
  double acc = 0.0;
  for (const double p : partials) acc += p;
  return acc;
}

double FurQaoaSimulator::get_expectation(const StateVector& result) const {
  if (cfg_.use_u16) return expectation(result, diag16_, cfg_.exec);
  return expectation(result, diag_, cfg_.exec);
}

double FurQaoaSimulator::get_overlap(const StateVector& result,
                                     int restrict_weight) const {
  if (restrict_weight < 0) return overlap_ground(result, diag_, 1e-9, cfg_.exec);
  return overlap_ground_sector(result, diag_, restrict_weight, 1e-9,
                               cfg_.exec);
}

const DiagonalU16& FurQaoaSimulator::diagonal_u16() const {
  if (!cfg_.use_u16)
    throw std::logic_error("diagonal_u16: simulator not in u16 mode");
  return diag16_;
}

StateVector simulate_ma_qaoa(const FurQaoaSimulator& sim,
                             std::span<const double> gammas,
                             std::span<const double> betas) {
  const int n = sim.num_qubits();
  if (sim.config().mixer != MixerType::X)
    throw std::invalid_argument("simulate_ma_qaoa: X mixer only");
  if (betas.size() != gammas.size() * static_cast<std::size_t>(n))
    throw std::invalid_argument("simulate_ma_qaoa: need p*n mixer angles");
  StateVector state = sim.initial_state();
  const Exec exec = sim.config().exec;
  for (std::size_t l = 0; l < gammas.size(); ++l) {
    apply_phase(state, sim.get_cost_diagonal(), gammas[l], exec);
    apply_mixer_x_multiangle(state, betas.subspan(l * n, n), exec);
  }
  return state;
}

// The choose_simulator family is defined in api/spec.cpp: every name now
// parses through SimulatorSpec and every simulator is built by
// make_simulator, so the string grammar has exactly one home.

}  // namespace qokit
