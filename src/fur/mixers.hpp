// QAOA mixing operators (paper Sec. III-B).
//
// - X: transverse field, U_M = prod_i e^{-i beta X_i} (the gates commute,
//   so the product equals e^{-i beta sum X_i} exactly). One Algorithm-1
//   pass per qubit, in place.
// - XY ring / complete: Hamming-weight-preserving mixers built from
//   two-qubit e^{-i beta (XX+YY)/2} rotations over the edges of a ring or
//   complete graph, applied as an ordered product in edge order (the SU(4)
//   extension of Algorithms 1-2 used by QOKit; the factors do not commute,
//   so the order is part of the mixer definition and is fixed here).
#pragma once

#include <span>

#include "common/parallel.hpp"
#include "statevector/state.hpp"

namespace qokit {

/// Which mixing operator a simulator applies between phase layers.
enum class MixerType { X, XYRing, XYComplete };

/// Implementation used for the X mixer: the paper's single-pass fused
/// kernel, or the FWHT -> diagonal -> FWHT route of its Ref. [43].
enum class MixerBackend { Fused, Fwht };

/// Transverse-field mixer e^{-i beta sum_i X_i}.
void apply_mixer_x(StateVector& sv, double beta, Exec exec = Exec::Parallel,
                   MixerBackend backend = MixerBackend::Fused);

/// Multi-angle X mixer: prod_i e^{-i beta_i X_i} with one angle per qubit
/// (the ma-QAOA ansatz). Algorithm 2 supports this natively -- each
/// per-qubit pass already takes its own U_i -- so the generalization is
/// free; betas.size() must equal the qubit count.
void apply_mixer_x_multiangle(StateVector& sv, std::span<const double> betas,
                              Exec exec = Exec::Parallel);

/// Ring XY mixer: product of XY rotations over edges
/// (0,1), (1,2), ..., (n-2,n-1), (n-1,0) in that order.
void apply_mixer_xy_ring(StateVector& sv, double beta,
                         Exec exec = Exec::Parallel);

/// Complete-graph XY mixer: product of XY rotations over all pairs (i, j),
/// i < j, in lexicographic order (Listing 2's choose_simulator_xycomplete).
void apply_mixer_xy_complete(StateVector& sv, double beta,
                             Exec exec = Exec::Parallel);

/// Dispatch by MixerType.
void apply_mixer(StateVector& sv, MixerType type, double beta,
                 Exec exec = Exec::Parallel,
                 MixerBackend backend = MixerBackend::Fused);

}  // namespace qokit
