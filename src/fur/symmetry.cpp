#include "fur/symmetry.hpp"

#include <cmath>
#include <stdexcept>

#include "common/bitops.hpp"
#include "diagonal/ops.hpp"
#include "fur/su2.hpp"

namespace qokit {
namespace {

/// Butterfly on orbits {x, fl(x)} of the top-qubit mixer pass, where
/// fl(x) = ~x over the low n-1 bits. Identical arithmetic to kern::rx,
/// different index pairing; each orbit visited once via x < fl(x).
void rx_top_qubit_half(cdouble* h, int n_minus_1, double c, double s,
                       Exec exec) {
  const std::uint64_t dim = dim_of(n_minus_1);
  const std::uint64_t low_mask = dim - 1;
  parallel_for(exec, 0, static_cast<std::int64_t>(dim), [=](std::int64_t xi) {
    const std::uint64_t x = static_cast<std::uint64_t>(xi);
    const std::uint64_t fx = ~x & low_mask;
    if (x >= fx) return;  // each orbit handled by its smaller member
    const cdouble a = h[x];
    const cdouble b = h[fx];
    h[x] = c * a - cdouble(0, s) * b;
    h[fx] = cdouble(0, -s) * a + c * b;
  });
}

}  // namespace

bool is_flip_symmetric(const TermList& terms) {
  for (const Term& t : terms)
    if (t.mask != 0 && t.order() % 2 != 0) return false;
  return true;
}

SymmetricFurSimulator::SymmetricFurSimulator(const TermList& terms, Exec exec)
    : n_(terms.num_qubits()), exec_(exec) {
  if (!is_flip_symmetric(terms))
    throw std::invalid_argument(
        "SymmetricFurSimulator: cost function is not spin-flip symmetric");
  if (n_ < 2)
    throw std::invalid_argument("SymmetricFurSimulator: need n >= 2");
  // Precompute only the representative half of the diagonal.
  const Term* ts = terms.terms().data();
  const std::size_t nt = terms.size();
  aligned_vector<double> values(dim_of(n_ - 1), 0.0);
  double* out = values.data();
  parallel_for(exec, 0, static_cast<std::int64_t>(values.size()),
               [out, ts, nt](std::int64_t x) {
                 double acc = 0.0;
                 for (std::size_t k = 0; k < nt; ++k)
                   acc += ts[k].weight *
                          parity_sign(static_cast<std::uint64_t>(x),
                                      ts[k].mask);
                 out[x] = acc;
               });
  half_diag_ = CostDiagonal::from_values(n_ - 1, std::move(values));
}

StateVector SymmetricFurSimulator::simulate_qaoa(
    std::span<const double> gammas, std::span<const double> betas) const {
  if (gammas.size() != betas.size())
    throw std::invalid_argument("simulate_qaoa: schedule length mismatch");
  // Half of |+>^n: every representative amplitude is 2^{-n/2}; the half
  // vector's norm is 1/2 by construction.
  StateVector h(n_ - 1);
  const double amp = 1.0 / std::sqrt(static_cast<double>(dim_of(n_)));
  for (std::uint64_t x = 0; x < h.size(); ++x) h[x] = cdouble(amp, 0.0);

  for (std::size_t l = 0; l < gammas.size(); ++l) {
    apply_phase(h, half_diag_, gammas[l], exec_);
    const double c = std::cos(betas[l]);
    const double s = std::sin(betas[l]);
    for (int q = 0; q < n_ - 1; ++q)
      kern::rx(h.data(), h.size(), q, c, s, exec_);
    rx_top_qubit_half(h.data(), n_ - 1, c, s, exec_);
  }
  return h;
}

double SymmetricFurSimulator::get_expectation(const StateVector& half) const {
  return 2.0 * expectation(half, half_diag_, exec_);
}

double SymmetricFurSimulator::get_overlap(const StateVector& half) const {
  return 2.0 * overlap_ground(half, half_diag_, 1e-9, exec_);
}

StateVector SymmetricFurSimulator::expand(const StateVector& half) const {
  StateVector full(n_);
  const std::uint64_t low_mask = dim_of(n_ - 1) - 1;
  for (std::uint64_t x = 0; x < full.size(); ++x) {
    const bool top = test_bit(x, n_ - 1);
    const std::uint64_t rep = top ? (~x & low_mask) : x;
    full[x] = half[rep];
  }
  return full;
}

}  // namespace qokit
