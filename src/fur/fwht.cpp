#include "fur/fwht.hpp"

#include <cmath>

#include "common/bitops.hpp"
#include "fur/su2.hpp"

namespace qokit {

void fwht(StateVector& sv, Exec exec) {
  for (int q = 0; q < sv.num_qubits(); ++q)
    kern::hadamard(sv.data(), sv.size(), q, exec);
}

void apply_mixer_x_fwht(StateVector& sv, double beta, Exec exec) {
  const int n = sv.num_qubits();
  fwht(sv, exec);
  // In the Hadamard frame the mixer is diagonal with eigenvalue
  // sum_i (1 - 2 b_i) = n - 2 popcount(x) on basis state x.
  cdouble* amp = sv.data();
  parallel_for(exec, 0, static_cast<std::int64_t>(sv.size()),
               [amp, beta, n](std::int64_t i) {
                 const double lam =
                     n - 2 * popcount(static_cast<std::uint64_t>(i));
                 const double ang = -beta * lam;
                 amp[i] *= cdouble(std::cos(ang), std::sin(ang));
               });
  fwht(sv, exec);
}

}  // namespace qokit
