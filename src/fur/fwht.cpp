#include "fur/fwht.hpp"

#include <cmath>

#include "common/bitops.hpp"
#include "fur/su2.hpp"
#include "simd/kernels.hpp"

namespace qokit {

void fwht(StateVector& sv, Exec exec) {
  if (sv.precision() == Precision::F32) {
    for (int q = 0; q < sv.num_qubits(); ++q)
      kern::hadamard(sv.data_f32(), sv.size(), q, exec);
    return;
  }
  for (int q = 0; q < sv.num_qubits(); ++q)
    kern::hadamard(sv.data(), sv.size(), q, exec);
}

void fill_x_mixer_phase_table(int num_qubits, double beta, cdouble* table) {
  for (int w = 0; w <= num_qubits; ++w) {
    const double ang = -beta * (num_qubits - 2 * w);
    table[w] = cdouble(std::cos(ang), std::sin(ang));
  }
}

void fill_x_mixer_phase_table(int num_qubits, double beta, cfloat* table) {
  for (int w = 0; w <= num_qubits; ++w) {
    const double ang = -beta * (num_qubits - 2 * w);
    table[w] = cfloat(static_cast<float>(std::cos(ang)),
                      static_cast<float>(std::sin(ang)));
  }
}

void apply_mixer_x_fwht(StateVector& sv, double beta, Exec exec) {
  const int n = sv.num_qubits();
  fwht(sv, exec);
  // In the Hadamard frame the mixer is diagonal with eigenvalue
  // sum_i (1 - 2 b_i) = n - 2 popcount(x) on basis state x — only n + 1
  // distinct phase factors, so build them once and gather by weight
  // instead of paying a sin/cos per amplitude. Fixed-size table (bounded
  // by the StateVector qubit ceiling) keeps this allocation-free for the
  // scratch-pinning contracts of the batch engine.
  if (sv.precision() == Precision::F32) {
    cfloat table[kMaxQubits + 1];
    fill_x_mixer_phase_table(n, beta, table);
    simd::apply_phase_popcount(sv.data_f32(), 0, sv.size(), table, exec);
  } else {
    cdouble table[kMaxQubits + 1];
    fill_x_mixer_phase_table(n, beta, table);
    simd::apply_phase_popcount(sv.data(), 0, sv.size(), table, exec);
  }
  fwht(sv, exec);
}

}  // namespace qokit
