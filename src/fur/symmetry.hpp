// Z2 spin-flip symmetry reduction (paper Sec. VI related work: symmetry
// "has been shown to enable a reduction in the computational and memory
// cost of QAOA simulation ... they can be combined with our techniques").
//
// When every cost term has even order, f(x) = f(~x) (global spin flip).
// The QAOA X-mixer evolution preserves psi(~x) = psi(x): the initial
// |+>^n is flip-symmetric, the phase operator applies equal phases to x
// and ~x, and the transverse-field mixer commutes with the global flip
// X^(x)n. It therefore suffices to evolve the 2^{n-1} amplitudes of the
// representatives (top bit 0):
//   - mixer passes on qubits q < n-1 pair indices inside the half space;
//   - the pass on qubit n-1 pairs x with ~x restricted to the low bits,
//     which is again a closed butterfly inside the half space.
// Memory and per-layer work halve exactly.
#pragma once

#include <span>

#include "diagonal/cost_diagonal.hpp"
#include "statevector/state.hpp"
#include "terms/term.hpp"

namespace qokit {

/// True when every non-constant term has even order, hence f(x) = f(~x).
bool is_flip_symmetric(const TermList& terms);

/// Fast simulator evolving only the flip-symmetry representatives.
///
/// The `result` objects it produces are half vectors: index x in
/// [0, 2^{n-1}) holds psi(x) for the representative with bit n-1 = 0; the
/// missing half is psi(~x) = psi(x). Their norm_squared() is 1/2.
class SymmetricFurSimulator {
 public:
  /// Throws unless is_flip_symmetric(terms).
  explicit SymmetricFurSimulator(const TermList& terms,
                                 Exec exec = Exec::Parallel);

  /// Number of physical qubits n (the half vector stores n-1 index bits).
  int num_qubits() const { return n_; }

  /// Half-space cost diagonal (2^{n-1} representative values).
  const CostDiagonal& half_diagonal() const { return half_diag_; }

  /// Evolve the symmetric QAOA state; returns the half vector.
  StateVector simulate_qaoa(std::span<const double> gammas,
                            std::span<const double> betas) const;

  /// <C> from a half vector (doubles the representative sum).
  double get_expectation(const StateVector& half) const;

  /// Ground-state probability from a half vector.
  double get_overlap(const StateVector& half) const;

  /// Reconstruct the full 2^n state (for verification / interop).
  StateVector expand(const StateVector& half) const;

 private:
  int n_ = 0;
  Exec exec_;
  CostDiagonal half_diag_;
};

}  // namespace qokit
