// Fast Walsh-Hadamard transform and the two-transform mixer of the paper's
// Ref. [43] (Sack & Serbyn), kept as an ablation baseline.
//
// The transverse-field mixer factors as e^{-i b sum X} =
// H^{(x)n} e^{-i b sum Z} H^{(x)n}: a forward FWHT, a diagonal phase
// e^{-i b (n - 2 popcount(x))}, and an inverse FWHT. That costs two full
// transforms per layer where Algorithms 1-2 cost one transform-equivalent
// pass; the paper's closing discussion credits its mixer with exactly this
// 2x saving (plus working in place).
#pragma once

#include "common/parallel.hpp"
#include "statevector/state.hpp"

namespace qokit {

/// In-place orthonormal Walsh-Hadamard transform (H on every qubit).
/// Self-inverse. Equals Algorithm 2 with U_i = H for all i. Dispatches on
/// the state's amplitude precision.
void fwht(StateVector& sv, Exec exec = Exec::Parallel);

/// Transverse-field mixer e^{-i beta sum_i X_i} via FWHT -> diagonal ->
/// FWHT. Numerically identical to apply_mixer_x; ~2x the transform work.
void apply_mixer_x_fwht(StateVector& sv, double beta,
                        Exec exec = Exec::Parallel);

/// The Hadamard-frame diagonal of the X mixer, tabulated by Hamming
/// weight: table[w] = e^{-i beta (n - 2w)} for w = 0..num_qubits (the
/// caller provides num_qubits + 1 slots, at most kMaxQubits + 1). Shared
/// by the unfused mixer above and the fused layer pipeline so both gather
/// bit-identical factors. The cfloat overload computes the angles in
/// double and narrows each factor once (the same per-entry rounding as
/// every other f32 phase table).
void fill_x_mixer_phase_table(int num_qubits, double beta, cdouble* table);
void fill_x_mixer_phase_table(int num_qubits, double beta, cfloat* table);

}  // namespace qokit
