#include "fur/su2.hpp"

#include <cmath>
#include <stdexcept>

#include "common/bitops.hpp"
#include "simd/kernels.hpp"

namespace qokit {
namespace kern {

void su2(cdouble* x, std::uint64_t n_amps, int qubit, const Su2& u,
         Exec exec) {
  const std::int64_t pairs = static_cast<std::int64_t>(n_amps >> 1);
  const cdouble a = u.a;
  const cdouble b = u.b;
  const cdouble nbc = -std::conj(b);
  const cdouble ac = std::conj(a);
  const std::uint64_t stride = 1ull << qubit;
  parallel_for(exec, 0, pairs, [=](std::int64_t k) {
    const std::uint64_t i0 = insert_zero_bit(static_cast<std::uint64_t>(k),
                                             qubit);
    const std::uint64_t i1 = i0 | stride;
    const cdouble x0 = x[i0];
    const cdouble x1 = x[i1];
    x[i0] = a * x0 + nbc * x1;
    x[i1] = b * x0 + ac * x1;
  });
}

void rx(cdouble* x, std::uint64_t n_amps, int qubit, double c, double s,
        Exec exec) {
  // e^{-i beta X}: y0 = c x0 - i s x1, y1 = -i s x0 + c x1. Routed through
  // the dispatched butterfly kernels (simd/kernels.hpp): in-register
  // shuffles for qubit 0, contiguous dual-pointer streams above.
  simd::rx(x, n_amps, qubit, c, s, exec);
}

void rx(cfloat* x, std::uint64_t n_amps, int qubit, double c, double s,
        Exec exec) {
  simd::rx(x, n_amps, qubit, c, s, exec);
}

void hadamard(cdouble* x, std::uint64_t n_amps, int qubit, Exec exec) {
  simd::hadamard(x, n_amps, qubit, exec);
}

void hadamard(cfloat* x, std::uint64_t n_amps, int qubit, Exec exec) {
  simd::hadamard(x, n_amps, qubit, exec);
}

}  // namespace kern

namespace {

void check_qubit(const StateVector& sv, int qubit, const char* what) {
  if (qubit < 0 || qubit >= sv.num_qubits())
    throw std::out_of_range(std::string(what) + ": qubit out of range");
}

}  // namespace

void apply_su2(StateVector& sv, int qubit, const Su2& u, Exec exec) {
  check_qubit(sv, qubit, "apply_su2");
  kern::su2(sv.data(), sv.size(), qubit, u, exec);
}

void apply_rx(StateVector& sv, int qubit, double beta, Exec exec) {
  check_qubit(sv, qubit, "apply_rx");
  kern::rx(sv.data(), sv.size(), qubit, std::cos(beta), std::sin(beta), exec);
}

void apply_su2_product(StateVector& sv, const Su2* us, int count, Exec exec) {
  if (count != sv.num_qubits())
    throw std::invalid_argument("apply_su2_product: need one U per qubit");
  for (int q = 0; q < count; ++q) kern::su2(sv.data(), sv.size(), q, us[q], exec);
}

}  // namespace qokit
