// The QAOA fast-simulator class hierarchy (paper Sec. IV).
//
// Mirrors QOKit's Python API: an abstract base
// (qokit.fur.QAOAFastSimulatorBase) with simulate_qaoa plus get_-prefixed
// output methods, concrete simulators selected through choose_simulator
// family factories. Algorithm 3 (precompute once; per layer one elementwise
// phase multiply and one mixer transform) is the heart of simulate_qaoa.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "diagonal/cost_diagonal.hpp"
#include "diagonal/diagonal_u16.hpp"
#include "fur/mixers.hpp"
#include "pipeline/layer_plan.hpp"
#include "statevector/state.hpp"
#include "terms/term.hpp"

namespace qokit {

/// Construction-time options for FurQaoaSimulator.
struct FurConfig {
  Exec exec = Exec::Parallel;       ///< serial ("python") vs threaded ("c")
  MixerType mixer = MixerType::X;   ///< which mixing operator
  MixerBackend backend = MixerBackend::Fused;  ///< X-mixer implementation
  bool use_u16 = false;             ///< store/apply the uint16 diagonal
  int initial_weight = -1;          ///< Dicke weight for xy mixers; -1 = n/2
  PrecomputeStrategy precompute = PrecomputeStrategy::ElementMajor;
  /// Cache-blocked fused layer execution (src/pipeline/): on by default
  /// for X-mixer layers, bit-identical to the unfused loop, which remains
  /// selectable as the oracle via mode = Off or QOKIT_PIPELINE=off.
  pipeline::PipelineOptions pipeline{};
  /// Amplitude scalar width. F32 halves state memory and DRAM traffic per
  /// sweep; the diagonal, all angles, and every reduction stay double (see
  /// DESIGN.md "Mixed precision"). X mixer only — the ctor rejects F32
  /// with xy mixers.
  Precision prec = Precision::F64;
};

/// Abstract QAOA simulator: owns the precomputed cost diagonal and turns
/// (gamma, beta) parameter vectors into evolved states and objectives.
class QaoaFastSimulatorBase {
 public:
  virtual ~QaoaFastSimulatorBase() = default;

  virtual int num_qubits() const = 0;

  /// Amplitude precision this simulator evolves states at. The base
  /// default is F64 so existing backends (gatesim, tn) need no change;
  /// callers sizing scratch or cache entries (batch, serve) read this
  /// instead of assuming 16-byte amplitudes.
  virtual Precision precision() const { return Precision::F64; }

  /// Default initial state: |+>^n for the X mixer, the in-sector Dicke
  /// state for xy mixers. Built at precision().
  virtual StateVector initial_state() const = 0;

  /// Run Algorithm 3 from the default initial state. gammas and betas must
  /// have equal length p. The returned StateVector is the `result` object
  /// passed to the get_ methods.
  virtual StateVector simulate_qaoa(std::span<const double> gammas,
                                    std::span<const double> betas) const;

  /// Run Algorithm 3 from a caller-provided state (consumed in place).
  virtual StateVector simulate_qaoa_from(StateVector state,
                                         std::span<const double> gammas,
                                         std::span<const double> betas)
      const = 0;

  /// <result|C|result> using the precomputed diagonal.
  virtual double get_expectation(const StateVector& result) const = 0;

  /// Evolve `state` through the schedule (in place, like
  /// simulate_qaoa_from) and return <C> of the result in one call. The
  /// base implementation is the two-pass path: simulate, then
  /// get_expectation. FurQaoaSimulator overrides it to fuse the
  /// reduction into the final layer's last pipeline pass, skipping one
  /// full read of the state — bit-identical to the two-pass path by the
  /// kReduceBlock alignment argument (pipeline/layer_exec.hpp). The
  /// evolved state is left in `state` either way, so overlap/sampling
  /// can still consume it.
  virtual double simulate_qaoa_expectation(
      StateVector& state, std::span<const double> gammas,
      std::span<const double> betas) const;

  /// Expectation against a caller-supplied cost vector (QOKit's optional
  /// `costs` argument).
  double get_expectation(const StateVector& result,
                         const CostDiagonal& costs) const;

  /// Probability mass on minimum-cost basis states. If restrict_weight >= 0
  /// the minimum is taken within that Hamming-weight sector (relevant for
  /// constrained problems run under xy mixers).
  virtual double get_overlap(const StateVector& result,
                             int restrict_weight = -1) const = 0;

  /// Overlap against a caller-supplied cost vector (QOKit's optional
  /// `costs` argument to get_overlap).
  double get_overlap(const StateVector& result,
                     const CostDiagonal& costs) const;

  /// The evolved state itself (API parity with QOKit's get_statevector).
  const StateVector& get_statevector(const StateVector& result) const {
    return result;
  }

  /// |amp|^2 for every basis state.
  std::vector<double> get_probabilities(const StateVector& result) const {
    return result.probabilities();
  }

  /// The precomputed diagonal (QOKit's get_cost_diagonal).
  virtual const CostDiagonal& get_cost_diagonal() const = 0;

  /// True when one simulate_qaoa call already employs the machine's
  /// parallelism by itself (e.g. the virtual-rank distributed simulator
  /// spawns a thread per rank), so a batch engine should evaluate
  /// schedules sequentially rather than thread across them on top.
  virtual bool prefers_sequential_batches() const { return false; }
};

/// CPU fast simulator implementing Algorithm 3 over the fur kernels.
class FurQaoaSimulator final : public QaoaFastSimulatorBase {
 public:
  /// Precompute the diagonal from polynomial terms.
  explicit FurQaoaSimulator(const TermList& terms, FurConfig cfg = {});

  /// Adopt an existing cost vector (Listing 1's `costs` input path).
  FurQaoaSimulator(CostDiagonal costs, FurConfig cfg = {});

  int num_qubits() const override { return diag_.num_qubits(); }
  Precision precision() const override { return cfg_.prec; }
  StateVector initial_state() const override;
  StateVector simulate_qaoa_from(StateVector state,
                                 std::span<const double> gammas,
                                 std::span<const double> betas) const override;
  using QaoaFastSimulatorBase::get_expectation;  // keep the costs overloads
  using QaoaFastSimulatorBase::get_overlap;
  double get_expectation(const StateVector& result) const override;
  double simulate_qaoa_expectation(StateVector& state,
                                   std::span<const double> gammas,
                                   std::span<const double> betas)
      const override;
  double get_overlap(const StateVector& result,
                     int restrict_weight = -1) const override;
  const CostDiagonal& get_cost_diagonal() const override { return diag_; }

  const FurConfig& config() const { return cfg_; }

  /// The compressed diagonal (valid only when cfg.use_u16).
  const DiagonalU16& diagonal_u16() const;

  /// The fused layer plan built at construction (once per simulator, and
  /// therefore once per session/batch — every schedule reuses it). When
  /// inactive — pipeline disabled, or an xy mixer — simulate_qaoa_from
  /// runs the unfused loop and fallback_reason() says why.
  const pipeline::LayerPlan& layer_plan() const { return plan_; }

 private:
  FurConfig cfg_;
  CostDiagonal diag_;
  DiagonalU16 diag16_;  ///< populated iff cfg_.use_u16
  pipeline::LayerPlan plan_;
};

/// Factory mirroring qokit.fur.choose_simulator: a thin wrapper over
/// make_simulator(terms, SimulatorSpec::parse(name)) — see api/spec.hpp
/// for the full grammar. Recognized base names: "auto" (threaded
/// fused-kernel, the default), "serial", "threaded", "u16", "fwht",
/// "gatesim", and the distributed spellings "dist[:K[:strategy]]".
/// Unknown names throw std::invalid_argument naming the offending token.
std::unique_ptr<QaoaFastSimulatorBase> choose_simulator(
    const TermList& terms, std::string_view name = "auto");

/// Ring-XY-mixer variant of choose_simulator (same grammar; the mixer and
/// Dicke weight are forced onto the parsed spec).
std::unique_ptr<QaoaFastSimulatorBase> choose_simulator_xyring(
    const TermList& terms, std::string_view name = "auto",
    int initial_weight = -1);

/// Complete-graph-XY-mixer variant of choose_simulator.
std::unique_ptr<QaoaFastSimulatorBase> choose_simulator_xycomplete(
    const TermList& terms, std::string_view name = "auto",
    int initial_weight = -1);

/// Objective after each of the p layers (a depth trace): entry l is
/// <C> of the state after applying layers 1..l+1. Useful for studying how
/// energy descends along a schedule without re-simulating prefixes.
std::vector<double> per_layer_expectations(const QaoaFastSimulatorBase& sim,
                                           std::span<const double> gammas,
                                           std::span<const double> betas);

/// Multi-angle QAOA evolution (ma-QAOA): p phase angles and p*n per-qubit
/// mixer angles, laid out layer-major (betas[l*n + q] drives qubit q in
/// layer l). Reuses the simulator's precomputed diagonal; X mixer only.
StateVector simulate_ma_qaoa(const FurQaoaSimulator& sim,
                             std::span<const double> gammas,
                             std::span<const double> betas);

}  // namespace qokit
