// Fast in-place SU(2) application (paper Algorithm 1) and the full
// uniform-SU(2) product transform (Algorithm 2).
//
// Kernels operate on raw amplitude arrays so the distributed simulator
// (Algorithm 4) can run them unchanged on local state-vector slices. All
// updates are in place: each 2^{n_amps}/2 amplitude pair is read and
// written by exactly one iteration, so the loop parallelizes with no
// synchronization and no scratch memory -- the property the paper contrasts
// against the FWHT-based approach of its Ref. [43].
#pragma once

#include <complex>
#include <cstdint>

#include "common/parallel.hpp"
#include "statevector/state.hpp"

namespace qokit {

/// An SU(2) matrix U = [[a, -conj(b)], [b, conj(a)]].
struct Su2 {
  cdouble a{1.0, 0.0};
  cdouble b{0.0, 0.0};
};

namespace kern {

/// Algorithm 1: y = (I x ... x U x ... x I) x in place, U on `qubit`.
/// `n_amps` must be a power of two > 2^qubit.
void su2(cdouble* x, std::uint64_t n_amps, int qubit, const Su2& u, Exec exec);

/// Specialized RX pass: U = e^{-i beta X} with c = cos(beta), s = sin(beta).
/// Same update as su2 with a = c, b = -i s, written in real arithmetic
/// (four fused multiply-adds per amplitude pair). Both amplitude
/// precisions; the f32 overload feeds the mixed-precision X-mixer path.
void rx(cdouble* x, std::uint64_t n_amps, int qubit, double c, double s,
        Exec exec);
void rx(cfloat* x, std::uint64_t n_amps, int qubit, double c, double s,
        Exec exec);

/// Hadamard pass on one qubit: y0 = (x0 + x1)/sqrt(2), y1 = (x0 - x1)/sqrt(2).
/// Not special-unitary (det = -1), hence separate from su2.
void hadamard(cdouble* x, std::uint64_t n_amps, int qubit, Exec exec);
void hadamard(cfloat* x, std::uint64_t n_amps, int qubit, Exec exec);

}  // namespace kern

/// Algorithm 1 on a full state vector.
void apply_su2(StateVector& sv, int qubit, const Su2& u,
               Exec exec = Exec::Parallel);

/// e^{-i beta X_qubit} on a full state vector.
void apply_rx(StateVector& sv, int qubit, double beta,
              Exec exec = Exec::Parallel);

/// Algorithm 2: apply U_i on every qubit i (uniform or per-qubit matrices).
void apply_su2_product(StateVector& sv, const Su2* us, int count,
                       Exec exec = Exec::Parallel);

}  // namespace qokit
