#include "fur/mixers.hpp"

#include <cmath>
#include <stdexcept>

#include "fur/fwht.hpp"
#include "fur/su2.hpp"
#include "fur/su4.hpp"

namespace qokit {

void apply_mixer_x(StateVector& sv, double beta, Exec exec,
                   MixerBackend backend) {
  if (backend == MixerBackend::Fwht) {
    apply_mixer_x_fwht(sv, beta, exec);
    return;
  }
  const double c = std::cos(beta);
  const double s = std::sin(beta);
  if (sv.precision() == Precision::F32) {
    for (int q = 0; q < sv.num_qubits(); ++q)
      kern::rx(sv.data_f32(), sv.size(), q, c, s, exec);
    return;
  }
  for (int q = 0; q < sv.num_qubits(); ++q)
    kern::rx(sv.data(), sv.size(), q, c, s, exec);
}

void apply_mixer_x_multiangle(StateVector& sv, std::span<const double> betas,
                              Exec exec) {
  if (sv.precision() != Precision::F64)
    throw std::invalid_argument(
        "apply_mixer_x_multiangle: f64 states only (prec=f32 supports the "
        "uniform X mixer)");
  if (static_cast<int>(betas.size()) != sv.num_qubits())
    throw std::invalid_argument(
        "apply_mixer_x_multiangle: need one beta per qubit");
  for (int q = 0; q < sv.num_qubits(); ++q)
    kern::rx(sv.data(), sv.size(), q, std::cos(betas[q]), std::sin(betas[q]),
             exec);
}

void apply_mixer_xy_ring(StateVector& sv, double beta, Exec exec) {
  const int n = sv.num_qubits();
  if (sv.precision() != Precision::F64)
    throw std::invalid_argument("xy_ring mixer: f64 states only");
  if (n < 3) throw std::invalid_argument("xy_ring mixer: need n >= 3");
  const double c = std::cos(beta);
  const double s = std::sin(beta);
  for (int i = 0; i < n; ++i)
    kern::xy(sv.data(), sv.size(), i, (i + 1) % n, c, s, exec);
}

void apply_mixer_xy_complete(StateVector& sv, double beta, Exec exec) {
  const int n = sv.num_qubits();
  if (sv.precision() != Precision::F64)
    throw std::invalid_argument("xy_complete mixer: f64 states only");
  if (n < 2) throw std::invalid_argument("xy_complete mixer: need n >= 2");
  const double c = std::cos(beta);
  const double s = std::sin(beta);
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j)
      kern::xy(sv.data(), sv.size(), i, j, c, s, exec);
}

void apply_mixer(StateVector& sv, MixerType type, double beta, Exec exec,
                 MixerBackend backend) {
  switch (type) {
    case MixerType::X:
      apply_mixer_x(sv, beta, exec, backend);
      return;
    case MixerType::XYRing:
      apply_mixer_xy_ring(sv, beta, exec);
      return;
    case MixerType::XYComplete:
      apply_mixer_xy_complete(sv, beta, exec);
      return;
  }
  throw std::logic_error("apply_mixer: unknown mixer type");
}

}  // namespace qokit
