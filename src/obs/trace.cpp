// Scoped spans and the per-thread trace-event buffers.
#include "obs/obs_internal.hpp"

namespace qokit::obs {

namespace detail {

int& span_depth() noexcept {
  thread_local int depth = 0;
  return depth;
}

void push_event(const TraceEvent& event) noexcept {
  Global& g = global();
  Shard& s = my_shard();
  const MutexLock lock(s.events_mu);
  if (s.events.size() >= static_cast<std::size_t>(kMaxShardEvents)) {
    g.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  if (s.events.size() == s.events.capacity())
    g.allocs.fetch_add(1, std::memory_order_relaxed);
  s.events.push_back(event);
}

}  // namespace detail

void Span::open(const char* name) noexcept {
  name_ = name;
  start_ = detail::now_ns();
  depth_ = detail::span_depth()++;
}

void Span::close() noexcept {
  --detail::span_depth();
  detail::TraceEvent e;
  e.name = name_;
  e.ts_ns = start_;
  e.dur_ns = detail::now_ns() - start_;
  e.tid = detail::my_shard().tid;
  e.depth = depth_;
  e.n_attrs = n_attrs_;
  for (int i = 0; i < n_attrs_; ++i) e.attrs[i] = attrs_[i];
  detail::push_event(e);
}

HistTimer::HistTimer(Histogram hist) noexcept
    : hist_(hist), live_(enabled()) {
  if (live_) start_ = detail::now_ns();
}

HistTimer::~HistTimer() {
  if (live_) hist_.record(detail::now_ns() - start_);
}

std::uint64_t trace_event_count() {
  using namespace detail;
  Global& g = global();
  const MutexLock lock(g.mu);
  std::uint64_t total = g.retired_events.size();
  for (Shard* s = g.shards; s; s = s->next) {
    const MutexLock elock(s->events_mu);
    total += s->events.size();
  }
  return total;
}

std::uint64_t dropped_event_count() {
  return detail::global().dropped.load(std::memory_order_relaxed);
}

}  // namespace qokit::obs
