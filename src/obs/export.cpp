// Exporters: merged metric snapshot, JSON / Prometheus text renderings,
// the chrome://tracing trace-event document, and the file dump.
#include <algorithm>
#include <bit>
#include <cstdio>
#include <cstdlib>

#include "obs/obs_internal.hpp"

namespace qokit::obs {

namespace {

using detail::Global;
using detail::MetricDef;
using detail::MetricKind;
using detail::Shard;
using detail::TraceEvent;

/// Minimal JSON string escaping (metric names are ours, but attribute
/// strings pass through here too).
void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_double(std::string& out, double v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

/// Merged value of cell `c` under the registry lock.
std::uint64_t merged(const Global& g, int cell) QOKIT_REQUIRES(g.mu) {
  std::uint64_t total = g.retired[static_cast<std::size_t>(cell)];
  for (const Shard* s = g.shards; s; s = s->next)
    total += s->cells[static_cast<std::size_t>(cell)].load(
        std::memory_order_relaxed);
  return total;
}

void append_trace_event(std::string& out, const TraceEvent& e) {
  out += "{\"name\":\"";
  append_escaped(out, e.name ? e.name : "?");
  out += "\",\"cat\":\"qokit\",\"ph\":\"X\",\"pid\":1,\"tid\":";
  out += std::to_string(e.tid);
  char buf[64];
  // chrome://tracing timestamps are microseconds.
  std::snprintf(buf, sizeof buf, ",\"ts\":%.3f,\"dur\":%.3f",
                static_cast<double>(e.ts_ns) / 1e3,
                static_cast<double>(e.dur_ns) / 1e3);
  out += buf;
  out += ",\"args\":{\"depth\":";
  out += std::to_string(e.depth);
  for (int i = 0; i < e.n_attrs; ++i) {
    const Attr& a = e.attrs[i];
    out += ",\"";
    append_escaped(out, a.key ? a.key : "?");
    out += "\":";
    if (a.tag == 'i') {
      out += std::to_string(a.i);
    } else if (a.tag == 'f') {
      append_double(out, a.f);
    } else {
      out += '"';
      append_escaped(out, a.s ? a.s : "");
      out += '"';
    }
  }
  out += "}}";
}

bool write_file(const std::string& path, const std::string& body) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) return false;
  const bool ok =
      std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace

Snapshot snapshot() {
  Global& g = detail::global();
  Snapshot snap;
  const MutexLock lock(g.mu);
  for (const MetricDef& def : g.metrics) {
    switch (def.kind) {
      case MetricKind::Counter:
        snap.counters.emplace_back(def.name, merged(g, def.cell));
        break;
      case MetricKind::Gauge:
        snap.gauges.emplace_back(
            def.name, std::bit_cast<double>(
                          g.gauges[static_cast<std::size_t>(def.gauge_slot)]
                              .load(std::memory_order_relaxed)));
        break;
      case MetricKind::Histogram: {
        HistogramSnapshot h;
        h.bounds = def.bounds;
        const int n_buckets = static_cast<int>(def.bounds.size()) + 1;
        h.buckets.resize(static_cast<std::size_t>(n_buckets));
        for (int b = 0; b < n_buckets; ++b) {
          h.buckets[static_cast<std::size_t>(b)] = merged(g, def.cell + b);
          h.count += h.buckets[static_cast<std::size_t>(b)];
        }
        h.sum = merged(g, def.cell + n_buckets);
        snap.histograms.emplace_back(def.name, std::move(h));
        break;
      }
    }
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.first < b.first;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

std::string Snapshot::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_escaped(out, name);
    out += "\":";
    out += std::to_string(value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, value] : gauges) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_escaped(out, name);
    out += "\":";
    append_double(out, value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms) {
    if (!first) out += ',';
    first = false;
    out += '"';
    append_escaped(out, name);
    out += "\":{\"bounds\":[";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i) out += ',';
      out += std::to_string(h.bounds[i]);
    }
    out += "],\"buckets\":[";
    for (std::size_t i = 0; i < h.buckets.size(); ++i) {
      if (i) out += ',';
      out += std::to_string(h.buckets[i]);
    }
    out += "],\"count\":";
    out += std::to_string(h.count);
    out += ",\"sum\":";
    out += std::to_string(h.sum);
    out += '}';
  }
  out += "}}";
  return out;
}

std::string Snapshot::to_prometheus() const {
  std::string out;
  for (const auto& [name, value] : counters) {
    out += "# TYPE " + name + " counter\n";
    out += name + ' ' + std::to_string(value) + '\n';
  }
  for (const auto& [name, value] : gauges) {
    out += "# TYPE " + name + " gauge\n";
    out += name + ' ';
    append_double(out, value);
    out += '\n';
  }
  for (const auto& [name, h] : histograms) {
    out += "# TYPE " + name + " histogram\n";
    // Prometheus buckets are cumulative over ascending le bounds.
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      cum += h.buckets[i];
      out += name + "_bucket{le=\"" + std::to_string(h.bounds[i]) +
             "\"} " + std::to_string(cum) + '\n';
    }
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + '\n';
    out += name + "_sum " + std::to_string(h.sum) + '\n';
    out += name + "_count " + std::to_string(h.count) + '\n';
  }
  return out;
}

std::string trace_json() {
  Global& g = detail::global();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const TraceEvent& e) {
    if (!first) out += ',';
    first = false;
    out += '\n';
    append_trace_event(out, e);
  };
  const MutexLock lock(g.mu);
  for (const TraceEvent& e : g.retired_events) emit(e);
  for (Shard* s = g.shards; s; s = s->next) {
    const MutexLock elock(s->events_mu);
    for (const TraceEvent& e : s->events) emit(e);
  }
  out += "\n]}\n";
  return out;
}

bool dump() {
  if (!enabled()) return false;
  const char* env_prefix = std::getenv("QOKIT_OBS_PATH");
  const std::string prefix = env_prefix ? env_prefix : "";
  const Snapshot snap = snapshot();
  bool ok = write_file(prefix + "qokit_obs_metrics.json", snap.to_json());
  ok = write_file(prefix + "qokit_obs_metrics.prom",
                  snap.to_prometheus()) &&
       ok;
  ok = write_file(prefix + "qokit_obs_trace.json", trace_json()) && ok;
  return ok;
}

}  // namespace qokit::obs
