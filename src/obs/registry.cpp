// Metrics registry: the enable flag, name interning, thread-local shards,
// and the merged scrape. See obs.hpp for the design overview.
#include <bit>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "obs/obs_internal.hpp"

namespace qokit::obs {

namespace detail {

std::atomic<int> g_enabled{-1};

bool enabled_slow() noexcept {
  // First query: consult the environment once. A racing set_enabled or a
  // second first-query stores the same derived value, so the CAS loser
  // changes nothing.
  const char* e = std::getenv("QOKIT_OBS");
  const bool on = e != nullptr && (std::strcmp(e, "1") == 0 ||
                                   std::strcmp(e, "on") == 0 ||
                                   std::strcmp(e, "true") == 0);
  int expected = -1;
  g_enabled.compare_exchange_strong(expected, on ? 1 : 0,
                                    std::memory_order_relaxed);
  return g_enabled.load(std::memory_order_relaxed) == 1;
}

Global& global() {
  // Leaked: thread shards retire through this during teardown, after
  // static destructors may already have run.
  static Global* g = new Global;
  return *g;
}

std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - global().epoch)
          .count());
}

namespace {

void retire_shard(Shard* s) {
  Global& g = global();
  MutexLock lock(g.mu);
  for (int c = 0; c < kMaxCells; ++c) {
    const std::uint64_t v = s->cells[c].load(std::memory_order_relaxed);
    if (v != 0) g.retired[static_cast<std::size_t>(c)] += v;
  }
  {
    // Only the exiting owner thread still appends to s->events, and it is
    // the thread running this retire -- but the contract is "events under
    // events_mu", and a concurrent scrape may be mid-drain on the list we
    // are about to unlink from, so take the shard lock (nested inside
    // g.mu, the documented order) rather than reason our way out of it.
    const MutexLock elock(s->events_mu);
    for (TraceEvent& e : s->events) {
      if (g.retired_events.size() >=
          static_cast<std::size_t>(kMaxRetainedEvents)) {
        g.dropped.fetch_add(1, std::memory_order_relaxed);
        continue;
      }
      if (g.retired_events.size() == g.retired_events.capacity())
        g.allocs.fetch_add(1, std::memory_order_relaxed);
      g.retired_events.push_back(e);
    }
  }
  Shard** p = &g.shards;
  while (*p && *p != s) p = &(*p)->next;
  if (*p) *p = s->next;
  delete s;
}

/// Owns this thread's shard pointer; retires the shard at thread exit so
/// counts and events of short-lived threads (dist rank teams) survive.
struct ShardOwner {
  Shard* shard = nullptr;
  ~ShardOwner() {
    if (shard) retire_shard(shard);
  }
};

thread_local ShardOwner tls_owner;

}  // namespace

Shard& my_shard() {
  if (!tls_owner.shard) {
    Global& g = global();
    Shard* s = new Shard;
    s->tid = g.next_tid.fetch_add(1, std::memory_order_relaxed);
    const MutexLock lock(g.mu);
    s->next = g.shards;
    g.shards = s;
    g.allocs.fetch_add(1, std::memory_order_relaxed);
    tls_owner.shard = s;
  }
  return *tls_owner.shard;
}

void counter_add(int cell, std::uint64_t delta) noexcept {
  if (cell < 0) return;  // default-constructed handle
  my_shard().cells[static_cast<std::size_t>(cell)].fetch_add(
      delta, std::memory_order_relaxed);
}

void gauge_set(int slot, double value) noexcept {
  if (slot < 0) return;
  global().gauges[static_cast<std::size_t>(slot)].store(
      std::bit_cast<std::uint64_t>(value), std::memory_order_relaxed);
}

double gauge_get(int slot) noexcept {
  if (slot < 0) return 0.0;
  return std::bit_cast<double>(global().gauges[static_cast<std::size_t>(
      slot)].load(std::memory_order_relaxed));
}

void histogram_record(int cell, const std::uint64_t* bounds, int n_bounds,
                      std::uint64_t value) noexcept {
  if (cell < 0) return;
  int b = n_bounds;  // overflow bucket unless a bound catches it
  for (int i = 0; i < n_bounds; ++i)
    if (value <= bounds[i]) {
      b = i;
      break;
    }
  Shard& s = my_shard();
  s.cells[static_cast<std::size_t>(cell + b)].fetch_add(
      1, std::memory_order_relaxed);
  // Sum cell sits after the overflow bucket.
  s.cells[static_cast<std::size_t>(cell + n_bounds + 1)].fetch_add(
      value, std::memory_order_relaxed);
}

std::uint64_t merged_cell(int cell) {
  if (cell < 0) return 0;
  Global& g = global();
  const MutexLock lock(g.mu);
  std::uint64_t total = g.retired[static_cast<std::size_t>(cell)];
  for (const Shard* s = g.shards; s; s = s->next)
    total += s->cells[static_cast<std::size_t>(cell)].load(
        std::memory_order_relaxed);
  return total;
}

std::uint64_t allocation_count() noexcept {
  return global().allocs.load(std::memory_order_relaxed);
}

namespace {

/// Intern `name` -> index into g.metrics; allocates `cells` fresh cells
/// for a new entry. Caller holds no lock.
int register_metric(std::string_view name, MetricKind kind, int cells,
                    std::vector<std::uint64_t> bounds) {
  Global& g = global();
  const MutexLock lock(g.mu);
  const auto it = g.index.find(std::string(name));
  if (it != g.index.end()) {
    const MetricDef& def = g.metrics[static_cast<std::size_t>(it->second)];
    if (def.kind != kind)
      throw std::logic_error("obs: metric '" + std::string(name) +
                             "' re-registered with a different kind");
    return it->second;
  }
  MetricDef def;
  def.name = std::string(name);
  def.kind = kind;
  def.bounds = std::move(bounds);
  if (kind == MetricKind::Gauge) {
    if (g.next_gauge >= kMaxGauges)
      throw std::logic_error("obs: gauge arena exhausted");
    def.gauge_slot = g.next_gauge++;
  } else {
    if (g.next_cell + cells > kMaxCells)
      throw std::logic_error("obs: metric cell arena exhausted");
    def.cell = g.next_cell;
    g.next_cell += cells;
  }
  const int id = static_cast<int>(g.metrics.size());
  g.metrics.push_back(std::move(def));
  g.index.emplace(g.metrics.back().name, id);
  g.allocs.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// Default latency bounds: powers of four from 256ns to ~1s — wide enough
/// for a kernel pass and a whole distributed evaluate alike.
std::vector<std::uint64_t> default_latency_bounds() {
  std::vector<std::uint64_t> bounds;
  for (std::uint64_t b = 256; b <= (1ull << 30); b <<= 2)
    bounds.push_back(b);
  return bounds;
}

}  // namespace
}  // namespace detail

void set_enabled(bool on) noexcept {
  detail::g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

Counter counter(std::string_view name) {
  using namespace detail;
  const int id = register_metric(name, MetricKind::Counter, 1, {});
  Global& g = global();
  const MutexLock lock(g.mu);
  return Counter(g.metrics[static_cast<std::size_t>(id)].cell);
}

Gauge gauge(std::string_view name) {
  using namespace detail;
  const int id = register_metric(name, MetricKind::Gauge, 0, {});
  Global& g = global();
  const MutexLock lock(g.mu);
  return Gauge(g.metrics[static_cast<std::size_t>(id)].gauge_slot);
}

Histogram histogram(std::string_view name,
                    std::vector<std::uint64_t> bounds) {
  using namespace detail;
  if (bounds.empty())
    throw std::invalid_argument("obs::histogram: bounds must be nonempty");
  for (std::size_t i = 1; i < bounds.size(); ++i)
    if (bounds[i] <= bounds[i - 1])
      throw std::invalid_argument(
          "obs::histogram: bounds must be strictly ascending");
  const int cells = static_cast<int>(bounds.size()) + 2;  // +overflow +sum
  const int id =
      register_metric(name, MetricKind::Histogram, cells, std::move(bounds));
  Global& g = global();
  const MutexLock lock(g.mu);
  const MetricDef& def = g.metrics[static_cast<std::size_t>(id)];
  // def.bounds' heap buffer is stable across metrics-vector growth (vector
  // moves preserve it), so the handle can point straight into it.
  return Histogram(def.cell, def.bounds.data(),
                   static_cast<int>(def.bounds.size()));
}

Histogram histogram(std::string_view name) {
  return histogram(name, detail::default_latency_bounds());
}

void reset() {
  using namespace detail;
  Global& g = global();
  const MutexLock lock(g.mu);
  g.retired.fill(0);
  g.retired_events.clear();
  for (auto& cell : g.gauges) cell.store(0, std::memory_order_relaxed);
  for (Shard* s = g.shards; s; s = s->next) {
    for (auto& cell : s->cells) cell.store(0, std::memory_order_relaxed);
    const MutexLock elock(s->events_mu);
    s->events.clear();
  }
  g.dropped.store(0, std::memory_order_relaxed);
}

}  // namespace qokit::obs
