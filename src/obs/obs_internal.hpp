// Shared internals of the observability layer (registry.cpp, trace.cpp,
// export.cpp). Not part of the public surface.
#pragma once

#include <array>
#include <chrono>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/sync.hpp"
#include "obs/obs.hpp"

namespace qokit::obs::detail {

/// Fixed metric-cell arena per shard. Counters take one cell, histograms
/// bounds+2 (per-bound buckets, overflow, sum). Registration throws once
/// the arena is exhausted — the metric set is code, not data, so the cap
/// is a static budget, not a runtime limit.
inline constexpr int kMaxCells = 1024;
inline constexpr int kMaxGauges = 64;
/// Per-thread trace-event retention; spans beyond it are dropped and
/// counted so a runaway obs-on loop stays memory-bounded.
inline constexpr int kMaxShardEvents = 1 << 15;
/// Cross-thread retention for events of finished threads (the distributed
/// simulator retires one rank team per simulate call).
inline constexpr int kMaxRetainedEvents = 1 << 17;

/// A finished span, ready for chrome://tracing export.
struct TraceEvent {
  const char* name = nullptr;
  std::uint64_t ts_ns = 0;   ///< start, relative to the process epoch
  std::uint64_t dur_ns = 0;
  int tid = 0;   ///< obs-assigned sequential thread id
  int depth = 0; ///< nesting depth at open (0 = top-level)
  int n_attrs = 0;
  Attr attrs[kMaxSpanAttrs];
};

/// One thread's slice of the registry: metric cells it alone writes
/// (relaxed atomics so scrapes may read concurrently) plus its trace
/// buffer (guarded by a tiny mutex taken on span close and drain only —
/// never by other threads' hot paths).
///
/// Lock order: Global::mu before events_mu, always. Cross-thread drains
/// (export, reset, retire) walk the shard list under Global::mu and take
/// each shard's events_mu nested inside it; the owning thread's span-close
/// path takes events_mu alone and never touches Global::mu.
struct Shard {
  std::array<std::atomic<std::uint64_t>, kMaxCells> cells{};
  Mutex events_mu;
  std::vector<TraceEvent> events QOKIT_GUARDED_BY(events_mu);
  int tid = 0;
  /// Intrusive shard-list link. Guarded by Global::mu like the list head
  /// it chains from (not annotated: clang's capability expressions cannot
  /// name another struct's member from here; the head pointer
  /// Global::shards carries the GUARDED_BY, and every traversal starts
  /// there).
  Shard* next = nullptr;
};

enum class MetricKind { Counter, Gauge, Histogram };

struct MetricDef {
  std::string name;
  MetricKind kind = MetricKind::Counter;
  int cell = -1;        ///< first cell (counter: 1, histogram: bounds+2)
  int gauge_slot = -1;  ///< gauges only
  std::vector<std::uint64_t> bounds;  ///< histograms only; heap buffer is
                                      ///< stable, handles point into it
};

/// Process-wide registry state. Leaked on purpose: threads may retire
/// shards during program teardown, so the registry must outlive every
/// static destructor.
struct Global {
  Mutex mu;  ///< metric defs, shard list, retired accumulators
  std::vector<MetricDef> metrics QOKIT_GUARDED_BY(mu);
  /// name -> metrics index
  std::unordered_map<std::string, int> index QOKIT_GUARDED_BY(mu);
  int next_cell QOKIT_GUARDED_BY(mu) = 0;
  int next_gauge QOKIT_GUARDED_BY(mu) = 0;
  std::array<std::atomic<std::uint64_t>, kMaxGauges> gauges{};  ///< bits
  /// Live shards, intrusive list (each link's events_mu nests inside mu;
  /// see Shard).
  Shard* shards QOKIT_GUARDED_BY(mu) = nullptr;
  /// Dead threads' cells.
  std::array<std::uint64_t, kMaxCells> retired QOKIT_GUARDED_BY(mu){};
  std::vector<TraceEvent> retired_events QOKIT_GUARDED_BY(mu);
  std::atomic<int> next_tid{1};
  std::atomic<std::uint64_t> allocs{0};
  std::atomic<std::uint64_t> dropped{0};
  std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
};

Global& global();

/// This thread's shard, created (and linked into the registry) on first
/// use. Retired — cells merged, events moved — when the thread exits.
Shard& my_shard();

/// Nanoseconds since the registry epoch.
std::uint64_t now_ns() noexcept;

/// Append a finished span to this thread's buffer (bounded; drops count).
void push_event(const TraceEvent& event) noexcept;

/// Per-thread span nesting depth.
int& span_depth() noexcept;

}  // namespace qokit::obs::detail
