// Runtime observability: process-wide metrics registry, scoped tracing
// spans, and exporters (JSON snapshot / Prometheus text exposition /
// chrome://tracing trace events).
//
// The engine's serving story needs stage-attributed visibility — where a
// ProblemSession::evaluate spends its time (precompute vs per-layer
// pipeline passes vs reduction vs alltoall), which kernel family actually
// ran, whether the batch scratch pool is hitting — without taxing the hot
// paths when nobody is looking. The design:
//
//  - One process-wide registry of named counters, gauges, and fixed-bucket
//    latency histograms. Counters and histograms write to lock-free
//    thread-local shards (one relaxed fetch_add on a cache line no other
//    thread writes); a scrape merges the shards. Shards of finished
//    threads (e.g. the distributed simulator's per-call rank teams) are
//    folded into a retired accumulator at thread exit, so no count is ever
//    lost.
//  - Scoped spans (OBS_SPAN("phase_kernel") or a named obs::Span for
//    attribute attachment) nest per thread, carry typed attributes, and
//    become chrome://tracing complete events. Span storage is inline in
//    the guard object — opening a span allocates nothing; closing one
//    appends to a bounded per-thread event buffer.
//  - Everything is gated on one process-global flag: off by default, on
//    when the environment says QOKIT_OBS=1 (or on/true) or a
//    SimulatorSpec carries obs=on. When off, every instrumentation site
//    reduces to a relaxed atomic load and a predictable branch — no
//    allocation, no shard, no mutation (pinned by
//    tests/test_observability.cpp).
//
// Registration (obs::counter/gauge/histogram) interns by name and may be
// called from any thread at any time; instrumentation sites hold the
// returned handle in a function-local static so the name lookup happens
// once per process. See DESIGN.md "Observability" for the shard-merge
// model and the overhead argument.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace qokit::obs {

namespace detail {
/// Tri-state enable flag: -1 until the QOKIT_OBS environment variable has
/// been consulted, then 0 (off) or 1 (on). set_enabled() writes it
/// directly, so a SimulatorSpec obs=on token overrides a silent
/// environment.
extern std::atomic<int> g_enabled;
bool enabled_slow() noexcept;
void counter_add(int cell, std::uint64_t delta) noexcept;
void gauge_set(int slot, double value) noexcept;
double gauge_get(int slot) noexcept;
void histogram_record(int cell, const std::uint64_t* bounds, int n_bounds,
                      std::uint64_t value) noexcept;
std::uint64_t merged_cell(int cell);

/// Obs-internal heap activity (shard creation, metric registration, event
/// buffer growth). The disabled-is-free regression test pins that this —
/// and every counter — stays flat across instrumented calls once the
/// registry is warm and observability is off.
std::uint64_t allocation_count() noexcept;
}  // namespace detail

/// Whether instrumentation is live. One relaxed load on the fast path.
inline bool enabled() noexcept {
  const int s = detail::g_enabled.load(std::memory_order_relaxed);
  if (s >= 0) return s != 0;
  return detail::enabled_slow();
}

/// Turn instrumentation on or off for the whole process (the
/// SimulatorSpec obs=on token and tests go through this).
void set_enabled(bool on) noexcept;

/// Monotonically increasing named count (events, bytes, calls). Handles
/// are cheap value types; obtain one from obs::counter and keep it in a
/// function-local static at the instrumentation site.
class Counter {
 public:
  Counter() = default;
  void add(std::uint64_t delta = 1) const noexcept {
    if (enabled()) detail::counter_add(cell_, delta);
  }
  /// Merged total across all live and retired thread shards.
  std::uint64_t value() const { return detail::merged_cell(cell_); }

 private:
  friend Counter counter(std::string_view);
  explicit Counter(int cell) : cell_(cell) {}
  int cell_ = -1;
};

/// Last-write-wins named value (queue depth, active level). Gauges are a
/// single process-global cell, not sharded: sets are rare and carry no
/// merge semantics.
class Gauge {
 public:
  Gauge() = default;
  void set(double value) const noexcept {
    if (enabled()) detail::gauge_set(slot_, value);
  }
  double value() const { return detail::gauge_get(slot_); }

 private:
  friend Gauge gauge(std::string_view);
  explicit Gauge(int slot) : slot_(slot) {}
  int slot_ = -1;
};

/// Fixed-bucket latency histogram (value <= bounds[i] lands in bucket i,
/// larger values in the overflow bucket). Bucket counts and the running
/// sum live in the thread shards like counters.
class Histogram {
 public:
  Histogram() = default;
  void record(std::uint64_t value) const noexcept {
    if (enabled())
      detail::histogram_record(cell_, bounds_, n_bounds_, value);
  }

 private:
  friend Histogram histogram(std::string_view);
  friend Histogram histogram(std::string_view,
                             std::vector<std::uint64_t>);
  Histogram(int cell, const std::uint64_t* bounds, int n_bounds)
      : cell_(cell), bounds_(bounds), n_bounds_(n_bounds) {}
  int cell_ = -1;
  const std::uint64_t* bounds_ = nullptr;  ///< interned in the registry
  int n_bounds_ = 0;
};

/// Register (or look up) a counter by name. Names should follow the
/// Prometheus convention used throughout: qokit_<noun>_total.
Counter counter(std::string_view name);

/// Register (or look up) a gauge by name.
Gauge gauge(std::string_view name);

/// Register (or look up) a histogram with the default nanosecond latency
/// bounds (powers of four from 256ns to ~1s).
Histogram histogram(std::string_view name);

/// Register (or look up) a histogram with explicit ascending bounds. A
/// name registered twice keeps its first bounds.
Histogram histogram(std::string_view name,
                    std::vector<std::uint64_t> bounds);

/// Maximum attributes one span can carry; further attrs are dropped.
inline constexpr int kMaxSpanAttrs = 6;

/// One typed span/trace-event attribute. Key and string values must have
/// static storage duration (string literals, or the string_views returned
/// by the enum to_string helpers, which point at literals).
struct Attr {
  const char* key = nullptr;
  char tag = 'i';  ///< 'i' int64, 'f' double, 's' string
  std::int64_t i = 0;
  double f = 0.0;
  const char* s = nullptr;
};

/// Scoped tracing span: opens at construction, closes (and records a
/// chrome://tracing complete event) at destruction. Spans nest per thread
/// via a depth counter; attributes attach between open and close and are
/// stored inline (no allocation until close appends the finished event to
/// the thread's buffer). When observability is off the constructor is one
/// relaxed load and everything else a no-op.
class Span {
 public:
  /// `name` must have static storage duration (pass a string literal).
  explicit Span(const char* name) noexcept : live_(enabled()) {
    if (live_) open(name);
  }
  ~Span() {
    if (live_) close();
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void attr(const char* key, std::int64_t v) noexcept {
    if (live_ && n_attrs_ < kMaxSpanAttrs)
      attrs_[n_attrs_++] = Attr{key, 'i', v, 0.0, nullptr};
  }
  void attr(const char* key, int v) noexcept {
    attr(key, static_cast<std::int64_t>(v));
  }
  void attr(const char* key, std::uint64_t v) noexcept {
    attr(key, static_cast<std::int64_t>(v));
  }
  void attr(const char* key, double v) noexcept {
    if (live_ && n_attrs_ < kMaxSpanAttrs)
      attrs_[n_attrs_++] = Attr{key, 'f', 0, v, nullptr};
  }
  /// `v` must have static storage duration.
  void attr(const char* key, const char* v) noexcept {
    if (live_ && n_attrs_ < kMaxSpanAttrs)
      attrs_[n_attrs_++] = Attr{key, 's', 0, 0.0, v};
  }

 private:
  void open(const char* name) noexcept;
  void close() noexcept;

  bool live_;
  int n_attrs_ = 0;
  int depth_ = 0;
  const char* name_ = nullptr;
  std::uint64_t start_ = 0;
  Attr attrs_[kMaxSpanAttrs];
};

// Anonymous scoped span; use a named obs::Span when attributes are needed.
#define QOKIT_OBS_CONCAT2(a, b) a##b
#define QOKIT_OBS_CONCAT(a, b) QOKIT_OBS_CONCAT2(a, b)
#define OBS_SPAN(name) \
  ::qokit::obs::Span QOKIT_OBS_CONCAT(qokit_obs_span_, __LINE__)(name)

/// RAII wall-clock timer recording its lifetime into a histogram on
/// destruction (nanoseconds). Free when observability is off.
class HistTimer {
 public:
  explicit HistTimer(Histogram hist) noexcept;
  ~HistTimer();
  HistTimer(const HistTimer&) = delete;
  HistTimer& operator=(const HistTimer&) = delete;

 private:
  Histogram hist_;
  std::uint64_t start_ = 0;
  bool live_;
};

/// Point-in-time view of one histogram: per-bucket (non-cumulative)
/// counts, bucket i counting values <= bounds[i]; buckets.back() is the
/// overflow bucket, so buckets.size() == bounds.size() + 1.
struct HistogramSnapshot {
  std::vector<std::uint64_t> bounds;
  std::vector<std::uint64_t> buckets;
  std::uint64_t count = 0;  ///< total recordings (sum of buckets)
  std::uint64_t sum = 0;    ///< sum of recorded values
};

/// Scrape result: every registered metric, merged across thread shards,
/// sorted by name. ProblemSession::metrics() returns one of these.
struct Snapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  /// {"counters":{...},"gauges":{...},"histograms":{...}}
  std::string to_json() const;
  /// Prometheus text exposition format, version 0.0.4 (cumulative
  /// le-buckets, _sum/_count series).
  std::string to_prometheus() const;
};

/// Merge all shards and return the current metric values. Cheap enough to
/// call per scrape; never blocks the hot paths (they never take the
/// registry lock).
Snapshot snapshot();

/// All trace events recorded since process start (or the last reset()) as
/// a chrome://tracing / Perfetto-loadable JSON document.
std::string trace_json();

/// Events currently retained / dropped against the per-thread and global
/// retention caps (bounded memory under long obs-on runs).
std::uint64_t trace_event_count();
std::uint64_t dropped_event_count();

/// Zero every metric and drop all trace events (registrations survive).
/// Test and long-lived-server aid; not safe concurrently with scrapes.
void reset();

/// When observability is on, write the three exports next to the process
/// (prefix overridable via QOKIT_OBS_PATH): qokit_obs_metrics.json,
/// qokit_obs_metrics.prom, qokit_obs_trace.json. Returns true when all
/// three were written; false when off or on I/O failure.
bool dump();

}  // namespace qokit::obs
