// ScheduleServer: the long-lived schedule-serving front end.
//
// The paper's claim is that once the diagonal precompute is amortized,
// QAOA schedule evaluation is cheap enough to serve at scale. This is the
// subsystem that serves it: a fixed pool of worker threads draining a
// bounded MPMC work queue of (problem, schedule-batch) requests, each
// worker checking the problem's ProblemSession out of a shared
// SessionCache (exclusive lease; LRU under a byte budget) and routing the
// batch through the session's evaluate_batch -- the PR 4/5 pipeline, batch
// scratch pool, and obs instrumentation all ride along unchanged, so a
// cache-hit request pays zero precompute and zero steady-state statevector
// allocations.
//
// Two request paths share the queue and workers:
//  - submit(): the in-process path (tests, the load bench, embedding apps)
//    returning a std::future<Response>. Never blocks: a full queue
//    resolves the future immediately with Status::Overloaded.
//  - an optional AF_UNIX socket front end (ServerConfig::listen_path)
//    speaking the length-prefixed binary protocol of serve/protocol.hpp;
//    one thread per connection decodes frames, submits, and writes the
//    response back. Malformed frames get a final error response and the
//    connection is closed (the stream is no longer frame-aligned);
//    semantically bad requests get Status::BadRequest and the connection
//    stays open.
//
// Queue depth, request/reject/malformed counters, and request latency
// histograms flow into the obs registry (qokit_serve_*); cache_stats()
// exposes the cache's counters without observability enabled.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/sync.hpp"
#include "serve/protocol.hpp"
#include "serve/session_cache.hpp"
#include "serve/work_queue.hpp"

namespace qokit::serve {

struct ServerConfig {
  /// Worker threads draining the queue. 0 is allowed (nothing drains --
  /// a deterministic way to observe queue-full backpressure in tests;
  /// pending requests are failed with ShuttingDown at shutdown).
  int workers = 2;
  std::size_t queue_capacity = 256;  ///< pending requests before Overloaded
  std::uint64_t cache_bytes = std::uint64_t{1} << 32;  ///< session budget
  /// Non-empty: also listen on this AF_UNIX socket path (unlinked and
  /// re-bound at construction).
  std::string listen_path;
  int listen_backlog = 64;
};

class ScheduleServer {
 public:
  /// Starts the workers (and, with a listen_path, the accept loop).
  /// Throws std::system_error when the socket cannot be bound.
  explicit ScheduleServer(ServerConfig config = {});
  ~ScheduleServer();  // shutdown()

  ScheduleServer(const ScheduleServer&) = delete;
  ScheduleServer& operator=(const ScheduleServer&) = delete;

  /// Enqueue a request; the future resolves when a worker has evaluated it
  /// (or immediately with Overloaded / ShuttingDown when it cannot be
  /// queued). Never blocks.
  std::future<Response> submit(Request request);

  /// submit() + wait. The convenience path for sequential clients.
  Response submit_blocking(Request request);

  /// Stop accepting work, drain the queue through the workers, join every
  /// thread, and fail still-unqueued/undrained requests with ShuttingDown.
  /// Idempotent; also run by the destructor.
  void shutdown();

  std::size_t queue_depth() const { return queue_.depth(); }
  SessionCache::Stats cache_stats() const { return cache_.stats(); }
  const ServerConfig& config() const { return config_; }

 private:
  struct Job {
    Request request;
    std::promise<Response> promise;
    std::chrono::steady_clock::time_point enqueued;
  };

  void worker_loop();
  void accept_loop();
  void connection_loop(int fd);
  Response handle(Request& request,
                  std::chrono::steady_clock::time_point enqueued);

  ServerConfig config_;
  SessionCache cache_;
  WorkQueue<Job> queue_;
  std::atomic<bool> stopping_{false};
  std::vector<std::thread> workers_;

  // Socket front end (idle when listen_path is empty). conn_mu_ guards
  // the connection registry: the open fds (so shutdown() can SHUT_RDWR
  // exactly the descriptors still owned by connection threads -- see the
  // deregister-before-close comment in connection_loop) and the
  // connection threads themselves (swapped out and joined in batches by
  // shutdown()).
  int listen_fd_ = -1;
  std::thread acceptor_;
  Mutex conn_mu_;
  std::vector<int> conn_fds_ QOKIT_GUARDED_BY(conn_mu_);
  std::vector<std::thread> conn_threads_ QOKIT_GUARDED_BY(conn_mu_);
};

/// Minimal blocking client for the socket front end (tests, the load
/// bench, and the serve_quickstart example). One connection per instance;
/// call() frames the request, writes it, and blocks for the response.
class Client {
 public:
  /// Connects immediately; throws std::system_error on failure.
  explicit Client(const std::string& socket_path);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Round-trip one request. Throws ProtocolError on a malformed reply and
  /// std::runtime_error when the connection drops mid-exchange.
  Response call(const Request& request);

 private:
  int fd_ = -1;
};

}  // namespace qokit::serve
