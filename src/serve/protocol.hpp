// Length-prefixed binary protocol for the schedule server.
//
// One frame = a 16-byte header (magic, version, type, payload length)
// followed by the payload. Fields are fixed-width little-endian-on-x86
// host byte order: the transport is a local AF_UNIX socket, both ends are
// the same machine, and the payload is dominated by raw f64 schedules that
// should cross the boundary as memcpys, not a text codec.
//
//   offset  size  field
//        0     4  magic   0x51535256 ("QSRV" big-endian in a hex dump)
//        4     2  version (kProtocolVersion; mismatch rejects the frame)
//        6     2  type    (1 = request, 2 = response)
//        8     8  payload length in bytes (<= kMaxFramePayload)
//
// Request payload layout (everything a (problem, schedule-batch) request
// carries; see DESIGN.md "Serving" for the rationale):
//
//   u32 num_qubits
//   u32 num_terms,   then per term:   f64 weight, u64 mask
//   u32 spec_len,    then spec_len bytes of SimulatorSpec spelling
//   u8  flags        (bit0 = expectation, bit1 = overlap)
//   i32 overlap_weight
//   u32 num_schedules, then per schedule:
//       u32 p, p x f64 gammas, p x f64 betas
//
// Response payload layout:
//
//   u32 status (Status)
//   u8  cache_hit
//   u32 num_expectations, then f64 each
//   u32 num_overlaps,     then f64 each
//   u32 error_len,        then error_len bytes (empty when status == Ok)
//   u64 queue_ns, u64 eval_ns
//
// Every decode is bounds-checked; any truncation, bad magic/version/type,
// or length-limit violation throws ProtocolError (the server answers a
// final error response and closes the connection, since the byte stream
// can no longer be trusted to be frame-aligned). A well-framed request
// whose CONTENT is invalid (unparseable spec, bad ranks) instead surfaces
// as Status::BadRequest and the connection stays usable.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "api/spec.hpp"
#include "optimize/params.hpp"
#include "terms/term.hpp"

namespace qokit::serve {

/// Outcome of one request, mirrored on the wire as a u32.
enum class Status : std::uint32_t {
  Ok = 0,
  Overloaded = 1,    ///< work queue full; retry later (backpressure)
  BadRequest = 2,    ///< well-framed but semantically invalid request
  ShuttingDown = 3,  ///< server stopping; request was not evaluated
  InternalError = 4,
};

std::string_view to_string(Status status);

/// One (problem, schedule-batch) evaluation request.
struct Request {
  TermList terms;
  SimulatorSpec spec{};
  std::vector<QaoaParams> schedules;
  bool expectation = true;
  bool overlap = false;
  int overlap_weight = -1;  ///< Hamming-weight sector; -1 = full space
};

/// Per-request reply. Result vectors are indexed like Request::schedules
/// and empty when the corresponding flag was off (or status != Ok).
struct Response {
  Status status = Status::Ok;
  bool cache_hit = false;  ///< session was resident; no precompute paid
  std::vector<double> expectations;
  std::vector<double> overlaps;
  std::string error;  ///< empty when status == Ok
  std::uint64_t queue_ns = 0;  ///< time spent queued before a worker
  std::uint64_t eval_ns = 0;   ///< checkout + evaluation time
};

/// Framing violation: the byte stream is no longer trustworthy.
class ProtocolError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

inline constexpr std::uint32_t kFrameMagic = 0x51535256u;  // "QSRV"
inline constexpr std::uint16_t kProtocolVersion = 1;
inline constexpr std::size_t kFrameHeaderBytes = 16;
/// Upper bound on one payload (frames above it are rejected unread, so a
/// corrupt length prefix cannot make the server allocate gigabytes).
inline constexpr std::uint64_t kMaxFramePayload = std::uint64_t{1} << 28;

enum class FrameType : std::uint16_t { Request = 1, Response = 2 };

/// Validated frame header.
struct FrameHeader {
  FrameType type = FrameType::Request;
  std::uint64_t payload_len = 0;
};

/// Parse and validate a 16-byte header. Throws ProtocolError on bad
/// magic/version/type or an over-limit payload length.
FrameHeader decode_frame_header(std::span<const std::uint8_t> header);

/// Serialize a complete frame (header + payload), ready to write.
std::vector<std::uint8_t> encode_request(const Request& request);
std::vector<std::uint8_t> encode_response(const Response& response);

/// Parse a frame payload. Throws ProtocolError on any bounds violation;
/// decode_request additionally lets SimulatorSpec::parse's
/// std::invalid_argument propagate (well-framed, semantically bad).
Request decode_request(std::span<const std::uint8_t> payload);
Response decode_response(std::span<const std::uint8_t> payload);

}  // namespace qokit::serve
