// Bounded MPMC work queue for the schedule server.
//
// A serving front end must never let a burst of requests grow an unbounded
// backlog: past `capacity` pending jobs the right answer is an immediate
// Overloaded response, not a deeper queue (the client can retry or shed
// load; the server keeps its latency distribution). try_push is therefore
// the only producer entry point and never blocks -- on a full (or closed)
// queue it leaves the item untouched in the caller's hands so the caller
// can fail it. Consumers block in pop() until an item arrives; after
// close(), pop() drains whatever is left and then returns nullopt, which
// is the worker-thread exit signal.
//
// Implementation is a mutex + condition variable around a deque, not a
// lock-free ring: the critical section is a few pointer moves, which is
// noise next to the 2^n-amplitude evaluations each item triggers, and the
// mutex keeps the queue trivially TSAN-clean (the tsan CI leg runs the
// whole serve suite over it).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace qokit::serve {

template <class T>
class WorkQueue {
 public:
  explicit WorkQueue(std::size_t capacity) : capacity_(capacity) {}

  WorkQueue(const WorkQueue&) = delete;
  WorkQueue& operator=(const WorkQueue&) = delete;

  /// Enqueue `item`, or return false (leaving `item` valid in the caller)
  /// when the queue is full or closed. Never blocks.
  bool try_push(T&& item) {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Dequeue the oldest item, blocking while the queue is open and empty.
  /// Returns nullopt once the queue is closed AND drained -- the consumer
  /// shutdown signal (pending items are still handed out after close()).
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    ready_.wait(lock, [this] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Reject all future pushes and wake every blocked consumer. Idempotent.
  void close() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  std::size_t depth() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  std::size_t capacity() const noexcept { return capacity_; }

  bool closed() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace qokit::serve
