// Bounded MPMC work queue for the schedule server.
//
// A serving front end must never let a burst of requests grow an unbounded
// backlog: past `capacity` pending jobs the right answer is an immediate
// Overloaded response, not a deeper queue (the client can retry or shed
// load; the server keeps its latency distribution). try_push is therefore
// the only producer entry point and never blocks -- on a full (or closed)
// queue it leaves the item untouched in the caller's hands so the caller
// can fail it. Consumers block in pop() until an item arrives; after
// close(), pop() drains whatever is left and then returns nullopt, which
// is the worker-thread exit signal.
//
// Implementation is a mutex + condition variable around a deque, not a
// lock-free ring: the critical section is a few pointer moves, which is
// noise next to the 2^n-amplitude evaluations each item triggers, and the
// mutex keeps the queue trivially TSAN-clean (the tsan CI leg runs the
// whole serve suite over it). The close/drain protocol -- closed_ and
// items_ only change under mu_, pop() drains after close() -- is a
// compile-time contract: both members are QOKIT_GUARDED_BY(mu_), so a
// clang -Wthread-safety build rejects any path that touches them
// unlocked.
#pragma once

#include <cstddef>
#include <deque>
#include <optional>
#include <utility>

#include "common/sync.hpp"

namespace qokit::serve {

template <class T>
class WorkQueue {
 public:
  explicit WorkQueue(std::size_t capacity) : capacity_(capacity) {}

  WorkQueue(const WorkQueue&) = delete;
  WorkQueue& operator=(const WorkQueue&) = delete;

  /// Enqueue `item`, or return false (leaving `item` valid in the caller)
  /// when the queue is full or closed. Never blocks.
  bool try_push(T&& item) QOKIT_EXCLUDES(mu_) {
    {
      const MutexLock lock(mu_);
      if (closed_ || items_.size() >= capacity_) return false;
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return true;
  }

  /// Dequeue the oldest item, blocking while the queue is open and empty.
  /// Returns nullopt once the queue is closed AND drained -- the consumer
  /// shutdown signal (pending items are still handed out after close()).
  std::optional<T> pop() QOKIT_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    while (!closed_ && items_.empty()) ready_.wait(lock);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Reject all future pushes and wake every blocked consumer. Idempotent.
  void close() QOKIT_EXCLUDES(mu_) {
    {
      const MutexLock lock(mu_);
      closed_ = true;
    }
    ready_.notify_all();
  }

  std::size_t depth() const QOKIT_EXCLUDES(mu_) {
    const MutexLock lock(mu_);
    return items_.size();
  }

  std::size_t capacity() const noexcept { return capacity_; }

  bool closed() const QOKIT_EXCLUDES(mu_) {
    const MutexLock lock(mu_);
    return closed_;
  }

 private:
  const std::size_t capacity_;
  mutable Mutex mu_;
  CondVar ready_;
  std::deque<T> items_ QOKIT_GUARDED_BY(mu_);
  bool closed_ QOKIT_GUARDED_BY(mu_) = false;
};

}  // namespace qokit::serve
