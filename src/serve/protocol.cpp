#include "serve/protocol.hpp"

#include <cstring>
#include <limits>
#include <type_traits>

namespace qokit::serve {
namespace {

/// Append-only byte sink for encoding.
class Writer {
 public:
  explicit Writer(std::vector<std::uint8_t>& out) : out_(out) {}

  template <class T>
  void put(T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const std::size_t at = out_.size();
    out_.resize(at + sizeof value);
    std::memcpy(out_.data() + at, &value, sizeof value);
  }

  void put_bytes(const void* data, std::size_t size) {
    const std::size_t at = out_.size();
    out_.resize(at + size);
    if (size != 0) std::memcpy(out_.data() + at, data, size);
  }

 private:
  std::vector<std::uint8_t>& out_;
};

/// Bounds-checked cursor for decoding; any read past the end throws.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  template <class T>
  T get(const char* what) {
    static_assert(std::is_trivially_copyable_v<T>);
    T value;
    std::memcpy(&value, take(sizeof value, what), sizeof value);
    return value;
  }

  const std::uint8_t* take(std::size_t size, const char* what) {
    if (size > data_.size() - at_)
      throw ProtocolError(std::string("serve: truncated frame payload (") +
                          what + ")");
    const std::uint8_t* p = data_.data() + at_;
    at_ += size;
    return p;
  }

  void expect_exhausted() const {
    if (at_ != data_.size())
      throw ProtocolError("serve: trailing bytes after frame payload");
  }

  std::size_t remaining() const { return data_.size() - at_; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t at_ = 0;
};

/// Read `count` f64s into `out` (resized). Zero-length reads skip the
/// memcpy so empty vectors' null data() pointers stay UBSan-clean.
void read_doubles(Reader& r, std::uint32_t count, std::vector<double>* out,
                  const char* what) {
  out->resize(count);
  if (count != 0)
    std::memcpy(out->data(), r.take(count * sizeof(double), what),
                count * sizeof(double));
}

/// A count prefix can never promise more elements than the remaining bytes
/// could hold; checking first keeps a corrupt count from reserving huge
/// vectors before the per-element reads would catch it.
std::uint32_t checked_count(Reader& r, std::size_t element_bytes,
                            const char* what) {
  const auto count = r.get<std::uint32_t>(what);
  if (element_bytes != 0 && count > r.remaining() / element_bytes)
    throw ProtocolError(std::string("serve: element count exceeds payload (") +
                        what + ")");
  return count;
}

void write_header(Writer& w, FrameType type, std::uint64_t payload_len) {
  w.put(kFrameMagic);
  w.put(kProtocolVersion);
  w.put(static_cast<std::uint16_t>(type));
  w.put(payload_len);
}

void patch_payload_len(std::vector<std::uint8_t>& frame) {
  const std::uint64_t payload_len = frame.size() - kFrameHeaderBytes;
  std::memcpy(frame.data() + 8, &payload_len, sizeof payload_len);
}

}  // namespace

std::string_view to_string(Status status) {
  switch (status) {
    case Status::Ok: return "ok";
    case Status::Overloaded: return "overloaded";
    case Status::BadRequest: return "bad_request";
    case Status::ShuttingDown: return "shutting_down";
    default: return "internal_error";
  }
}

FrameHeader decode_frame_header(std::span<const std::uint8_t> header) {
  if (header.size() < kFrameHeaderBytes)
    throw ProtocolError("serve: short frame header");
  Reader r(header.first(kFrameHeaderBytes));
  if (r.get<std::uint32_t>("magic") != kFrameMagic)
    throw ProtocolError("serve: bad frame magic");
  if (r.get<std::uint16_t>("version") != kProtocolVersion)
    throw ProtocolError("serve: unsupported protocol version");
  const auto type = r.get<std::uint16_t>("type");
  if (type != static_cast<std::uint16_t>(FrameType::Request) &&
      type != static_cast<std::uint16_t>(FrameType::Response))
    throw ProtocolError("serve: unknown frame type");
  const auto payload_len = r.get<std::uint64_t>("payload length");
  if (payload_len > kMaxFramePayload)
    throw ProtocolError("serve: frame payload exceeds limit");
  return FrameHeader{static_cast<FrameType>(type), payload_len};
}

std::vector<std::uint8_t> encode_request(const Request& request) {
  std::vector<std::uint8_t> frame;
  Writer w(frame);
  write_header(w, FrameType::Request, 0);
  w.put(static_cast<std::uint32_t>(request.terms.num_qubits()));
  w.put(static_cast<std::uint32_t>(request.terms.size()));
  for (const Term& t : request.terms) {
    w.put(t.weight);
    w.put(t.mask);
  }
  const std::string spec = request.spec.to_string();
  w.put(static_cast<std::uint32_t>(spec.size()));
  w.put_bytes(spec.data(), spec.size());
  const std::uint8_t flags =
      static_cast<std::uint8_t>((request.expectation ? 1u : 0u) |
                                (request.overlap ? 2u : 0u));
  w.put(flags);
  w.put(static_cast<std::int32_t>(request.overlap_weight));
  w.put(static_cast<std::uint32_t>(request.schedules.size()));
  for (const QaoaParams& s : request.schedules) {
    w.put(static_cast<std::uint32_t>(s.gammas.size()));
    w.put_bytes(s.gammas.data(), s.gammas.size() * sizeof(double));
    w.put_bytes(s.betas.data(), s.betas.size() * sizeof(double));
  }
  patch_payload_len(frame);
  return frame;
}

Request decode_request(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  Request request;
  const auto num_qubits = r.get<std::uint32_t>("num_qubits");
  if (num_qubits > 63)
    throw ProtocolError("serve: num_qubits exceeds 63");
  const std::uint32_t num_terms = checked_count(r, 16, "terms");
  std::vector<Term> terms(num_terms);
  for (Term& t : terms) {
    t.weight = r.get<double>("term weight");
    t.mask = r.get<std::uint64_t>("term mask");
  }
  // TermList validates masks against num_qubits; report its rejection as a
  // framing error (the frame encoded an impossible problem).
  try {
    request.terms = TermList(static_cast<int>(num_qubits), std::move(terms));
  } catch (const std::exception& e) {
    throw ProtocolError(std::string("serve: invalid terms: ") + e.what());
  }
  const std::uint32_t spec_len = checked_count(r, 1, "spec string");
  const std::uint8_t* spec_bytes = r.take(spec_len, "spec string");
  // May throw std::invalid_argument: well-framed but semantically bad,
  // mapped to Status::BadRequest by the server (connection stays open).
  request.spec = SimulatorSpec::parse(std::string_view(
      reinterpret_cast<const char*>(spec_bytes), spec_len));
  const auto flags = r.get<std::uint8_t>("flags");
  request.expectation = (flags & 1u) != 0;
  request.overlap = (flags & 2u) != 0;
  request.overlap_weight = r.get<std::int32_t>("overlap weight");
  const std::uint32_t num_schedules = checked_count(r, 4, "schedules");
  request.schedules.resize(num_schedules);
  for (QaoaParams& s : request.schedules) {
    const std::uint32_t p = checked_count(r, 16, "schedule depth");
    read_doubles(r, p, &s.gammas, "gammas");
    read_doubles(r, p, &s.betas, "betas");
  }
  r.expect_exhausted();
  return request;
}

std::vector<std::uint8_t> encode_response(const Response& response) {
  std::vector<std::uint8_t> frame;
  Writer w(frame);
  write_header(w, FrameType::Response, 0);
  w.put(static_cast<std::uint32_t>(response.status));
  w.put(static_cast<std::uint8_t>(response.cache_hit ? 1 : 0));
  w.put(static_cast<std::uint32_t>(response.expectations.size()));
  w.put_bytes(response.expectations.data(),
              response.expectations.size() * sizeof(double));
  w.put(static_cast<std::uint32_t>(response.overlaps.size()));
  w.put_bytes(response.overlaps.data(),
              response.overlaps.size() * sizeof(double));
  w.put(static_cast<std::uint32_t>(response.error.size()));
  w.put_bytes(response.error.data(), response.error.size());
  w.put(response.queue_ns);
  w.put(response.eval_ns);
  patch_payload_len(frame);
  return frame;
}

Response decode_response(std::span<const std::uint8_t> payload) {
  Reader r(payload);
  Response response;
  const auto status = r.get<std::uint32_t>("status");
  if (status > static_cast<std::uint32_t>(Status::InternalError))
    throw ProtocolError("serve: unknown response status");
  response.status = static_cast<Status>(status);
  response.cache_hit = r.get<std::uint8_t>("cache_hit") != 0;
  const std::uint32_t num_expectations = checked_count(r, 8, "expectations");
  read_doubles(r, num_expectations, &response.expectations, "expectations");
  const std::uint32_t num_overlaps = checked_count(r, 8, "overlaps");
  read_doubles(r, num_overlaps, &response.overlaps, "overlaps");
  const std::uint32_t error_len = checked_count(r, 1, "error string");
  const std::uint8_t* error_bytes = r.take(error_len, "error string");
  response.error.assign(reinterpret_cast<const char*>(error_bytes),
                        error_len);
  response.queue_ns = r.get<std::uint64_t>("queue_ns");
  response.eval_ns = r.get<std::uint64_t>("eval_ns");
  r.expect_exhausted();
  return response;
}

}  // namespace qokit::serve
