// Session cache: the amortization store behind the schedule server.
//
// The paper's economics -- one diagonal precompute amortized over
// thousands of (gamma, beta) evaluations -- only reaches a serving
// workload if the precompute survives between requests. SessionCache keeps
// ProblemSessions alive across requests, keyed by a hash of (terms, spec),
// and solves the two problems that raises:
//
//  - Exclusivity. ProblemSession is single-caller (its scratch buffers are
//    per-instance; see api/session.hpp). checkout() therefore hands out an
//    exclusive SessionLease: while one lease is live, a second checkout of
//    the same problem BLOCKS until the lease is returned. Distinct
//    problems proceed in parallel.
//  - Bounded memory. Sessions are 2^n-amplitude objects; the cache evicts
//    least-recently-used idle sessions whenever the footprint estimate
//    exceeds the byte budget. Checked-out (or still-building) sessions are
//    never evicted -- the budget can be transiently exceeded while every
//    resident session is in use, and is re-enforced at each check-in.
//
// A miss builds the session OUTSIDE the cache lock (the precompute is the
// expensive step; other problems must not stall behind it) while the
// reserved entry is marked `building` so concurrent requests for the same
// problem wait for the one build instead of duplicating it.
//
// Hit/miss/eviction counts flow into the obs registry
// (qokit_serve_cache_*); stats() exposes the same numbers without
// observability enabled.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "api/session.hpp"
#include "api/spec.hpp"
#include "common/sync.hpp"
#include "terms/term.hpp"

namespace qokit::serve {

/// Cache key: FNV-1a over the qubit count, every term's (weight, mask)
/// bits, and the spec's canonical spelling. Equal problems under equal
/// specs collide on purpose; a 64-bit accidental collision is detected at
/// checkout by comparing the stored session's terms/spec and handled by
/// rebuilding (correctness never rests on the hash).
std::uint64_t problem_key(const TermList& terms, const SimulatorSpec& spec);

/// Footprint estimate used against the byte budget: the 2^n-sized buffers
/// a session owns (f64 diagonal, cached initial state, scalar scratch, and
/// one batch-pool statevector slot) plus its terms. An estimate, not an
/// accounting -- it only needs to be monotone in n for LRU pressure to
/// behave. The statevector buffers are charged at `prec`'s actual
/// amplitude width, so an f32 session costs roughly half an f64 one and
/// the LRU budget admits correspondingly more of them.
std::uint64_t session_footprint_bytes(int num_qubits, std::size_t num_terms,
                                      Precision prec = Precision::F64);

/// Footprint of a *built* session: the (n, terms) estimate above plus the
/// buffers only a live session reveals — the LayerPlan's pass schedule
/// and, for u16-diagonal specs, the uint16 code array and the per-gamma
/// 65536-entry phase-factor table. The cache charges this overload after
/// a build so the LRU budget sees what the session actually holds (the
/// two-argument estimate undercounted u16 sessions by ~dim*2 bytes,
/// deferring evictions past the configured budget).
std::uint64_t session_footprint_bytes(const api::ProblemSession& session);

class SessionCache;

/// Exclusive handle on one cached ProblemSession. While live, no other
/// thread can check out the same problem; destruction (or release())
/// returns the session and wakes waiters. Movable, not copyable.
class SessionLease {
 public:
  SessionLease() = default;
  SessionLease(SessionLease&& other) noexcept { *this = std::move(other); }
  SessionLease& operator=(SessionLease&& other) noexcept;
  ~SessionLease() { release(); }

  api::ProblemSession& session() const { return *session_; }
  api::ProblemSession* operator->() const { return session_; }

  /// True when checkout found the session resident (no precompute paid).
  bool hit() const { return hit_; }

  explicit operator bool() const { return session_ != nullptr; }

  /// Return the session to the cache early (idempotent).
  void release();

 private:
  friend class SessionCache;
  SessionLease(SessionCache* cache, std::uint64_t key,
               api::ProblemSession* session, bool hit)
      : cache_(cache), key_(key), session_(session), hit_(hit) {}

  SessionCache* cache_ = nullptr;
  std::uint64_t key_ = 0;
  api::ProblemSession* session_ = nullptr;
  bool hit_ = false;
};

/// LRU-evicting, byte-budgeted store of ProblemSessions with exclusive
/// checkout. All public methods are safe to call from any thread.
class SessionCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;      ///< sessions built (precomputes paid)
    std::uint64_t evictions = 0;
    std::uint64_t bytes = 0;       ///< resident footprint estimate
    std::uint64_t sessions = 0;    ///< resident session count
  };

  explicit SessionCache(std::uint64_t byte_budget)
      : budget_(byte_budget) {}

  SessionCache(const SessionCache&) = delete;
  SessionCache& operator=(const SessionCache&) = delete;

  /// Obtain exclusive access to the session for (terms, spec), building it
  /// on a miss (the build runs outside the cache lock). Blocks while
  /// another thread holds the same problem's lease. Build failures
  /// propagate (std::invalid_argument for bad specs) and leave no residue.
  SessionLease checkout(const TermList& terms, const SimulatorSpec& spec)
      QOKIT_EXCLUDES(mu_);

  Stats stats() const QOKIT_EXCLUDES(mu_);

  std::uint64_t byte_budget() const noexcept { return budget_; }

 private:
  friend class SessionLease;

  struct Entry {
    std::unique_ptr<api::ProblemSession> session;  ///< null while building
    std::uint64_t bytes = 0;
    std::uint64_t last_used = 0;  ///< LRU tick
    bool checked_out = false;
    bool building = false;
  };

  void check_in(std::uint64_t key) QOKIT_EXCLUDES(mu_);
  /// Evict idle LRU entries until bytes_ <= budget_ (or nothing idle is
  /// left).
  void evict_lru_locked() QOKIT_REQUIRES(mu_);
  void publish_gauges_locked() const QOKIT_REQUIRES(mu_);

  const std::uint64_t budget_;
  // mu_ is the cache capability: the entry map, the footprint/LRU
  // accounting, and the stats counters only change under it. The
  // checkout/lease protocol (checked_out / building flags) is inspected
  // and flipped exclusively inside these guarded members; the expensive
  // session build itself runs with mu_ released (see checkout()).
  mutable Mutex mu_;
  CondVar returned_;
  std::unordered_map<std::uint64_t, Entry> entries_ QOKIT_GUARDED_BY(mu_);
  std::uint64_t bytes_ QOKIT_GUARDED_BY(mu_) = 0;
  std::uint64_t tick_ QOKIT_GUARDED_BY(mu_) = 0;
  std::uint64_t hits_ QOKIT_GUARDED_BY(mu_) = 0;
  std::uint64_t misses_ QOKIT_GUARDED_BY(mu_) = 0;
  std::uint64_t evictions_ QOKIT_GUARDED_BY(mu_) = 0;
};

}  // namespace qokit::serve
