#include "serve/session_cache.hpp"

#include <limits>
#include <utility>

#include "fur/simulator.hpp"
#include "obs/obs.hpp"
#include "pipeline/layer_plan.hpp"

namespace qokit::serve {
namespace {

void fnv_mix(std::uint64_t* h, const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    *h ^= bytes[i];
    *h *= 1099511628211ull;  // FNV-1a prime
  }
}

/// The stored session answers for exactly this (terms, spec)? Guards
/// against 64-bit key collisions; cheap (term count is tiny next to 2^n).
bool same_problem(const api::ProblemSession& session, const TermList& terms,
                  const SimulatorSpec& spec) {
  return session.spec() == spec &&
         session.terms().num_qubits() == terms.num_qubits() &&
         session.terms().terms() == terms.terms();
}

}  // namespace

std::uint64_t problem_key(const TermList& terms, const SimulatorSpec& spec) {
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  const std::uint32_t n = static_cast<std::uint32_t>(terms.num_qubits());
  fnv_mix(&h, &n, sizeof n);
  for (const Term& t : terms) {
    fnv_mix(&h, &t.weight, sizeof t.weight);
    fnv_mix(&h, &t.mask, sizeof t.mask);
  }
  const std::string spelled = spec.to_string();
  fnv_mix(&h, spelled.data(), spelled.size());
  return h;
}

std::uint64_t session_footprint_bytes(int num_qubits, std::size_t num_terms,
                                      Precision prec) {
  const std::uint64_t dim = std::uint64_t{1} << num_qubits;
  // f64 diagonal + three statevectors (cached initial state, scalar
  // scratch, one batch-pool slot) at the session's actual amplitude width
  // (16 bytes f64, 8 bytes f32), plus the terms and a fixed allowance for
  // the plan/object headers.
  return dim * (8 + 3 * amplitude_bytes(prec)) + num_terms * sizeof(Term) +
         4096;
}

std::uint64_t session_footprint_bytes(const api::ProblemSession& session) {
  const int n = session.terms().num_qubits();
  const Precision prec = session.simulator().precision();
  std::uint64_t bytes =
      session_footprint_bytes(n, session.terms().size(), prec);
  if (const auto* fur =
          dynamic_cast<const FurQaoaSimulator*>(&session.simulator())) {
    bytes += fur->layer_plan().passes().size() * sizeof(pipeline::LayerPass);
    if (fur->config().use_u16) {
      const std::uint64_t dim = std::uint64_t{1} << n;
      // uint16 code per amplitude, plus the 65536-entry phase-factor
      // table rebuilt per gamma at the amplitude precision.
      bytes += dim * 2 + std::uint64_t{65536} * amplitude_bytes(prec);
    }
  }
  return bytes;
}

SessionLease& SessionLease::operator=(SessionLease&& other) noexcept {
  if (this != &other) {
    release();
    cache_ = std::exchange(other.cache_, nullptr);
    key_ = std::exchange(other.key_, 0);
    session_ = std::exchange(other.session_, nullptr);
    hit_ = std::exchange(other.hit_, false);
  }
  return *this;
}

void SessionLease::release() {
  if (cache_ != nullptr) cache_->check_in(key_);
  cache_ = nullptr;
  session_ = nullptr;
}

SessionLease SessionCache::checkout(const TermList& terms,
                                    const SimulatorSpec& spec) {
  static const obs::Counter hit_count =
      obs::counter("qokit_serve_cache_hits_total");
  static const obs::Counter miss_count =
      obs::counter("qokit_serve_cache_misses_total");

  const std::uint64_t key = problem_key(terms, spec);
  MutexLock lock(mu_);
  for (;;) {
    auto it = entries_.find(key);
    if (it == entries_.end()) break;  // miss: fall through to build
    Entry& entry = it->second;
    if (entry.building || entry.checked_out) {
      // Someone is building or using this problem's session; wait for the
      // check-in (or the build's completion/failure) and re-examine.
      returned_.wait(lock);
      continue;
    }
    if (!same_problem(*entry.session, terms, spec)) {
      // 64-bit key collision with a different problem: evict the idle
      // occupant and rebuild for the requested one.
      bytes_ -= entry.bytes;
      ++evictions_;
      entries_.erase(it);
      break;
    }
    entry.checked_out = true;
    entry.last_used = ++tick_;
    ++hits_;
    hit_count.add();
    return SessionLease(this, key, entry.session.get(), /*hit=*/true);
  }

  // Reserve the slot so concurrent requests for the same problem wait for
  // this build instead of duplicating the precompute, then build unlocked.
  Entry& reserved = entries_[key];
  reserved.building = true;
  reserved.checked_out = true;
  reserved.last_used = ++tick_;
  ++misses_;
  miss_count.add();
  lock.unlock();

  std::unique_ptr<api::ProblemSession> built;
  try {
    built = std::make_unique<api::ProblemSession>(terms, spec);
  } catch (...) {
    lock.lock();
    entries_.erase(key);
    publish_gauges_locked();
    lock.unlock();
    returned_.notify_all();
    throw;
  }

  lock.lock();
  Entry& entry = entries_[key];  // re-find: the map may have rehashed
  entry.session = std::move(built);
  entry.bytes = session_footprint_bytes(*entry.session);
  entry.building = false;
  bytes_ += entry.bytes;
  evict_lru_locked();
  api::ProblemSession* session = entry.session.get();
  publish_gauges_locked();
  lock.unlock();
  // Waiters blocked on a different key's eviction-freed budget don't
  // exist (waits are per check-in), but same-key waiters must re-examine.
  returned_.notify_all();
  return SessionLease(this, key, session, /*hit=*/false);
}

void SessionCache::check_in(std::uint64_t key) {
  {
    const MutexLock lock(mu_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      it->second.checked_out = false;
      it->second.last_used = ++tick_;
    }
    evict_lru_locked();
    publish_gauges_locked();
  }
  returned_.notify_all();
}

void SessionCache::evict_lru_locked() {
  static const obs::Counter eviction_count =
      obs::counter("qokit_serve_cache_evictions_total");
  while (bytes_ > budget_) {
    auto victim = entries_.end();
    std::uint64_t oldest = std::numeric_limits<std::uint64_t>::max();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      const Entry& entry = it->second;
      if (entry.checked_out || entry.building) continue;
      if (entry.last_used < oldest) {
        oldest = entry.last_used;
        victim = it;
      }
    }
    if (victim == entries_.end()) return;  // everything resident is in use
    bytes_ -= victim->second.bytes;
    ++evictions_;
    eviction_count.add();
    entries_.erase(victim);
  }
}

void SessionCache::publish_gauges_locked() const {
  static const obs::Gauge bytes_gauge =
      obs::gauge("qokit_serve_cache_bytes");
  static const obs::Gauge sessions_gauge =
      obs::gauge("qokit_serve_cache_sessions");
  bytes_gauge.set(static_cast<double>(bytes_));
  sessions_gauge.set(static_cast<double>(entries_.size()));
}

SessionCache::Stats SessionCache::stats() const {
  const MutexLock lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.bytes = bytes_;
  s.sessions = entries_.size();
  return s;
}

}  // namespace qokit::serve
