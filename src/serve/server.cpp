#include "serve/server.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <utility>

#include "obs/obs.hpp"

namespace qokit::serve {
namespace {

using steady = std::chrono::steady_clock;

std::uint64_t elapsed_ns(steady::time_point since, steady::time_point now) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now - since)
          .count());
}

/// Full-buffer read; false on EOF or error (the connection is done either
/// way). Retries EINTR.
bool read_exact(int fd, void* buffer, std::size_t size) {
  auto* at = static_cast<std::uint8_t*>(buffer);
  while (size > 0) {
    const ssize_t got = ::read(fd, at, size);
    if (got > 0) {
      at += got;
      size -= static_cast<std::size_t>(got);
      continue;
    }
    if (got < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

/// Full-buffer write; false on error. Retries EINTR.
bool write_all(int fd, const void* buffer, std::size_t size) {
  const auto* at = static_cast<const std::uint8_t*>(buffer);
  while (size > 0) {
    const ssize_t put = ::write(fd, at, size);
    if (put > 0) {
      at += put;
      size -= static_cast<std::size_t>(put);
      continue;
    }
    if (put < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

/// Bind-or-throw for the AF_UNIX listening socket.
int bind_unix_listener(const std::string& path, int backlog) {
  if (path.size() >= sizeof(sockaddr_un{}.sun_path))
    throw std::invalid_argument("ScheduleServer: listen_path too long: " +
                                path);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0)
    throw std::system_error(errno, std::generic_category(),
                            "ScheduleServer: socket");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  ::unlink(path.c_str());  // stale socket file from a previous run
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) <
          0 ||
      ::listen(fd, backlog) < 0) {
    const int err = errno;
    ::close(fd);
    throw std::system_error(err, std::generic_category(),
                            "ScheduleServer: bind/listen on " + path);
  }
  return fd;
}

Response immediate(Status status, std::string error) {
  Response response;
  response.status = status;
  response.error = std::move(error);
  return response;
}

/// Read one frame of the given expected type from `fd`. Returns false on
/// clean EOF before a header; throws ProtocolError on malformed framing.
bool read_frame(int fd, FrameType expected,
                std::vector<std::uint8_t>* payload) {
  std::uint8_t header[kFrameHeaderBytes];
  if (!read_exact(fd, header, sizeof header)) return false;
  const FrameHeader h = decode_frame_header(header);
  if (h.type != expected)
    throw ProtocolError("serve: unexpected frame type");
  payload->resize(h.payload_len);
  if (h.payload_len != 0 && !read_exact(fd, payload->data(), payload->size()))
    throw ProtocolError("serve: truncated frame");
  return true;
}

}  // namespace

ScheduleServer::ScheduleServer(ServerConfig config)
    : config_(std::move(config)),
      cache_(config_.cache_bytes),
      queue_(config_.queue_capacity) {
  if (config_.workers < 0)
    throw std::invalid_argument("ScheduleServer: workers must be >= 0");
  if (!config_.listen_path.empty())
    listen_fd_ =
        bind_unix_listener(config_.listen_path, config_.listen_backlog);
  workers_.reserve(static_cast<std::size_t>(config_.workers));
  for (int i = 0; i < config_.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
  if (listen_fd_ >= 0) acceptor_ = std::thread([this] { accept_loop(); });
}

ScheduleServer::~ScheduleServer() { shutdown(); }

std::future<Response> ScheduleServer::submit(Request request) {
  static const obs::Counter rejected =
      obs::counter("qokit_serve_rejected_total");
  static const obs::Gauge depth_gauge =
      obs::gauge("qokit_serve_queue_depth");
  Job job{std::move(request), {}, steady::now()};
  std::future<Response> result = job.promise.get_future();
  if (stopping_.load(std::memory_order_acquire)) {
    job.promise.set_value(
        immediate(Status::ShuttingDown, "server is shutting down"));
    return result;
  }
  if (!queue_.try_push(std::move(job))) {
    rejected.add();
    job.promise.set_value(immediate(
        Status::Overloaded,
        "work queue full (" + std::to_string(queue_.capacity()) +
            " pending requests); retry later"));
    return result;
  }
  depth_gauge.set(static_cast<double>(queue_.depth()));
  return result;
}

Response ScheduleServer::submit_blocking(Request request) {
  return submit(std::move(request)).get();
}

void ScheduleServer::worker_loop() {
  static const obs::Gauge depth_gauge =
      obs::gauge("qokit_serve_queue_depth");
  while (std::optional<Job> job = queue_.pop()) {
    depth_gauge.set(static_cast<double>(queue_.depth()));
    Response response = handle(job->request, job->enqueued);
    job->promise.set_value(std::move(response));
  }
}

Response ScheduleServer::handle(Request& request,
                                steady::time_point enqueued) {
  static const obs::Counter requests =
      obs::counter("qokit_serve_requests_total");
  static const obs::Counter failures =
      obs::counter("qokit_serve_request_failures_total");
  static const obs::Histogram request_hist =
      obs::histogram("qokit_serve_request_ns");
  static const obs::Histogram queue_wait_hist =
      obs::histogram("qokit_serve_queue_wait_ns");
  requests.add();
  obs::Span span("serve_request");
  span.attr("schedules", static_cast<std::int64_t>(request.schedules.size()));

  Response response;
  const steady::time_point started = steady::now();
  response.queue_ns = elapsed_ns(enqueued, started);
  queue_wait_hist.record(response.queue_ns);
  try {
    if (request.terms.num_qubits() < 1)
      throw std::invalid_argument("serve: request carries no problem terms");
    SessionLease lease = cache_.checkout(request.terms, request.spec);
    response.cache_hit = lease.hit();
    span.attr("cache_hit", static_cast<std::int64_t>(lease.hit() ? 1 : 0));
    api::EvalRequest eval;
    eval.expectation = request.expectation;
    eval.overlap = request.overlap;
    eval.overlap_weight = request.overlap_weight;
    const std::vector<api::EvalResult> results =
        lease->evaluate_batch(request.schedules, eval);
    if (request.expectation) {
      response.expectations.reserve(results.size());
      for (const api::EvalResult& r : results)
        response.expectations.push_back(r.expectation.value());
    }
    if (request.overlap) {
      response.overlaps.reserve(results.size());
      for (const api::EvalResult& r : results)
        response.overlaps.push_back(r.overlap.value());
    }
    response.status = Status::Ok;
  } catch (const std::invalid_argument& e) {
    response.status = Status::BadRequest;
    response.error = e.what();
    failures.add();
  } catch (const std::exception& e) {
    response.status = Status::InternalError;
    response.error = e.what();
    failures.add();
  }
  const steady::time_point finished = steady::now();
  response.eval_ns = elapsed_ns(started, finished);
  request_hist.record(elapsed_ns(enqueued, finished));
  return response;
}

void ScheduleServer::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // shutdown() closed/shut down the listener (or it genuinely failed;
      // either way the acceptor is done).
      return;
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      return;
    }
    const MutexLock lock(conn_mu_);
    conn_fds_.push_back(fd);
    conn_threads_.emplace_back([this, fd] { connection_loop(fd); });
  }
}

void ScheduleServer::connection_loop(int fd) {
  static const obs::Counter malformed =
      obs::counter("qokit_serve_malformed_frames_total");
  std::vector<std::uint8_t> payload;
  for (;;) {
    Response response;
    bool close_after_reply = false;
    try {
      if (!read_frame(fd, FrameType::Request, &payload)) break;  // EOF
      Request request = decode_request(payload);
      response = submit(std::move(request)).get();
    } catch (const ProtocolError& e) {
      // Framing is broken: answer once so the client sees why, then close
      // (the stream can no longer be trusted to be frame-aligned).
      malformed.add();
      response = immediate(Status::BadRequest, e.what());
      close_after_reply = true;
    } catch (const std::invalid_argument& e) {
      // Well-framed, semantically bad (e.g. an unparseable spec token):
      // report and keep serving this connection.
      response = immediate(Status::BadRequest, e.what());
    }
    const std::vector<std::uint8_t> frame = encode_response(response);
    if (!write_all(fd, frame.data(), frame.size())) break;
    if (close_after_reply) break;
  }
  // Deregister before closing: once closed the fd number can be reused,
  // and shutdown() must never SHUT_RDWR someone else's descriptor.
  {
    const MutexLock lock(conn_mu_);
    conn_fds_.erase(std::remove(conn_fds_.begin(), conn_fds_.end(), fd),
                    conn_fds_.end());
  }
  ::shutdown(fd, SHUT_RDWR);
  ::close(fd);
}

void ScheduleServer::shutdown() {
  if (stopping_.exchange(true, std::memory_order_acq_rel)) return;
  // Stop the socket front end first so no new work arrives while the
  // queue drains.
  if (listen_fd_ >= 0) ::shutdown(listen_fd_, SHUT_RDWR);
  {
    const MutexLock lock(conn_mu_);
    for (int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  if (acceptor_.joinable()) acceptor_.join();
  // Connection threads exit on their shut-down fds; their submits resolve
  // as ShuttingDown (stopping_ is set) or drain through the workers.
  for (;;) {
    std::vector<std::thread> conns;
    {
      const MutexLock lock(conn_mu_);
      conns.swap(conn_threads_);
    }
    if (conns.empty()) break;
    for (std::thread& t : conns) t.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    ::unlink(config_.listen_path.c_str());
    listen_fd_ = -1;
  }
  // Close the queue: workers drain what is already queued, then exit.
  queue_.close();
  for (std::thread& w : workers_) w.join();
  workers_.clear();
  // With no workers left (including the workers == 0 test configuration),
  // fail whatever never got drained.
  while (std::optional<Job> job = queue_.pop())
    job->promise.set_value(
        immediate(Status::ShuttingDown, "server shut down before evaluation"));
}

Client::Client(const std::string& socket_path) {
  if (socket_path.size() >= sizeof(sockaddr_un{}.sun_path))
    throw std::invalid_argument("serve::Client: socket path too long: " +
                                socket_path);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0)
    throw std::system_error(errno, std::generic_category(),
                            "serve::Client: socket");
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr),
                sizeof addr) < 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw std::system_error(err, std::generic_category(),
                            "serve::Client: connect to " + socket_path);
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

Response Client::call(const Request& request) {
  const std::vector<std::uint8_t> frame = encode_request(request);
  if (!write_all(fd_, frame.data(), frame.size()))
    throw std::runtime_error("serve::Client: connection lost on write");
  std::vector<std::uint8_t> payload;
  if (!read_frame(fd_, FrameType::Response, &payload))
    throw std::runtime_error("serve::Client: connection closed by server");
  return decode_response(payload);
}

}  // namespace qokit::serve
