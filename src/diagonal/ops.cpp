#include "diagonal/ops.hpp"

#include <cmath>
#include <stdexcept>

#include "common/bitops.hpp"

namespace qokit {
namespace {

void check_dims(std::uint64_t a, std::uint64_t b, const char* what) {
  if (a != b) throw std::invalid_argument(std::string(what) + ": size mismatch");
}

}  // namespace

void apply_phase(StateVector& sv, const CostDiagonal& diag, double gamma,
                 Exec exec) {
  check_dims(sv.size(), diag.size(), "apply_phase");
  apply_phase_slice(sv.data(), diag.data(), sv.size(), gamma, exec);
}

void apply_phase_slice(cdouble* amp, const double* costs, std::uint64_t count,
                       double gamma, Exec exec) {
  parallel_for(exec, 0, static_cast<std::int64_t>(count),
               [amp, costs, gamma](std::int64_t i) {
                 const double ang = -gamma * costs[i];
                 amp[i] *= cdouble(std::cos(ang), std::sin(ang));
               });
}

void apply_phase(StateVector& sv, const DiagonalU16& diag, double gamma,
                 Exec exec) {
  check_dims(sv.size(), diag.size(), "apply_phase(u16)");
  const auto lut = diag.phase_table(gamma);
  cdouble* amp = sv.data();
  const std::uint16_t* codes = diag.codes();
  const cdouble* table = lut.data();
  parallel_for(exec, 0, static_cast<std::int64_t>(sv.size()),
               [amp, codes, table](std::int64_t i) {
                 amp[i] *= table[codes[i]];
               });
}

double expectation(const StateVector& sv, const CostDiagonal& diag,
                   Exec exec) {
  check_dims(sv.size(), diag.size(), "expectation");
  return expectation_slice(sv.data(), diag.data(), sv.size(), exec);
}

double expectation_slice(const cdouble* amp, const double* costs,
                         std::uint64_t count, Exec exec) {
  return parallel_reduce_sum(
      exec, 0, static_cast<std::int64_t>(count),
      [amp, costs](std::int64_t i) { return std::norm(amp[i]) * costs[i]; });
}

double expectation(const StateVector& sv, const DiagonalU16& diag,
                   Exec exec) {
  check_dims(sv.size(), diag.size(), "expectation(u16)");
  const cdouble* amp = sv.data();
  const std::uint16_t* codes = diag.codes();
  const double off = diag.offset();
  const double sc = diag.scale();
  return parallel_reduce_sum(exec, 0, static_cast<std::int64_t>(sv.size()),
                             [amp, codes, off, sc](std::int64_t i) {
                               return std::norm(amp[i]) *
                                      (off + sc * codes[i]);
                             });
}

double expectation_terms(const StateVector& sv, const TermList& terms,
                         Exec exec) {
  if (terms.num_qubits() != sv.num_qubits())
    throw std::invalid_argument("expectation_terms: qubit-count mismatch");
  const cdouble* amp = sv.data();
  double total = terms.offset();  // constant term, <1> = norm = 1
  for (const Term& t : terms) {
    if (t.mask == 0) continue;
    const std::uint64_t mask = t.mask;
    const double z = parallel_reduce_sum(
        exec, 0, static_cast<std::int64_t>(sv.size()),
        [amp, mask](std::int64_t i) {
          return std::norm(amp[i]) *
                 parity_sign(static_cast<std::uint64_t>(i), mask);
        });
    total += t.weight * z;
  }
  return total;
}

double overlap_ground(const StateVector& sv, const CostDiagonal& diag,
                      double tol, Exec exec) {
  check_dims(sv.size(), diag.size(), "overlap_ground");
  const double lo = diag.min_value();
  const cdouble* amp = sv.data();
  const double* c = diag.data();
  return parallel_reduce_sum(
      exec, 0, static_cast<std::int64_t>(sv.size()),
      [amp, c, lo, tol](std::int64_t i) {
        return c[i] <= lo + tol ? std::norm(amp[i]) : 0.0;
      });
}

double overlap_ground_sector(const StateVector& sv, const CostDiagonal& diag,
                             int weight, double tol) {
  check_dims(sv.size(), diag.size(), "overlap_ground_sector");
  double lo = 0.0;
  bool found = false;
  for (std::uint64_t x = 0; x < diag.size(); ++x) {
    if (popcount(x) != weight) continue;
    if (!found || diag[x] < lo) {
      lo = diag[x];
      found = true;
    }
  }
  if (!found)
    throw std::invalid_argument("overlap_ground_sector: empty weight sector");
  double mass = 0.0;
  for (std::uint64_t x = 0; x < diag.size(); ++x)
    if (popcount(x) == weight && diag[x] <= lo + tol)
      mass += std::norm(sv[x]);
  return mass;
}

}  // namespace qokit
