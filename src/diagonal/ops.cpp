#include "diagonal/ops.hpp"

#include <cmath>
#include <stdexcept>

#include "common/bitops.hpp"
#include "simd/kernels.hpp"

namespace qokit {
namespace {

void check_dims(std::uint64_t a, std::uint64_t b, const char* what) {
  if (a != b) throw std::invalid_argument(std::string(what) + ": size mismatch");
}

}  // namespace

void apply_phase(StateVector& sv, const CostDiagonal& diag, double gamma,
                 Exec exec) {
  check_dims(sv.size(), diag.size(), "apply_phase");
  if (sv.precision() == Precision::F32) {
    apply_phase_slice(sv.data_f32(), diag.data(), sv.size(), gamma, exec);
    return;
  }
  apply_phase_slice(sv.data(), diag.data(), sv.size(), gamma, exec);
}

void apply_phase_slice(cdouble* amp, const double* costs, std::uint64_t count,
                       double gamma, Exec exec) {
  simd::apply_phase_slice(amp, costs, count, gamma, exec);
}

void apply_phase_slice(cfloat* amp, const double* costs, std::uint64_t count,
                       double gamma, Exec exec) {
  simd::apply_phase_slice(amp, costs, count, gamma, exec);
}

void apply_phase(StateVector& sv, const DiagonalU16& diag, double gamma,
                 Exec exec) {
  check_dims(sv.size(), diag.size(), "apply_phase(u16)");
  // Per-thread reusable tables (1 MiB f64 / 256 KiB f32): after a
  // thread's first layer the u16 phase path performs zero allocations,
  // matching the other hot paths and keeping the scratch-reuse allocation
  // pins valid for the u16 backend too.
  if (sv.precision() == Precision::F32) {
    thread_local aligned_vector<std::complex<float>> lut32;
    diag.phase_table_into(gamma, lut32);
    simd::apply_phase_table(sv.data_f32(), diag.codes(), lut32.data(),
                            sv.size(), exec);
    return;
  }
  thread_local aligned_vector<std::complex<double>> lut;
  diag.phase_table_into(gamma, lut);
  simd::apply_phase_table(sv.data(), diag.codes(), lut.data(), sv.size(),
                          exec);
}

double expectation(const StateVector& sv, const CostDiagonal& diag,
                   Exec exec) {
  check_dims(sv.size(), diag.size(), "expectation");
  if (sv.precision() == Precision::F32)
    return expectation_slice(sv.data_f32(), diag.data(), sv.size(), exec);
  return expectation_slice(sv.data(), diag.data(), sv.size(), exec);
}

double expectation_slice(const cdouble* amp, const double* costs,
                         std::uint64_t count, Exec exec) {
  return simd::expectation_slice(amp, costs, count, exec);
}

double expectation_slice(const cfloat* amp, const double* costs,
                         std::uint64_t count, Exec exec) {
  return simd::expectation_slice(amp, costs, count, exec);
}

double expectation(const StateVector& sv, const DiagonalU16& diag,
                   Exec exec) {
  check_dims(sv.size(), diag.size(), "expectation(u16)");
  if (sv.precision() == Precision::F32)
    return simd::expectation_u16(sv.data_f32(), diag.codes(), diag.offset(),
                                 diag.scale(), sv.size(), exec);
  return simd::expectation_u16(sv.data(), diag.codes(), diag.offset(),
                               diag.scale(), sv.size(), exec);
}

double expectation_terms(const StateVector& sv, const TermList& terms,
                         Exec exec) {
  if (terms.num_qubits() != sv.num_qubits())
    throw std::invalid_argument("expectation_terms: qubit-count mismatch");
  double total = terms.offset();  // constant term, <1> = norm = 1
  if (sv.precision() == Precision::F32) {
    const cfloat* amp = sv.data_f32();
    for (const Term& t : terms) {
      if (t.mask == 0) continue;
      const std::uint64_t mask = t.mask;
      const double z = parallel_reduce_sum(
          exec, 0, static_cast<std::int64_t>(sv.size()),
          [amp, mask](std::int64_t i) {
            const double re = amp[i].real(), im = amp[i].imag();
            return (re * re + im * im) *
                   parity_sign(static_cast<std::uint64_t>(i), mask);
          });
      total += t.weight * z;
    }
    return total;
  }
  const cdouble* amp = sv.data();
  for (const Term& t : terms) {
    if (t.mask == 0) continue;
    const std::uint64_t mask = t.mask;
    const double z = parallel_reduce_sum(
        exec, 0, static_cast<std::int64_t>(sv.size()),
        [amp, mask](std::int64_t i) {
          return std::norm(amp[i]) *
                 parity_sign(static_cast<std::uint64_t>(i), mask);
        });
    total += t.weight * z;
  }
  return total;
}

double overlap_ground(const StateVector& sv, const CostDiagonal& diag,
                      double tol, Exec exec) {
  check_dims(sv.size(), diag.size(), "overlap_ground");
  const double lo = diag.min_value();
  if (sv.precision() == Precision::F32)
    return simd::overlap_ground(sv.data_f32(), diag.data(), lo + tol,
                                sv.size(), exec);
  return simd::overlap_ground(sv.data(), diag.data(), lo + tol, sv.size(),
                              exec);
}

double overlap_ground_sector(const StateVector& sv, const CostDiagonal& diag,
                             int weight, double tol, Exec exec) {
  check_dims(sv.size(), diag.size(), "overlap_ground_sector");
  if (weight < 0 || weight > diag.num_qubits())
    throw std::invalid_argument("overlap_ground_sector: empty weight sector");
  // The per-weight minimum is cached inside the diagonal (one scan for all
  // weights on first use), leaving a single filtered-reduction pass here.
  const double lo = diag.sector_min(weight);
  const double* c = diag.data();
  const double threshold = lo + tol;
  // Block-ordered reduction (not an OpenMP reduction) so the result is
  // independent of thread count, matching the simd-layer determinism
  // contract the other overlap/expectation paths follow.
  if (sv.precision() == Precision::F32) {
    const cfloat* amp = sv.data_f32();
    return parallel_reduce_blocks(
        exec, static_cast<std::int64_t>(sv.size()), kSimdBlock,
        [amp, c, weight, threshold](std::int64_t b, std::int64_t e) {
          double acc = 0.0;
          for (std::int64_t i = b; i < e; ++i)
            if (popcount(static_cast<std::uint64_t>(i)) == weight &&
                c[i] <= threshold) {
              const double re = amp[i].real(), im = amp[i].imag();
              acc += re * re + im * im;
            }
          return acc;
        });
  }
  const cdouble* amp = sv.data();
  return parallel_reduce_blocks(
      exec, static_cast<std::int64_t>(sv.size()), kSimdBlock,
      [amp, c, weight, threshold](std::int64_t b, std::int64_t e) {
        double acc = 0.0;
        for (std::int64_t i = b; i < e; ++i)
          if (popcount(static_cast<std::uint64_t>(i)) == weight &&
              c[i] <= threshold)
            acc += std::norm(amp[i]);
        return acc;
      });
}

}  // namespace qokit
