// Operations that consume the precomputed diagonal (paper Fig. 1): the
// phase operator (one elementwise multiply), the QAOA objective (one inner
// product) and the ground-state overlap. Also the *non*-precomputed
// expectation over raw terms, which is the objective-evaluation cost a
// gate-based baseline pays on every call.
#pragma once

#include "diagonal/cost_diagonal.hpp"
#include "diagonal/diagonal_u16.hpp"
#include "statevector/state.hpp"
#include "terms/term.hpp"

namespace qokit {

/// Phase operator e^{-i gamma C}: amp_x *= e^{-i gamma c_x}.
void apply_phase(StateVector& sv, const CostDiagonal& diag, double gamma,
                 Exec exec = Exec::Parallel);

/// Raw-slice phase kernel shared by the full-vector overload above and the
/// distributed simulator's per-rank slices, so the sharded evolution tracks
/// the single-node one bit-for-bit by construction. Both amplitude
/// precisions (the costs stay double either way).
void apply_phase_slice(cdouble* amp, const double* costs, std::uint64_t count,
                       double gamma, Exec exec = Exec::Parallel);
void apply_phase_slice(cfloat* amp, const double* costs, std::uint64_t count,
                       double gamma, Exec exec = Exec::Parallel);

/// Phase operator through the uint16 codec: a 65536-entry phase lookup
/// table is built once per call and gathered per amplitude.
void apply_phase(StateVector& sv, const DiagonalU16& diag, double gamma,
                 Exec exec = Exec::Parallel);

/// QAOA objective <psi|C|psi> = sum_x |amp_x|^2 c_x (paper's reused inner
/// product; O(2^n), independent of |T|).
double expectation(const StateVector& sv, const CostDiagonal& diag,
                   Exec exec = Exec::Parallel);

/// Raw-slice objective kernel (one rank's partial sum in the distributed
/// simulator); the full-vector overload above reduces over it. The f32
/// overload accumulates in double like every reduction.
double expectation_slice(const cdouble* amp, const double* costs,
                         std::uint64_t count, Exec exec = Exec::Parallel);
double expectation_slice(const cfloat* amp, const double* costs,
                         std::uint64_t count, Exec exec = Exec::Parallel);

/// Objective through the uint16 codec.
double expectation(const StateVector& sv, const DiagonalU16& diag,
                   Exec exec = Exec::Parallel);

/// Objective evaluated from raw terms, sum_k w_k <prod Z> -- the
/// O(|T| 2^n) path a framework without precomputation executes per call.
double expectation_terms(const StateVector& sv, const TermList& terms,
                         Exec exec = Exec::Parallel);

/// Ground-state overlap: total probability on basis states whose cost is
/// within `tol` of the diagonal minimum (QOKit's get_overlap).
double overlap_ground(const StateVector& sv, const CostDiagonal& diag,
                      double tol = 1e-9, Exec exec = Exec::Parallel);

/// Sector-restricted ground-state overlap: the minimum is taken within the
/// Hamming-weight-`weight` slice (xy mixers never leave it). Throws
/// std::invalid_argument if the sector is empty (weight outside [0, n]).
/// Shared by every simulator backend so the sector semantics cannot drift
/// between them. The sector minimum is cached in `diag` on first use; the
/// remaining single pass honors `exec`.
double overlap_ground_sector(const StateVector& sv, const CostDiagonal& diag,
                             int weight, double tol = 1e-9,
                             Exec exec = Exec::Parallel);

}  // namespace qokit
