// Precomputed diagonal of the problem Hamiltonian C-hat (paper Sec. III-A).
//
// The 2^n cost vector stores f(x) for every basis state x. It is computed
// once per problem and reused for (1) every phase-operator application,
// which becomes a single elementwise multiply by e^{-i gamma c_x}, and
// (2) every objective evaluation, which becomes one inner product. This is
// the paper's central optimization: it removes the |T|-dependent per-layer
// gate cost that dominates gate-based simulators at high depth.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "common/aligned.hpp"
#include "common/parallel.hpp"
#include "terms/term.hpp"

namespace qokit {

/// Loop ordering of the precompute kernel.
///
/// ElementMajor parallelizes over the 2^n vector elements with the term loop
/// inside — each element is written once, by one thread (the locality the
/// paper exploits on GPUs and across nodes). TermMajor loops terms outside
/// and streams the vector inside; it is provided as an ablation.
enum class PrecomputeStrategy { ElementMajor, TermMajor };

/// The 2^n cost vector c_x = f(x).
class CostDiagonal {
 public:
  CostDiagonal();

  /// Precompute from polynomial terms (Eq. 1). Each element is a sum of
  /// weight * (-1)^{popcount(x & mask)} over terms — the bitwise-XOR /
  /// population-count kernel of Sec. III-A.
  static CostDiagonal precompute(
      const TermList& terms, Exec exec = Exec::Parallel,
      PrecomputeStrategy strategy = PrecomputeStrategy::ElementMajor);

  /// Precompute from an arbitrary callable f(x) (the Python-lambda input
  /// path of QOKit's high-level API).
  static CostDiagonal from_function(int num_qubits,
                                    const std::function<double(std::uint64_t)>& f,
                                    Exec exec = Exec::Parallel);

  /// Wrap existing values (the `costs` constructor argument in Listing 1).
  static CostDiagonal from_values(int num_qubits,
                                  aligned_vector<double> values);

  int num_qubits() const noexcept { return n_; }
  std::uint64_t size() const noexcept { return values_.size(); }
  double operator[](std::uint64_t x) const noexcept { return values_[x]; }
  const double* data() const noexcept { return values_.data(); }
  const aligned_vector<double>& values() const noexcept { return values_; }

  /// Minimum cost (the optimal objective value f(x*)). Computed together
  /// with the maximum in one scan on first use and cached; the values are
  /// immutable after construction, so the cache can never go stale.
  double min_value() const;

  /// Maximum cost (cached alongside min_value()).
  double max_value() const;

  /// Minimum cost within the Hamming-weight-`weight` sector (the ground
  /// value the XY-mixer overlap is measured against). All n+1 sector minima
  /// are computed in one scan on the first call and cached. Throws
  /// std::invalid_argument when `weight` is outside [0, num_qubits()].
  double sector_min(int weight) const;

  /// Number of basis states attaining the minimum within `tol`.
  std::uint64_t ground_state_count(double tol = 1e-9) const;

  /// Memory held by the vector in bytes (2^n * 8 for double storage).
  std::uint64_t memory_bytes() const noexcept { return size() * sizeof(double); }

 private:
  struct Cache;
  Cache& cache() const;
  Cache& ensure_extrema() const;

  int n_ = 0;
  aligned_vector<double> values_;
  // Lazily filled derived values (extrema, sector minima). Shared between
  // copies — copies hold identical `values_`, so sharing is safe — and
  // guarded by std::once_flag, so concurrent readers race benignly.
  mutable std::shared_ptr<Cache> cache_;
};

}  // namespace qokit
