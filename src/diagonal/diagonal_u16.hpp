// Compressed uint16 cost vector (paper Sec. V-B).
//
// The optimal LABS energies are known to be < 2^16 for n < 65, so the paper
// stores the precomputed diagonal as uint16, cutting the memory overhead of
// precomputation from 100% of the state vector (double) to 12.5%. We
// generalize with an affine codec  value = offset + scale * code  that is
// exact whenever the spectrum is integral after shifting/scaling (LABS,
// MaxCut with integer weights, SAT clause counts scaled by 2^k).
//
// A second benefit implemented here: with at most 65536 distinct codes, the
// phase factors e^{-i gamma c_x} for a whole layer can be built as a 65536-
// entry lookup table and gathered, replacing a sin/cos pair per amplitude
// with a table load.
#pragma once

#include <complex>
#include <cstdint>

#include "common/aligned.hpp"
#include "diagonal/cost_diagonal.hpp"

namespace qokit {

/// uint16-coded diagonal with affine decode.
class DiagonalU16 {
 public:
  DiagonalU16() = default;

  /// Quantize `d` onto 65536 affine-spaced levels. If the values are exactly
  /// representable (integral spectrum with range < 2^16 after scaling),
  /// `is_exact()` is true and decode reproduces them bit-for-bit often
  /// enough for phase/expectation use; otherwise values are rounded to the
  /// nearest level.
  static DiagonalU16 encode(const CostDiagonal& d);

  int num_qubits() const noexcept { return n_; }
  std::uint64_t size() const noexcept { return codes_.size(); }

  /// Decoded cost of basis state x.
  double decode(std::uint64_t x) const noexcept {
    return offset_ + scale_ * codes_[x];
  }

  const std::uint16_t* codes() const noexcept { return codes_.data(); }
  double offset() const noexcept { return offset_; }
  double scale() const noexcept { return scale_; }

  /// True when every decoded value equals the original within 1e-12.
  bool is_exact() const noexcept { return exact_; }

  /// Largest |decode(x) - original| observed during encoding.
  double max_abs_error() const noexcept { return max_err_; }

  /// Memory held by the codes in bytes (2^n * 2).
  std::uint64_t memory_bytes() const noexcept {
    return size() * sizeof(std::uint16_t);
  }

  /// Phase-factor lookup table for angle gamma: lut[c] = e^{-i gamma
  /// decode(c)}. Size 65536; rebuild per distinct gamma.
  aligned_vector<std::complex<double>> phase_table(double gamma) const;

  /// Fill a caller-owned table instead of allocating one (resize reuses
  /// capacity), so the per-layer phase application can run with zero
  /// steady-state allocations like every other hot path. The complex64
  /// overload computes each factor in double and narrows once — the
  /// mixed-precision path's table build (256 KiB instead of 1 MiB).
  void phase_table_into(double gamma,
                        aligned_vector<std::complex<double>>& lut) const;
  void phase_table_into(double gamma,
                        aligned_vector<std::complex<float>>& lut) const;

 private:
  int n_ = 0;
  double offset_ = 0.0;
  double scale_ = 1.0;
  bool exact_ = false;
  double max_err_ = 0.0;
  aligned_vector<std::uint16_t> codes_;
};

}  // namespace qokit
