#include "diagonal/diagonal_u16.hpp"

#include <algorithm>
#include <cmath>

namespace qokit {

DiagonalU16 DiagonalU16::encode(const CostDiagonal& d) {
  DiagonalU16 out;
  out.n_ = d.num_qubits();
  const std::uint64_t dim = d.size();
  out.codes_.resize(dim);

  const double lo = d.min_value();
  const double hi = d.max_value();
  out.offset_ = lo;

  // Prefer scale 1 when the shifted spectrum already fits uint16 and is
  // integral -- the exact LABS case from the paper. Otherwise spread the
  // range over all 65536 levels.
  bool integral = true;
  for (std::uint64_t x = 0; x < dim && integral; ++x) {
    const double shifted = d[x] - lo;
    integral = std::abs(shifted - std::round(shifted)) < 1e-9;
  }
  if (integral && hi - lo <= 65535.0) {
    out.scale_ = 1.0;
  } else {
    out.scale_ = (hi > lo) ? (hi - lo) / 65535.0 : 1.0;
  }

  double max_err = 0.0;
  for (std::uint64_t x = 0; x < dim; ++x) {
    const double level = (d[x] - lo) / out.scale_;
    const double clamped = std::clamp(std::round(level), 0.0, 65535.0);
    out.codes_[x] = static_cast<std::uint16_t>(clamped);
    max_err = std::max(max_err,
                       std::abs(out.offset_ + out.scale_ * clamped - d[x]));
  }
  out.max_err_ = max_err;
  out.exact_ = max_err < 1e-12;
  return out;
}

aligned_vector<std::complex<double>> DiagonalU16::phase_table(
    double gamma) const {
  aligned_vector<std::complex<double>> lut;
  phase_table_into(gamma, lut);
  return lut;
}

void DiagonalU16::phase_table_into(
    double gamma, aligned_vector<std::complex<double>>& lut) const {
  lut.resize(65536);
  for (std::uint32_t c = 0; c < 65536; ++c) {
    const double ang = -gamma * (offset_ + scale_ * c);
    lut[c] = std::complex<double>(std::cos(ang), std::sin(ang));
  }
}

void DiagonalU16::phase_table_into(
    double gamma, aligned_vector<std::complex<float>>& lut) const {
  lut.resize(65536);
  for (std::uint32_t c = 0; c < 65536; ++c) {
    const double ang = -gamma * (offset_ + scale_ * c);
    lut[c] = std::complex<float>(static_cast<float>(std::cos(ang)),
                                 static_cast<float>(std::sin(ang)));
  }
}

}  // namespace qokit
