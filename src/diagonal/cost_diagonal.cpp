#include "diagonal/cost_diagonal.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/bitops.hpp"

namespace qokit {

CostDiagonal CostDiagonal::precompute(const TermList& terms, Exec exec,
                                      PrecomputeStrategy strategy) {
  CostDiagonal d;
  d.n_ = terms.num_qubits();
  const std::int64_t dim = static_cast<std::int64_t>(dim_of(d.n_));
  d.values_.assign(dim, 0.0);
  double* out = d.values_.data();
  const Term* ts = terms.terms().data();
  const std::size_t nt = terms.size();

  if (strategy == PrecomputeStrategy::ElementMajor) {
    // One thread owns one output element: the GPU-kernel layout of the
    // paper, and the layout reused verbatim for distributed slices.
    parallel_for(exec, 0, dim, [&](std::int64_t x) {
      double acc = 0.0;
      for (std::size_t k = 0; k < nt; ++k)
        acc += ts[k].weight * parity_sign(static_cast<std::uint64_t>(x),
                                          ts[k].mask);
      out[x] = acc;
    });
  } else {
    // Term-major ablation: stream the whole vector once per term.
    for (std::size_t k = 0; k < nt; ++k) {
      const double w = ts[k].weight;
      const std::uint64_t mask = ts[k].mask;
      parallel_for(exec, 0, dim, [&](std::int64_t x) {
        out[x] += w * parity_sign(static_cast<std::uint64_t>(x), mask);
      });
    }
  }
  return d;
}

CostDiagonal CostDiagonal::from_function(
    int num_qubits, const std::function<double(std::uint64_t)>& f, Exec exec) {
  CostDiagonal d;
  d.n_ = num_qubits;
  const std::int64_t dim = static_cast<std::int64_t>(dim_of(num_qubits));
  d.values_.assign(dim, 0.0);
  double* out = d.values_.data();
  parallel_for(exec, 0, dim, [&](std::int64_t x) {
    out[x] = f(static_cast<std::uint64_t>(x));
  });
  return d;
}

CostDiagonal CostDiagonal::from_values(int num_qubits,
                                       aligned_vector<double> values) {
  if (values.size() != dim_of(num_qubits))
    throw std::invalid_argument("from_values: size must be 2^n");
  CostDiagonal d;
  d.n_ = num_qubits;
  d.values_ = std::move(values);
  return d;
}

double CostDiagonal::min_value() const {
  return *std::min_element(values_.begin(), values_.end());
}

double CostDiagonal::max_value() const {
  return *std::max_element(values_.begin(), values_.end());
}

std::uint64_t CostDiagonal::ground_state_count(double tol) const {
  const double lo = min_value();
  std::uint64_t count = 0;
  for (double v : values_)
    if (v <= lo + tol) ++count;
  return count;
}

}  // namespace qokit
