#include "diagonal/cost_diagonal.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "common/bitops.hpp"
#include "obs/obs.hpp"

namespace qokit {

/// Derived-value cache: filled lazily, at most once per field group.
/// std::once_flag is the one raw <mutex> primitive the project linter
/// permits outside common/sync.hpp: call_once carries its own complete
/// discipline (the callable runs exactly once, happens-before every
/// return), so there is no lock protocol left for the thread-safety
/// analysis to check.
struct CostDiagonal::Cache {
  std::once_flag extrema_once;
  double min = 0.0;
  double max = 0.0;
  std::once_flag sector_once;
  std::vector<double> sector_min;  // indexed by Hamming weight, size n+1
};

CostDiagonal::CostDiagonal() : cache_(std::make_shared<Cache>()) {}

CostDiagonal::Cache& CostDiagonal::cache() const {
  // Every constructed CostDiagonal owns a cache box; a moved-from object
  // loses it. Recreate on (single-threaded) reuse of such an object.
  if (!cache_) cache_ = std::make_shared<Cache>();
  return *cache_;
}

CostDiagonal CostDiagonal::precompute(const TermList& terms, Exec exec,
                                      PrecomputeStrategy strategy) {
  static const obs::Counter precomputes =
      obs::counter("qokit_precomputes_total");
  static const obs::Histogram precompute_hist =
      obs::histogram("qokit_precompute_ns");
  precomputes.add();
  obs::HistTimer timer(precompute_hist);
  obs::Span span("precompute");
  span.attr("n", terms.num_qubits());
  span.attr("terms", static_cast<std::int64_t>(terms.size()));
  CostDiagonal d;
  d.n_ = terms.num_qubits();
  const std::int64_t dim = static_cast<std::int64_t>(dim_of(d.n_));
  d.values_.assign(dim, 0.0);
  double* out = d.values_.data();
  const Term* ts = terms.terms().data();
  const std::size_t nt = terms.size();

  if (strategy == PrecomputeStrategy::ElementMajor) {
    // One thread owns one output element: the GPU-kernel layout of the
    // paper, and the layout reused verbatim for distributed slices.
    parallel_for(exec, 0, dim, [&](std::int64_t x) {
      double acc = 0.0;
      for (std::size_t k = 0; k < nt; ++k)
        acc += ts[k].weight * parity_sign(static_cast<std::uint64_t>(x),
                                          ts[k].mask);
      out[x] = acc;
    });
  } else {
    // Term-major ablation: stream the whole vector once per term.
    for (std::size_t k = 0; k < nt; ++k) {
      const double w = ts[k].weight;
      const std::uint64_t mask = ts[k].mask;
      parallel_for(exec, 0, dim, [&](std::int64_t x) {
        out[x] += w * parity_sign(static_cast<std::uint64_t>(x), mask);
      });
    }
  }
  return d;
}

CostDiagonal CostDiagonal::from_function(
    int num_qubits, const std::function<double(std::uint64_t)>& f, Exec exec) {
  CostDiagonal d;
  d.n_ = num_qubits;
  const std::int64_t dim = static_cast<std::int64_t>(dim_of(num_qubits));
  d.values_.assign(dim, 0.0);
  double* out = d.values_.data();
  parallel_for(exec, 0, dim, [&](std::int64_t x) {
    out[x] = f(static_cast<std::uint64_t>(x));
  });
  return d;
}

CostDiagonal CostDiagonal::from_values(int num_qubits,
                                       aligned_vector<double> values) {
  if (values.size() != dim_of(num_qubits))
    throw std::invalid_argument("from_values: size must be 2^n");
  CostDiagonal d;
  d.n_ = num_qubits;
  d.values_ = std::move(values);
  return d;
}

CostDiagonal::Cache& CostDiagonal::ensure_extrema() const {
  if (values_.empty()) throw std::logic_error("extrema: empty diagonal");
  Cache& c = cache();
  std::call_once(c.extrema_once, [&] {
    const auto [lo, hi] = std::minmax_element(values_.begin(), values_.end());
    c.min = *lo;
    c.max = *hi;
  });
  return c;
}

double CostDiagonal::min_value() const { return ensure_extrema().min; }

double CostDiagonal::max_value() const { return ensure_extrema().max; }

double CostDiagonal::sector_min(int weight) const {
  if (values_.empty()) throw std::logic_error("sector_min: empty diagonal");
  if (weight < 0 || weight > n_)
    throw std::invalid_argument("sector_min: weight outside [0, n]");
  Cache& c = cache();
  std::call_once(c.sector_once, [&] {
    std::vector<double> m(static_cast<std::size_t>(n_) + 1,
                          std::numeric_limits<double>::infinity());
    for (std::uint64_t x = 0; x < values_.size(); ++x) {
      double& slot = m[static_cast<std::size_t>(popcount(x))];
      slot = std::min(slot, values_[x]);
    }
    c.sector_min = std::move(m);
  });
  return c.sector_min[static_cast<std::size_t>(weight)];
}

std::uint64_t CostDiagonal::ground_state_count(double tol) const {
  const double lo = min_value();
  std::uint64_t count = 0;
  for (double v : values_)
    if (v <= lo + tol) ++count;
  return count;
}

}  // namespace qokit
