#include "terms/term.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "common/bitops.hpp"

namespace qokit {

int Term::order() const noexcept { return popcount(mask); }

double Term::evaluate(std::uint64_t x) const noexcept {
  return weight * parity_sign(x, mask);
}

TermList::TermList(int num_qubits, std::vector<Term> terms)
    : num_qubits_(num_qubits), terms_(std::move(terms)) {
  if (num_qubits < 0 || num_qubits > 63)
    throw std::invalid_argument("TermList: num_qubits must be in [0, 63]");
  const std::uint64_t allowed =
      num_qubits == 0 ? 0ull : (dim_of(num_qubits) - 1ull);
  for (const Term& t : terms_)
    if (t.mask & ~allowed)
      throw std::invalid_argument("TermList: term mask exceeds num_qubits");
}

TermList TermList::from_pairs(
    int num_qubits,
    const std::vector<std::pair<double, std::vector<int>>>& pairs) {
  TermList out(num_qubits, {});
  for (const auto& [w, idx] : pairs) out.add(w, std::span<const int>(idx));
  return out;
}

void TermList::add(double weight, std::span<const int> indices) {
  std::uint64_t mask = 0;
  for (int i : indices) {
    if (i < 0 || i >= num_qubits_)
      throw std::out_of_range("TermList::add: index out of range");
    mask ^= 1ull << i;  // repeated spins cancel (s_i^2 = 1)
  }
  terms_.push_back({weight, mask});
}

void TermList::add(double weight, std::initializer_list<int> indices) {
  add(weight, std::span<const int>(indices.begin(), indices.size()));
}

void TermList::add_mask(double weight, std::uint64_t mask) {
  const std::uint64_t allowed =
      num_qubits_ == 0 ? 0ull : (dim_of(num_qubits_) - 1ull);
  if (mask & ~allowed)
    throw std::out_of_range("TermList::add_mask: mask exceeds num_qubits");
  terms_.push_back({weight, mask});
}

TermList& TermList::canonicalize(double tol) {
  std::sort(terms_.begin(), terms_.end(),
            [](const Term& a, const Term& b) { return a.mask < b.mask; });
  std::vector<Term> merged;
  merged.reserve(terms_.size());
  for (const Term& t : terms_) {
    if (!merged.empty() && merged.back().mask == t.mask)
      merged.back().weight += t.weight;
    else
      merged.push_back(t);
  }
  std::erase_if(merged,
                [tol](const Term& t) { return std::abs(t.weight) <= tol; });
  terms_ = std::move(merged);
  return *this;
}

double TermList::evaluate(std::uint64_t x) const noexcept {
  double acc = 0.0;
  for (const Term& t : terms_) acc += t.evaluate(x);
  return acc;
}

double TermList::offset() const noexcept {
  double acc = 0.0;
  for (const Term& t : terms_)
    if (t.mask == 0) acc += t.weight;
  return acc;
}

int TermList::max_order() const noexcept {
  int m = 0;
  for (const Term& t : terms_) m = std::max(m, t.order());
  return m;
}

double TermList::weight_l1() const noexcept {
  double acc = 0.0;
  for (const Term& t : terms_)
    if (t.mask != 0) acc += std::abs(t.weight);
  return acc;
}

std::string TermList::to_string() const {
  std::ostringstream os;
  for (const Term& t : terms_) {
    os << (t.weight >= 0 ? "+" : "") << t.weight;
    for (int q = 0; q < num_qubits_; ++q)
      if (test_bit(t.mask, q)) os << " s" << q;
    os << " ";
  }
  return os.str();
}

}  // namespace qokit
