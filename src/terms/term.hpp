// Polynomial cost functions over spins (Eq. 1 of the paper):
//
//     f(s) = sum_k w_k * prod_{i in t_k} s_i,   s_i in {-1, +1}.
//
// A term's variable set t_k is stored as a 64-bit mask, so evaluating a term
// on a basis state x is one AND + popcount: prod s_i = (-1)^{pop(x & mask)}.
// Products of spin variables compose by XOR of masks (s_i^2 = 1), which makes
// polynomial expansion of squared/clause objectives both exact and cheap.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <utility>
#include <vector>

namespace qokit {

/// One weighted spin monomial w * prod_{i in mask} s_i.
struct Term {
  double weight = 0.0;
  std::uint64_t mask = 0;  ///< bit i set <=> spin i participates

  /// Number of variables in the monomial (its order / locality).
  int order() const noexcept;

  /// Value of the monomial on basis state `x` (bit 0 -> s=+1, bit 1 -> s=-1).
  double evaluate(std::uint64_t x) const noexcept;

  friend bool operator==(const Term&, const Term&) = default;
};

/// The term set T = {(w_k, t_k)} defining a cost polynomial on n spins.
///
/// This is the C++ equivalent of the `terms` constructor argument in QOKit's
/// Python API (Listing 1 of the paper). A term with an empty mask is the
/// constant offset.
class TermList {
 public:
  TermList() = default;

  /// Build from explicit terms. Qubit indices in masks must be < num_qubits.
  TermList(int num_qubits, std::vector<Term> terms);

  /// Build from (weight, {indices...}) pairs, the Listing-1 style input.
  static TermList from_pairs(
      int num_qubits,
      const std::vector<std::pair<double, std::vector<int>>>& pairs);

  /// Add w * prod_{i in indices} s_i. Repeated indices cancel pairwise.
  void add(double weight, std::span<const int> indices);
  void add(double weight, std::initializer_list<int> indices);

  /// Add a term by mask directly (weights accumulate on canonicalize()).
  void add_mask(double weight, std::uint64_t mask);

  /// Merge duplicate masks, drop terms with |w| <= tol, sort by mask.
  /// Returns *this for chaining.
  TermList& canonicalize(double tol = 0.0);

  /// f(x): sum of all term values on basis state `x` (offset included).
  double evaluate(std::uint64_t x) const noexcept;

  /// Sum of weights of empty-mask terms (the constant offset).
  double offset() const noexcept;

  /// Largest monomial order present (0 for an empty/constant polynomial).
  int max_order() const noexcept;

  /// Sum of |w_k| over non-constant terms; upper-bounds |f - offset|.
  double weight_l1() const noexcept;

  int num_qubits() const noexcept { return num_qubits_; }
  std::size_t size() const noexcept { return terms_.size(); }
  bool empty() const noexcept { return terms_.empty(); }
  const Term& operator[](std::size_t k) const noexcept { return terms_[k]; }
  const std::vector<Term>& terms() const noexcept { return terms_; }
  std::vector<Term>::const_iterator begin() const { return terms_.begin(); }
  std::vector<Term>::const_iterator end() const { return terms_.end(); }

  /// Human-readable dump, e.g. "+2 s0 s1 s3 -1.5 s2" (debugging aid).
  std::string to_string() const;

 private:
  int num_qubits_ = 0;
  std::vector<Term> terms_;
};

}  // namespace qokit
