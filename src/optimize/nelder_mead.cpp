#include "optimize/nelder_mead.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

namespace qokit {

namespace detail {

BatchObjectiveFn adapt_scalar_objective(
    const std::function<double(const std::vector<double>&)>& f) {
  return [&f](const std::vector<std::vector<double>>& points) {
    std::vector<double> values;
    values.reserve(points.size());
    for (const std::vector<double>& x : points) values.push_back(f(x));
    return values;
  };
}

void check_population_values(const char* where, std::size_t points,
                             std::size_t values) {
  if (values != points)
    throw std::invalid_argument(std::string(where) + ": objective returned " +
                                std::to_string(values) + " values for " +
                                std::to_string(points) + " points");
}

}  // namespace detail

OptResult nelder_mead(
    const std::function<double(const std::vector<double>&)>& f,
    std::vector<double> x0, NelderMeadOptions opts) {
  // Scalar entry point: adapt f to a population evaluator and run the
  // batched core. One code path, identical trajectories.
  return nelder_mead_batched(detail::adapt_scalar_objective(f),
                             std::move(x0), opts);
}

OptResult nelder_mead_batched(const BatchObjectiveFn& f,
                              std::vector<double> x0, NelderMeadOptions opts) {
  const int dim = static_cast<int>(x0.size());
  if (dim == 0) throw std::invalid_argument("nelder_mead: empty x0");

  // Gao & Han adaptive coefficients; classic values for adaptive = false.
  const double alpha = 1.0;
  const double beta = opts.adaptive ? 1.0 + 2.0 / dim : 2.0;
  const double gamma = opts.adaptive ? 0.75 - 1.0 / (2.0 * dim) : 0.5;
  const double delta = opts.adaptive ? 1.0 - 1.0 / dim : 0.5;

  OptResult res;
  int evals = 0;
  // The callback is arbitrary user code: a wrong-sized return must throw,
  // not index out of bounds.
  auto eval_batch = [&](const std::vector<std::vector<double>>& points) {
    std::vector<double> values = f(points);
    detail::check_population_values("nelder_mead_batched", points.size(),
                                    values.size());
    evals += static_cast<int>(points.size());
    return values;
  };
  auto eval_one = [&](const std::vector<double>& x) {
    return eval_batch({x}).front();
  };

  // Initial simplex: x0 plus one offset vertex per coordinate, evaluated
  // as one batch of dim+1 points.
  std::vector<std::vector<double>> simplex(dim + 1, x0);
  std::vector<double> fv(dim + 1);
  for (int i = 0; i < dim; ++i)
    simplex[i + 1][i] += x0[i] != 0.0 ? opts.initial_step * std::abs(x0[i]) +
                                            opts.initial_step
                                      : opts.initial_step;
  fv = eval_batch(simplex);

  std::vector<int> order(dim + 1);
  std::vector<double> centroid(dim), xr(dim), xe(dim), xc(dim);

  int iter = 0;
  while (evals < opts.max_evals) {
    ++iter;
    for (int i = 0; i <= dim; ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](int a, int b) { return fv[a] < fv[b]; });
    const int best = order[0];
    const int worst = order[dim];
    const int second_worst = order[dim - 1];

    // Convergence: simplex extent and objective spread.
    double xspread = 0.0;
    for (int i = 1; i <= dim; ++i)
      for (int d = 0; d < dim; ++d)
        xspread = std::max(xspread,
                           std::abs(simplex[order[i]][d] - simplex[best][d]));
    const double fspread = std::abs(fv[worst] - fv[best]);
    if (xspread < opts.xtol && fspread < opts.ftol) {
      res.converged = true;
      break;
    }

    // Centroid of all but the worst vertex.
    std::fill(centroid.begin(), centroid.end(), 0.0);
    for (int i = 0; i <= dim; ++i) {
      if (i == worst) continue;
      for (int d = 0; d < dim; ++d) centroid[d] += simplex[i][d];
    }
    for (double& v : centroid) v /= dim;

    // Reflection.
    for (int d = 0; d < dim; ++d)
      xr[d] = centroid[d] + alpha * (centroid[d] - simplex[worst][d]);
    const double fr = eval_one(xr);

    if (fr < fv[best]) {
      // Expansion.
      for (int d = 0; d < dim; ++d)
        xe[d] = centroid[d] + beta * (xr[d] - centroid[d]);
      const double fe = eval_one(xe);
      if (fe < fr) {
        simplex[worst] = xe;
        fv[worst] = fe;
      } else {
        simplex[worst] = xr;
        fv[worst] = fr;
      }
    } else if (fr < fv[second_worst]) {
      simplex[worst] = xr;
      fv[worst] = fr;
    } else {
      // Contraction (outside if the reflected point improved on the worst).
      const bool outside = fr < fv[worst];
      const std::vector<double>& toward = outside ? xr : simplex[worst];
      for (int d = 0; d < dim; ++d)
        xc[d] = centroid[d] + gamma * (toward[d] - centroid[d]);
      const double fc = eval_one(xc);
      if (fc < std::min(fr, fv[worst])) {
        simplex[worst] = xc;
        fv[worst] = fc;
      } else {
        // Shrink toward the best vertex. The evaluation budget caps how
        // many shrunk vertices get (re)evaluated -- but always at least
        // one, and vertices beyond the budget keep their old coordinates
        // and values: this matches a scalar eval-then-break loop exactly.
        const int budget = std::clamp(opts.max_evals - evals, 1, dim);
        std::vector<std::vector<double>> shrunk;
        std::vector<int> shrunk_index;
        shrunk.reserve(budget);
        shrunk_index.reserve(budget);
        for (int i = 0; i <= dim && static_cast<int>(shrunk.size()) < budget;
             ++i) {
          if (i == best) continue;
          for (int d = 0; d < dim; ++d)
            simplex[i][d] =
                simplex[best][d] + delta * (simplex[i][d] - simplex[best][d]);
          shrunk.push_back(simplex[i]);
          shrunk_index.push_back(i);
        }
        const std::vector<double> shrunk_values = eval_batch(shrunk);
        for (std::size_t j = 0; j < shrunk_index.size(); ++j)
          fv[shrunk_index[j]] = shrunk_values[j];
      }
    }
  }

  const auto it = std::min_element(fv.begin(), fv.end());
  res.x = simplex[static_cast<std::size_t>(it - fv.begin())];
  res.fval = *it;
  res.evaluations = evals;
  res.iterations = iter;
  return res;
}

}  // namespace qokit
