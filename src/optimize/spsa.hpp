// Simultaneous Perturbation Stochastic Approximation: a two-evaluations-
// per-step optimizer popular for noisy QAOA objectives. Included as the
// second stock optimizer of the parameter-tuning toolkit.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "optimize/nelder_mead.hpp"  // OptResult

namespace qokit {

/// SPSA schedule and budget options (standard Spall coefficients).
struct SpsaOptions {
  int max_iterations = 200;
  double a = 0.2;        ///< step-size numerator
  double c = 0.1;        ///< perturbation size
  double alpha = 0.602;  ///< step-size decay exponent
  double gamma = 0.101;  ///< perturbation decay exponent
  double stability = 10.0;  ///< A, added to the iteration in the a-schedule
  std::uint64_t seed = 12345;
};

/// Minimize f starting at x0 with SPSA.
OptResult spsa(const std::function<double(const std::vector<double>&)>& f,
               std::vector<double> x0, SpsaOptions opts = {});

/// Batched SPSA: the two perturbed points of each iteration are submitted
/// as one batch (the iterate's own re-evaluation stays a one-point batch,
/// since it depends on them). Same RNG stream and bookkeeping as the
/// scalar spsa above, which delegates here: trajectories are identical.
OptResult spsa_batched(const BatchObjectiveFn& f, std::vector<double> x0,
                       SpsaOptions opts = {});

}  // namespace qokit
