#include "optimize/grid.hpp"

#include <limits>
#include <stdexcept>
#include <vector>

namespace qokit {

GridResult grid_search_p1(const BatchEvaluator& evaluator, int gamma_points,
                          int beta_points, double gamma_lo, double gamma_hi,
                          double beta_lo, double beta_hi) {
  if (gamma_points < 1 || beta_points < 1)
    throw std::invalid_argument("grid_search_p1: need >= 1 point per axis");
  // The full grid as one batch, gamma-major (gi outer, bi inner).
  std::vector<QaoaParams> schedules;
  schedules.reserve(static_cast<std::size_t>(gamma_points) * beta_points);
  for (int gi = 0; gi < gamma_points; ++gi) {
    const double g =
        gamma_points == 1
            ? gamma_lo
            : gamma_lo + (gamma_hi - gamma_lo) * gi / (gamma_points - 1);
    for (int bi = 0; bi < beta_points; ++bi) {
      const double b =
          beta_points == 1
              ? beta_lo
              : beta_lo + (beta_hi - beta_lo) * bi / (beta_points - 1);
      schedules.push_back(QaoaParams{{g}, {b}});
    }
  }
  const std::vector<double> values = evaluator.expectations(schedules);
  // Scan in submission order with strict <: the minimizer (ties included)
  // is the one a sequential evaluate-and-compare loop would keep.
  GridResult best;
  best.value = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < values.size(); ++i)
    if (values[i] < best.value)
      best = {schedules[i].gammas[0], schedules[i].betas[0], values[i]};
  return best;
}

GridResult grid_search_p1(const QaoaFastSimulatorBase& sim, int gamma_points,
                          int beta_points, double gamma_lo, double gamma_hi,
                          double beta_lo, double beta_hi) {
  return grid_search_p1(BatchEvaluator(sim), gamma_points, beta_points,
                        gamma_lo, gamma_hi, beta_lo, beta_hi);
}

}  // namespace qokit
