#include "optimize/grid.hpp"

#include <limits>
#include <stdexcept>

namespace qokit {

GridResult grid_search_p1(const QaoaFastSimulatorBase& sim, int gamma_points,
                          int beta_points, double gamma_lo, double gamma_hi,
                          double beta_lo, double beta_hi) {
  if (gamma_points < 1 || beta_points < 1)
    throw std::invalid_argument("grid_search_p1: need >= 1 point per axis");
  GridResult best;
  best.value = std::numeric_limits<double>::infinity();
  for (int gi = 0; gi < gamma_points; ++gi) {
    const double g =
        gamma_points == 1
            ? gamma_lo
            : gamma_lo + (gamma_hi - gamma_lo) * gi / (gamma_points - 1);
    for (int bi = 0; bi < beta_points; ++bi) {
      const double b =
          beta_points == 1
              ? beta_lo
              : beta_lo + (beta_hi - beta_lo) * bi / (beta_points - 1);
      const double gamma_arr[1] = {g};
      const double beta_arr[1] = {b};
      const StateVector r = sim.simulate_qaoa(gamma_arr, beta_arr);
      const double v = sim.get_expectation(r);
      if (v < best.value) best = {g, b, v};
    }
  }
  return best;
}

}  // namespace qokit
