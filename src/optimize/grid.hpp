// Exhaustive (gamma, beta) grid search at p = 1.
//
// The stock initialization for depth-1 QAOA: the p = 1 landscape is cheap
// to scan with the fast simulator, and the best grid point seeds local
// optimization or the INTERP ladder. Equivalent to the 2D heatmaps common
// in QAOA papers. The whole grid is one batch: it goes through
// BatchEvaluator, which shares the precomputed diagonal and scratch state
// across all points and threads across them when profitable.
#pragma once

#include "batch/batch_eval.hpp"
#include "fur/simulator.hpp"

namespace qokit {

/// Best point found by grid_search_p1.
struct GridResult {
  double gamma = 0.0;
  double beta = 0.0;
  double value = 0.0;  ///< objective at (gamma, beta)
};

/// Evaluate the p = 1 objective on a gamma_points x beta_points grid over
/// [gamma_lo, gamma_hi] x [beta_lo, beta_hi] and return the minimizer
/// (first strictly-smallest point in gamma-major order, as a sequential
/// scan would find it).
GridResult grid_search_p1(const QaoaFastSimulatorBase& sim, int gamma_points,
                          int beta_points, double gamma_lo, double gamma_hi,
                          double beta_lo, double beta_hi);

/// Same scan through a caller-owned evaluator (reuses its scratch pool;
/// useful when the grid seeds further batched optimization).
GridResult grid_search_p1(const BatchEvaluator& evaluator, int gamma_points,
                          int beta_points, double gamma_lo, double gamma_hi,
                          double beta_lo, double beta_hi);

}  // namespace qokit
