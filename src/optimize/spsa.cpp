#include "optimize/spsa.hpp"

#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"

namespace qokit {

OptResult spsa(const std::function<double(const std::vector<double>&)>& f,
               std::vector<double> x0, SpsaOptions opts) {
  const std::size_t dim = x0.size();
  if (dim == 0) throw std::invalid_argument("spsa: empty x0");
  Rng rng(opts.seed);

  OptResult res;
  std::vector<double> xp(dim), xm(dim), delta(dim);
  std::vector<double> best_x = x0;
  double best_f = f(x0);
  int evals = 1;

  for (int k = 0; k < opts.max_iterations; ++k) {
    const double ak =
        opts.a / std::pow(k + 1 + opts.stability, opts.alpha);
    const double ck = opts.c / std::pow(k + 1, opts.gamma);
    for (std::size_t d = 0; d < dim; ++d) {
      delta[d] = rng.bernoulli(0.5) ? 1.0 : -1.0;  // Rademacher
      xp[d] = x0[d] + ck * delta[d];
      xm[d] = x0[d] - ck * delta[d];
    }
    const double fp = f(xp);
    const double fm = f(xm);
    evals += 2;
    for (std::size_t d = 0; d < dim; ++d)
      x0[d] -= ak * (fp - fm) / (2.0 * ck * delta[d]);
    const double fx = f(x0);
    ++evals;
    if (fx < best_f) {
      best_f = fx;
      best_x = x0;
    }
  }

  res.x = std::move(best_x);
  res.fval = best_f;
  res.evaluations = evals;
  res.iterations = opts.max_iterations;
  res.converged = true;  // fixed-budget method
  return res;
}

}  // namespace qokit
