#include "optimize/spsa.hpp"

#include <cmath>
#include <stdexcept>

#include "common/rng.hpp"

namespace qokit {

OptResult spsa(const std::function<double(const std::vector<double>&)>& f,
               std::vector<double> x0, SpsaOptions opts) {
  // Scalar entry point: adapt f to a population evaluator and run the
  // batched core. One code path, identical trajectories.
  return spsa_batched(detail::adapt_scalar_objective(f), std::move(x0), opts);
}

OptResult spsa_batched(const BatchObjectiveFn& f, std::vector<double> x0,
                       SpsaOptions opts) {
  const std::size_t dim = x0.size();
  if (dim == 0) throw std::invalid_argument("spsa: empty x0");
  Rng rng(opts.seed);

  // The callback is arbitrary user code: a wrong-sized return must throw,
  // not index out of bounds.
  auto eval_batch = [&f](const std::vector<std::vector<double>>& points) {
    std::vector<double> values = f(points);
    detail::check_population_values("spsa_batched", points.size(),
                                    values.size());
    return values;
  };

  OptResult res;
  std::vector<double> xp(dim), xm(dim), delta(dim);
  std::vector<double> best_x = x0;
  double best_f = eval_batch({x0}).front();
  int evals = 1;

  for (int k = 0; k < opts.max_iterations; ++k) {
    const double ak =
        opts.a / std::pow(k + 1 + opts.stability, opts.alpha);
    const double ck = opts.c / std::pow(k + 1, opts.gamma);
    for (std::size_t d = 0; d < dim; ++d) {
      delta[d] = rng.bernoulli(0.5) ? 1.0 : -1.0;  // Rademacher
      xp[d] = x0[d] + ck * delta[d];
      xm[d] = x0[d] - ck * delta[d];
    }
    // The two-sided gradient probe is one batch of two schedules.
    const std::vector<double> probe = eval_batch({xp, xm});
    const double fp = probe[0];
    const double fm = probe[1];
    evals += 2;
    for (std::size_t d = 0; d < dim; ++d)
      x0[d] -= ak * (fp - fm) / (2.0 * ck * delta[d]);
    const double fx = eval_batch({x0}).front();
    ++evals;
    if (fx < best_f) {
      best_f = fx;
      best_x = x0;
    }
  }

  res.x = std::move(best_x);
  res.fval = best_f;
  res.evaluations = evals;
  res.iterations = opts.max_iterations;
  res.converged = true;  // fixed-budget method
  return res;
}

}  // namespace qokit
