// Derivative-free local optimizer for QAOA parameter tuning.
//
// The paper's headline metric is the cost of a "typical QAOA parameter
// optimization", i.e. hundreds of objective evaluations driven by a local
// optimizer. Nelder-Mead (with the adaptive coefficients of Gao & Han) is
// the stock choice in QAOA studies and what we use for the Table-1-style
// benchmark and the examples.
#pragma once

#include <functional>
#include <vector>

namespace qokit {

/// Result of an optimization run.
struct OptResult {
  std::vector<double> x;    ///< best parameters found
  double fval = 0.0;        ///< objective at x
  int evaluations = 0;      ///< number of objective calls
  int iterations = 0;       ///< optimizer iterations
  bool converged = false;   ///< tolerance met before hitting max_evals
};

/// Nelder-Mead options.
struct NelderMeadOptions {
  int max_evals = 1000;     ///< hard budget on objective calls
  double xtol = 1e-6;       ///< simplex size tolerance
  double ftol = 1e-9;       ///< objective spread tolerance
  double initial_step = 0.1;  ///< initial simplex offset per coordinate
  bool adaptive = true;     ///< dimension-dependent coefficients (Gao-Han)
};

/// Minimize f starting at x0.
OptResult nelder_mead(const std::function<double(const std::vector<double>&)>& f,
                      std::vector<double> x0, NelderMeadOptions opts = {});

}  // namespace qokit
