// Derivative-free local optimizer for QAOA parameter tuning.
//
// The paper's headline metric is the cost of a "typical QAOA parameter
// optimization", i.e. hundreds of objective evaluations driven by a local
// optimizer. Nelder-Mead (with the adaptive coefficients of Gao & Han) is
// the stock choice in QAOA studies and what we use for the Table-1-style
// benchmark and the examples.
#pragma once

#include <functional>
#include <vector>

namespace qokit {

/// Result of an optimization run.
struct OptResult {
  std::vector<double> x;    ///< best parameters found
  double fval = 0.0;        ///< objective at x
  int evaluations = 0;      ///< number of objective calls
  int iterations = 0;       ///< optimizer iterations
  bool converged = false;   ///< tolerance met before hitting max_evals
};

/// Nelder-Mead options.
struct NelderMeadOptions {
  int max_evals = 1000;     ///< hard budget on objective calls
  double xtol = 1e-6;       ///< simplex size tolerance
  double ftol = 1e-9;       ///< objective spread tolerance
  double initial_step = 0.1;  ///< initial simplex offset per coordinate
  bool adaptive = true;     ///< dimension-dependent coefficients (Gao-Han)
};

/// Population evaluator: maps a set of points to their objective values in
/// the same order. The batched optimizer entry points funnel every
/// multi-point step through one call, so a BatchEvaluator (or any other
/// vectorized objective) can evaluate the population in parallel.
using BatchObjectiveFn =
    std::function<std::vector<double>(const std::vector<std::vector<double>>&)>;

namespace detail {

/// Adapt a scalar objective to the BatchObjectiveFn shape: points are
/// evaluated sequentially, in submission order. Captures `f` by
/// reference -- the adapter must not outlive it.
BatchObjectiveFn adapt_scalar_objective(
    const std::function<double(const std::vector<double>&)>& f);

/// Throw std::invalid_argument (naming `where`) unless a population
/// callback returned exactly one value per submitted point.
void check_population_values(const char* where, std::size_t points,
                             std::size_t values);

}  // namespace detail

/// Minimize f starting at x0.
OptResult nelder_mead(const std::function<double(const std::vector<double>&)>& f,
                      std::vector<double> x0, NelderMeadOptions opts = {});

/// Batched Nelder-Mead: the initial simplex (dim+1 points) and each shrink
/// step (up to dim points) are submitted as single batches; singleton
/// steps (reflect/expand/contract) go through one-point batches. The
/// trajectory -- every evaluated point, in order, and all bookkeeping --
/// is identical to the scalar nelder_mead above, which delegates here.
OptResult nelder_mead_batched(const BatchObjectiveFn& f,
                              std::vector<double> x0,
                              NelderMeadOptions opts = {});

}  // namespace qokit
