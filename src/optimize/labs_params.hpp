// Pre-optimized LABS QAOA schedules, shipped with the library.
//
// QOKit "provides optimized parameters ... for a set of commonly studied
// problems" (paper Sec. I); for LABS the key empirical fact (exploited at
// scale by the paper's Ref. [6]) is that good schedules *transfer* across
// problem sizes. The table below was produced with this repository's own
// optimizer (multi-start Nelder-Mead + INTERP ladder at n = 12; see
// DESIGN.md) and is validated across n in the test suite.
#pragma once

#include "optimize/params.hpp"

namespace qokit {

/// Largest depth with a shipped LABS schedule.
int labs_transferred_max_p();

/// Optimized LABS schedule for depth p (1 <= p <= labs_transferred_max_p).
/// Angles were tuned at n = 12 and transfer to nearby sizes; for larger
/// depth, extend with interp_to_next_depth + local re-optimization.
QaoaParams labs_transferred_params(int p);

}  // namespace qokit
