#include "optimize/params.hpp"

#include <stdexcept>

namespace qokit {
namespace {

/// Linear resampling of a length-p angle sequence onto p+1 points
/// (endpoints preserved): the INTERP idea of Zhou et al. -- optimal
/// schedules vary smoothly with the layer fraction l/p, so a depth-p
/// optimum is a good starting point one depth up.
std::vector<double> interp_one(const std::vector<double>& v) {
  const int p = static_cast<int>(v.size());
  std::vector<double> out(p + 1);
  for (int i = 0; i <= p; ++i) {
    // Position of the new angle inside the old index space.
    const double t = static_cast<double>(i) * (p - 1) / p;
    const int lo = static_cast<int>(t);
    const int hi = lo + 1 < p ? lo + 1 : p - 1;
    const double frac = t - lo;
    out[i] = (1.0 - frac) * v[lo] + frac * v[hi];
  }
  return out;
}

}  // namespace

std::vector<double> QaoaParams::flatten() const {
  std::vector<double> x;
  x.reserve(gammas.size() + betas.size());
  x.insert(x.end(), gammas.begin(), gammas.end());
  x.insert(x.end(), betas.begin(), betas.end());
  return x;
}

QaoaParams QaoaParams::unflatten(const std::vector<double>& x) {
  if (x.size() % 2 != 0)
    throw std::invalid_argument("QaoaParams::unflatten: odd length");
  const std::size_t p = x.size() / 2;
  QaoaParams out;
  out.gammas.assign(x.begin(), x.begin() + p);
  out.betas.assign(x.begin() + p, x.end());
  return out;
}

QaoaParams linear_ramp(int p, double dt) {
  if (p < 1) throw std::invalid_argument("linear_ramp: p must be >= 1");
  QaoaParams out;
  out.gammas.resize(p);
  out.betas.resize(p);
  for (int l = 0; l < p; ++l) {
    const double frac = (l + 0.5) / p;
    out.gammas[l] = dt * frac;
    out.betas[l] = -dt * (1.0 - frac);  // see header: annealing-consistent sign
  }
  return out;
}

QaoaParams interp_to_next_depth(const QaoaParams& params) {
  if (params.p() < 1)
    throw std::invalid_argument("interp_to_next_depth: empty schedule");
  QaoaParams out;
  out.gammas = interp_one(params.gammas);
  out.betas = interp_one(params.betas);
  return out;
}

}  // namespace qokit
