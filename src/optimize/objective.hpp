// The QAOA objective <gamma beta|C|gamma beta> as an optimizable functor.
//
// Wraps any QaoaFastSimulatorBase: the simulator owns the precomputed
// diagonal, so every call costs p mixer transforms + p phase multiplies +
// one inner product -- the loop of paper Fig. 1 that the optimizer drives.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "fur/simulator.hpp"

namespace qokit {

/// Callable objective with evaluation counting.
class QaoaObjective {
 public:
  /// `sim` must outlive the objective. `p` fixes the parameter layout:
  /// x = (gamma_1..gamma_p, beta_1..beta_p).
  QaoaObjective(const QaoaFastSimulatorBase& sim, int p);

  /// Objective value at packed parameters x (size 2p).
  double operator()(const std::vector<double>& x) const;

  /// Number of simulator invocations so far.
  int evaluations() const { return evals_; }

  /// Reset the evaluation counter.
  void reset_count() { evals_ = 0; }

  int p() const { return p_; }

 private:
  const QaoaFastSimulatorBase* sim_;
  int p_;
  mutable int evals_ = 0;
};

}  // namespace qokit
