// The QAOA objective <gamma beta|C|gamma beta> as an optimizable functor.
//
// Wraps any QaoaFastSimulatorBase: the simulator owns the precomputed
// diagonal, so every call costs p mixer transforms + p phase multiplies +
// one inner product -- the loop of paper Fig. 1 that the optimizer drives.
// Both functors reuse scratch statevectors across calls (the evolution is
// consume-in-place per simulate_qaoa_from's contract), so steady-state
// evaluation performs zero statevector allocations.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "batch/batch_eval.hpp"
#include "fur/simulator.hpp"

namespace qokit {

/// Callable objective with evaluation counting. Not safe for concurrent
/// operator() calls on one instance (each instance owns one reused
/// scratch state, like BatchEvaluator's pool); distinct instances over
/// the same simulator are independent.
class QaoaObjective {
 public:
  /// `sim` must outlive the objective. `p` fixes the parameter layout:
  /// x = (gamma_1..gamma_p, beta_1..beta_p).
  QaoaObjective(const QaoaFastSimulatorBase& sim, int p);

  /// Objective value at packed parameters x (size 2p).
  double operator()(const std::vector<double>& x) const;

  /// Number of simulator invocations so far.
  int evaluations() const { return evals_; }

  /// Reset the evaluation counter.
  void reset_count() { evals_ = 0; }

  int p() const { return p_; }

 private:
  const QaoaFastSimulatorBase* sim_;
  int p_;
  mutable int evals_ = 0;
  StateVector init_;            ///< cached initial state template
  mutable StateVector scratch_; ///< reused across calls; refilled from init_
};

/// Population objective for the batched optimizers: evaluates a set of
/// packed points through one BatchEvaluator submission, sharing the
/// precomputed diagonal and the per-thread scratch pool across the whole
/// optimization run. Matches the BatchObjectiveFn shape of
/// nelder_mead_batched / spsa_batched.
class QaoaBatchObjective {
 public:
  /// `sim` must outlive the objective. `p` fixes the parameter layout.
  QaoaBatchObjective(const QaoaFastSimulatorBase& sim, int p,
                     BatchOptions opts = {});

  /// Objective values of a population of packed points (each size 2p),
  /// in submission order.
  std::vector<double> operator()(
      const std::vector<std::vector<double>>& points) const;

  /// Number of simulator invocations (points evaluated) so far.
  int evaluations() const { return evals_; }

  /// Number of batches submitted so far.
  int batches() const { return batches_; }

  void reset_count() { evals_ = batches_ = 0; }

  int p() const { return p_; }
  const BatchEvaluator& evaluator() const { return evaluator_; }

 private:
  BatchEvaluator evaluator_;
  int p_;
  mutable int evals_ = 0;
  mutable int batches_ = 0;
};

}  // namespace qokit
