#include "optimize/objective.hpp"

#include <span>
#include <stdexcept>
#include <utility>

namespace qokit {

QaoaObjective::QaoaObjective(const QaoaFastSimulatorBase& sim, int p)
    : sim_(&sim), p_(p), init_(sim.initial_state()) {
  if (p < 1) throw std::invalid_argument("QaoaObjective: p must be >= 1");
}

double QaoaObjective::operator()(const std::vector<double>& x) const {
  if (static_cast<int>(x.size()) != 2 * p_)
    throw std::invalid_argument("QaoaObjective: expected 2p parameters");
  ++evals_;
  const std::span<const double> gammas(x.data(), p_);
  const std::span<const double> betas(x.data() + p_, p_);
  // Refill the scratch state from the cached template (a copy-assign that
  // reuses its buffer) and evolve it in place: after the first call no
  // statevector is allocated, where simulate_qaoa would allocate and fill
  // a fresh initial state per evaluation.
  scratch_ = init_;
  scratch_ = sim_->simulate_qaoa_from(std::move(scratch_), gammas, betas);
  return sim_->get_expectation(scratch_);
}

QaoaBatchObjective::QaoaBatchObjective(const QaoaFastSimulatorBase& sim, int p,
                                       BatchOptions opts)
    : evaluator_(sim, opts), p_(p) {
  if (p < 1) throw std::invalid_argument("QaoaBatchObjective: p must be >= 1");
}

std::vector<double> QaoaBatchObjective::operator()(
    const std::vector<std::vector<double>>& points) const {
  for (const std::vector<double>& x : points)
    if (static_cast<int>(x.size()) != 2 * p_)
      throw std::invalid_argument(
          "QaoaBatchObjective: expected 2p parameters");
  evals_ += static_cast<int>(points.size());
  ++batches_;
  return evaluator_.expectations_packed(points);
}

}  // namespace qokit
