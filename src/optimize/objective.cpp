#include "optimize/objective.hpp"

#include <span>
#include <stdexcept>

namespace qokit {

QaoaObjective::QaoaObjective(const QaoaFastSimulatorBase& sim, int p)
    : sim_(&sim), p_(p) {
  if (p < 1) throw std::invalid_argument("QaoaObjective: p must be >= 1");
}

double QaoaObjective::operator()(const std::vector<double>& x) const {
  if (static_cast<int>(x.size()) != 2 * p_)
    throw std::invalid_argument("QaoaObjective: expected 2p parameters");
  ++evals_;
  const std::span<const double> gammas(x.data(), p_);
  const std::span<const double> betas(x.data() + p_, p_);
  const StateVector result = sim_->simulate_qaoa(gammas, betas);
  return sim_->get_expectation(result);
}

}  // namespace qokit
