#include "optimize/labs_params.hpp"

#include <stdexcept>

namespace qokit {
namespace {

// Generated with this library (multi-start Nelder-Mead + INTERP ladder,
// restricted to the transferable small-gamma regime) on LABS n = 12.
// Energies reached at n = 12: 56.57, 43.07, 36.40, 33.30, 30.83 for
// p = 1..5 against the uniform-state value 66; the same angles evaluated
// at n = 10 / n = 14 also beat uniform by wide margins (see tests).
const std::vector<std::vector<double>> kGammas = {
    {-0.0063210600},
    {-0.0051248824, 0.0215716386},
    {-0.0050384285, 0.0201457466, 0.0388148732},
    {-0.0037941641, 0.0144649942, 0.0301009811, 0.0427154452},
    {-0.0032595649, 0.0121025148, 0.0222318812, 0.0337338467, 0.0438404165},
};

const std::vector<std::vector<double>> kBetas = {
    {-0.6408283590},
    {-0.6629870288, -0.1186043580},
    {-0.6722039528, -0.1317202209, -0.0861881477},
    {-0.6478470333, -0.1362730961, -0.0919754238, -0.0715128738},
    {-0.6675312344, -0.1392095764, -0.1009434715, -0.0814655853,
     -0.0653199114},
};

}  // namespace

int labs_transferred_max_p() { return static_cast<int>(kGammas.size()); }

QaoaParams labs_transferred_params(int p) {
  if (p < 1 || p > labs_transferred_max_p())
    throw std::invalid_argument("labs_transferred_params: p out of table");
  QaoaParams out;
  out.gammas = kGammas[p - 1];
  out.betas = kBetas[p - 1];
  return out;
}

}  // namespace qokit
