// QAOA parameter-initialization heuristics.
//
// QOKit ships "optimized parameters ... for a set of commonly studied
// problems"; the transferable pieces are the schedules themselves:
//  - linear ramp (trotterized-quantum-annealing / TQA initialization,
//    the paper's Ref. [44]): gamma ramps up, beta ramps down;
//  - INTERP: linearly re-interpolate a depth-p schedule to depth p+1
//    (Zhou et al.), the standard ladder for reaching high depth.
#pragma once

#include <vector>

namespace qokit {

/// Flat (gamma_1..gamma_p, beta_1..beta_p) parameter vector.
struct QaoaParams {
  std::vector<double> gammas;
  std::vector<double> betas;

  int p() const { return static_cast<int>(gammas.size()); }

  /// Pack as the single vector consumed by optimizers: gammas then betas.
  std::vector<double> flatten() const;

  /// Inverse of flatten(); size must be even.
  static QaoaParams unflatten(const std::vector<double>& x);
};

/// Linear-ramp (TQA) schedule of total time `dt * p`:
/// gamma_l = dt (l+1/2)/p and beta_l = -dt (1 - (l+1/2)/p).
///
/// Sign convention: this library applies e^{-i gamma C} (C minimized) and
/// e^{-i beta sum X}. The initial state |+>^n is the *ground* state of
/// -sum X, so the annealing path H(s) = -(1-s) sum X + s C corresponds to
/// negative beta angles ramping to zero while gamma ramps up.
QaoaParams linear_ramp(int p, double dt = 0.75);

/// INTERP: produce a depth-(p+1) schedule from a depth-p one by linear
/// interpolation of each angle sequence.
QaoaParams interp_to_next_depth(const QaoaParams& params);

}  // namespace qokit
