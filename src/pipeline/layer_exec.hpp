// Executes a LayerPlan over a raw amplitude array.
//
// The executor is a second driver for the SIMD kernel families (a peer of
// src/simd/dispatch.cpp): it walks the plan's passes and hands the active
// family's block kernels cache-sized sub-ranges in tiled order instead of
// the flat kSimdBlock order. Because the same family kernels perform the
// same per-amplitude arithmetic in the same per-amplitude order — fusion
// only reorders *which amplitudes are visited when*, and no pass carries a
// cross-amplitude reduction — the result is bit-identical to the unfused
// apply_phase + apply_mixer_x loop at every dispatch level, Exec policy,
// and thread count (see DESIGN.md "The layer pipeline" for the alignment
// argument that makes this exact, not approximate).
#pragma once

#include <cstdint>

#include "pipeline/layer_plan.hpp"
#include "statevector/state.hpp"

namespace qokit::pipeline {

/// How run_layer applies the diagonal phase e^{-i gamma C}. Exactly one
/// source must be set: `costs` for the double-precision diagonal (sliced
/// at the same offsets as the amplitudes), or `codes` + `table` for the
/// uint16 codec (table = the per-gamma 65536-entry factor lookup).
/// Templated on the amplitude scalar: costs and codes stay double/u16 at
/// both precisions (the f32 path narrows only the per-amplitude factors,
/// so the table element type follows the amplitudes).
template <class T>
struct PhaseCtxT {
  const double* costs = nullptr;
  const std::uint16_t* codes = nullptr;
  const std::complex<T>* table = nullptr;
};
using PhaseCtx = PhaseCtxT<double>;
using PhaseCtxF32 = PhaseCtxT<float>;

/// Run one fused QAOA layer (phase by `gamma`, X mixer by `beta`) over
/// `amp[0, n_amps)`. n_amps must equal 2^plan.num_qubits(); the plan must
/// be active. `amp` may be a full state or one rank's slice (the
/// distributed simulator passes its local slice with a plan built for the
/// local qubit count). Deterministic for any Exec/thread count — at both
/// precisions: the f32 overload drives the f32 kernel family over the
/// identical pass/tile decomposition, so the bit-identity argument above
/// carries over unchanged (same amplitudes, same groups of 4-or-8, same
/// per-amplitude arithmetic).
void run_layer(const LayerPlan& plan, cdouble* amp, std::uint64_t n_amps,
               const PhaseCtx& phase, double gamma, double beta, Exec exec);
void run_layer(const LayerPlan& plan, cfloat* amp, std::uint64_t n_amps,
               const PhaseCtxF32& phase, double gamma, double beta,
               Exec exec);

/// Cost source for the fused expectation reduction (run_layer_expectation).
/// Exactly one of `costs` (double diagonal) or `codes` (+ offset/scale,
/// the u16 codec) must be set — mirroring the expectation_slice /
/// expectation_u16 dispatch pair.
struct ExpectationCtx {
  const double* costs = nullptr;
  const std::uint16_t* codes = nullptr;
  double offset = 0.0;
  double scale = 0.0;
};

/// True when a plan's FINAL pass can carry the expectation reduction:
/// the plan is active and non-empty, the array holds at least one
/// kReduceBlock, the final pass's unit width is a whole number of
/// kReduceBlocks (so the fused partial blocks land at exactly the
/// absolute offsets the two-pass expectation_slice uses), and the final
/// pass has no trailing elementwise multiply (a post-phase would run
/// after the reduction read). With the default Geometry every Fused and
/// Fwht plan for n >= 10 qualifies.
bool can_fuse_expectation(const LayerPlan& plan, std::uint64_t n_amps);

/// run_layer, plus: after each unit of the FINAL pass finishes its
/// butterflies, reduce that unit's amplitudes against `reduce` in
/// kReduceBlock sub-blocks, writing partials[abs_index / kReduceBlock].
/// Partial slots are disjoint across units (units partition the array),
/// so the fill is race-free under any Exec; the caller sums
/// partials[0, n_amps / kReduceBlock) sequentially in index order, which
/// reproduces parallel_reduce_blocks' combination order — making
/// fused-expectation results bit-identical to running run_layer followed
/// by expectation_slice / expectation_u16. Requires
/// can_fuse_expectation(plan, n_amps).
/// `partials` is double at both precisions (reductions never accumulate
/// at float width — see DESIGN.md "Mixed precision").
void run_layer_expectation(const LayerPlan& plan, cdouble* amp,
                           std::uint64_t n_amps, const PhaseCtx& phase,
                           double gamma, double beta, Exec exec,
                           const ExpectationCtx& reduce, double* partials);
void run_layer_expectation(const LayerPlan& plan, cfloat* amp,
                           std::uint64_t n_amps, const PhaseCtxF32& phase,
                           double gamma, double beta, Exec exec,
                           const ExpectationCtx& reduce, double* partials);

/// Execute a butterfly-only plan (LayerPlan::build_rx_sweep) over
/// `amp[0, n_amps)` with c = cos(beta), s = sin(beta). The distributed
/// simulator runs its prebuilt sweep plan on the alltoall-reordered slice
/// to mix the former-global qubits with the same tiling as the local
/// ones. Plans with phase work belong to run_layer; sweep passes carry
/// none by construction.
void run_sweep(const LayerPlan& plan, cdouble* amp, std::uint64_t n_amps,
               double c, double s, Exec exec);
void run_sweep(const LayerPlan& plan, cfloat* amp, std::uint64_t n_amps,
               double c, double s, Exec exec);

}  // namespace qokit::pipeline
