// LayerPlan executor: drives the active SIMD kernel family over
// cache-resident units. Bit-identity with the unfused path rests on two
// alignment invariants that every sub-range issued here preserves:
//
//  1. Elementwise kernels (phase / phase_table / phase_popcount) are
//     called on ranges whose start is a multiple of 4 and whose length is
//     a multiple of 4 (or the single whole-array call when the array is
//     shorter) — so the AVX2 kernels partition elements into the same
//     absolute groups of 4 as dispatch.cpp's kSimdBlock blocks, and the
//     same elements take the vector vs libm-fallback path.
//  2. Butterfly kernels are called on pair ranges with even start and even
//     length that never split a contiguous run mid-vector — so the same
//     absolute pairs land in the same 2-pair vector groups and no pair
//     falls to a (differently rounded) scalar tail in one decomposition
//     but not the other.
//
// Given those, per-amplitude results depend only on (input values, qubit,
// dispatch level) — not on traversal order — and each pass applies its
// operations to each amplitude in exactly the unfused order (phase first,
// then butterflies by ascending qubit).
#include "pipeline/layer_exec.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "common/bitops.hpp"
#include "common/parallel.hpp"
#include "fur/fwht.hpp"
#include "obs/obs.hpp"
#include "simd/kernels.hpp"

namespace qokit::pipeline {
namespace {

/// Pass-shape counters, incremented once per pass (never inside the
/// per-unit loops) so observability's cost scales with passes, not tiles.
const obs::Counter& tile_pass_counter() {
  static const obs::Counter c =
      obs::counter("qokit_pipeline_tile_passes_total");
  return c;
}

const obs::Counter& strided_pass_counter() {
  static const obs::Counter c =
      obs::counter("qokit_pipeline_strided_passes_total");
  return c;
}

/// Select the active kernel family for the amplitude scalar. Both share
/// one dispatch level, so a mixed-precision run never mixes families.
template <class T>
const simd::detail::KernelsT<T>& active_family();
template <>
const simd::detail::KernelsT<double>& active_family<double>() {
  return simd::detail::active_kernels();
}
template <>
const simd::detail::KernelsT<float>& active_family<float>() {
  return simd::detail::active_kernels_f32();
}

/// Parallelize over independent cache-units. Units touch disjoint
/// amplitudes and carry no reductions, so any thread count (and Serial)
/// produces the same bits; the grain check mirrors parallel_for_blocks.
template <class F>
void for_units(Exec exec, std::int64_t units, std::int64_t unit_amps, F&& f) {
  if (units <= 0) return;
  if (exec == Exec::Serial || units < 2 ||
      units * unit_amps < kParallelGrain) {
    for (std::int64_t u = 0; u < units; ++u) f(u);
    return;
  }
  QOKIT_OMP_PRAGMA(omp parallel for schedule(static))
  for (std::int64_t u = 0; u < units; ++u) f(u);
}

/// Fused expectation partials for one unit's contiguous piece
/// [base, base+count): one k.expectation / k.expectation_u16 call per
/// absolute kReduceBlock sub-block, written to partials[abs / block].
/// base and count are whole multiples of kReduceBlock (guaranteed by
/// can_fuse_expectation), so these are exactly the calls the two-pass
/// expectation dispatch makes for the same sub-range — same pointers,
/// same lengths, same kernel family. Partials stay double at both
/// precisions.
template <class T>
void reduce_piece(const simd::detail::KernelsT<T>& k,
                  const std::complex<T>* amp, const ExpectationCtx& red,
                  std::uint64_t base, std::uint64_t count,
                  double* partials) {
  const auto block = static_cast<std::uint64_t>(kReduceBlock);
  for (std::uint64_t off = 0; off < count; off += block) {
    const std::uint64_t i = base + off;
    partials[i / block] =
        red.codes ? k.expectation_u16(amp + i, red.codes + i, red.offset,
                                      red.scale, block)
                  : k.expectation(amp + i, red.costs + i, block);
  }
}

/// The diagonal phase on amp[base, base+count), double or u16 path.
template <class T>
void phase_unit(const simd::detail::KernelsT<T>& k, std::complex<T>* amp,
                const PhaseCtxT<T>& ctx, std::uint64_t base,
                std::uint64_t count, double gamma) {
  if (ctx.codes)
    k.phase_table(amp + base, ctx.codes + base, ctx.table, count);
  else
    k.phase(amp + base, ctx.costs + base, count, gamma);
}

/// One butterfly qubit over the contiguous tile [base, base+count): for
/// q < log2(count) and base a multiple of count, the pair indices covering
/// exactly this tile are [base/2, (base+count)/2).
template <class T>
void butterfly_tile(const simd::detail::KernelsT<T>& k, std::complex<T>* amp,
                    std::uint64_t base, std::uint64_t count, int q,
                    PassButterfly butterfly, double c, double s) {
  const std::uint64_t kb = base >> 1;
  const std::uint64_t ke = (base + count) >> 1;
  if (butterfly == PassButterfly::Rx)
    k.rx_pairs(amp, q, kb, ke, c, s);
  else
    k.hadamard_pairs(amp, q, kb, ke);
}

template <class T>
void run_tile_pass(const simd::detail::KernelsT<T>& k, const LayerPass& p,
                   std::complex<T>* amp, std::uint64_t n_amps,
                   const PhaseCtxT<T>& ctx, double gamma,
                   const std::complex<T>* pop_table, double c, double s,
                   Exec exec, const ExpectationCtx* red = nullptr,
                   double* partials = nullptr) {
  const std::uint64_t tile =
      std::min<std::uint64_t>(n_amps, 1ull << p.width_log2);
  const std::int64_t units = static_cast<std::int64_t>(n_amps / tile);
  for_units(exec, units, static_cast<std::int64_t>(tile),
            [&](std::int64_t u) {
              const std::uint64_t base =
                  static_cast<std::uint64_t>(u) * tile;
              int q = p.q_begin;
              if (p.pre == PassPhase::Diagonal) {
                if (!ctx.codes && p.butterfly == PassButterfly::Rx &&
                    q == 0 && p.q_end > 0) {
                  // The fused family kernel: phase + the qubit-0 butterfly
                  // in one read/write of the tile.
                  k.phase_rx(amp + base, ctx.costs + base, tile, gamma, c,
                             s);
                  q = 1;
                } else {
                  phase_unit(k, amp, ctx, base, tile, gamma);
                }
              }
              for (; q < p.q_end; ++q)
                butterfly_tile(k, amp, base, tile, q, p.butterfly, c, s);
              if (p.post == PassPhase::Popcount)
                k.phase_popcount(amp + base, base, tile, pop_table);
              if (red)
                reduce_piece(k, amp, *red, base, tile, partials);
            });
}

template <class T>
void run_strided_pass(const simd::detail::KernelsT<T>& k, const LayerPass& p,
                      std::complex<T>* amp, std::uint64_t n_amps,
                      const std::complex<T>* pop_table, double c, double s,
                      Exec exec, const ExpectationCtx* red = nullptr,
                      double* partials = nullptr) {
  const int a = p.q_begin;
  const int b = p.q_end;
  const std::uint64_t chunk = 1ull << p.width_log2;  // width_log2 <= a
  const std::uint64_t row = 1ull << a;               // row stride
  const std::uint64_t rows = 1ull << (b - a);
  const std::int64_t cols = static_cast<std::int64_t>(row >> p.width_log2);
  const std::int64_t blocks = static_cast<std::int64_t>(n_amps >> b);
  const std::int64_t unit_amps = static_cast<std::int64_t>(rows * chunk);
  for_units(
      exec, blocks * cols, unit_amps, [&](std::int64_t u) {
        const std::uint64_t blk = static_cast<std::uint64_t>(u / cols) << b;
        const std::uint64_t col = static_cast<std::uint64_t>(u % cols)
                                  << p.width_log2;
        // All g butterflies on the cache-resident 2^g-row working set;
        // partners for qubit q = a + j are rows r and r | 2^j, both inside
        // the set, so ascending-q order sees exactly the unfused dataflow.
        for (int q = a; q < b; ++q) {
          const std::uint64_t rbit = 1ull << (q - a);
          for (std::uint64_t r = 0; r < rows; ++r) {
            if (r & rbit) continue;
            const std::uint64_t i0 = blk + r * row + col;
            const std::uint64_t kb = remove_bit(i0, q);
            if (p.butterfly == PassButterfly::Rx)
              k.rx_pairs(amp, q, kb, kb + chunk, c, s);
            else
              k.hadamard_pairs(amp, q, kb, kb + chunk);
          }
        }
        if (p.post == PassPhase::Popcount)
          for (std::uint64_t r = 0; r < rows; ++r) {
            const std::uint64_t i0 = blk + r * row + col;
            k.phase_popcount(amp + i0, i0, chunk, pop_table);
          }
        if (red)
          // Each row's chunk starts at blk + r*row + col — a multiple of
          // the chunk length (col is a whole chunk multiple, row and blk
          // are larger powers of two), so kReduceBlock sub-blocks nest
          // exactly.
          for (std::uint64_t r = 0; r < rows; ++r)
            reduce_piece(k, amp, *red, blk + r * row + col, chunk,
                         partials);
      });
}

/// Shared body of run_layer / run_layer_expectation. When `red` is set the
/// FINAL pass also reduces each unit into `partials` (see the header's
/// determinism argument).
template <class T>
void run_layer_impl(const LayerPlan& plan, std::complex<T>* amp,
                    std::uint64_t n_amps, const PhaseCtxT<T>& phase,
                    double gamma, double beta, Exec exec,
                    const ExpectationCtx* red, double* partials) {
  if (!plan.active())
    throw std::logic_error("pipeline::run_layer: plan is not active: " +
                           plan.fallback_reason());
  if (n_amps != (1ull << plan.num_qubits()))
    throw std::invalid_argument("pipeline::run_layer: array size mismatch");
  if (!phase.costs && !(phase.codes && phase.table))
    throw std::invalid_argument(
        "pipeline::run_layer: PhaseCtx needs costs or codes+table");
  const simd::detail::KernelsT<T>& k = active_family<T>();
  const double c = std::cos(beta);
  const double s = std::sin(beta);
  std::complex<T> pop_table[kMaxQubits + 1];
  for (const LayerPass& p : plan.passes())
    if (p.post == PassPhase::Popcount) {
      fill_x_mixer_phase_table(plan.num_qubits(), beta, pop_table);
      break;
    }
  obs::Span span("pipeline_layer");
  span.attr("n", plan.num_qubits());
  span.attr("passes", static_cast<std::int64_t>(plan.passes().size()));
  const LayerPass* last = plan.passes().empty() ? nullptr
                                                : &plan.passes().back();
  for (const LayerPass& p : plan.passes()) {
    const ExpectationCtx* pass_red = (red && &p == last) ? red : nullptr;
    obs::Span pspan(p.strided ? "strided_pass" : "tile_pass");
    pspan.attr("q_begin", p.q_begin);
    pspan.attr("q_end", p.q_end);
    pspan.attr("width_log2", p.width_log2);
    if (p.strided) {
      strided_pass_counter().add();
      run_strided_pass(k, p, amp, n_amps, pop_table, c, s, exec, pass_red,
                       partials);
    } else {
      tile_pass_counter().add();
      run_tile_pass(k, p, amp, n_amps, phase, gamma, pop_table, c, s, exec,
                    pass_red, partials);
    }
  }
}

/// Shared body of run_sweep: butterfly-only passes, no phase source.
template <class T>
void run_sweep_impl(const LayerPlan& plan, std::complex<T>* amp,
                    std::uint64_t n_amps, double c, double s, Exec exec) {
  if (!plan.active())
    throw std::logic_error("pipeline::run_sweep: plan is not active: " +
                           plan.fallback_reason());
  if (n_amps != (1ull << plan.num_qubits()))
    throw std::invalid_argument("pipeline::run_sweep: array size mismatch");
  const simd::detail::KernelsT<T>& k = active_family<T>();
  const PhaseCtxT<T> no_phase;
  obs::Span span("pipeline_sweep");
  span.attr("n", plan.num_qubits());
  for (const LayerPass& p : plan.passes()) {
    if (p.strided) {
      strided_pass_counter().add();
      run_strided_pass<T>(k, p, amp, n_amps, nullptr, c, s, exec);
    } else {
      tile_pass_counter().add();
      run_tile_pass<T>(k, p, amp, n_amps, no_phase, 0.0, nullptr, c, s,
                       exec);
    }
  }
}

}  // namespace

void run_layer(const LayerPlan& plan, cdouble* amp, std::uint64_t n_amps,
               const PhaseCtx& phase, double gamma, double beta, Exec exec) {
  run_layer_impl(plan, amp, n_amps, phase, gamma, beta, exec, nullptr,
                 nullptr);
}

void run_layer(const LayerPlan& plan, cfloat* amp, std::uint64_t n_amps,
               const PhaseCtxF32& phase, double gamma, double beta,
               Exec exec) {
  run_layer_impl(plan, amp, n_amps, phase, gamma, beta, exec, nullptr,
                 nullptr);
}

bool can_fuse_expectation(const LayerPlan& plan, std::uint64_t n_amps) {
  if (!plan.active() || plan.passes().empty()) return false;
  if (n_amps < static_cast<std::uint64_t>(kReduceBlock)) return false;
  const LayerPass& last = plan.passes().back();
  // The final pass's unit width must hold whole kReduceBlocks so fused
  // partial blocks align with the two-pass decomposition; a trailing
  // elementwise multiply would have to run before the reduction read,
  // which no current plan shape produces (Fwht's Popcount lands on the
  // middle pass) — checked anyway so new plan shapes fail safe.
  if ((std::uint64_t{1} << last.width_log2) <
      static_cast<std::uint64_t>(kReduceBlock))
    return false;
  return last.post == PassPhase::None;
}

void run_layer_expectation(const LayerPlan& plan, cdouble* amp,
                           std::uint64_t n_amps, const PhaseCtx& phase,
                           double gamma, double beta, Exec exec,
                           const ExpectationCtx& reduce, double* partials) {
  if (!can_fuse_expectation(plan, n_amps))
    throw std::logic_error(
        "pipeline::run_layer_expectation: plan cannot carry a fused "
        "expectation (see can_fuse_expectation)");
  if (!reduce.costs && !reduce.codes)
    throw std::invalid_argument(
        "pipeline::run_layer_expectation: ExpectationCtx needs costs or "
        "codes");
  static const obs::Counter fused_reductions =
      obs::counter("qokit_pipeline_fused_reductions_total");
  fused_reductions.add();
  run_layer_impl(plan, amp, n_amps, phase, gamma, beta, exec, &reduce,
                 partials);
}

void run_layer_expectation(const LayerPlan& plan, cfloat* amp,
                           std::uint64_t n_amps, const PhaseCtxF32& phase,
                           double gamma, double beta, Exec exec,
                           const ExpectationCtx& reduce, double* partials) {
  if (!can_fuse_expectation(plan, n_amps))
    throw std::logic_error(
        "pipeline::run_layer_expectation: plan cannot carry a fused "
        "expectation (see can_fuse_expectation)");
  if (!reduce.costs && !reduce.codes)
    throw std::invalid_argument(
        "pipeline::run_layer_expectation: ExpectationCtx needs costs or "
        "codes");
  static const obs::Counter fused_reductions =
      obs::counter("qokit_pipeline_fused_reductions_total");
  fused_reductions.add();
  run_layer_impl(plan, amp, n_amps, phase, gamma, beta, exec, &reduce,
                 partials);
}

void run_sweep(const LayerPlan& plan, cdouble* amp, std::uint64_t n_amps,
               double c, double s, Exec exec) {
  run_sweep_impl(plan, amp, n_amps, c, s, exec);
}

void run_sweep(const LayerPlan& plan, cfloat* amp, std::uint64_t n_amps,
               double c, double s, Exec exec) {
  run_sweep_impl(plan, amp, n_amps, c, s, exec);
}

}  // namespace qokit::pipeline
