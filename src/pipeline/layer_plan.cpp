#include "pipeline/layer_plan.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

namespace qokit::pipeline {

bool pipeline_disabled_by_env() {
  const char* v = std::getenv("QOKIT_PIPELINE");
  if (!v) return false;
  // "false" included because YAML CI configs coerce a bare `off` to the
  // boolean false before it reaches the environment.
  return std::strcmp(v, "off") == 0 || std::strcmp(v, "OFF") == 0 ||
         std::strcmp(v, "0") == 0 || std::strcmp(v, "false") == 0;
}

namespace {

// The clamp rules the bit-identity argument in layer_exec.cpp relies on,
// in exactly one place: tiles >= 4 amplitudes keep every elementwise
// sub-range 4-aligned (the AVX2 phase kernel's group width); chunks are
// >= 4 when the pass's lowest qubit allows it (>= 2 always, which keeps
// butterfly pair ranges even-aligned) and never exceed that qubit's
// stride, so a chunk cannot cross a row boundary.
int clamped_tile(const PipelineOptions& opts) {
  return std::clamp(opts.geometry.tile_log2, 2, 30);
}

LayerPass make_tile_pass(int q_end, PassButterfly butterfly, PassPhase pre,
                         const PipelineOptions& opts) {
  return LayerPass{.strided = false,
                   .q_begin = 0,
                   .q_end = q_end,
                   .butterfly = butterfly,
                   .pre = pre,
                   .post = PassPhase::None,
                   .width_log2 = clamped_tile(opts)};
}

LayerPass make_strided_pass(int q_begin, int q_end, PassButterfly butterfly,
                            const PipelineOptions& opts) {
  return LayerPass{
      .strided = true,
      .q_begin = q_begin,
      .q_end = q_end,
      .butterfly = butterfly,
      .pre = PassPhase::None,
      .post = PassPhase::None,
      .width_log2 = std::clamp(opts.geometry.chunk_log2,
                               std::min(2, q_begin), q_begin)};
}

}  // namespace

LayerPlan LayerPlan::build(int num_qubits, MixerType mixer,
                           MixerBackend backend,
                           const PipelineOptions& opts) {
  LayerPlan plan;
  plan.n_ = num_qubits;
  plan.opts_ = opts;
  if (mixer != MixerType::X) {
    // Checked first so the diagnostic names the structural reason even
    // when the pipeline is also disabled by options or environment.
    plan.reason_ = std::string("mixer=") +
                   (mixer == MixerType::XYRing ? "xyring" : "xycomplete") +
                   ": ordered two-qubit XY rotations cannot be tile-fused; "
                   "using the unfused path";
    return plan;
  }
  if (opts.mode == PipelineMode::Off) {
    plan.reason_ = "pipeline=off: unfused oracle path selected by options";
    return plan;
  }
  if (opts.mode == PipelineMode::Auto && pipeline_disabled_by_env()) {
    plan.reason_ = "QOKIT_PIPELINE=off: unfused oracle path selected by "
                   "environment";
    return plan;
  }

  const int g = std::max(1, opts.geometry.group_qubits);
  const int m = std::min(num_qubits, clamped_tile(opts));

  const auto add_tile = [&](PassButterfly butterfly, PassPhase pre) {
    plan.passes_.push_back(make_tile_pass(m, butterfly, pre, opts));
  };
  const auto add_groups = [&](PassButterfly butterfly) {
    for (int q0 = m; q0 < num_qubits; q0 += g)
      plan.passes_.push_back(make_strided_pass(
          q0, std::min(q0 + g, num_qubits), butterfly, opts));
  };

  if (backend == MixerBackend::Fused) {
    // e^{-i gamma C} fused into the first RX sweep, then strided groups.
    add_tile(PassButterfly::Rx, PassPhase::Diagonal);
    add_groups(PassButterfly::Rx);
  } else {
    // Fwht route: H^n · popcount diagonal · H^n, with the cost phase fused
    // into the first Hadamard sweep and the popcount diagonal fused into
    // the last pass of the forward transform (every unit of that pass has
    // completed all of its Hadamards by the time the diagonal runs).
    add_tile(PassButterfly::Hadamard, PassPhase::Diagonal);
    add_groups(PassButterfly::Hadamard);
    plan.passes_.back().post = PassPhase::Popcount;
    add_tile(PassButterfly::Hadamard, PassPhase::None);
    add_groups(PassButterfly::Hadamard);
  }
  plan.active_ = true;
  plan.reason_.clear();
  return plan;
}

LayerPlan LayerPlan::build_rx_sweep(int num_qubits, int q_begin, int q_end,
                                    const PipelineOptions& opts) {
  LayerPlan plan;
  plan.n_ = num_qubits;
  plan.opts_ = opts;
  const int g = std::max(1, opts.geometry.group_qubits);
  int q0 = q_begin;
  if (q0 == 0 && q0 < q_end) {
    // Qubit 0 (and everything with in-tile stride) goes through a
    // contiguous tile pass; only the higher qubits need row gathering.
    plan.passes_.push_back(
        make_tile_pass(std::min(q_end, clamped_tile(opts)),
                       PassButterfly::Rx, PassPhase::None, opts));
    q0 = plan.passes_.back().q_end;
  }
  for (; q0 < q_end; q0 += g)
    plan.passes_.push_back(make_strided_pass(q0, std::min(q0 + g, q_end),
                                             PassButterfly::Rx, opts));
  plan.active_ = true;
  plan.reason_.clear();
  return plan;
}

}  // namespace qokit::pipeline
