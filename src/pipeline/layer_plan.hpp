// Cache-blocked fused layer planning (the tiled multi-qubit pass pipeline).
//
// Algorithm 3 makes each QAOA layer one elementwise phase multiply plus one
// X-mixer transform, but executed naively that is n + 1 full sweeps of the
// 16·2^n-byte state per layer (one for the phase, one butterfly pass per
// qubit), so at n >= 24 the layer loop is DRAM traffic, not FLOPs. Lin et
// al. ("Towards Optimizations of Quantum Circuit Simulation for Solving
// Max-Cut Problems with QAOA", 2023) identify the fix: fuse the diagonal
// phase into the first butterfly sweep and group butterflies into
// cache-resident tiles so one read/write of the state advances many qubits.
//
// A LayerPlan is the static schedule of that execution, built once per
// simulator (and therefore once per session/batch — every schedule reuses
// it) from the qubit count, mixer choice, and tiling options:
//
//  - One leading *tile pass*: contiguous 2^t-amplitude tiles; each tile is
//    phase-multiplied and then swept by every butterfly with stride inside
//    the tile (qubits [0, min(t, n))) while it sits in cache.
//  - *Strided group passes* for the high qubits: g qubits [q0, q0 + g) are
//    advanced together by gathering 2^g rows of one chunk column into
//    cache and running all g butterflies on that working set.
//
// Full-array sweeps per layer drop from n + 1 to 1 + ceil((n - t)/g); the
// per-amplitude arithmetic is untouched (fusion only reorders the memory
// traversal), so the pipeline is bit-identical to the unfused loop — which
// stays available as the correctness oracle via QOKIT_PIPELINE=off or
// PipelineMode::Off (see layer_exec.hpp for the determinism argument).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "fur/mixers.hpp"
#include "pipeline/geometry.hpp"

namespace qokit::pipeline {

/// Whether a simulator builds an active plan. Auto defers to the
/// QOKIT_PIPELINE environment variable ("off"/"0" disables); On ignores
/// the environment; Off forces the unfused oracle path.
enum class PipelineMode { Auto, On, Off };

/// Construction-time tiling knobs, carried by FurConfig / DistConfig and
/// (mode only) by SimulatorSpec. The geometry defaults are safe for any n
/// (src/tune/ swaps in machine-derived values through make_simulator);
/// tests shrink them to exercise tile-boundary edge cases on small states.
struct PipelineOptions {
  PipelineMode mode = PipelineMode::Auto;
  Geometry geometry = Geometry::defaults();

  friend bool operator==(const PipelineOptions&, const PipelineOptions&) =
      default;
};

/// True when QOKIT_PIPELINE is set to "off" or "0" (checked at plan-build
/// time, i.e. simulator construction — not per layer).
bool pipeline_disabled_by_env();

/// Elementwise work attached to a pass (applied per cache-resident unit).
enum class PassPhase {
  None,
  Diagonal,  ///< e^{-i gamma c_x} from the cost diagonal (double or u16)
  Popcount,  ///< the fwht mixer's Hadamard-frame diagonal, by weight
};

/// Which butterfly the pass sweeps over its qubit range.
enum class PassButterfly { Rx, Hadamard };

/// One fused full-array sweep: an optional leading elementwise multiply,
/// butterflies over qubits [q_begin, q_end) in ascending order, and an
/// optional trailing elementwise multiply, all applied unit-by-unit.
struct LayerPass {
  bool strided = false;  ///< false: contiguous tiles; true: row groups
  int q_begin = 0;       ///< first butterfly qubit
  int q_end = 0;         ///< one past the last butterfly qubit
  PassButterfly butterfly = PassButterfly::Rx;
  PassPhase pre = PassPhase::None;   ///< before the unit's butterflies
  PassPhase post = PassPhase::None;  ///< after the unit's butterflies
  /// log2 of the unit width in amplitudes: the tile size for contiguous
  /// passes, the per-row chunk length for strided ones (<= q_begin so a
  /// chunk never crosses a row boundary).
  int width_log2 = 0;
};

/// The fused execution schedule for one QAOA layer over a 2^n-amplitude
/// array (the full state, or one rank's slice in the distributed
/// simulator). Inactive plans carry a human-readable fallback reason and
/// the caller runs the unfused loop instead.
class LayerPlan {
 public:
  LayerPlan() = default;  ///< inactive; reason "no plan built"

  /// Plan one layer for an n-qubit array under `mixer`/`backend`.
  /// X-mixer layers (Fused and Fwht backends) plan fused passes; the xy
  /// mixers are ordered two-qubit products and return an inactive plan
  /// naming that reason. Options are clamped to valid ranges (tile and
  /// chunk never below 4 amplitudes, chunk never above the pass's lowest
  /// qubit) so any option combination yields a runnable plan.
  static LayerPlan build(int num_qubits, MixerType mixer,
                         MixerBackend backend, const PipelineOptions& opts);

  /// Plan a butterfly-only RX sweep over qubits [q_begin, q_end) of an
  /// n-qubit array: a contiguous tile pass while strides fit a tile
  /// (only when q_begin == 0), then strided groups — the same clamp and
  /// alignment rules as build(), kept in one place. The distributed
  /// simulator builds this once for the post-alltoall global-qubit mix.
  /// Always active (mode/mixer gating belongs to the caller's main plan).
  static LayerPlan build_rx_sweep(int num_qubits, int q_begin, int q_end,
                                  const PipelineOptions& opts);

  bool active() const noexcept { return active_; }
  /// Why the plan is inactive (empty when active) — the pinned diagnostic
  /// for fallback paths.
  const std::string& fallback_reason() const noexcept { return reason_; }

  std::span<const LayerPass> passes() const noexcept { return passes_; }
  int num_qubits() const noexcept { return n_; }
  const PipelineOptions& options() const noexcept { return opts_; }

  /// Full-array sweeps one layer performs — the pipeline's figure of
  /// merit. The unfused loop costs n + 1 (n + 2 counting the cost read;
  /// 2n + 2 for the fwht backend); a plan targets 1 + ceil((n - t)/g).
  int full_sweeps() const noexcept {
    return static_cast<int>(passes_.size());
  }

 private:
  bool active_ = false;
  int n_ = 0;
  PipelineOptions opts_;
  std::string reason_ = "no plan built";
  std::vector<LayerPass> passes_;
};

}  // namespace qokit::pipeline
