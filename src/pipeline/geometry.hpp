// Pipeline tiling geometry: THE single site of the cache-blocking knobs.
//
// Every number that shapes a LayerPlan's memory traversal — the contiguous
// tile size, the strided group width, the per-row chunk length — lives in
// this one struct, and the static defaults() below are the only place in
// src/pipeline/ where those values may appear as literals (enforced by the
// qokit_lint "pipeline-geometry" rule). That gives the machine-adaptive
// tuning subsystem (src/tune/) exactly one injection point: a TuneProfile
// swaps the whole Geometry, never individual scattered constants.
//
// Geometry changes only reorder the state traversal — never the
// per-amplitude arithmetic — so ANY Geometry value produces bit-identical
// results to any other (LayerPlan::build clamps out-of-range values to a
// runnable plan; pinned by tests/test_pipeline.cpp and test_tune.cpp).
#pragma once

namespace qokit::pipeline {

/// The three cache-blocking knobs of a fused layer plan.
struct Geometry {
  /// log2 of the contiguous tile in amplitudes. The default 2^16
  /// amplitudes = 1 MiB of state sits in any recent L2 alongside the
  /// 512 KiB cost slice the fused phase multiply streams.
  int tile_log2;
  /// High qubits advanced per strided pass. With the default chunk this
  /// bounds a pass working set to 2^6 rows x 16 KiB = 1 MiB.
  int group_qubits;
  /// log2 of the contiguous chunk (in amplitudes) gathered per row of a
  /// strided pass: 2^10 amplitudes = 16 KiB, long enough for the
  /// streaming prefetchers, small enough that 2^g rows stay
  /// cache-resident.
  int chunk_log2;

  /// The static geometry every machine ran before src/tune/ existed —
  /// and the CI oracle (`QOKIT_TUNE=off`) still runs. The ONE place the
  /// numbers are spelled out.
  static constexpr Geometry defaults() noexcept { return {16, 6, 10}; }

  friend constexpr bool operator==(const Geometry&, const Geometry&) =
      default;
};

}  // namespace qokit::pipeline
