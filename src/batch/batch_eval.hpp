// Batched multi-schedule evaluation engine (the "many (gamma, beta)
// queries, one problem" workload).
//
// Algorithm 3 amortizes the cost-diagonal precompute over every QAOA
// layer; a parameter-optimization or serving workload should amortize it
// over every *schedule* too. BatchEvaluator owns that amortization: it
// wraps one QaoaFastSimulatorBase (whose diagonal was precomputed once),
// caches the initial state, and reuses per-thread scratch statevectors so
// evaluating a batch of schedules performs zero steady-state allocations.
//
// Parallelism is two-level and chosen by a cost heuristic (see DESIGN.md):
//  - Outer: thread across schedules, one scratch state per thread. Wins
//    for many small jobs, where the per-kernel OpenMP dispatch is pure
//    overhead (sub-grain loops run serially anyway).
//  - Inner: sequential over schedules; each simulate_qaoa uses the
//    simulator's own Exec policy. Wins for few large jobs, and is forced
//    for simulators that already own the machine's threads (dist:K).
// Either way the per-schedule arithmetic is the exact code path of a
// sequential simulate_qaoa loop, so results are bit-identical to it (the
// cross-validation suite asserts equality, not tolerance).
//
// The fused layer pipeline (src/pipeline/) is inherited for free: the
// LayerPlan lives in the wrapped simulator, built once at construction, so
// every schedule in every batch replays the same cache-blocked pass
// schedule with zero per-schedule planning cost.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "fur/simulator.hpp"
#include "optimize/params.hpp"
#include "statevector/state.hpp"

namespace qokit {

/// How BatchEvaluator::evaluate maps schedules onto the machine.
enum class BatchParallelism {
  Auto,   ///< resolve_parallelism picks Outer or Inner per batch
  Outer,  ///< thread across schedules, serial kernels inside each
  Inner,  ///< sequential over schedules, simulator's Exec inside each
};

/// What evaluate() computes per schedule.
struct BatchOptions {
  BatchParallelism parallelism = BatchParallelism::Auto;
  bool compute_expectation = true;  ///< fill BatchResult::expectations
  bool compute_overlap = false;     ///< fill BatchResult::overlaps
  int overlap_weight = -1;   ///< restrict the overlap to this HW sector
  bool keep_states = false;  ///< fill BatchResult::states (copies; test aid)
  int sample_shots = 0;      ///< >0: sample this many bitstrings/schedule
  std::uint64_t sample_seed = 1;  ///< schedule i samples with seed+i
  /// Fill BatchResult::simulate_ns / reduce_ns with per-schedule wall
  /// times. Evolution is timed on whichever thread ran it (valid in Outer
  /// mode: schedule(static, 1) pins each slot to one thread); scoring is
  /// timed on the submitting thread where it always runs.
  bool record_timings = false;
};

/// Per-schedule outputs, indexed like the submitted schedule span.
struct BatchResult {
  std::vector<double> expectations;  ///< empty unless compute_expectation
  std::vector<double> overlaps;      ///< empty unless compute_overlap
  std::vector<StateVector> states;   ///< empty unless keep_states
  std::vector<std::vector<std::uint64_t>> samples;  ///< empty unless shots
  /// Per-schedule evolution / scoring wall time in nanoseconds; empty
  /// unless record_timings.
  std::vector<std::uint64_t> simulate_ns;
  std::vector<std::uint64_t> reduce_ns;
  BatchParallelism used = BatchParallelism::Inner;  ///< mode that ran
};

/// Evaluates batches of QAOA schedules against one simulator, sharing the
/// precomputed diagonal and reusing scratch statevectors across schedules
/// and across evaluate() calls. Schedules in one batch may have different
/// depths. Not safe for concurrent evaluate() calls on one instance (the
/// scratch pool is per-instance); distinct instances are independent.
class BatchEvaluator {
 public:
  /// `sim` must outlive the evaluator. Caches sim.initial_state() once.
  explicit BatchEvaluator(const QaoaFastSimulatorBase& sim,
                          BatchOptions opts = {});

  /// Evaluate every schedule; results are indexed like `schedules`.
  BatchResult evaluate(std::span<const QaoaParams> schedules) const;

  /// Same, with per-call options (construction options are ignored; the
  /// parallelism choice comes from `opts`).
  BatchResult evaluate(std::span<const QaoaParams> schedules,
                       const BatchOptions& opts) const;

  /// Evaluate into a caller-owned result, reusing its buffers: the output
  /// vectors are resized (which reuses capacity) and kept states are
  /// copy-assigned into existing slots (which reuses their statevector
  /// allocations when sizes match). Repeated same-shape calls therefore
  /// perform zero steady-state statevector allocations even with
  /// keep_states on. Fields not requested by `opts` are cleared.
  void evaluate_into(std::span<const QaoaParams> schedules,
                     const BatchOptions& opts, BatchResult& out) const;

  /// Expectations only (the optimizer-population fast path); ignores the
  /// compute_* options.
  std::vector<double> expectations(std::span<const QaoaParams> schedules)
      const;

  /// Expectations of packed optimizer points x = (gamma_1..gamma_p,
  /// beta_1..beta_p); each point may be any even length.
  std::vector<double> expectations_packed(
      const std::vector<std::vector<double>>& points) const;

  /// The Auto heuristic's decision for a batch of `batch` schedules
  /// (exposed so tests and benches can see which mode will run).
  BatchParallelism resolve_parallelism(std::size_t batch) const;

  const QaoaFastSimulatorBase& simulator() const { return *sim_; }
  const BatchOptions& options() const { return opts_; }

  /// The initial state cached at construction (copied into scratch per
  /// schedule); exposed so callers sharing the evaluator -- the session's
  /// scalar path -- can refill their own scratch without recomputing it.
  const StateVector& initial_state() const { return init_; }

  /// Outer mode keeps one scratch state per thread; above this total
  /// footprint the Auto heuristic falls back to Inner.
  static constexpr std::uint64_t kMaxOuterScratchBytes = 1ull << 32;

 private:
  BatchParallelism resolve(BatchParallelism requested,
                           std::size_t batch) const;

  const QaoaFastSimulatorBase* sim_;
  BatchOptions opts_;
  StateVector init_;  ///< cached initial state, copied into scratch per job
  mutable std::vector<StateVector> scratch_;  ///< one reusable state/thread
};

}  // namespace qokit
