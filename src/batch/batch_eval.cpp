#include "batch/batch_eval.hpp"

#include <algorithm>
#include <chrono>
#include <exception>
#include <stdexcept>

#include "common/parallel.hpp"
#include "common/rng.hpp"
#include "obs/obs.hpp"
#include "statevector/sampling.hpp"

namespace qokit {
namespace {

std::uint64_t tick_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Fill the requested per-schedule outputs from an evolved state. Always
/// called on the submitting thread, in schedule order, so every reduction
/// runs in the exact context a sequential simulate_qaoa loop would use.
void score_one(const QaoaFastSimulatorBase& sim, const BatchOptions& opts,
               std::size_t index, StateVector& state, BatchResult& out) {
  if (!out.expectations.empty())
    out.expectations[index] = sim.get_expectation(state);
  if (!out.overlaps.empty())
    out.overlaps[index] = sim.get_overlap(state, opts.overlap_weight);
  if (!out.samples.empty()) {
    // Seeded per schedule index, so the drawn bitstrings are independent
    // of evaluation order and of the parallelism mode.
    Rng rng(opts.sample_seed + index);
    out.samples[index] = sample_states(state, opts.sample_shots, rng);
  }
  if (!out.states.empty()) out.states[index] = state;  // copy; slot lives on
}

}  // namespace

BatchEvaluator::BatchEvaluator(const QaoaFastSimulatorBase& sim,
                               BatchOptions opts)
    : sim_(&sim),
      opts_(opts),
      init_(sim.initial_state()),
      scratch_(static_cast<std::size_t>(max_threads())) {
  if (opts_.sample_shots < 0)
    throw std::invalid_argument("BatchEvaluator: sample_shots must be >= 0");
}

BatchParallelism BatchEvaluator::resolve_parallelism(std::size_t batch) const {
  return resolve(opts_.parallelism, batch);
}

BatchParallelism BatchEvaluator::resolve(BatchParallelism requested,
                                         std::size_t batch) const {
  if (requested != BatchParallelism::Auto) return requested;
  const int threads = max_threads();
  if (threads <= 1 || batch < 2) return BatchParallelism::Inner;
  // One simulate_qaoa call already employs the machine's threads itself
  // (the virtual-rank distributed simulator): stacking an outer team on
  // top would only oversubscribe.
  if (sim_->prefers_sequential_batches()) return BatchParallelism::Inner;
  // Actual amplitude width (f32 states cost half), so the outer-scratch
  // budget admits twice the f32 slots it would f64 ones.
  const std::uint64_t bytes = init_.bytes();
  if (static_cast<std::uint64_t>(threads) * bytes > kMaxOuterScratchBytes)
    return BatchParallelism::Inner;
  // Sub-grain states get no inner parallelism at all (parallel_for runs
  // them serially), so threading across schedules is the only parallelism
  // available -- and it skips the per-kernel team dispatch entirely.
  if (init_.size() < static_cast<std::uint64_t>(kParallelGrain))
    return BatchParallelism::Outer;
  // Large states: outer only when the batch can fill every thread;
  // otherwise the simulator's own kernels use the machine better.
  return batch >= static_cast<std::size_t>(threads) ? BatchParallelism::Outer
                                                    : BatchParallelism::Inner;
}

void BatchEvaluator::evaluate_into(std::span<const QaoaParams> schedules,
                                   const BatchOptions& opts,
                                   BatchResult& out) const {
  // Same guard the constructor applies to its own options: per-call
  // options must not silently drop a nonsensical shot count.
  if (opts.sample_shots < 0)
    throw std::invalid_argument("BatchEvaluator: sample_shots must be >= 0");
  for (const QaoaParams& s : schedules)
    if (s.gammas.size() != s.betas.size())
      throw std::invalid_argument(
          "BatchEvaluator: gammas/betas length mismatch");
  const std::size_t m = schedules.size();
  out.used = resolve(opts.parallelism, m);
  // resize() reuses existing capacity (and, for states, the statevector
  // buffers inside surviving slots), so a reused `out` allocates nothing
  // in steady state; unrequested fields are cleared.
  out.expectations.resize(opts.compute_expectation ? m : 0);
  out.overlaps.resize(opts.compute_overlap ? m : 0);
  out.states.resize(opts.keep_states ? m : 0);
  out.samples.resize(opts.sample_shots > 0 ? m : 0);
  out.simulate_ns.resize(opts.record_timings ? m : 0);
  out.reduce_ns.resize(opts.record_timings ? m : 0);

  static const obs::Counter batch_calls =
      obs::counter("qokit_batch_calls_total");
  static const obs::Counter batch_schedules =
      obs::counter("qokit_batch_schedules_total");
  static const obs::Counter scratch_hits =
      obs::counter("qokit_batch_scratch_hits_total");
  static const obs::Counter scratch_allocs =
      obs::counter("qokit_batch_scratch_allocs_total");
  batch_calls.add();
  batch_schedules.add(m);
  obs::Span span("evaluate_batch");
  span.attr("schedules", static_cast<std::int64_t>(m));
  span.attr("mode",
            out.used == BatchParallelism::Outer ? "outer" : "inner");

  // Evolve schedule i in slot: refill from the cached initial state (a
  // copy-assign that reuses the slot's buffer, so no allocation after the
  // slot's first use), then the consume-in-place evolution; the buffer
  // round-trips through moves and comes back to the slot.
  auto evolve = [&](std::size_t i, StateVector& slot) {
    // A slot already sized (and precision-matched) like the initial state
    // refills in place; a fresh or mismatched slot pays an allocation.
    if (slot.size() == init_.size() &&
        slot.precision() == init_.precision())
      scratch_hits.add();
    else scratch_allocs.add();
    const std::uint64_t t0 = opts.record_timings ? tick_ns() : 0;
    slot = init_;
    slot = sim_->simulate_qaoa_from(std::move(slot), schedules[i].gammas,
                                    schedules[i].betas);
    if (opts.record_timings) out.simulate_ns[i] = tick_ns() - t0;
  };
  auto score = [&](std::size_t i, StateVector& slot) {
    const std::uint64_t t0 = opts.record_timings ? tick_ns() : 0;
    score_one(*sim_, opts, i, slot, out);
    if (opts.record_timings) out.reduce_ns[i] = tick_ns() - t0;
  };

  if (out.used == BatchParallelism::Inner) {
    StateVector& slot = scratch_.front();
    for (std::size_t i = 0; i < m; ++i) {
      evolve(i, slot);
      score(i, slot);
    }
    return;
  }

  // Outer: rounds of up to one schedule per scratch slot. Evolution
  // threads across the round (schedule(static, 1) pins iteration c to one
  // thread, so slot c is touched by exactly one thread; the kernels are
  // elementwise, so partitioning cannot change their arithmetic). Scoring
  // runs after the join on the calling thread, exactly where a sequential
  // loop would score, which keeps the reductions bit-identical to the
  // non-batched path at every state size.
  const std::size_t slots = scratch_.size();
  std::vector<std::exception_ptr> errors(slots);
  for (std::size_t base = 0; base < m; base += slots) {
    const std::int64_t chunk =
        static_cast<std::int64_t>(std::min(slots, m - base));
    QOKIT_OMP_PRAGMA(omp parallel for schedule(static, 1))
    for (std::int64_t c = 0; c < chunk; ++c) {
      // Exceptions (e.g. bad_alloc filling a scratch slot) must not
      // escape the parallel region -- that would call std::terminate.
      // Funnel them through per-slot pointers and rethrow after the join,
      // so failure behaves like the sequential loop's.
      try {
        evolve(base + static_cast<std::size_t>(c),
               scratch_[static_cast<std::size_t>(c)]);
      } catch (...) {
        errors[static_cast<std::size_t>(c)] = std::current_exception();
      }
    }
    for (const std::exception_ptr& e : errors)
      if (e) std::rethrow_exception(e);
    for (std::int64_t c = 0; c < chunk; ++c)
      score(base + static_cast<std::size_t>(c),
            scratch_[static_cast<std::size_t>(c)]);
  }
}

BatchResult BatchEvaluator::evaluate(
    std::span<const QaoaParams> schedules) const {
  return evaluate(schedules, opts_);
}

BatchResult BatchEvaluator::evaluate(std::span<const QaoaParams> schedules,
                                     const BatchOptions& opts) const {
  BatchResult out;
  evaluate_into(schedules, opts, out);
  return out;
}

std::vector<double> BatchEvaluator::expectations(
    std::span<const QaoaParams> schedules) const {
  BatchOptions trimmed = opts_;  // keep the parallelism choice
  trimmed.compute_expectation = true;
  trimmed.compute_overlap = false;
  trimmed.keep_states = false;
  trimmed.sample_shots = 0;
  BatchResult out;
  evaluate_into(schedules, trimmed, out);
  return std::move(out.expectations);
}

std::vector<double> BatchEvaluator::expectations_packed(
    const std::vector<std::vector<double>>& points) const {
  std::vector<QaoaParams> schedules;
  schedules.reserve(points.size());
  for (const std::vector<double>& x : points)
    schedules.push_back(QaoaParams::unflatten(x));
  return expectations(schedules);
}

}  // namespace qokit
