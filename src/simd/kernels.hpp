// Runtime-dispatched vector kernels for the simulator hot loops.
//
// Every elementwise pass in Algorithm 3 funnels through this layer: the
// diagonal phase multiply (double-cost, u16-table, and popcount-table
// variants), the fused single-qubit mixer butterflies (rx, hadamard), and
// the expectation / norm / ground-overlap reductions. Each kernel exists in
// a scalar family (kernels_scalar.cpp, portable C++) and an AVX2+FMA family
// (kernels_avx2.cpp, compiled only under QOKIT_SIMD on x86-64); dispatch is
// chosen once per process via CPUID (common/cpu_features.hpp).
//
// Precision: every kernel exists for both amplitude widths — cdouble (the
// default and oracle) and cfloat (the bandwidth-halving mixed-precision
// path, 8 f32 lanes per AVX2 register instead of 4). Costs, angles, phase
// tables feeding the trig, and EVERY reduction accumulator stay double
// regardless of the amplitude type: only the amplitude load/store and the
// complex multiply narrow (the error-containment contract of DESIGN.md
// "Mixed precision", machine-enforced by qokit_lint's f32-accumulator
// rule).
//
// Parallelism and determinism: the dispatcher decomposes work into fixed
// kSimdBlock-element blocks (common/parallel.hpp) and hands each block to
// the active kernel family. Reductions sum per-block partials sequentially
// in block order. Consequently results depend only on (input, dispatch
// level, amplitude precision) — not on Exec policy or thread count — and
// the serial and threaded backends stay bit-identical to each other at
// every dispatch level, at either precision.
//
// Callers (diagonal/ops.cpp, fur/su2.cpp, fur/fwht.cpp, statevector/
// state.cpp) keep their public signatures, so the dist:K rank-local slices
// and the batch engine's scratch states inherit the vectorization with zero
// API change.
//
// Two drivers decompose work over these families: the flat kSimdBlock
// blocking below, and the cache-blocked layer pipeline
// (src/pipeline/layer_exec.cpp), which issues tile-/chunk-sized sub-ranges
// in fused traversal order. Both produce bit-identical results because the
// family kernels are position-independent per amplitude given the aligned
// sub-ranges each driver guarantees.
#pragma once

#include <cstdint>

#include "common/cpu_features.hpp"
#include "common/parallel.hpp"
#include "statevector/state.hpp"

namespace qokit {
namespace simd {

/// amp[i] *= e^{-i gamma costs[i]}: batched angle computation with a
/// vectorized sin/cos under AVX2, libm per element in the scalar family.
void apply_phase_slice(cdouble* amp, const double* costs, std::uint64_t count,
                       double gamma, Exec exec);
void apply_phase_slice(cfloat* amp, const double* costs, std::uint64_t count,
                       double gamma, Exec exec);

/// amp[i] *= table[codes[i]]: the u16 diagonal's table-driven phase pass.
/// `table` must hold one phase factor per possible code (built per gamma).
void apply_phase_table(cdouble* amp, const std::uint16_t* codes,
                       const cdouble* table, std::uint64_t count, Exec exec);
void apply_phase_table(cfloat* amp, const std::uint16_t* codes,
                       const cfloat* table, std::uint64_t count, Exec exec);

/// amp[j] *= table[popcount(index_base + j)]: the Hadamard-frame diagonal of
/// the FWHT mixer path, with one table entry per Hamming weight.
void apply_phase_popcount(cdouble* amp, std::uint64_t index_base,
                          std::uint64_t count, const cdouble* table,
                          Exec exec);
void apply_phase_popcount(cfloat* amp, std::uint64_t index_base,
                          std::uint64_t count, const cfloat* table,
                          Exec exec);

/// In-place e^{-i beta X_qubit} butterfly with c = cos(beta), s = sin(beta).
void rx(cdouble* x, std::uint64_t n_amps, int qubit, double c, double s,
        Exec exec);
void rx(cfloat* x, std::uint64_t n_amps, int qubit, double c, double s,
        Exec exec);

/// In-place Hadamard butterfly on one qubit.
void hadamard(cdouble* x, std::uint64_t n_amps, int qubit, Exec exec);
void hadamard(cfloat* x, std::uint64_t n_amps, int qubit, Exec exec);

/// sum_i |amp[i]|^2 costs[i] (double accumulation at either precision).
double expectation_slice(const cdouble* amp, const double* costs,
                         std::uint64_t count, Exec exec);
double expectation_slice(const cfloat* amp, const double* costs,
                         std::uint64_t count, Exec exec);

/// sum_i |amp[i]|^2 (offset + scale * codes[i]).
double expectation_u16(const cdouble* amp, const std::uint16_t* codes,
                       double offset, double scale, std::uint64_t count,
                       Exec exec);
double expectation_u16(const cfloat* amp, const std::uint16_t* codes,
                       double offset, double scale, std::uint64_t count,
                       Exec exec);

/// sum_i |amp[i]|^2.
double norm_squared(const cdouble* amp, std::uint64_t count, Exec exec);
double norm_squared(const cfloat* amp, std::uint64_t count, Exec exec);

/// sum of |amp[i]|^2 over elements with costs[i] <= threshold.
double overlap_ground(const cdouble* amp, const double* costs,
                      double threshold, std::uint64_t count, Exec exec);
double overlap_ground(const cfloat* amp, const double* costs,
                      double threshold, std::uint64_t count, Exec exec);

namespace detail {

/// One kernel family at amplitude scalar T: block-range entry points the
/// dispatcher drives. Elementwise/reduction kernels receive already-offset
/// pointers and a count; butterfly kernels receive the full array plus a
/// pair-index range [kb, ke) (pair k touches amplitudes
/// insert_zero_bit(k, qubit) and its partner at stride 2^qubit). Angles,
/// costs, and reduction results are double for every T.
template <class T>
struct KernelsT {
  using C = std::complex<T>;
  void (*phase)(C* amp, const double* costs, std::uint64_t count,
                double gamma);
  void (*phase_table)(C* amp, const std::uint16_t* codes, const C* table,
                      std::uint64_t count);
  void (*phase_popcount)(C* amp, std::uint64_t index_base,
                         std::uint64_t count, const C* table);
  /// Fused diagonal phase + qubit-0 RX over `count` (even) amplitudes —
  /// the per-amplitude operations of phase followed by rx_pairs(qubit=0),
  /// bit for bit, in one pass over the range.
  void (*phase_rx)(C* amp, const double* costs, std::uint64_t count,
                   double gamma, double c, double s);
  void (*rx_pairs)(C* x, int qubit, std::uint64_t kb, std::uint64_t ke,
                   double c, double s);
  void (*hadamard_pairs)(C* x, int qubit, std::uint64_t kb,
                         std::uint64_t ke);
  double (*expectation)(const C* amp, const double* costs,
                        std::uint64_t count);
  double (*expectation_u16)(const C* amp, const std::uint16_t* codes,
                            double offset, double scale, std::uint64_t count);
  double (*norm_squared)(const C* amp, std::uint64_t count);
  double (*overlap)(const C* amp, const double* costs, double threshold,
                    std::uint64_t count);
};

using Kernels = KernelsT<double>;
using KernelsF32 = KernelsT<float>;

extern const Kernels scalar_kernels;
extern const KernelsF32 scalar_kernels_f32;
#if QOKIT_SIMD_X86
extern const Kernels avx2_kernels;
extern const KernelsF32 avx2_kernels_f32;
#endif

/// Family for the current active_simd_level().
const Kernels& active_kernels() noexcept;
const KernelsF32& active_kernels_f32() noexcept;

}  // namespace detail
}  // namespace simd
}  // namespace qokit
