// AVX2+FMA kernel family. This translation unit is compiled with
// -mavx2 -mfma (set per-file by CMake when QOKIT_SIMD is ON and the target
// is x86-64) and contributes nothing to the build otherwise; dispatch picks
// it at runtime only when CPUID reports both extensions.
//
// Numerics: the phase kernel computes e^{-i gamma c} with an in-register
// sin/cos (Cody–Waite quadrant reduction + Cephes minimax polynomials,
// ~1 ulp over the reduced range, |angle| up to 1e9 with a libm fallback
// beyond). Reductions keep four independent accumulator lanes per block and
// collapse them in a fixed order, so every result is a deterministic
// function of the input alone. The parity suite pins both families to each
// other within 1e-12 per amplitude.
#include "simd/kernels.hpp"

#if QOKIT_SIMD_X86

#include <immintrin.h>

#include <algorithm>
#include <cmath>

#include "common/bitops.hpp"

namespace qokit {
namespace simd {
namespace {

// ------------------------------------------------------------- sin/cos
// Three-term Cody–Waite split of pi/2 (Cephes DP1..DP3 doubled). Each
// k*DPx product is formed inside a single-rounding fnmadd, so the
// reduction error is dominated by the residual pi/2 - (DP1+DP2+DP3)
// (~3e-22): at the kHugeAngle bound (|k| ~ 6.4e8) the reduced argument is
// off by at most ~2e-13 absolute, inside the layer's 1e-12 parity budget;
// for the |angle| <~ 1e4 regime real gammas produce it is ~1e-18.
constexpr double kDP1 = 1.57079625129699707031e+00;
constexpr double kDP2 = 7.54978941586159635335e-08;
constexpr double kDP3 = 5.39030285815811905290e-15;
constexpr double kTwoOverPi = 6.36619772367581382433e-01;
// Beyond this magnitude the int32 quadrant index could overflow; the caller
// falls back to libm for the whole 4-lane group (never hit by sane gammas).
constexpr double kHugeAngle = 1.0e9;

// Cephes minimax coefficients for sin/cos on |r| <= pi/4 (highest first).
constexpr double kSinCof[6] = {
    1.58962301576546568060e-10, -2.50507477628578072866e-8,
    2.75573136213857245213e-6,  -1.98412698295895385996e-4,
    8.33333333332211858878e-3,  -1.66666666666666307295e-1,
};
constexpr double kCosCof[6] = {
    -1.13585365213876817300e-11, 2.08757008419747316778e-9,
    -2.75573141792967388112e-7,  2.48015872888517179954e-5,
    -1.38888888888730564116e-3,  4.16666666666665929218e-2,
};

inline __m256d poly6(__m256d z, const double (&c)[6]) {
  __m256d p = _mm256_set1_pd(c[0]);
  p = _mm256_fmadd_pd(p, z, _mm256_set1_pd(c[1]));
  p = _mm256_fmadd_pd(p, z, _mm256_set1_pd(c[2]));
  p = _mm256_fmadd_pd(p, z, _mm256_set1_pd(c[3]));
  p = _mm256_fmadd_pd(p, z, _mm256_set1_pd(c[4]));
  p = _mm256_fmadd_pd(p, z, _mm256_set1_pd(c[5]));
  return p;
}

/// Four simultaneous sin/cos. Precondition: every |x| <= kHugeAngle.
inline void sincos4(__m256d x, __m256d* s_out, __m256d* c_out) {
  // Quadrant index k = round(x * 2/pi) and reduced argument r in
  // [-pi/4, pi/4] via the three-term split.
  const __m256d k = _mm256_round_pd(
      _mm256_mul_pd(x, _mm256_set1_pd(kTwoOverPi)),
      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m256d r = _mm256_fnmadd_pd(k, _mm256_set1_pd(kDP1), x);
  r = _mm256_fnmadd_pd(k, _mm256_set1_pd(kDP2), r);
  r = _mm256_fnmadd_pd(k, _mm256_set1_pd(kDP3), r);

  const __m256i q = _mm256_cvtepi32_epi64(_mm256_cvtpd_epi32(k));

  const __m256d z = _mm256_mul_pd(r, r);
  // sin(r) = r + r z P(z);  cos(r) = 1 - z/2 + z^2 Q(z).
  const __m256d sin_r =
      _mm256_fmadd_pd(_mm256_mul_pd(poly6(z, kSinCof), z), r, r);
  const __m256d cos_r = _mm256_fmadd_pd(
      poly6(z, kCosCof), _mm256_mul_pd(z, z),
      _mm256_fnmadd_pd(_mm256_set1_pd(0.5), z, _mm256_set1_pd(1.0)));

  // Quadrant fixup: q&1 swaps sin/cos; q&2 flips sin; (q+1)&2 flips cos.
  const __m256d swap = _mm256_castsi256_pd(_mm256_cmpeq_epi64(
      _mm256_and_si256(q, _mm256_set1_epi64x(1)), _mm256_set1_epi64x(1)));
  const __m256d sin_sign = _mm256_castsi256_pd(_mm256_slli_epi64(
      _mm256_and_si256(q, _mm256_set1_epi64x(2)), 62));
  const __m256d cos_sign = _mm256_castsi256_pd(_mm256_slli_epi64(
      _mm256_and_si256(_mm256_add_epi64(q, _mm256_set1_epi64x(1)),
                       _mm256_set1_epi64x(2)),
      62));
  *s_out = _mm256_xor_pd(_mm256_blendv_pd(sin_r, cos_r, swap), sin_sign);
  *c_out = _mm256_xor_pd(_mm256_blendv_pd(cos_r, sin_r, swap), cos_sign);
}

// ------------------------------------------------- complex-multiply bits
// Interleaved packed complex layout: one __m256d holds [re0, im0, re1, im1].

/// (a * f) for interleaved a and broadcast factor halves f_re = [c,c,c',c'],
/// f_im = [s,s,s',s']: fmaddsub gives re = ar*c - ai*s, im = ai*c + ar*s.
inline __m256d cmul_bcast(__m256d a, __m256d f_re, __m256d f_im) {
  const __m256d a_sw = _mm256_permute_pd(a, 0x5);  // [im0, re0, im1, re1]
  return _mm256_fmaddsub_pd(a, f_re, _mm256_mul_pd(a_sw, f_im));
}

/// Sign mask flipping the odd (imaginary-slot) lanes.
inline __m256d neg_odd() { return _mm256_setr_pd(0.0, -0.0, 0.0, -0.0); }

// Tail/fallback elements run the *scalar family's* function (compiled
// without FMA contraction in its own TU), so they match the scalar dispatch
// level bit-for-bit — a local loop here would contract differently.
void phase_scalar_tail(cdouble* amp, const double* costs, std::uint64_t count,
                       double gamma) {
  if (count) detail::scalar_kernels.phase(amp, costs, count, gamma);
}

// --------------------------------------------------------------- kernels

void phase_avx2(cdouble* amp, const double* costs, std::uint64_t count,
                double gamma) {
  double* d = reinterpret_cast<double*>(amp);
  const __m256d vng = _mm256_set1_pd(-gamma);
  const __m256d vhuge = _mm256_set1_pd(kHugeAngle);
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffll));
  std::uint64_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256d ang = _mm256_mul_pd(vng, _mm256_loadu_pd(costs + i));
    if (_mm256_movemask_pd(_mm256_cmp_pd(_mm256_and_pd(ang, abs_mask), vhuge,
                                         _CMP_GT_OQ))) {
      phase_scalar_tail(amp + i, costs + i, 4, gamma);
      continue;
    }
    __m256d vs, vc;
    sincos4(ang, &vs, &vc);
    // Spread [c0,c1,c2,c3] into per-complex broadcast halves.
    const __m256d f01_re = _mm256_permute4x64_pd(vc, 0x50);  // [c0,c0,c1,c1]
    const __m256d f01_im = _mm256_permute4x64_pd(vs, 0x50);
    const __m256d f23_re = _mm256_permute4x64_pd(vc, 0xFA);  // [c2,c2,c3,c3]
    const __m256d f23_im = _mm256_permute4x64_pd(vs, 0xFA);
    const __m256d a01 = _mm256_loadu_pd(d + 2 * i);
    const __m256d a23 = _mm256_loadu_pd(d + 2 * i + 4);
    _mm256_storeu_pd(d + 2 * i, cmul_bcast(a01, f01_re, f01_im));
    _mm256_storeu_pd(d + 2 * i + 4, cmul_bcast(a23, f23_re, f23_im));
  }
  phase_scalar_tail(amp + i, costs + i, count - i, gamma);
}

void phase_rx_avx2(cdouble* amp, const double* costs, std::uint64_t count,
                   double gamma, double c, double s) {
  // Fused phase + qubit-0 RX. The phase half is phase_avx2's body
  // verbatim (including the huge-angle scalar fallback, taken for the
  // same absolute groups of 4 since both drivers issue 4-aligned ranges);
  // the butterfly half is rx_pairs_avx2's qubit-0 update applied to the
  // phased registers — identical values whether kept in register or
  // stored and reloaded, so the pair of unfused kernels is reproduced bit
  // for bit with one memory round trip instead of two.
  double* d = reinterpret_cast<double*>(amp);
  const __m256d vng = _mm256_set1_pd(-gamma);
  const __m256d vhuge = _mm256_set1_pd(kHugeAngle);
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffll));
  const __m256d vc = _mm256_set1_pd(c);
  const __m256d vs = _mm256_set1_pd(s);
  const __m256d nodd = neg_odd();
  std::uint64_t i = 0;
  for (; i + 4 <= count; i += 4) {
    __m256d p01, p23;
    const __m256d ang = _mm256_mul_pd(vng, _mm256_loadu_pd(costs + i));
    if (_mm256_movemask_pd(_mm256_cmp_pd(_mm256_and_pd(ang, abs_mask), vhuge,
                                         _CMP_GT_OQ))) {
      phase_scalar_tail(amp + i, costs + i, 4, gamma);
      p01 = _mm256_loadu_pd(d + 2 * i);
      p23 = _mm256_loadu_pd(d + 2 * i + 4);
    } else {
      __m256d vsin, vcos;
      sincos4(ang, &vsin, &vcos);
      const __m256d f01_re = _mm256_permute4x64_pd(vcos, 0x50);
      const __m256d f01_im = _mm256_permute4x64_pd(vsin, 0x50);
      const __m256d f23_re = _mm256_permute4x64_pd(vcos, 0xFA);
      const __m256d f23_im = _mm256_permute4x64_pd(vsin, 0xFA);
      p01 = cmul_bcast(_mm256_loadu_pd(d + 2 * i), f01_re, f01_im);
      p23 = cmul_bcast(_mm256_loadu_pd(d + 2 * i + 4), f23_re, f23_im);
    }
    const __m256d m01 =
        _mm256_xor_pd(_mm256_permute4x64_pd(p01, 0x1B), nodd);
    _mm256_storeu_pd(d + 2 * i,
                     _mm256_fmadd_pd(vc, p01, _mm256_mul_pd(vs, m01)));
    const __m256d m23 =
        _mm256_xor_pd(_mm256_permute4x64_pd(p23, 0x1B), nodd);
    _mm256_storeu_pd(d + 2 * i + 4,
                     _mm256_fmadd_pd(vc, p23, _mm256_mul_pd(vs, m23)));
  }
  if (i < count) {
    // count % 4 == 2: one pair left. Scalar-family phase (the unfused
    // kernel's own tail policy), then the in-register qubit-0 butterfly
    // rx_pairs_avx2 applies to every pair.
    phase_scalar_tail(amp + i, costs + i, count - i, gamma);
    const __m256d a = _mm256_loadu_pd(d + 2 * i);
    const __m256d m = _mm256_xor_pd(_mm256_permute4x64_pd(a, 0x1B), nodd);
    _mm256_storeu_pd(d + 2 * i,
                     _mm256_fmadd_pd(vc, a, _mm256_mul_pd(vs, m)));
  }
}

inline __m256d load_factor_pair(const cdouble* f0, const cdouble* f1) {
  return _mm256_set_m128d(
      _mm_loadu_pd(reinterpret_cast<const double*>(f1)),
      _mm_loadu_pd(reinterpret_cast<const double*>(f0)));
}

/// amp[i] *= f_i for two complex at a time, factors fetched by the caller.
inline void table_mul2(double* d, std::uint64_t i, __m256d f) {
  const __m256d f_re = _mm256_movedup_pd(f);        // [re0, re0, re1, re1]
  const __m256d f_im = _mm256_permute_pd(f, 0xF);   // [im0, im0, im1, im1]
  const __m256d a = _mm256_loadu_pd(d + 2 * i);
  _mm256_storeu_pd(d + 2 * i, cmul_bcast(a, f_re, f_im));
}

void phase_table_avx2(cdouble* amp, const std::uint16_t* codes,
                      const cdouble* table, std::uint64_t count) {
  double* d = reinterpret_cast<double*>(amp);
  std::uint64_t i = 0;
  for (; i + 2 <= count; i += 2)
    table_mul2(d, i, load_factor_pair(table + codes[i], table + codes[i + 1]));
  for (; i < count; ++i) amp[i] *= table[codes[i]];
}

void phase_popcount_avx2(cdouble* amp, std::uint64_t index_base,
                         std::uint64_t count, const cdouble* table) {
  double* d = reinterpret_cast<double*>(amp);
  std::uint64_t i = 0;
  for (; i + 2 <= count; i += 2)
    table_mul2(d, i,
               load_factor_pair(table + popcount(index_base + i),
                                table + popcount(index_base + i + 1)));
  for (; i < count; ++i) amp[i] *= table[popcount(index_base + i)];
}

void rx_pairs_avx2(cdouble* x, int qubit, std::uint64_t kb, std::uint64_t ke,
                   double c, double s) {
  const __m256d vc = _mm256_set1_pd(c);
  const __m256d vs = _mm256_set1_pd(s);
  const __m256d nodd = neg_odd();
  double* d = reinterpret_cast<double*>(x);
  if (qubit == 0) {
    // Pair (x0, x1) is one register: [r0, i0, r1, i1]. The cross-partner
    // operand [i1, -r1, i0, -r0] is a full-register lane reversal + sign.
    for (std::uint64_t k = kb; k < ke; ++k) {
      const __m256d a = _mm256_loadu_pd(d + 4 * k);
      const __m256d m =
          _mm256_xor_pd(_mm256_permute4x64_pd(a, 0x1B), nodd);
      _mm256_storeu_pd(d + 4 * k,
                       _mm256_fmadd_pd(vc, a, _mm256_mul_pd(vs, m)));
    }
    return;
  }
  // qubit >= 1: pairs form two contiguous streams of `stride` amplitudes.
  const std::uint64_t stride = 1ull << qubit;
  std::uint64_t k = kb;
  while (k < ke) {
    const std::uint64_t off = k & (stride - 1);
    const std::uint64_t run = std::min(ke - k, stride - off);
    double* p0 = reinterpret_cast<double*>(x + insert_zero_bit(k, qubit));
    double* p1 = p0 + 2 * stride;
    std::uint64_t j = 0;
    for (; j + 2 <= run; j += 2) {
      const __m256d a = _mm256_loadu_pd(p0 + 2 * j);
      const __m256d b = _mm256_loadu_pd(p1 + 2 * j);
      const __m256d mb = _mm256_xor_pd(_mm256_permute_pd(b, 0x5), nodd);
      const __m256d ma = _mm256_xor_pd(_mm256_permute_pd(a, 0x5), nodd);
      _mm256_storeu_pd(p0 + 2 * j,
                       _mm256_fmadd_pd(vc, a, _mm256_mul_pd(vs, mb)));
      _mm256_storeu_pd(p1 + 2 * j,
                       _mm256_fmadd_pd(vc, b, _mm256_mul_pd(vs, ma)));
    }
    // Odd-pair remainder: delegate to the scalar family (same tail policy
    // as the phase kernel — a local loop here would FMA-contract).
    if (j < run) detail::scalar_kernels.rx_pairs(x, qubit, k + j, k + run, c, s);
    k += run;
  }
}

void hadamard_pairs_avx2(cdouble* x, int qubit, std::uint64_t kb,
                         std::uint64_t ke) {
  constexpr double kInvSqrt2 = 0.70710678118654752440;
  const __m256d vk = _mm256_set1_pd(kInvSqrt2);
  double* d = reinterpret_cast<double*>(x);
  if (qubit == 0) {
    for (std::uint64_t k = kb; k < ke; ++k) {
      const __m256d a = _mm256_loadu_pd(d + 4 * k);
      const __m256d b = _mm256_permute2f128_pd(a, a, 0x01);
      // Lanes 0-1: x0 + x1; lanes 2-3: x0 - x1 (note b - a has the partner
      // first in the high half, giving the required x0 - x1 order).
      const __m256d out = _mm256_blend_pd(_mm256_add_pd(a, b),
                                          _mm256_sub_pd(b, a), 0xC);
      _mm256_storeu_pd(d + 4 * k, _mm256_mul_pd(out, vk));
    }
    return;
  }
  const std::uint64_t stride = 1ull << qubit;
  std::uint64_t k = kb;
  while (k < ke) {
    const std::uint64_t off = k & (stride - 1);
    const std::uint64_t run = std::min(ke - k, stride - off);
    double* p0 = reinterpret_cast<double*>(x + insert_zero_bit(k, qubit));
    double* p1 = p0 + 2 * stride;
    std::uint64_t j = 0;
    for (; j + 2 <= run; j += 2) {
      const __m256d a = _mm256_loadu_pd(p0 + 2 * j);
      const __m256d b = _mm256_loadu_pd(p1 + 2 * j);
      _mm256_storeu_pd(p0 + 2 * j,
                       _mm256_mul_pd(_mm256_add_pd(a, b), vk));
      _mm256_storeu_pd(p1 + 2 * j,
                       _mm256_mul_pd(_mm256_sub_pd(a, b), vk));
    }
    if (j < run)
      detail::scalar_kernels.hadamard_pairs(x, qubit, k + j, k + run);
    k += run;
  }
}

// ------------------------------------------------------------ reductions
// |amp|^2 for four complex: squares, then horizontal pair-add. hadd of the
// two square registers yields lane order [n0, n2, n1, n3]; cost/value
// registers are permuted with 0xD8 ([v0, v2, v1, v3]) to match.

inline __m256d norms4(const double* d, std::uint64_t i) {
  const __m256d a01 = _mm256_loadu_pd(d + 2 * i);
  const __m256d a23 = _mm256_loadu_pd(d + 2 * i + 4);
  return _mm256_hadd_pd(_mm256_mul_pd(a01, a01), _mm256_mul_pd(a23, a23));
}

/// Fixed-order horizontal sum: (l0 + l2) + (l1 + l3).
inline double hsum(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d s = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(s) + _mm_cvtsd_f64(_mm_unpackhi_pd(s, s));
}

double expectation_avx2(const cdouble* amp, const double* costs,
                        std::uint64_t count) {
  const double* d = reinterpret_cast<const double*>(amp);
  __m256d acc = _mm256_setzero_pd();
  std::uint64_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256d cp =
        _mm256_permute4x64_pd(_mm256_loadu_pd(costs + i), 0xD8);
    acc = _mm256_fmadd_pd(norms4(d, i), cp, acc);
  }
  double out = hsum(acc);
  for (; i < count; ++i) out += std::norm(amp[i]) * costs[i];
  return out;
}

double expectation_u16_avx2(const cdouble* amp, const std::uint16_t* codes,
                            double offset, double scale, std::uint64_t count) {
  const double* d = reinterpret_cast<const double*>(amp);
  const __m256d voff = _mm256_set1_pd(offset);
  const __m256d vscale = _mm256_set1_pd(scale);
  __m256d acc = _mm256_setzero_pd();
  std::uint64_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m128i c16 = _mm_loadl_epi64(
        reinterpret_cast<const __m128i*>(codes + i));
    const __m256d vals = _mm256_fmadd_pd(
        vscale, _mm256_cvtepi32_pd(_mm_cvtepu16_epi32(c16)), voff);
    acc = _mm256_fmadd_pd(norms4(d, i), _mm256_permute4x64_pd(vals, 0xD8),
                          acc);
  }
  double out = hsum(acc);
  for (; i < count; ++i)
    out += std::norm(amp[i]) * (offset + scale * codes[i]);
  return out;
}

double norm_squared_avx2(const cdouble* amp, std::uint64_t count) {
  const double* d = reinterpret_cast<const double*>(amp);
  __m256d acc = _mm256_setzero_pd();
  std::uint64_t i = 0;
  for (; i + 4 <= count; i += 4) acc = _mm256_add_pd(acc, norms4(d, i));
  double out = hsum(acc);
  for (; i < count; ++i) out += std::norm(amp[i]);
  return out;
}

double overlap_avx2(const cdouble* amp, const double* costs, double threshold,
                    std::uint64_t count) {
  const double* d = reinterpret_cast<const double*>(amp);
  const __m256d vthr = _mm256_set1_pd(threshold);
  __m256d acc = _mm256_setzero_pd();
  std::uint64_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256d cp =
        _mm256_permute4x64_pd(_mm256_loadu_pd(costs + i), 0xD8);
    const __m256d mask = _mm256_cmp_pd(cp, vthr, _CMP_LE_OQ);
    acc = _mm256_add_pd(acc, _mm256_and_pd(norms4(d, i), mask));
  }
  double out = hsum(acc);
  for (; i < count; ++i)
    if (costs[i] <= threshold) out += std::norm(amp[i]);
  return out;
}

// ===================================================== f32 family
// Interleaved packed complex64 layout: one __m256 holds four complexes
// [r0, i0, r1, i1, r2, i2, r3, i3] — twice the f64 register density, half
// the bytes per pass. Angle math runs through the same double-precision
// sincos4 above and narrows once to float; reductions widen each 128-bit
// half back to double with cvtps_pd and reuse the f64 accumulation
// structure, so every reduction is double end to end (the error-
// containment contract). Tails and odd remainders delegate to the scalar
// f32 family, mirroring the f64 policy.

/// Sign mask flipping the odd (imaginary-slot) float lanes.
inline __m256 neg_odd_ps() {
  return _mm256_setr_ps(0.0f, -0.0f, 0.0f, -0.0f, 0.0f, -0.0f, 0.0f, -0.0f);
}

/// (a * f) for interleaved a and per-complex broadcast halves
/// f_re = [c0,c0,c1,c1,...], f_im = [s0,s0,s1,s1,...].
inline __m256 cmul_bcast_ps(__m256 a, __m256 f_re, __m256 f_im) {
  const __m256 a_sw = _mm256_permute_ps(a, 0xB1);  // [im, re] per complex
  return _mm256_fmaddsub_ps(a, f_re, _mm256_mul_ps(a_sw, f_im));
}

/// Narrow four double factors [f0,f1,f2,f3] to float and spread each into
/// its complex's two lanes: [f0,f0,f1,f1,f2,f2,f3,f3].
inline __m256 spread4_ps(__m256d v) {
  const __m128 v4 = _mm256_cvtpd_ps(v);
  const __m256i idx = _mm256_setr_epi32(0, 0, 1, 1, 2, 2, 3, 3);
  return _mm256_permutevar8x32_ps(_mm256_set_m128(v4, v4), idx);
}

void phase_scalar_tail_f32(cfloat* amp, const double* costs,
                           std::uint64_t count, double gamma) {
  if (count) detail::scalar_kernels_f32.phase(amp, costs, count, gamma);
}

void phase_avx2_f32(cfloat* amp, const double* costs, std::uint64_t count,
                    double gamma) {
  float* d = reinterpret_cast<float*>(amp);
  const __m256d vng = _mm256_set1_pd(-gamma);
  const __m256d vhuge = _mm256_set1_pd(kHugeAngle);
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffll));
  std::uint64_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256d ang = _mm256_mul_pd(vng, _mm256_loadu_pd(costs + i));
    if (_mm256_movemask_pd(_mm256_cmp_pd(_mm256_and_pd(ang, abs_mask), vhuge,
                                         _CMP_GT_OQ))) {
      phase_scalar_tail_f32(amp + i, costs + i, 4, gamma);
      continue;
    }
    __m256d vs, vc;
    sincos4(ang, &vs, &vc);
    const __m256 a = _mm256_loadu_ps(d + 2 * i);
    _mm256_storeu_ps(d + 2 * i,
                     cmul_bcast_ps(a, spread4_ps(vc), spread4_ps(vs)));
  }
  phase_scalar_tail_f32(amp + i, costs + i, count - i, gamma);
}

void phase_rx_avx2_f32(cfloat* amp, const double* costs, std::uint64_t count,
                       double gamma, double c, double s) {
  // Fused phase + qubit-0 RX, two pairs per register. The cross-partner
  // operand [i1, -r1, i0, -r0] is a within-lane reversal + sign, so the
  // butterfly never crosses the 128-bit boundary.
  float* d = reinterpret_cast<float*>(amp);
  const __m256d vng = _mm256_set1_pd(-gamma);
  const __m256d vhuge = _mm256_set1_pd(kHugeAngle);
  const __m256d abs_mask =
      _mm256_castsi256_pd(_mm256_set1_epi64x(0x7fffffffffffffffll));
  const __m256 vc = _mm256_set1_ps(static_cast<float>(c));
  const __m256 vs = _mm256_set1_ps(static_cast<float>(s));
  const __m256 nodd = neg_odd_ps();
  std::uint64_t i = 0;
  for (; i + 4 <= count; i += 4) {
    __m256 p;
    const __m256d ang = _mm256_mul_pd(vng, _mm256_loadu_pd(costs + i));
    if (_mm256_movemask_pd(_mm256_cmp_pd(_mm256_and_pd(ang, abs_mask), vhuge,
                                         _CMP_GT_OQ))) {
      phase_scalar_tail_f32(amp + i, costs + i, 4, gamma);
      p = _mm256_loadu_ps(d + 2 * i);
    } else {
      __m256d vsin, vcos;
      sincos4(ang, &vsin, &vcos);
      p = cmul_bcast_ps(_mm256_loadu_ps(d + 2 * i), spread4_ps(vcos),
                        spread4_ps(vsin));
    }
    const __m256 m = _mm256_xor_ps(_mm256_permute_ps(p, 0x1B), nodd);
    _mm256_storeu_ps(d + 2 * i,
                     _mm256_fmadd_ps(vc, p, _mm256_mul_ps(vs, m)));
  }
  // count % 4 == 2: one pair left; the scalar family fuses it whole.
  if (i < count)
    detail::scalar_kernels_f32.phase_rx(amp + i, costs + i, count - i, gamma,
                                        c, s);
}

/// Four complex64 factors gathered into [re0,im0,...,re3,im3].
inline __m256 load_factor4_ps(const cfloat* f0, const cfloat* f1,
                              const cfloat* f2, const cfloat* f3) {
  const __m128d lo = _mm_loadh_pd(
      _mm_load_sd(reinterpret_cast<const double*>(f0)),
      reinterpret_cast<const double*>(f1));
  const __m128d hi = _mm_loadh_pd(
      _mm_load_sd(reinterpret_cast<const double*>(f2)),
      reinterpret_cast<const double*>(f3));
  return _mm256_set_m128(_mm_castpd_ps(hi), _mm_castpd_ps(lo));
}

/// amp[i..i+3] *= f_0..3 for four complexes, factors fetched by the caller.
inline void table_mul4_ps(float* d, std::uint64_t i, __m256 f) {
  const __m256 f_re = _mm256_moveldup_ps(f);  // [re0, re0, re1, re1, ...]
  const __m256 f_im = _mm256_movehdup_ps(f);  // [im0, im0, im1, im1, ...]
  const __m256 a = _mm256_loadu_ps(d + 2 * i);
  _mm256_storeu_ps(d + 2 * i, cmul_bcast_ps(a, f_re, f_im));
}

void phase_table_avx2_f32(cfloat* amp, const std::uint16_t* codes,
                          const cfloat* table, std::uint64_t count) {
  float* d = reinterpret_cast<float*>(amp);
  std::uint64_t i = 0;
  for (; i + 4 <= count; i += 4)
    table_mul4_ps(d, i,
                  load_factor4_ps(table + codes[i], table + codes[i + 1],
                                  table + codes[i + 2], table + codes[i + 3]));
  for (; i < count; ++i) amp[i] *= table[codes[i]];
}

void phase_popcount_avx2_f32(cfloat* amp, std::uint64_t index_base,
                             std::uint64_t count, const cfloat* table) {
  float* d = reinterpret_cast<float*>(amp);
  std::uint64_t i = 0;
  for (; i + 4 <= count; i += 4)
    table_mul4_ps(d, i,
                  load_factor4_ps(table + popcount(index_base + i),
                                  table + popcount(index_base + i + 1),
                                  table + popcount(index_base + i + 2),
                                  table + popcount(index_base + i + 3)));
  for (; i < count; ++i) amp[i] *= table[popcount(index_base + i)];
}

void rx_pairs_avx2_f32(cfloat* x, int qubit, std::uint64_t kb,
                       std::uint64_t ke, double c, double s) {
  const __m256 vc = _mm256_set1_ps(static_cast<float>(c));
  const __m256 vs = _mm256_set1_ps(static_cast<float>(s));
  const __m256 nodd = neg_odd_ps();
  float* d = reinterpret_cast<float*>(x);
  if (qubit == 0) {
    // Two pairs per register; each pair is one 128-bit lane [r0,i0,r1,i1]
    // whose cross-partner operand is a within-lane reversal + sign.
    std::uint64_t k = kb;
    for (; k + 2 <= ke; k += 2) {
      const __m256 a = _mm256_loadu_ps(d + 4 * k);
      const __m256 m = _mm256_xor_ps(_mm256_permute_ps(a, 0x1B), nodd);
      _mm256_storeu_ps(d + 4 * k,
                       _mm256_fmadd_ps(vc, a, _mm256_mul_ps(vs, m)));
    }
    if (k < ke) detail::scalar_kernels_f32.rx_pairs(x, qubit, k, ke, c, s);
    return;
  }
  // qubit >= 1: pairs form two contiguous streams of `stride` amplitudes.
  const std::uint64_t stride = 1ull << qubit;
  std::uint64_t k = kb;
  while (k < ke) {
    const std::uint64_t off = k & (stride - 1);
    const std::uint64_t run = std::min(ke - k, stride - off);
    float* p0 = reinterpret_cast<float*>(x + insert_zero_bit(k, qubit));
    float* p1 = p0 + 2 * stride;
    std::uint64_t j = 0;
    for (; j + 4 <= run; j += 4) {
      const __m256 a = _mm256_loadu_ps(p0 + 2 * j);
      const __m256 b = _mm256_loadu_ps(p1 + 2 * j);
      const __m256 mb = _mm256_xor_ps(_mm256_permute_ps(b, 0xB1), nodd);
      const __m256 ma = _mm256_xor_ps(_mm256_permute_ps(a, 0xB1), nodd);
      _mm256_storeu_ps(p0 + 2 * j,
                       _mm256_fmadd_ps(vc, a, _mm256_mul_ps(vs, mb)));
      _mm256_storeu_ps(p1 + 2 * j,
                       _mm256_fmadd_ps(vc, b, _mm256_mul_ps(vs, ma)));
    }
    if (j < run)
      detail::scalar_kernels_f32.rx_pairs(x, qubit, k + j, k + run, c, s);
    k += run;
  }
}

void hadamard_pairs_avx2_f32(cfloat* x, int qubit, std::uint64_t kb,
                             std::uint64_t ke) {
  constexpr float kInvSqrt2f = 0.70710678118654752440f;
  const __m256 vk = _mm256_set1_ps(kInvSqrt2f);
  float* d = reinterpret_cast<float*>(x);
  if (qubit == 0) {
    std::uint64_t k = kb;
    for (; k + 2 <= ke; k += 2) {
      const __m256 a = _mm256_loadu_ps(d + 4 * k);
      // Swap the two complexes within each lane; blend keeps x0 + x1 in
      // the low complex and takes x0 - x1 (partner-first b - a) in the
      // high one.
      const __m256 b = _mm256_permute_ps(a, 0x4E);
      const __m256 out = _mm256_blend_ps(_mm256_add_ps(a, b),
                                         _mm256_sub_ps(b, a), 0xCC);
      _mm256_storeu_ps(d + 4 * k, _mm256_mul_ps(out, vk));
    }
    if (k < ke) detail::scalar_kernels_f32.hadamard_pairs(x, qubit, k, ke);
    return;
  }
  const std::uint64_t stride = 1ull << qubit;
  std::uint64_t k = kb;
  while (k < ke) {
    const std::uint64_t off = k & (stride - 1);
    const std::uint64_t run = std::min(ke - k, stride - off);
    float* p0 = reinterpret_cast<float*>(x + insert_zero_bit(k, qubit));
    float* p1 = p0 + 2 * stride;
    std::uint64_t j = 0;
    for (; j + 4 <= run; j += 4) {
      const __m256 a = _mm256_loadu_ps(p0 + 2 * j);
      const __m256 b = _mm256_loadu_ps(p1 + 2 * j);
      _mm256_storeu_ps(p0 + 2 * j, _mm256_mul_ps(_mm256_add_ps(a, b), vk));
      _mm256_storeu_ps(p1 + 2 * j, _mm256_mul_ps(_mm256_sub_ps(a, b), vk));
    }
    if (j < run)
      detail::scalar_kernels_f32.hadamard_pairs(x, qubit, k + j, k + run);
    k += run;
  }
}

// f32 reductions: widen each 128-bit half of the four loaded complexes to
// double with cvtps_pd, then reuse the f64 norms4/hsum structure — the
// accumulator registers are __m256d, so nothing aggregates at float.

inline __m256d norms4_f32(const float* d, std::uint64_t i) {
  const __m256 a = _mm256_loadu_ps(d + 2 * i);
  const __m256d a01 = _mm256_cvtps_pd(_mm256_castps256_ps128(a));
  const __m256d a23 = _mm256_cvtps_pd(_mm256_extractf128_ps(a, 1));
  return _mm256_hadd_pd(_mm256_mul_pd(a01, a01), _mm256_mul_pd(a23, a23));
}

/// Scalar-tail |amp|^2 with the components widened to double first.
inline double norm_widened_f32(cfloat a) {
  const double re = a.real(), im = a.imag();
  return re * re + im * im;
}

double expectation_avx2_f32(const cfloat* amp, const double* costs,
                            std::uint64_t count) {
  const float* d = reinterpret_cast<const float*>(amp);
  __m256d acc = _mm256_setzero_pd();
  std::uint64_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256d cp =
        _mm256_permute4x64_pd(_mm256_loadu_pd(costs + i), 0xD8);
    acc = _mm256_fmadd_pd(norms4_f32(d, i), cp, acc);
  }
  double out = hsum(acc);
  for (; i < count; ++i) out += norm_widened_f32(amp[i]) * costs[i];
  return out;
}

double expectation_u16_avx2_f32(const cfloat* amp, const std::uint16_t* codes,
                                double offset, double scale,
                                std::uint64_t count) {
  const float* d = reinterpret_cast<const float*>(amp);
  const __m256d voff = _mm256_set1_pd(offset);
  const __m256d vscale = _mm256_set1_pd(scale);
  __m256d acc = _mm256_setzero_pd();
  std::uint64_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m128i c16 = _mm_loadl_epi64(
        reinterpret_cast<const __m128i*>(codes + i));
    const __m256d vals = _mm256_fmadd_pd(
        vscale, _mm256_cvtepi32_pd(_mm_cvtepu16_epi32(c16)), voff);
    acc = _mm256_fmadd_pd(norms4_f32(d, i),
                          _mm256_permute4x64_pd(vals, 0xD8), acc);
  }
  double out = hsum(acc);
  for (; i < count; ++i)
    out += norm_widened_f32(amp[i]) * (offset + scale * codes[i]);
  return out;
}

double norm_squared_avx2_f32(const cfloat* amp, std::uint64_t count) {
  const float* d = reinterpret_cast<const float*>(amp);
  __m256d acc = _mm256_setzero_pd();
  std::uint64_t i = 0;
  for (; i + 4 <= count; i += 4) acc = _mm256_add_pd(acc, norms4_f32(d, i));
  double out = hsum(acc);
  for (; i < count; ++i) out += norm_widened_f32(amp[i]);
  return out;
}

double overlap_avx2_f32(const cfloat* amp, const double* costs,
                        double threshold, std::uint64_t count) {
  const float* d = reinterpret_cast<const float*>(amp);
  const __m256d vthr = _mm256_set1_pd(threshold);
  __m256d acc = _mm256_setzero_pd();
  std::uint64_t i = 0;
  for (; i + 4 <= count; i += 4) {
    const __m256d cp =
        _mm256_permute4x64_pd(_mm256_loadu_pd(costs + i), 0xD8);
    const __m256d mask = _mm256_cmp_pd(cp, vthr, _CMP_LE_OQ);
    acc = _mm256_add_pd(acc, _mm256_and_pd(norms4_f32(d, i), mask));
  }
  double out = hsum(acc);
  for (; i < count; ++i)
    if (costs[i] <= threshold) out += norm_widened_f32(amp[i]);
  return out;
}

}  // namespace

namespace detail {

const Kernels avx2_kernels = {
    .phase = phase_avx2,
    .phase_table = phase_table_avx2,
    .phase_popcount = phase_popcount_avx2,
    .phase_rx = phase_rx_avx2,
    .rx_pairs = rx_pairs_avx2,
    .hadamard_pairs = hadamard_pairs_avx2,
    .expectation = expectation_avx2,
    .expectation_u16 = expectation_u16_avx2,
    .norm_squared = norm_squared_avx2,
    .overlap = overlap_avx2,
};

const KernelsF32 avx2_kernels_f32 = {
    .phase = phase_avx2_f32,
    .phase_table = phase_table_avx2_f32,
    .phase_popcount = phase_popcount_avx2_f32,
    .phase_rx = phase_rx_avx2_f32,
    .rx_pairs = rx_pairs_avx2_f32,
    .hadamard_pairs = hadamard_pairs_avx2_f32,
    .expectation = expectation_avx2_f32,
    .expectation_u16 = expectation_u16_avx2_f32,
    .norm_squared = norm_squared_avx2_f32,
    .overlap = overlap_avx2_f32,
};

}  // namespace detail
}  // namespace simd
}  // namespace qokit

#else  // !QOKIT_SIMD_X86

// Scalar-only build: this family is absent and dispatch never selects it.
namespace qokit {
namespace simd {}
}  // namespace qokit

#endif  // QOKIT_SIMD_X86
