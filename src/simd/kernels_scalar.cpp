// Scalar kernel family: portable reference implementations of the block
// kernels in simd/kernels.hpp. These are the exact loops the simulators ran
// before the SIMD layer existed, reshaped into block-range form, and they
// double as the correctness oracle for the vectorized families (the parity
// suite asserts agreement within 1e-12 per amplitude).
#include <cmath>
#include <complex>

#include "common/bitops.hpp"
#include "simd/kernels.hpp"

namespace qokit {
namespace simd {
namespace {

void phase_scalar(cdouble* amp, const double* costs, std::uint64_t count,
                  double gamma) {
  for (std::uint64_t i = 0; i < count; ++i) {
    const double ang = -gamma * costs[i];
    amp[i] *= cdouble(std::cos(ang), std::sin(ang));
  }
}

void phase_table_scalar(cdouble* amp, const std::uint16_t* codes,
                        const cdouble* table, std::uint64_t count) {
  for (std::uint64_t i = 0; i < count; ++i) amp[i] *= table[codes[i]];
}

void phase_popcount_scalar(cdouble* amp, std::uint64_t index_base,
                           std::uint64_t count, const cdouble* table) {
  for (std::uint64_t i = 0; i < count; ++i)
    amp[i] *= table[popcount(index_base + i)];
}

void phase_rx_scalar(cdouble* amp, const double* costs, std::uint64_t count,
                     double gamma, double c, double s) {
  // Per adjacent pair: the exact statements of phase_scalar on both
  // amplitudes, then the exact qubit-0 update of rx_pairs_scalar — same
  // per-op rounding (this TU has no FMA contraction to drift), one pass.
  double* d = reinterpret_cast<double*>(amp);
  for (std::uint64_t k = 0; 2 * k < count; ++k) {
    for (std::uint64_t i = 2 * k; i < 2 * k + 2; ++i) {
      const double ang = -gamma * costs[i];
      amp[i] *= cdouble(std::cos(ang), std::sin(ang));
    }
    const std::uint64_t i0 = 4 * k;
    const double x0re = d[i0], x0im = d[i0 + 1];
    const double x1re = d[i0 + 2], x1im = d[i0 + 3];
    d[i0] = c * x0re + s * x1im;
    d[i0 + 1] = c * x0im - s * x1re;
    d[i0 + 2] = c * x1re + s * x0im;
    d[i0 + 3] = c * x1im - s * x0re;
  }
}

void rx_pairs_scalar(cdouble* x, int qubit, std::uint64_t kb, std::uint64_t ke,
                     double c, double s) {
  // e^{-i beta X}: y0 = c x0 - i s x1, y1 = -i s x0 + c x1. In real
  // arithmetic on re/im parts this is four FMAs per pair.
  double* d = reinterpret_cast<double*>(x);
  const std::uint64_t stride = 1ull << qubit;
  for (std::uint64_t k = kb; k < ke; ++k) {
    const std::uint64_t i0 = insert_zero_bit(k, qubit) << 1;
    const std::uint64_t i1 = i0 + (stride << 1);
    const double x0re = d[i0], x0im = d[i0 + 1];
    const double x1re = d[i1], x1im = d[i1 + 1];
    d[i0] = c * x0re + s * x1im;
    d[i0 + 1] = c * x0im - s * x1re;
    d[i1] = c * x1re + s * x0im;
    d[i1 + 1] = c * x1im - s * x0re;
  }
}

void hadamard_pairs_scalar(cdouble* x, int qubit, std::uint64_t kb,
                           std::uint64_t ke) {
  constexpr double kInvSqrt2 = 0.70710678118654752440;
  const std::uint64_t stride = 1ull << qubit;
  for (std::uint64_t k = kb; k < ke; ++k) {
    const std::uint64_t i0 = insert_zero_bit(k, qubit);
    const std::uint64_t i1 = i0 | stride;
    const cdouble x0 = x[i0];
    const cdouble x1 = x[i1];
    x[i0] = (x0 + x1) * kInvSqrt2;
    x[i1] = (x0 - x1) * kInvSqrt2;
  }
}

double expectation_scalar(const cdouble* amp, const double* costs,
                          std::uint64_t count) {
  double acc = 0.0;
  for (std::uint64_t i = 0; i < count; ++i)
    acc += std::norm(amp[i]) * costs[i];
  return acc;
}

double expectation_u16_scalar(const cdouble* amp, const std::uint16_t* codes,
                              double offset, double scale,
                              std::uint64_t count) {
  double acc = 0.0;
  for (std::uint64_t i = 0; i < count; ++i)
    acc += std::norm(amp[i]) * (offset + scale * codes[i]);
  return acc;
}

double norm_squared_scalar(const cdouble* amp, std::uint64_t count) {
  double acc = 0.0;
  for (std::uint64_t i = 0; i < count; ++i) acc += std::norm(amp[i]);
  return acc;
}

double overlap_scalar(const cdouble* amp, const double* costs,
                      double threshold, std::uint64_t count) {
  double acc = 0.0;
  for (std::uint64_t i = 0; i < count; ++i)
    if (costs[i] <= threshold) acc += std::norm(amp[i]);
  return acc;
}

}  // namespace

namespace detail {

const Kernels scalar_kernels = {
    .phase = phase_scalar,
    .phase_table = phase_table_scalar,
    .phase_popcount = phase_popcount_scalar,
    .phase_rx = phase_rx_scalar,
    .rx_pairs = rx_pairs_scalar,
    .hadamard_pairs = hadamard_pairs_scalar,
    .expectation = expectation_scalar,
    .expectation_u16 = expectation_u16_scalar,
    .norm_squared = norm_squared_scalar,
    .overlap = overlap_scalar,
};

}  // namespace detail
}  // namespace simd
}  // namespace qokit
