// Scalar kernel family: portable reference implementations of the block
// kernels in simd/kernels.hpp, templated on the amplitude scalar. These are
// the exact loops the simulators ran before the SIMD layer existed,
// reshaped into block-range form, and they double as the correctness oracle
// for the vectorized families (the parity suite asserts agreement within
// 1e-12 per amplitude for f64, 2e-6 for f32).
//
// Precision containment: at T = float the phase angle and its sin/cos are
// still computed in double (one rounding on the narrow to float), the
// butterfly coefficients c/s narrow once before the loop, and every
// reduction accumulates in double — only the amplitude arithmetic itself
// runs at T.
#include <cmath>
#include <complex>
#include <type_traits>

#include "common/bitops.hpp"
#include "simd/kernels.hpp"

namespace qokit {
namespace simd {
namespace {

template <class T>
void phase_scalar(std::complex<T>* amp, const double* costs,
                  std::uint64_t count, double gamma) {
  for (std::uint64_t i = 0; i < count; ++i) {
    const double ang = -gamma * costs[i];
    amp[i] *= std::complex<T>(static_cast<T>(std::cos(ang)),
                              static_cast<T>(std::sin(ang)));
  }
}

template <class T>
void phase_table_scalar(std::complex<T>* amp, const std::uint16_t* codes,
                        const std::complex<T>* table, std::uint64_t count) {
  for (std::uint64_t i = 0; i < count; ++i) amp[i] *= table[codes[i]];
}

template <class T>
void phase_popcount_scalar(std::complex<T>* amp, std::uint64_t index_base,
                           std::uint64_t count, const std::complex<T>* table) {
  for (std::uint64_t i = 0; i < count; ++i)
    amp[i] *= table[popcount(index_base + i)];
}

template <class T>
void phase_rx_scalar(std::complex<T>* amp, const double* costs,
                     std::uint64_t count, double gamma, double c, double s) {
  // Per adjacent pair: the exact statements of phase_scalar on both
  // amplitudes, then the exact qubit-0 update of rx_pairs_scalar — same
  // per-op rounding (this TU has no FMA contraction to drift), one pass.
  T* d = reinterpret_cast<T*>(amp);
  const T tc = static_cast<T>(c);
  const T ts = static_cast<T>(s);
  for (std::uint64_t k = 0; 2 * k < count; ++k) {
    for (std::uint64_t i = 2 * k; i < 2 * k + 2; ++i) {
      const double ang = -gamma * costs[i];
      amp[i] *= std::complex<T>(static_cast<T>(std::cos(ang)),
                                static_cast<T>(std::sin(ang)));
    }
    const std::uint64_t i0 = 4 * k;
    const T x0re = d[i0], x0im = d[i0 + 1];
    const T x1re = d[i0 + 2], x1im = d[i0 + 3];
    d[i0] = tc * x0re + ts * x1im;
    d[i0 + 1] = tc * x0im - ts * x1re;
    d[i0 + 2] = tc * x1re + ts * x0im;
    d[i0 + 3] = tc * x1im - ts * x0re;
  }
}

template <class T>
void rx_pairs_scalar(std::complex<T>* x, int qubit, std::uint64_t kb,
                     std::uint64_t ke, double c, double s) {
  // e^{-i beta X}: y0 = c x0 - i s x1, y1 = -i s x0 + c x1. In real
  // arithmetic on re/im parts this is four FMAs per pair.
  T* d = reinterpret_cast<T*>(x);
  const T tc = static_cast<T>(c);
  const T ts = static_cast<T>(s);
  const std::uint64_t stride = 1ull << qubit;
  for (std::uint64_t k = kb; k < ke; ++k) {
    const std::uint64_t i0 = insert_zero_bit(k, qubit) << 1;
    const std::uint64_t i1 = i0 + (stride << 1);
    const T x0re = d[i0], x0im = d[i0 + 1];
    const T x1re = d[i1], x1im = d[i1 + 1];
    d[i0] = tc * x0re + ts * x1im;
    d[i0 + 1] = tc * x0im - ts * x1re;
    d[i1] = tc * x1re + ts * x0im;
    d[i1 + 1] = tc * x1im - ts * x0re;
  }
}

template <class T>
void hadamard_pairs_scalar(std::complex<T>* x, int qubit, std::uint64_t kb,
                           std::uint64_t ke) {
  constexpr T kInvSqrt2 = static_cast<T>(0.70710678118654752440);
  const std::uint64_t stride = 1ull << qubit;
  for (std::uint64_t k = kb; k < ke; ++k) {
    const std::uint64_t i0 = insert_zero_bit(k, qubit);
    const std::uint64_t i1 = i0 | stride;
    const std::complex<T> x0 = x[i0];
    const std::complex<T> x1 = x[i1];
    x[i0] = (x0 + x1) * kInvSqrt2;
    x[i1] = (x0 - x1) * kInvSqrt2;
  }
}

/// |amp[i]|^2 widened to double before the squares — the one sanctioned
/// pattern for touching f32 amplitudes in a reduction.
template <class T>
inline double norm_widened(const std::complex<T>& a) {
  if constexpr (std::is_same_v<T, double>) {
    return std::norm(a);
  } else {
    const double re = a.real(), im = a.imag();
    return re * re + im * im;
  }
}

template <class T>
double expectation_scalar(const std::complex<T>* amp, const double* costs,
                          std::uint64_t count) {
  double acc = 0.0;
  for (std::uint64_t i = 0; i < count; ++i)
    acc += norm_widened(amp[i]) * costs[i];
  return acc;
}

template <class T>
double expectation_u16_scalar(const std::complex<T>* amp,
                              const std::uint16_t* codes, double offset,
                              double scale, std::uint64_t count) {
  double acc = 0.0;
  for (std::uint64_t i = 0; i < count; ++i)
    acc += norm_widened(amp[i]) * (offset + scale * codes[i]);
  return acc;
}

template <class T>
double norm_squared_scalar(const std::complex<T>* amp, std::uint64_t count) {
  double acc = 0.0;
  for (std::uint64_t i = 0; i < count; ++i) acc += norm_widened(amp[i]);
  return acc;
}

template <class T>
double overlap_scalar(const std::complex<T>* amp, const double* costs,
                      double threshold, std::uint64_t count) {
  double acc = 0.0;
  for (std::uint64_t i = 0; i < count; ++i)
    if (costs[i] <= threshold) acc += norm_widened(amp[i]);
  return acc;
}

}  // namespace

namespace detail {

const Kernels scalar_kernels = {
    .phase = phase_scalar<double>,
    .phase_table = phase_table_scalar<double>,
    .phase_popcount = phase_popcount_scalar<double>,
    .phase_rx = phase_rx_scalar<double>,
    .rx_pairs = rx_pairs_scalar<double>,
    .hadamard_pairs = hadamard_pairs_scalar<double>,
    .expectation = expectation_scalar<double>,
    .expectation_u16 = expectation_u16_scalar<double>,
    .norm_squared = norm_squared_scalar<double>,
    .overlap = overlap_scalar<double>,
};

const KernelsF32 scalar_kernels_f32 = {
    .phase = phase_scalar<float>,
    .phase_table = phase_table_scalar<float>,
    .phase_popcount = phase_popcount_scalar<float>,
    .phase_rx = phase_rx_scalar<float>,
    .rx_pairs = rx_pairs_scalar<float>,
    .hadamard_pairs = hadamard_pairs_scalar<float>,
    .expectation = expectation_scalar<float>,
    .expectation_u16 = expectation_u16_scalar<float>,
    .norm_squared = norm_squared_scalar<float>,
    .overlap = overlap_scalar<float>,
};

}  // namespace detail
}  // namespace simd
}  // namespace qokit
