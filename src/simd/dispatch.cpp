// Kernel dispatch + parallel decomposition. The public simd:: entry points
// split work into fixed kSimdBlock-element blocks (identical for Serial and
// Parallel execution) and drive the active kernel family over each block;
// reduction partials are combined sequentially in block order. This is the
// single place where Exec policy, OpenMP, and the dispatch level meet — the
// kernel families themselves are branch-free straight-line loops.
//
// Both amplitude precisions share one set of templated drivers: the block
// grid is the same element count at either width, so the deterministic
// decomposition (and the Serial==Parallel bit-identity it buys) holds per
// precision by the same argument.
#include "simd/kernels.hpp"

#include "obs/obs.hpp"

namespace qokit {
namespace simd {

namespace detail {

const Kernels& active_kernels() noexcept {
#if QOKIT_SIMD_X86
  if (active_simd_level() == SimdLevel::Avx2) return avx2_kernels;
#endif
  return scalar_kernels;
}

const KernelsF32& active_kernels_f32() noexcept {
#if QOKIT_SIMD_X86
  if (active_simd_level() == SimdLevel::Avx2) return avx2_kernels_f32;
#endif
  return scalar_kernels_f32;
}

}  // namespace detail

namespace {

/// Count one dispatch-entry call against the active kernel family.
/// Incremented at entry -- before the block decomposition -- so the totals
/// are identical for Serial and Parallel execution of the same workload.
void count_kernel_call() {
  if (!obs::enabled()) return;
  static const obs::Counter scalar_calls =
      obs::counter("qokit_kernel_calls_scalar_total");
  static const obs::Counter avx2_calls =
      obs::counter("qokit_kernel_calls_avx2_total");
  static const obs::Gauge level = obs::gauge("qokit_simd_level");
  const bool avx2 = active_simd_level() == SimdLevel::Avx2;
  (avx2 ? avx2_calls : scalar_calls).add();
  level.set(avx2 ? 1.0 : 0.0);
}

/// Family selection by amplitude scalar.
template <class T>
const detail::KernelsT<T>& active() noexcept;
template <>
const detail::KernelsT<double>& active<double>() noexcept {
  return detail::active_kernels();
}
template <>
const detail::KernelsT<float>& active<float>() noexcept {
  return detail::active_kernels_f32();
}

// --------------------------------------------------- templated drivers

template <class T>
void phase_impl(std::complex<T>* amp, const double* costs,
                std::uint64_t count, double gamma, Exec exec) {
  count_kernel_call();
  const detail::KernelsT<T>& k = active<T>();
  parallel_for_blocks(exec, static_cast<std::int64_t>(count), kSimdBlock,
                      [&](std::int64_t b, std::int64_t e) {
                        k.phase(amp + b, costs + b,
                                static_cast<std::uint64_t>(e - b), gamma);
                      });
}

template <class T>
void phase_table_impl(std::complex<T>* amp, const std::uint16_t* codes,
                      const std::complex<T>* table, std::uint64_t count,
                      Exec exec) {
  count_kernel_call();
  const detail::KernelsT<T>& k = active<T>();
  parallel_for_blocks(exec, static_cast<std::int64_t>(count), kSimdBlock,
                      [&](std::int64_t b, std::int64_t e) {
                        k.phase_table(amp + b, codes + b, table,
                                      static_cast<std::uint64_t>(e - b));
                      });
}

template <class T>
void phase_popcount_impl(std::complex<T>* amp, std::uint64_t index_base,
                         std::uint64_t count, const std::complex<T>* table,
                         Exec exec) {
  count_kernel_call();
  const detail::KernelsT<T>& k = active<T>();
  parallel_for_blocks(exec, static_cast<std::int64_t>(count), kSimdBlock,
                      [&](std::int64_t b, std::int64_t e) {
                        k.phase_popcount(amp + b, index_base + b,
                                         static_cast<std::uint64_t>(e - b),
                                         table);
                      });
}

template <class T>
void rx_impl(std::complex<T>* x, std::uint64_t n_amps, int qubit, double c,
             double s, Exec exec) {
  count_kernel_call();
  const detail::KernelsT<T>& k = active<T>();
  parallel_for_blocks(exec, static_cast<std::int64_t>(n_amps >> 1),
                      kSimdBlock, [&](std::int64_t b, std::int64_t e) {
                        k.rx_pairs(x, qubit, static_cast<std::uint64_t>(b),
                                   static_cast<std::uint64_t>(e), c, s);
                      });
}

template <class T>
void hadamard_impl(std::complex<T>* x, std::uint64_t n_amps, int qubit,
                   Exec exec) {
  count_kernel_call();
  const detail::KernelsT<T>& k = active<T>();
  parallel_for_blocks(exec, static_cast<std::int64_t>(n_amps >> 1),
                      kSimdBlock, [&](std::int64_t b, std::int64_t e) {
                        k.hadamard_pairs(x, qubit,
                                         static_cast<std::uint64_t>(b),
                                         static_cast<std::uint64_t>(e));
                      });
}

template <class T>
double expectation_slice_impl(const std::complex<T>* amp, const double* costs,
                              std::uint64_t count, Exec exec) {
  count_kernel_call();
  const detail::KernelsT<T>& k = active<T>();
  // kReduceBlock (not kSimdBlock): the same decomposition the pipeline's
  // fused final-pass reduction reproduces — see parallel.hpp.
  return parallel_reduce_blocks(
      exec, static_cast<std::int64_t>(count), kReduceBlock,
      [&](std::int64_t b, std::int64_t e) {
        return k.expectation(amp + b, costs + b,
                             static_cast<std::uint64_t>(e - b));
      });
}

template <class T>
double expectation_u16_impl(const std::complex<T>* amp,
                            const std::uint16_t* codes, double offset,
                            double scale, std::uint64_t count, Exec exec) {
  count_kernel_call();
  const detail::KernelsT<T>& k = active<T>();
  return parallel_reduce_blocks(
      exec, static_cast<std::int64_t>(count), kReduceBlock,
      [&](std::int64_t b, std::int64_t e) {
        return k.expectation_u16(amp + b, codes + b, offset, scale,
                                 static_cast<std::uint64_t>(e - b));
      });
}

template <class T>
double norm_squared_impl(const std::complex<T>* amp, std::uint64_t count,
                         Exec exec) {
  count_kernel_call();
  const detail::KernelsT<T>& k = active<T>();
  return parallel_reduce_blocks(
      exec, static_cast<std::int64_t>(count), kSimdBlock,
      [&](std::int64_t b, std::int64_t e) {
        return k.norm_squared(amp + b, static_cast<std::uint64_t>(e - b));
      });
}

template <class T>
double overlap_ground_impl(const std::complex<T>* amp, const double* costs,
                           double threshold, std::uint64_t count, Exec exec) {
  count_kernel_call();
  const detail::KernelsT<T>& k = active<T>();
  return parallel_reduce_blocks(
      exec, static_cast<std::int64_t>(count), kSimdBlock,
      [&](std::int64_t b, std::int64_t e) {
        return k.overlap(amp + b, costs + b, threshold,
                         static_cast<std::uint64_t>(e - b));
      });
}

}  // namespace

void apply_phase_slice(cdouble* amp, const double* costs, std::uint64_t count,
                       double gamma, Exec exec) {
  phase_impl(amp, costs, count, gamma, exec);
}
void apply_phase_slice(cfloat* amp, const double* costs, std::uint64_t count,
                       double gamma, Exec exec) {
  phase_impl(amp, costs, count, gamma, exec);
}

void apply_phase_table(cdouble* amp, const std::uint16_t* codes,
                       const cdouble* table, std::uint64_t count, Exec exec) {
  phase_table_impl(amp, codes, table, count, exec);
}
void apply_phase_table(cfloat* amp, const std::uint16_t* codes,
                       const cfloat* table, std::uint64_t count, Exec exec) {
  phase_table_impl(amp, codes, table, count, exec);
}

void apply_phase_popcount(cdouble* amp, std::uint64_t index_base,
                          std::uint64_t count, const cdouble* table,
                          Exec exec) {
  phase_popcount_impl(amp, index_base, count, table, exec);
}
void apply_phase_popcount(cfloat* amp, std::uint64_t index_base,
                          std::uint64_t count, const cfloat* table,
                          Exec exec) {
  phase_popcount_impl(amp, index_base, count, table, exec);
}

void rx(cdouble* x, std::uint64_t n_amps, int qubit, double c, double s,
        Exec exec) {
  rx_impl(x, n_amps, qubit, c, s, exec);
}
void rx(cfloat* x, std::uint64_t n_amps, int qubit, double c, double s,
        Exec exec) {
  rx_impl(x, n_amps, qubit, c, s, exec);
}

void hadamard(cdouble* x, std::uint64_t n_amps, int qubit, Exec exec) {
  hadamard_impl(x, n_amps, qubit, exec);
}
void hadamard(cfloat* x, std::uint64_t n_amps, int qubit, Exec exec) {
  hadamard_impl(x, n_amps, qubit, exec);
}

double expectation_slice(const cdouble* amp, const double* costs,
                         std::uint64_t count, Exec exec) {
  return expectation_slice_impl(amp, costs, count, exec);
}
double expectation_slice(const cfloat* amp, const double* costs,
                         std::uint64_t count, Exec exec) {
  return expectation_slice_impl(amp, costs, count, exec);
}

double expectation_u16(const cdouble* amp, const std::uint16_t* codes,
                       double offset, double scale, std::uint64_t count,
                       Exec exec) {
  return expectation_u16_impl(amp, codes, offset, scale, count, exec);
}
double expectation_u16(const cfloat* amp, const std::uint16_t* codes,
                       double offset, double scale, std::uint64_t count,
                       Exec exec) {
  return expectation_u16_impl(amp, codes, offset, scale, count, exec);
}

double norm_squared(const cdouble* amp, std::uint64_t count, Exec exec) {
  return norm_squared_impl(amp, count, exec);
}
double norm_squared(const cfloat* amp, std::uint64_t count, Exec exec) {
  return norm_squared_impl(amp, count, exec);
}

double overlap_ground(const cdouble* amp, const double* costs,
                      double threshold, std::uint64_t count, Exec exec) {
  return overlap_ground_impl(amp, costs, threshold, count, exec);
}
double overlap_ground(const cfloat* amp, const double* costs,
                      double threshold, std::uint64_t count, Exec exec) {
  return overlap_ground_impl(amp, costs, threshold, count, exec);
}

}  // namespace simd
}  // namespace qokit
