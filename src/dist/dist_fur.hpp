// Distributed QAOA fast simulator (paper Sec. III-C, Algorithm 4).
//
// The 2^n statevector is sharded across K virtual ranks into contiguous
// slices of 2^(n - log2 K) amplitudes; rank r owns global indices
// [r * 2^(n-g), (r+1) * 2^(n-g)) with g = log2 K, i.e. the top g qubits
// are "global" (encoded in the rank index) and the low n-g are "local".
// Per layer each rank applies the phase multiply against its precomputed
// diagonal slice, runs the fused X-mixer on the local qubits, and the
// global qubits are handled by the alltoall qubit reordering: one block
// exchange swaps qubit ranges [n-2g, n-g) and [n-g, n), making the former
// global qubits local so the same in-place kernel can mix them, and a
// second exchange restores the canonical ordering. Requires n >= 2 log2 K.
#pragma once

#include <memory>
#include <span>

#include "diagonal/cost_diagonal.hpp"
#include "dist/communicator.hpp"
#include "fur/simulator.hpp"
#include "statevector/state.hpp"
#include "terms/term.hpp"

namespace qokit {

namespace dist {

// The phase operator needs no distributed counterpart: the diagonal is
// sharded the same way as the state, so ranks call the shared
// apply_phase_slice kernel (diagonal/ops.hpp) on their own slice.

/// Distributed transverse-field mixer e^{-i beta sum X} over a sharded
/// state (the mixer step of Algorithm 4). `local` is this rank's slice of
/// `local_size` = 2^(num_qubits - log2 K) amplitudes. Mixes the local
/// qubits in place, then performs alltoall -> mix former-global qubits ->
/// alltoall to cover the global ones. Collective: every rank of `comm`
/// must call with the same num_qubits and beta.
void apply_mixer_x(Communicator& comm, cdouble* local,
                   std::uint64_t local_size, int num_qubits, double beta);
void apply_mixer_x(Communicator& comm, cfloat* local,
                   std::uint64_t local_size, int num_qubits, double beta);

/// <C> contribution of one local slice: sum_i |amp_i|^2 costs_i, reduced
/// over all ranks; every rank returns the same total. The per-slice
/// partial and the allreduce are double at both amplitude precisions.
double expectation_slice(Communicator& comm, const cdouble* local,
                         const double* costs, std::uint64_t count);
double expectation_slice(Communicator& comm, const cfloat* local,
                         const double* costs, std::uint64_t count);

}  // namespace dist

/// Construction-time options for DistributedFurSimulator.
struct DistConfig {
  int ranks = 2;  ///< virtual rank count K; must be a power of two
  AlltoallStrategy strategy = AlltoallStrategy::Staged;
  /// Fused layer execution on the rank-local slices (phase fused into the
  /// first local mixer sweep, tiled butterflies between the alltoall
  /// reorders); bit-identical to the unfused per-rank loop.
  pipeline::PipelineOptions pipeline{};
  /// Amplitude scalar width for the sharded state. F32 halves both the
  /// per-rank slice memory and every alltoall's exchanged bytes; the
  /// diagonal and the allreduce stay double.
  Precision prec = Precision::F64;
};

/// Algorithm 4 on K virtual ranks. Drop-in replacement for
/// FurQaoaSimulator (same base interface, matches it to fp tolerance);
/// X mixer only, as in the paper's distributed implementation.
class DistributedFurSimulator final : public QaoaFastSimulatorBase {
 public:
  /// Precomputes the cost diagonal slice-by-slice across the ranks.
  /// Throws std::invalid_argument if cfg.ranks is not a power of two or
  /// if 2 * log2(ranks) > n (a rank must own at least as many local
  /// qubits as there are global ones for the reordering to fit).
  explicit DistributedFurSimulator(const TermList& terms, DistConfig cfg = {});

  int num_qubits() const override { return diag_.num_qubits(); }
  Precision precision() const override { return cfg_.prec; }
  StateVector initial_state() const override;
  StateVector simulate_qaoa_from(StateVector state,
                                 std::span<const double> gammas,
                                 std::span<const double> betas) const override;
  using QaoaFastSimulatorBase::get_expectation;  // keep the costs overloads
  using QaoaFastSimulatorBase::get_overlap;
  double get_expectation(const StateVector& result) const override;
  double get_overlap(const StateVector& result,
                     int restrict_weight = -1) const override;
  const CostDiagonal& get_cost_diagonal() const override { return diag_; }

  /// The K rank threads are the parallelism here; tell batch engines not
  /// to stack an outer schedule team on top of them.
  bool prefers_sequential_batches() const override { return cfg_.ranks > 1; }

  /// Simulate and reduce <C> without gathering the state: each rank
  /// scores its own slice and the total comes back through one
  /// allreduce -- the objective-evaluation path of the paper's
  /// distributed optimization runs.
  double simulate_and_expectation(std::span<const double> gammas,
                                  std::span<const double> betas) const;

  const DistConfig& config() const { return cfg_; }
  /// log2 of the rank count: how many qubits live in the rank index.
  int global_qubits() const { return log2_ranks_; }

  /// The fused plan each rank runs on its local slice (built once, for
  /// the local qubit count); inactive when the pipeline is disabled.
  const pipeline::LayerPlan& layer_plan() const { return local_plan_; }

 private:
  DistConfig cfg_;
  int log2_ranks_;
  VirtualRankWorld world_;
  CostDiagonal diag_;
  pipeline::LayerPlan local_plan_;
  /// Butterfly-only plan for the post-alltoall mix of the swapped-in
  /// global qubits (local positions [nl - g, nl)); built once alongside
  /// local_plan_ so the tiling rules have one home (LayerPlan).
  pipeline::LayerPlan global_sweep_plan_;
};

/// Factory matching choose_simulator's shape for the distributed backend.
std::unique_ptr<QaoaFastSimulatorBase> choose_simulator_distributed(
    const TermList& terms, int ranks,
    AlltoallStrategy strategy = AlltoallStrategy::Staged);

}  // namespace qokit
