// The three alltoall transports (see alltoall.hpp for the model each one
// corresponds to). All operate on the same window table published in
// WorldState and realize the same permutation: rank r block b ends up
// holding what rank b held in block r.
#include "dist/alltoall.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "dist/communicator.hpp"
#include "obs/obs.hpp"

namespace qokit {

std::string_view to_string(AlltoallStrategy strategy) {
  switch (strategy) {
    case AlltoallStrategy::Staged:
      return "staged";
    case AlltoallStrategy::Pairwise:
      return "pairwise";
    case AlltoallStrategy::Direct:
      return "direct";
  }
  throw std::logic_error("to_string: unknown AlltoallStrategy");
}

AlltoallStrategy alltoall_strategy_from_string(std::string_view name) {
  if (name == "staged") return AlltoallStrategy::Staged;
  if (name == "pairwise") return AlltoallStrategy::Pairwise;
  if (name == "direct") return AlltoallStrategy::Direct;
  throw std::invalid_argument("unknown alltoall strategy '" +
                              std::string(name) + "'");
}

namespace {

using detail::WorldState;

/// Per-transport instrumentation: calls / exchanged bytes / barrier rounds
/// counters plus a histogram of time this rank spent waiting at barriers
/// (the load-imbalance signal). One set per transport so a mixed workload
/// stays attributable.
struct TransportMetrics {
  obs::Counter calls;
  obs::Counter bytes;
  obs::Counter rounds;
  obs::Histogram wait_ns;
};

const TransportMetrics& transport_metrics(AlltoallStrategy strategy) {
  static const TransportMetrics staged{
      obs::counter("qokit_alltoall_staged_calls_total"),
      obs::counter("qokit_alltoall_staged_bytes_total"),
      obs::counter("qokit_alltoall_staged_rounds_total"),
      obs::histogram("qokit_alltoall_staged_wait_ns")};
  static const TransportMetrics pairwise{
      obs::counter("qokit_alltoall_pairwise_calls_total"),
      obs::counter("qokit_alltoall_pairwise_bytes_total"),
      obs::counter("qokit_alltoall_pairwise_rounds_total"),
      obs::histogram("qokit_alltoall_pairwise_wait_ns")};
  static const TransportMetrics direct{
      obs::counter("qokit_alltoall_direct_calls_total"),
      obs::counter("qokit_alltoall_direct_bytes_total"),
      obs::counter("qokit_alltoall_direct_rounds_total"),
      obs::histogram("qokit_alltoall_direct_wait_ns")};
  switch (strategy) {
    case AlltoallStrategy::Staged: return staged;
    case AlltoallStrategy::Pairwise: return pairwise;
    default: return direct;
  }
}

/// Barrier arrival that accumulates this rank's wait time into *wait_ns
/// when observability is on (wait_ns == nullptr otherwise — the barrier
/// call itself is then untouched).
void barrier_wait(WorldState& st, std::uint64_t* wait_ns) {
  if (!wait_ns) {
    st.barrier.arrive_and_wait();
    return;
  }
  const auto t0 = std::chrono::steady_clock::now();
  st.barrier.arrive_and_wait();
  *wait_ns += static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

/// MPI_Alltoall model: scatter into a central staging buffer laid out
/// destination-major, then every rank reads its row back contiguously.
/// Two full copies of the exchanged data. Templated on the amplitude type
/// (staging is a byte buffer sized in elements of C, so the f32 exchange
/// stages half the bytes).
template <class C>
void alltoall_staged(WorldState& st, int rank, C* buf, std::uint64_t block,
                     std::uint64_t* wait_ns) {
  const int k = st.size;
  const std::uint64_t total =
      static_cast<std::uint64_t>(k) * k * block * sizeof(C);
  // Entry barrier doubles as the guard that every rank has finished reading
  // the staging buffer from any previous exchange before rank 0 regrows it.
  barrier_wait(st, wait_ns);
  if (rank == 0 && st.staging.size() < total) st.staging.resize(total);
  barrier_wait(st, wait_ns);
  // If any rank died (in particular rank 0, which owns the resize above),
  // the staging buffer cannot be trusted; abandon the exchange and let
  // run() re-throw after the join.
  if (st.failed.load(std::memory_order_acquire)) return;
  // vector<std::byte>'s allocation carries operator-new alignment (>=
  // alignof(C) for both amplitude types), so the element view is valid.
  C* stage = reinterpret_cast<C*>(st.staging.data());
  // staging[(dest * k + src) * block .. ] = src's block dest.
  for (int b = 0; b < k; ++b)
    std::copy_n(buf + static_cast<std::uint64_t>(b) * block, block,
                stage + (static_cast<std::uint64_t>(b) * k + rank) * block);
  barrier_wait(st, wait_ns);
  // My row is contiguous: block b = what rank b sent to me.
  std::copy_n(stage + static_cast<std::uint64_t>(rank) * k * block,
              static_cast<std::uint64_t>(k) * block, buf);
  barrier_wait(st, wait_ns);
}

/// GPU p2p model: K-1 XOR-scheduled rounds of direct block swaps. In round
/// s the pair (r, r^s) swaps r's block r^s with (r^s)'s block r; the lower
/// rank performs the swap while the higher one holds at the round barrier.
/// Each block is touched in exactly one round, so the rounds compose into
/// the full transpose with a single copy per element.
template <class C>
void alltoall_pairwise(WorldState& st, int rank, C* buf, std::uint64_t block,
                       std::uint64_t* wait_ns) {
  const int k = st.size;
  st.windows[rank] = buf;
  barrier_wait(st, wait_ns);
  for (int s = 1; s < k; ++s) {
    // A peer that threw never (re)published its window; abandon the
    // exchange rather than swap through a stale or null pointer. run()
    // re-throws the peer's exception once the team joins.
    if (st.failed.load(std::memory_order_acquire)) return;
    const int peer = rank ^ s;
    if (rank < peer) {
      C* mine = buf + static_cast<std::uint64_t>(peer) * block;
      C* theirs = static_cast<C*>(st.windows[peer]) +
                  static_cast<std::uint64_t>(rank) * block;
      std::swap_ranges(mine, mine + block, theirs);
    }
    barrier_wait(st, wait_ns);
  }
}

/// One-sided RDMA model: every rank publishes a receive slice and each
/// peer writes its outgoing block straight into it; one remote write plus
/// one local copy back into the live buffer.
template <class C>
void alltoall_direct(WorldState& st, int rank, C* buf, std::uint64_t block,
                     std::vector<std::byte>& recv, std::uint64_t* wait_ns) {
  const int k = st.size;
  const std::uint64_t count = static_cast<std::uint64_t>(k) * block;
  recv.resize(count * sizeof(C));
  st.windows[rank] = recv.data();
  barrier_wait(st, wait_ns);
  // See alltoall_pairwise: never write into a dead rank's window.
  if (st.failed.load(std::memory_order_acquire)) return;
  for (int b = 0; b < k; ++b)
    std::copy_n(buf + static_cast<std::uint64_t>(b) * block, block,
                static_cast<C*>(st.windows[b]) +
                    static_cast<std::uint64_t>(rank) * block);
  barrier_wait(st, wait_ns);
  std::copy_n(reinterpret_cast<const C*>(recv.data()), count, buf);
  // Exit barrier: nobody re-publishes a window (next exchange) while a
  // peer is still draining its receive slice.
  barrier_wait(st, wait_ns);
}

/// Shared body of the two public alltoall overloads: instrumentation plus
/// transport dispatch, with xfer_bytes charged at the actual element width.
template <class C>
void alltoall_impl(WorldState& st, int rank, std::vector<std::byte>& recv,
                   C* buf, std::uint64_t block) {
  if (st.size == 1) return;  // self-exchange is the identity
  const bool observed = obs::enabled();
  const int k = st.size;
  const std::uint64_t xfer_bytes =
      static_cast<std::uint64_t>(k) * block * sizeof(C);
  obs::Span span("alltoall");
  std::uint64_t wait_acc = 0;
  std::uint64_t* wait_ns = nullptr;
  const TransportMetrics* m = nullptr;
  if (observed) {
    m = &transport_metrics(st.strategy);
    m->calls.add();
    m->bytes.add(xfer_bytes);
    // Barrier-synchronized communication rounds per call: staged does a
    // scatter and a gather, pairwise one swap round per peer, direct one
    // one-sided write phase.
    m->rounds.add(st.strategy == AlltoallStrategy::Pairwise
                      ? static_cast<std::uint64_t>(k - 1)
                      : st.strategy == AlltoallStrategy::Staged ? 2 : 1);
    span.attr("transport", to_string(st.strategy).data());
    span.attr("bytes", xfer_bytes);
    span.attr("ranks", k);
    wait_ns = &wait_acc;
  }
  switch (st.strategy) {
    case AlltoallStrategy::Staged:
      alltoall_staged(st, rank, buf, block, wait_ns);
      break;
    case AlltoallStrategy::Pairwise:
      alltoall_pairwise(st, rank, buf, block, wait_ns);
      break;
    case AlltoallStrategy::Direct:
      alltoall_direct(st, rank, buf, block, recv, wait_ns);
      break;
    default:
      throw std::logic_error("alltoall: unknown strategy");
  }
  if (observed) m->wait_ns.record(wait_acc);
}

}  // namespace

void Communicator::alltoall(cdouble* buf, std::uint64_t block) {
  alltoall_impl(*state_, rank_, recv_, buf, block);
}

void Communicator::alltoall(cfloat* buf, std::uint64_t block) {
  alltoall_impl(*state_, rank_, recv_, buf, block);
}

}  // namespace qokit
