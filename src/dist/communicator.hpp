// Virtual-rank execution world for the distributed simulator (paper
// Sec. III-C). K virtual ranks stand in for the paper's GPUs/MPI ranks:
// each rank is a thread owning one 2^(n - log2 K)-amplitude slice of the
// state vector, and cross-rank traffic goes through the Communicator's
// collectives exactly where a production deployment would place
// MPI_Alltoall / cuStateVec p2p calls (see DESIGN.md for the mapping).
#pragma once

#include <atomic>
#include <barrier>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "dist/alltoall.hpp"
#include "statevector/state.hpp"

namespace qokit {

namespace detail {

/// Shared state of one world.run() invocation: the rendezvous barrier plus
/// the exchange windows ranks publish into. Everything cross-thread is
/// synchronized by the barrier (arrive_and_wait has acquire/release
/// semantics), so the raw pointers need no atomics. Deliberately
/// mutex-free: there is nothing here for common/sync.hpp to wrap, and
/// tools/lint/qokit_lint.py keeps it that way -- a future transport that
/// needs a lock (MPI progress thread, socket send queue) must take an
/// annotated qokit::Mutex so its discipline is compiler-checked from day
/// one.
struct WorldState {
  WorldState(int size, AlltoallStrategy strategy)
      : size(size),
        strategy(strategy),
        barrier(size),
        windows(static_cast<std::size_t>(size), nullptr),
        reduce_slots(static_cast<std::size_t>(size), 0.0) {}

  const int size;
  const AlltoallStrategy strategy;
  std::barrier<> barrier;
  /// Per-rank published pointer: the live buffer (Pairwise) or the receive
  /// slice (Direct) of each rank during an exchange. Untyped because an
  /// exchange moves whatever amplitude scalar the collective was called
  /// with (complex128 or complex64); all ranks of one exchange publish the
  /// same element type, restored by the transport before dereferencing.
  std::vector<void*> windows;
  /// Per-rank slots for allreduce_sum.
  std::vector<double> reduce_slots;
  /// Central gather buffer for the Staged transport; grown on demand by
  /// rank 0 between barriers. Byte-typed for the same reason as `windows`.
  std::vector<std::byte> staging;
  /// Set (before arrive_and_drop) by a rank whose closure threw. Window-
  /// touching transports check it after every barrier and bail out so
  /// survivors never dereference a dead rank's window; run() re-throws
  /// the original exception after the join.
  std::atomic<bool> failed{false};
};

}  // namespace detail

/// Per-rank handle passed to the closure of VirtualRankWorld::run. Mirrors
/// the slice of an MPI communicator a rank would see: identity, barrier,
/// and the two collectives Algorithm 4 needs.
class Communicator {
 public:
  int rank() const noexcept { return rank_; }
  int size() const noexcept { return state_->size; }

  /// Block until every rank has arrived.
  void barrier() { state_->barrier.arrive_and_wait(); }

  /// Sum `value` over all ranks; every rank receives the same total
  /// (summed in rank order, so the result is scheduling-independent).
  /// Safe to call repeatedly back-to-back.
  double allreduce_sum(double value);

  /// In-place block exchange over `buf`, which holds size() blocks of
  /// `block` complex amplitudes. Afterwards block b holds what rank b held
  /// in block rank(): the transpose that implements the paper's
  /// global<->local qubit reordering. All ranks must call collectively
  /// with the same `block` and the same element type (the f32 overload
  /// moves half the bytes — the distributed path's share of the
  /// mixed-precision bandwidth win). The transport is the world's
  /// strategy; all three produce bit-identical results.
  void alltoall(cdouble* buf, std::uint64_t block);
  void alltoall(cfloat* buf, std::uint64_t block);

 private:
  friend class VirtualRankWorld;
  Communicator(int rank, detail::WorldState* state)
      : rank_(rank), state_(state) {}

  int rank_;
  detail::WorldState* state_;
  std::vector<std::byte> recv_;  ///< Direct-transport receive slice
};

/// K virtual ranks (threads) executing one SPMD closure, K a power of two.
/// run() may be invoked any number of times; each invocation spawns a
/// fresh team with barrier semantics and joins it before returning. An
/// exception thrown by any rank is re-thrown (first rank wins) after the
/// team joins.
class VirtualRankWorld {
 public:
  /// Throws std::invalid_argument unless `size` is a power of two >= 1.
  VirtualRankWorld(int size, AlltoallStrategy strategy);

  int size() const noexcept { return size_; }
  AlltoallStrategy strategy() const noexcept { return strategy_; }

  /// Execute `fn` once per rank, in parallel, and join.
  void run(const std::function<void(Communicator&)>& fn) const;

 private:
  int size_;
  AlltoallStrategy strategy_;
};

}  // namespace qokit
