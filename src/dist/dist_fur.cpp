#include "dist/dist_fur.hpp"

#include <bit>
#include <cmath>
#include <stdexcept>
#include <string>

#include "common/aligned.hpp"
#include "common/bitops.hpp"
#include "diagonal/ops.hpp"
#include "fur/su2.hpp"
#include "obs/obs.hpp"
#include "pipeline/layer_exec.hpp"

namespace qokit {

namespace dist {
namespace {

// Shared body of the two apply_mixer_x overloads: the slice layout and
// exchange schedule are precision-independent; only the element width
// moving through kern::rx and the alltoall changes.
template <class C>
void apply_mixer_x_impl(Communicator& comm, C* local,
                        std::uint64_t local_size, int num_qubits,
                        double beta) {
  const int g = std::countr_zero(static_cast<unsigned>(comm.size()));
  const int nl = num_qubits - g;  // local qubits per rank
  if (nl < g)
    throw std::invalid_argument(
        "dist::apply_mixer_x: need num_qubits >= 2*log2(ranks)");
  if (local_size != dim_of(nl))
    throw std::invalid_argument("dist::apply_mixer_x: slice size mismatch");
  const double c = std::cos(beta);
  const double s = std::sin(beta);
  // Local qubits: the paper's in-place fused RX passes, unchanged on the
  // slice. Exec::Serial -- the K rank threads are the parallelism here.
  for (int q = 0; q < nl; ++q)
    kern::rx(local, local_size, q, c, s, Exec::Serial);
  if (g == 0) return;
  // Alltoall with block 2^(nl - g) swaps qubit ranges [nl-g, nl) and
  // [nl, n): the former global qubits land on the top g local positions.
  const std::uint64_t block = local_size >> g;
  comm.alltoall(local, block);
  for (int q = nl - g; q < nl; ++q)
    kern::rx(local, local_size, q, c, s, Exec::Serial);
  // The exchange is an involution; undo it to restore canonical qubit
  // order so diagonal slices stay valid for the next layer.
  comm.alltoall(local, block);
}

}  // namespace

void apply_mixer_x(Communicator& comm, cdouble* local,
                   std::uint64_t local_size, int num_qubits, double beta) {
  apply_mixer_x_impl(comm, local, local_size, num_qubits, beta);
}

void apply_mixer_x(Communicator& comm, cfloat* local,
                   std::uint64_t local_size, int num_qubits, double beta) {
  apply_mixer_x_impl(comm, local, local_size, num_qubits, beta);
}

double expectation_slice(Communicator& comm, const cdouble* local,
                         const double* costs, std::uint64_t count) {
  return comm.allreduce_sum(
      qokit::expectation_slice(local, costs, count, Exec::Serial));
}

double expectation_slice(Communicator& comm, const cfloat* local,
                         const double* costs, std::uint64_t count) {
  return comm.allreduce_sum(
      qokit::expectation_slice(local, costs, count, Exec::Serial));
}

}  // namespace dist

DistributedFurSimulator::DistributedFurSimulator(const TermList& terms,
                                                 DistConfig cfg)
    : cfg_(cfg),
      log2_ranks_(std::countr_zero(static_cast<unsigned>(
          cfg.ranks > 0 ? cfg.ranks : 1))),
      world_(cfg.ranks, cfg.strategy) {
  const int n = terms.num_qubits();
  if (2 * log2_ranks_ > n)
    throw std::invalid_argument(
        "DistributedFurSimulator: " + std::to_string(cfg.ranks) +
        " ranks need at least " + std::to_string(2 * log2_ranks_) +
        " qubits (2*log2 K), got " + std::to_string(n));
  // Distributed diagonal precompute: each rank fills its own slice, the
  // element-major kernel the paper runs once per problem on every
  // GPU/rank. Identical term order to CostDiagonal::precompute, so the
  // result is bit-identical to the single-node diagonal.
  obs::Span span("precompute");
  span.attr("n", n);
  span.attr("ranks", cfg_.ranks);
  aligned_vector<double> values(dim_of(n));
  double* out = values.data();
  const std::uint64_t local = values.size() >> log2_ranks_;
  world_.run([&](Communicator& comm) {
    const std::uint64_t base = static_cast<std::uint64_t>(comm.rank()) * local;
    for (std::uint64_t i = 0; i < local; ++i)
      out[base + i] = terms.evaluate(base + i);
  });
  diag_ = CostDiagonal::from_values(n, std::move(values));
  // Each rank's per-layer work is phase + X mixer on a 2^(n - g) slice:
  // plan it once for the local qubit count, plus a butterfly-only sweep
  // plan for the post-alltoall mix of the swapped-in global qubits.
  const int nl = n - log2_ranks_;
  local_plan_ = pipeline::LayerPlan::build(nl, MixerType::X,
                                           MixerBackend::Fused,
                                           cfg_.pipeline);
  global_sweep_plan_ = pipeline::LayerPlan::build_rx_sweep(
      nl, nl - log2_ranks_, nl, cfg_.pipeline);
}

StateVector DistributedFurSimulator::initial_state() const {
  return StateVector::plus_state(num_qubits(), cfg_.prec);
}

namespace {

/// One rank team's full schedule over the sharded amplitude array, at
/// either precision. Mirrors FurQaoaSimulator::simulate_qaoa_from's fused/
/// unfused split, per-rank and with Exec::Serial throughout (the K rank
/// threads are the parallelism).
template <class T>
void dist_schedule(const VirtualRankWorld& world,
                   const pipeline::LayerPlan& local_plan,
                   const pipeline::LayerPlan& global_sweep_plan,
                   std::complex<T>* data, std::uint64_t local,
                   const double* costs, int n, int g,
                   std::span<const double> gammas,
                   std::span<const double> betas) {
  world.run([&](Communicator& comm) {
    const std::uint64_t base = static_cast<std::uint64_t>(comm.rank()) * local;
    std::complex<T>* slice = data + base;
    const double* diag_slice = costs + base;
    if (local_plan.active()) {
      // Fused Algorithm 4: the rank-local phase + low-qubit mixing run as
      // tiled passes over the slice, and after the alltoall reorder the
      // swapped-in global qubits get the same strided tiling.
      const pipeline::PhaseCtxT<T> ctx{.costs = diag_slice};
      const std::uint64_t block = local >> g;
      for (std::size_t l = 0; l < gammas.size(); ++l) {
        pipeline::run_layer(local_plan, slice, local, ctx, gammas[l],
                            betas[l], Exec::Serial);
        if (g > 0) {
          comm.alltoall(slice, block);
          pipeline::run_sweep(global_sweep_plan, slice, local,
                              std::cos(betas[l]), std::sin(betas[l]),
                              Exec::Serial);
          comm.alltoall(slice, block);
        }
      }
      return;
    }
    // Algorithm 4, unfused (the pipeline's oracle): per layer one local
    // phase multiply against the cached slice and one distributed mixer
    // (local qubits in place, global ones through the alltoall
    // reordering).
    for (std::size_t l = 0; l < gammas.size(); ++l) {
      apply_phase_slice(slice, diag_slice, local, gammas[l], Exec::Serial);
      dist::apply_mixer_x(comm, slice, local, n, betas[l]);
    }
  });
}

}  // namespace

StateVector DistributedFurSimulator::simulate_qaoa_from(
    StateVector state, std::span<const double> gammas,
    std::span<const double> betas) const {
  if (gammas.size() != betas.size())
    throw std::invalid_argument("simulate_qaoa: gammas/betas length mismatch");
  if (state.num_qubits() != num_qubits())
    throw std::invalid_argument("simulate_qaoa: state size mismatch");
  obs::Span span("simulate");
  span.attr("n", num_qubits());
  span.attr("p", static_cast<std::int64_t>(gammas.size()));
  span.attr("ranks", cfg_.ranks);
  const std::uint64_t local = state.size() >> log2_ranks_;
  const double* costs = diag_.data();
  const int n = num_qubits();
  const int g = log2_ranks_;
  if (state.precision() == Precision::F32)
    dist_schedule(world_, local_plan_, global_sweep_plan_, state.data_f32(),
                  local, costs, n, g, gammas, betas);
  else
    dist_schedule(world_, local_plan_, global_sweep_plan_, state.data(),
                  local, costs, n, g, gammas, betas);
  // The slices live in one contiguous buffer and the exchange is undone
  // every layer, so the "gather" is free.
  return state;
}

double DistributedFurSimulator::simulate_and_expectation(
    std::span<const double> gammas, std::span<const double> betas) const {
  const StateVector state = simulate_qaoa(gammas, betas);
  // Score the evolved slices in place: each rank reduces its own slice and
  // the total comes back through one allreduce -- the state is never
  // traversed as a whole.
  const std::uint64_t local = state.size() >> log2_ranks_;
  const double* costs = diag_.data();
  double result = 0.0;
  if (state.precision() == Precision::F32) {
    const cfloat* data = state.data_f32();
    world_.run([&](Communicator& comm) {
      const std::uint64_t base =
          static_cast<std::uint64_t>(comm.rank()) * local;
      const double total =
          dist::expectation_slice(comm, data + base, costs + base, local);
      if (comm.rank() == 0) result = total;
    });
    return result;
  }
  const cdouble* data = state.data();
  world_.run([&](Communicator& comm) {
    const std::uint64_t base = static_cast<std::uint64_t>(comm.rank()) * local;
    const double total =
        dist::expectation_slice(comm, data + base, costs + base, local);
    if (comm.rank() == 0) result = total;
  });
  return result;
}

double DistributedFurSimulator::get_expectation(
    const StateVector& result) const {
  return expectation(result, diag_);
}

double DistributedFurSimulator::get_overlap(const StateVector& result,
                                            int restrict_weight) const {
  if (restrict_weight < 0) return overlap_ground(result, diag_);
  // Shared sector helper: identical semantics to FurQaoaSimulator by
  // construction (the distributed simulator itself only runs the X mixer).
  return overlap_ground_sector(result, diag_, restrict_weight);
}

std::unique_ptr<QaoaFastSimulatorBase> choose_simulator_distributed(
    const TermList& terms, int ranks, AlltoallStrategy strategy) {
  return std::make_unique<DistributedFurSimulator>(
      terms, DistConfig{.ranks = ranks, .strategy = strategy});
}

}  // namespace qokit
