#include "dist/communicator.hpp"

#include <exception>
#include <stdexcept>
#include <thread>

#include "common/bitops.hpp"
#include "obs/obs.hpp"

namespace qokit {

double Communicator::allreduce_sum(double value) {
  static const obs::Counter allreduces =
      obs::counter("qokit_allreduce_total");
  allreduces.add();
  auto& st = *state_;
  st.reduce_slots[rank_] = value;
  st.barrier.arrive_and_wait();
  // Every rank sums in rank order, so all ranks see the identical total
  // regardless of thread scheduling.
  double total = 0.0;
  for (int r = 0; r < st.size; ++r) total += st.reduce_slots[r];
  // Exit barrier so the slots can be re-published immediately afterwards.
  st.barrier.arrive_and_wait();
  return total;
}

VirtualRankWorld::VirtualRankWorld(int size, AlltoallStrategy strategy)
    : size_(size), strategy_(strategy) {
  if (size < 1 || (static_cast<unsigned>(size) &
                   (static_cast<unsigned>(size) - 1u)) != 0u)
    throw std::invalid_argument(
        "VirtualRankWorld: rank count must be a power of two >= 1, got " +
        std::to_string(size));
}

void VirtualRankWorld::run(const std::function<void(Communicator&)>& fn)
    const {
  detail::WorldState state(size_, strategy_);

  if (size_ == 1) {
    // Single rank: run inline; barriers over a one-thread team are no-ops
    // and exceptions propagate naturally.
    Communicator comm(0, &state);
    fn(comm);
    return;
  }

  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(size_));
  std::vector<std::thread> team;
  team.reserve(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r)
    team.emplace_back([&, r] {
      Communicator comm(r, &state);
      try {
        fn(comm);
      } catch (...) {
        errors[r] = std::current_exception();
        // Mark the world failed, then leave the barrier so surviving
        // ranks are released rather than deadlocked; they observe the
        // flag at their next barrier and abandon any exchange in flight.
        state.failed.store(true, std::memory_order_release);
        state.barrier.arrive_and_drop();
      }
    });
  for (auto& t : team) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
}

}  // namespace qokit
