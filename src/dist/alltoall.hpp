// Alltoall transport selection for the distributed simulator (paper
// Sec. III-C): the qubit-reordering exchange of Algorithm 4 is a K-rank
// block transpose, and the three strategies here model the three wirings
// the paper benchmarks against each other (Fig. 5).
//
//   Staged   -- every rank copies its K blocks into a central staging
//               buffer, then copies its destination row back out. Two full
//               copies of the state; models MPI_Alltoall through a host
//               staging area.
//   Pairwise -- K-1 XOR-scheduled rounds; in round s ranks r and r^s swap
//               block r^s of r with block r of r^s directly. One copy,
//               models cuStateVec-style GPU peer-to-peer swaps.
//   Direct   -- every rank writes each outgoing block straight into the
//               destination rank's receive slice (one remote write + one
//               local copy back); models one-sided RDMA puts.
//
// All three realize the identical permutation: after the exchange, rank
// r's block b holds what rank b held in block r. They are bit-identical
// in result and differ only in copy count and synchronization shape.
#pragma once

#include <string_view>

namespace qokit {

/// Which transport Communicator::alltoall uses. See file comment.
enum class AlltoallStrategy { Staged, Pairwise, Direct };

/// Human-readable transport name ("staged", "pairwise", "direct").
std::string_view to_string(AlltoallStrategy strategy);

/// Inverse of to_string; throws std::invalid_argument on unknown names.
AlltoallStrategy alltoall_strategy_from_string(std::string_view name);

}  // namespace qokit
