// Runtime CPU feature detection and the SIMD dispatch level.
//
// The vector kernel layer (src/simd/) is compiled at most twice: once as
// portable scalar C++ and once per instruction-set extension (currently
// AVX2+FMA on x86-64, guarded by the QOKIT_SIMD build option). Which copy
// runs is decided *once per process* from CPUID — not per call — so every
// backend (serial/threaded/u16/fwht/dist/batch) sees one consistent kernel
// family and results are deterministic per dispatch level.
#pragma once

namespace qokit {

// QOKIT_SIMD_X86 gates the AVX2 translation unit and the CPUID probe. It is
// on only when the build enabled QOKIT_SIMD *and* the target is x86-64; on
// any other combination the scalar kernels are the only ones in the binary.
#if defined(QOKIT_SIMD_ENABLED) && (defined(__x86_64__) || defined(_M_X64))
#define QOKIT_SIMD_X86 1
#else
#define QOKIT_SIMD_X86 0
#endif

/// Kernel families the binary can dispatch between. Numeric order is
/// "preference order": the highest supported level wins.
enum class SimdLevel { Scalar = 0, Avx2 = 1 };

/// Human-readable name ("scalar", "avx2") for logs and BENCH_simd.json.
const char* simd_level_name(SimdLevel level) noexcept;

/// True when the named level's kernels were compiled into this binary.
bool simd_level_compiled(SimdLevel level) noexcept;

/// Best level this *machine* supports among the compiled-in ones (CPUID
/// probe for AVX2+FMA). Does not consult the QOKIT_SIMD env override.
SimdLevel detect_simd_level() noexcept;

/// The level the dispatched kernels currently use. Initialized on first use
/// from detect_simd_level(), overridable down to scalar with the environment
/// variable QOKIT_SIMD=scalar (read once, at that first use).
SimdLevel active_simd_level() noexcept;

/// Test/bench hook: force the dispatch level for the whole process. Requests
/// for a level that is not compiled in or not supported by this machine are
/// clamped; the level actually installed is returned. Not intended for
/// concurrent use with running kernels (flip it between kernel calls only).
SimdLevel force_simd_level(SimdLevel level) noexcept;

}  // namespace qokit
