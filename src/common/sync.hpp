// Annotated synchronization primitives: the project's locking contracts,
// made compiler-checkable.
//
// Every mutex and condition variable in src/ goes through the wrappers in
// this header (enforced by tools/lint/qokit_lint.py; std::once_flag is the
// one std primitive that stays raw -- it carries no discipline to check).
// The wrappers carry Clang Thread Safety Analysis attributes, so a clang
// build with -Wthread-safety -Werror (the CMake default for clang; see the
// static-analysis CI leg) proves lock discipline on *all* paths -- not
// just the ones the TSan leg happens to execute:
//
//  - a member declared QOKIT_GUARDED_BY(mu_) cannot be read or written
//    without holding mu_,
//  - a function declared QOKIT_REQUIRES(mu_) cannot be called without it,
//  - a MutexLock cannot be leaked across a path that still needs the
//    capability, or double-acquired.
//
// On GCC/MSVC the attributes expand to nothing and the wrappers are
// zero-overhead shims over <mutex>/<condition_variable>; behavior is
// identical on every compiler, only the static proof is clang-only.
//
// Idioms the analysis rewards (see DESIGN.md "Static analysis &
// concurrency contracts" for the per-subsystem capability map):
//
//  - Guard with MutexLock, not manual lock()/unlock() pairs.
//  - Spell condition-variable waits as explicit loops
//        while (!predicate()) cv.wait(lock);
//    (a predicate lambda hides the guarded reads from the analysis, so
//    CondVar deliberately has no predicate overload).
//  - Name helper functions that expect the lock `*_locked` and annotate
//    them QOKIT_REQUIRES(mu_).
#pragma once

#include <condition_variable>
#include <mutex>

// ---------------------------------------------------------------- macros
// Thin spellings of clang's thread-safety attributes
// (https://clang.llvm.org/docs/ThreadSafetyAnalysis.html), no-ops
// elsewhere. QOKIT_TSA_* is the raw plumbing; use the named macros below.
#if defined(__clang__) && defined(__has_attribute)
#define QOKIT_TSA_HAS(x) __has_attribute(x)
#else
#define QOKIT_TSA_HAS(x) 0
#endif

#if QOKIT_TSA_HAS(capability)
#define QOKIT_TSA(x) __attribute__((x))
#else
#define QOKIT_TSA(x)
#endif

/// A type whose instances can be held/released (clang tracks each one).
#define QOKIT_CAPABILITY(name) QOKIT_TSA(capability(name))
/// A RAII type that acquires at construction and releases at destruction.
#define QOKIT_SCOPED_CAPABILITY QOKIT_TSA(scoped_lockable)
/// Data member readable/writable only while holding the named capability.
#define QOKIT_GUARDED_BY(x) QOKIT_TSA(guarded_by(x))
/// Pointer member whose *pointee* is guarded by the named capability.
#define QOKIT_PT_GUARDED_BY(x) QOKIT_TSA(pt_guarded_by(x))
/// Function that must be entered with the capability held (and leaves it
/// held). The `*_locked` helper idiom.
#define QOKIT_REQUIRES(...) QOKIT_TSA(requires_capability(__VA_ARGS__))
/// Function that acquires the capability (caller must not hold it).
#define QOKIT_ACQUIRE(...) QOKIT_TSA(acquire_capability(__VA_ARGS__))
/// Function that releases the capability (caller must hold it).
#define QOKIT_RELEASE(...) QOKIT_TSA(release_capability(__VA_ARGS__))
/// Function that acquires the capability iff it returns `val`.
#define QOKIT_TRY_ACQUIRE(val, ...) \
  QOKIT_TSA(try_acquire_capability(val, __VA_ARGS__))
/// Function that must be entered with the capability NOT held (deadlock
/// guard for self-locking public entry points).
#define QOKIT_EXCLUDES(...) QOKIT_TSA(locks_excluded(__VA_ARGS__))
/// Declared lock-ordering edge: this capability is acquired after `x`.
#define QOKIT_ACQUIRED_AFTER(...) QOKIT_TSA(acquired_after(__VA_ARGS__))
/// Function returning a reference to the named capability.
#define QOKIT_RETURN_CAPABILITY(x) QOKIT_TSA(lock_returned(x))
/// Escape hatch -- every use needs a comment saying why the analysis
/// cannot see the invariant that holds.
#define QOKIT_NO_THREAD_SAFETY_ANALYSIS QOKIT_TSA(no_thread_safety_analysis)

namespace qokit {

class CondVar;
class MutexLock;

// ---------------------------------------------------------------- Mutex
/// std::mutex carrying the "mutex" capability. Prefer MutexLock over the
/// raw lock()/unlock() members; they exist for the rare manual protocol
/// and for the analysis to model.
class QOKIT_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() QOKIT_ACQUIRE() { mu_.lock(); }
  void unlock() QOKIT_RELEASE() { mu_.unlock(); }
  bool try_lock() QOKIT_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class MutexLock;
  std::mutex mu_;
};

// ------------------------------------------------------------ MutexLock
/// RAII guard over a Mutex: acquires at construction, releases at
/// destruction. Relockable -- unlock()/lock() support the
/// build-outside-the-lock pattern (serve::SessionCache::checkout) with the
/// analysis tracking the held/released state across the gap. Replaces both
/// std::lock_guard and std::unique_lock.
class QOKIT_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) QOKIT_ACQUIRE(mu) : lock_(mu.mu_) {}
  ~MutexLock() QOKIT_RELEASE() {}

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

  /// Release early (the guarded section ends before scope does).
  void unlock() QOKIT_RELEASE() { lock_.unlock(); }
  /// Re-acquire after unlock().
  void lock() QOKIT_ACQUIRE() { lock_.lock(); }

 private:
  friend class CondVar;
  std::unique_lock<std::mutex> lock_;
};

// -------------------------------------------------------------- CondVar
/// std::condition_variable bound to the annotated lock type. wait() takes
/// the MutexLock (not the Mutex): the analysis keeps treating the
/// capability as held across the wait, which matches the caller-visible
/// contract -- the guarded predicate is only ever inspected under the
/// lock. No predicate overload on purpose: spell waits as
///     while (!predicate()) cv.wait(lock);
/// so the predicate's guarded reads stay visible to the analysis (a
/// lambda would hide them and trip -Wthread-safety).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically release `lock`, block, re-acquire before returning.
  void wait(MutexLock& lock) { cv_.wait(lock.lock_); }

  void notify_one() noexcept { cv_.notify_one(); }
  void notify_all() noexcept { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace qokit
