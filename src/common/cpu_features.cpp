#include "common/cpu_features.hpp"

#include <atomic>
#include <cctype>
#include <cstdlib>
#include <cstring>

namespace qokit {
namespace {

bool machine_has_avx2_fma() noexcept {
#if QOKIT_SIMD_X86 && (defined(__GNUC__) || defined(__clang__))
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

SimdLevel clamp_to_available(SimdLevel level) noexcept {
  if (level == SimdLevel::Avx2 &&
      (!simd_level_compiled(SimdLevel::Avx2) || !machine_has_avx2_fma()))
    return SimdLevel::Scalar;
  return level;
}

SimdLevel initial_level() noexcept {
  if (const char* env = std::getenv("QOKIT_SIMD")) {
    // Case-insensitive so QOKIT_SIMD=OFF (the CMake option's documented
    // spelling) works at runtime too.
    char folded[16] = {};
    for (int i = 0; i < 15 && env[i]; ++i)
      folded[i] = static_cast<char>(
          std::tolower(static_cast<unsigned char>(env[i])));
    if (std::strcmp(folded, "scalar") == 0 || std::strcmp(folded, "off") == 0 ||
        std::strcmp(folded, "0") == 0)
      return SimdLevel::Scalar;
  }
  return detect_simd_level();
}

// -1 = not yet initialized; otherwise a SimdLevel value. A relaxed atomic is
// enough: initialization is idempotent (every racer computes the same level),
// so this stays a lone atomic rather than a common/sync.hpp Mutex -- there
// is no multi-member invariant for a capability to guard.
std::atomic<int> g_active{-1};

}  // namespace

const char* simd_level_name(SimdLevel level) noexcept {
  switch (level) {
    case SimdLevel::Scalar: return "scalar";
    case SimdLevel::Avx2: return "avx2";
  }
  return "unknown";
}

bool simd_level_compiled(SimdLevel level) noexcept {
  if (level == SimdLevel::Scalar) return true;
#if QOKIT_SIMD_X86
  return level == SimdLevel::Avx2;
#else
  return false;
#endif
}

SimdLevel detect_simd_level() noexcept {
  return clamp_to_available(SimdLevel::Avx2);
}

SimdLevel active_simd_level() noexcept {
  int v = g_active.load(std::memory_order_relaxed);
  if (v < 0) {
    v = static_cast<int>(initial_level());
    g_active.store(v, std::memory_order_relaxed);
  }
  return static_cast<SimdLevel>(v);
}

SimdLevel force_simd_level(SimdLevel level) noexcept {
  const SimdLevel installed = clamp_to_available(level);
  g_active.store(static_cast<int>(installed), std::memory_order_relaxed);
  return installed;
}

}  // namespace qokit
