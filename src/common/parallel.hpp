// Thin OpenMP wrapper: every hot loop in qokit-cpp goes through
// parallel_for / parallel_reduce so serial-vs-threaded execution is a policy
// choice of the caller (the paper's `python` vs `c`/GPU simulator split).
// Compiles without OpenMP too (Exec::Parallel then degrades to serial), so
// the build treats OpenMP as an optimization, not a dependency.
#pragma once

#include <cstdint>

#if defined(_OPENMP)
#include <omp.h>
#define QOKIT_OMP_PRAGMA(directive) _Pragma(#directive)
#else
#define QOKIT_OMP_PRAGMA(directive)
#endif

namespace qokit {

/// Execution policy threaded through all kernels. `Serial` mirrors the
/// paper's portable reference simulator; `Parallel` the optimized one.
enum class Exec { Serial, Parallel };

/// Number of OpenMP threads a Parallel region will use.
inline int max_threads() {
#if defined(_OPENMP)
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Loops shorter than this run serially even under Exec::Parallel; OpenMP
/// team dispatch costs ~10us, so threading pays off only once a loop does
/// tens of thousands of element updates (important for gate-at-a-time
/// baselines, which dispatch per gate).
inline constexpr std::int64_t kParallelGrain = 1 << 15;

/// Apply `f(i)` for i in [begin, end).
template <class F>
void parallel_for(Exec exec, std::int64_t begin, std::int64_t end, F&& f) {
  if (end <= begin) return;
  if (exec == Exec::Serial || end - begin < kParallelGrain) {
    for (std::int64_t i = begin; i < end; ++i) f(i);
    return;
  }
  QOKIT_OMP_PRAGMA(omp parallel for schedule(static))
  for (std::int64_t i = begin; i < end; ++i) f(i);
}

/// Sum of `f(i)` for i in [begin, end).
template <class F>
double parallel_reduce_sum(Exec exec, std::int64_t begin, std::int64_t end,
                           F&& f) {
  double acc = 0.0;
  if (end <= begin) return acc;
  if (exec == Exec::Serial || end - begin < kParallelGrain) {
    for (std::int64_t i = begin; i < end; ++i) acc += f(i);
    return acc;
  }
  QOKIT_OMP_PRAGMA(omp parallel for schedule(static) reduction(+ : acc))
  for (std::int64_t i = begin; i < end; ++i) acc += f(i);
  return acc;
}

}  // namespace qokit
