// Thin OpenMP wrapper: every hot loop in qokit-cpp goes through
// parallel_for / parallel_reduce so serial-vs-threaded execution is a policy
// choice of the caller (the paper's `python` vs `c`/GPU simulator split).
// Compiles without OpenMP too (Exec::Parallel then degrades to serial), so
// the build treats OpenMP as an optimization, not a dependency.
#pragma once

#include <cstdint>
#include <vector>

#if defined(_OPENMP)
#include <omp.h>
#define QOKIT_OMP_PRAGMA(directive) _Pragma(#directive)
#else
#define QOKIT_OMP_PRAGMA(directive)
#endif

namespace qokit {

/// Execution policy threaded through all kernels. `Serial` mirrors the
/// paper's portable reference simulator; `Parallel` the optimized one.
enum class Exec { Serial, Parallel };

/// Number of OpenMP threads a Parallel region will use.
inline int max_threads() {
#if defined(_OPENMP)
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Loops shorter than this run serially even under Exec::Parallel; OpenMP
/// team dispatch costs ~10us, so threading pays off only once a loop does
/// tens of thousands of element updates (important for gate-at-a-time
/// baselines, which dispatch per gate).
inline constexpr std::int64_t kParallelGrain = 1 << 15;

/// Apply `f(i)` for i in [begin, end).
template <class F>
void parallel_for(Exec exec, std::int64_t begin, std::int64_t end, F&& f) {
  if (end <= begin) return;
  if (exec == Exec::Serial || end - begin < kParallelGrain) {
    for (std::int64_t i = begin; i < end; ++i) f(i);
    return;
  }
  QOKIT_OMP_PRAGMA(omp parallel for schedule(static))
  for (std::int64_t i = begin; i < end; ++i) f(i);
}

/// Block size (in elements) of the blocked loops below. One block of
/// complex doubles is 128 KiB — thousands of elements, so the
/// function-pointer call into the SIMD kernel layer is fully amortized,
/// while a butterfly pass (which blocks over 2^{n-1} pairs) still exposes
/// 16+ blocks to threads from n = 18 and elementwise passes from n = 17.
inline constexpr std::int64_t kSimdBlock = 1 << 13;

/// Block size of the *expectation* reductions (expectation_slice /
/// expectation_u16). Smaller than kSimdBlock because these blocks are also
/// the unit the pipeline's fused final-pass reduction emits: 2^10
/// amplitudes divide every pipeline tile and strided chunk whose
/// width_log2 >= 10, so the fused path can compute the identical per-block
/// partials at the identical absolute offsets and sum them in the identical
/// order — bit-exact agreement with the two-pass oracle by construction.
inline constexpr std::int64_t kReduceBlock = 1 << 10;

/// Apply `f(begin, end)` over consecutive blocks of `block` elements
/// covering [0, count). The block decomposition is identical for Serial and
/// Parallel execution, so a kernel that is deterministic per block yields
/// the same result under either policy and any thread count.
template <class F>
void parallel_for_blocks(Exec exec, std::int64_t count, std::int64_t block,
                         F&& f) {
  if (count <= 0) return;
  const std::int64_t nblocks = (count + block - 1) / block;
  if (exec == Exec::Serial || count < kParallelGrain || nblocks < 2) {
    for (std::int64_t b = 0; b < nblocks; ++b)
      f(b * block, b + 1 < nblocks ? (b + 1) * block : count);
    return;
  }
  QOKIT_OMP_PRAGMA(omp parallel for schedule(static))
  for (std::int64_t b = 0; b < nblocks; ++b)
    f(b * block, b + 1 < nblocks ? (b + 1) * block : count);
}

/// Sum of per-block partials `f(begin, end)` over the same decomposition as
/// parallel_for_blocks. Partials are combined *sequentially in block order*
/// regardless of execution policy or thread count, so — unlike an OpenMP
/// `reduction(+)` — the result is a deterministic function of the input and
/// the block kernel alone.
template <class F>
double parallel_reduce_blocks(Exec exec, std::int64_t count,
                              std::int64_t block, F&& f) {
  if (count <= 0) return 0.0;
  const std::int64_t nblocks = (count + block - 1) / block;
  if (exec == Exec::Serial || count < kParallelGrain || nblocks < 2) {
    double acc = 0.0;
    for (std::int64_t b = 0; b < nblocks; ++b)
      acc += f(b * block, b + 1 < nblocks ? (b + 1) * block : count);
    return acc;
  }
  std::vector<double> partials(static_cast<std::size_t>(nblocks));
  QOKIT_OMP_PRAGMA(omp parallel for schedule(static))
  for (std::int64_t b = 0; b < nblocks; ++b)
    partials[static_cast<std::size_t>(b)] =
        f(b * block, b + 1 < nblocks ? (b + 1) * block : count);
  double acc = 0.0;
  for (double p : partials) acc += p;
  return acc;
}

/// Sum of `f(i)` for i in [begin, end).
template <class F>
double parallel_reduce_sum(Exec exec, std::int64_t begin, std::int64_t end,
                           F&& f) {
  double acc = 0.0;
  if (end <= begin) return acc;
  if (exec == Exec::Serial || end - begin < kParallelGrain) {
    for (std::int64_t i = begin; i < end; ++i) acc += f(i);
    return acc;
  }
  QOKIT_OMP_PRAGMA(omp parallel for schedule(static) reduction(+ : acc))
  for (std::int64_t i = begin; i < end; ++i) acc += f(i);
  return acc;
}

}  // namespace qokit
