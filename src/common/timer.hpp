// Monotonic wall-clock timer used by the benchmark harness and examples.
#pragma once

#include <chrono>

namespace qokit {

/// Stopwatch over std::chrono::steady_clock.
class WallTimer {
 public:
  WallTimer() : start_(clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or the last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace qokit
