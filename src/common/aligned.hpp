// Cache-line-aligned storage for state vectors and cost vectors.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <new>
#include <vector>

namespace qokit {

namespace detail {
/// Running count of AlignedAllocator::allocate calls. The scratch-reuse
/// regression tests read it to pin that the hot evaluation loops perform
/// zero steady-state statevector allocations; one relaxed increment per
/// 2^n-element allocation is free next to the allocation itself.
inline std::atomic<std::uint64_t> aligned_alloc_count{0};
}  // namespace detail

/// Total AlignedAllocator::allocate calls so far in this process.
inline std::uint64_t aligned_allocation_count() {
  return detail::aligned_alloc_count.load(std::memory_order_relaxed);
}

/// Allocator returning 64-byte aligned memory so that SIMD loads in the hot
/// kernels never straddle cache lines and false sharing between OpenMP
/// threads is avoided at chunk boundaries.
template <class T, std::size_t Alignment = 64>
struct AlignedAllocator {
  using value_type = T;

  /// Explicit rebind: allocator_traits cannot infer it because of the
  /// non-type Alignment parameter.
  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T))
      throw std::bad_alloc();
    void* p = std::aligned_alloc(Alignment, round_up(n * sizeof(T)));
    if (!p) throw std::bad_alloc();
    detail::aligned_alloc_count.fetch_add(1, std::memory_order_relaxed);
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  template <class U>
  bool operator==(const AlignedAllocator<U, Alignment>&) const noexcept {
    return true;
  }

 private:
  static std::size_t round_up(std::size_t bytes) noexcept {
    return (bytes + Alignment - 1) / Alignment * Alignment;
  }
};

/// Vector with 64-byte aligned backing store.
template <class T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

}  // namespace qokit
