// Cache-line-aligned storage for state vectors and cost vectors.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <limits>
#include <new>
#include <vector>

namespace qokit {

/// Allocator returning 64-byte aligned memory so that SIMD loads in the hot
/// kernels never straddle cache lines and false sharing between OpenMP
/// threads is avoided at chunk boundaries.
template <class T, std::size_t Alignment = 64>
struct AlignedAllocator {
  using value_type = T;

  /// Explicit rebind: allocator_traits cannot infer it because of the
  /// non-type Alignment parameter.
  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T))
      throw std::bad_alloc();
    void* p = std::aligned_alloc(Alignment, round_up(n * sizeof(T)));
    if (!p) throw std::bad_alloc();
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  template <class U>
  bool operator==(const AlignedAllocator<U, Alignment>&) const noexcept {
    return true;
  }

 private:
  static std::size_t round_up(std::size_t bytes) noexcept {
    return (bytes + Alignment - 1) / Alignment * Alignment;
  }
};

/// Vector with 64-byte aligned backing store.
template <class T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

}  // namespace qokit
