// Cache-line-aligned storage for state vectors and cost vectors.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <limits>
#include <new>
#include <vector>

#include "common/parallel.hpp"

namespace qokit {

namespace detail {
/// Running count of AlignedAllocator::allocate calls. The scratch-reuse
/// regression tests read it to pin that the hot evaluation loops perform
/// zero steady-state statevector allocations; one relaxed increment per
/// 2^n-element allocation is free next to the allocation itself.
inline std::atomic<std::uint64_t> aligned_alloc_count{0};

/// NUMA first-touch switch (see set_first_touch_enabled). Process-global
/// and sticky: the tune subsystem turns it on once when a profile selects
/// NumaPolicy::FirstTouch, and it stays on — page placement is a one-way
/// optimization, and flapping it per-simulator would scatter pages.
inline std::atomic<bool> first_touch_enabled{false};

/// Allocations at least this large get the parallel first-touch pass.
/// Below 1 MiB a state fits one node's L2/L3 anyway and the OpenMP team
/// dispatch would cost more than remote-node traffic.
inline constexpr std::size_t kFirstTouchMinBytes = std::size_t{1} << 20;
inline constexpr std::size_t kFirstTouchPageBytes = 4096;
}  // namespace detail

/// Total AlignedAllocator::allocate calls so far in this process.
inline std::uint64_t aligned_allocation_count() {
  return detail::aligned_alloc_count.load(std::memory_order_relaxed);
}

/// Enable (or disable — tests only) parallel first-touch initialization
/// of large aligned allocations. When on, AlignedAllocator writes one
/// byte per page from a statically-scheduled parallel loop before the
/// container's own initialization runs, so on NUMA machines each page is
/// faulted in on (and therefore placed near) the thread that will sweep
/// it: the pipeline's for_units dispatch uses the same static schedule,
/// binding tile passes to the threads that touched those pages. Touched
/// bytes are immediately overwritten by value-initialization; results are
/// bit-identical with the switch on or off, at any thread count.
inline void set_first_touch_enabled(bool on) {
  detail::first_touch_enabled.store(on, std::memory_order_relaxed);
}

/// Current state of the first-touch switch.
inline bool first_touch_enabled() {
  return detail::first_touch_enabled.load(std::memory_order_relaxed);
}

/// Allocator returning 64-byte aligned memory so that SIMD loads in the hot
/// kernels never straddle cache lines and false sharing between OpenMP
/// threads is avoided at chunk boundaries.
template <class T, std::size_t Alignment = 64>
struct AlignedAllocator {
  using value_type = T;

  /// Explicit rebind: allocator_traits cannot infer it because of the
  /// non-type Alignment parameter.
  template <class U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  AlignedAllocator() noexcept = default;
  template <class U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T))
      throw std::bad_alloc();
    const std::size_t bytes = round_up(n * sizeof(T));
    void* p = std::aligned_alloc(Alignment, bytes);
    if (!p) throw std::bad_alloc();
    detail::aligned_alloc_count.fetch_add(1, std::memory_order_relaxed);
    if (detail::first_touch_enabled.load(std::memory_order_relaxed) &&
        bytes >= detail::kFirstTouchMinBytes) {
      // NUMA first-touch: fault every page in from a static parallel
      // loop before the container initializes the memory, so pages land
      // on the nodes of the threads that will sweep them (see
      // set_first_touch_enabled). The zeros written here are overwritten
      // by the caller's initialization — placement-only, bit-identical.
      auto* base = static_cast<unsigned char*>(p);
      const auto pages = static_cast<std::int64_t>(
          bytes / detail::kFirstTouchPageBytes);
      QOKIT_OMP_PRAGMA(omp parallel for schedule(static))
      for (std::int64_t page = 0; page < pages; ++page)
        base[static_cast<std::size_t>(page) *
             detail::kFirstTouchPageBytes] = 0;
    }
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  template <class U>
  bool operator==(const AlignedAllocator<U, Alignment>&) const noexcept {
    return true;
  }

 private:
  static std::size_t round_up(std::size_t bytes) noexcept {
    return (bytes + Alignment - 1) / Alignment * Alignment;
  }
};

/// Vector with 64-byte aligned backing store.
template <class T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

}  // namespace qokit
