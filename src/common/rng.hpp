// Deterministic random number generation for workload builders and tests.
//
// Uses xoshiro256** (public-domain algorithm by Blackman & Vigna) seeded via
// SplitMix64, so problem instances are reproducible across platforms and
// independent of libstdc++'s distribution implementations.
#pragma once

#include <cstdint>
#include <vector>

namespace qokit {

/// Small, fast, reproducible PRNG (xoshiro256**).
class Rng {
 public:
  /// Seed deterministically; the same seed yields the same stream everywhere.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

  /// Uniform 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, bound). Precondition: bound > 0.
  std::uint64_t uniform_int(std::uint64_t bound);

  /// Standard normal via Box-Muller.
  double normal();

  /// Bernoulli(p).
  bool bernoulli(double p) { return uniform() < p; }

  /// Fisher-Yates shuffle.
  template <class T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = uniform_int(i);
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace qokit
