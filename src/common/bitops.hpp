// Bit-index utilities shared by every simulator backend.
//
// Convention used throughout qokit-cpp: qubit q corresponds to bit q of the
// amplitude index (qubit 0 = least-significant bit). A computational basis
// state |b_{n-1} ... b_1 b_0> is stored at index sum_q b_q 2^q. Spins follow
// the paper's bijection B ~= {-1,+1}: bit 0 -> spin +1, bit 1 -> spin -1.
#pragma once

#include <bit>
#include <cstdint>

namespace qokit {

/// Number of set bits.
inline int popcount(std::uint64_t x) noexcept { return std::popcount(x); }

/// Parity of the set-bit count: 0 if even, 1 if odd.
inline int parity(std::uint64_t x) noexcept { return std::popcount(x) & 1; }

/// Spin-product sign for a term mask: +1 when an even number of the masked
/// bits are set in `x`, -1 otherwise. This is the XOR + popcount trick the
/// paper uses in its precomputation kernel.
inline double parity_sign(std::uint64_t x, std::uint64_t mask) noexcept {
  return parity(x & mask) ? -1.0 : 1.0;
}

/// Spin value of qubit `q` in basis state `x`: bit 0 -> +1, bit 1 -> -1.
inline int spin_of_bit(std::uint64_t x, int q) noexcept {
  return (x >> q) & 1ull ? -1 : 1;
}

/// Test bit `q`.
inline bool test_bit(std::uint64_t x, int q) noexcept {
  return (x >> q) & 1ull;
}

/// Set bit `q`.
inline std::uint64_t set_bit(std::uint64_t x, int q) noexcept {
  return x | (1ull << q);
}

/// Expand a (n-1)-bit index `k` into an n-bit index with a 0 inserted at bit
/// position `q`. Enumerating k = 0 .. 2^{n-1}-1 visits every amplitude pair
/// (i, i | 2^q) of a single-qubit gate on qubit q exactly once; this is the
/// index computation of Algorithm 1 in the paper collapsed to one loop.
inline std::uint64_t insert_zero_bit(std::uint64_t k, int q) noexcept {
  const std::uint64_t low = k & ((1ull << q) - 1ull);
  return ((k >> q) << (q + 1)) | low;
}

/// Inverse of insert_zero_bit: delete bit `q` from `x`, closing the gap.
/// For an amplitude index with bit q clear this recovers the pair index k
/// with insert_zero_bit(k, q) == x; the tiled butterfly passes use it to
/// translate a chunk base address into a kernel pair range.
inline std::uint64_t remove_bit(std::uint64_t x, int q) noexcept {
  const std::uint64_t low = x & ((1ull << q) - 1ull);
  return ((x >> (q + 1)) << q) | low;
}

/// Expand a (n-2)-bit index into an n-bit index with 0s inserted at bit
/// positions `q_lo` < `q_hi`. Enumerates the 4-element orbits of a two-qubit
/// gate. Precondition: q_lo < q_hi.
inline std::uint64_t insert_two_zero_bits(std::uint64_t k, int q_lo,
                                          int q_hi) noexcept {
  return insert_zero_bit(insert_zero_bit(k, q_lo), q_hi);
}

/// 2^n as an unsigned 64-bit value. Valid for n in [0, 63].
inline std::uint64_t dim_of(int num_qubits) noexcept {
  return 1ull << num_qubits;
}

}  // namespace qokit
