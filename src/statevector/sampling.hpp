// Measurement sampling from an evolved QAOA state.
//
// Sampling closes the algorithmic loop the paper's applications need: the
// quantum-speedup analysis on LABS (its Ref. [6]) and the sampling-
// frequency study (its Ref. [5]) both reason about the distribution of
// measured bitstrings, not just expectation values. Sampling uses an
// O(2^n) cumulative table and O(n) binary search per shot.
#pragma once

#include <cmath>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <vector>

#include "common/rng.hpp"
#include "statevector/state.hpp"

namespace qokit {

/// Sampler with a prebuilt cumulative distribution, reusable across shots.
class StateSampler {
 public:
  /// Builds the cumulative |amp|^2 table; the state need not be exactly
  /// normalized (the total mass is used as the scale).
  explicit StateSampler(const StateVector& sv);

  /// One measurement outcome.
  std::uint64_t sample(Rng& rng) const;

  /// `shots` independent outcomes. Throws std::invalid_argument for
  /// negative `shots`; zero shots returns an empty vector.
  std::vector<std::uint64_t> sample(int shots, Rng& rng) const;

  /// Seeded variant: draws from a fresh Rng(seed), so the stream is a
  /// function of (state, shots, seed) alone. This is how the session API
  /// threads SimulatorSpec::sample_seed through: two sessions with equal
  /// specs — whatever their Exec policy, which never reaches the sampler —
  /// produce identical sample streams.
  std::vector<std::uint64_t> sample(int shots, std::uint64_t seed) const;

  /// Histogram of `shots` outcomes (bitstring -> count). Throws
  /// std::invalid_argument for negative `shots`.
  std::map<std::uint64_t, int> sample_counts(int shots, Rng& rng) const;

  /// Seeded variant of sample_counts (fresh Rng(seed), as above).
  std::map<std::uint64_t, int> sample_counts(int shots,
                                             std::uint64_t seed) const;

  /// The outcome for a given uniform variate u in [0, 1]: inverse-CDF
  /// lookup. Exposed so edge cases (u rounding up to the full mass with
  /// trailing zero-probability states) are directly testable; guaranteed to
  /// return an index with nonzero probability.
  std::uint64_t sample_from_uniform(double u01) const;

 private:
  std::vector<double> cumulative_;
  std::uint64_t last_nonzero_ = 0;  ///< largest index with |amp|^2 > 0
};

/// Convenience wrapper: build a sampler and draw `shots` outcomes.
std::vector<std::uint64_t> sample_states(const StateVector& sv, int shots,
                                         Rng& rng);

/// Seeded convenience wrapper (fresh Rng(seed) per call).
std::vector<std::uint64_t> sample_states(const StateVector& sv, int shots,
                                         std::uint64_t seed);

/// Shot-based objective estimate (what a real device or a sampling-based
/// workflow would report instead of the exact inner product).
struct SampledExpectation {
  double mean = 0.0;
  double std_error = 0.0;  ///< sqrt(sample variance / shots)
  int shots = 0;
};

/// Estimate <f> by measuring `shots` bitstrings and averaging f(x). Throws
/// std::invalid_argument for negative `shots`; zero shots returns the
/// well-defined empty estimate {mean 0, std_error 0, shots 0}.
template <class CostFn>
SampledExpectation estimate_expectation_sampled(const StateVector& sv,
                                                CostFn&& f, int shots,
                                                Rng& rng) {
  if (shots < 0)
    throw std::invalid_argument(
        "estimate_expectation_sampled: shots must be >= 0");
  if (shots == 0) return SampledExpectation{};
  StateSampler sampler(sv);
  double sum = 0.0, sum_sq = 0.0;
  for (int s = 0; s < shots; ++s) {
    const double v = f(sampler.sample(rng));
    sum += v;
    sum_sq += v * v;
  }
  SampledExpectation out;
  out.shots = shots;
  out.mean = sum / shots;
  const double var = sum_sq / shots - out.mean * out.mean;
  out.std_error = var > 0.0 ? std::sqrt(var / shots) : 0.0;
  return out;
}

}  // namespace qokit
