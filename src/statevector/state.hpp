// The 2^n complex128 state vector and its initial states.
//
// Matches the paper's storage model: double-precision amplitudes, qubit q at
// bit q of the index. Initial states cover |+>^n (transverse-field mixer)
// and Dicke states |D_n^k> (Hamming-weight-preserving xy mixers).
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "common/aligned.hpp"
#include "common/parallel.hpp"

namespace qokit {

using cdouble = std::complex<double>;

/// Largest supported qubit count for an in-memory state vector (2^34
/// amplitudes = 256 GiB); also sizes fixed per-weight tables (fwht mixer).
inline constexpr int kMaxQubits = 34;

/// Owning 2^n-amplitude state vector.
class StateVector {
 public:
  StateVector() = default;

  /// All-zero (invalid, norm 0) vector of n qubits; fill before use.
  explicit StateVector(int num_qubits);

  /// |x> for a computational basis state x.
  static StateVector basis_state(int num_qubits, std::uint64_t x);

  /// Uniform superposition |+>^n, the standard QAOA initial state.
  static StateVector plus_state(int num_qubits);

  /// Dicke state |D_n^k>: equal superposition of all basis states with
  /// Hamming weight k. The in-sector initial state for xy mixers.
  static StateVector dicke_state(int num_qubits, int weight);

  int num_qubits() const noexcept { return n_; }
  std::uint64_t size() const noexcept { return amp_.size(); }
  cdouble* data() noexcept { return amp_.data(); }
  const cdouble* data() const noexcept { return amp_.data(); }
  cdouble& operator[](std::uint64_t i) noexcept { return amp_[i]; }
  const cdouble& operator[](std::uint64_t i) const noexcept { return amp_[i]; }

  /// Squared 2-norm sum |a_x|^2 (1 for a valid quantum state). Defaults
  /// Parallel like every other Exec-taking entry point (the simd layer
  /// guarantees the result is bit-identical either way); pinned by
  /// test_statevector's ExecDefaultsAreUniform.
  double norm_squared(Exec exec = Exec::Parallel) const;

  /// Scale so that norm_squared() == 1. Throws on the zero vector.
  void normalize();

  /// <this|other>.
  cdouble inner(const StateVector& other) const;

  /// |a_x|^2 for every x.
  std::vector<double> probabilities() const;

  /// Destructive variant (QOKit's preserve_state=False): overwrite each
  /// amplitude with |a_x|^2 + 0i in place, avoiding the extra 2^n-double
  /// allocation. The state is no longer a quantum state afterwards; read
  /// the probabilities from the real parts.
  void probabilities_in_place(Exec exec = Exec::Parallel);

  /// Total probability mass on basis states of Hamming weight k.
  double weight_sector_mass(int k) const;

  /// Max |a_x - b_x| between two states (test/diagnostic helper).
  double max_abs_diff(const StateVector& other) const;

 private:
  int n_ = 0;
  aligned_vector<cdouble> amp_;
};

}  // namespace qokit
