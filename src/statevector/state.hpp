// The 2^n complex state vector and its initial states.
//
// Matches the paper's storage model: qubit q at bit q of the index, with
// the amplitude scalar selectable per state (complex128 by default,
// complex64 for the bandwidth-halving mixed-precision path). Initial
// states cover |+>^n (transverse-field mixer) and Dicke states |D_n^k>
// (Hamming-weight-preserving xy mixers).
//
// Precision is a runtime tag, not a template parameter, so the virtual
// simulator API, the batch scratch pool, and the serving stack move
// StateVector values around without caring which width is inside; copy
// assignment propagates the precision, so scratch states follow
// initial_state() automatically. Everything numeric that *aggregates*
// amplitudes (norms, expectations, the sampler CDF) accumulates in double
// regardless of the amplitude width — see DESIGN.md "Mixed precision".
#pragma once

#include <complex>
#include <cstdint>
#include <vector>

#include "common/aligned.hpp"
#include "common/parallel.hpp"

namespace qokit {

using cdouble = std::complex<double>;
using cfloat = std::complex<float>;

/// Amplitude scalar width of one StateVector. F64 is the default and the
/// accuracy oracle; F32 halves bytes moved per pass and doubles SIMD lane
/// width at ~1e-6 relative amplitude error (pinned by test_precision).
enum class Precision { F64, F32 };

/// 64 (F64) or 32 (F32); feeds the qokit_precision_bits gauge and spans.
inline constexpr int precision_bits(Precision p) noexcept {
  return p == Precision::F32 ? 32 : 64;
}

/// sizeof one complex amplitude at this precision.
inline constexpr std::uint64_t amplitude_bytes(Precision p) noexcept {
  return p == Precision::F32 ? sizeof(cfloat) : sizeof(cdouble);
}

/// Largest supported qubit count for an in-memory state vector (2^34
/// amplitudes = 256 GiB); also sizes fixed per-weight tables (fwht mixer).
inline constexpr int kMaxQubits = 34;

/// Owning 2^n-amplitude state vector.
class StateVector {
 public:
  StateVector() = default;

  /// All-zero (invalid, norm 0) vector of n qubits; fill before use.
  explicit StateVector(int num_qubits, Precision prec = Precision::F64);

  /// |x> for a computational basis state x.
  static StateVector basis_state(int num_qubits, std::uint64_t x,
                                 Precision prec = Precision::F64);

  /// Uniform superposition |+>^n, the standard QAOA initial state.
  static StateVector plus_state(int num_qubits,
                                Precision prec = Precision::F64);

  /// Dicke state |D_n^k>: equal superposition of all basis states with
  /// Hamming weight k. The in-sector initial state for xy mixers
  /// (f64-only subsystem; F32 Dicke states are still constructible).
  static StateVector dicke_state(int num_qubits, int weight,
                                 Precision prec = Precision::F64);

  int num_qubits() const noexcept { return n_; }
  Precision precision() const noexcept { return prec_; }
  std::uint64_t size() const noexcept {
    return prec_ == Precision::F32 ? amp32_.size() : amp64_.size();
  }
  /// Amplitude storage footprint (size() * width of one amplitude).
  std::uint64_t bytes() const noexcept {
    return size() * amplitude_bytes(prec_);
  }

  /// F64 amplitude access. The legacy (and default) surface: every caller
  /// predating the mixed-precision path reads through these, and they are
  /// only valid on an F64 state (the f32 buffer is a different array —
  /// callers on the f32 path use data_f32()/data_as<float>()).
  cdouble* data() noexcept { return amp64_.data(); }
  const cdouble* data() const noexcept { return amp64_.data(); }
  cdouble& operator[](std::uint64_t i) noexcept { return amp64_[i]; }
  const cdouble& operator[](std::uint64_t i) const noexcept {
    return amp64_[i];
  }

  /// F32 amplitude access (null on an F64 state).
  cfloat* data_f32() noexcept { return amp32_.data(); }
  const cfloat* data_f32() const noexcept { return amp32_.data(); }

  /// Amplitude x widened to double regardless of storage precision.
  cdouble at(std::uint64_t i) const noexcept {
    return prec_ == Precision::F32 ? cdouble(amp32_[i]) : amp64_[i];
  }

  /// Converting copy; a same-precision request is a plain copy. F32->F64
  /// widening is exact; F64->F32 rounds each component to nearest float.
  StateVector to_precision(Precision prec) const;

  /// Squared 2-norm sum |a_x|^2 (1 for a valid quantum state), accumulated
  /// in double at either precision. Defaults Parallel like every other
  /// Exec-taking entry point (the simd layer guarantees the result is
  /// bit-identical either way); pinned by test_statevector's
  /// ExecDefaultsAreUniform.
  double norm_squared(Exec exec = Exec::Parallel) const;

  /// Scale so that norm_squared() == 1. Throws on the zero vector.
  void normalize();

  /// <this|other>; requires matching precision (widen first to mix).
  cdouble inner(const StateVector& other) const;

  /// |a_x|^2 for every x (double at either precision).
  std::vector<double> probabilities() const;

  /// Destructive variant (QOKit's preserve_state=False): overwrite each
  /// amplitude with |a_x|^2 + 0i in place, avoiding the extra 2^n-double
  /// allocation. The state is no longer a quantum state afterwards; read
  /// the probabilities from the real parts. On f32 states the square is
  /// computed in double and rounded once on the store.
  void probabilities_in_place(Exec exec = Exec::Parallel);

  /// Total probability mass on basis states of Hamming weight k.
  double weight_sector_mass(int k) const;

  /// Max |a_x - b_x| between two states (test/diagnostic helper). Works
  /// across precisions — both sides are widened to double before the
  /// subtraction, which is what the f32-vs-f64 drift study measures.
  double max_abs_diff(const StateVector& other) const;

 private:
  int n_ = 0;
  Precision prec_ = Precision::F64;
  aligned_vector<cdouble> amp64_;
  aligned_vector<cfloat> amp32_;
};

}  // namespace qokit
