#include "statevector/state.hpp"

#include <cmath>
#include <stdexcept>

#include "common/bitops.hpp"
#include "simd/kernels.hpp"

namespace qokit {

StateVector::StateVector(int num_qubits, Precision prec)
    : n_(num_qubits), prec_(prec) {
  if (num_qubits < 0 || num_qubits > kMaxQubits)
    throw std::invalid_argument("StateVector: unsupported qubit count");
  if (prec_ == Precision::F32)
    amp32_.assign(dim_of(num_qubits), cfloat(0.0f, 0.0f));
  else
    amp64_.assign(dim_of(num_qubits), cdouble(0.0, 0.0));
}

StateVector StateVector::basis_state(int num_qubits, std::uint64_t x,
                                     Precision prec) {
  StateVector sv(num_qubits, prec);
  if (x >= sv.size()) throw std::out_of_range("basis_state: index too large");
  if (prec == Precision::F32)
    sv.amp32_[x] = cfloat(1.0f, 0.0f);
  else
    sv.amp64_[x] = cdouble(1.0, 0.0);
  return sv;
}

StateVector StateVector::plus_state(int num_qubits, Precision prec) {
  StateVector sv(num_qubits, prec);
  const double a = 1.0 / std::sqrt(static_cast<double>(sv.size()));
  if (prec == Precision::F32) {
    const cfloat v(static_cast<float>(a), 0.0f);
    for (auto& amp : sv.amp32_) amp = v;
  } else {
    for (auto& amp : sv.amp64_) amp = cdouble(a, 0.0);
  }
  return sv;
}

StateVector StateVector::dicke_state(int num_qubits, int weight,
                                     Precision prec) {
  if (weight < 0 || weight > num_qubits)
    throw std::invalid_argument("dicke_state: weight out of range");
  StateVector sv(num_qubits, prec);
  std::uint64_t count = 0;
  for (std::uint64_t x = 0; x < sv.size(); ++x)
    if (popcount(x) == weight) ++count;
  const double a = 1.0 / std::sqrt(static_cast<double>(count));
  for (std::uint64_t x = 0; x < sv.size(); ++x)
    if (popcount(x) == weight) {
      if (prec == Precision::F32)
        sv.amp32_[x] = cfloat(static_cast<float>(a), 0.0f);
      else
        sv.amp64_[x] = cdouble(a, 0.0);
    }
  return sv;
}

StateVector StateVector::to_precision(Precision prec) const {
  if (prec == prec_) return *this;
  StateVector out(n_, prec);
  if (prec == Precision::F32) {
    for (std::uint64_t i = 0; i < size(); ++i)
      out.amp32_[i] = cfloat(static_cast<float>(amp64_[i].real()),
                             static_cast<float>(amp64_[i].imag()));
  } else {
    for (std::uint64_t i = 0; i < size(); ++i)
      out.amp64_[i] = cdouble(amp32_[i]);
  }
  return out;
}

double StateVector::norm_squared(Exec exec) const {
  if (prec_ == Precision::F32)
    return simd::norm_squared(amp32_.data(), size(), exec);
  return simd::norm_squared(amp64_.data(), size(), exec);
}

void StateVector::normalize() {
  const double n2 = norm_squared();
  if (n2 <= 0.0) throw std::runtime_error("normalize: zero vector");
  const double inv = 1.0 / std::sqrt(n2);
  if (prec_ == Precision::F32) {
    const float invf = static_cast<float>(inv);
    for (auto& v : amp32_) v *= invf;
  } else {
    for (auto& v : amp64_) v *= inv;
  }
}

cdouble StateVector::inner(const StateVector& other) const {
  if (other.size() != size())
    throw std::invalid_argument("inner: dimension mismatch");
  if (other.prec_ != prec_)
    throw std::invalid_argument("inner: precision mismatch (widen first)");
  cdouble acc(0.0, 0.0);
  if (prec_ == Precision::F32) {
    for (std::uint64_t i = 0; i < size(); ++i)
      acc += std::conj(cdouble(amp32_[i])) * cdouble(other.amp32_[i]);
  } else {
    for (std::uint64_t i = 0; i < size(); ++i)
      acc += std::conj(amp64_[i]) * other.amp64_[i];
  }
  return acc;
}

void StateVector::probabilities_in_place(Exec exec) {
  if (prec_ == Precision::F32) {
    cfloat* a = amp32_.data();
    parallel_for(exec, 0, static_cast<std::int64_t>(size()),
                 [a](std::int64_t i) {
                   const cdouble w(a[i]);
                   a[i] = cfloat(static_cast<float>(std::norm(w)), 0.0f);
                 });
    return;
  }
  cdouble* a = amp64_.data();
  parallel_for(exec, 0, static_cast<std::int64_t>(size()),
               [a](std::int64_t i) { a[i] = cdouble(std::norm(a[i]), 0.0); });
}

std::vector<double> StateVector::probabilities() const {
  std::vector<double> p(size());
  if (prec_ == Precision::F32) {
    for (std::uint64_t i = 0; i < size(); ++i)
      p[i] = std::norm(cdouble(amp32_[i]));
  } else {
    for (std::uint64_t i = 0; i < size(); ++i) p[i] = std::norm(amp64_[i]);
  }
  return p;
}

double StateVector::weight_sector_mass(int k) const {
  double acc = 0.0;
  for (std::uint64_t x = 0; x < size(); ++x)
    if (popcount(x) == k) acc += std::norm(at(x));
  return acc;
}

double StateVector::max_abs_diff(const StateVector& other) const {
  if (other.size() != size())
    throw std::invalid_argument("max_abs_diff: dimension mismatch");
  double m = 0.0;
  for (std::uint64_t i = 0; i < size(); ++i)
    m = std::max(m, std::abs(at(i) - other.at(i)));
  return m;
}

}  // namespace qokit
