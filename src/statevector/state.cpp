#include "statevector/state.hpp"

#include <cmath>
#include <stdexcept>

#include "common/bitops.hpp"
#include "simd/kernels.hpp"

namespace qokit {

StateVector::StateVector(int num_qubits) : n_(num_qubits) {
  if (num_qubits < 0 || num_qubits > kMaxQubits)
    throw std::invalid_argument("StateVector: unsupported qubit count");
  amp_.assign(dim_of(num_qubits), cdouble(0.0, 0.0));
}

StateVector StateVector::basis_state(int num_qubits, std::uint64_t x) {
  StateVector sv(num_qubits);
  if (x >= sv.size()) throw std::out_of_range("basis_state: index too large");
  sv.amp_[x] = cdouble(1.0, 0.0);
  return sv;
}

StateVector StateVector::plus_state(int num_qubits) {
  StateVector sv(num_qubits);
  const double a = 1.0 / std::sqrt(static_cast<double>(sv.size()));
  for (auto& v : sv.amp_) v = cdouble(a, 0.0);
  return sv;
}

StateVector StateVector::dicke_state(int num_qubits, int weight) {
  if (weight < 0 || weight > num_qubits)
    throw std::invalid_argument("dicke_state: weight out of range");
  StateVector sv(num_qubits);
  std::uint64_t count = 0;
  for (std::uint64_t x = 0; x < sv.size(); ++x)
    if (popcount(x) == weight) ++count;
  const double a = 1.0 / std::sqrt(static_cast<double>(count));
  for (std::uint64_t x = 0; x < sv.size(); ++x)
    if (popcount(x) == weight) sv.amp_[x] = cdouble(a, 0.0);
  return sv;
}

double StateVector::norm_squared(Exec exec) const {
  return simd::norm_squared(amp_.data(), size(), exec);
}

void StateVector::normalize() {
  const double n2 = norm_squared();
  if (n2 <= 0.0) throw std::runtime_error("normalize: zero vector");
  const double inv = 1.0 / std::sqrt(n2);
  for (auto& v : amp_) v *= inv;
}

cdouble StateVector::inner(const StateVector& other) const {
  if (other.size() != size())
    throw std::invalid_argument("inner: dimension mismatch");
  cdouble acc(0.0, 0.0);
  for (std::uint64_t i = 0; i < size(); ++i)
    acc += std::conj(amp_[i]) * other.amp_[i];
  return acc;
}

void StateVector::probabilities_in_place(Exec exec) {
  cdouble* a = amp_.data();
  parallel_for(exec, 0, static_cast<std::int64_t>(size()),
               [a](std::int64_t i) { a[i] = cdouble(std::norm(a[i]), 0.0); });
}

std::vector<double> StateVector::probabilities() const {
  std::vector<double> p(size());
  for (std::uint64_t i = 0; i < size(); ++i) p[i] = std::norm(amp_[i]);
  return p;
}

double StateVector::weight_sector_mass(int k) const {
  double acc = 0.0;
  for (std::uint64_t x = 0; x < size(); ++x)
    if (popcount(x) == k) acc += std::norm(amp_[x]);
  return acc;
}

double StateVector::max_abs_diff(const StateVector& other) const {
  if (other.size() != size())
    throw std::invalid_argument("max_abs_diff: dimension mismatch");
  double m = 0.0;
  for (std::uint64_t i = 0; i < size(); ++i)
    m = std::max(m, std::abs(amp_[i] - other.amp_[i]));
  return m;
}

}  // namespace qokit
