#include "statevector/sampling.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/obs.hpp"

namespace qokit {
namespace {

const obs::Counter& draw_counter() {
  static const obs::Counter c = obs::counter("qokit_sampler_draws_total");
  return c;
}

}  // namespace

StateSampler::StateSampler(const StateVector& sv) {
  static const obs::Counter builds =
      obs::counter("qokit_sampler_builds_total");
  builds.add();
  obs::Span span("sampler_build");
  span.attr("n", sv.num_qubits());
  cumulative_.resize(sv.size());
  double acc = 0.0;
  if (sv.precision() == Precision::F32) {
    // The CDF accumulates in double regardless of the amplitude width:
    // each |amp|^2 is formed from re/im widened to double first, so the
    // running sum never loses mass to float cancellation and the
    // inverse-CDF clamp semantics below are identical at both precisions.
    const cfloat* amp = sv.data_f32();
    for (std::uint64_t x = 0; x < sv.size(); ++x) {
      const double re = amp[x].real(), im = amp[x].imag();
      const double p = re * re + im * im;
      if (p > 0.0) last_nonzero_ = x;
      acc += p;
      cumulative_[x] = acc;
    }
  } else {
    for (std::uint64_t x = 0; x < sv.size(); ++x) {
      const double p = std::norm(sv[x]);
      if (p > 0.0) last_nonzero_ = x;
      acc += p;
      cumulative_[x] = acc;
    }
  }
  if (acc <= 0.0)
    throw std::invalid_argument("StateSampler: zero-norm state");
}

std::uint64_t StateSampler::sample_from_uniform(double u01) const {
  const double u = u01 * cumulative_.back();
  const auto it =
      std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
  // upper_bound never lands on a zero-probability index mid-table (its
  // cumulative value equals its predecessor's, so it is never the *first*
  // entry exceeding u). The end() case — u at or beyond the total mass,
  // reachable when rounding pushes u01 * total up to the total — must clamp
  // to the last index with nonzero probability, not the last index overall.
  if (it == cumulative_.end()) return last_nonzero_;
  return static_cast<std::uint64_t>(it - cumulative_.begin());
}

std::uint64_t StateSampler::sample(Rng& rng) const {
  draw_counter().add();
  return sample_from_uniform(rng.uniform());
}

std::vector<std::uint64_t> StateSampler::sample(int shots, Rng& rng) const {
  if (shots < 0) throw std::invalid_argument("sample: shots must be >= 0");
  std::vector<std::uint64_t> out(static_cast<std::size_t>(shots));
  for (auto& x : out) x = sample(rng);
  return out;
}

std::map<std::uint64_t, int> StateSampler::sample_counts(int shots,
                                                         Rng& rng) const {
  if (shots < 0)
    throw std::invalid_argument("sample_counts: shots must be >= 0");
  std::map<std::uint64_t, int> counts;
  for (int s = 0; s < shots; ++s) ++counts[sample(rng)];
  return counts;
}

std::vector<std::uint64_t> StateSampler::sample(int shots,
                                                std::uint64_t seed) const {
  Rng rng(seed);
  return sample(shots, rng);
}

std::map<std::uint64_t, int> StateSampler::sample_counts(
    int shots, std::uint64_t seed) const {
  Rng rng(seed);
  return sample_counts(shots, rng);
}

std::vector<std::uint64_t> sample_states(const StateVector& sv, int shots,
                                         Rng& rng) {
  return StateSampler(sv).sample(shots, rng);
}

std::vector<std::uint64_t> sample_states(const StateVector& sv, int shots,
                                         std::uint64_t seed) {
  Rng rng(seed);
  return StateSampler(sv).sample(shots, rng);
}

}  // namespace qokit
