#include "statevector/sampling.hpp"

#include <algorithm>
#include <stdexcept>

namespace qokit {

StateSampler::StateSampler(const StateVector& sv) {
  cumulative_.resize(sv.size());
  double acc = 0.0;
  for (std::uint64_t x = 0; x < sv.size(); ++x) {
    acc += std::norm(sv[x]);
    cumulative_[x] = acc;
  }
  if (acc <= 0.0)
    throw std::invalid_argument("StateSampler: zero-norm state");
}

std::uint64_t StateSampler::sample(Rng& rng) const {
  const double u = rng.uniform() * cumulative_.back();
  const auto it =
      std::upper_bound(cumulative_.begin(), cumulative_.end(), u);
  return static_cast<std::uint64_t>(
      std::min<std::ptrdiff_t>(it - cumulative_.begin(),
                               static_cast<std::ptrdiff_t>(
                                   cumulative_.size()) - 1));
}

std::vector<std::uint64_t> StateSampler::sample(int shots, Rng& rng) const {
  std::vector<std::uint64_t> out(shots);
  for (auto& x : out) x = sample(rng);
  return out;
}

std::map<std::uint64_t, int> StateSampler::sample_counts(int shots,
                                                         Rng& rng) const {
  std::map<std::uint64_t, int> counts;
  for (int s = 0; s < shots; ++s) ++counts[sample(rng)];
  return counts;
}

std::vector<std::uint64_t> sample_states(const StateVector& sv, int shots,
                                         Rng& rng) {
  return StateSampler(sv).sample(shots, rng);
}

}  // namespace qokit
