#include "api/spec.hpp"

#include <bit>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "diagonal/ops.hpp"
#include "dist/dist_fur.hpp"
#include "gatesim/execute.hpp"
#include "gatesim/simulator.hpp"
#include "obs/obs.hpp"
#include "tune/profile.hpp"

namespace qokit {
namespace {

[[noreturn]] void bad_token(std::string_view token, std::string_view name) {
  throw std::invalid_argument("SimulatorSpec::parse: unrecognized token '" +
                              std::string(token) + "' in '" +
                              std::string(name) + "'");
}

/// Execution policy parse() assumes when no exec= option is given; also
/// the policy to_string() elides, so the canonical spelling stays short.
Exec default_exec(Backend backend) {
  return backend == Backend::Serial ? Exec::Serial : Exec::Parallel;
}

bool parse_backend(std::string_view token, Backend* out) {
  if (token == "auto") *out = Backend::Auto;
  else if (token == "serial") *out = Backend::Serial;
  else if (token == "threaded") *out = Backend::Threaded;
  else if (token == "u16") *out = Backend::U16;
  else if (token == "fwht") *out = Backend::Fwht;
  else if (token == "gatesim") *out = Backend::Gatesim;
  else if (token == "dist") *out = Backend::Dist;
  else return false;
  return true;
}

bool parse_strategy(std::string_view token, AlltoallStrategy* out) {
  if (token == "staged") *out = AlltoallStrategy::Staged;
  else if (token == "pairwise") *out = AlltoallStrategy::Pairwise;
  else if (token == "direct") *out = AlltoallStrategy::Direct;
  else return false;
  return true;
}

bool parse_mixer(std::string_view token, MixerType* out) {
  if (token == "x") *out = MixerType::X;
  else if (token == "xyring") *out = MixerType::XYRing;
  else if (token == "xycomplete") *out = MixerType::XYComplete;
  else return false;
  return true;
}

std::string_view mixer_token(MixerType mixer) {
  switch (mixer) {
    case MixerType::X: return "x";
    case MixerType::XYRing: return "xyring";
    default: return "xycomplete";
  }
}

std::string_view simd_token(SimdChoice simd) {
  switch (simd) {
    case SimdChoice::Auto: return "auto";
    case SimdChoice::Scalar: return "scalar";
    default: return "avx2";
  }
}

[[noreturn]] void out_of_range_token(std::string_view token,
                                     std::string_view name) {
  throw std::invalid_argument("SimulatorSpec::parse: integer token '" +
                              std::string(token) + "' in '" +
                              std::string(name) +
                              "' is out of range for its option");
}

enum class IntParse { Ok, Bad, OutOfRange };

/// Strict full-token integer parse. Out-of-range digits are their own
/// outcome (never wrapped or truncated into *out) so callers can name the
/// overflow instead of reporting an "unrecognized token".
template <class Int>
IntParse parse_int(std::string_view token, Int* out) {
  Int value{};
  const auto [ptr, ec] =
      std::from_chars(token.data(), token.data() + token.size(), value);
  if (ptr != token.data() + token.size() ||
      ec == std::errc::invalid_argument)
    return IntParse::Bad;
  if (ec == std::errc::result_out_of_range) return IntParse::OutOfRange;
  *out = value;
  return IntParse::Ok;
}

/// parse_int for option values: Ok on success, throws the out-of-range
/// diagnostic itself, and reports Bad as `false` for the caller's
/// bad_token path.
template <class Int>
bool parse_int_option(std::string_view token, std::string_view name,
                      Int* out) {
  switch (parse_int(token, out)) {
    case IntParse::Ok: return true;
    case IntParse::OutOfRange: out_of_range_token(token, name);
    default: return false;
  }
}

bool all_digits(std::string_view token) {
  if (token.empty()) return false;
  for (char c : token)
    if (c < '0' || c > '9') return false;
  return true;
}

/// One "key=value" option. Returns false when `token` has no '=' at all
/// (so positional dist tokens can be tried first); throws on a known key
/// with a bad value or an unknown key.
bool apply_option(std::string_view token, std::string_view name,
                  SimulatorSpec* spec) {
  const std::size_t eq = token.find('=');
  if (eq == std::string_view::npos) return false;
  const std::string_view key = token.substr(0, eq);
  const std::string_view value = token.substr(eq + 1);
  bool ok = false;
  if (key == "mixer") {
    ok = parse_mixer(value, &spec->mixer);
  } else if (key == "exec") {
    ok = value == "serial" || value == "parallel";
    if (ok) spec->exec = value == "serial" ? Exec::Serial : Exec::Parallel;
  } else if (key == "ranks") {
    ok = parse_int_option(value, name, &spec->ranks) && spec->ranks >= 1;
  } else if (key == "alltoall") {
    ok = parse_strategy(value, &spec->alltoall);
  } else if (key == "weight") {
    ok = parse_int_option(value, name, &spec->initial_weight);
  } else if (key == "simd") {
    if (value == "auto") spec->simd = SimdChoice::Auto, ok = true;
    else if (value == "scalar") spec->simd = SimdChoice::Scalar, ok = true;
    else if (value == "avx2") spec->simd = SimdChoice::Avx2, ok = true;
  } else if (key == "seed") {
    ok = parse_int_option(value, name, &spec->sample_seed);
  } else if (key == "pipeline") {
    if (value == "auto") spec->pipeline = pipeline::PipelineMode::Auto, ok = true;
    else if (value == "on") spec->pipeline = pipeline::PipelineMode::On, ok = true;
    else if (value == "off") spec->pipeline = pipeline::PipelineMode::Off, ok = true;
  } else if (key == "obs") {
    if (value == "on") spec->obs = true, ok = true;
    else if (value == "off") spec->obs = false, ok = true;
  } else if (key == "prec") {
    if (value == "auto") spec->prec = Prec::Auto, ok = true;
    else if (value == "f32") spec->prec = Prec::F32, ok = true;
    else if (value == "f64") spec->prec = Prec::F64, ok = true;
  } else if (key == "tune") {
    // Any value that is not a recognized mode is a profile file path
    // ("off" is an alias for "static", mirroring QOKIT_TUNE=off).
    if (value == "auto") {
      spec->tune = TuneChoice::Auto, spec->tune_path.clear(), ok = true;
    } else if (value == "static" || value == "off") {
      spec->tune = TuneChoice::Static, spec->tune_path.clear(), ok = true;
    } else if (value == "search") {
      spec->tune = TuneChoice::Search, spec->tune_path.clear(), ok = true;
    } else if (!value.empty()) {
      spec->tune = TuneChoice::Path;
      spec->tune_path = std::string(value);
      ok = true;
    }
  }
  if (!ok) bad_token(token, name);
  return true;
}

}  // namespace

std::string_view to_string(Backend backend) {
  switch (backend) {
    case Backend::Auto: return "auto";
    case Backend::Serial: return "serial";
    case Backend::Threaded: return "threaded";
    case Backend::U16: return "u16";
    case Backend::Fwht: return "fwht";
    case Backend::Gatesim: return "gatesim";
    default: return "dist";
  }
}

SimulatorSpec SimulatorSpec::parse(std::string_view name) {
  SimulatorSpec spec;
  std::size_t pos = name.find(':');
  const std::string_view head = name.substr(0, pos);
  if (!parse_backend(head, &spec.backend)) bad_token(head, name);
  spec.exec = default_exec(spec.backend);

  // Remaining colon-separated tokens. The legacy distributed spelling
  // "dist[:K[:strategy]]" uses positional tokens; everything else is
  // key=value.
  bool want_dist_ranks = spec.backend == Backend::Dist;
  bool want_dist_strategy = false;
  while (pos != std::string_view::npos) {
    const std::size_t next = name.find(':', pos + 1);
    const std::string_view token =
        name.substr(pos + 1, next == std::string_view::npos
                                 ? std::string_view::npos
                                 : next - pos - 1);
    pos = next;
    if (want_dist_ranks && all_digits(token)) {
      // All-digit tokens that overflow int must fail as "out of range",
      // never wrap into a bogus rank count.
      if (parse_int(token, &spec.ranks) == IntParse::OutOfRange)
        out_of_range_token(token, name);
      if (spec.ranks < 1) bad_token(token, name);
      want_dist_ranks = false;
      want_dist_strategy = true;
      continue;
    }
    want_dist_ranks = false;
    if (apply_option(token, name, &spec)) {
      want_dist_strategy = false;
      continue;
    }
    if (want_dist_strategy && parse_strategy(token, &spec.alltoall)) {
      want_dist_strategy = false;
      continue;
    }
    bad_token(token, name);
  }
  return spec;
}

std::string SimulatorSpec::to_string() const {
  std::string out(qokit::to_string(backend));
  if (backend == Backend::Dist) {
    out += ':';
    out += std::to_string(ranks);
    out += ':';
    out += qokit::to_string(alltoall);
  } else {
    // ranks/alltoall are dist-only knobs, but the spec compares them, so
    // the canonical spelling must carry non-default values to round-trip.
    if (ranks != 2) out += ":ranks=" + std::to_string(ranks);
    if (alltoall != AlltoallStrategy::Staged) {
      out += ":alltoall=";
      out += qokit::to_string(alltoall);
    }
  }
  if (mixer != MixerType::X) {
    out += ":mixer=";
    out += mixer_token(mixer);
  }
  if (exec != default_exec(backend))
    out += exec == Exec::Serial ? ":exec=serial" : ":exec=parallel";
  if (initial_weight >= 0)
    out += ":weight=" + std::to_string(initial_weight);
  if (simd != SimdChoice::Auto) {
    out += ":simd=";
    out += simd_token(simd);
  }
  if (pipeline != pipeline::PipelineMode::Auto)
    out += pipeline == pipeline::PipelineMode::On ? ":pipeline=on"
                                                  : ":pipeline=off";
  if (sample_seed != 1) out += ":seed=" + std::to_string(sample_seed);
  if (obs) out += ":obs=on";
  if (tune == TuneChoice::Static) out += ":tune=static";
  else if (tune == TuneChoice::Search) out += ":tune=search";
  else if (tune == TuneChoice::Path) out += ":tune=" + tune_path;
  if (prec != Prec::Auto)
    out += prec == Prec::F32 ? ":prec=f32" : ":prec=f64";
  return out;
}

namespace {

/// Backend::Gatesim behind the fast-simulator interface: gate-at-a-time
/// evolution (the baseline cost model), but scored through a diagonal
/// precomputed once at construction so get_expectation / get_overlap /
/// get_cost_diagonal work uniformly across every session backend.
class GateSimAdapter final : public QaoaFastSimulatorBase {
 public:
  GateSimAdapter(const TermList& terms, const SimulatorSpec& spec)
      : gates_(terms, GateSimConfig{.exec = spec.exec,
                                    .mixer = spec.mixer,
                                    .phase_style = PhaseStyle::CxLadder,
                                    .fuse = false,
                                    .out_of_place = false}),
        diag_(CostDiagonal::precompute(terms, spec.exec)),
        exec_(spec.exec),
        initial_weight_(spec.initial_weight) {}

  int num_qubits() const override { return gates_.num_qubits(); }

  StateVector initial_state() const override {
    const int n = num_qubits();
    // The compiled circuit opens with the H layer for the X mixer, so the
    // evolution starts from |0...0>; xy runs start from the Dicke state.
    if (gates_.config().mixer == MixerType::X)
      return StateVector::basis_state(n, 0);
    const int k = initial_weight_ >= 0 ? initial_weight_ : n / 2;
    return StateVector::dicke_state(n, k);
  }

  StateVector simulate_qaoa_from(StateVector state,
                                 std::span<const double> gammas,
                                 std::span<const double> betas) const override {
    if (gammas.size() != betas.size())
      throw std::invalid_argument(
          "simulate_qaoa: gammas/betas length mismatch");
    if (state.num_qubits() != num_qubits())
      throw std::invalid_argument("simulate_qaoa: state size mismatch");
    const Circuit c = gates_.build_circuit(gammas, betas);
    run_circuit(state, c, exec_);
    // Constant terms compile to no gate but contribute a global phase per
    // layer; apply it so the state matches the diagonal simulators exactly
    // (same fixup as GateQaoaSimulator::simulate_qaoa).
    const double offset = gates_.terms().offset();
    if (offset != 0.0) {
      double total = 0.0;
      for (double g : gammas) total += g;
      const cdouble phase(std::cos(-total * offset),
                          std::sin(-total * offset));
      for (std::uint64_t i = 0; i < state.size(); ++i) state[i] *= phase;
    }
    return state;
  }

  using QaoaFastSimulatorBase::get_expectation;
  using QaoaFastSimulatorBase::get_overlap;

  double get_expectation(const StateVector& result) const override {
    return expectation(result, diag_, exec_);
  }

  double get_overlap(const StateVector& result,
                     int restrict_weight = -1) const override {
    if (restrict_weight < 0)
      return overlap_ground(result, diag_, 1e-9, exec_);
    return overlap_ground_sector(result, diag_, restrict_weight, 1e-9,
                                 exec_);
  }

  const CostDiagonal& get_cost_diagonal() const override { return diag_; }

 private:
  GateQaoaSimulator gates_;
  CostDiagonal diag_;
  Exec exec_;
  int initial_weight_;
};

}  // namespace

namespace {

tune::TuneMode tune_mode_of(TuneChoice choice) {
  switch (choice) {
    case TuneChoice::Static: return tune::TuneMode::Static;
    case TuneChoice::Search: return tune::TuneMode::Search;
    case TuneChoice::Path: return tune::TuneMode::Path;
    default: return tune::TuneMode::Auto;
  }
}

/// True when the combination a spec resolves to can evolve f32 amplitudes:
/// the fur/dist X-mixer paths. Gatesim and the xy mixers stay f64-only.
bool supports_f32(const SimulatorSpec& spec) {
  return spec.backend != Backend::Gatesim && spec.mixer == MixerType::X;
}

/// Resolve the effective amplitude precision. Explicit f32/f64 win (an
/// explicit f32 on an unsupported combination is validated by the caller
/// and throws); Auto consults QOKIT_PREC, where "f32" opts the whole
/// process into float amplitudes *where supported* — unsupported
/// combinations silently stay f64, so an env-driven f32 run (the CI
/// prec=f32 leg) still passes suites that exercise gatesim/xy backends.
Precision resolve_precision(const SimulatorSpec& spec) {
  switch (spec.prec) {
    case Prec::F32: return Precision::F32;
    case Prec::F64: return Precision::F64;
    default: break;
  }
  const char* env = std::getenv("QOKIT_PREC");
  if (env && std::string_view(env) == "f32" && supports_f32(spec))
    return Precision::F32;
  return Precision::F64;
}

/// Last-resolution precision gauge (bits of the amplitude scalar), set on
/// every make_simulator call so dashboards can tell mixed-precision runs
/// apart without parsing spec strings.
void record_precision(Precision prec) {
  static const obs::Gauge bits = obs::gauge("qokit_precision_bits");
  bits.set(static_cast<double>(precision_bits(prec)));
}

}  // namespace

std::unique_ptr<QaoaFastSimulatorBase> make_simulator(
    const TermList& terms, const SimulatorSpec& spec) {
  // One resolution per simulator: the profile's Geometry is injected into
  // the pipeline options below; its process-global side effects (thread
  // count, first-touch, obs gauges) are applied inside resolve_profile
  // (cached, so repeat construction is cheap). Every profile is
  // bit-identical to tune=static by the Geometry contract.
  const tune::TuneProfile tuned =
      tune::resolve_profile(tune_mode_of(spec.tune), spec.tune_path);
  const Precision prec = resolve_precision(spec);
  if (prec == Precision::F32 && !supports_f32(spec))
    throw std::invalid_argument(
        "make_simulator: prec=f32 supports the X-mixer fur/dist backends "
        "only (gatesim and xy mixers are f64-only)");
  record_precision(prec);
  switch (spec.backend) {
    case Backend::Dist:
      if (spec.mixer != MixerType::X)
        throw std::invalid_argument(
            "make_simulator: the dist backend supports only the X mixer");
      // The sharding math (countr_zero-derived slice sizes) is only
      // meaningful for power-of-two rank counts that fit the state; reject
      // anything else here, naming the value, instead of constructing a
      // simulator with empty or overlapping shards.
      if (spec.ranks < 1 ||
          !std::has_single_bit(static_cast<unsigned>(spec.ranks)))
        throw std::invalid_argument(
            "make_simulator: dist ranks must be a power of two >= 1, got " +
            std::to_string(spec.ranks));
      if (terms.num_qubits() < 63 &&
          static_cast<std::uint64_t>(spec.ranks) >
              (std::uint64_t{1} << terms.num_qubits()))
        throw std::invalid_argument(
            "make_simulator: " + std::to_string(spec.ranks) +
            " dist ranks exceed the 2^" + std::to_string(terms.num_qubits()) +
            " amplitudes of a " + std::to_string(terms.num_qubits()) +
            "-qubit problem");
      return std::make_unique<DistributedFurSimulator>(
          terms,
          DistConfig{.ranks = spec.ranks,
                     .strategy = spec.alltoall,
                     .pipeline = {.mode = spec.pipeline,
                                  .geometry = tuned.geometry},
                     .prec = prec});
    case Backend::Gatesim:
      return std::make_unique<GateSimAdapter>(terms, spec);
    default: {
      FurConfig cfg;
      cfg.exec = spec.exec;
      cfg.mixer = spec.mixer;
      cfg.initial_weight = spec.initial_weight;
      cfg.pipeline.mode = spec.pipeline;
      cfg.pipeline.geometry = tuned.geometry;
      cfg.prec = prec;
      if (spec.backend == Backend::U16) cfg.use_u16 = true;
      if (spec.backend == Backend::Fwht) {
        if (spec.mixer != MixerType::X)
          throw std::invalid_argument(
              "fwht backend supports only the X mixer");
        cfg.backend = MixerBackend::Fwht;
      }
      return std::make_unique<FurQaoaSimulator>(terms, cfg);
    }
  }
}

// The choose_simulator family (declared in fur/simulator.hpp) is defined
// here so the string grammar lives in exactly one place: every name goes
// through SimulatorSpec::parse and every simulator through make_simulator.

std::unique_ptr<QaoaFastSimulatorBase> choose_simulator(const TermList& terms,
                                                        std::string_view name) {
  return make_simulator(terms, SimulatorSpec::parse(name));
}

std::unique_ptr<QaoaFastSimulatorBase> choose_simulator_xyring(
    const TermList& terms, std::string_view name, int initial_weight) {
  SimulatorSpec spec = SimulatorSpec::parse(name);
  spec.mixer = MixerType::XYRing;
  spec.initial_weight = initial_weight;
  return make_simulator(terms, spec);
}

std::unique_ptr<QaoaFastSimulatorBase> choose_simulator_xycomplete(
    const TermList& terms, std::string_view name, int initial_weight) {
  SimulatorSpec spec = SimulatorSpec::parse(name);
  spec.mixer = MixerType::XYComplete;
  spec.initial_weight = initial_weight;
  return make_simulator(terms, spec);
}

}  // namespace qokit
