#include "api/qokit.hpp"

#include <charconv>
#include <memory>
#include <stdexcept>

namespace qokit::api {
namespace {

/// Resolve a simulator name, including the distributed spellings
/// "dist", "dist:K", and "dist:K:staged|pairwise|direct"; every other
/// name is forwarded to choose_simulator.
std::unique_ptr<QaoaFastSimulatorBase> resolve_simulator(
    const TermList& terms, std::string_view name) {
  if (name != "dist" && !name.starts_with("dist:"))
    return choose_simulator(terms, name);
  int ranks = 2;
  AlltoallStrategy strategy = AlltoallStrategy::Staged;
  if (name.starts_with("dist:")) {
    std::string_view rest = name.substr(5);
    const std::size_t colon = rest.find(':');
    const std::string_view ranks_part = rest.substr(0, colon);
    const auto [ptr, ec] = std::from_chars(
        ranks_part.data(), ranks_part.data() + ranks_part.size(), ranks);
    if (ec != std::errc{} || ptr != ranks_part.data() + ranks_part.size())
      throw std::invalid_argument("resolve_simulator: bad rank count in '" +
                                  std::string(name) + "'");
    if (colon != std::string_view::npos)
      strategy = alltoall_strategy_from_string(rest.substr(colon + 1));
  }
  return choose_simulator_distributed(terms, ranks, strategy);
}

}  // namespace

double qaoa_maxcut_expectation(const Graph& g, std::span<const double> gammas,
                               std::span<const double> betas,
                               std::string_view simulator) {
  const TermList terms = maxcut_terms(g);
  const auto sim = resolve_simulator(terms, simulator);
  const StateVector result = sim->simulate_qaoa(gammas, betas);
  return sim->get_expectation(result);
}

LabsEvaluation qaoa_labs_evaluate(int n, std::span<const double> gammas,
                                  std::span<const double> betas,
                                  std::string_view simulator) {
  const TermList terms = labs_terms(n);
  const auto sim = resolve_simulator(terms, simulator);
  const StateVector result = sim->simulate_qaoa(gammas, betas);
  LabsEvaluation out;
  out.expectation = sim->get_expectation(result);
  out.ground_overlap = sim->get_overlap(result);
  out.min_energy = sim->get_cost_diagonal().min_value();
  return out;
}

double qaoa_portfolio_expectation(const PortfolioInstance& inst,
                                  std::span<const double> gammas,
                                  std::span<const double> betas,
                                  std::string_view simulator) {
  const TermList terms = portfolio_terms(inst);
  const auto sim = choose_simulator_xyring(terms, simulator, inst.budget);
  const StateVector result = sim->simulate_qaoa(gammas, betas);
  return sim->get_expectation(result);
}

SatEvaluation qaoa_sat_evaluate(const SatInstance& inst,
                                std::span<const double> gammas,
                                std::span<const double> betas,
                                std::string_view simulator) {
  const TermList terms = sat_terms(inst);
  const auto sim = resolve_simulator(terms, simulator);
  const StateVector result = sim->simulate_qaoa(gammas, betas);
  const CostDiagonal& d = sim->get_cost_diagonal();
  SatEvaluation out;
  out.expected_violations = sim->get_expectation(result);
  out.satisfiable = d.min_value() < 0.5;
  // Probability mass on exactly-zero-violation strings (clause counts are
  // integers, so < 0.5 identifies them robustly).
  double mass = 0.0;
  for (std::uint64_t x = 0; x < d.size(); ++x)
    if (d[x] < 0.5) mass += std::norm(result[x]);
  out.p_satisfied = mass;
  return out;
}

std::vector<double> qaoa_batch_expectation(
    const TermList& terms, std::span<const QaoaParams> schedules,
    std::string_view simulator) {
  const auto sim = resolve_simulator(terms, simulator);
  return BatchEvaluator(*sim).expectations(schedules);
}

BatchResult qaoa_batch_evaluate(const TermList& terms,
                                std::span<const QaoaParams> schedules,
                                BatchOptions opts,
                                std::string_view simulator) {
  const auto sim = resolve_simulator(terms, simulator);
  return BatchEvaluator(*sim, opts).evaluate(schedules);
}

OptimizeOutcome optimize_qaoa(const TermList& terms, int p,
                              NelderMeadOptions opts,
                              std::string_view simulator) {
  const auto sim = resolve_simulator(terms, simulator);
  QaoaBatchObjective objective(*sim, p);
  const QaoaParams init = linear_ramp(p);
  const OptResult r = nelder_mead_batched(
      [&objective](const std::vector<std::vector<double>>& points) {
        return objective(points);
      },
      init.flatten(), opts);
  OptimizeOutcome out;
  out.params = QaoaParams::unflatten(r.x);
  out.fval = r.fval;
  out.evaluations = objective.evaluations();
  out.batches = objective.batches();
  return out;
}

}  // namespace qokit::api
