// The stable compatibility layer: each one-line method builds a
// throwaway ProblemSession and forwards through the unified
// request/response surface, so there is exactly one code path behind
// both API generations. Expectations, overlaps, states, and batch
// results stay bit-identical to the direct simulator/legacy paths
// (asserted by tests/test_crossvalidation.cpp); the one exception is
// SatEvaluation::p_satisfied, which now reuses the shared ground-overlap
// reduction instead of a bespoke serial scan and may differ from
// pre-session releases in the last ulp (the summation grouping differs).
#include "api/qokit.hpp"

#include <vector>

namespace qokit::api {
namespace {

QaoaParams to_params(std::span<const double> gammas,
                     std::span<const double> betas) {
  QaoaParams p;
  p.gammas.assign(gammas.begin(), gammas.end());
  p.betas.assign(betas.begin(), betas.end());
  return p;
}

}  // namespace

double qaoa_maxcut_expectation(const Graph& g, std::span<const double> gammas,
                               std::span<const double> betas,
                               std::string_view simulator) {
  const ProblemSession session =
      ProblemSession::maxcut(g, SimulatorSpec::parse(simulator));
  return *session.evaluate(to_params(gammas, betas)).expectation;
}

LabsEvaluation qaoa_labs_evaluate(int n, std::span<const double> gammas,
                                  std::span<const double> betas,
                                  std::string_view simulator) {
  const ProblemSession session =
      ProblemSession::labs(n, SimulatorSpec::parse(simulator));
  EvalRequest request;
  request.overlap = true;
  const EvalResult r = session.evaluate(to_params(gammas, betas), request);
  LabsEvaluation out;
  out.expectation = *r.expectation;
  out.ground_overlap = *r.overlap;
  out.min_energy = session.cost_diagonal().min_value();
  return out;
}

double qaoa_portfolio_expectation(const PortfolioInstance& inst,
                                  std::span<const double> gammas,
                                  std::span<const double> betas,
                                  std::string_view simulator) {
  const ProblemSession session =
      ProblemSession::portfolio(inst, SimulatorSpec::parse(simulator));
  return *session.evaluate(to_params(gammas, betas)).expectation;
}

SatEvaluation qaoa_sat_evaluate(const SatInstance& inst,
                                std::span<const double> gammas,
                                std::span<const double> betas,
                                std::string_view simulator) {
  const ProblemSession session =
      ProblemSession::sat(inst, SimulatorSpec::parse(simulator));
  EvalRequest request;
  request.overlap = true;
  const EvalResult r = session.evaluate(to_params(gammas, betas), request);
  SatEvaluation out;
  out.expected_violations = *r.expectation;
  out.satisfiable = session.cost_diagonal().min_value() < 0.5;
  // Probability mass on exactly-zero-violation strings. Clause counts are
  // integers, so when the instance is satisfiable the minimum is 0 and the
  // ground-overlap reduction (mass within tol of the minimum) is exactly
  // that mass; unsatisfiable instances have no zero-cost string at all.
  out.p_satisfied = out.satisfiable ? *r.overlap : 0.0;
  return out;
}

std::vector<double> qaoa_batch_expectation(
    const TermList& terms, std::span<const QaoaParams> schedules,
    std::string_view simulator) {
  const ProblemSession session(terms, SimulatorSpec::parse(simulator));
  return session.expectations(schedules);
}

BatchResult qaoa_batch_evaluate(const TermList& terms,
                                std::span<const QaoaParams> schedules,
                                const BatchOptions& opts,
                                std::string_view simulator) {
  const ProblemSession session(terms, SimulatorSpec::parse(simulator));
  return session.batch().evaluate(schedules, opts);
}

OptimizeOutcome optimize_qaoa(const TermList& terms, int p,
                              NelderMeadOptions opts,
                              std::string_view simulator) {
  const ProblemSession session(terms, SimulatorSpec::parse(simulator));
  OptimizerSpec optimizer;
  optimizer.p = p;
  optimizer.nelder_mead = opts;
  const EvalResult r = session.optimize(optimizer);
  OptimizeOutcome out;
  out.params = *r.params;
  out.fval = *r.expectation;
  out.evaluations = *r.evaluations;
  out.batches = *r.batches;
  return out;
}

}  // namespace qokit::api
