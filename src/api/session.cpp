#include "api/session.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "optimize/objective.hpp"
#include "problems/labs.hpp"
#include "problems/maxcut.hpp"
#include "problems/sk.hpp"
#include "statevector/sampling.hpp"

namespace qokit::api {
namespace {

using steady = std::chrono::steady_clock;

std::uint64_t elapsed_ns(steady::time_point since) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(steady::now() -
                                                           since)
          .count());
}

/// Build the simulator for the session's member-init list while timing
/// the construction (which is where the diagonal precompute happens).
std::unique_ptr<QaoaFastSimulatorBase> build_timed(
    const TermList& terms, const SimulatorSpec& spec,
    std::uint64_t* precompute_ns) {
  if (spec.simd != SimdChoice::Auto)
    force_simd_level(spec.simd == SimdChoice::Scalar ? SimdLevel::Scalar
                                                     : SimdLevel::Avx2);
  // Like simd=, the obs token is process-global and sticky: on turns
  // instrumentation on for everyone; the default never turns it off (the
  // environment's choice survives a plain-spec session).
  if (spec.obs) obs::set_enabled(true);
  const steady::time_point start = steady::now();
  std::unique_ptr<QaoaFastSimulatorBase> sim = make_simulator(terms, spec);
  *precompute_ns = elapsed_ns(start);
  return sim;
}

BatchOptions batch_options_for(const EvalRequest& request,
                               std::uint64_t sample_seed) {
  BatchOptions opts;
  opts.parallelism = request.parallelism;
  opts.compute_expectation = request.expectation;
  opts.compute_overlap = request.overlap;
  opts.overlap_weight = request.overlap_weight;
  opts.sample_shots = request.shots;
  opts.sample_seed = sample_seed;
  return opts;
}

}  // namespace

ProblemSession::ProblemSession(const TermList& terms, SimulatorSpec spec)
    : spec_(spec),
      terms_(terms),
      sim_(build_timed(terms_, spec_, &precompute_ns_)),
      evaluator_(*sim_, batch_options_for(EvalRequest{}, spec.sample_seed)) {}

ProblemSession ProblemSession::maxcut(const Graph& g, SimulatorSpec spec) {
  return ProblemSession(maxcut_terms(g), spec);
}

ProblemSession ProblemSession::labs(int n, SimulatorSpec spec) {
  return ProblemSession(labs_terms(n), spec);
}

ProblemSession ProblemSession::portfolio(const PortfolioInstance& inst,
                                         SimulatorSpec spec) {
  // Listing 2 semantics by default: the Hamming-weight-preserving ring-XY
  // mixer started from the in-budget Dicke state. A spec that already
  // chose an xy mixer or a weight keeps its choice.
  if (spec.mixer == MixerType::X) spec.mixer = MixerType::XYRing;
  if (spec.initial_weight < 0) spec.initial_weight = inst.budget;
  return ProblemSession(portfolio_terms(inst), spec);
}

ProblemSession ProblemSession::sat(const SatInstance& inst,
                                   SimulatorSpec spec) {
  return ProblemSession(sat_terms(inst), spec);
}

ProblemSession ProblemSession::sk(int n, std::uint64_t seed,
                                  SimulatorSpec spec) {
  return ProblemSession(sk_terms(n, seed), spec);
}

EvalResult ProblemSession::evaluate(const QaoaParams& schedule,
                                    const EvalRequest& request) const {
  if (request.shots < 0)
    throw std::invalid_argument("EvalRequest: shots must be >= 0");
  const detail::ReentrancyGuard::Scope scope(guard_,
                                             "ProblemSession::evaluate");
  static const obs::Counter evaluates =
      obs::counter("qokit_evaluates_total");
  static const obs::Histogram layer_hist =
      obs::histogram("qokit_layer_ns");
  static const obs::Histogram reduce_hist =
      obs::histogram("qokit_reduce_ns");
  evaluates.add();
  obs::Span span("evaluate");
  span.attr("n", num_qubits());
  span.attr("p", static_cast<std::int64_t>(schedule.gammas.size()));
  span.attr("backend", qokit::to_string(spec_.backend).data());
  span.attr("prec_bits",
            static_cast<std::int64_t>(precision_bits(sim_->precision())));
  EvalResult out;
  const steady::time_point t0 = steady::now();
  // Refill the reused scratch slot from the cached initial state (a
  // copy-assign that reuses its buffer) and evolve in place -- the exact
  // arithmetic of a fresh simulator's simulate_qaoa, without its
  // allocations.
  scratch_ = evaluator_.initial_state();
  std::vector<std::uint64_t> layer_ns;
  if (request.timings) {
    // Evolve layer by layer so the per-layer breakdown can be recorded.
    // Chaining p one-layer simulate_qaoa_from calls performs exactly the
    // arithmetic of the single p-layer call (the state is moved through),
    // so timed and untimed evaluations stay bit-identical. The one-layer
    // slices always match pairwise, so the whole-schedule length check
    // must happen here (the untimed path gets it from the simulator).
    if (schedule.gammas.size() != schedule.betas.size())
      throw std::invalid_argument(
          "simulate_qaoa: gammas/betas length mismatch");
    const std::span<const double> gammas(schedule.gammas);
    const std::span<const double> betas(schedule.betas);
    layer_ns.reserve(gammas.size());
    for (std::size_t l = 0; l < gammas.size(); ++l) {
      obs::Span lspan("layer");
      lspan.attr("layer", static_cast<std::int64_t>(l));
      const steady::time_point tl = steady::now();
      scratch_ = sim_->simulate_qaoa_from(
          std::move(scratch_), gammas.subspan(l, 1), betas.subspan(l, 1));
      layer_ns.push_back(elapsed_ns(tl));
      layer_hist.record(layer_ns.back());
    }
  } else if (request.expectation) {
    // Fused simulate+reduce: FurQaoaSimulator folds the expectation into
    // the final layer's last pipeline pass (skipping one full read of the
    // state); other backends run the two-pass default. Bit-identical to
    // simulate_qaoa_from + get_expectation either way, and the evolved
    // state stays in scratch_ for overlap/sampling below. The timed path
    // keeps the explicit two-pass split so layer timings stay pure
    // simulation.
    out.expectation = sim_->simulate_qaoa_expectation(
        scratch_, schedule.gammas, schedule.betas);
  } else {
    scratch_ = sim_->simulate_qaoa_from(std::move(scratch_), schedule.gammas,
                                        schedule.betas);
  }
  const std::uint64_t simulate_ns = elapsed_ns(t0);
  const steady::time_point t1 = steady::now();
  {
    obs::Span rspan("reduce");
    if (request.expectation && !out.expectation.has_value())
      out.expectation = sim_->get_expectation(scratch_);
    if (request.overlap)
      out.overlap = sim_->get_overlap(scratch_, request.overlap_weight);
    if (request.shots > 0)
      out.samples = StateSampler(scratch_).sample(request.shots,
                                                  spec_.sample_seed);
  }
  const std::uint64_t reduce_ns = elapsed_ns(t1);
  reduce_hist.record(reduce_ns);
  if (request.timings)
    out.timings = Timings{precompute_ns_, simulate_ns, reduce_ns,
                          std::move(layer_ns)};
  return out;
}

std::vector<EvalResult> ProblemSession::evaluate_batch(
    std::span<const QaoaParams> schedules, const EvalRequest& request) const {
  const detail::ReentrancyGuard::Scope scope(
      guard_, "ProblemSession::evaluate_batch");
  BatchOptions opts = batch_options_for(request, spec_.sample_seed);
  opts.record_timings = request.timings;
  const steady::time_point t0 = steady::now();
  evaluator_.evaluate_into(schedules, opts, batch_scratch_);
  const std::uint64_t batch_ns = elapsed_ns(t0);
  std::vector<EvalResult> out(schedules.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    if (request.expectation)
      out[i].expectation = batch_scratch_.expectations[i];
    if (request.overlap) out[i].overlap = batch_scratch_.overlaps[i];
    if (request.shots > 0)
      out[i].samples = std::move(batch_scratch_.samples[i]);
    if (request.timings) {
      // Per-item attribution from the batch engine (this schedule's own
      // evolution and scoring time), plus the whole-call wall time so
      // callers can still see what the submission cost end to end.
      Timings t;
      t.precompute_ns = precompute_ns_;
      t.simulate_ns = batch_scratch_.simulate_ns[i];
      t.reduce_ns = batch_scratch_.reduce_ns[i];
      t.batch_ns = batch_ns;
      out[i].timings = std::move(t);
    }
  }
  return out;
}

std::vector<double> ProblemSession::expectations(
    std::span<const QaoaParams> schedules) const {
  const detail::ReentrancyGuard::Scope scope(
      guard_, "ProblemSession::expectations");
  return evaluator_.expectations(schedules);
}

EvalResult ProblemSession::optimize(const OptimizerSpec& optimizer) const {
  const detail::ReentrancyGuard::Scope scope(guard_,
                                             "ProblemSession::optimize");
  if (optimizer.p < 1)
    throw std::invalid_argument("ProblemSession::optimize: p must be >= 1");
  QaoaParams start = optimizer.initial;
  if (start.p() == 0) start = linear_ramp(optimizer.p);
  if (start.p() != optimizer.p)
    throw std::invalid_argument(
        "ProblemSession::optimize: initial schedule depth does not match p");
  QaoaBatchObjective objective(*sim_, optimizer.p);
  const auto population =
      [&objective](const std::vector<std::vector<double>>& points) {
        return objective(points);
      };
  const steady::time_point t0 = steady::now();
  const OptResult r =
      optimizer.method == OptimizerSpec::Method::NelderMead
          ? nelder_mead_batched(population, start.flatten(),
                                optimizer.nelder_mead)
          : spsa_batched(population, start.flatten(), optimizer.spsa);
  EvalResult out;
  out.expectation = r.fval;
  out.params = QaoaParams::unflatten(r.x);
  out.evaluations = objective.evaluations();
  out.batches = objective.batches();
  out.iterations = r.iterations;
  out.converged = r.converged;
  out.timings = Timings{precompute_ns_, elapsed_ns(t0), 0};
  return out;
}

StateVector ProblemSession::simulate(const QaoaParams& schedule) const {
  const detail::ReentrancyGuard::Scope scope(guard_,
                                             "ProblemSession::simulate");
  return sim_->simulate_qaoa(schedule.gammas, schedule.betas);
}

std::vector<std::uint64_t> ProblemSession::sample(const QaoaParams& schedule,
                                                  int shots) const {
  EvalRequest request;
  request.expectation = false;
  request.shots = shots;
  EvalResult r = evaluate(schedule, request);
  return r.samples ? std::move(*r.samples) : std::vector<std::uint64_t>{};
}

}  // namespace qokit::api
