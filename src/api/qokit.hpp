// qokit-cpp umbrella header and the stable compatibility layer.
//
// The primary public API is session-based (api/session.hpp): parse or
// build a typed SimulatorSpec, construct a ProblemSession once per
// problem, and route every query -- scalar, batch, optimize, sample --
// through EvalRequest/EvalResult so the precompute is paid exactly once.
//
// The "easy-to-use one-line methods" of paper Sec. IV below (MaxCut,
// LABS, portfolio, k-SAT, batch, optimize) are kept as the *stable
// compatibility layer*: thin wrappers that build a throwaway session per
// call and return bit-identical outputs to previous releases. Prefer a
// ProblemSession whenever the same problem is queried more than once.
#pragma once

#include <span>
#include <string_view>

#include "api/session.hpp"
#include "api/spec.hpp"
#include "batch/batch_eval.hpp"
#include "common/bitops.hpp"
#include "common/cpu_features.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "diagonal/ops.hpp"
#include "dist/dist_fur.hpp"
#include "fur/fwht.hpp"
#include "fur/simulator.hpp"
#include "fur/symmetry.hpp"
#include "gatesim/simulator.hpp"
#include "optimize/grid.hpp"
#include "optimize/labs_params.hpp"
#include "optimize/nelder_mead.hpp"
#include "optimize/objective.hpp"
#include "optimize/params.hpp"
#include "optimize/spsa.hpp"
#include "problems/graph.hpp"
#include "problems/labs.hpp"
#include "problems/maxcut.hpp"
#include "problems/portfolio.hpp"
#include "problems/sat.hpp"
#include "problems/sk.hpp"
#include "statevector/sampling.hpp"
#include "terms/term.hpp"

namespace qokit::api {

// The `simulator` argument of every wrapper below is parsed by
// SimulatorSpec::parse (see api/spec.hpp for the full grammar): "auto",
// "serial", "threaded", "u16", "fwht", "gatesim", the distributed
// spellings "dist[:K[:staged|pairwise|direct]]", plus key=value options
// such as "seed=7". Unknown spellings throw std::invalid_argument naming
// the offending token -- no entry point falls back to a default.

/// QAOA objective for MaxCut on `g` at the given schedule (Listing 1).
/// Returns <C> with C = -cut, so -return is the expected cut weight.
double qaoa_maxcut_expectation(const Graph& g, std::span<const double> gammas,
                               std::span<const double> betas,
                               std::string_view simulator = "auto");

/// Result of the one-line LABS evaluation (Listing 3 semantics).
struct LabsEvaluation {
  double expectation = 0.0;    ///< <E(s)> over the QAOA state
  double ground_overlap = 0.0; ///< probability of an optimal sequence
  double min_energy = 0.0;     ///< optimum from the precomputed diagonal
};

/// Simulate LABS QAOA and report expectation + ground-state overlap.
LabsEvaluation qaoa_labs_evaluate(int n, std::span<const double> gammas,
                                  std::span<const double> betas,
                                  std::string_view simulator = "auto");

/// Portfolio-optimization objective under the ring-XY mixer started from
/// the in-budget Dicke state (Listing 2 semantics).
double qaoa_portfolio_expectation(const PortfolioInstance& inst,
                                  std::span<const double> gammas,
                                  std::span<const double> betas,
                                  std::string_view simulator = "auto");

/// Result of the one-line k-SAT evaluation.
struct SatEvaluation {
  double expected_violations = 0.0;  ///< <number of violated clauses>
  double p_satisfied = 0.0;          ///< probability of a satisfying string
  bool satisfiable = false;          ///< instance has a zero-cost string
};

/// Simulate QAOA on a k-SAT instance (the paper's Ref. [4] workload) and
/// report expected violations plus the satisfying-assignment probability.
SatEvaluation qaoa_sat_evaluate(const SatInstance& inst,
                                std::span<const double> gammas,
                                std::span<const double> betas,
                                std::string_view simulator = "auto");

/// Batched multi-schedule expectation: precompute the diagonal once and
/// evaluate <C> for every schedule through BatchEvaluator (shared scratch,
/// schedule- or state-parallel by the cost heuristic). Results are
/// bit-identical to calling simulate_qaoa per schedule in a loop.
std::vector<double> qaoa_batch_expectation(
    const TermList& terms, std::span<const QaoaParams> schedules,
    std::string_view simulator = "auto");

/// Full batched evaluation: expectations plus optional ground-state
/// overlaps and sampled bitstrings per schedule, per `opts`.
BatchResult qaoa_batch_evaluate(const TermList& terms,
                                std::span<const QaoaParams> schedules,
                                const BatchOptions& opts,
                                std::string_view simulator = "auto");

/// One-call parameter optimization: build the fast simulator for `terms`,
/// start from a linear-ramp schedule at depth p, run Nelder-Mead. The
/// optimizer submits its populations (initial simplex, shrink steps)
/// through BatchEvaluator -- identical trajectory to the scalar path,
/// evaluated batch-at-a-time.
struct OptimizeOutcome {
  QaoaParams params;      ///< optimized schedule
  double fval = 0.0;      ///< optimized objective
  int evaluations = 0;    ///< simulator calls spent
  int batches = 0;        ///< batch submissions those calls arrived in
};
OptimizeOutcome optimize_qaoa(const TermList& terms, int p,
                              NelderMeadOptions opts = {},
                              std::string_view simulator = "auto");

}  // namespace qokit::api
