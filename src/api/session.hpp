// Session-based public API: hold the precompute, answer many queries.
//
// The paper's central economics is amortization -- precompute the cost
// diagonal once, then make each layer (and, with src/batch/, each
// schedule) cheap. ProblemSession carries that economics to the API
// boundary: construct it once per problem and it owns the simulator, the
// precomputed diagonal, the cached initial state, a BatchEvaluator
// scratch pool, and the sampling seed; every entry point -- scalar
// evaluation, batched evaluation, optimization, sampling -- then routes
// through one typed EvalRequest/EvalResult surface with zero re-
// precompute and zero steady-state statevector allocations. The one-line
// free functions in api/qokit.hpp remain as the stable compatibility
// layer; each is a thin wrapper over a throwaway session.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "api/spec.hpp"
#include "batch/batch_eval.hpp"
#include "obs/obs.hpp"
#include "optimize/nelder_mead.hpp"
#include "optimize/params.hpp"
#include "optimize/spsa.hpp"
#include "problems/graph.hpp"
#include "problems/portfolio.hpp"
#include "problems/sat.hpp"
#include "statevector/state.hpp"
#include "terms/term.hpp"

namespace qokit::api {

namespace detail {

/// Cheap exclusive-entry guard for the session's single-caller contract.
/// The reused scratch_/batch_scratch_ buffers make concurrent calls on one
/// ProblemSession silent data corruption; Scope turns that misuse into an
/// immediate std::logic_error instead (one uncontended atomic exchange on
/// entry, a store on exit). Not a lock: the second caller fails, it never
/// waits -- callers that want serialized access to one session go through
/// serve::SessionCache, whose checkout hands out exclusive leases (an
/// annotated qokit::Mutex protocol; see common/sync.hpp). Deliberately an
/// atomic, not a capability: there is no blocking discipline here for the
/// thread-safety analysis to prove, only a tripwire.
class ReentrancyGuard {
 public:
  ReentrancyGuard() = default;
  // A session is only movable between calls, so the flag never transfers:
  // both sides come out idle.
  ReentrancyGuard(ReentrancyGuard&&) noexcept {}
  ReentrancyGuard& operator=(ReentrancyGuard&&) noexcept { return *this; }

  class Scope {
   public:
    Scope(const ReentrancyGuard& guard, const char* what) : guard_(guard) {
      if (guard_.busy_.exchange(true, std::memory_order_acquire))
        throw std::logic_error(
            std::string(what) +
            ": concurrent call on one ProblemSession (sessions reuse "
            "per-instance scratch and are single-caller; use one session "
            "per thread or a serve::SessionCache checkout)");
    }
    ~Scope() { guard_.busy_.store(false, std::memory_order_release); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    const ReentrancyGuard& guard_;
  };

 private:
  mutable std::atomic<bool> busy_{false};
};

}  // namespace detail

/// Where an evaluation's time went, in nanoseconds.
struct Timings {
  /// The session's one-time diagonal precompute. Paid at construction and
  /// amortized over every subsequent call -- reported (unchanged) on each
  /// result so callers can see what the session saved them, never re-paid.
  std::uint64_t precompute_ns = 0;
  std::uint64_t simulate_ns = 0;  ///< state evolution (whole batch when
                                  ///< batched; evolution and scoring are
                                  ///< interleaved there)
  std::uint64_t reduce_ns = 0;    ///< scoring: expectation / overlap /
                                  ///< sampling (0 for batched calls)
  /// Per-layer breakdown of simulate_ns (scalar evaluate() only; empty
  /// for batched calls): layer_ns[l] is the wall time of layer l's fused
  /// (or unfused) pass sequence, measured by chaining one-layer
  /// simulate_qaoa_from calls (bit-identical to the single call). Each
  /// entry includes that call's dispatch overhead — in particular the
  /// dist:K backend re-spawns its rank team per call, so its layer_ns is
  /// team setup + compute; compare single-node numbers, not dist ones,
  /// against BENCH_pipeline.json.
  std::vector<std::uint64_t> layer_ns{};
  /// Batched calls only: wall time of the whole evaluate_batch submission
  /// this item rode in (the same value on every item of one call; 0 for
  /// scalar evaluate()). simulate_ns / reduce_ns above are this item's
  /// own evolution / scoring time.
  std::uint64_t batch_ns = 0;
};

/// What an evaluate() / evaluate_batch() call should compute.
struct EvalRequest {
  bool expectation = true;  ///< fill EvalResult::expectation
  bool overlap = false;     ///< fill EvalResult::overlap
  int overlap_weight = -1;  ///< restrict the overlap minimum to this
                            ///< Hamming-weight sector; -1 = full space
  int shots = 0;            ///< >0: fill EvalResult::samples
  bool timings = false;     ///< fill EvalResult::timings
  /// Batched calls only: schedule- vs state-parallel execution (Auto lets
  /// the BatchEvaluator cost heuristic decide). Ignored by evaluate().
  BatchParallelism parallelism = BatchParallelism::Auto;
};

/// Unified result shape: requested fields are engaged, everything else is
/// nullopt. Subsumes the historical LabsEvaluation / SatEvaluation /
/// BatchResult / OptimizeOutcome shapes (which remain in the
/// compatibility layer, populated from this).
struct EvalResult {
  std::optional<double> expectation;  ///< <C> over the evolved state
  std::optional<double> overlap;      ///< ground-state probability mass
  std::optional<std::vector<std::uint64_t>> samples;  ///< drawn bitstrings
  std::optional<Timings> timings;

  // Engaged by ProblemSession::optimize only:
  std::optional<QaoaParams> params;  ///< optimized schedule
  std::optional<int> evaluations;    ///< simulator calls spent
  std::optional<int> batches;        ///< batch submissions those arrived in
  std::optional<int> iterations;     ///< optimizer iterations
  std::optional<bool> converged;     ///< tolerance met within budget
};

/// Which optimizer ProblemSession::optimize runs and how.
struct OptimizerSpec {
  enum class Method { NelderMead, Spsa };
  Method method = Method::NelderMead;
  int p = 1;           ///< QAOA depth (parameter layout is 2p)
  QaoaParams initial;  ///< start schedule; empty -> linear_ramp(p)
  NelderMeadOptions nelder_mead{};  ///< used when method == NelderMead
  SpsaOptions spsa{};               ///< used when method == Spsa
};

/// A reusable handle over one problem: owns the simulator (and with it
/// the precomputed cost diagonal), the cached initial state, the batch
/// scratch pool, and the sampling seed from its SimulatorSpec. Repeated
/// calls perform zero re-precompute and zero steady-state statevector
/// allocations (pinned by tests/test_session_api.cpp via the
/// instrumented AlignedAllocator counter). Results are bit-identical to
/// the legacy free functions on every backend.
///
/// Single-caller contract: a session is NOT safe for concurrent calls on
/// one instance -- evaluate / evaluate_batch / expectations / optimize /
/// simulate mutate the per-instance scratch buffers. Concurrent entry is
/// detected by an atomic reentrancy guard and throws std::logic_error
/// instead of silently corrupting results (sample routes through evaluate
/// and is covered by its guard). Distinct sessions are independent; a
/// multi-threaded server shares sessions via serve::SessionCache, whose
/// exclusive checkout upholds this contract. Movable (between calls only),
/// not copyable.
class ProblemSession {
 public:
  /// Precomputes the diagonal for `terms` under `spec` (the one expensive
  /// step; see precompute_ns()). A non-Auto spec.simd is applied
  /// process-globally via force_simd_level, mirroring QOKIT_SIMD=scalar.
  explicit ProblemSession(const TermList& terms, SimulatorSpec spec = {});

  // Problem-family builders (the session-shaped counterparts of the
  // one-line methods).
  static ProblemSession maxcut(const Graph& g, SimulatorSpec spec = {});
  static ProblemSession labs(int n, SimulatorSpec spec = {});
  /// Defaults the spec to the ring-XY mixer started from the in-budget
  /// Dicke state (Listing 2 semantics) unless the spec already picked an
  /// xy mixer / weight.
  static ProblemSession portfolio(const PortfolioInstance& inst,
                                  SimulatorSpec spec = {});
  static ProblemSession sat(const SatInstance& inst, SimulatorSpec spec = {});
  static ProblemSession sk(int n, std::uint64_t seed,
                           SimulatorSpec spec = {});

  /// Evaluate one schedule. Evolves the reused scratch state (zero
  /// steady-state statevector allocations) and scores exactly as a
  /// freshly built simulator would -- bit-identical outputs.
  EvalResult evaluate(const QaoaParams& schedule,
                      const EvalRequest& request = {}) const;

  /// Evaluate many schedules through the batch engine (shared diagonal,
  /// per-thread scratch pool, outer/inner parallelism by cost heuristic).
  /// Results are indexed like `schedules`; expectations and overlaps are
  /// bit-identical to calling evaluate() in a loop. Sampling draws
  /// schedule i from Rng(spec().sample_seed + i) -- independent of
  /// evaluation order and mode, and matching a scalar evaluate() (which
  /// draws from Rng(sample_seed)) at index 0 only.
  std::vector<EvalResult> evaluate_batch(
      std::span<const QaoaParams> schedules,
      const EvalRequest& request = {}) const;

  /// Expectations-only fast path (what optimizer populations use).
  std::vector<double> expectations(
      std::span<const QaoaParams> schedules) const;

  /// Run a parameter optimization. The population steps go through the
  /// session's batch plumbing (QaoaBatchObjective); the result engages
  /// params / expectation (the optimized objective) / evaluations /
  /// batches / iterations / converged.
  EvalResult optimize(const OptimizerSpec& optimizer) const;

  /// The evolved state itself (allocates; the get_statevector analogue).
  StateVector simulate(const QaoaParams& schedule) const;

  /// Draw `shots` measurement outcomes at a schedule, seeded with
  /// spec().sample_seed: sessions with equal specs produce identical
  /// sample streams, whatever their Exec policy.
  std::vector<std::uint64_t> sample(const QaoaParams& schedule,
                                    int shots) const;

  const SimulatorSpec& spec() const { return spec_; }
  const TermList& terms() const { return terms_; }
  const QaoaFastSimulatorBase& simulator() const { return *sim_; }
  const CostDiagonal& cost_diagonal() const {
    return sim_->get_cost_diagonal();
  }
  /// The session's batch engine (for BatchOptions-level control; the
  /// compatibility wrappers use this).
  const BatchEvaluator& batch() const { return evaluator_; }
  int num_qubits() const { return sim_->num_qubits(); }
  /// Wall time of the one-time diagonal precompute at construction.
  std::uint64_t precompute_ns() const { return precompute_ns_; }
  /// Scrape the process-wide metrics registry (src/obs/): every counter,
  /// gauge, and histogram, merged across threads. Metrics are
  /// process-global, not per-session -- this is a convenience handle on
  /// qokit::obs::snapshot(). Empty values unless observability is on
  /// (QOKIT_OBS=1 or a spec with obs=on).
  obs::Snapshot metrics() const { return obs::snapshot(); }

 private:
  SimulatorSpec spec_;
  TermList terms_;
  std::uint64_t precompute_ns_ = 0;
  std::unique_ptr<QaoaFastSimulatorBase> sim_;
  BatchEvaluator evaluator_;
  mutable StateVector scratch_;       ///< scalar-evaluate slot, reused
  mutable BatchResult batch_scratch_; ///< reused across evaluate_batch calls
  detail::ReentrancyGuard guard_;     ///< trips on concurrent entry
};

}  // namespace qokit::api
