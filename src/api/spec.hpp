// Typed simulator configuration for the public API.
//
// The one-line methods historically selected backends via an untyped
// string that every entry point re-parsed (and the distributed spellings
// were recognized by only some of them). SimulatorSpec is the single
// typed description of "which simulator, configured how": every string
// spelling parses into it exactly once, every factory consumes it, and
// to_string() renders the canonical spelling back, so a spec can be
// logged, stored, and compared for equality. choose_simulator and
// friends remain as thin wrappers over make_simulator(terms, spec).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>

#include "common/cpu_features.hpp"
#include "dist/alltoall.hpp"
#include "fur/mixers.hpp"
#include "fur/simulator.hpp"
#include "pipeline/layer_plan.hpp"
#include "terms/term.hpp"

namespace qokit {

/// Which simulator implementation a spec selects.
enum class Backend {
  Auto,      ///< the default: threaded fused-kernel FurQaoaSimulator
  Serial,    ///< single-threaded FurQaoaSimulator (portable reference)
  Threaded,  ///< explicit OpenMP FurQaoaSimulator
  U16,       ///< FurQaoaSimulator over the uint16-compressed diagonal
  Fwht,      ///< FurQaoaSimulator with the two-transform mixer (X only)
  Gatesim,   ///< gate-at-a-time evolution (diagonal-scored; baseline)
  Dist,      ///< DistributedFurSimulator over `ranks` virtual ranks
};

/// Canonical backend token ("auto", "serial", ..., "dist").
std::string_view to_string(Backend backend);

/// Which SIMD kernel family a session should pin (process-global; see
/// SimulatorSpec::simd).
enum class SimdChoice {
  Auto,    ///< whatever active_simd_level() resolves (CPUID + env)
  Scalar,  ///< force the portable scalar family
  Avx2,    ///< request AVX2 (clamped to scalar when unavailable)
};

/// Amplitude precision a spec requests. Auto defers to the QOKIT_PREC
/// environment variable ("f32" selects float amplitudes when the resolved
/// backend supports them; anything else means f64) and otherwise means
/// f64 — so default spec spellings, cache keys, and results are untouched
/// by this knob. Explicit F32 on an unsupported combination (gatesim, xy
/// mixers) throws from make_simulator instead of silently widening.
enum class Prec {
  Auto,  ///< QOKIT_PREC env, else f64; downgrades silently if unsupported
  F32,   ///< float amplitudes (X mixer fur/dist backends only)
  F64,   ///< double amplitudes (the pre-existing behavior)
};

/// How a spec engages the machine-adaptive subsystem (src/tune/). Every
/// choice is bit-identical to every other — tuning changes traversal
/// order and placement, never arithmetic.
enum class TuneChoice {
  Auto,    ///< follow QOKIT_TUNE / QOKIT_TUNE_PATH; default = heuristic
  Static,  ///< pin the pre-tune defaults ("static"/"off"; the CI oracle)
  Search,  ///< force the one-shot empirical micro-search
  Path,    ///< load the profile file named by SimulatorSpec::tune_path
};

/// Typed construction-time configuration for every simulator backend.
///
/// String grammar (SimulatorSpec::parse):
///
///   spec    := backend (":" option)*
///   backend := "auto" | "serial" | "threaded" | "u16" | "fwht"
///            | "gatesim" | "dist" [":" K [":" staged|pairwise|direct]]
///   option  := "mixer="    ("x" | "xyring" | "xycomplete")
///            | "exec="     ("serial" | "parallel")
///            | "ranks="    <int>                (dist only)
///            | "alltoall=" ("staged" | "pairwise" | "direct")
///            | "weight="   <int>                (Dicke weight, xy mixers)
///            | "simd="     ("auto" | "scalar" | "avx2")
///            | "seed="     <uint64>             (sampling seed)
///            | "pipeline=" ("auto" | "on" | "off")
///            | "obs="      ("on" | "off")
///            | "tune="     ("auto" | "static" | "off" | "search" | <path>)
///            | "prec="     ("auto" | "f32" | "f64")
///
/// Any other token throws std::invalid_argument naming the offending
/// token -- no spelling silently falls back to a default simulator.
/// parse() validates tokens only; semantic constraints (e.g. fwht or
/// dist with an XY mixer) are enforced by make_simulator.
struct SimulatorSpec {
  Backend backend = Backend::Auto;
  MixerType mixer = MixerType::X;
  /// Kernel execution policy. parse() defaults this per backend (Serial
  /// for "serial", Parallel otherwise); ignored by Backend::Dist, whose
  /// rank threads are the parallelism.
  Exec exec = Exec::Parallel;
  int ranks = 2;  ///< virtual rank count (Backend::Dist only)
  AlltoallStrategy alltoall = AlltoallStrategy::Staged;  ///< Dist only
  int initial_weight = -1;  ///< Dicke weight for xy mixers; -1 = n/2
  /// SIMD kernel-family override. Applied by ProblemSession at
  /// construction via force_simd_level -- PROCESS-GLOBAL and sticky,
  /// mirroring the QOKIT_SIMD environment override: it pins the dispatch
  /// level for every simulator in the process from that point on (Auto
  /// never un-pins), so use it to pin a whole run (e.g. reproducibility),
  /// not to mix kernel families between live sessions. make_simulator
  /// ignores it.
  SimdChoice simd = SimdChoice::Auto;
  std::uint64_t sample_seed = 1;  ///< base seed for drawn bitstrings
  /// Cache-blocked fused layer execution (src/pipeline/). Auto follows
  /// QOKIT_PIPELINE (on unless the env says off); Off pins the unfused
  /// oracle path, bit-identical by contract. Ignored by Backend::Gatesim
  /// (gate-at-a-time evolution has no layer plan).
  pipeline::PipelineMode pipeline = pipeline::PipelineMode::Auto;
  /// Runtime observability (src/obs/). obs=on turns the process-global
  /// instrumentation flag on when the session is built (same switch as the
  /// QOKIT_OBS environment variable); the default leaves whatever the
  /// environment chose untouched. Like simd=, this is process-global and
  /// sticky -- obs=on is never un-set by a later default-spec session.
  bool obs = false;
  /// Machine-adaptive execution (src/tune/). make_simulator resolves the
  /// effective TuneProfile (spec value first, then QOKIT_TUNE /
  /// QOKIT_TUNE_PATH for Auto) and injects its pipeline Geometry into the
  /// simulator; thread-count and NUMA side effects are process-global,
  /// applied at resolution. "tune=off" parses as Static (and canonicalizes
  /// to "tune=static"); any other unrecognized value is taken as a profile
  /// file path (tune_path). Bit-identical across all choices by contract.
  TuneChoice tune = TuneChoice::Auto;
  /// Profile file for TuneChoice::Path (empty otherwise). Paths containing
  /// ':' are not representable in the string grammar; build the spec
  /// directly for those.
  std::string tune_path;
  /// Amplitude scalar width (see enum Prec). Auto = QOKIT_PREC env, else
  /// f64; to_string() elides Auto so default spellings are unchanged.
  Prec prec = Prec::Auto;

  /// Parse a spelling per the grammar above. Throws std::invalid_argument
  /// naming the offending token on anything unrecognized.
  static SimulatorSpec parse(std::string_view name);

  /// Canonical spelling; parse(to_string()) reproduces the spec exactly
  /// (including every non-default field).
  std::string to_string() const;

  friend bool operator==(const SimulatorSpec&, const SimulatorSpec&) =
      default;
};

/// Build the simulator a spec describes. The single factory behind
/// choose_simulator / choose_simulator_xyring / choose_simulator_xycomplete
/// / choose_simulator_distributed and the session API. Throws
/// std::invalid_argument on semantically invalid combinations (fwht or
/// dist with a non-X mixer).
std::unique_ptr<QaoaFastSimulatorBase> make_simulator(
    const TermList& terms, const SimulatorSpec& spec);

}  // namespace qokit
