// Fig. 2 reproduction: end-to-end time to evaluate the QAOA expectation at
// p = 6 on MaxCut over random 3-regular graphs, CPU simulators only.
//
// Series mapping (paper -> ours):
//   QOKit CPU  -> Fur            (precompute + Algorithm 3 + inner product)
//   Qiskit     -> Gates          (compile to CX ladders, gate-at-a-time,
//                                 term-by-term expectation)
//   OpenQAOA   -> GatesSlow      (out-of-place per-gate temporaries, serial)
//
// "End-to-end" includes everything a fresh objective evaluation pays:
// simulator construction (which for Fur is the precompute) through the
// expectation value. Expected shape: Fur wins by ~an order of magnitude at
// larger n (paper reports 5-10x on its hardware).
#include <benchmark/benchmark.h>

#include "api/qokit.hpp"

namespace {

using namespace qokit;

constexpr int kP = 6;

void BM_Fig2_Fur(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Graph g = Graph::random_regular(n, 3, 42);
  const QaoaParams params = linear_ramp(kP, 0.8);
  for (auto _ : state) {
    const TermList terms = maxcut_terms(g);
    const FurQaoaSimulator sim(terms, {});
    const StateVector r = sim.simulate_qaoa(params.gammas, params.betas);
    benchmark::DoNotOptimize(sim.get_expectation(r));
  }
}
BENCHMARK(BM_Fig2_Fur)->DenseRange(6, 20, 2)->Unit(benchmark::kMillisecond);

void BM_Fig2_Gates(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Graph g = Graph::random_regular(n, 3, 42);
  const QaoaParams params = linear_ramp(kP, 0.8);
  for (auto _ : state) {
    const TermList terms = maxcut_terms(g);
    const GateQaoaSimulator sim(terms, {});
    const StateVector r = sim.simulate_qaoa(params.gammas, params.betas);
    benchmark::DoNotOptimize(sim.get_expectation(r));
  }
}
BENCHMARK(BM_Fig2_Gates)->DenseRange(6, 18, 2)->Unit(benchmark::kMillisecond);

void BM_Fig2_GatesSlow(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Graph g = Graph::random_regular(n, 3, 42);
  const QaoaParams params = linear_ramp(kP, 0.8);
  for (auto _ : state) {
    const TermList terms = maxcut_terms(g);
    const GateQaoaSimulator sim(terms, {.exec = Exec::Serial,
                                        .out_of_place = true});
    const StateVector r = sim.simulate_qaoa(params.gammas, params.betas);
    benchmark::DoNotOptimize(sim.get_expectation(r));
  }
}
BENCHMARK(BM_Fig2_GatesSlow)
    ->DenseRange(6, 14, 2)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
