// Mixed precision: f32 vs f64 amplitude path, ns/layer and bytes/amp at
// n = 20, 22, 24, serial and parallel, emitting BENCH_precision.json.
//
// Times simulate_qaoa_from on the same FurQaoaSimulator configuration
// (same problem, schedule, pipeline, and SIMD dispatch) with only the
// amplitude scalar switched, so the ratio isolates what f32 buys: half
// the bytes per sweep and twice the SIMD lane width. Acceptance target:
// >= 1.6x fewer ns/layer on bandwidth-bound sizes (n = 24). Accuracy is
// cross-checked before timing — the full-size error-budget study
// (n = 24, p = 100: per-run amplitude drift and expectation error
// against the f64 oracle) runs first, and a drift past the pinned
// tolerance exits nonzero, so the bench doubles as the large-n twin of
// test_precision's drift study.
//
// Smoke mode (QOKIT_BENCH_SMOKE=1 or --smoke): n = 14 and 16 only, 1 rep,
// p = 20 study — used by CI (and `ctest -C bench -L bench-smoke`) to keep
// the JSON generation path alive without burning minutes.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "bench_report.hpp"
#include "common/aligned.hpp"
#include "common/bitops.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "diagonal/cost_diagonal.hpp"
#include "fur/simulator.hpp"
#include "statevector/state.hpp"

namespace {

using namespace qokit;

struct Result {
  int n;
  const char* exec;
  double f64_ns_layer;
  double f32_ns_layer;
};

struct Study {
  int n = 0;
  int p = 0;
  double max_amp_drift = 0.0;
  double expectation_abs_error = 0.0;
};

/// Best-of-`reps` wall time of `run`.
template <class F>
double time_best(int reps, F&& run) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    run();
    best = std::min(best, t.seconds());
  }
  return best;
}

CostDiagonal random_diagonal(int n) {
  const std::uint64_t dim = dim_of(n);
  Rng rng(4300 + static_cast<std::uint64_t>(n));
  aligned_vector<double> values(dim);
  for (double& v : values) v = rng.uniform(-8.0, 8.0);
  return CostDiagonal::from_values(n, std::move(values));
}

std::pair<std::vector<double>, std::vector<double>> ramp_schedule(int p) {
  std::vector<double> g(p), b(p);
  for (int l = 0; l < p; ++l) {
    const double t = (l + 0.5) / p;
    g[l] = 0.55 * t;
    b[l] = 0.65 * (1 - t);
  }
  return {g, b};
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke =
      (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) ||
      (std::getenv("QOKIT_BENCH_SMOKE") != nullptr);
  const int reps = smoke ? 1 : 3;
  const int layers = smoke ? 2 : 4;
  const std::vector<int> ns =
      smoke ? std::vector<int>{14, 16} : std::vector<int>{20, 22, 24};

  // ---- error-budget study vs the f64 oracle (the test_precision drift
  // study at full problem size), on the largest benched n.
  Study study;
  study.n = ns.back();
  study.p = smoke ? 20 : 100;
  bool within_budget = true;
  {
    const CostDiagonal diag = random_diagonal(study.n);
    const auto [g, b] = ramp_schedule(study.p);
    FurConfig cfg64;
    FurConfig cfg32;
    cfg32.prec = Precision::F32;
    const FurQaoaSimulator sim64(diag, cfg64);
    const FurQaoaSimulator sim32(diag, cfg32);
    const StateVector r64 = sim64.simulate_qaoa(g, b);
    const StateVector r32 = sim32.simulate_qaoa(g, b);
    study.max_amp_drift = r64.max_abs_diff(r32);
    study.expectation_abs_error =
        std::abs(sim64.get_expectation(r64) - sim32.get_expectation(r32));
    // Pinned budget: rounding-noise scale. A float-typed accumulator or a
    // wrong-width kernel shows up orders of magnitude above this.
    if (study.max_amp_drift > 1e-5 || study.expectation_abs_error > 1e-2) {
      std::fprintf(stderr,
                   "F32 DRIFT OVER BUDGET at n=%d p=%d: amp %.3e exp %.3e\n",
                   study.n, study.p, study.max_amp_drift,
                   study.expectation_abs_error);
      within_budget = false;
    }
    std::printf("study n=%d p=%d  amp drift %.3e  |dE| %.3e\n", study.n,
                study.p, study.max_amp_drift, study.expectation_abs_error);
    std::fflush(stdout);
  }

  // ---- ns/layer, f64 vs f32, both Exec policies.
  std::vector<Result> results;
  for (int n : ns) {
    const CostDiagonal diag = random_diagonal(n);
    const auto [gammas, betas] = ramp_schedule(layers);
    for (const Exec exec : {Exec::Serial, Exec::Parallel}) {
      FurConfig cfg64;
      cfg64.exec = exec;
      FurConfig cfg32 = cfg64;
      cfg32.prec = Precision::F32;
      const FurQaoaSimulator sim64(diag, cfg64);
      const FurQaoaSimulator sim32(diag, cfg32);

      StateVector s64 = sim64.initial_state();
      StateVector s32 = sim32.initial_state();
      const double f64_s = time_best(reps, [&] {
        s64 = sim64.simulate_qaoa_from(std::move(s64), gammas, betas);
      }) / layers;
      const double f32_s = time_best(reps, [&] {
        s32 = sim32.simulate_qaoa_from(std::move(s32), gammas, betas);
      }) / layers;

      const char* exec_name = exec == Exec::Serial ? "serial" : "parallel";
      results.push_back({n, exec_name, f64_s * 1e9, f32_s * 1e9});
      std::printf(
          "n=%2d %-8s f64 %10.2f ms/layer  f32 %10.2f ms/layer  %5.2fx\n",
          n, exec_name, f64_s * 1e3, f32_s * 1e3, f64_s / f32_s);
      std::fflush(stdout);
    }
  }

  std::FILE* out = std::fopen("BENCH_precision.json", "w");
  if (!out) {
    std::perror("BENCH_precision.json");
    return 1;
  }
  std::fprintf(out, "{\n");
  bench::write_context(out, smoke);
  std::fprintf(out,
               "  \"layers\": %d,\n"
               "  \"f64_bytes_per_amp\": %d,\n"
               "  \"f32_bytes_per_amp\": %d,\n"
               "  \"error_study\": {\"n\": %d, \"p\": %d, "
               "\"max_amp_drift\": %.6e, \"expectation_abs_error\": %.6e},\n"
               "  \"results\": [\n",
               layers, static_cast<int>(amplitude_bytes(Precision::F64)),
               static_cast<int>(amplitude_bytes(Precision::F32)), study.n,
               study.p, study.max_amp_drift, study.expectation_abs_error);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(out,
                 "    {\"n\": %d, \"exec\": \"%s\", "
                 "\"f64_ns_per_layer\": %.0f, \"f32_ns_per_layer\": %.0f, "
                 "\"speedup\": %.3f}%s\n",
                 r.n, r.exec, r.f64_ns_layer, r.f32_ns_layer,
                 r.f64_ns_layer / r.f32_ns_layer,
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  return within_budget ? 0 : 2;
}
