// Ablation (paper Sec. III-A): cost-vector precomputation strategies.
//
// Element-major parallelizes over the 2^n outputs with the term loop
// inside (the paper's GPU-kernel layout: one thread owns one element,
// perfect locality, no synchronization). Term-major streams the vector
// once per term. Both are timed serial and parallel, on LABS (dense,
// high-order term set) and on 3-regular MaxCut (sparse, 2-local).
#include <benchmark/benchmark.h>

#include "api/qokit.hpp"

namespace {

using namespace qokit;

void run_precompute(benchmark::State& state, const TermList& terms, Exec exec,
                    PrecomputeStrategy strategy) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(CostDiagonal::precompute(terms, exec, strategy));
  }
  state.counters["terms"] = static_cast<double>(terms.size());
}

void BM_Precompute_Labs_ElementMajor_Parallel(benchmark::State& state) {
  run_precompute(state, labs_terms(static_cast<int>(state.range(0))),
                 Exec::Parallel, PrecomputeStrategy::ElementMajor);
}
BENCHMARK(BM_Precompute_Labs_ElementMajor_Parallel)
    ->DenseRange(14, 20, 2)
    ->Unit(benchmark::kMillisecond);

void BM_Precompute_Labs_ElementMajor_Serial(benchmark::State& state) {
  run_precompute(state, labs_terms(static_cast<int>(state.range(0))),
                 Exec::Serial, PrecomputeStrategy::ElementMajor);
}
BENCHMARK(BM_Precompute_Labs_ElementMajor_Serial)
    ->DenseRange(14, 20, 2)
    ->Unit(benchmark::kMillisecond);

void BM_Precompute_Labs_TermMajor_Parallel(benchmark::State& state) {
  run_precompute(state, labs_terms(static_cast<int>(state.range(0))),
                 Exec::Parallel, PrecomputeStrategy::TermMajor);
}
BENCHMARK(BM_Precompute_Labs_TermMajor_Parallel)
    ->DenseRange(14, 20, 2)
    ->Unit(benchmark::kMillisecond);

void BM_Precompute_MaxCut_ElementMajor_Parallel(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  run_precompute(state, maxcut_terms(Graph::random_regular(n, 3, 42)),
                 Exec::Parallel, PrecomputeStrategy::ElementMajor);
}
BENCHMARK(BM_Precompute_MaxCut_ElementMajor_Parallel)
    ->DenseRange(14, 22, 2)
    ->Unit(benchmark::kMillisecond);

void BM_Precompute_FromFunction(benchmark::State& state) {
  // The Python-lambda input path: arbitrary callable per element.
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(CostDiagonal::from_function(
        n, [n](std::uint64_t x) { return labs_energy(x, n); }));
  }
}
BENCHMARK(BM_Precompute_FromFunction)
    ->DenseRange(14, 18, 2)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
