// Headline-claim reproduction (paper Sec. I): "we reduce the time for a
// typical QAOA parameter optimization by eleven times for n = 26 qubits
// compared to a state-of-the-art GPU quantum circuit simulator".
//
// Our scale: n = 16, p = 6, LABS. Two measurements per backend:
//   PerEvaluation  -- one objective evaluation (simulate + expectation),
//                     precompute amortized for Fur (done at construction)
//                     and impossible for Gates (recompiles, re-iterates
//                     terms every call);
//   Optimization   -- a fixed 60-evaluation Nelder-Mead run.
// The Fur/Gates time ratio is this paper's headline number; expect >> 1
// and growing with n (the paper's 11x is at n = 26 on GPUs).
#include <benchmark/benchmark.h>

#include "api/qokit.hpp"

namespace {

using namespace qokit;

constexpr int kN = 16;
constexpr int kP = 6;

void BM_Opt_Fur_PerEvaluation(benchmark::State& state) {
  const FurQaoaSimulator sim(labs_terms(kN), {});
  QaoaObjective obj(sim, kP);
  const auto x = linear_ramp(kP, 0.9).flatten();
  for (auto _ : state) benchmark::DoNotOptimize(obj(x));
}
BENCHMARK(BM_Opt_Fur_PerEvaluation)->Unit(benchmark::kMillisecond);

void BM_Opt_Gates_PerEvaluation(benchmark::State& state) {
  const GateQaoaSimulator sim(labs_terms(kN), {});
  const QaoaParams params = linear_ramp(kP, 0.9);
  for (auto _ : state) {
    const StateVector r = sim.simulate_qaoa(params.gammas, params.betas);
    benchmark::DoNotOptimize(sim.get_expectation(r));
  }
}
BENCHMARK(BM_Opt_Gates_PerEvaluation)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3);

void BM_Opt_Fur_Optimization(benchmark::State& state) {
  const FurQaoaSimulator sim(labs_terms(kN), {});
  for (auto _ : state) {
    QaoaObjective obj(sim, kP);
    const OptResult r = nelder_mead(
        [&obj](const std::vector<double>& x) { return obj(x); },
        linear_ramp(kP, 0.9).flatten(), {.max_evals = 60});
    benchmark::DoNotOptimize(r.fval);
  }
}
BENCHMARK(BM_Opt_Fur_Optimization)->Unit(benchmark::kMillisecond);

void BM_Opt_Gates_Optimization(benchmark::State& state) {
  const GateQaoaSimulator sim(labs_terms(kN), {});
  for (auto _ : state) {
    int evals = 0;
    const OptResult r = nelder_mead(
        [&sim, &evals](const std::vector<double>& x) {
          ++evals;
          const std::span<const double> g(x.data(), kP);
          const std::span<const double> b(x.data() + kP, kP);
          const StateVector sv = sim.simulate_qaoa(g, b);
          return sim.get_expectation(sv);
        },
        linear_ramp(kP, 0.9).flatten(), {.max_evals = 60});
    benchmark::DoNotOptimize(r.fval);
  }
}
BENCHMARK(BM_Opt_Gates_Optimization)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
