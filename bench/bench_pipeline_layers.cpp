// Layer pipeline: fused cache-blocked passes vs the unfused per-qubit
// loop, ns/layer at n = 20, 22, 24, serial and parallel, emitting
// BENCH_pipeline.json.
//
// Times simulate_qaoa_from on the same FurQaoaSimulator configuration with
// the pipeline forced On and Off (everything else identical, including the
// SIMD dispatch level), so the ratio isolates the traversal change: the
// unfused loop streams the state n + 1 times per layer, the plan
// 1 + ceil((n - t)/g) times. Acceptance target: >= 1.3x fewer ns/layer at
// n = 24. Results are cross-checked bitwise before timing — a mismatch
// exits nonzero, so the bench doubles as a large-n identity smoke.
//
// Smoke mode (QOKIT_BENCH_SMOKE=1 or --smoke): n = 16 only, 1 rep — used
// by CI (and `ctest -C bench -L bench-smoke`) to keep the JSON generation
// path alive without burning minutes.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "common/aligned.hpp"
#include "common/bitops.hpp"
#include "common/cpu_features.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "diagonal/cost_diagonal.hpp"
#include "fur/simulator.hpp"
#include "statevector/state.hpp"

namespace {

using namespace qokit;

struct Result {
  int n;
  const char* exec;
  double unfused_ns_layer;
  double fused_ns_layer;
  int unfused_sweeps;  // n + 1: phase + one butterfly pass per qubit
  int fused_sweeps;    // LayerPlan::full_sweeps()
};

/// Best-of-`reps` wall time of `run`.
template <class F>
double time_best(int reps, F&& run) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    run();
    best = std::min(best, t.seconds());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke =
      (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) ||
      (std::getenv("QOKIT_BENCH_SMOKE") != nullptr);
  const int reps = smoke ? 1 : 3;
  const int layers = smoke ? 2 : 4;
  const std::vector<int> ns =
      smoke ? std::vector<int>{16} : std::vector<int>{20, 22, 24};

  std::vector<Result> results;
  bool identical = true;
  for (int n : ns) {
    // A random dense diagonal stands in for any precomputed problem; the
    // layer loop never looks past the values.
    const std::uint64_t dim = dim_of(n);
    Rng rng(4200 + static_cast<std::uint64_t>(n));
    aligned_vector<double> values(dim);
    for (double& v : values) v = rng.uniform(-8.0, 8.0);
    const CostDiagonal diag =
        CostDiagonal::from_values(n, std::move(values));

    std::vector<double> gammas(layers), betas(layers);
    for (int l = 0; l < layers; ++l) {
      gammas[l] = 0.1 + 0.07 * l;
      betas[l] = 0.8 - 0.11 * l;
    }

    for (const Exec exec : {Exec::Serial, Exec::Parallel}) {
      FurConfig fused_cfg;
      fused_cfg.exec = exec;
      fused_cfg.pipeline.mode = pipeline::PipelineMode::On;
      FurConfig unfused_cfg;
      unfused_cfg.exec = exec;
      unfused_cfg.pipeline.mode = pipeline::PipelineMode::Off;
      const FurQaoaSimulator fused(diag, fused_cfg);
      const FurQaoaSimulator unfused(diag, unfused_cfg);

      // Identity gate before timing: the fused evolution must match the
      // unfused oracle bit for bit.
      {
        const StateVector a = fused.simulate_qaoa(gammas, betas);
        const StateVector b = unfused.simulate_qaoa(gammas, betas);
        if (a.max_abs_diff(b) != 0.0) {
          std::fprintf(stderr, "FUSED != UNFUSED at n=%d exec=%d\n", n,
                       static_cast<int>(exec));
          identical = false;
        }
      }

      StateVector state = fused.initial_state();
      const auto run = [&](const FurQaoaSimulator& sim) {
        state = sim.simulate_qaoa_from(std::move(state), gammas, betas);
      };
      const double unfused_s =
          time_best(reps, [&] { run(unfused); }) / layers;
      const double fused_s = time_best(reps, [&] { run(fused); }) / layers;

      const char* exec_name = exec == Exec::Serial ? "serial" : "parallel";
      results.push_back({n, exec_name, unfused_s * 1e9, fused_s * 1e9,
                         n + 1, fused.layer_plan().full_sweeps()});
      std::printf(
          "n=%2d %-8s unfused %10.2f ms/layer (%2d sweeps)  fused %10.2f "
          "ms/layer (%2d sweeps)  %5.2fx\n",
          n, exec_name, unfused_s * 1e3, n + 1, fused_s * 1e3,
          fused.layer_plan().full_sweeps(), unfused_s / fused_s);
      std::fflush(stdout);
    }
  }

  std::FILE* out = std::fopen("BENCH_pipeline.json", "w");
  if (!out) {
    std::perror("BENCH_pipeline.json");
    return 1;
  }
  std::fprintf(out, "{\n");
  bench::write_context(out, smoke);
  std::fprintf(out,
               "  \"layers\": %d,\n"
               "  \"results\": [\n",
               layers);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(out,
                 "    {\"n\": %d, \"exec\": \"%s\", "
                 "\"unfused_ns_per_layer\": %.0f, \"fused_ns_per_layer\": "
                 "%.0f, \"speedup\": %.3f, \"unfused_sweeps\": %d, "
                 "\"fused_sweeps\": %d}%s\n",
                 r.n, r.exec, r.unfused_ns_layer, r.fused_ns_layer,
                 r.unfused_ns_layer / r.fused_ns_layer, r.unfused_sweeps,
                 r.fused_sweeps, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  return identical ? 0 : 2;
}
