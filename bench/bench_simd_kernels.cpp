// SIMD kernel layer: scalar family vs runtime-dispatched family, per
// kernel, n = 16..26, emitting BENCH_simd.json.
//
// Times the exact block kernels the simulators run (through the same
// dispatch + blocked decomposition), with the dispatch level forced to
// Scalar and then restored to the detected one. Single-threaded
// (Exec::Serial) so the numbers isolate instruction-level speedup from
// OpenMP scaling. Acceptance target: dispatched apply_phase_slice >= 2x
// over scalar at n = 24 on an AVX2 host.
//
// Smoke mode (QOKIT_BENCH_SMOKE=1 or --smoke): n = 16 only, 1 rep — used
// by CI to keep the JSON generation path alive without burning minutes.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "common/aligned.hpp"
#include "common/bitops.hpp"
#include "common/cpu_features.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "fur/su2.hpp"
#include "simd/kernels.hpp"
#include "statevector/state.hpp"

namespace {

using namespace qokit;

struct Result {
  std::string kernel;
  int n;
  double scalar_s;
  double dispatched_s;
};

/// Best-of-`reps` wall time.
template <class F>
double time_best(int reps, F&& run) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    run();
    best = std::min(best, t.seconds());
  }
  return best;
}

// Checksum accumulator so reduction results cannot be optimized away.
double g_sink = 0.0;

}  // namespace

int main(int argc, char** argv) {
  const bool smoke =
      (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) ||
      (std::getenv("QOKIT_BENCH_SMOKE") != nullptr);
  const int reps = smoke ? 1 : 3;
  const std::vector<int> ns =
      smoke ? std::vector<int>{16} : std::vector<int>{16, 18, 20, 22, 24, 26};
  const SimdLevel native = detect_simd_level();

  std::vector<Result> results;
  for (int n : ns) {
    const std::uint64_t dim = dim_of(n);
    Rng rng(9000 + static_cast<std::uint64_t>(n));
    StateVector sv(n);
    for (std::uint64_t i = 0; i < dim; ++i)
      sv[i] = cdouble(rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0));
    aligned_vector<double> costs(dim);
    for (double& c : costs) c = rng.uniform(-8.0, 8.0);
    aligned_vector<std::uint16_t> codes(dim);
    for (auto& c : codes)
      c = static_cast<std::uint16_t>(rng.uniform_int(1000));
    aligned_vector<cdouble> lut(65536);
    for (std::uint32_t c = 0; c < 65536; ++c)
      lut[c] = cdouble(std::cos(0.001 * c), std::sin(0.001 * c));

    cdouble* amp = sv.data();
    struct Case {
      const char* name;
      std::function<void()> run;
    };
    const std::vector<Case> cases = {
        {"apply_phase_slice",
         [&] {
           simd::apply_phase_slice(amp, costs.data(), dim, 0.37,
                                   Exec::Serial);
         }},
        {"apply_phase_u16",
         [&] {
           simd::apply_phase_table(amp, codes.data(), lut.data(), dim,
                                   Exec::Serial);
         }},
        {"rx_q0", [&] { kern::rx(amp, dim, 0, 0.8, 0.6, Exec::Serial); }},
        {"rx_qtop",
         [&] { kern::rx(amp, dim, n - 1, 0.8, 0.6, Exec::Serial); }},
        {"hadamard_q0", [&] { kern::hadamard(amp, dim, 0, Exec::Serial); }},
        {"hadamard_qtop",
         [&] { kern::hadamard(amp, dim, n - 1, Exec::Serial); }},
        {"expectation_slice",
         [&] {
           g_sink +=
               simd::expectation_slice(amp, costs.data(), dim, Exec::Serial);
         }},
        {"norm_squared",
         [&] { g_sink += simd::norm_squared(amp, dim, Exec::Serial); }},
        {"overlap_ground",
         [&] {
           g_sink += simd::overlap_ground(amp, costs.data(), -7.0, dim,
                                          Exec::Serial);
         }},
    };

    for (const Case& c : cases) {
      force_simd_level(SimdLevel::Scalar);
      const double scalar_s = time_best(reps, c.run);
      force_simd_level(native);
      const double disp_s = time_best(reps, c.run);
      results.push_back({c.name, n, scalar_s, disp_s});
      std::printf("n=%2d %-20s scalar %9.2f ms  dispatched %9.2f ms  %5.2fx\n",
                  n, c.name, scalar_s * 1e3, disp_s * 1e3,
                  scalar_s / disp_s);
      std::fflush(stdout);
    }
  }
  force_simd_level(detect_simd_level());

  std::FILE* out = std::fopen("BENCH_simd.json", "w");
  if (!out) {
    std::perror("BENCH_simd.json");
    return 1;
  }
  std::fprintf(out, "{\n");
  bench::write_context(out, smoke);
  std::fprintf(out, "  \"results\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(out,
                 "    {\"kernel\": \"%s\", \"n\": %d, \"scalar_s\": %.6f, "
                 "\"dispatched_s\": %.6f, \"speedup\": %.3f}%s\n",
                 r.kernel.c_str(), r.n, r.scalar_s, r.dispatched_s,
                 r.scalar_s / r.dispatched_s, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  // Keep the checksum alive (and give smoke runs a nonzero exit on NaN).
  return std::isfinite(g_sink) ? 0 : 2;
}
