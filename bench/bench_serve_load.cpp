// Schedule-server load bench: concurrent in-process clients hammering a
// ScheduleServer with (problem, schedule-batch) requests, emitting
// BENCH_serve.json (requests/s and p50/p99 client-observed latency per
// client count).
//
// Doubles as the serving-economics acceptance check: after one warmup
// request per problem, every further request must be a cache hit, and the
// qokit_precomputes_total obs counter must stay FLAT across the whole load
// run -- a cache-hit request pays zero diagonal precompute (the paper's
// amortization carried to the serving boundary). A rising counter, a
// cache miss after warmup, or any non-Ok response exits nonzero, so CI
// smoke runs catch an economics regression, not just a crash.
//
// Smoke mode (QOKIT_BENCH_SMOKE=1 or --smoke): n = 10, 2 clients, a few
// dozen requests -- keeps the JSON generation path alive in CI without
// burning minutes.
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_report.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "obs/obs.hpp"
#include "problems/graph.hpp"
#include "problems/maxcut.hpp"
#include "serve/server.hpp"

namespace {

using namespace qokit;

std::uint64_t counter_value(const obs::Snapshot& snap, const char* name) {
  for (const auto& [key, value] : snap.counters)
    if (key == name) return value;
  return 0;
}

std::vector<QaoaParams> random_schedules(int count, int p,
                                         std::uint64_t seed) {
  Rng rng(seed);
  std::vector<QaoaParams> schedules(count);
  for (QaoaParams& s : schedules) {
    s.gammas.resize(p);
    s.betas.resize(p);
    for (int l = 0; l < p; ++l) {
      s.gammas[l] = rng.uniform(-0.6, 0.6);
      s.betas[l] = rng.uniform(-0.9, 0.9);
    }
  }
  return schedules;
}

struct LoadResult {
  int clients;
  double rps;
  double p50_us;
  double p99_us;
  std::uint64_t hits;
  std::uint64_t misses;
};

double percentile_us(std::vector<double>& sorted_us, double q) {
  if (sorted_us.empty()) return 0.0;
  const std::size_t at = std::min(
      sorted_us.size() - 1,
      static_cast<std::size_t>(q * static_cast<double>(sorted_us.size())));
  return sorted_us[at];
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke =
      (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) ||
      (std::getenv("QOKIT_BENCH_SMOKE") != nullptr);

  // The precompute-flatness check reads qokit_precomputes_total, so the
  // obs registry must be live before any session is built.
  obs::set_enabled(true);

  const int n = smoke ? 10 : 16;
  const int num_problems = 4;
  const int schedules_per_request = 4;
  const int p = 2;
  const int requests_per_client = smoke ? 25 : 200;
  const std::vector<int> client_counts =
      smoke ? std::vector<int>{2} : std::vector<int>{1, 2, 4, 8};

  std::vector<TermList> problems;
  for (int i = 0; i < num_problems; ++i)
    problems.push_back(
        maxcut_terms(Graph::random_regular(n, 3, 900 + i)));
  const std::vector<QaoaParams> schedules =
      random_schedules(schedules_per_request, p, 77);

  serve::ServerConfig config;
  config.workers = smoke ? 2 : 4;
  config.queue_capacity = 4096;
  serve::ScheduleServer server(config);

  const auto make_request = [&](int problem) {
    serve::Request request;
    request.terms = problems[static_cast<std::size_t>(problem)];
    request.schedules = schedules;
    return request;
  };

  // Warmup: pay each problem's precompute exactly once. Everything the
  // timed load does afterwards must be a cache hit.
  for (int i = 0; i < num_problems; ++i) {
    const serve::Response r = server.submit_blocking(make_request(i));
    if (r.status != serve::Status::Ok) {
      std::fprintf(stderr, "warmup request %d failed: %s\n", i,
                   r.error.c_str());
      return 2;
    }
  }
  const std::uint64_t precomputes_before =
      counter_value(obs::snapshot(), "qokit_precomputes_total");

  std::vector<LoadResult> results;
  bool all_ok = true;
  for (const int clients : client_counts) {
    const serve::SessionCache::Stats before = server.cache_stats();
    std::vector<std::vector<double>> latencies_us(
        static_cast<std::size_t>(clients));
    std::atomic<int> failures{0};
    std::atomic<int> cold{0};  // cache misses after warmup: must stay 0
    WallTimer wall;
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c)
      threads.emplace_back([&, c] {
        std::vector<double>& mine =
            latencies_us[static_cast<std::size_t>(c)];
        mine.reserve(static_cast<std::size_t>(requests_per_client));
        for (int i = 0; i < requests_per_client; ++i) {
          WallTimer t;
          const serve::Response r =
              server.submit_blocking(make_request((c + i) % num_problems));
          mine.push_back(t.seconds() * 1e6);
          if (r.status != serve::Status::Ok) failures.fetch_add(1);
          if (!r.cache_hit) cold.fetch_add(1);
        }
      });
    for (std::thread& t : threads) t.join();
    const double seconds = wall.seconds();

    std::vector<double> merged;
    for (const std::vector<double>& v : latencies_us)
      merged.insert(merged.end(), v.begin(), v.end());
    std::sort(merged.begin(), merged.end());
    const serve::SessionCache::Stats after = server.cache_stats();
    const LoadResult result{
        clients,
        static_cast<double>(merged.size()) / seconds,
        percentile_us(merged, 0.50),
        percentile_us(merged, 0.99),
        after.hits - before.hits,
        after.misses - before.misses};
    results.push_back(result);
    std::printf(
        "clients=%d  %8.1f req/s  p50 %9.1f us  p99 %9.1f us  hits %llu  "
        "misses %llu\n",
        result.clients, result.rps, result.p50_us, result.p99_us,
        static_cast<unsigned long long>(result.hits),
        static_cast<unsigned long long>(result.misses));
    std::fflush(stdout);
    if (failures.load() != 0 || cold.load() != 0) {
      std::fprintf(stderr,
                   "clients=%d: %d failed requests, %d cold requests\n",
                   clients, failures.load(), cold.load());
      all_ok = false;
    }
  }

  // The economics pin: the whole load ran on cached sessions, so not one
  // additional diagonal precompute was paid.
  const std::uint64_t precomputes_after =
      counter_value(obs::snapshot(), "qokit_precomputes_total");
  const bool flat = precomputes_after == precomputes_before;
  std::printf("qokit_precomputes_total: %llu before load, %llu after (%s)\n",
              static_cast<unsigned long long>(precomputes_before),
              static_cast<unsigned long long>(precomputes_after),
              flat ? "flat" : "NOT FLAT");
  server.shutdown();

  std::FILE* out = std::fopen("BENCH_serve.json", "w");
  if (!out) {
    std::perror("BENCH_serve.json");
    return 1;
  }
  std::fprintf(out, "{\n");
  bench::write_context(out, smoke);
  std::fprintf(out,
               "  \"n\": %d,\n"
               "  \"problems\": %d,\n"
               "  \"schedules_per_request\": %d,\n"
               "  \"requests_per_client\": %d,\n"
               "  \"workers\": %d,\n"
               "  \"precomputes_before\": %llu,\n"
               "  \"precomputes_after\": %llu,\n"
               "  \"precomputes_flat\": %s,\n"
               "  \"results\": [\n",
               n, num_problems, schedules_per_request, requests_per_client,
               config.workers,
               static_cast<unsigned long long>(precomputes_before),
               static_cast<unsigned long long>(precomputes_after),
               flat ? "true" : "false");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const LoadResult& r = results[i];
    std::fprintf(out,
                 "    {\"clients\": %d, \"rps\": %.1f, \"p50_us\": %.1f, "
                 "\"p99_us\": %.1f, \"cache_hits\": %llu, "
                 "\"cache_misses\": %llu}%s\n",
                 r.clients, r.rps, r.p50_us, r.p99_us,
                 static_cast<unsigned long long>(r.hits),
                 static_cast<unsigned long long>(r.misses),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);

  if (!all_ok) return 2;
  return flat ? 0 : 3;
}
