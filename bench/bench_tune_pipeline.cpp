// Machine-adaptive tuning: static pipeline geometry (the pre-tune
// constants) vs the tuned geometry the machine probe + heuristic picks for
// this host, ns/layer at n = 20, 24, serial and parallel, emitting
// BENCH_tune.json.
//
// Times simulate_qaoa_from on two FurQaoaSimulator configurations that
// differ ONLY in pipeline Geometry (tile/group/chunk); the ratio isolates
// what tuning buys on this machine. On hosts in the 32 KiB-L1d / 2 MiB-L2
// class the heuristic reproduces the static constants exactly and the
// ratio is 1.0 by construction — the JSON records both geometries so that
// case is visible, not confusing. Results are cross-checked bitwise before
// timing (tuning must never change arithmetic) — a mismatch exits 2, so
// the bench doubles as a large-n tune-identity smoke.
//
// Smoke mode (QOKIT_BENCH_SMOKE=1 or --smoke): n = 16 only, 1 rep — used
// by CI to keep the probe + JSON generation path alive without burning
// minutes.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_report.hpp"
#include "common/aligned.hpp"
#include "common/bitops.hpp"
#include "common/rng.hpp"
#include "common/timer.hpp"
#include "diagonal/cost_diagonal.hpp"
#include "fur/simulator.hpp"
#include "statevector/state.hpp"
#include "tune/machine_probe.hpp"
#include "tune/profile.hpp"

namespace {

using namespace qokit;

struct Result {
  int n;
  const char* exec;
  double static_ns_layer;
  double tuned_ns_layer;
  int static_sweeps;
  int tuned_sweeps;
};

/// Best-of-`reps` wall time of `run`.
template <class F>
double time_best(int reps, F&& run) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    run();
    best = std::min(best, t.seconds());
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke =
      (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) ||
      (std::getenv("QOKIT_BENCH_SMOKE") != nullptr);
  const int reps = smoke ? 1 : 3;
  const int layers = smoke ? 2 : 4;
  const std::vector<int> ns =
      smoke ? std::vector<int>{16} : std::vector<int>{20, 24};

  const tune::MachineTopology topo = tune::probe_machine();
  const tune::TuneProfile tuned_profile = tune::heuristic_profile(topo);
  const pipeline::Geometry static_geom = pipeline::Geometry::defaults();
  const pipeline::Geometry tuned_geom = tuned_profile.geometry;
  std::printf(
      "probe: l1d=%llu l2=%llu l3=%llu cores=%d numa=%d (%s)\n"
      "static geometry t=%d g=%d c=%d | tuned t=%d g=%d c=%d\n",
      static_cast<unsigned long long>(topo.l1d_bytes),
      static_cast<unsigned long long>(topo.l2_bytes),
      static_cast<unsigned long long>(topo.l3_bytes), topo.physical_cores,
      topo.numa_nodes, topo.cpu_model.c_str(), static_geom.tile_log2,
      static_geom.group_qubits, static_geom.chunk_log2,
      tuned_geom.tile_log2, tuned_geom.group_qubits, tuned_geom.chunk_log2);

  std::vector<Result> results;
  bool identical = true;
  for (int n : ns) {
    const std::uint64_t dim = dim_of(n);
    Rng rng(5300 + static_cast<std::uint64_t>(n));
    aligned_vector<double> values(dim);
    for (double& v : values) v = rng.uniform(-8.0, 8.0);
    const CostDiagonal diag =
        CostDiagonal::from_values(n, std::move(values));

    std::vector<double> gammas(layers), betas(layers);
    for (int l = 0; l < layers; ++l) {
      gammas[l] = 0.1 + 0.07 * l;
      betas[l] = 0.8 - 0.11 * l;
    }

    for (const Exec exec : {Exec::Serial, Exec::Parallel}) {
      FurConfig static_cfg;
      static_cfg.exec = exec;
      static_cfg.pipeline = {pipeline::PipelineMode::On, static_geom};
      FurConfig tuned_cfg = static_cfg;
      tuned_cfg.pipeline.geometry = tuned_geom;
      const FurQaoaSimulator static_sim(diag, static_cfg);
      const FurQaoaSimulator tuned_sim(diag, tuned_cfg);

      // Identity gate before timing: tuning reorders the traversal only,
      // so the tuned evolution must match the static oracle bit for bit.
      {
        const StateVector a = tuned_sim.simulate_qaoa(gammas, betas);
        const StateVector b = static_sim.simulate_qaoa(gammas, betas);
        if (a.max_abs_diff(b) != 0.0) {
          std::fprintf(stderr, "TUNED != STATIC at n=%d exec=%d\n", n,
                       static_cast<int>(exec));
          identical = false;
        }
      }

      StateVector state = static_sim.initial_state();
      const auto run = [&](const FurQaoaSimulator& sim) {
        state = sim.simulate_qaoa_from(std::move(state), gammas, betas);
      };
      const double static_s =
          time_best(reps, [&] { run(static_sim); }) / layers;
      const double tuned_s =
          time_best(reps, [&] { run(tuned_sim); }) / layers;

      const char* exec_name = exec == Exec::Serial ? "serial" : "parallel";
      results.push_back({n, exec_name, static_s * 1e9, tuned_s * 1e9,
                         static_sim.layer_plan().full_sweeps(),
                         tuned_sim.layer_plan().full_sweeps()});
      std::printf(
          "n=%2d %-8s static %10.2f ms/layer (%2d sweeps)  tuned %10.2f "
          "ms/layer (%2d sweeps)  %5.2fx\n",
          n, exec_name, static_s * 1e3,
          static_sim.layer_plan().full_sweeps(), tuned_s * 1e3,
          tuned_sim.layer_plan().full_sweeps(), static_s / tuned_s);
      std::fflush(stdout);
    }
  }

  std::FILE* out = std::fopen("BENCH_tune.json", "w");
  if (!out) {
    std::perror("BENCH_tune.json");
    return 1;
  }
  std::fprintf(out, "{\n");
  bench::write_context(out, smoke);
  std::fprintf(out,
               "  \"layers\": %d,\n"
               "  \"probe\": {\"l1d_bytes\": %llu, \"l2_bytes\": %llu, "
               "\"l3_bytes\": %llu, \"physical_cores\": %d, "
               "\"numa_nodes\": %d},\n"
               "  \"static_geometry\": {\"tile_log2\": %d, "
               "\"group_qubits\": %d, \"chunk_log2\": %d},\n"
               "  \"tuned_geometry\": {\"tile_log2\": %d, "
               "\"group_qubits\": %d, \"chunk_log2\": %d},\n"
               "  \"results\": [\n",
               layers, static_cast<unsigned long long>(topo.l1d_bytes),
               static_cast<unsigned long long>(topo.l2_bytes),
               static_cast<unsigned long long>(topo.l3_bytes),
               topo.physical_cores, topo.numa_nodes, static_geom.tile_log2,
               static_geom.group_qubits, static_geom.chunk_log2,
               tuned_geom.tile_log2, tuned_geom.group_qubits,
               tuned_geom.chunk_log2);
  for (std::size_t i = 0; i < results.size(); ++i) {
    const Result& r = results[i];
    std::fprintf(out,
                 "    {\"n\": %d, \"exec\": \"%s\", "
                 "\"static_ns_per_layer\": %.0f, \"tuned_ns_per_layer\": "
                 "%.0f, \"speedup\": %.3f, \"static_sweeps\": %d, "
                 "\"tuned_sweeps\": %d}%s\n",
                 r.n, r.exec, r.static_ns_layer, r.tuned_ns_layer,
                 r.static_ns_layer / r.tuned_ns_layer, r.static_sweeps,
                 r.tuned_sweeps, i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  return identical ? 0 : 2;
}
