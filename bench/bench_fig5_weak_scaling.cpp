// Fig. 5 reproduction: weak scaling of one LABS QAOA layer over K ranks
// with n = n0 + log2(K) (constant per-rank state size), comparing the two
// alltoall transports.
//
// Series mapping (paper -> ours):
//   QOKit (MPI_Alltoall)      -> Staged   (central buffer, two full copies)
//   QOKit (cuStateVec p2p)    -> Pairwise (XOR-scheduled direct block swaps)
//
// The paper's GPUs are replaced by virtual ranks (threads); see DESIGN.md.
// Expected shape: time grows with K (communication-dominated) and the
// pairwise transport stays below the staged one.
#include <benchmark/benchmark.h>

#include "api/qokit.hpp"

namespace {

using namespace qokit;

constexpr int kBaseN = 16;  // per-rank slice: 2^16 amplitudes

int log2_of(int k) {
  int l = 0;
  while ((1 << l) < k) ++l;
  return l;
}

void run_weak_scaling(benchmark::State& state, AlltoallStrategy strategy) {
  const int ranks = static_cast<int>(state.range(0));
  const int n = kBaseN + log2_of(ranks);
  const DistributedFurSimulator sim(labs_terms(n),
                                    {.ranks = ranks, .strategy = strategy});
  const std::vector<double> g{0.31}, b{0.57};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.simulate_and_expectation(g, b));
  }
  state.counters["n"] = n;
}

void BM_Fig5_Staged(benchmark::State& state) {
  run_weak_scaling(state, AlltoallStrategy::Staged);
}
BENCHMARK(BM_Fig5_Staged)
    ->RangeMultiplier(2)
    ->Range(1, 16)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_Fig5_Pairwise(benchmark::State& state) {
  run_weak_scaling(state, AlltoallStrategy::Pairwise);
}
BENCHMARK(BM_Fig5_Pairwise)
    ->RangeMultiplier(2)
    ->Range(1, 16)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_Fig5_Direct(benchmark::State& state) {
  run_weak_scaling(state, AlltoallStrategy::Direct);
}
BENCHMARK(BM_Fig5_Direct)
    ->RangeMultiplier(2)
    ->Range(1, 16)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
