// Ablation (paper Sec. VII, comparison with its Ref. [43]): single-pass
// in-place mixer (Algorithms 1-2) vs the FWHT -> diagonal -> FWHT route.
//
// The paper argues its mixer costs one fast-Walsh-Hadamard-equivalent pass
// per layer where the Ref. [43] approach costs two transforms plus a
// diagonal; expect a ~2x gap. Also includes the xy mixers so their
// per-layer cost relative to the X mixer is on record (ring: n two-qubit
// passes; complete: n(n-1)/2 passes).
#include <benchmark/benchmark.h>

#include "api/qokit.hpp"

namespace {

using namespace qokit;

void BM_Mixer_SinglePass(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  StateVector sv = StateVector::plus_state(n);
  for (auto _ : state) {
    apply_mixer_x(sv, 0.57, Exec::Parallel, MixerBackend::Fused);
    benchmark::DoNotOptimize(sv.data());
  }
}
BENCHMARK(BM_Mixer_SinglePass)
    ->DenseRange(16, 24, 2)
    ->Unit(benchmark::kMillisecond);

void BM_Mixer_TwoTransformFwht(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  StateVector sv = StateVector::plus_state(n);
  for (auto _ : state) {
    apply_mixer_x(sv, 0.57, Exec::Parallel, MixerBackend::Fwht);
    benchmark::DoNotOptimize(sv.data());
  }
}
BENCHMARK(BM_Mixer_TwoTransformFwht)
    ->DenseRange(16, 24, 2)
    ->Unit(benchmark::kMillisecond);

void BM_Mixer_XyRing(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  StateVector sv = StateVector::dicke_state(n, n / 2);
  for (auto _ : state) {
    apply_mixer_xy_ring(sv, 0.57, Exec::Parallel);
    benchmark::DoNotOptimize(sv.data());
  }
}
BENCHMARK(BM_Mixer_XyRing)
    ->DenseRange(16, 22, 2)
    ->Unit(benchmark::kMillisecond);

void BM_Mixer_XyComplete(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  StateVector sv = StateVector::dicke_state(n, n / 2);
  for (auto _ : state) {
    apply_mixer_xy_complete(sv, 0.57, Exec::Parallel);
    benchmark::DoNotOptimize(sv.data());
  }
}
BENCHMARK(BM_Mixer_XyComplete)
    ->DenseRange(16, 20, 2)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
