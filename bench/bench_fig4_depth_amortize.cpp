// Fig. 4 reproduction: total simulation time (precompute included) vs the
// number of QAOA layers p, LABS problem.
//
// Series mapping (paper -> ours):
//   QOKit + GPU precompute -> FurParallelPrecompute (OpenMP element-major)
//   QOKit + CPU precompute -> FurSerialPrecompute   (single-thread)
//   cuStateVec (gates)     -> Gates                 (no precompute at all)
//
// Expected shape: the gate series grows ~linearly in p with a large slope
// (|T|-dependent per-layer cost); the precompute series pay a one-off cost
// then a small slope, so the parallel-precompute line wins from p = 1 and
// the serial-precompute line crosses the gates line at small p -- the
// amortization argument of the paper.
#include <benchmark/benchmark.h>

#include "api/qokit.hpp"

namespace {

using namespace qokit;

constexpr int kN = 16;

std::pair<std::vector<double>, std::vector<double>> ramp(int p) {
  const QaoaParams params = linear_ramp(p, 0.9);
  return {params.gammas, params.betas};
}

void BM_Fig4_FurParallelPrecompute(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const auto [g, b] = ramp(p);
  for (auto _ : state) {
    const FurQaoaSimulator sim(labs_terms(kN), {});  // parallel precompute
    const StateVector r = sim.simulate_qaoa(g, b);
    benchmark::DoNotOptimize(sim.get_expectation(r));
  }
}
BENCHMARK(BM_Fig4_FurParallelPrecompute)
    ->RangeMultiplier(4)
    ->Range(1, 1024)
    ->Unit(benchmark::kMillisecond);

void BM_Fig4_FurSerialPrecompute(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const auto [g, b] = ramp(p);
  for (auto _ : state) {
    const FurQaoaSimulator sim(
        labs_terms(kN),
        {.exec = Exec::Serial, .precompute = PrecomputeStrategy::ElementMajor});
    const StateVector r = sim.simulate_qaoa(g, b);
    benchmark::DoNotOptimize(sim.get_expectation(r));
  }
}
BENCHMARK(BM_Fig4_FurSerialPrecompute)
    ->RangeMultiplier(4)
    ->Range(1, 1024)
    ->Unit(benchmark::kMillisecond);

void BM_Fig4_Gates(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const auto [g, b] = ramp(p);
  for (auto _ : state) {
    const GateQaoaSimulator sim(labs_terms(kN), {});
    const StateVector r = sim.simulate_qaoa(g, b);
    benchmark::DoNotOptimize(sim.get_expectation(r));
  }
}
BENCHMARK(BM_Fig4_Gates)
    ->RangeMultiplier(4)
    ->Range(1, 64)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
