// Batch-evaluation throughput: schedules/second for a 64-schedule batch,
// batched engine vs naive loops, emitting BENCH_batch.json.
//
// Three serving strategies for the same workload (answer m independent
// (gamma, beta) queries against one problem):
//   per_query  one simulator per query: re-precomputes the cost diagonal
//              every call -- the cost a service without batching pays,
//              and the amortization argument of the paper carried from
//              "per layer" to "per schedule".
//   loop       one shared simulator, sequential simulate_qaoa loop: the
//              diagonal is amortized but every call allocates and fills a
//              fresh initial state, and kernels rely on inner (per-call)
//              parallelism only.
//   batched    one ProblemSession (the public serving handle): shared
//              diagonal, reusable scratch states, outer schedule-
//              parallelism when the BatchEvaluator heuristic picks it.
//
// Standalone binary (WallTimer, not google/benchmark) so it can emit the
// JSON the CI/throughput tracking consumes. Acceptance target: batched
// >= 1.5x over the naive loop for 64 schedules at n = 16 on a CI-class
// (multi-core) machine; single-core machines still see the per_query gap.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "api/qokit.hpp"
#include "bench_report.hpp"

namespace {

using namespace qokit;

constexpr int kNumQubits = 16;
constexpr int kDepth = 6;
constexpr int kBatchSize = 64;

std::vector<QaoaParams> make_schedules(int count, int p) {
  Rng rng(4242);
  std::vector<QaoaParams> schedules(count);
  for (QaoaParams& s : schedules) {
    s.gammas.resize(p);
    s.betas.resize(p);
    for (int l = 0; l < p; ++l) {
      s.gammas[l] = rng.uniform(-0.6, 0.6);
      s.betas[l] = rng.uniform(-0.9, 0.9);
    }
  }
  return schedules;
}

/// Best-of-`reps` wall time for one full pass over the batch.
template <class F>
double time_best(int reps, F&& run) {
  double best = 1e100;
  for (int r = 0; r < reps; ++r) {
    WallTimer t;
    run();
    best = std::min(best, t.seconds());
  }
  return best;
}

}  // namespace

int main() {
  const TermList terms = labs_terms(kNumQubits);
  const std::vector<QaoaParams> schedules =
      make_schedules(kBatchSize, kDepth);

  // Checksum accumulator so no strategy can be optimized away; also an
  // agreement check between the three strategies.
  std::vector<double> ref_values;

  const double per_query_s = time_best(2, [&] {
    std::vector<double> values;
    for (const QaoaParams& s : schedules) {
      const FurQaoaSimulator sim(terms, {});  // re-precomputes the diagonal
      const StateVector r = sim.simulate_qaoa(s.gammas, s.betas);
      values.push_back(sim.get_expectation(r));
    }
    ref_values = std::move(values);
  });

  const FurQaoaSimulator shared(terms, {});
  std::vector<double> loop_values;
  const double loop_s = time_best(3, [&] {
    std::vector<double> values;
    for (const QaoaParams& s : schedules) {
      const StateVector r = shared.simulate_qaoa(s.gammas, s.betas);
      values.push_back(shared.get_expectation(r));
    }
    loop_values = std::move(values);
  });

  const api::ProblemSession session(terms);
  std::vector<double> batch_values;
  const double batched_s =
      time_best(3, [&] { batch_values = session.expectations(schedules); });

  bool agree = loop_values == batch_values;
  for (std::size_t i = 0; i < ref_values.size() && agree; ++i)
    agree = ref_values[i] == loop_values[i];
  const auto mode = session.batch().resolve_parallelism(schedules.size());

  const double per_query_tput = kBatchSize / per_query_s;
  const double loop_tput = kBatchSize / loop_s;
  const double batched_tput = kBatchSize / batched_s;

  std::FILE* out = std::fopen("BENCH_batch.json", "w");
  if (!out) {
    std::perror("BENCH_batch.json");
    return 1;
  }
  std::fprintf(out, "{\n");
  // This bench has no reduced problem size; CI tags its runs via the same
  // env the smoke-capable benches use so the JSONs stay comparable.
  bench::write_context(out,
                       std::getenv("QOKIT_BENCH_SMOKE") != nullptr);
  std::fprintf(out,
               "  \"n\": %d,\n"
               "  \"p\": %d,\n"
               "  \"batch_size\": %d,\n"
               "  \"mode\": \"%s\",\n"
               "  \"results_bit_identical\": %s,\n"
               "  \"per_query_schedules_per_s\": %.2f,\n"
               "  \"loop_schedules_per_s\": %.2f,\n"
               "  \"batched_schedules_per_s\": %.2f,\n"
               "  \"speedup_vs_per_query\": %.3f,\n"
               "  \"speedup_vs_loop\": %.3f\n"
               "}\n",
               kNumQubits, kDepth, kBatchSize,
               mode == BatchParallelism::Outer ? "outer" : "inner",
               agree ? "true" : "false", per_query_tput, loop_tput,
               batched_tput, batched_tput / per_query_tput,
               batched_tput / loop_tput);
  std::fclose(out);

  std::printf(
      "n=%d p=%d batch=%d threads=%d mode=%s agree=%s\n"
      "per-query: %8.2f schedules/s\n"
      "loop:      %8.2f schedules/s\n"
      "batched:   %8.2f schedules/s  (%.2fx vs per-query, %.2fx vs loop)\n",
      kNumQubits, kDepth, kBatchSize, max_threads(),
      mode == BatchParallelism::Outer ? "outer" : "inner",
      agree ? "yes" : "NO", per_query_tput, loop_tput, batched_tput,
      batched_tput / per_query_tput, batched_tput / loop_tput);
  return agree ? 0 : 2;
}
