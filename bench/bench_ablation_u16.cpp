// Ablation (paper Sec. V-B): uint16-compressed cost diagonal vs double.
//
// The paper stores the LABS diagonal as uint16 because the optima are
// known to be < 2^16 for n < 65, cutting the precompute memory overhead
// from 100% of the state vector to 12.5%. This bench measures the runtime
// side: the phase operator through a 65536-entry phase lookup table
// (gather) vs sin/cos per amplitude, plus the expectation path, and
// reports the memory of each representation.
#include <benchmark/benchmark.h>

#include "api/qokit.hpp"

namespace {

using namespace qokit;

void BM_U16_PhaseDouble(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const CostDiagonal d = CostDiagonal::precompute(labs_terms(n));
  StateVector sv = StateVector::plus_state(n);
  for (auto _ : state) {
    apply_phase(sv, d, 0.31);
    benchmark::DoNotOptimize(sv.data());
  }
  state.counters["diag_bytes"] = static_cast<double>(d.memory_bytes());
}
BENCHMARK(BM_U16_PhaseDouble)
    ->DenseRange(16, 22, 2)
    ->Unit(benchmark::kMillisecond);

void BM_U16_PhaseLut(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const CostDiagonal d = CostDiagonal::precompute(labs_terms(n));
  const DiagonalU16 u = DiagonalU16::encode(d);
  StateVector sv = StateVector::plus_state(n);
  for (auto _ : state) {
    apply_phase(sv, u, 0.31);
    benchmark::DoNotOptimize(sv.data());
  }
  state.counters["diag_bytes"] = static_cast<double>(u.memory_bytes());
  state.counters["exact"] = u.is_exact() ? 1.0 : 0.0;
}
BENCHMARK(BM_U16_PhaseLut)
    ->DenseRange(16, 22, 2)
    ->Unit(benchmark::kMillisecond);

void BM_U16_ExpectationDouble(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const CostDiagonal d = CostDiagonal::precompute(labs_terms(n));
  const StateVector sv = StateVector::plus_state(n);
  for (auto _ : state) benchmark::DoNotOptimize(expectation(sv, d));
}
BENCHMARK(BM_U16_ExpectationDouble)
    ->DenseRange(16, 22, 2)
    ->Unit(benchmark::kMillisecond);

void BM_U16_ExpectationCompressed(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const DiagonalU16 u =
      DiagonalU16::encode(CostDiagonal::precompute(labs_terms(n)));
  const StateVector sv = StateVector::plus_state(n);
  for (auto _ : state) benchmark::DoNotOptimize(expectation(sv, u));
}
BENCHMARK(BM_U16_ExpectationCompressed)
    ->DenseRange(16, 22, 2)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
