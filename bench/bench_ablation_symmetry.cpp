// Ablation (paper Sec. VI related work): Z2 spin-flip symmetry reduction
// on top of the precomputed diagonal.
//
// For flip-symmetric objectives (LABS, MaxCut, SK) the symmetric simulator
// evolves only the 2^{n-1} representatives: per-layer work and both the
// state and diagonal memory halve. The paper notes symmetry exploitation
// "can be combined with our techniques to further improve performance" --
// this bench quantifies the combination.
#include <benchmark/benchmark.h>

#include "api/qokit.hpp"

namespace {

using namespace qokit;

void BM_Symmetry_FullSimulator(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const FurQaoaSimulator sim(labs_terms(n), {});
  const QaoaParams params = linear_ramp(4, 0.5);
  for (auto _ : state) {
    const StateVector r = sim.simulate_qaoa(params.gammas, params.betas);
    benchmark::DoNotOptimize(sim.get_expectation(r));
  }
  state.counters["state_bytes"] =
      static_cast<double>(dim_of(n) * sizeof(cdouble));
}
BENCHMARK(BM_Symmetry_FullSimulator)
    ->DenseRange(16, 22, 2)
    ->Unit(benchmark::kMillisecond);

void BM_Symmetry_HalfSpaceSimulator(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const SymmetricFurSimulator sim(labs_terms(n));
  const QaoaParams params = linear_ramp(4, 0.5);
  for (auto _ : state) {
    const StateVector r = sim.simulate_qaoa(params.gammas, params.betas);
    benchmark::DoNotOptimize(sim.get_expectation(r));
  }
  state.counters["state_bytes"] =
      static_cast<double>(dim_of(n - 1) * sizeof(cdouble));
}
BENCHMARK(BM_Symmetry_HalfSpaceSimulator)
    ->DenseRange(16, 22, 2)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
