// Shared context block for every BENCH_*.json emitter.
//
// Benchmark numbers are only comparable against the hardware and build
// that produced them, so every bench stamps the same leading fields --
// schema version, CPU model, SIMD dispatch level, thread count, git
// revision, smoke flag -- through write_context() instead of each binary
// inventing its own subset. Header-only; bench binaries only.
#pragma once

#include <cstdio>
#include <cstring>
#include <string>

#include "common/cpu_features.hpp"
#include "common/parallel.hpp"

namespace qokit::bench {

/// Strip characters that would break a JSON string literal (the fields
/// here are machine descriptions, never untrusted data).
inline std::string json_sanitize(std::string s) {
  for (char& c : s)
    if (c == '"' || c == '\\' || static_cast<unsigned char>(c) < 0x20)
      c = ' ';
  return s;
}

/// The CPU model string from /proc/cpuinfo; "unknown" elsewhere.
inline std::string cpu_model() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/cpuinfo", "r");
  if (f) {
    char line[512];
    while (std::fgets(line, sizeof line, f)) {
      if (std::strncmp(line, "model name", 10) != 0) continue;
      const char* colon = std::strchr(line, ':');
      if (!colon) continue;
      std::string model(colon + 1);
      // Trim the leading space and trailing newline.
      while (!model.empty() && (model.front() == ' ' || model.front() == '\t'))
        model.erase(model.begin());
      while (!model.empty() &&
             (model.back() == '\n' || model.back() == '\r'))
        model.pop_back();
      std::fclose(f);
      return model.empty() ? "unknown" : model;
    }
    std::fclose(f);
  }
#endif
  return "unknown";
}

/// `git describe --always --dirty` of the working tree the bench ran in;
/// "unknown" when git or a repo is unavailable (e.g. an installed tree).
inline std::string git_describe() {
#if defined(__unix__) || defined(__APPLE__)
  std::FILE* p =
      ::popen("git describe --always --dirty --tags 2>/dev/null", "r");
  if (p) {
    char buf[128] = {0};
    const bool got = std::fgets(buf, sizeof buf, p) != nullptr;
    ::pclose(p);
    if (got) {
      std::string rev(buf);
      while (!rev.empty() && (rev.back() == '\n' || rev.back() == '\r'))
        rev.pop_back();
      if (!rev.empty()) return rev;
    }
  }
#endif
  return "unknown";
}

/// Emit the shared context fields (with a trailing comma) right after the
/// opening '{' of a BENCH_*.json document.
inline void write_context(std::FILE* out, bool smoke) {
  std::fprintf(out,
               "  \"schema\": 1,\n"
               "  \"cpu_model\": \"%s\",\n"
               "  \"simd_level\": \"%s\",\n"
               "  \"threads\": %d,\n"
               "  \"git\": \"%s\",\n"
               "  \"smoke\": %s,\n",
               json_sanitize(cpu_model()).c_str(),
               simd_level_name(active_simd_level()), max_threads(),
               json_sanitize(git_describe()).c_str(),
               smoke ? "true" : "false");
}

}  // namespace qokit::bench
