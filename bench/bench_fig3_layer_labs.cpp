// Fig. 3 reproduction: time to apply a single QAOA layer for the LABS
// problem across simulator families.
//
// Series mapping (paper -> ours):
//   QOKit               -> FurLayer        (phase multiply + fused mixer;
//                                           precompute excluded, as in the
//                                           paper)
//   QOKit (cuStateVec)  -> FurLayerAltMixer(the alternative mixer backend;
//                                           here the FWHT route)
//   Qiskit / cuStateVec -> GatesLayer      (CX-ladder circuit, per gate)
//   (gates, fused)      -> GatesLayerFused (F=2 fusion before execution)
//   cuTensorNet/QTensor -> TnLayer         (amplitude contraction at p = 3,
//                                           divided by p, as the paper does)
//
// Expected shape: precompute-based layers are orders of magnitude cheaper
// than gate-based for n >~ 14, and TN is the slowest for deep circuits.
#include <benchmark/benchmark.h>

#include "api/qokit.hpp"
#include "gatesim/execute.hpp"
#include "gatesim/fusion.hpp"
#include "tn/contract.hpp"

namespace {

using namespace qokit;

void BM_Fig3_FurLayer(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const FurQaoaSimulator sim(labs_terms(n), {});
  const std::vector<double> g{0.31}, b{0.57};
  StateVector sv = StateVector::plus_state(n);
  for (auto _ : state) {
    sv = sim.simulate_qaoa_from(std::move(sv), g, b);
    benchmark::DoNotOptimize(sv.data());
  }
}
BENCHMARK(BM_Fig3_FurLayer)
    ->DenseRange(6, 24, 2)
    ->Unit(benchmark::kMillisecond);

void BM_Fig3_FurLayerAltMixer(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const FurQaoaSimulator sim(labs_terms(n),
                             {.backend = MixerBackend::Fwht});
  const std::vector<double> g{0.31}, b{0.57};
  StateVector sv = StateVector::plus_state(n);
  for (auto _ : state) {
    sv = sim.simulate_qaoa_from(std::move(sv), g, b);
    benchmark::DoNotOptimize(sv.data());
  }
}
BENCHMARK(BM_Fig3_FurLayerAltMixer)
    ->DenseRange(6, 24, 2)
    ->Unit(benchmark::kMillisecond);

void BM_Fig3_GatesLayer(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const TermList terms = labs_terms(n);
  const std::vector<double> g{0.31}, b{0.57};
  const Circuit layer = compile_qaoa_circuit(terms, g, b, MixerType::X,
                                             PhaseStyle::CxLadder,
                                             /*initial_h=*/false);
  state.counters["gates"] = static_cast<double>(layer.size());
  StateVector sv = StateVector::plus_state(n);
  for (auto _ : state) {
    run_circuit(sv, layer);
    benchmark::DoNotOptimize(sv.data());
  }
}
BENCHMARK(BM_Fig3_GatesLayer)
    ->DenseRange(6, 18, 2)
    ->Unit(benchmark::kMillisecond);

void BM_Fig3_GatesLayerFused(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const TermList terms = labs_terms(n);
  const std::vector<double> g{0.31}, b{0.57};
  const Circuit layer = fuse_gates(compile_qaoa_circuit(
      terms, g, b, MixerType::X, PhaseStyle::CxLadder, /*initial_h=*/false));
  state.counters["gates"] = static_cast<double>(layer.size());
  StateVector sv = StateVector::plus_state(n);
  for (auto _ : state) {
    run_circuit(sv, layer);
    benchmark::DoNotOptimize(sv.data());
  }
}
BENCHMARK(BM_Fig3_GatesLayerFused)
    ->DenseRange(6, 18, 2)
    ->Unit(benchmark::kMillisecond);

void BM_Fig3_TnLayer(benchmark::State& state) {
  // Paper methodology: contract a single amplitude of a depth-p circuit and
  // divide by p.
  const int n = static_cast<int>(state.range(0));
  const int p = 3;
  const TermList terms = labs_terms(n);
  const std::vector<double> g(p, 0.31), b(p, 0.57);
  const Circuit c = compile_qaoa_circuit(terms, g, b, MixerType::X,
                                         PhaseStyle::MultiZ,
                                         /*initial_h=*/false);
  tn::ContractionStats stats;
  for (auto _ : state) {
    benchmark::DoNotOptimize(tn::amplitude(c, 0, /*plus_input=*/true, &stats));
  }
  // Reported time covers p layers; divide by `layers` for the per-layer
  // number plotted in Fig. 3.
  state.counters["layers"] = p;
  state.counters["width"] = static_cast<double>(stats.max_rank);
}
BENCHMARK(BM_Fig3_TnLayer)
    ->DenseRange(6, 12, 2)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
