// Ablation (paper Sec. VI): can F=2 gate fusion save the gates baseline?
//
// The paper's argument: the LABS phase operator compiles to ~160n gates of
// which many are 4-order ladders, fusion reduces the count but cannot
// approach the precomputed diagonal, which needs only the n mixer passes.
// This bench puts numbers to that argument: gate counts before/after
// fusion, and the per-layer time of unfused / fused / precomputed paths.
#include <benchmark/benchmark.h>

#include "api/qokit.hpp"
#include "gatesim/execute.hpp"
#include "gatesim/fusion.hpp"

namespace {

using namespace qokit;

Circuit labs_layer(int n, bool fused) {
  const TermList terms = labs_terms(n);
  const std::vector<double> g{0.31}, b{0.57};
  Circuit c = compile_qaoa_circuit(terms, g, b, MixerType::X,
                                   PhaseStyle::CxLadder, /*initial_h=*/false);
  if (fused) c = fuse_gates(c);
  return c;
}

void BM_Fusion_Unfused(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Circuit layer = labs_layer(n, false);
  StateVector sv = StateVector::plus_state(n);
  for (auto _ : state) {
    run_circuit(sv, layer);
    benchmark::DoNotOptimize(sv.data());
  }
  state.counters["gates"] = static_cast<double>(layer.size());
  state.counters["gates_per_n"] = static_cast<double>(layer.size()) / n;
}
BENCHMARK(BM_Fusion_Unfused)
    ->DenseRange(10, 18, 2)
    ->Unit(benchmark::kMillisecond);

void BM_Fusion_Fused(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const Circuit layer = labs_layer(n, true);
  StateVector sv = StateVector::plus_state(n);
  for (auto _ : state) {
    run_circuit(sv, layer);
    benchmark::DoNotOptimize(sv.data());
  }
  state.counters["gates"] = static_cast<double>(layer.size());
  state.counters["gates_per_n"] = static_cast<double>(layer.size()) / n;
}
BENCHMARK(BM_Fusion_Fused)
    ->DenseRange(10, 18, 2)
    ->Unit(benchmark::kMillisecond);

void BM_Fusion_PrecomputedDiagonal(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const FurQaoaSimulator sim(labs_terms(n), {});
  const std::vector<double> g{0.31}, b{0.57};
  StateVector sv = StateVector::plus_state(n);
  for (auto _ : state) {
    sv = sim.simulate_qaoa_from(std::move(sv), g, b);
    benchmark::DoNotOptimize(sv.data());
  }
  state.counters["gates"] = static_cast<double>(n);  // only the mixer passes
}
BENCHMARK(BM_Fusion_PrecomputedDiagonal)
    ->DenseRange(10, 18, 2)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
