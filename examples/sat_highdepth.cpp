// High-depth QAOA on random k-SAT -- the workload motivating this
// simulator (paper Sec. I: Boulebnane & Montanaro observe a QAOA speedup
// on random 8-SAT only for p >~ 14, so studying it numerically *requires*
// cheap high-depth simulation).
//
// Sweeps depth with a fixed linear-ramp schedule on a random 3-SAT
// instance near the satisfiability threshold through one ProblemSession
// (the depth sweep re-simulates, never re-precomputes), reports the
// probability of measuring a satisfying assignment per depth, then
// demonstrates seeded sampling of assignments from the evolved state.
#include <cstdio>

#include "api/qokit.hpp"

int main() {
  using namespace qokit;

  const int n = 16;
  const int m = static_cast<int>(4.0 * n);  // clause ratio ~ threshold 4.27
  const SatInstance inst = random_ksat(n, 3, m, /*seed=*/11);

  SimulatorSpec spec;  // default backend, explicit sampling seed
  spec.sample_seed = 5;
  const api::ProblemSession session = api::ProblemSession::sat(inst, spec);
  const CostDiagonal& d = session.cost_diagonal();
  std::uint64_t sat_count = 0;
  for (std::uint64_t x = 0; x < d.size(); ++x)
    if (d[x] < 0.5) ++sat_count;
  std::printf("random 3-SAT: n = %d vars, m = %d clauses, |T| = %zu terms\n",
              n, m, session.terms().size());
  std::printf("satisfying assignments: %llu of 2^%d (uniform hit rate "
              "%.2e)\n",
              static_cast<unsigned long long>(sat_count), n,
              static_cast<double>(sat_count) / d.size());

  const bool satisfiable = d.min_value() < 0.5;
  api::EvalRequest request;
  request.overlap = true;  // mass on minimum-violation strings
  std::printf("%4s %18s %16s\n", "p", "<violations>", "P(satisfied)");
  for (int p : {1, 2, 4, 8, 16, 24}) {
    const QaoaParams params = linear_ramp(p, 0.55);
    const api::EvalResult r = session.evaluate(params, request);
    std::printf("%4d %18.4f %16.3e\n", p, *r.expectation,
                satisfiable ? *r.overlap : 0.0);
  }

  // Sample assignments from the deepest schedule and check them directly;
  // session sampling is seeded by the spec, so reruns draw identically.
  const auto samples = session.sample(linear_ramp(24, 0.55), 2000);
  int satisfied = 0;
  for (std::uint64_t x : samples)
    if (inst.violated(x) == 0) ++satisfied;
  std::printf("sampled 2000 shots at p = 24: %d satisfied (%.2f%%)\n",
              satisfied, 100.0 * satisfied / 2000.0);
  return 0;
}
